(* Benchmark harness: regenerates every table and figure of the
   reconstructed evaluation (experiments E1..E10, see DESIGN.md), plus
   Bechamel microbenchmarks of the performance-critical primitives.

   Usage:
     dune exec bench/main.exe                 # all experiments, quick scale
     EXPERIMENT=E4 dune exec bench/main.exe   # one experiment
     ONLY=E2,E4,E6 dune exec bench/main.exe   # comma-separated subset
     SCALE=full dune exec bench/main.exe      # paper-scale durations
     MICRO=0 dune exec bench/main.exe         # skip microbenchmarks
     PERF=1 dune exec bench/main.exe          # perf trajectory -> BENCH_PERF.json
     FLEET=1000,10000 ONLY=E12 ...            # E12 fleet-size sweep points

   Absolute numbers depend on the simulated substrate; the properties
   that must match the paper are the *shapes*: who wins, by what rough
   factor, and where behaviour changes. Each experiment prints the
   shape statement it is checking. *)

let scale_full =
  match Sys.getenv_opt "SCALE" with Some "full" -> true | _ -> false

(* Shared validated env-knob parsing. A knob that is set but fails to
   parse aborts with exit 2 and prints its valid forms — the same
   contract as the EXPERIMENT=/ONLY= unknown-id check below, so no
   garbage value can silently select a default. *)
let env_knob name ~valid parse =
  match Sys.getenv_opt name with
  | None -> None
  | Some raw -> (
    match parse (String.trim raw) with
    | Some v -> Some v
    | None ->
      Printf.eprintf "%s=%S is invalid\nvalid forms for %s=: %s\n" name raw name
        valid;
      exit 2)

let positive_int s =
  match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None

let wanted =
  match Sys.getenv_opt "EXPERIMENT" with
  | Some e -> Some (String.uppercase_ascii e)
  | None -> None

(* ONLY=E2,E4,E6 — comma-separated experiment subset (composes with
   EXPERIMENT, which selects exactly one). *)
let only =
  match Sys.getenv_opt "ONLY" with
  | None -> None
  | Some s ->
    Some
      (String.split_on_char ',' s
      |> List.filter_map (fun e ->
             match String.trim e with
             | "" -> None
             | e -> Some (String.uppercase_ascii e)))

let run_micro =
  match Sys.getenv_opt "MICRO" with Some "0" -> false | _ -> true

(* Every selectable id. An unknown EXPERIMENT=/ONLY= value used to
   silently run zero experiments; now it aborts with the valid list. *)
let known_ids =
  [
    "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E6B"; "E7"; "E8"; "E9"; "E10"; "E11";
    "E12"; "E13"; "MICRO";
  ]

let () =
  let unknown =
    (match wanted with
    | Some w when not (List.mem w known_ids) -> [ w ]
    | _ -> [])
    @
    match only with
    | Some ids -> List.filter (fun id -> not (List.mem id known_ids)) ids
    | None -> []
  in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment id%s: %s\nvalid ids: %s\n"
      (if List.length unknown > 1 then "s" else "")
      (String.concat ", " unknown)
      (String.concat ", " known_ids);
    exit 2
  end

let perf_mode =
  match Sys.getenv_opt "PERF" with Some "1" -> true | _ -> false

(* PAR=N — farm the independent scenario instances (E8 sweep points,
   E10 chaos soak seeds) across N OCaml domains via Sim.Parallel.
   Default 1: every instance runs inline, no domains spawned. Output is
   byte-identical for any value — results are collected into
   index-addressed arrays and printed in order after the join. *)
let par_domains =
  Option.value ~default:1
    (env_knob "PAR" ~valid:"a positive integer (e.g. PAR=4)" positive_int)

(* INTRA_PAR=N — run *one* instance's site shards concurrently on N
   OCaml domains via the conservative window scheduler
   (Sim.Conservative); orthogonal to PAR=, which farms independent
   instances. Applies to E2 and E3. Setting it (any value, including 1)
   also switches E2's telemetry off, so the experiment output is
   byte-comparable across INTRA_PAR values — the trajectory itself is
   bit-identical by construction, which CI checks by diffing the
   INTRA_PAR=1 and INTRA_PAR=4 E2 outputs. *)
let intra_par =
  Option.value ~default:1
    (env_knob "INTRA_PAR" ~valid:"a positive integer (e.g. INTRA_PAR=4)"
       positive_int)

(* ADAPT=leader|delay|both — which attack(s) experiment E13 replays
   against the adaptive controller (default: both). *)
let adapt_choice =
  Option.value ~default:`Both
    (env_knob "ADAPT" ~valid:"leader | delay | both" (fun s ->
         match String.lowercase_ascii s with
         | "leader" -> Some `Leader
         | "delay" -> Some `Delay
         | "both" -> Some `Both
         | _ -> None))

let intra_par_set = Sys.getenv_opt "INTRA_PAR" <> None

let sec s = s * 1_000_000
let minutes m = m * 60 * 1_000_000
let hours h = h * 3600 * 1_000_000

let section id title =
  Printf.printf "\n%s\n%s %s — %s\n%s\n%!" (String.make 78 '=') id
    (if scale_full then "[full scale]" else "[quick scale]")
    title (String.make 78 '=')

let shape fmt = Printf.printf ("  shape: " ^^ fmt ^^ "\n%!")

let enabled id =
  (match wanted with None -> true | Some w -> String.equal w id)
  && match only with None -> true | Some ids -> List.mem id ids

let pct hist p = Stats.Histogram.percentile hist p

let latency_row name (r : Spire.Scenarios.latency_result) =
  let h = r.Spire.Scenarios.hist in
  if Stats.Histogram.count h = 0 then [ name; "0"; "-"; "-"; "-"; "-"; "-"; "0" ]
  else
    [
      name;
      string_of_int r.Spire.Scenarios.confirmed;
      Printf.sprintf "%.1f" (Stats.Histogram.mean h);
      Printf.sprintf "%.1f" (pct h 50.);
      Printf.sprintf "%.1f" (pct h 90.);
      Printf.sprintf "%.1f" (pct h 99.);
      Printf.sprintf "%.1f" (Stats.Histogram.max_value h);
      string_of_int r.Spire.Scenarios.max_view;
    ]

let latency_columns =
  [ "scenario"; "confirmed"; "mean ms"; "p50"; "p90"; "p99"; "max"; "views" ]

(* Machine-readable confirmed-rate timeline: one JSON line per
   experiment with fixed 2 s buckets, for plotting scripts (and the
   release smoke) to consume without scraping the human tables. *)
let emit_timeline ~experiment series =
  let bucket_us = 2_000_000 in
  let buckets =
    Stats.Timeseries.bucketed series ~bucket_us
    |> List.map (fun (start, summary) ->
           Printf.sprintf
             "{\"start_us\":%d,\"confirmed\":%d,\"mean_ms\":%.2f,\"max_ms\":%.2f}"
             start
             (Stats.Summary.count summary)
             (Stats.Summary.mean summary)
             (Stats.Summary.max_value summary))
  in
  Printf.printf
    "RECONFIG_TIMELINE {\"experiment\":%S,\"bucket_us\":%d,\"buckets\":[%s]}\n%!"
    experiment bucket_us
    (String.concat "," buckets)

(* ------------------------------------------------------------------ *)
(* E1: configuration table                                              *)

let e1 () =
  section "E1" "Configurations: f intrusions, k recovering, 1 site loss";
  let table =
    Stats.Table.create ~title:"n = 3f + 2k + 1 spread so any site can be lost"
      ~columns:[ "f"; "k"; "sites"; "n"; "quorum"; "distribution"; "site-loss ok" ]
  in
  List.iter
    (fun (c : Spire.Config_calc.configuration) ->
      Stats.Table.add_row table
        [
          string_of_int c.Spire.Config_calc.f;
          string_of_int c.Spire.Config_calc.k;
          string_of_int (List.length c.Spire.Config_calc.sites);
          string_of_int c.Spire.Config_calc.n;
          string_of_int
            (Spire.Config_calc.quorum ~f:c.Spire.Config_calc.f
               ~k:c.Spire.Config_calc.k);
          String.concat "+"
            (List.map
               (fun (kind, size) ->
                 Printf.sprintf "%d%s" size
                   (match kind with
                   | Spire.Config_calc.Control_center -> "cc"
                   | Spire.Config_calc.Data_center -> "dc"))
               c.Spire.Config_calc.sites);
          (if Spire.Config_calc.tolerates_site_loss c then "yes" else "NO");
        ])
    (Spire.Config_calc.standard_table ());
  Stats.Table.print table;
  shape
    "flagship f=1,k=1 over 4 sites needs exactly 6 replicas (2cc+2cc+1dc+1dc)"

(* Per-shard execution summary (E2/E3): how the event load and heap
   pressure spread over the control heap and the site/field stripes.
   Event counts are part of the deterministic trajectory; heap
   high-water marks depend on push/pop interleaving and therefore on
   whether the windowed scheduler ran, so CI's byte-diff filters that
   line (and the scheduler-stats line) out alongside wall time. *)
let shard_summary sys =
  let engine = Spire.System.engine sys in
  let k = Sim.Engine.shards engine in
  let fmt get =
    String.concat " "
      (List.init k (fun s ->
           Printf.sprintf "%s=%d"
             (if s = 0 then "ctrl" else Printf.sprintf "s%d" s)
             (get s)))
  in
  Printf.printf "  shard events: %s\n" (fmt (Sim.Engine.processed_of engine));
  Printf.printf "  shard heap hi-water: %s\n"
    (fmt (Sim.Engine.heap_hi_water engine));
  (match Spire.System.intra_stats sys with
  | None -> ()
  | Some st ->
    Printf.printf "  intra-par: %s\n"
      (Format.asprintf "%a" Sim.Conservative.pp_stats st));
  Printf.printf "%!"

(* ------------------------------------------------------------------ *)
(* E2: fault-free wide-area latency distribution                       *)

let e2 () =
  section "E2" "Fault-free wide-area deployment: update latency CDF";
  let duration = if scale_full then hours 1 else minutes 5 in
  let cfg =
    if intra_par_set then
      {
        (Spire.System.default_config ()) with
        Spire.System.intra_domains = intra_par;
      }
    else
      { (Spire.System.default_config ()) with Spire.System.telemetry = true }
  in
  let sys, r = Spire.Scenarios.fault_free ~config:cfg ~duration_us:duration () in
  let table = Stats.Table.create ~title:"latency distribution" ~columns:latency_columns in
  Stats.Table.add_row table (latency_row "wide-area fault-free" r);
  Stats.Table.print table;
  let h = r.Spire.Scenarios.hist in
  let cdf_table =
    Stats.Table.create ~title:"CDF (fraction of updates within bound)"
      ~columns:[ "bound ms"; "fraction" ]
  in
  List.iter
    (fun bound ->
      Stats.Table.add_row cdf_table
        [
          Printf.sprintf "%.0f" bound;
          Printf.sprintf "%.5f" (Stats.Histogram.fraction_below h bound);
        ])
    [ 20.; 30.; 50.; 75.; 100.; 150.; 200. ];
  Stats.Table.print cdf_table;
  Printf.printf "  submitted=%d confirmed=%d (%.2f%%)\n" r.Spire.Scenarios.submitted
    r.Spire.Scenarios.confirmed
    (100. *. float_of_int r.Spire.Scenarios.confirmed
    /. float_of_int (max 1 r.Spire.Scenarios.submitted));
  if cfg.Spire.System.telemetry then begin
    let sink = Spire.System.telemetry sys in
    Telemetry.Attribution.print
      ~title:"latency attribution, fault-free (µs, virtual)" sink;
    Telemetry.Attribution.print_net sink
  end;
  shard_summary sys;
  shape "nearly all updates within 100 ms over the wide area; no view changes"

(* ------------------------------------------------------------------ *)
(* E3: long continuous run                                             *)

let e3 () =
  section "E3" "Continuous operation (paper: 30 h); latency over time";
  let duration = if scale_full then hours 30 else minutes 30 in
  let cfg =
    {
      (Spire.System.default_config ()) with
      Spire.System.intra_domains = (if intra_par_set then intra_par else 1);
    }
  in
  let sys, r = Spire.Scenarios.fault_free ~config:cfg ~duration_us:duration () in
  let bucket = duration / 10 in
  let table =
    Stats.Table.create ~title:"per-interval latency (time buckets)"
      ~columns:[ "interval start"; "updates"; "mean ms"; "max ms" ]
  in
  List.iter
    (fun (start, summary) ->
      Stats.Table.add_row table
        [
          Printf.sprintf "%.0f min" (float_of_int start /. 60e6);
          string_of_int (Stats.Summary.count summary);
          Printf.sprintf "%.1f" (Stats.Summary.mean summary);
          Printf.sprintf "%.1f" (Stats.Summary.max_value summary);
        ])
    (Stats.Timeseries.bucketed r.Spire.Scenarios.series ~bucket_us:bucket);
  Stats.Table.print table;
  let h = r.Spire.Scenarios.hist in
  Printf.printf "  overall: n=%d mean=%.1fms p99.9=%.1fms within-200ms=%.5f\n"
    (Stats.Histogram.count h) (Stats.Histogram.mean h) (pct h 99.9)
    (Stats.Histogram.fraction_below h 200.);
  shard_summary sys;
  shape "flat latency profile over the whole run: no drift, no outage"

(* ------------------------------------------------------------------ *)
(* E4: leader slowdown attack, Prime vs PBFT                            *)

let e4 () =
  section "E4"
    "Leader performance attack: Prime (bounded delay) vs PBFT baseline";
  let duration = if scale_full then minutes 5 else sec 30 in
  let attack_from = duration / 6 in
  let table =
    Stats.Table.create
      ~title:"latency under a leader that delays proposals (attack from t/6)"
      ~columns:latency_columns
  in
  let post_attack_mean = Hashtbl.create 7 in
  let ordering_mean = Hashtbl.create 7 in
  let attributions = ref [] in
  List.iter
    (fun (name, protocol, delay_us) ->
      let sys, r =
        Spire.Scenarios.leader_attack
          ~tweak:(fun c -> { c with Spire.System.telemetry = true })
          ~protocol ~delay_us ~attack_from_us:attack_from ~duration_us:duration
          ()
      in
      Stats.Table.add_row table (latency_row name r);
      let sink = Spire.System.telemetry sys in
      let attr = Telemetry.Attribution.build sink in
      attributions := (name, sink) :: !attributions;
      List.iter
        (fun (row : Telemetry.Attribution.row) ->
          if row.Telemetry.Attribution.phase = Telemetry.Span.Ordering then
            Hashtbl.replace ordering_mean name row.Telemetry.Attribution.mean_us)
        attr.Telemetry.Attribution.rows;
      (* Post-attack steady-state mean (skip the transition bucket). *)
      let post =
        Stats.Timeseries.bucketed r.Spire.Scenarios.series
          ~bucket_us:(duration / 10)
        |> List.filter (fun (start, _) -> start > attack_from + (duration / 10))
        |> List.map snd
        |> List.fold_left Stats.Summary.merge (Stats.Summary.create ())
      in
      Hashtbl.replace post_attack_mean name (Stats.Summary.mean post))
    [
      ("prime, no attack", Spire.System.Prime_protocol, 0);
      ("prime, 500ms delay", Spire.System.Prime_protocol, 500_000);
      ("prime, 1s delay", Spire.System.Prime_protocol, 1_000_000);
      ("pbft, no attack", Spire.System.Pbft_protocol, 0);
      ("pbft, 500ms delay", Spire.System.Pbft_protocol, 500_000);
      ("pbft, 1s delay", Spire.System.Pbft_protocol, 1_000_000);
    ];
  Stats.Table.print table;
  (* Where does the injected delay land? Per-phase attribution, one
     table per scenario: under PBFT the whole second shows up in the
     ordering phase; Prime rotates the leader so ordering stays near
     baseline after the view change. *)
  List.iter
    (fun (name, sink) ->
      Telemetry.Attribution.print
        ~title:(Printf.sprintf "attribution — %s (µs, virtual)" name)
        sink)
    (List.rev !attributions);
  let get name = try Hashtbl.find post_attack_mean name with Not_found -> nan in
  let om name = try Hashtbl.find ordering_mean name with Not_found -> nan in
  Printf.printf
    "  post-attack steady-state mean: prime %.1fms vs pbft %.1fms (1s delay)\n"
    (get "prime, 1s delay") (get "pbft, 1s delay");
  Printf.printf
    "  ordering-phase mean (1s delay): prime %.0fµs vs pbft %.0fµs — the \
     attack's delay lands in the ordering phase under PBFT\n"
    (om "prime, 1s delay") (om "pbft, 1s delay");
  shape
    "Prime suspects and rotates the slow leader (views > 0), returning to \
     baseline latency; PBFT keeps it (views = 0) and every update pays the \
     injected delay"

(* ------------------------------------------------------------------ *)
(* E5: proactive recovery                                              *)

let e5 () =
  section "E5" "Latency during proactive recovery (k = 1 rotation)";
  let duration = if scale_full then hours 1 else minutes 10 in
  let rotation = duration / 4 in
  let _, r, events =
    Spire.Scenarios.proactive_recovery ~rotation_period_us:rotation
      ~recovery_duration_us:(sec 10) ~duration_us:duration ()
  in
  let table = Stats.Table.create ~title:"latency with recoveries" ~columns:latency_columns in
  Stats.Table.add_row table (latency_row "prime + proactive recovery" r);
  Stats.Table.print table;
  let begins =
    List.filter (fun (_, phase, _) -> phase = `Begin) events |> List.length
  in
  let completes =
    List.filter (fun (_, phase, _) -> phase = `Complete) events |> List.length
  in
  Printf.printf "  recoveries: %d begun, %d completed; confirmed %d/%d\n" begins
    completes r.Spire.Scenarios.confirmed r.Spire.Scenarios.submitted;
  shape
    "service continues through every rejuvenation; latency blips stay \
     bounded because n - k still holds a quorum"

(* ------------------------------------------------------------------ *)
(* E6: network delay attack vs dissemination mode (ablation A1)        *)

let e6 () =
  section "E6"
    "Undetected delay attack on primary WAN links: dissemination modes";
  let duration = if scale_full then minutes 2 else sec 20 in
  let table =
    Stats.Table.create
      ~title:"latency with primary inter-site links delayed 20x from t/4"
      ~columns:latency_columns
  in
  let bytes_table =
    Stats.Table.create
      ~title:"wire bytes per dissemination mode (redundancy's bandwidth price)"
      ~columns:[ "mode"; "submitted MB"; "delivered MB"; "dropped MB"; "link tx MB" ]
  in
  let attributions = ref [] in
  List.iter
    (fun (name, mode) ->
      let sys, r =
        Spire.Scenarios.link_degradation
          ~tweak:(fun c -> { c with Spire.System.telemetry = true })
          ~mode ~factor:20. ~attack_from_us:(duration / 4)
          ~duration_us:duration ()
      in
      Stats.Table.add_row table (latency_row name r);
      attributions := (name, Spire.System.telemetry sys) :: !attributions;
      let net = Spire.System.net sys in
      let s = Overlay.Net.stats net in
      let link_tx =
        List.fold_left
          (fun acc lr -> acc + lr.Overlay.Net.tx_bytes)
          0 (Overlay.Net.link_reports net)
      in
      let mb b = Printf.sprintf "%.2f" (float_of_int b /. 1e6) in
      Stats.Table.add_row bytes_table
        [
          name;
          mb s.Overlay.Net.submitted_bytes;
          mb s.Overlay.Net.delivered_bytes;
          mb s.Overlay.Net.dropped_bytes;
          mb link_tx;
        ])
    [
      ("single shortest path (ablation)", Overlay.Net.Shortest);
      ("redundant 2 disjoint paths", Overlay.Net.Redundant 2);
      ("constrained flooding", Overlay.Net.Flood);
    ];
  Stats.Table.print table;
  Stats.Table.print bytes_table;
  (* Where is the link delay absorbed? Under single-path routing every
     lifecycle phase that crosses the attacked WAN links inflates (the
     per-hop net tables show the propagation delay directly); with
     redundant/flooding dissemination the first clean copy wins and the
     lifecycle attribution stays near the fault-free baseline. *)
  List.iter
    (fun (name, sink) ->
      Telemetry.Attribution.print
        ~title:(Printf.sprintf "attribution — %s (µs, virtual)" name)
        sink;
      Telemetry.Attribution.print_net
        ~title:(Printf.sprintf "per-hop net spans — %s (µs, virtual)" name)
        sink)
    (List.rev !attributions);
  shape
    "single-path routing keeps trusting the attacked links and suffers the \
     full delay; redundant/flooding dissemination delivers the first clean \
     copy, keeping latency near baseline — and pays for it in wire bytes"

(* ------------------------------------------------------------------ *)
(* E6b: packet loss on WAN links (hop-by-hop recovery)                 *)

let e6b () =
  section "E6B" "Packet loss on inter-site links: ARQ turns loss into latency";
  let duration = if scale_full then minutes 2 else sec 20 in
  let table =
    Stats.Table.create ~title:"latency under sustained WAN packet loss"
      ~columns:
        ([ "loss"; "mode" ] @ List.tl latency_columns)
  in
  List.iter
    (fun loss ->
      List.iter
        (fun (name, mode) ->
          let sys, r = Spire.Scenarios.packet_loss ~mode ~loss ~duration_us:duration () in
          let row = latency_row name r in
          Stats.Table.add_row table
            (Printf.sprintf "%.0f%%" (loss *. 100.) :: name :: List.tl row);
          ignore (Overlay.Net.retransmissions (Spire.System.net sys) : int))
        [ ("shortest", Overlay.Net.Shortest); ("flood", Overlay.Net.Flood) ])
    [ 0.05; 0.2; 0.4 ];
  Stats.Table.print table;
  shape
    "moderate loss costs only tail latency (per-hop retransmission); heavy \
     loss favours flooding, which needs only one clean copy on any path"

(* ------------------------------------------------------------------ *)
(* E7: loss of a control center                                        *)

let e7 () =
  section "E7" "Disconnection of an entire control center, then restoration";
  let duration = if scale_full then minutes 4 else sec 40 in
  let fail_at = duration / 4 in
  let restore_at = duration * 5 / 8 in
  let _, r =
    Spire.Scenarios.site_failure ~site:0 ~fail_at_us:fail_at
      ~restore_at_us:(Some restore_at) ~duration_us:duration ()
  in
  let bucket = duration / 20 in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf "timeline (site 0 killed at %ds, restored at %ds)"
           (fail_at / 1_000_000) (restore_at / 1_000_000))
      ~columns:[ "interval"; "confirmations"; "mean ms"; "max ms" ]
  in
  List.iter
    (fun (start, summary) ->
      Stats.Table.add_row table
        [
          Printf.sprintf "%2ds" (start / 1_000_000);
          string_of_int (Stats.Summary.count summary);
          Printf.sprintf "%.1f" (Stats.Summary.mean summary);
          Printf.sprintf "%.1f" (Stats.Summary.max_value summary);
        ])
    (Stats.Timeseries.bucketed r.Spire.Scenarios.series ~bucket_us:bucket);
  Stats.Table.print table;
  emit_timeline ~experiment:"E7" r.Spire.Scenarios.series;
  Printf.printf "  confirmed %d/%d; views reached %d\n" r.Spire.Scenarios.confirmed
    r.Spire.Scenarios.submitted r.Spire.Scenarios.max_view;
  shape
    "a ~1-2s failover (leader rotation past the dead site), then full \
     service from the remaining sites; reconnection is seamless"

(* ------------------------------------------------------------------ *)
(* E8: throughput scaling                                              *)

let e8 () =
  section "E8" "Throughput: substations at 10 polls/s each";
  let duration = if scale_full then minutes 1 else sec 15 in
  let table =
    Stats.Table.create ~title:"offered vs confirmed rate"
      ~columns:
        [
          "substations"; "offered/s"; "confirmed/s"; "ratio"; "p99 ms";
          "wire MB"; "ok";
        ]
  in
  let breaking_point = ref None in
  let traffic_sample = ref None in
  let points =
    if scale_full then [| 10; 20; 40; 80; 160; 320; 640; 1280 |]
    else [| 10; 20; 40; 80; 160; 320; 640 |]
  in
  (* Every sweep point builds its own system — independent instances,
     farmed across PAR= domains; rows are added in index order after
     the join, so the table is identical for any domain count. *)
  let results =
    Sim.Parallel.map ~domains:par_domains
      (fun substations ->
        let sys, r =
          Spire.Scenarios.throughput ~substations ~poll_interval_us:100_000
            ~duration_us:duration ()
        in
        let secs = float_of_int duration /. 1e6 in
        let offered = float_of_int substations *. 10. in
        let confirmed_rate = float_of_int r.Spire.Scenarios.confirmed /. secs in
        let p99 =
          if Stats.Histogram.count r.Spire.Scenarios.hist > 0 then
            pct r.Spire.Scenarios.hist 99.
          else nan
        in
        let wire_bytes =
          (Overlay.Net.stats (Spire.System.net sys)).Overlay.Net.submitted_bytes
        in
        let traffic =
          if substations = 40 then Some (Spire.System.wire_traffic sys)
          else None
        in
        (substations, offered, confirmed_rate, p99, wire_bytes, traffic))
      points
  in
  Array.iter
    (fun (substations, offered, confirmed_rate, p99, wire_bytes, traffic) ->
      (match traffic with Some t -> traffic_sample := Some t | None -> ());
      let ratio = confirmed_rate /. offered in
      let ok = ratio > 0.97 && p99 < 500. in
      if (not ok) && !breaking_point = None then breaking_point := Some substations;
      Stats.Table.add_row table
        [
          string_of_int substations;
          Printf.sprintf "%.0f" offered;
          Printf.sprintf "%.0f" confirmed_rate;
          Printf.sprintf "%.3f" ratio;
          Printf.sprintf "%.1f" p99;
          Printf.sprintf "%.2f" (float_of_int wire_bytes /. 1e6);
          (if ok then "yes" else "SATURATED");
        ])
    results;
  Stats.Table.print table;
  (* Per-message-class wire ledger (40-substation point): encoded frame
     sizes, not approximations — summary-matrix pre-prepares must dwarf
     the one-digest votes. *)
  (match !traffic_sample with
  | None -> ()
  | Some traffic ->
    let class_table =
      Stats.Table.create
        ~title:"per-class wire traffic at 40 substations (exact encoded sizes)"
        ~columns:[ "message class"; "frames"; "bytes"; "avg frame B" ]
    in
    List.iter
      (fun (kind, frames, bytes) ->
        Stats.Table.add_row class_table
          [
            kind;
            string_of_int frames;
            string_of_int bytes;
            string_of_int (bytes / max 1 frames);
          ])
      traffic;
    Stats.Table.print class_table);
  (match !breaking_point with
  | Some s -> Printf.printf "  saturation first observed at %d substations\n" s
  | None -> Printf.printf "  no saturation within the sweep\n");
  (* Batch-size sweep: constrained-flooding dissemination (the paper's
     network-attack-resilient mode) at a per-endpoint rate that
     saturates the unbatched pipeline. Under flooding every frame
     crosses every overlay link, so the per-update flooding cost gates
     the confirmed rate directly — and batching amortises it: one
     envelope + one RSA authenticator per client batch, one po-request
     frame per pre-order block, one reply frame per destination group.
     The price is the batch-wait the deadline policy permits. *)
  let sweep_duration = if scale_full then sec 15 else sec 5 in
  let sweep_substations = 16 in
  let sweep_poll_us = 1_000 in
  let batch_table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "batch-size sweep, flooding: %d substations at %d polls/s \
            (offered %d/s, deadline 10 ms)"
           sweep_substations (1_000_000 / sweep_poll_us)
           (sweep_substations * 1_000_000 / sweep_poll_us))
      ~columns:
        [
          "max_batch"; "confirmed/s"; "p50 ms"; "p99 ms"; "wire MB";
          "wire KB/upd";
        ]
  in
  let batch_results =
    Sim.Parallel.map ~domains:par_domains
      (fun max_batch ->
        let sys, r =
          Spire.Scenarios.throughput
            ~tweak:(fun c ->
              { c with Spire.System.dissemination = Overlay.Net.Flood })
            ~max_batch ~substations:sweep_substations
            ~poll_interval_us:sweep_poll_us ~duration_us:sweep_duration ()
        in
        let secs = float_of_int sweep_duration /. 1e6 in
        let confirmed_rate = float_of_int r.Spire.Scenarios.confirmed /. secs in
        let h = r.Spire.Scenarios.hist in
        let wire_bytes =
          (Overlay.Net.stats (Spire.System.net sys)).Overlay.Net.submitted_bytes
        in
        ( max_batch,
          confirmed_rate,
          (if Stats.Histogram.count h > 0 then pct h 50. else nan),
          (if Stats.Histogram.count h > 0 then pct h 99. else nan),
          wire_bytes,
          r.Spire.Scenarios.confirmed ))
      [| 1; 4; 16; 64 |]
  in
  (* The speedup column is relative to the batch=1 point, which is
     always index 0 of the collected array. *)
  let base_rate =
    match batch_results with
    | [||] -> nan
    | a ->
      let _, rate, _, _, _, _ = a.(0) in
      rate
  in
  Array.iter
    (fun (max_batch, confirmed_rate, p50, p99, wire_bytes, confirmed) ->
      Stats.Table.add_row batch_table
        [
          string_of_int max_batch;
          Printf.sprintf "%.0f (%.2fx)" confirmed_rate (confirmed_rate /. base_rate);
          Printf.sprintf "%.1f" p50;
          Printf.sprintf "%.1f" p99;
          Printf.sprintf "%.2f" (float_of_int wire_bytes /. 1e6);
          Printf.sprintf "%.2f"
            (float_of_int wire_bytes /. 1e3 /. float_of_int (max 1 confirmed));
        ])
    batch_results;
  Stats.Table.print batch_table;
  shape
    "latency stays flat well past the paper's 10-substation deployment; \
     saturation appears only at 1-2 orders of magnitude more load; \
     summary-matrix pre-prepare frames are several times heavier than \
     single-digest votes; under flooding at a saturating load, batching \
     >= 8 at least doubles the confirmed rate at no worse than twice the \
     p99, because the per-update flooding cost is what gates throughput"

(* ------------------------------------------------------------------ *)
(* E9: intrusion campaign with diversity + proactive recovery           *)

let e9 () =
  section "E9"
    "Long-running intrusion campaign (ablations A3: diversity, A4: recovery)";
  let duration = if scale_full then hours 48 else hours 12 in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "attacker develops one exploit per 2 h; rotation every 1 h; run = %d virtual hours"
           (duration / 3_600_000_000))
      ~columns:
        [
          "configuration";
          "max simultaneous";
          "total compromises";
          "exploits";
          "time above f";
          "mean hold";
          "compromised at end";
          "f exceeded?";
        ]
  in
  List.iter
    (fun (name, diversity_on, recovery_on, reactive_on) ->
      let _, c =
        Spire.Scenarios.intrusion_campaign ~reactive_on ~diversity_on
          ~recovery_on ~duration_us:duration ()
      in
      Stats.Table.add_row table
        [
          name;
          string_of_int c.Spire.Scenarios.max_simultaneous_compromised;
          string_of_int c.Spire.Scenarios.total_compromises;
          string_of_int c.Spire.Scenarios.exploits_developed;
          Printf.sprintf "%ds" (c.Spire.Scenarios.time_above_f_us / 1_000_000);
          Printf.sprintf "%ds" (c.Spire.Scenarios.mean_held_us / 1_000_000);
          string_of_int c.Spire.Scenarios.final_compromised;
          (if c.Spire.Scenarios.max_simultaneous_compromised > 1 then "YES"
           else "no");
        ])
    [
      ("diversity + recovery (Spire)", true, true, false);
      ("  + reactive recovery (extension)", true, true, true);
      ("diversity only (A4: no recovery)", true, false, false);
      ("recovery only (A3: no diversity)", false, true, false);
      ("neither (undefended)", false, false, false);
    ];
  Stats.Table.print table;
  shape
    "with both defences the attacker never holds more than f=1 replicas; \
     removing either lets compromises accumulate past f"

(* ------------------------------------------------------------------ *)
(* E10: chaos soak — random fault schedules vs the runtime oracles      *)

let e10 () =
  section "E10"
    "Chaos soak: seeded random fault schedules under runtime safety/liveness \
     oracles";
  let seeds = if scale_full then 50 else 12 in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "%d seeded within-budget schedules (<= f Byzantine, <= k down, \
            quorum preserved); every oracle must stay green"
           seeds)
      ~columns:
        [
          "seed";
          "faults";
          "confirmed";
          "min avail";
          "worst ms";
          "baseline p50";
          "post p50";
          "result";
        ]
  in
  let dirty = ref 0 in
  (* Soak seeds are independent instances: PAR=N farms them across
     domains (Chaos.Harness.soak_many); reports come back in seed order
     so the table and dirty-report output never change with PAR. *)
  let seed_list = List.init seeds (fun i -> Int64.of_int (((i + 1) * 104_729) + 7)) in
  let reports =
    Chaos.Harness.soak_many ~domains:par_domains ~seeds:seed_list ()
  in
  List.iter2
    (fun seed r ->
      if not (Chaos.Harness.clean r) then begin
        incr dirty;
        Format.printf "%a@." Chaos.Harness.pp_report r
      end;
      Stats.Table.add_row table
        [
          Int64.to_string seed;
          string_of_int (List.length r.Chaos.Harness.schedule.Chaos.Schedule.events);
          string_of_int r.Chaos.Harness.confirmed;
          string_of_int r.Chaos.Harness.min_available;
          Printf.sprintf "%.0f" r.Chaos.Harness.worst_latency_ms;
          Printf.sprintf "%.1f" r.Chaos.Harness.baseline_p50_ms;
          Printf.sprintf "%.1f" r.Chaos.Harness.post_p50_ms;
          (if Chaos.Harness.clean r then "CLEAN"
           else
             String.concat ","
               (List.map fst (Chaos.Harness.failures r)));
        ])
    seed_list reports;
  Stats.Table.print table;
  (* Non-vacuousness: an over-budget schedule (f + k + 1 simultaneous
     crashes) must both fail validation and trip the quorum watchdog
     when forced through anyway. *)
  let over =
    Chaos.Schedule.
      {
        horizon_us = 3_000_000;
        events =
          [
            {
              at_us = 200_000;
              fault = Crash_restart { replica = 0; down_us = 2_000_000 };
            };
            {
              at_us = 200_000;
              fault = Crash_restart { replica = 2; down_us = 2_000_000 };
            };
            {
              at_us = 200_000;
              fault = Crash_restart { replica = 4; down_us = 2_000_000 };
            };
          ];
      }
  in
  let sys = Spire.System.create (Spire.System.default_config ()) in
  let profile = Chaos.Injector.profile_of_system sys in
  let budget = Chaos.Schedule.budget_of_quorum profile.Chaos.Schedule.quorum in
  (match Chaos.Schedule.validate ~profile ~budget over with
  | Ok () -> Printf.printf "  over-budget schedule WRONGLY validated\n"
  | Error m -> Printf.printf "  validator rejects over-budget schedule: %s\n" m);
  let r = Chaos.Harness.run ~seed:424_242L ~schedule:over () in
  List.iter
    (fun (name, v) ->
      Format.printf "  forced anyway: %-10s %a@." name Oracle.Verdict.pp v)
    r.Chaos.Harness.verdicts;
  shape
    "%d/%d within-budget schedules clean; failing seeds reproduce the exact \
     run; 3 simultaneous crashes drop availability below the 2f+k+1 quorum \
     and the watchdog latches"
    (seeds - !dirty) seeds

(* ------------------------------------------------------------------ *)
(* E11: online reconfiguration                                         *)

let e11 () =
  section "E11"
    "Online reconfiguration: control-center failover, site rejoin, and \
     membership growth through the ordered stream";
  let duration = if scale_full then minutes 2 else sec 50 in
  let _sys, r = Spire.Scenarios.reconfiguration ~duration_us:duration () in
  let table =
    Stats.Table.create
      ~title:
        "timeline: site 0 killed t=10s; failover (epoch 1, n=4) t=14s; \
         hardware healed t=22s; rejoin (epoch 2, n=6) t=26s; standby \
         data center admitted (epoch 3, n=8, k=2) t=38s"
      ~columns:[ "epoch"; "boundary exec"; "cutover t" ]
  in
  List.iter
    (fun (e, boundary, time_us) ->
      Stats.Table.add_row table
        [
          string_of_int e;
          string_of_int boundary;
          Printf.sprintf "%.1fs" (float_of_int time_us /. 1e6);
        ])
    r.Spire.Scenarios.cutovers;
  Stats.Table.print table;
  emit_timeline ~experiment:"E11" r.Spire.Scenarios.base.Spire.Scenarios.series;
  (* Replay the sampled per-epoch activity through the epoch-safety
     oracle: at most one epoch quorate at any sampled instant, unique
     certificate chain, no latched deployment violation. *)
  let check = Oracle.Epoch_check.create () in
  List.iter
    (fun (s : Spire.Scenarios.activity_sample) ->
      Oracle.Epoch_check.observe_activity check ~time_us:s.Spire.Scenarios.at_us
        ~live:(List.map (fun (e, live, _) -> (e, live)) s.Spire.Scenarios.per_epoch)
        ~quorum_of:(fun e ->
          match
            List.find_opt
              (fun (e', _, _) -> e' = e)
              s.Spire.Scenarios.per_epoch
          with
          | Some (_, _, q) -> q
          | None -> max_int))
    r.Spire.Scenarios.activity;
  (match r.Spire.Scenarios.violation with
  | Some v -> Oracle.Epoch_check.note_violation check v
  | None -> ());
  let verdict = Oracle.Epoch_check.verdict check in
  Printf.printf
    "  final epoch %d, n=%d; confirmed %d/%d; stale cross-epoch frames %d\n"
    r.Spire.Scenarios.final_epoch r.Spire.Scenarios.final_n
    r.Spire.Scenarios.base.Spire.Scenarios.confirmed
    r.Spire.Scenarios.base.Spire.Scenarios.submitted r.Spire.Scenarios.stale_frames;
  Format.printf "  epoch-safety oracle: %a (%d samples)@." Oracle.Verdict.pp
    verdict
    (Oracle.Epoch_check.observations check);
  Printf.printf "  max confirmation gap after first fault: %.2fs\n"
    (float_of_int r.Spire.Scenarios.max_confirm_gap_us /. 1e6);
  if
    (not (Oracle.Verdict.is_pass verdict))
    || r.Spire.Scenarios.final_epoch <> 3
    || r.Spire.Scenarios.max_confirm_gap_us > 8_000_000
  then begin
    Printf.eprintf "E11 FAILED: oracle or timeline expectations violated\n";
    exit 1
  end;
  shape
    "three cutovers at deterministic boundaries; downtime bounded by the \
     failover window; zero safety violations while n shrinks to 4 and \
     grows to 8"

(* ------------------------------------------------------------------ *)
(* E12: fleet-scale field layer                                        *)

(* FLEET=1000,10000 — comma-separated fleet sizes for the E12 sweep
   (default 1k/10k/100k devices). *)
let fleet_points =
  Option.value
    ~default:[| 1_000; 10_000; 100_000 |]
    (env_knob "FLEET"
       ~valid:
         "a comma-separated list of positive device counts (e.g. \
          FLEET=1000,10000)" (fun s ->
         let parsed =
           String.split_on_char ',' s
           |> List.filter_map (fun e ->
                  match String.trim e with "" -> None | e -> Some e)
           |> List.map positive_int
         in
         if parsed = [] || List.exists Option.is_none parsed then None
         else Some (Array.of_list (List.map Option.get parsed))))

(* Concentrator count grows with the fleet but is capped: hierarchical
   aggregation means the ordered stream sees concentrators, not
   devices. *)
let fleet_concentrators devices = min 64 (max 4 (devices / 2500))

let e12 () =
  section "E12"
    "Fleet-scale field layer: register-mapped devices behind hierarchical \
     concentrators";
  let duration = if scale_full then sec 30 else sec 10 in
  let secs = float_of_int duration /. 1e6 in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "fleet sweep, %.0fs runs: report-by-exception events fold into one \
            ordered aggregate per concentrator scan round"
           secs)
      ~columns:
        [
          "devices"; "conc"; "rounds"; "conf events/s"; "conf writes";
          "wire B/dev"; "link churn"; "dups"; "ordered/s";
        ]
  in
  (* Output is byte-identical for any PAR= value: results land in an
     index-addressed array and print in order after the join. *)
  let results =
    Sim.Parallel.map ~domains:par_domains
      (fun devices ->
        let concentrators = fleet_concentrators devices in
        let sys, r =
          Spire.Scenarios.fleet ~concentrators ~devices ~duration_us:duration
            ()
        in
        let s = Spire.System.fleet_stats sys in
        let field_bytes =
          List.fold_left
            (fun acc (kind, _, bytes) ->
              if kind = "field/advert" || kind = "field/report" then
                acc + bytes
              else acc)
            0 (Spire.System.wire_traffic sys)
        in
        (devices, concentrators, s, field_bytes, r))
      fleet_points
  in
  Array.iter
    (fun ( devices,
           concentrators,
           (s : Field.Concentrator.stats),
           field_bytes,
           (r : Spire.Scenarios.latency_result) ) ->
      Stats.Table.add_row table
        [
          string_of_int devices;
          string_of_int concentrators;
          string_of_int s.Field.Concentrator.rounds;
          Printf.sprintf "%.0f" (float_of_int s.confirmed_events /. secs);
          string_of_int s.confirmed_writes;
          Printf.sprintf "%.1f"
            (float_of_int field_bytes /. float_of_int devices);
          string_of_int s.churn;
          string_of_int s.dups_dropped;
          Printf.sprintf "%.0f" (float_of_int r.Spire.Scenarios.confirmed /. secs);
        ])
    results;
  Stats.Table.print table;
  Array.iter
    (fun (devices, _, (s : Field.Concentrator.stats), _, _) ->
      if s.Field.Concentrator.confirmed_events = 0 then begin
        Printf.eprintf "E12 FAILED: no confirmed fleet events at %d devices\n"
          devices;
        exit 1
      end)
    results;
  shape
    "confirmed-event rate scales with fleet size while the ordered-op rate \
     stays near-flat (hierarchical aggregation); per-device wire bytes stay \
     O(1); link churn tracks the keep-alive loss rate"

(* ------------------------------------------------------------------ *)
(* E13: adaptive resilience — two-level controller vs static configs   *)

let e13 () =
  section "E13"
    "Adaptive resilience: two-level feedback controller vs static \
     configurations under undisclosed attacks";
  let duration = if scale_full then minutes 4 else sec 40 in
  let attack_from = duration / 4 in
  (* Converged window: every arm's steady-state p99 is measured from
     the same point, far enough past the attack for the controller's
     detection windows, escalation cooldowns, and the last straggler
     confirmations routed before a mode switch to have drained. Static
     arms are constant, so the window choice only strips their own
     transition bucket — the comparison stays fair. *)
  let converged_from = attack_from + (duration / 4) in
  let attacks =
    List.filter
      (fun (_, _, sel) -> adapt_choice = `Both || adapt_choice = sel)
      [
        ( "leader slowdown 1s (the E4 attack)",
          Spire.Scenarios.Leader_slowdown 1_000_000,
          `Leader );
        ("primary-WAN delay 20x (the E6 attack)", Spire.Scenarios.Wan_delay 20., `Delay);
      ]
  in
  let statics =
    [
      ("static shortest", Overlay.Net.Shortest);
      ("static k-disjoint(2)", Overlay.Net.Redundant 2);
      ("static flooding", Overlay.Net.Flood);
    ]
  in
  let failed = ref false in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        failed := true;
        Printf.eprintf "E13 FAILED: %s\n" m)
      fmt
  in
  (* worst-over-attacks converged p99 per arm, for the cross-attack
     comparison: a static configuration must be chosen without knowing
     the attack, so its figure of merit is its worst case. *)
  let worst_of = Hashtbl.create 7 in
  let note_worst name p99 =
    let prev = try Hashtbl.find worst_of name with Not_found -> 0. in
    Hashtbl.replace worst_of name (Float.max prev p99)
  in
  List.iter
    (fun (attack_name, attack, _) ->
      let table =
        Stats.Table.create
          ~title:
            (Printf.sprintf "%s from t=%ds; converged window from t=%ds"
               attack_name (attack_from / 1_000_000)
               (converged_from / 1_000_000))
          ~columns:
            [
              "arm"; "confirmed"; "post p99 ms"; "conv p99 ms"; "views";
              "knobs ok/rej"; "journal";
            ]
      in
      let run_arm name ~controller ~mode =
        let _, r =
          Spire.Scenarios.adaptive ~controller ~mode ~attack
            ~attack_from_us:attack_from ~duration_us:duration ()
        in
        let conv =
          Spire.Scenarios.post_attack_p99
            r.Spire.Scenarios.base.Spire.Scenarios.series
            ~from_us:converged_from
        in
        Stats.Table.add_row table
          [
            name;
            string_of_int r.Spire.Scenarios.base.Spire.Scenarios.confirmed;
            Printf.sprintf "%.1f" r.Spire.Scenarios.post_attack_p99_ms;
            Printf.sprintf "%.1f" conv;
            string_of_int r.Spire.Scenarios.base.Spire.Scenarios.max_view;
            Printf.sprintf "%d/%d" r.Spire.Scenarios.knob_applied
              r.Spire.Scenarios.knob_rejected;
            (if r.Spire.Scenarios.journal_consistent then "reconciles"
             else "INCONSISTENT");
          ];
        note_worst name conv;
        (* The knob oracle holds in every arm: the journal reconciles
           with the counters, and an arm without the controller never
           touches a knob at all. *)
        if not r.Spire.Scenarios.journal_consistent then
          fail "%s under %s: knob journal does not reconcile" name attack_name;
        if
          (not controller)
          && r.Spire.Scenarios.knob_applied + r.Spire.Scenarios.knob_rejected
             <> 0
        then fail "%s under %s: knob requests without a controller" name attack_name;
        (r, conv)
      in
      let static_p99s =
        List.map
          (fun (name, mode) -> snd (run_arm name ~controller:false ~mode))
          statics
      in
      let adaptive_r, adaptive_p99 =
        run_arm "adaptive (controller)" ~controller:true
          ~mode:Overlay.Net.Shortest
      in
      Stats.Table.print table;
      let best = List.fold_left Float.min infinity static_p99s in
      let worst = List.fold_left Float.max 0. static_p99s in
      Printf.printf
        "  %s: best static %.1fms, worst static %.1fms, adaptive %.1fms \
         (%.2fx best)\n"
        attack_name best worst adaptive_p99 (adaptive_p99 /. best);
      if adaptive_p99 > 1.25 *. best then
        fail
          "adaptive converged p99 %.1fms exceeds 1.25x best static %.1fms \
           under %s"
          adaptive_p99 best attack_name;
      if
        adaptive_r.Spire.Scenarios.knob_applied
        + adaptive_r.Spire.Scenarios.knob_rejected
        = 0
      then fail "controller issued no knob requests under %s" attack_name)
    attacks;
  (* Cross-attack comparison (needs both attacks): the controller's
     worst case must beat the worst static configuration's worst case —
     that is the whole point of adapting instead of picking one mode. *)
  if adapt_choice = `Both then begin
    let worst name = try Hashtbl.find worst_of name with Not_found -> 0. in
    let static_worsts = List.map (fun (name, _) -> worst name) statics in
    let worst_static = List.fold_left Float.max 0. static_worsts in
    let adaptive_worst = worst "adaptive (controller)" in
    Printf.printf
      "  worst case over both attacks: adaptive %.1fms vs worst static \
       %.1fms\n"
      adaptive_worst worst_static;
    if adaptive_worst >= worst_static then
      fail
        "adaptive worst case %.1fms does not beat the worst static \
         configuration's %.1fms"
        adaptive_worst worst_static
  end;
  if !failed then exit 1;
  shape
    "no single static configuration is good under both attacks; the \
     controller diagnoses the phase signature (ordering-only inflation = \
     leader, pre-ordering inflation = network), steers the knobs through \
     the validated plane, and lands within 25%% of the best static arm \
     each time — with a journal that reconciles to the last entry"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)

let microbenches () =
  section "MICRO" "Bechamel microbenchmarks of hot-path primitives";
  let open Bechamel in
  let rtu =
    Scada.Rtu.create ~id:1 ~breakers:4 ~feeders:2 ~rng:(Sim.Rng.create 1L)
  in
  let status = Scada.Rtu.read_status rtu in
  let status_op = Scada.Op.Status_report status in
  let encoded_op = Scada.Op.encode status_op in
  let dnp3_frame =
    Scada.Dnp3.encode
      {
        Scada.Dnp3.dest = 1;
        src = 0xF0;
        app =
          Scada.Dnp3.Poll_response
            { binary_inputs = [ true; false; true; true ]; analog_inputs = [ 1; 2; 3; 4; 5 ] };
      }
  in
  let modbus_frame =
    Scada.Modbus.encode_response
      {
        Scada.Modbus.transaction = 1;
        unit_id = 1;
        body = Scada.Modbus.Holding_registers [ 1; 2; 3; 4; 5; 6; 7; 8 ];
      }
  in
  let matrix = Array.init 6 (fun i -> Array.init 6 (fun j -> (i * 7) + j)) in
  let wire_preprepare =
    Wire.Message.Prime_msg
      (0, Prime.Msg.Preprepare { view = 3; seq = 42; matrix })
  in
  let wire_frame = Wire.Envelope.encode ~sender:0 wire_preprepare in
  let topo, _ = Overlay.Topology.wide_area_east_coast () in
  let group =
    Cryptosim.Threshold.create_group ~seed:1L ~members:[ 0; 1; 2; 3; 4; 5 ]
      ~threshold:2
  in
  let digest = Cryptosim.Digest.of_string "bench" in
  let shares =
    List.map (fun m -> Cryptosim.Threshold.sign_share group ~member:m digest) [ 0; 1 ]
  in
  let tests =
    [
      Test.make ~name:"scada op decode (E2/E3 hot data path)"
        (Staged.stage (fun () ->
             match Scada.Op.decode encoded_op with Ok _ -> () | Error _ -> assert false));
      Test.make ~name:"dnp3 poll decode (E2 proxy loop)"
        (Staged.stage (fun () ->
             match Scada.Dnp3.decode dnp3_frame with Ok _ -> () | Error _ -> assert false));
      Test.make ~name:"modbus response decode"
        (Staged.stage (fun () ->
             match Scada.Modbus.decode_response modbus_frame with
             | Ok _ -> ()
             | Error _ -> assert false));
      Test.make ~name:"prime eligibility vector (E4 ordered slot)"
        (Staged.stage (fun () ->
             ignore (Prime.Matrix.eligible matrix ~threshold:4 : int array)));
      Test.make ~name:"matrix digest (E4 proposal)"
        (Staged.stage (fun () ->
             ignore (Prime.Matrix.digest matrix : Cryptosim.Digest.t)));
      Test.make ~name:"dijkstra east-coast (E6 reroute)"
        (Staged.stage (fun () ->
             ignore
               (Overlay.Routing.shortest_path topo
                  ~usable:(fun _ _ -> true)
                  ~src:0 ~dst:9
                 : Overlay.Routing.path option)));
      Test.make ~name:"2 disjoint paths (E6 redundant mode)"
        (Staged.stage (fun () ->
             ignore
               (Overlay.Routing.disjoint_paths topo
                  ~usable:(fun _ _ -> true)
                  ~src:0 ~dst:9 ~k:2
                 : Overlay.Routing.path list)));
      Test.make ~name:"threshold combine (E2 confirmation)"
        (Staged.stage (fun () ->
             ignore
               (Cryptosim.Threshold.combine group ~digest shares
                 : Cryptosim.Threshold.combined option)));
      Test.make ~name:"wire envelope encode (every send)"
        (Staged.stage (fun () ->
             ignore (Wire.Envelope.encode ~sender:0 wire_preprepare : string)));
      Test.make ~name:"wire envelope decode (debug delivery)"
        (Staged.stage (fun () ->
             match Wire.Envelope.decode wire_frame with
             | Ok _ -> ()
             | Error _ -> assert false));
    ]
  in
  let table =
    Stats.Table.create ~title:"microbenchmarks" ~columns:[ "primitive"; "ns/op" ]
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let clock = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ clock ] (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols clock raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some (v :: _) -> v
            | Some [] | None -> nan
          in
          Stats.Table.add_row table [ name; Printf.sprintf "%.0f" ns ])
        results)
    tests;
  Stats.Table.print table

(* ------------------------------------------------------------------ *)

let () =
  let t0 = Unix.gettimeofday () in
  if perf_mode then Perf.run ~scale_full ()
  else begin
    let experiments =
      [
        ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
        ("E6B", e6b); ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10);
        ("E11", e11); ("E12", e12); ("E13", e13);
      ]
    in
    List.iter (fun (id, f) -> if enabled id then f ()) experiments;
    if run_micro && (wanted = None || wanted = Some "MICRO") then microbenches ()
  end;
  Printf.printf "\ntotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
