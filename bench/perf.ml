(* Perf-trajectory harness (PERF=1 bench mode).

   Runs the three throughput-critical experiment workloads — E2
   (fault-free latency), E3 (long fault-free soak) and E6 (flooded
   overlay under attack) — and reports wall-clock seconds plus
   simulated-events-per-second for each, alongside manual-loop codec
   microbenchmarks comparing a full envelope encode against the
   measured-size pass that replaced it on the send path.

   Results go to stdout and to [BENCH_PERF.json] in the current
   directory, so successive sessions can track the perf trajectory in
   version control. The JSON carries:

   - the pre-optimisation baseline (release profile, quick scale),
     recorded once when this harness was introduced;
   - a sticky [floor_events_per_sec]: established on the first run as
     half the measured E3 events/sec, then re-read from the existing
     file on later runs. At quick scale the harness exits non-zero if
     E3 throughput falls below the floor — a regression gate for the
     hot path. *)

let json_path = "BENCH_PERF.json"

(* Release-profile, quick-scale measurements taken immediately before
   the zero-allocation hot-path work, for the speedup column. *)
let pre_pr_e2_wall_s = 7.73
let pre_pr_e3_wall_s = 57.48
let pre_pr_e3_events_per_sec = 479_685.
let pre_pr_e6_wall_s = 12.19

let sec s = s * 1_000_000
let minutes m = m * 60 * 1_000_000
let hours h = h * 3600 * 1_000_000

type run = { id : string; wall_s : float; events : int }

let events_per_sec r =
  if r.wall_s <= 0. then 0. else float_of_int r.events /. r.wall_s

let timed id f =
  let t0 = Unix.gettimeofday () in
  let sys = f () in
  let wall_s = Unix.gettimeofday () -. t0 in
  let events = Sim.Engine.processed (Spire.System.engine sys) in
  let r = { id; wall_s; events } in
  Printf.printf "  %-4s wall=%6.2fs events=%9d events/sec=%9.0f\n%!" id wall_s
    events (events_per_sec r);
  r

let workloads ~scale_full () =
  let e2 =
    timed "E2" (fun () ->
        let dur = if scale_full then hours 1 else minutes 5 in
        fst (Spire.Scenarios.fault_free ~duration_us:dur ()))
  in
  let e3 =
    timed "E3" (fun () ->
        let dur = if scale_full then hours 30 else minutes 30 in
        fst (Spire.Scenarios.fault_free ~duration_us:dur ()))
  in
  let e6 =
    timed "E6" (fun () ->
        let dur = if scale_full then minutes 2 else sec 20 in
        fst
          (Spire.Scenarios.link_degradation ~mode:Overlay.Net.Flood ~factor:20.
             ~attack_from_us:(dur / 4) ~duration_us:dur ()))
  in
  (e2, e3, e6)

(* E8 batch-size sweep: constrained-flooding dissemination at a
   saturating per-endpoint rate, batching degree 1/4/16/64. Recorded
   so the trajectory file tracks the amortisation win (and would
   expose a regression that quietly re-inflated the per-update
   flooding cost). *)

type batch_point = {
  max_batch : int;
  confirmed_per_sec : float;
  p50_ms : float;
  p99_ms : float;
  wire_kb_per_update : float;
}

let e8_batch_sweep ~scale_full () =
  let duration = if scale_full then sec 15 else sec 5 in
  let substations = 16 in
  Printf.printf "  E8 batch sweep: flooding, %d substations at 1000 polls/s, %ds\n%!"
    substations (duration / 1_000_000);
  List.map
    (fun max_batch ->
      let sys, r =
        Spire.Scenarios.throughput
          ~tweak:(fun c ->
            { c with Spire.System.dissemination = Overlay.Net.Flood })
          ~max_batch ~substations ~poll_interval_us:1_000 ~duration_us:duration
          ()
      in
      let secs = float_of_int duration /. 1e6 in
      let confirmed_per_sec = float_of_int r.Spire.Scenarios.confirmed /. secs in
      let h = r.Spire.Scenarios.hist in
      let pct p =
        if Stats.Histogram.count h > 0 then Stats.Histogram.percentile h p
        else nan
      in
      let wire_bytes =
        (Overlay.Net.stats (Spire.System.net sys)).Overlay.Net.submitted_bytes
      in
      let point =
        {
          max_batch;
          confirmed_per_sec;
          p50_ms = pct 50.;
          p99_ms = pct 99.;
          wire_kb_per_update =
            float_of_int wire_bytes /. 1e3
            /. float_of_int (max 1 r.Spire.Scenarios.confirmed);
        }
      in
      Printf.printf
        "    batch=%-3d confirmed/s=%7.0f p50=%6.1fms p99=%6.1fms wire \
         KB/upd=%6.2f\n%!"
        max_batch confirmed_per_sec point.p50_ms point.p99_ms
        point.wire_kb_per_update;
      point)
    [ 1; 4; 16; 64 ]

(* E12 fleet sweep: the register-mapped device fleet at 1k/10k/100k
   devices. Recorded so the trajectory file tracks the confirmed-event
   rate and per-device wire cost of the hierarchical-aggregation path;
   a sticky floor on the 10k point's confirmed events/sec gates the
   fleet hot path the way [floor_events_per_sec] gates E3. *)

type fleet_point = {
  fleet_devices : int;
  fleet_concentrators : int;
  confirmed_events_per_sec : float;
  fleet_confirmed_writes : int;
  wire_bytes_per_device : float;
  fleet_churn : int;
  fleet_wall_s : float;
}

let e12_fleet_sweep ~scale_full () =
  let duration = if scale_full then sec 30 else sec 10 in
  let secs = float_of_int duration /. 1e6 in
  Printf.printf "  E12 fleet sweep: register-mapped device fleet, %ds runs\n%!"
    (duration / 1_000_000);
  List.map
    (fun devices ->
      let concentrators = min 64 (max 4 (devices / 2500)) in
      let t0 = Unix.gettimeofday () in
      let sys, _ =
        Spire.Scenarios.fleet ~concentrators ~devices ~duration_us:duration ()
      in
      let wall = Unix.gettimeofday () -. t0 in
      let s = Spire.System.fleet_stats sys in
      let field_bytes =
        List.fold_left
          (fun acc (kind, _, bytes) ->
            if kind = "field/advert" || kind = "field/report" then acc + bytes
            else acc)
          0 (Spire.System.wire_traffic sys)
      in
      let point =
        {
          fleet_devices = devices;
          fleet_concentrators = concentrators;
          confirmed_events_per_sec =
            float_of_int s.Field.Concentrator.confirmed_events /. secs;
          fleet_confirmed_writes = s.Field.Concentrator.confirmed_writes;
          wire_bytes_per_device =
            float_of_int field_bytes /. float_of_int devices;
          fleet_churn = s.Field.Concentrator.churn;
          fleet_wall_s = wall;
        }
      in
      Printf.printf
        "    devices=%-6d conc=%-2d conf events/s=%8.0f writes=%3d wire \
         B/dev=%6.1f churn=%5d wall=%6.2fs\n%!"
        devices concentrators point.confirmed_events_per_sec
        point.fleet_confirmed_writes point.wire_bytes_per_device
        point.fleet_churn wall;
      point)
    [ 1_000; 10_000; 100_000 ]

(* E13 adaptive sweep: the two-level controller against the E6 WAN
   delay attack, next to the static arms it must bracket. Recorded so
   the trajectory file tracks the controller's converged p99 (and
   would expose a regression that slowed detection or broke the
   validated knob path — journal_ok must stay true, applied > 0). *)

type e13_point = {
  e13_arm : string;
  e13_post_p99_ms : float;
  e13_conv_p99_ms : float;
  e13_applied : int;
  e13_rejected : int;
  e13_journal_ok : bool;
}

let e13_sweep ~scale_full () =
  let duration = if scale_full then minutes 4 else sec 40 in
  let attack_from = duration / 4 in
  let converged_from = attack_from + (duration / 4) in
  Printf.printf
    "  E13 adaptive sweep: 20x WAN delay from t=%ds, converged window from \
     t=%ds\n%!"
    (attack_from / 1_000_000) (converged_from / 1_000_000);
  List.map
    (fun (arm, controller, mode) ->
      let _, r =
        Spire.Scenarios.adaptive ~controller ~mode
          ~attack:(Spire.Scenarios.Wan_delay 20.) ~attack_from_us:attack_from
          ~duration_us:duration ()
      in
      let conv =
        Spire.Scenarios.post_attack_p99
          r.Spire.Scenarios.base.Spire.Scenarios.series ~from_us:converged_from
      in
      let point =
        {
          e13_arm = arm;
          e13_post_p99_ms = r.Spire.Scenarios.post_attack_p99_ms;
          e13_conv_p99_ms = conv;
          e13_applied = r.Spire.Scenarios.knob_applied;
          e13_rejected = r.Spire.Scenarios.knob_rejected;
          e13_journal_ok = r.Spire.Scenarios.journal_consistent;
        }
      in
      Printf.printf
        "    %-16s post p99=%7.1fms conv p99=%7.1fms knobs=%d/%d journal=%s\n%!"
        arm point.e13_post_p99_ms point.e13_conv_p99_ms point.e13_applied
        point.e13_rejected
        (if point.e13_journal_ok then "ok" else "INCONSISTENT");
      point)
    [
      ("adaptive", true, Overlay.Net.Shortest);
      ("static_shortest", false, Overlay.Net.Shortest);
      ("static_flood", false, Overlay.Net.Flood);
    ]

(* ------------------------------------------------------------------ *)
(* Domains-scaling curve: a fixed mixed workload of independent
   instances — E8 throughput points plus E10 chaos soak seeds — run
   through the Sim.Parallel work-stealing pool at 1/2/4/8 domains.
   Two things are recorded:

   - the merged digest, which must be byte-identical at every domain
     count (the pool's determinism contract: index-addressed results,
     per-instance seeds from Rng.derive) — a mismatch fails the run;
   - instances/sec per domain count, the scaling curve. The >= 3x
     speedup gate at 4 domains only fires when the machine actually
     has >= 4 cores; on smaller hosts the curve is recorded but the
     assertion is vacuous (domains can't beat cores). *)

type par_point = {
  par_domains : int;
  par_wall_s : float;
  instances_per_sec : float;
  par_digest : string;
}

let e8_par_sweep () =
  let cores = Sim.Parallel.default_domains () in
  let subs = [| 10; 20; 40; 80 |] in
  let n_soak = 4 in
  let jobs = Array.length subs + n_soak in
  Printf.printf
    "  E8 par sweep: %d jobs (%d throughput points + %d chaos soaks), cores=%d\n%!"
    jobs (Array.length subs) n_soak cores;
  let job i =
    if i < Array.length subs then begin
      let substations = subs.(i) in
      let _, r =
        Spire.Scenarios.throughput ~substations ~poll_interval_us:100_000
          ~duration_us:(sec 5) ()
      in
      Printf.sprintf "E8[%d]:confirmed=%d:views=%d" substations
        r.Spire.Scenarios.confirmed r.Spire.Scenarios.max_view
    end
    else begin
      let seed = Sim.Parallel.seed_of ~root:0x5EED5EEDL ~index:(i - Array.length subs) in
      let r = Chaos.Harness.soak ~seed () in
      Printf.sprintf "E10[%Ld]:confirmed=%d:clean=%b" seed
        r.Chaos.Harness.confirmed (Chaos.Harness.clean r)
    end
  in
  let points =
    List.map
      (fun domains ->
        let t0 = Unix.gettimeofday () in
        let results = Sim.Parallel.run ~domains ~jobs job in
        let wall = Unix.gettimeofday () -. t0 in
        let digest =
          Cryptosim.Digest.to_hex
            (Cryptosim.Digest.of_string
               (String.concat ";" (Array.to_list results)))
        in
        let p =
          {
            par_domains = domains;
            par_wall_s = wall;
            instances_per_sec = float_of_int jobs /. wall;
            par_digest = digest;
          }
        in
        Printf.printf
          "    domains=%d wall=%6.2fs instances/sec=%5.2f digest=%s\n%!"
          domains wall p.instances_per_sec digest;
        p)
      [ 1; 2; 4; 8 ]
  in
  (match points with
  | [] -> ()
  | first :: rest ->
    List.iter
      (fun p ->
        if not (String.equal p.par_digest first.par_digest) then begin
          Printf.printf
            "PERF FAIL: merged report digest diverges at domains=%d (%s vs %s) \
             — parallel runner is nondeterministic\n%!"
            p.par_domains p.par_digest first.par_digest;
          exit 1
        end)
      rest;
    Printf.printf "  merged digests identical across 1/2/4/8 domains\n%!");
  let gate =
    if cores >= 4 then begin
      let at n = List.find (fun p -> p.par_domains = n) points in
      let speedup = (at 4).instances_per_sec /. (at 1).instances_per_sec in
      Printf.printf "  par speedup at 4 domains: %.2fx\n%!" speedup;
      if speedup < 3. then begin
        Printf.printf
          "PERF FAIL: 4-domain speedup %.2fx below the 3x floor (cores=%d)\n%!"
          speedup cores;
        exit 1
      end;
      "passed"
    end
    else begin
      Printf.printf
        "  par speedup gate skipped: %d core(s), need >= 4 — curve recorded, \
         assertion vacuous\n%!"
        cores;
      "skipped"
    end
  in
  (cores, gate, points)

(* ------------------------------------------------------------------ *)
(* Intra-instance scaling curve: ONE E2 instance with its site shards
   executed by the conservative window scheduler on 1/2/4/8 domains
   (1 = the plain sequential engine, the speedup baseline). Recorded:

   - a digest over confirmed count / view / engine event count /
     per-kind wire ledger / WAN crossing ledger, which must be
     byte-identical at every domain count — the scheduler's
     bit-identical-trajectory contract; a mismatch hard-fails the run;
   - events/sec per domain count. The >= 2x speedup gate at 4 domains
     only fires when the machine has >= 4 cores; smaller hosts record
     the curve with the gate marked "skipped". *)

type intra_point = {
  i_domains : int;
  i_wall_s : float;
  i_events_per_sec : float;
  i_windows : int;
  i_digest : string;
}

let e2_intra_par ~scale_full () =
  let cores = Sim.Parallel.default_domains () in
  let duration = if scale_full then hours 1 else minutes 5 in
  Printf.printf
    "  E2 intra-par curve: one instance, site shards on 1/2/4/8 domains, \
     cores=%d\n%!"
    cores;
  let points =
    List.map
      (fun domains ->
        let cfg =
          {
            (Spire.System.default_config ()) with
            Spire.System.intra_domains = domains;
          }
        in
        let t0 = Unix.gettimeofday () in
        let sys, r = Spire.Scenarios.fault_free ~config:cfg ~duration_us:duration () in
        let wall = Unix.gettimeofday () -. t0 in
        let events = Sim.Engine.processed (Spire.System.engine sys) in
        let ledger =
          String.concat ";"
            (List.map
               (fun (kind, frames, bytes) ->
                 Printf.sprintf "%s=%d/%d" kind frames bytes)
               (Spire.System.wire_traffic sys))
        in
        let wan =
          String.concat ";"
            (List.map
               (fun (c : Sim.Shard.crossing) ->
                 Printf.sprintf "%d>%d=%d/%d" c.Sim.Shard.src_shard
                   c.Sim.Shard.dst_shard c.Sim.Shard.frames c.Sim.Shard.bytes)
               (Overlay.Net.wan_crossings (Spire.System.net sys)))
        in
        let digest =
          Cryptosim.Digest.to_hex
            (Cryptosim.Digest.of_string
               (Printf.sprintf "confirmed=%d;views=%d;events=%d;%s;%s"
                  r.Spire.Scenarios.confirmed r.Spire.Scenarios.max_view events
                  ledger wan))
        in
        let windows =
          match Spire.System.intra_stats sys with
          | Some st -> st.Sim.Conservative.windows
          | None -> 0
        in
        let p =
          {
            i_domains = domains;
            i_wall_s = wall;
            i_events_per_sec =
              (if wall <= 0. then 0. else float_of_int events /. wall);
            i_windows = windows;
            i_digest = digest;
          }
        in
        Printf.printf
          "    domains=%d wall=%6.2fs events/sec=%9.0f windows=%d digest=%s\n%!"
          domains wall p.i_events_per_sec windows digest;
        p)
      [ 1; 2; 4; 8 ]
  in
  (match points with
  | [] -> ()
  | first :: rest ->
    List.iter
      (fun p ->
        if not (String.equal p.i_digest first.i_digest) then begin
          Printf.printf
            "PERF FAIL: E2 trajectory digest diverges at intra domains=%d (%s \
             vs %s) — conservative scheduler broke bit-identity\n%!"
            p.i_domains p.i_digest first.i_digest;
          exit 1
        end)
      rest;
    Printf.printf "  trajectory digests identical across 1/2/4/8 domains\n%!");
  let gate =
    if cores >= 4 then begin
      let at n = List.find (fun p -> p.i_domains = n) points in
      let speedup = (at 4).i_events_per_sec /. (at 1).i_events_per_sec in
      Printf.printf "  intra-par speedup at 4 domains: %.2fx\n%!" speedup;
      if speedup < 2. then begin
        Printf.printf
          "PERF FAIL: 4-domain intra speedup %.2fx below the 2x floor \
           (cores=%d)\n%!"
          speedup cores;
        exit 1
      end;
      "passed"
    end
    else begin
      Printf.printf
        "  intra-par speedup gate skipped: %d core(s), need >= 4 — curve \
         recorded, assertion vacuous\n%!"
        cores;
      "skipped"
    end
  in
  (gate, points)

(* ------------------------------------------------------------------ *)
(* Codec microbenches: full encode vs measured size, manual loops.     *)

let ns_per_op ~iters f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    f ()
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let microbenches () =
  let matrix = Array.init 6 (fun i -> Array.init 6 (fun j -> (i * 7) + j)) in
  let preprepare =
    Wire.Message.Prime_msg (0, Prime.Msg.Preprepare { view = 3; seq = 42; matrix })
  in
  let commit =
    Wire.Message.Prime_msg
      (0, Prime.Msg.Commit { view = 3; seq = 42; digest = Cryptosim.Digest.of_string "c" })
  in
  let group =
    Cryptosim.Threshold.create_group ~seed:1L ~members:[ 0; 1; 2; 3; 4; 5 ]
      ~threshold:2
  in
  let digest = Cryptosim.Digest.of_string "bench" in
  let reply =
    Wire.Message.Replica_reply
      {
        Scada.Reply.replica = 0;
        update_key = (1, 2);
        exec_index = 3;
        digest;
        share = Cryptosim.Threshold.sign_share group ~member:0 digest;
        body = Scada.Reply.Ack;
      }
  in
  let bench name msg =
    let encode_ns =
      ns_per_op ~iters:100_000 (fun () ->
          ignore (Wire.Envelope.encode ~sender:0 msg : string))
    in
    let size_ns =
      ns_per_op ~iters:1_000_000 (fun () ->
          ignore (Wire.Envelope.size ~sender:0 msg : int))
    in
    Printf.printf "  %-10s encode=%7.1f ns/op   measured size=%6.1f ns/op\n%!"
      name encode_ns size_ns;
    (name, encode_ns, size_ns)
  in
  let b1 = bench "preprepare" preprepare in
  let b2 = bench "commit" commit in
  let b3 = bench "reply" reply in
  [ b1; b2; b3 ]

(* ------------------------------------------------------------------ *)
(* Sticky floor: parse it back out of an existing BENCH_PERF.json.     *)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some (i + m)
    else go (i + 1)
  in
  go 0

let existing_float key =
  if not (Sys.file_exists json_path) then None
  else begin
    let ic = open_in json_path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match find_sub s (Printf.sprintf "%S:" key) with
    | None -> None
    | Some start ->
      let stop = ref start in
      while
        !stop < String.length s
        && (match s.[!stop] with
           | '0' .. '9' | '.' | ' ' | '-' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.trim (String.sub s start (!stop - start)))
  end

let write_json ~scale ~floor ~e12_floor ~cores ~e2 ~e3 ~e6 ~e8 ~e12 ~e13
    ~par_gate ~par ~intra_gate ~intra ~micros =
  let oc = open_out json_path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"spire-bench-perf/1\",\n";
  p "  \"scale\": \"%s\",\n" scale;
  p "  \"cores\": %d,\n" cores;
  p "  \"floor_events_per_sec\": %.0f,\n" floor;
  p "  \"e12_floor_events_per_sec\": %.0f,\n" e12_floor;
  p "  \"pre_pr\": {\n";
  p "    \"note\": \"release profile, quick scale, before the zero-allocation hot-path work\",\n";
  p "    \"e2_wall_s\": %.2f,\n" pre_pr_e2_wall_s;
  p "    \"e3_wall_s\": %.2f,\n" pre_pr_e3_wall_s;
  p "    \"e3_events_per_sec\": %.0f,\n" pre_pr_e3_events_per_sec;
  p "    \"e6_wall_s\": %.2f\n" pre_pr_e6_wall_s;
  p "  },\n";
  p "  \"runs\": [\n";
  let run_line last r =
    p "    { \"id\": \"%s\", \"wall_s\": %.2f, \"events\": %d, \"events_per_sec\": %.0f }%s\n"
      r.id r.wall_s r.events (events_per_sec r)
      (if last then "" else ",")
  in
  run_line false e2;
  run_line false e3;
  run_line true e6;
  p "  ],\n";
  p "  \"e8_batch_sweep\": [\n";
  let rec batch_lines = function
    | [] -> ()
    | (b : batch_point) :: rest ->
      p
        "    { \"max_batch\": %d, \"confirmed_per_sec\": %.0f, \"p50_ms\": \
         %.1f, \"p99_ms\": %.1f, \"wire_kb_per_update\": %.2f }%s\n"
        b.max_batch b.confirmed_per_sec b.p50_ms b.p99_ms b.wire_kb_per_update
        (if rest = [] then "" else ",");
      batch_lines rest
  in
  batch_lines e8;
  p "  ],\n";
  p "  \"e12_fleet_sweep\": [\n";
  let rec fleet_lines = function
    | [] -> ()
    | (f : fleet_point) :: rest ->
      p
        "    { \"devices\": %d, \"concentrators\": %d, \
         \"confirmed_events_per_sec\": %.0f, \"confirmed_writes\": %d, \
         \"wire_bytes_per_device\": %.1f, \"link_churn\": %d, \"wall_s\": \
         %.2f }%s\n"
        f.fleet_devices f.fleet_concentrators f.confirmed_events_per_sec
        f.fleet_confirmed_writes f.wire_bytes_per_device f.fleet_churn
        f.fleet_wall_s
        (if rest = [] then "" else ",");
      fleet_lines rest
  in
  fleet_lines e12;
  p "  ],\n";
  p "  \"e13_adaptive\": [\n";
  let rec e13_lines = function
    | [] -> ()
    | (pt : e13_point) :: rest ->
      p
        "    { \"arm\": \"%s\", \"post_attack_p99_ms\": %.1f, \
         \"converged_p99_ms\": %.1f, \"knobs_applied\": %d, \
         \"knobs_rejected\": %d, \"journal_ok\": %b }%s\n"
        pt.e13_arm pt.e13_post_p99_ms pt.e13_conv_p99_ms pt.e13_applied
        pt.e13_rejected pt.e13_journal_ok
        (if rest = [] then "" else ",");
      e13_lines rest
  in
  e13_lines e13;
  p "  ],\n";
  p "  \"e8_par_sweep\": {\n";
  p "    \"gate\": \"%s\",\n" par_gate;
  p "    \"points\": [\n";
  let rec par_lines = function
    | [] -> ()
    | (pt : par_point) :: rest ->
      p
        "      { \"domains\": %d, \"wall_s\": %.2f, \"instances_per_sec\": \
         %.2f, \"digest\": \"%s\" }%s\n"
        pt.par_domains pt.par_wall_s pt.instances_per_sec pt.par_digest
        (if rest = [] then "" else ",");
      par_lines rest
  in
  par_lines par;
  p "    ]\n";
  p "  },\n";
  p "  \"e2_intra_par\": {\n";
  p "    \"gate\": \"%s\",\n" intra_gate;
  p "    \"points\": [\n";
  let rec intra_lines = function
    | [] -> ()
    | (pt : intra_point) :: rest ->
      p
        "      { \"domains\": %d, \"wall_s\": %.2f, \"events_per_sec\": %.0f, \
         \"windows\": %d, \"digest\": \"%s\" }%s\n"
        pt.i_domains pt.i_wall_s pt.i_events_per_sec pt.i_windows pt.i_digest
        (if rest = [] then "" else ",");
      intra_lines rest
  in
  intra_lines intra;
  p "    ]\n";
  p "  },\n";
  p "  \"speedup_e3_wall_vs_pre_pr\": %.2f,\n" (pre_pr_e3_wall_s /. e3.wall_s);
  p "  \"micro_ns_per_op\": {\n";
  let rec emit = function
    | [] -> ()
    | (name, enc, sz) :: rest ->
      p "    \"envelope_encode_%s\": %.1f,\n" name enc;
      p "    \"measured_size_%s\": %.1f%s\n" name sz
        (if rest = [] then "" else ",");
      emit rest
  in
  emit micros;
  p "  }\n";
  p "}\n";
  close_out oc

let run ~scale_full () =
  Printf.printf "PERF %s: wall-clock + simulated events/sec\n%!"
    (if scale_full then "[full scale]" else "[quick scale]");
  let e2, e3, e6 = workloads ~scale_full () in
  let e8 = e8_batch_sweep ~scale_full () in
  let e12 = e12_fleet_sweep ~scale_full () in
  let e13 = e13_sweep ~scale_full () in
  let cores, par_gate, par = e8_par_sweep () in
  let intra_gate, intra = e2_intra_par ~scale_full () in
  let micros = microbenches () in
  let floor =
    match existing_float "floor_events_per_sec" with
    | Some f ->
      Printf.printf "  floor: %.0f events/sec (from existing %s)\n%!" f json_path;
      f
    | None ->
      let f = Float.round (0.5 *. events_per_sec e3) in
      Printf.printf "  floor: %.0f events/sec (established: half of measured E3)\n%!" f;
      f
  in
  (* The fleet floor gates the 10k-device point's confirmed-event rate
     (the middle of the sweep: large enough to exercise the aggregation
     path, small enough to stay robust on loaded CI hosts). *)
  let e12_rate_10k =
    match List.find_opt (fun f -> f.fleet_devices = 10_000) e12 with
    | Some f -> f.confirmed_events_per_sec
    | None -> 0.
  in
  let e12_floor =
    match existing_float "e12_floor_events_per_sec" with
    | Some f ->
      Printf.printf "  e12 floor: %.0f conf events/sec (from existing %s)\n%!"
        f json_path;
      f
    | None ->
      let f = Float.round (0.5 *. e12_rate_10k) in
      Printf.printf
        "  e12 floor: %.0f conf events/sec (established: half of measured 10k \
         point)\n%!"
        f;
      f
  in
  write_json ~scale:(if scale_full then "full" else "quick") ~floor ~e12_floor
    ~cores ~e2 ~e3 ~e6 ~e8 ~e12 ~e13 ~par_gate ~par ~intra_gate ~intra ~micros;
  Printf.printf "  wrote %s (E3 speedup vs pre-PR: %.2fx)\n%!" json_path
    (pre_pr_e3_wall_s /. e3.wall_s);
  (* The floors were measured at quick scale; only enforce them there. *)
  if (not scale_full) && events_per_sec e3 < floor then begin
    Printf.printf "PERF FAIL: E3 %.0f events/sec below floor %.0f\n%!"
      (events_per_sec e3) floor;
    exit 1
  end;
  if (not scale_full) && e12_rate_10k < e12_floor then begin
    Printf.printf
      "PERF FAIL: E12 10k-device point %.0f conf events/sec below floor %.0f\n%!"
      e12_rate_10k e12_floor;
    exit 1
  end
