(* Membership subsystem tests: certificate structure and succession,
   the reconfiguration command codec and semantics, the certificate
   directory, and an end-to-end online-reconfiguration run through the
   full system (control-center promotion, site removal, membership
   growth into pre-provisioned standby replicas). *)

module Cert = Member.Cert
module Reconfig = Member.Reconfig
module Directory = Member.Directory
module Sys_ = Spire.System
module G = QCheck.Gen

(* The paper's flagship shape: 2 control centers with 2 replicas, 2
   data centers with 1; f = 1, k = 1, n = 6. *)
let flagship () =
  Cert.genesis ~f:1 ~k:1
    ~sites:
      [
        { Cert.site_id = 0; role = Cert.Active_cc; members = [ 0; 1 ] };
        { Cert.site_id = 1; role = Cert.Backup_cc; members = [ 2; 3 ] };
        { Cert.site_id = 2; role = Cert.Data_center; members = [ 4 ] };
        { Cert.site_id = 3; role = Cert.Data_center; members = [ 5 ] };
      ]

(* ------------------------------------------------------------------ *)
(* Certificates                                                        *)

let test_genesis_shape () =
  let c = flagship () in
  Alcotest.(check int) "epoch" 0 (Cert.epoch c);
  Alcotest.(check int) "n" 6 (Cert.n c);
  Alcotest.(check int) "quorum" 4 (Cert.quorum_size c);
  Alcotest.(check int) "reply" 2 (Cert.reply_threshold c);
  Alcotest.(check (list int)) "members in site order" [ 0; 1; 2; 3; 4; 5 ]
    (Cert.members c);
  Alcotest.(check (option int)) "rank of 4" (Some 4) (Cert.rank_of c 4);
  Alcotest.(check (option int)) "rank of stranger" None (Cert.rank_of c 9);
  Alcotest.(check (option int)) "member of rank 5" (Some 5)
    (Cert.member_of_rank c 5)

let test_genesis_rejects_invalid () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "two active CCs" true
    (raises (fun () ->
         Cert.genesis ~f:1 ~k:1
           ~sites:
             [
               { Cert.site_id = 0; role = Cert.Active_cc; members = [ 0; 1; 2 ] };
               { Cert.site_id = 1; role = Cert.Active_cc; members = [ 3; 4; 5 ] };
             ]));
  Alcotest.(check bool) "n below 3f+2k+1" true
    (raises (fun () ->
         Cert.genesis ~f:1 ~k:1
           ~sites:
             [ { Cert.site_id = 0; role = Cert.Active_cc; members = [ 0; 1 ] } ]));
  Alcotest.(check bool) "duplicate member across sites" true
    (raises (fun () ->
         Cert.genesis ~f:1 ~k:0
           ~sites:
             [
               { Cert.site_id = 0; role = Cert.Active_cc; members = [ 0; 1 ] };
               { Cert.site_id = 1; role = Cert.Backup_cc; members = [ 1; 2 ] };
             ]))

let test_succession_checks () =
  let prev = flagship () in
  let ok_actions = [ Reconfig.Promote 1 ] in
  (* A previous-epoch quorum of signers is required. *)
  (match
     Reconfig.apply prev ok_actions ~signers:[ 0; 1; 2 ] ~boundary_exec:10
   with
  | Ok _ -> Alcotest.fail "sub-quorum signers accepted"
  | Error _ -> ());
  (* Signers must be previous-epoch members. *)
  (match
     Reconfig.apply prev ok_actions ~signers:[ 0; 1; 2; 42 ] ~boundary_exec:10
   with
  | Ok _ -> Alcotest.fail "foreign signer accepted"
  | Error _ -> ());
  (* A full quorum of genuine members succeeds; the boundary may equal
     the previous one (non-strict monotonicity) but never regress. *)
  let next =
    match
      Reconfig.apply prev ok_actions ~signers:[ 0; 1; 2; 3 ] ~boundary_exec:10
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "valid succession rejected: %s" e
  in
  Alcotest.(check int) "epoch advanced" 1 (Cert.epoch next);
  Alcotest.(check bool) "chain digest linked" true
    (Cryptosim.Digest.equal (Cert.prev_digest next) (Cert.digest prev));
  (match
     Reconfig.apply next [ Reconfig.Promote 0 ] ~signers:(Cert.members next)
       ~boundary_exec:9
   with
  | Ok _ -> Alcotest.fail "boundary regression accepted"
  | Error _ -> ());
  match
    Reconfig.apply next [ Reconfig.Promote 0 ] ~signers:(Cert.members next)
      ~boundary_exec:10
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "equal boundary rejected: %s" e

(* ------------------------------------------------------------------ *)
(* Reconfiguration actions                                             *)

let test_action_semantics () =
  let prev = flagship () in
  let signers = Cert.members prev in
  (* Promote demotes the incumbent active control center. *)
  let next =
    match Reconfig.apply prev [ Reconfig.Promote 1 ] ~signers ~boundary_exec:5 with
    | Ok c -> c
    | Error e -> Alcotest.failf "promote failed: %s" e
  in
  let role_of id =
    match Cert.site_of next ~site_id:id with
    | Some s -> s.Cert.role
    | None -> Alcotest.failf "site %d missing" id
  in
  Alcotest.(check bool) "site 1 active" true (role_of 1 = Cert.Active_cc);
  Alcotest.(check bool) "site 0 demoted" true (role_of 0 = Cert.Backup_cc);
  (* Data centers cannot be promoted; unknown sites cannot be removed;
     new sites cannot join as the active control center. *)
  let fails actions =
    match Reconfig.apply prev actions ~signers ~boundary_exec:5 with
    | Ok _ -> false
    | Error _ -> true
  in
  Alcotest.(check bool) "promote data center" true
    (fails [ Reconfig.Promote 2 ]);
  Alcotest.(check bool) "remove unknown site" true
    (fails [ Reconfig.Remove_site 7 ]);
  Alcotest.(check bool) "add duplicate member" true
    (fails
       [
         Reconfig.Add_site
           { site_id = 9; role = Cert.Data_center; members = [ 5; 6 ] };
       ]);
  Alcotest.(check bool) "add active cc" true
    (fails
       [
         Reconfig.Add_site
           { site_id = 9; role = Cert.Active_cc; members = [ 6; 7 ] };
       ]);
  (* Removing the active control center requires promoting another
     first (exactly one active CC must remain) — and shrinking n below
     3f+2k+1 is rejected unless resilience is reduced in the same
     atomic command. *)
  Alcotest.(check bool) "remove active cc alone" true
    (fails [ Reconfig.Remove_site 0 ]);
  match
    Reconfig.apply prev
      [
        Reconfig.Set_resilience { f = 1; k = 0 };
        Reconfig.Promote 1;
        Reconfig.Remove_site 0;
      ]
      ~signers ~boundary_exec:5
  with
  | Ok c ->
    Alcotest.(check int) "failover n" 4 (Cert.n c);
    Alcotest.(check int) "failover quorum" 3 (Cert.quorum_size c)
  | Error e -> Alcotest.failf "atomic failover rejected: %s" e

let gen_role =
  G.oneofl [ Cert.Active_cc; Cert.Backup_cc; Cert.Data_center ]

let gen_action =
  G.oneof
    [
      G.map
        (fun (f, k) -> Reconfig.Set_resilience { f; k })
        (G.pair (G.int_bound 255) (G.int_bound 255));
      G.map (fun s -> Reconfig.Remove_site s) (G.int_bound 0xffff);
      G.map
        (fun ((site_id, role), members) ->
          Reconfig.Add_site { site_id; role; members })
        (G.pair
           (G.pair (G.int_bound 0xffff) gen_role)
           (G.list_size (G.int_bound 5) (G.int_bound 0xffff)));
      G.map (fun s -> Reconfig.Promote s) (G.int_bound 0xffff);
    ]

let prop_reconfig_roundtrip =
  QCheck.Test.make ~count:500 ~name:"reconfig codec roundtrip"
    (QCheck.make
       ~print:(Format.asprintf "%a" Reconfig.pp)
       (G.list_size (G.int_bound 6) gen_action))
    (fun actions ->
      match Reconfig.decode (Reconfig.encode actions) with
      | Ok actions' -> actions' = actions
      | Error e -> QCheck.Test.fail_reportf "decode error: %s" e)

let prop_reconfig_junk =
  QCheck.Test.make ~count:500 ~name:"reconfig decode total on junk"
    (QCheck.make (G.string_size ~gen:G.char (G.int_bound 30)))
    (fun s ->
      match Reconfig.decode s with Ok _ -> true | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Directory                                                           *)

let test_directory_chain () =
  let d = Directory.create ~genesis:(flagship ()) in
  let prev = Directory.current d in
  let next =
    match
      Directory.advance d [ Reconfig.Promote 1 ] ~signers:(Cert.members prev)
        ~boundary_exec:7
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "advance failed: %s" e
  in
  Alcotest.(check int) "epoch" 1 (Directory.epoch d);
  Alcotest.(check int) "history length" 2 (List.length (Directory.history d));
  (* Re-installing an existing certificate is idempotent. *)
  (match Directory.install d next with
  | Ok () -> ()
  | Error e -> Alcotest.failf "idempotent install failed: %s" e);
  Alcotest.(check int) "history unchanged" 2
    (List.length (Directory.history d));
  (* A fork at the same epoch is rejected. *)
  let fork =
    match
      Reconfig.apply prev [ Reconfig.Promote 1 ] ~signers:(Cert.members prev)
        ~boundary_exec:8
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "fork construction failed: %s" e
  in
  (match Directory.install d fork with
  | Ok () -> Alcotest.fail "fork accepted"
  | Error _ -> ());
  (* A gap (epoch + 2) is rejected. *)
  let skip =
    match
      Reconfig.apply next [ Reconfig.Promote 0 ] ~signers:(Cert.members next)
        ~boundary_exec:9
    with
    | Ok c -> { c with Cert.epoch = 3 }
    | Error e -> Alcotest.failf "skip construction failed: %s" e
  in
  match Directory.install d skip with
  | Ok () -> Alcotest.fail "gap accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* End-to-end online reconfiguration                                   *)

(* Control-center failover, then growth into a pre-provisioned standby
   site: the reconfiguration command travels through the ordered
   stream, every replica halts at the same boundary, and the standby
   replicas are walked in by the reconciler through a chunk-gated
   vouched state transfer. *)
let test_system_reconfiguration () =
  let cfg =
    {
      (Sys_.default_config ()) with
      Sys_.standby_site_sizes = [ 2 ];
      substations = 4;
      poll_interval_us = 50_000;
    }
  in
  let sys = Sys_.create cfg in
  Alcotest.(check int) "universe" 8 (Sys_.universe_count sys);
  Alcotest.(check int) "standby dark" (-1) (Sys_.epoch_of_replica sys 6);
  Sys_.start sys;
  Sys_.run sys ~duration_us:2_000_000;
  let confirmed_before = Sys_.confirmed_updates sys in
  Alcotest.(check bool) "baseline progress" true (confirmed_before > 50);
  (* Failover: promote the backup control center, drop the primary,
     shrink resilience to keep n >= 3f+2k+1 over the surviving sites. *)
  Sys_.submit_reconfig sys
    [
      Member.Reconfig.Set_resilience { f = 1; k = 0 };
      Member.Reconfig.Promote 1;
      Member.Reconfig.Remove_site 0;
    ];
  Sys_.run sys ~duration_us:4_000_000;
  Alcotest.(check int) "epoch 1 active" 1 (Sys_.current_epoch sys);
  Alcotest.(check (list int)) "epoch 1 membership" [ 2; 3; 4; 5 ]
    (Sys_.current_members sys);
  Alcotest.(check int) "primary retired" (-1) (Sys_.epoch_of_replica sys 0);
  let confirmed_mid = Sys_.confirmed_updates sys in
  Alcotest.(check bool) "progress across failover" true
    (confirmed_mid > confirmed_before + 50);
  (* Growth: restore full resilience by admitting the standby site. *)
  Sys_.submit_reconfig sys
    [
      Member.Reconfig.Set_resilience { f = 1; k = 1 };
      Member.Reconfig.Add_site
        { site_id = 4; role = Member.Cert.Data_center; members = [ 6; 7 ] };
    ];
  Sys_.run sys ~duration_us:6_000_000;
  Alcotest.(check int) "epoch 2 active" 2 (Sys_.current_epoch sys);
  Alcotest.(check (list int)) "epoch 2 membership" [ 2; 3; 4; 5; 6; 7 ]
    (Sys_.current_members sys);
  Alcotest.(check int) "standby 6 joined" 2 (Sys_.epoch_of_replica sys 6);
  Alcotest.(check int) "standby 7 joined" 2 (Sys_.epoch_of_replica sys 7);
  let confirmed_after = Sys_.confirmed_updates sys in
  Alcotest.(check bool) "progress across growth" true
    (confirmed_after > confirmed_mid + 50);
  Alcotest.(check (option string)) "no epoch violation" None
    (Sys_.epoch_violation sys);
  Alcotest.(check int) "two cutovers" 2 (List.length (Sys_.cutovers sys));
  (* Boundaries never regress across the chain. *)
  (match Sys_.cutovers sys with
  | [ (1, b1, _); (2, b2, _) ] ->
    Alcotest.(check bool) "boundary monotone" true (b1 <= b2)
  | other ->
    Alcotest.failf "unexpected cutovers (%d)" (List.length other));
  Sys_.assert_agreement sys

let () =
  QCheck_base_runner.set_seed 62193;
  Alcotest.run "member"
    [
      ( "cert",
        [
          Alcotest.test_case "genesis shape" `Quick test_genesis_shape;
          Alcotest.test_case "genesis rejects invalid" `Quick
            test_genesis_rejects_invalid;
          Alcotest.test_case "succession checks" `Quick test_succession_checks;
        ] );
      ( "reconfig",
        [
          Alcotest.test_case "action semantics" `Quick test_action_semantics;
          QCheck_alcotest.to_alcotest prop_reconfig_roundtrip;
          QCheck_alcotest.to_alcotest prop_reconfig_junk;
        ] );
      ( "directory",
        [ Alcotest.test_case "chain rules" `Quick test_directory_chain ] );
      ( "system",
        [
          Alcotest.test_case "online reconfiguration end to end" `Slow
            test_system_reconfiguration;
        ] );
    ]
