(* Tests for the intrusion-tolerant overlay: topology, routing, fair
   queueing, and the network runtime. *)

module T = Overlay.Topology
module R = Overlay.Routing
module FQ = Overlay.Fair_queue
module N = Overlay.Net

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_full_mesh () =
  let t = T.full_mesh ~nodes:4 ~latency_us:100 ~bandwidth_bps:1_000_000 in
  Alcotest.(check int) "links" 6 (List.length (T.links t));
  Alcotest.(check (list int)) "neighbors of 0" [ 1; 2; 3 ] (T.neighbors t 0);
  Alcotest.(check bool) "connected" true (T.connected t)

let test_duplicate_link_rejected () =
  let t = T.create ~nodes:3 in
  T.add_link t ~a:0 ~b:1 ~latency_us:10 ~bandwidth_bps:1000;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Topology.add_link: duplicate link") (fun () ->
      T.add_link t ~a:1 ~b:0 ~latency_us:10 ~bandwidth_bps:1000)

let test_self_link_rejected () =
  let t = T.create ~nodes:3 in
  Alcotest.check_raises "self" (Invalid_argument "Topology.add_link: self-link")
    (fun () -> T.add_link t ~a:1 ~b:1 ~latency_us:10 ~bandwidth_bps:1000)

let test_multi_site_structure () =
  let t =
    T.multi_site ~site_sizes:[ 2; 2; 1 ] ~lan_latency_us:50
      ~wan_latency_us:(fun _ _ -> 5_000)
      ~lan_bandwidth_bps:1_000_000 ~wan_bandwidth_bps:100_000
  in
  Alcotest.(check int) "nodes" 5 (T.node_count t);
  Alcotest.(check int) "sites" 3 (T.site_count t);
  Alcotest.(check (list int)) "site 0 members" [ 0; 1 ] (T.nodes_in_site t 0);
  Alcotest.(check (list int)) "site 2 members" [ 4 ] (T.nodes_in_site t 2);
  Alcotest.(check bool) "connected" true (T.connected t);
  (* Redundant WAN links exist between 2-node sites. *)
  Alcotest.(check bool) "redundant wan link" true
    (Option.is_some (T.link_between t 1 3))

let test_east_coast_topology () =
  let t, sites = T.wide_area_east_coast () in
  Alcotest.(check int) "nodes" 10 (T.node_count t);
  Alcotest.(check int) "sites" 4 (List.length sites);
  Alcotest.(check bool) "connected" true (T.connected t);
  let ccs = List.filter (fun (_, k) -> k = `Control_center) sites in
  Alcotest.(check int) "two control centers" 2 (List.length ccs)

(* ------------------------------------------------------------------ *)
(* Routing *)

(* A diamond: 0 - {1 fast, 2 slow} - 3 plus a long direct edge 0-3. *)
let diamond () =
  let t = T.create ~nodes:4 in
  T.add_link t ~a:0 ~b:1 ~latency_us:10 ~bandwidth_bps:1_000_000;
  T.add_link t ~a:1 ~b:3 ~latency_us:10 ~bandwidth_bps:1_000_000;
  T.add_link t ~a:0 ~b:2 ~latency_us:50 ~bandwidth_bps:1_000_000;
  T.add_link t ~a:2 ~b:3 ~latency_us:50 ~bandwidth_bps:1_000_000;
  T.add_link t ~a:0 ~b:3 ~latency_us:500 ~bandwidth_bps:1_000_000;
  t

let all_usable _ _ = true

let test_shortest_path_picks_fast_route () =
  let t = diamond () in
  match R.shortest_path t ~usable:all_usable ~src:0 ~dst:3 with
  | Some path -> Alcotest.(check (list int)) "fast route" [ 0; 1; 3 ] path
  | None -> Alcotest.fail "no path"

let test_shortest_path_avoids_unusable () =
  let t = diamond () in
  let usable a b = not ((a = 0 && b = 1) || (a = 1 && b = 0)) in
  match R.shortest_path t ~usable ~src:0 ~dst:3 with
  | Some path -> Alcotest.(check (list int)) "detour" [ 0; 2; 3 ] path
  | None -> Alcotest.fail "no path"

let test_shortest_path_unreachable () =
  let t = T.create ~nodes:3 in
  T.add_link t ~a:0 ~b:1 ~latency_us:10 ~bandwidth_bps:1000;
  Alcotest.(check bool) "no route" true
    (R.shortest_path t ~usable:all_usable ~src:0 ~dst:2 = None)

let test_path_latency () =
  let t = diamond () in
  Alcotest.(check int) "latency sums" 20 (R.path_latency_us t [ 0; 1; 3 ])

let test_disjoint_paths () =
  let t = diamond () in
  let paths = R.disjoint_paths t ~usable:all_usable ~src:0 ~dst:3 ~k:3 in
  Alcotest.(check int) "three disjoint routes" 3 (List.length paths);
  (* Internal nodes must not repeat across paths. *)
  let internals =
    List.concat_map
      (fun p -> List.filter (fun n -> n <> 0 && n <> 3) p)
      paths
  in
  let dedup = List.sort_uniq compare internals in
  Alcotest.(check int) "internally disjoint" (List.length internals)
    (List.length dedup)

let test_max_disjoint_east_coast () =
  let t, _ = T.wide_area_east_coast () in
  (* First nodes of sites 0 and 1 (0 and 3) have several disjoint
     routes thanks to redundant WAN links. *)
  Alcotest.(check bool) "at least 2 disjoint" true
    (R.max_disjoint t ~src:0 ~dst:3 >= 2)

(* ------------------------------------------------------------------ *)
(* Fair queue *)

let test_fair_queue_priority () =
  let q = FQ.create ~per_source_cap:10 in
  ignore (FQ.push q ~source:1 ~priority:FQ.Bulk "bulk1");
  ignore (FQ.push q ~source:1 ~priority:FQ.Control "ctl1");
  (match FQ.pop q with
  | Some (_, FQ.Control, v) -> Alcotest.(check string) "control first" "ctl1" v
  | _ -> Alcotest.fail "expected control class first");
  match FQ.pop q with
  | Some (_, FQ.Bulk, v) -> Alcotest.(check string) "then bulk" "bulk1" v
  | _ -> Alcotest.fail "expected bulk"

let test_fair_queue_round_robin () =
  let q = FQ.create ~per_source_cap:10 in
  (* Source 1 floods; source 2 sends one item. *)
  for i = 1 to 5 do
    ignore (FQ.push q ~source:1 ~priority:FQ.Control (Printf.sprintf "a%d" i))
  done;
  ignore (FQ.push q ~source:2 ~priority:FQ.Control "b1");
  (* Service order must alternate: a1 then b1 (fair share), not a1..a5. *)
  let first = FQ.pop q and second = FQ.pop q in
  (match first with
  | Some (1, _, "a1") -> ()
  | _ -> Alcotest.fail "expected a1 first");
  match second with
  | Some (2, _, "b1") -> ()
  | _ -> Alcotest.fail "expected b1 second (fairness)"

let test_fair_queue_cap_drops () =
  let q = FQ.create ~per_source_cap:3 in
  let accepted = ref 0 in
  for i = 1 to 10 do
    if FQ.push q ~source:7 ~priority:FQ.Bulk i then incr accepted
  done;
  Alcotest.(check int) "cap respected" 3 !accepted;
  Alcotest.(check int) "drops counted" 7 (FQ.dropped q);
  Alcotest.(check int) "backlog" 3 (FQ.backlog_of q ~source:7 ~priority:FQ.Bulk)

let prop_fair_queue_conserves_items =
  QCheck.Test.make ~name:"fair queue: popped = pushed (under cap)"
    QCheck.(list (pair (int_bound 4) (int_bound 100)))
    (fun pushes ->
      QCheck.assume (List.length pushes <= 32);
      let q = FQ.create ~per_source_cap:1000 in
      List.iter
        (fun (source, v) ->
          ignore (FQ.push q ~source ~priority:FQ.Control v))
        pushes;
      let rec drain acc =
        match FQ.pop q with None -> acc | Some _ -> drain (acc + 1)
      in
      drain 0 = List.length pushes)

(* Exact round-robin order: a source re-enters the rotation behind
   every other backlogged source after being served. Regression for the
   O(1) ring rotation — the order must match the list-rotation
   semantics it replaced. *)
let test_fair_queue_exact_rotation () =
  let q = FQ.create ~per_source_cap:10 in
  List.iter
    (fun (s, v) -> ignore (FQ.push q ~source:s ~priority:FQ.Control v))
    [ (1, "a1"); (2, "b1"); (3, "c1"); (1, "a2"); (3, "c2"); (3, "c3") ];
  let rec drain acc =
    match FQ.pop q with
    | Some (_, _, v) -> drain (v :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list string))
    "round-robin service order"
    [ "a1"; "b1"; "c1"; "a2"; "c2"; "c3" ]
    (drain [])

(* Reference model: per-source FIFOs with the rotation kept as a plain
   list rotated with [rest @ [src]]. Arbitrary interleaving of pushes
   and pops must give the ring implementation the same observable
   behaviour (accepted pushes and popped values alike). *)
let prop_fair_queue_matches_list_model =
  QCheck.Test.make ~count:300 ~name:"fair queue: ring matches list-rotation model"
    QCheck.(
      list
        (pair bool (pair (int_bound 5) (int_bound 1000)) (* push / pop steps *)))
    (fun steps ->
      let cap = 3 in
      let q = FQ.create ~per_source_cap:cap in
      let model_queues : (int, int Queue.t) Hashtbl.t = Hashtbl.create 7 in
      let model_rotation = ref [] in
      let model_q src =
        match Hashtbl.find_opt model_queues src with
        | Some mq -> mq
        | None ->
          let mq = Queue.create () in
          Hashtbl.add model_queues src mq;
          mq
      in
      let model_push src v =
        let mq = model_q src in
        if Queue.length mq >= cap then false
        else begin
          if Queue.is_empty mq then model_rotation := !model_rotation @ [ src ];
          Queue.push v mq;
          true
        end
      in
      let model_pop () =
        match !model_rotation with
        | [] -> None
        | src :: rest ->
          let mq = model_q src in
          let v = Queue.pop mq in
          model_rotation :=
            (if Queue.is_empty mq then rest else rest @ [ src ]);
          Some (src, v)
      in
      List.for_all
        (fun (is_push, (src, v)) ->
          if is_push then
            FQ.push q ~source:src ~priority:FQ.Control v = model_push src v
          else
            match (FQ.pop q, model_pop ()) with
            | None, None -> true
            | Some (s, FQ.Control, x), Some (s', x') -> s = s' && x = x'
            | _ -> false)
        steps)

(* The rotation ring starts at capacity 16; exceed it to cover growth. *)
let test_fair_queue_many_sources () =
  let q = FQ.create ~per_source_cap:4 in
  for s = 0 to 99 do
    ignore (FQ.push q ~source:s ~priority:FQ.Bulk s)
  done;
  let order = ref [] in
  let rec drain () =
    match FQ.pop q with
    | Some (s, _, _) ->
      order := s :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "one pass, push order" (List.init 100 Fun.id)
    (List.rev !order);
  Alcotest.(check bool) "empty after drain" true (FQ.is_empty q)

(* ------------------------------------------------------------------ *)
(* Net runtime *)

type net_msg = Ping of int

let make_net ?(per_source_cap = 64) topo =
  let engine = Sim.Engine.create ~seed:7L () in
  let net : net_msg N.t = N.create ~per_source_cap engine topo () in
  (engine, net)

let test_net_unicast_latency () =
  let topo = diamond () in
  let engine, net = make_net topo in
  let received = ref [] in
  N.set_handler net 3 (fun d -> received := d :: !received);
  N.send net ~src:0 ~dst:3 ~size_bytes:256 ~mode:N.Shortest (Ping 1);
  Sim.Engine.run_until_quiescent engine;
  match !received with
  | [ d ] ->
    Alcotest.(check int) "hops" 2 d.N.hops;
    (* 2 hops x 10us latency + 2 x ~transmission. *)
    Alcotest.(check bool) "latency sane" true
      (d.N.delivered_us - d.N.sent_us >= 20
      && d.N.delivered_us - d.N.sent_us < 1_000)
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l)

let test_net_reroutes_after_link_kill () =
  let topo = diamond () in
  let engine, net = make_net topo in
  let received = ref 0 in
  N.set_handler net 3 (fun _ -> incr received);
  N.kill_link net 0 1;
  N.send net ~src:0 ~dst:3 ~size_bytes:256 ~mode:N.Shortest (Ping 1);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "delivered via detour" 1 !received;
  Alcotest.(check (option (list int))) "route avoids dead link"
    (Some [ 0; 2; 3 ])
    (N.current_route net ~src:0 ~dst:3)

let test_net_redundant_survives_path_kill_in_flight () =
  (* With redundant dissemination, killing one path right after send
     still delivers via the others. *)
  let topo = diamond () in
  let engine, net = make_net topo in
  let received = ref 0 in
  N.set_handler net 3 (fun _ -> incr received);
  N.send net ~src:0 ~dst:3 ~size_bytes:256 ~mode:(N.Redundant 3) (Ping 1);
  (* Kill the fastest path's middle node before anything propagates. *)
  N.kill_node net 1;
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "exactly one delivery" 1 !received

let test_net_redundant_dedups () =
  let topo = diamond () in
  let engine, net = make_net topo in
  let received = ref 0 in
  N.set_handler net 3 (fun _ -> incr received);
  N.send net ~src:0 ~dst:3 ~size_bytes:256 ~mode:(N.Redundant 3) (Ping 9);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "one delivery despite 3 copies" 1 !received;
  let stats = N.stats net in
  Alcotest.(check bool) "duplicates suppressed" true
    (stats.N.duplicates_suppressed >= 1)

let test_net_flood_reaches_all () =
  let topo, _ = T.wide_area_east_coast () in
  let engine, net = make_net topo in
  let received = ref 0 in
  N.set_handler net 9 (fun _ -> incr received);
  N.send net ~src:0 ~dst:9 ~size_bytes:256 ~mode:N.Flood (Ping 1);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "flood delivers once" 1 !received

let test_net_flood_survives_heavy_link_loss () =
  let topo, _ = T.wide_area_east_coast () in
  let engine, net = make_net topo in
  let received = ref 0 in
  N.set_handler net 9 (fun _ -> incr received);
  (* Kill several WAN links; flooding still finds a way while the graph
     stays connected. *)
  N.kill_link net 0 3;
  N.kill_link net 0 6;
  N.kill_link net 0 8;
  N.send net ~src:0 ~dst:9 ~size_bytes:256 ~mode:N.Flood (Ping 1);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "delivered" 1 !received

let test_net_node_down_no_delivery () =
  let topo = diamond () in
  let engine, net = make_net topo in
  let received = ref 0 in
  N.set_handler net 3 (fun _ -> incr received);
  N.kill_node net 3;
  N.send net ~src:0 ~dst:3 ~size_bytes:256 ~mode:N.Shortest (Ping 1);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "nothing delivered" 0 !received

let test_net_junk_does_not_reach_handlers () =
  let topo = diamond () in
  let engine, net = make_net topo in
  let received = ref 0 in
  N.set_handler net 3 (fun _ -> incr received);
  N.inject_junk net ~src:0 ~dst:3 ~size_bytes:10_000
    ~priority:FQ.Bulk;
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "junk invisible" 0 !received;
  Alcotest.(check int) "junk counted" 1 (N.stats net).N.junk_frames

let test_net_control_priority_beats_junk_flood () =
  (* A bulk-class junk flood on the direct link must not starve control
     traffic: control jumps the queue. *)
  let t = T.create ~nodes:2 in
  (* Slow link so that queueing matters: 10 KB/s. *)
  T.add_link t ~a:0 ~b:1 ~latency_us:100 ~bandwidth_bps:10_000;
  let engine, net = make_net t in
  let delivered_at = ref (-1) in
  N.set_handler net 1 (fun d -> delivered_at := d.N.delivered_us);
  (* 50 junk frames of 1000 bytes: 100ms of serialisation each. *)
  for _ = 1 to 50 do
    N.inject_junk net ~src:0 ~dst:1 ~size_bytes:1_000 ~priority:FQ.Bulk
  done;
  N.send net ~src:0 ~dst:1 ~size_bytes:100 ~mode:N.Shortest (Ping 1);
  Sim.Engine.run_until_quiescent engine;
  (* The control frame waits at most for the junk frame already being
     transmitted (~100ms), never the whole backlog (~5s). *)
  Alcotest.(check bool) "delivered" true (!delivered_at >= 0);
  Alcotest.(check bool) "control jumped the queue" true (!delivered_at < 350_000)

let test_net_latency_factor () =
  let t = T.create ~nodes:2 in
  T.add_link t ~a:0 ~b:1 ~latency_us:1_000 ~bandwidth_bps:1_000_000;
  let engine, net = make_net t in
  let lat = ref 0 in
  N.set_handler net 1 (fun d -> lat := d.N.delivered_us - d.N.sent_us);
  N.set_latency_factor net 0 1 10.;
  N.send net ~src:0 ~dst:1 ~size_bytes:256 ~mode:N.Shortest (Ping 1);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check bool) "10x latency" true (!lat >= 10_000)

let test_net_lossy_link_arq_recovers () =
  (* 30% loss: hop-by-hop ARQ retransmits and every frame arrives. *)
  let t = T.create ~nodes:2 in
  T.add_link t ~a:0 ~b:1 ~latency_us:1_000 ~bandwidth_bps:1_000_000;
  let engine, net = make_net t in
  N.set_loss_probability net 0 1 0.3;
  let received = ref 0 in
  N.set_handler net 1 (fun _ -> incr received);
  for i = 1 to 100 do
    ignore
      (Sim.Engine.schedule_at engine ~time_us:(i * 50_000) (fun () ->
           N.send net ~src:0 ~dst:1 ~size_bytes:256 ~mode:N.Shortest (Ping i))
        : Sim.Engine.timer)
  done;
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "all delivered despite loss" 100 !received;
  Alcotest.(check bool) "retransmissions happened" true
    (N.retransmissions net > 10)

let test_net_loss_probability_validation () =
  let t = T.create ~nodes:2 in
  T.add_link t ~a:0 ~b:1 ~latency_us:1_000 ~bandwidth_bps:1_000_000;
  let _, net = make_net t in
  Alcotest.check_raises "p = 1 rejected"
    (Invalid_argument "Net.set_loss_probability: need 0 <= p < 1") (fun () ->
      N.set_loss_probability net 0 1 1.0)

let test_net_loss_adds_latency_not_loss () =
  let t = T.create ~nodes:2 in
  T.add_link t ~a:0 ~b:1 ~latency_us:2_000 ~bandwidth_bps:1_000_000;
  let engine, net = make_net t in
  N.set_loss_probability net 0 1 0.5;
  let latencies = ref [] in
  N.set_handler net 1 (fun d ->
      latencies := (d.N.delivered_us - d.N.sent_us) :: !latencies);
  for i = 1 to 50 do
    ignore
      (Sim.Engine.schedule_at engine ~time_us:(i * 100_000) (fun () ->
           N.send net ~src:0 ~dst:1 ~size_bytes:256 ~mode:N.Shortest (Ping i)))
  done;
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "all delivered" 50 (List.length !latencies);
  (* Some frames needed retries: their latency includes ARQ round trips. *)
  Alcotest.(check bool) "some retried frames are slower" true
    (List.exists (fun l -> l >= 6_000) !latencies)

let test_net_arq_exhaustion_counted_not_wedged () =
  (* Loss so high that some frames exhaust all 8 retransmission
     attempts: the drops must surface in stats (not vanish silently)
     and the link's fair queue must keep draining afterwards. *)
  let t = T.create ~nodes:2 in
  T.add_link t ~a:0 ~b:1 ~latency_us:1_000 ~bandwidth_bps:1_000_000;
  let engine, net = make_net t in
  N.set_loss_probability net 0 1 0.95;
  let received = ref 0 in
  N.set_handler net 1 (fun _ -> incr received);
  for i = 1 to 40 do
    ignore
      (Sim.Engine.schedule_at engine ~time_us:(i * 100_000) (fun () ->
           N.send net ~src:0 ~dst:1 ~size_bytes:256 ~mode:N.Shortest (Ping i))
        : Sim.Engine.timer)
  done;
  Sim.Engine.run_until_quiescent engine;
  let s = N.stats net in
  (* With p=0.95 each frame survives its 9 transmissions with
     probability 1 - 0.95^9 ~ 0.37; both outcomes occur in 40 frames. *)
  Alcotest.(check bool) "some frames exhausted ARQ" true
    (s.N.dropped_arq_exhausted > 0);
  Alcotest.(check int) "every submitted frame accounted for" 40
    (!received + s.N.dropped_arq_exhausted);
  (* The queue is not wedged: after the loss clears, traffic flows. *)
  N.set_loss_probability net 0 1 0.0;
  N.send net ~src:0 ~dst:1 ~size_bytes:256 ~mode:N.Shortest (Ping 0);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check bool) "link usable after exhaustion" true
    (!received > 0 && (N.stats net).N.delivered = !received)

let test_net_retired_src_dropped () =
  (* A retired (removed-from-membership) node keeps babbling: its
     frames must be counted and dropped, not delivered — whether
     submitted after retirement or already in flight when it lands.
     Re-admission restores delivery. *)
  let topo = diamond () in
  let engine, net = make_net topo in
  let received = ref 0 in
  N.set_handler net 3 (fun _ -> incr received);
  N.send net ~src:0 ~dst:3 ~size_bytes:256 ~mode:N.Shortest (Ping 1);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "baseline delivery" 1 !received;
  N.retire_node net 0;
  Alcotest.(check bool) "marked retired" true (N.node_retired net 0);
  N.send net ~src:0 ~dst:3 ~size_bytes:256 ~mode:N.Shortest (Ping 2);
  N.send net ~src:0 ~dst:3 ~size_bytes:256 ~mode:(N.Redundant 3) (Ping 3);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "retired frames not delivered" 1 !received;
  Alcotest.(check bool) "drops counted" true
    ((N.stats net).N.dropped_retired_src >= 2);
  (* In flight at retirement time: submitted while admissible, retired
     before delivery. *)
  N.unretire_node net 0;
  N.send net ~src:0 ~dst:3 ~size_bytes:256 ~mode:N.Shortest (Ping 4);
  N.retire_node net 0;
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "in-flight frame dropped" 1 !received;
  (* Retirement is about the source id, not liveness: a retired node
     still forwards other nodes' traffic through itself. *)
  N.kill_link net 0 2;
  N.retire_node net 1;
  N.send net ~src:0 ~dst:3 ~size_bytes:256 ~mode:N.Shortest (Ping 5);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "frame dropped while src retired" 1 !received;
  N.unretire_node net 0;
  N.send net ~src:0 ~dst:3 ~size_bytes:256 ~mode:N.Shortest (Ping 6);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "re-admitted src via retired forwarder" 2 !received;
  (* Unknown source ids (spoofed frames from outside the membership
     universe) are counted and dropped too, and never crash the
     runtime; retiring an out-of-range id is a no-op. *)
  N.retire_node net 99;
  N.retire_node net (-1);
  let before = (N.stats net).N.dropped_retired_src in
  N.send net ~src:42 ~dst:3 ~size_bytes:256 ~mode:N.Shortest (Ping 7);
  N.send net ~src:(-3) ~dst:3 ~size_bytes:256 ~mode:N.Shortest (Ping 8);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "unknown src never delivered" 2 !received;
  Alcotest.(check int) "unknown src counted" (before + 2)
    (N.stats net).N.dropped_retired_src

let test_net_self_send () =
  let topo = diamond () in
  let engine, net = make_net topo in
  let received = ref 0 in
  N.set_handler net 0 (fun _ -> incr received);
  N.send net ~src:0 ~dst:0 ~size_bytes:256 ~mode:N.Shortest (Ping 1);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "self delivery" 1 !received

(* ------------------------------------------------------------------ *)
(* Mid-run dissemination-mode switches (the runtime tuning plane's
   overlay contract) *)

(* Flip Shortest -> Flood -> Redundant 2 while the previous phase's
   frames are still in flight (sends are spaced 200us; the 0->9 route
   crosses several WAN hops of >= 1ms each). Contract: every frame is
   delivered exactly once — dedup absorbs the redundant copies — none
   is dropped for lack of a route, and the route caches survive being
   invalidated at each switch, exactly as [System.set_dissemination]
   does. *)
let test_net_mode_switch_under_load () =
  let topo, _ = T.wide_area_east_coast () in
  let engine, net = make_net ~per_source_cap:1024 topo in
  let got : (int, int) Hashtbl.t = Hashtbl.create 256 in
  N.set_handler net 9 (fun d ->
      let (Ping i) = d.N.payload in
      Hashtbl.replace got i
        (1 + Option.value ~default:0 (Hashtbl.find_opt got i)));
  let per_phase = 40 in
  List.iter
    (fun (p, mode) ->
      if p > 0 then
        ignore
          (Sim.Engine.schedule_at engine ~time_us:(p * per_phase * 200)
             (fun () -> N.invalidate_routes net)
            : Sim.Engine.timer);
      for i = 0 to per_phase - 1 do
        let id = (p * per_phase) + i in
        ignore
          (Sim.Engine.schedule_at engine
             ~time_us:((id * 200) + 1)
             (fun () ->
               N.send net ~src:0 ~dst:9 ~size_bytes:256 ~mode (Ping id))
            : Sim.Engine.timer)
      done)
    [ (0, N.Shortest); (1, N.Flood); (2, N.Redundant 2) ];
  Sim.Engine.run_until_quiescent engine;
  let total = 3 * per_phase in
  let missing = ref 0 and dup = ref 0 in
  for id = 0 to total - 1 do
    match Hashtbl.find_opt got id with
    | None -> incr missing
    | Some 1 -> ()
    | Some _ -> incr dup
  done;
  Alcotest.(check int) "no frame lost across switches" 0 !missing;
  Alcotest.(check int) "no duplicate delivery" 0 !dup;
  let s = N.stats net in
  Alcotest.(check bool) "redundant copies suppressed, not delivered" true
    (s.N.duplicates_suppressed > 0);
  Alcotest.(check int) "never dropped for lack of a route" 0
    s.N.dropped_no_route;
  Alcotest.(check int) "per-source cap never hit" 0 s.N.dropped_queue_full

(* Invalidation is harmless by construction: recomputation from the
   unchanged topology yields the same route, so a mode switch can never
   change where Shortest frames go. *)
let test_net_invalidate_routes_recomputes_same () =
  let topo = diamond () in
  let engine, net = make_net topo in
  let received = ref 0 in
  N.set_handler net 3 (fun _ -> incr received);
  N.send net ~src:0 ~dst:3 ~size_bytes:256 ~mode:N.Shortest (Ping 1);
  Sim.Engine.run_until_quiescent engine;
  let before = N.current_route net ~src:0 ~dst:3 in
  N.invalidate_routes net;
  let after = N.current_route net ~src:0 ~dst:3 in
  Alcotest.(check (option (list int))) "same route after invalidation" before
    after;
  N.send net ~src:0 ~dst:3 ~size_bytes:256 ~mode:N.Shortest (Ping 2);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "delivery unaffected" 2 !received

(* An in-flight frame keeps the route captured at submit: invalidating
   the caches immediately after send (what a mode switch does) neither
   loses nor duplicates it. *)
let test_net_switch_preserves_in_flight () =
  let topo, _ = T.wide_area_east_coast () in
  let engine, net = make_net topo in
  let deliveries = ref 0 in
  N.set_handler net 9 (fun _ -> incr deliveries);
  N.send net ~src:0 ~dst:9 ~size_bytes:256 ~mode:N.Shortest (Ping 1);
  N.invalidate_routes net;
  N.send net ~src:0 ~dst:9 ~size_bytes:256 ~mode:N.Flood (Ping 2);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "both frames delivered exactly once" 2 !deliveries;
  Alcotest.(check int) "no route drops" 0 (N.stats net).N.dropped_no_route

(* ------------------------------------------------------------------ *)
(* WAN boundary ledger vs. advertised latency floor *)

(* The conservative scheduler's lookahead precondition, as a property:
   every cross-shard frame hop observed in the boundary ledger must be
   delayed by at least the advertised per-pair minimum link latency
   ([Net.shard_min_latency]) — under random traffic across all three
   dissemination modes and with a link's latency factor inflated (the
   factor can only stretch delays, never shrink them below the floor). *)
let prop_wan_crossing_delay_respects_floor =
  QCheck.Test.make ~count:100
    ~name:"wan crossing delays >= advertised per-pair latency floor"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 25) (pair small_nat small_nat))
        (int_bound 4))
    (fun (sends, factor_tweak) ->
      let topo =
        T.multi_site ~site_sizes:[ 2; 2; 1 ] ~lan_latency_us:50
          ~wan_latency_us:(fun sa sb -> 2_000 + (500 * (sa + sb)))
          ~lan_bandwidth_bps:10_000_000 ~wan_bandwidth_bps:1_000_000
      in
      let n = T.node_count topo in
      let part =
        Sim.Shard.make ~shards:(T.site_count topo) ~owner:(T.site_of topo)
          ~nodes:n
      in
      let engine =
        Sim.Engine.create ~seed:11L ~shards:(Sim.Shard.engine_shards part) ()
      in
      let net : net_msg N.t = N.create ~partition:part engine topo () in
      (if factor_tweak > 0 then
         match
           List.find_opt
             (fun (l : T.link) -> T.site_of topo l.T.endpoint_a <> T.site_of topo l.T.endpoint_b)
             (T.links topo)
         with
         | Some l ->
           N.set_latency_factor net l.T.endpoint_a l.T.endpoint_b
             (1. +. float_of_int factor_tweak)
         | None -> ());
      List.iteri
        (fun i (a, b) ->
          let src = a mod n and dst = b mod n in
          if src <> dst then
            let mode =
              match i mod 3 with
              | 0 -> N.Shortest
              | 1 -> N.Redundant 2
              | _ -> N.Flood
            in
            N.send net ~src ~dst ~size_bytes:128 ~mode (Ping i))
        sends;
      Sim.Engine.run_until_quiescent engine;
      let m = N.shard_min_latency net in
      List.for_all
        (fun (c : Sim.Shard.crossing) ->
          (* max_int = every recorded copy was dropped before its
             propagation leg was ever scheduled. *)
          c.Sim.Shard.min_delay_us = max_int
          || c.Sim.Shard.min_delay_us
             >= m.(c.Sim.Shard.src_shard).(c.Sim.Shard.dst_shard))
        (N.wan_crossings net))

let test_shard_min_latency_matrix () =
  let topo =
    T.multi_site ~site_sizes:[ 2; 2 ] ~lan_latency_us:50
      ~wan_latency_us:(fun _ _ -> 7_000)
      ~lan_bandwidth_bps:10_000_000 ~wan_bandwidth_bps:1_000_000
  in
  let part =
    Sim.Shard.make ~shards:2 ~owner:(T.site_of topo) ~nodes:(T.node_count topo)
  in
  let engine = Sim.Engine.create ~shards:(Sim.Shard.engine_shards part) () in
  let net : net_msg N.t = N.create ~partition:part engine topo () in
  let m = N.shard_min_latency net in
  Alcotest.(check int) "cross pair floor" 7_000 m.(0).(1);
  Alcotest.(check int) "symmetric" 7_000 m.(1).(0);
  Alcotest.(check int) "diagonal has no cross channel" max_int m.(0).(0)

let () =
  Alcotest.run "overlay"
    [
      ( "topology",
        [
          Alcotest.test_case "full mesh" `Quick test_full_mesh;
          Alcotest.test_case "duplicate link" `Quick test_duplicate_link_rejected;
          Alcotest.test_case "self link" `Quick test_self_link_rejected;
          Alcotest.test_case "multi-site" `Quick test_multi_site_structure;
          Alcotest.test_case "east coast" `Quick test_east_coast_topology;
        ] );
      ( "routing",
        [
          Alcotest.test_case "shortest path" `Quick
            test_shortest_path_picks_fast_route;
          Alcotest.test_case "avoids unusable" `Quick
            test_shortest_path_avoids_unusable;
          Alcotest.test_case "unreachable" `Quick test_shortest_path_unreachable;
          Alcotest.test_case "path latency" `Quick test_path_latency;
          Alcotest.test_case "disjoint paths" `Quick test_disjoint_paths;
          Alcotest.test_case "east coast redundancy" `Quick
            test_max_disjoint_east_coast;
        ] );
      ( "fair_queue",
        [
          Alcotest.test_case "priority" `Quick test_fair_queue_priority;
          Alcotest.test_case "round robin" `Quick test_fair_queue_round_robin;
          Alcotest.test_case "cap drops" `Quick test_fair_queue_cap_drops;
          QCheck_alcotest.to_alcotest prop_fair_queue_conserves_items;
          Alcotest.test_case "exact rotation" `Quick
            test_fair_queue_exact_rotation;
          QCheck_alcotest.to_alcotest prop_fair_queue_matches_list_model;
          Alcotest.test_case "ring growth past 16 sources" `Quick
            test_fair_queue_many_sources;
        ] );
      ( "net",
        [
          Alcotest.test_case "unicast latency" `Quick test_net_unicast_latency;
          Alcotest.test_case "reroute after kill" `Quick
            test_net_reroutes_after_link_kill;
          Alcotest.test_case "redundant survives kill" `Quick
            test_net_redundant_survives_path_kill_in_flight;
          Alcotest.test_case "redundant dedups" `Quick test_net_redundant_dedups;
          Alcotest.test_case "flood reaches" `Quick test_net_flood_reaches_all;
          Alcotest.test_case "flood survives link loss" `Quick
            test_net_flood_survives_heavy_link_loss;
          Alcotest.test_case "node down" `Quick test_net_node_down_no_delivery;
          Alcotest.test_case "junk invisible" `Quick
            test_net_junk_does_not_reach_handlers;
          Alcotest.test_case "control beats junk flood" `Quick
            test_net_control_priority_beats_junk_flood;
          Alcotest.test_case "latency factor" `Quick test_net_latency_factor;
          Alcotest.test_case "lossy link ARQ" `Quick test_net_lossy_link_arq_recovers;
          Alcotest.test_case "loss validation" `Quick
            test_net_loss_probability_validation;
          Alcotest.test_case "ARQ exhaustion counted, queue drains" `Quick
            test_net_arq_exhaustion_counted_not_wedged;
          Alcotest.test_case "loss becomes latency" `Quick
            test_net_loss_adds_latency_not_loss;
          Alcotest.test_case "self send" `Quick test_net_self_send;
          Alcotest.test_case "retired and unknown src dropped" `Quick
            test_net_retired_src_dropped;
          Alcotest.test_case "mode switch under load" `Quick
            test_net_mode_switch_under_load;
          Alcotest.test_case "invalidation recomputes same routes" `Quick
            test_net_invalidate_routes_recomputes_same;
          Alcotest.test_case "switch preserves in-flight frames" `Quick
            test_net_switch_preserves_in_flight;
        ] );
      ( "wan_boundary",
        [
          QCheck_alcotest.to_alcotest prop_wan_crossing_delay_respects_floor;
          Alcotest.test_case "shard min-latency matrix" `Quick
            test_shard_min_latency_matrix;
        ] );
    ]
