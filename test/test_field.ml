(* Tests for the field layer (lib/field): typed point descriptors,
   register-mapped devices, per-device link sessions, concentrator
   aggregation and its end-to-end determinism — plus extra DNP3 codec
   coverage riding along (the fleet shares the substation field
   protocols). *)

module P = Field.Point
module D = Field.Device
module S = Field.Session
module MB = Scada.Modbus
module D3 = Scada.Dnp3
module FF = Scada.Field_frame

(* ------------------------------------------------------------------ *)
(* Point *)

let test_point_analog_derivation () =
  let p = P.analog ~table:P.Input_register ~address:3 ~nominal:1000 ~spread:800 in
  Alcotest.(check int) "step" 100 p.P.step;
  Alcotest.(check int) "deadband" 200 p.P.deadband;
  Alcotest.(check int) "lo" 200 (P.lo p);
  Alcotest.(check int) "hi" 1800 (P.hi p);
  (* Tiny spreads floor at 1, never 0 (a zero step would freeze the
     walk; a zero deadband would report every tick). *)
  let tiny = P.analog ~table:P.Input_register ~address:0 ~nominal:5 ~spread:2 in
  Alcotest.(check int) "step floor" 1 tiny.P.step;
  Alcotest.(check int) "deadband floor" 1 tiny.P.deadband

let test_point_envelope_clipped_to_u16 () =
  let p =
    P.analog ~table:P.Holding_register ~address:0 ~nominal:0xFFF0 ~spread:0x100
  in
  Alcotest.(check int) "hi clipped" 0xFFFF (P.hi p);
  let q = P.analog ~table:P.Holding_register ~address:0 ~nominal:10 ~spread:100 in
  Alcotest.(check int) "lo clipped" 0 (P.lo q)

let test_point_map_digest_sensitive () =
  let mk addr = P.analog ~table:P.Input_register ~address:addr ~nominal:1000 ~spread:100 in
  let d1 = P.map_digest [| mk 0; mk 1 |] in
  let d2 = P.map_digest [| mk 1; mk 0 |] in
  let d3 = P.map_digest [| mk 0; mk 1 |] in
  Alcotest.(check bool) "same points same digest" true (Cryptosim.Digest.equal d1 d3);
  Alcotest.(check bool) "order matters" false (Cryptosim.Digest.equal d1 d2)

(* ------------------------------------------------------------------ *)
(* Device *)

let mk_device ?(seed = 42L) () = D.create ~id:7 ~concentrator:2 ~seed

let test_device_same_seed_same_map () =
  let a = mk_device () and b = mk_device () in
  Alcotest.(check bool) "map digests equal" true
    (Cryptosim.Digest.equal (D.map_digest a) (D.map_digest b));
  Alcotest.(check bool) "adverts equal" true
    (FF.equal_advert (D.advert a) (D.advert b));
  let c = mk_device ~seed:43L () in
  Alcotest.(check bool) "different seed, different map" false
    (Cryptosim.Digest.equal (D.map_digest a) (D.map_digest c))

let test_device_tick_deterministic () =
  let a = mk_device () and b = mk_device () in
  for _ = 1 to 200 do
    let ea = D.tick a and eb = D.tick b in
    Alcotest.(check bool) "same events" true (ea = eb)
  done

let serve_ok dev body =
  match D.serve dev body with
  | MB.Exception_response { function_code; exception_code } ->
    Alcotest.failf "unexpected exception fc=0x%02x code=%d" function_code
      exception_code
  | resp -> resp

let test_device_serve_all_function_codes () =
  let dev = mk_device () in
  (match serve_ok dev (MB.Read_coils { start = 0; count = D.coils_count }) with
  | MB.Coils bits -> Alcotest.(check int) "coils" D.coils_count (List.length bits)
  | _ -> Alcotest.fail "expected Coils");
  (match
     serve_ok dev
       (MB.Read_discrete_inputs { start = 0; count = D.discrete_inputs_count })
   with
  | MB.Discrete_inputs bits ->
    Alcotest.(check int) "discrete inputs" D.discrete_inputs_count (List.length bits)
  | _ -> Alcotest.fail "expected Discrete_inputs");
  (match
     serve_ok dev
       (MB.Read_holding_registers { start = 0; count = D.holding_registers_count })
   with
  | MB.Holding_registers regs ->
    Alcotest.(check int) "holding" D.holding_registers_count (List.length regs)
  | _ -> Alcotest.fail "expected Holding_registers");
  (match
     serve_ok dev
       (MB.Read_input_registers { start = 0; count = D.input_registers_count })
   with
  | MB.Input_registers regs ->
    Alcotest.(check int) "input" D.input_registers_count (List.length regs)
  | _ -> Alcotest.fail "expected Input_registers");
  (match serve_ok dev (MB.Write_single_coil { address = 1; value = true }) with
  | MB.Coil_written { address = 1; value = true } -> ()
  | _ -> Alcotest.fail "expected Coil_written");
  (match serve_ok dev (MB.Write_single_register { address = 2; value = 0xAB }) with
  | MB.Register_written { address = 2; value = 0xAB } -> ()
  | _ -> Alcotest.fail "expected Register_written");
  (match
     serve_ok dev (MB.Write_multiple_coils { start = 0; values = [ true; false ] })
   with
  | MB.Coils_written { start = 0; count = 2 } -> ()
  | _ -> Alcotest.fail "expected Coils_written");
  match
    serve_ok dev (MB.Write_multiple_registers { start = 1; values = [ 5; 6 ] })
  with
  | MB.Registers_written { start = 1; count = 2 } -> ()
  | _ -> Alcotest.fail "expected Registers_written"

let test_device_write_then_read_back () =
  let dev = mk_device () in
  (match
     serve_ok dev (MB.Write_multiple_registers { start = 0; values = [ 0x123; 0x456 ] })
   with
  | MB.Registers_written _ -> ()
  | _ -> Alcotest.fail "write failed");
  Alcotest.(check (option int)) "holding 0" (Some 0x123)
    (D.holding_register dev ~address:0);
  Alcotest.(check (option int)) "holding 1" (Some 0x456)
    (D.holding_register dev ~address:1);
  Alcotest.(check (option int)) "out of range" None
    (D.holding_register dev ~address:99)

let test_device_serve_out_of_range_is_exception_2 () =
  let dev = mk_device () in
  let expect_exc fc body =
    match D.serve dev body with
    | MB.Exception_response { function_code; exception_code = 2 } ->
      Alcotest.(check int) "function code echoed" fc function_code
    | _ -> Alcotest.failf "expected exception 2 for fc 0x%02x" fc
  in
  expect_exc 0x01 (MB.Read_coils { start = D.coils_count; count = 1 });
  expect_exc 0x02
    (MB.Read_discrete_inputs { start = 0; count = D.discrete_inputs_count + 1 });
  expect_exc 0x04 (MB.Read_input_registers { start = 2; count = D.input_registers_count });
  expect_exc 0x10
    (MB.Write_multiple_registers
       { start = D.holding_registers_count - 1; values = [ 1; 2 ] })

let prop_device_input_registers_stay_in_envelope =
  QCheck.Test.make ~count:20 ~name:"device analog walk stays inside point envelopes"
    QCheck.(map Int64.of_int int)
    (fun seed ->
      let dev = D.create ~id:1 ~concentrator:0 ~seed in
      let ok = ref true in
      for _ = 1 to 500 do
        ignore (D.tick dev : FF.event list);
        match D.serve dev (MB.Read_input_registers { start = 0; count = D.input_registers_count }) with
        | MB.Input_registers regs ->
          List.iteri
            (fun _ v -> if v < 0 || v > 0xFFFF then ok := false)
            regs
        | _ -> ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Session *)

let test_session_linking_handshake_first () =
  let s = S.create ~seed:1L ~loss:0. in
  Alcotest.(check bool) "starts Linking" true (S.state s = S.Linking);
  (match S.step s with
  | `Relink -> ()
  | `Online | `Offline -> Alcotest.fail "first step must be the handshake");
  Alcotest.(check bool) "now Up" true (S.state s = S.Up)

let test_session_zero_loss_never_drops () =
  let s = S.create ~seed:1L ~loss:0. in
  ignore (S.step s);
  for _ = 1 to 1000 do
    match S.step s with
    | `Online -> ()
    | `Relink | `Offline -> Alcotest.fail "loss=0 must stay up"
  done;
  Alcotest.(check int) "churn is the one handshake" 1 (S.churn s)

let test_session_certain_loss_cycles () =
  let s = S.create ~seed:1L ~loss:1. in
  ignore (S.step s);
  (* Up --loss--> Down (offline), back-off round (offline), relink. *)
  (match S.step s with `Offline -> () | _ -> Alcotest.fail "expected drop");
  (match S.step s with `Offline -> () | _ -> Alcotest.fail "expected back-off");
  match S.step s with
  | `Relink -> ()
  | `Online | `Offline -> Alcotest.fail "expected relink"

let test_session_seq_dedup () =
  let s = S.create ~seed:1L ~loss:0. in
  Alcotest.(check int) "seq 0" 0 (S.next_seq s);
  Alcotest.(check int) "seq 1" 1 (S.next_seq s);
  Alcotest.(check bool) "accept 0" true (S.accept s ~seq:0);
  Alcotest.(check bool) "replay 0 dropped" false (S.accept s ~seq:0);
  Alcotest.(check bool) "accept 1" true (S.accept s ~seq:1);
  Alcotest.(check bool) "stale dropped" false (S.accept s ~seq:0);
  Alcotest.(check int) "two dups counted" 2 (S.dups_dropped s)

(* ------------------------------------------------------------------ *)
(* Concentrator: end-to-end determinism through a real simulation.     *)

let fleet_fingerprint () =
  let sys, r =
    Spire.Scenarios.fleet ~concentrators:2 ~devices:100
      ~duration_us:3_000_000 ()
  in
  let s = Spire.System.fleet_stats sys in
  let ledger =
    String.concat ";"
      (List.map
         (fun (k, f, b) -> Printf.sprintf "%s=%d/%d" k f b)
         (Spire.System.wire_traffic sys))
  in
  Printf.sprintf
    "confirmed=%d;events=%d;reports=%d;dups=%d;churn=%d;adverts=%d;conf_ev=%d;conf_wr=%d;%s"
    r.Spire.Scenarios.confirmed s.Field.Concentrator.events_seen
    s.Field.Concentrator.reports_accepted s.Field.Concentrator.dups_dropped
    s.Field.Concentrator.churn s.Field.Concentrator.adverts_sent
    s.Field.Concentrator.confirmed_events s.Field.Concentrator.confirmed_writes
    ledger

let test_fleet_run_deterministic () =
  let a = fleet_fingerprint () and b = fleet_fingerprint () in
  Alcotest.(check string) "same seed, same fleet trajectory" a b

let test_fleet_confirms_events_and_writes () =
  let sys, _ =
    Spire.Scenarios.fleet ~concentrators:2 ~devices:100
      ~duration_us:5_000_000 ()
  in
  let s = Spire.System.fleet_stats sys in
  Alcotest.(check int) "all devices placed" 100 s.Field.Concentrator.device_count;
  Alcotest.(check bool) "events confirmed" true
    (s.Field.Concentrator.confirmed_events > 0);
  Alcotest.(check bool) "confirmed <= seen" true
    (s.Field.Concentrator.confirmed_events <= s.Field.Concentrator.events_seen);
  Alcotest.(check bool) "writes confirmed" true
    (s.Field.Concentrator.confirmed_writes > 0);
  Alcotest.(check bool) "field frames charged" true
    (List.exists
       (fun (k, _, _) -> k = "field/report")
       (Spire.System.wire_traffic sys))

let test_fleet_disabled_charges_nothing () =
  let sys, _ =
    Spire.Scenarios.fault_free ~duration_us:2_000_000 ()
  in
  let s = Spire.System.fleet_stats sys in
  Alcotest.(check int) "no devices" 0 s.Field.Concentrator.device_count;
  Alcotest.(check int) "no events" 0 s.Field.Concentrator.events_seen;
  Alcotest.(check bool) "no field frames in the ledger" true
    (not
       (List.exists
          (fun (k, _, _) -> String.length k >= 6 && String.sub k 0 6 = "field/")
          (Spire.System.wire_traffic sys)))

(* ------------------------------------------------------------------ *)
(* Field_frame checksums *)

let test_report_checksum_value_sensitive () =
  let ev table address value = { FF.table; address; value } in
  let r events = { FF.concentrator = 1; device = 2; seq = 3; events } in
  let base = r [ ev FF.Input_register 0 100; ev FF.Discrete_input 1 1 ] in
  let changed = r [ ev FF.Input_register 0 101; ev FF.Discrete_input 1 1 ] in
  let reordered = r [ ev FF.Discrete_input 1 1; ev FF.Input_register 0 100 ] in
  Alcotest.(check bool) "value change changes checksum" false
    (FF.report_checksum base = FF.report_checksum changed);
  Alcotest.(check bool) "order change changes checksum" false
    (FF.report_checksum base = FF.report_checksum reordered);
  Alcotest.(check bool) "stable" true
    (FF.report_checksum base = FF.report_checksum base)

(* ------------------------------------------------------------------ *)
(* DNP3 codec: extra round-trip + fuzz coverage (satellite).           *)

let gen_dnp3_app =
  QCheck.Gen.(
    oneof
      [
        return D3.Poll_request;
        map2
          (fun bins anas -> D3.Poll_response { binary_inputs = bins; analog_inputs = anas })
          (list_size (int_bound 16) bool)
          (list_size (int_bound 16) (int_range (-1_000_000) 1_000_000));
        map2
          (fun point trip -> D3.Operate { point; action = (if trip then D3.Trip else D3.Close) })
          (int_bound 0xFF) bool;
        map2
          (fun point success -> D3.Operate_ack { point; success })
          (int_bound 0xFF) bool;
      ])

let gen_dnp3_frame =
  QCheck.Gen.(
    map2
      (fun (dest, src) app -> { D3.dest; src; app })
      (pair (int_bound 0xFFFF) (int_bound 0xFFFF))
      gen_dnp3_app)

let pp_dnp3 f = Printf.sprintf "dest=%d src=%d" f.D3.dest f.D3.src

let prop_dnp3_any_app_roundtrip =
  QCheck.Test.make ~count:500 ~name:"dnp3 any app roundtrip"
    (QCheck.make ~print:pp_dnp3 gen_dnp3_frame)
    (fun f ->
      match D3.decode (D3.encode f) with
      | Ok f' -> f' = f
      | Error _ -> false)

let prop_dnp3_truncation_never_raises =
  QCheck.Test.make ~count:500 ~name:"dnp3 truncation is Error, never raises"
    (QCheck.make
       ~print:(fun (f, cut) -> Printf.sprintf "%s cut=%.2f" (pp_dnp3 f) cut)
       QCheck.Gen.(pair gen_dnp3_frame (float_bound_inclusive 1.)))
    (fun (f, frac) ->
      let s = D3.encode f in
      let cut =
        min (String.length s - 1)
          (int_of_float (frac *. float_of_int (String.length s)))
      in
      match D3.decode (String.sub s 0 cut) with
      | Ok _ -> false
      | Error _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "decoder raised %s" (Printexc.to_string e))

let prop_dnp3_corrupt_body_rejected =
  QCheck.Test.make ~count:500 ~name:"dnp3 corrupt byte never yields same app"
    (QCheck.make
       ~print:(fun (f, at) -> Printf.sprintf "%s at=%d" (pp_dnp3 f) at)
       QCheck.Gen.(pair gen_dnp3_frame small_nat))
    (fun (f, at_seed) ->
      let s = D3.encode f in
      (* Skip the trailing checksum bytes: corrupting the checksum of a
         frame legitimately fails, which is also fine; body corruption
         must never round-trip to the same app. *)
      let at = 4 + (at_seed mod max 1 (String.length s - 6)) in
      match D3.decode (D3.corrupt s ~at) with
      | Ok f' -> f'.D3.app <> f.D3.app || f'.D3.dest <> f.D3.dest
      | Error _ -> true)

let () =
  Alcotest.run "field"
    [
      ( "point",
        [
          Alcotest.test_case "analog derivation" `Quick test_point_analog_derivation;
          Alcotest.test_case "u16 clipping" `Quick test_point_envelope_clipped_to_u16;
          Alcotest.test_case "map digest" `Quick test_point_map_digest_sensitive;
        ] );
      ( "device",
        [
          Alcotest.test_case "seeded map determinism" `Quick
            test_device_same_seed_same_map;
          Alcotest.test_case "tick determinism" `Quick test_device_tick_deterministic;
          Alcotest.test_case "serves all function codes" `Quick
            test_device_serve_all_function_codes;
          Alcotest.test_case "write then read back" `Quick
            test_device_write_then_read_back;
          Alcotest.test_case "out of range is exception 2" `Quick
            test_device_serve_out_of_range_is_exception_2;
          QCheck_alcotest.to_alcotest prop_device_input_registers_stay_in_envelope;
        ] );
      ( "session",
        [
          Alcotest.test_case "handshake first" `Quick
            test_session_linking_handshake_first;
          Alcotest.test_case "zero loss stays up" `Quick
            test_session_zero_loss_never_drops;
          Alcotest.test_case "certain loss cycles" `Quick
            test_session_certain_loss_cycles;
          Alcotest.test_case "sequence dedup" `Quick test_session_seq_dedup;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "deterministic trajectory" `Quick
            test_fleet_run_deterministic;
          Alcotest.test_case "confirms events and writes" `Quick
            test_fleet_confirms_events_and_writes;
          Alcotest.test_case "disabled fleet is silent" `Quick
            test_fleet_disabled_charges_nothing;
          Alcotest.test_case "report checksum" `Quick
            test_report_checksum_value_sensitive;
        ] );
      ( "dnp3",
        [
          QCheck_alcotest.to_alcotest prop_dnp3_any_app_roundtrip;
          QCheck_alcotest.to_alcotest prop_dnp3_truncation_never_raises;
          QCheck_alcotest.to_alcotest prop_dnp3_corrupt_body_rejected;
        ] );
    ]
