(* Tests for the simulated cryptography layer. *)

module D = Cryptosim.Digest
module K = Cryptosim.Keyring
module A = Cryptosim.Auth
module T = Cryptosim.Threshold

let test_digest_deterministic () =
  Alcotest.(check bool) "same input same digest" true
    (D.equal (D.of_string "hello") (D.of_string "hello"));
  Alcotest.(check bool) "different input different digest" false
    (D.equal (D.of_string "hello") (D.of_string "world"))

let test_digest_combine_order_sensitive () =
  let a = D.of_string "a" and b = D.of_string "b" in
  Alcotest.(check bool) "combine not commutative" false
    (D.equal (D.combine a b) (D.combine b a))

let test_digest_hex () =
  Alcotest.(check int) "hex length" 16 (String.length (D.to_hex (D.of_string "x")))

let test_sign_verify () =
  let kr = K.create ~seed:1L ~size:4 in
  let d = D.of_string "message" in
  let s = A.sign (K.secret kr 2) d in
  Alcotest.(check bool) "verifies" true (A.verify kr ~signer:2 ~digest:d s);
  Alcotest.(check int) "signer recorded" 2 (A.signature_signer s)

let test_verify_rejects_wrong_signer () =
  let kr = K.create ~seed:1L ~size:4 in
  let d = D.of_string "message" in
  let s = A.sign (K.secret kr 2) d in
  Alcotest.(check bool) "wrong signer" false (A.verify kr ~signer:3 ~digest:d s)

let test_verify_rejects_wrong_digest () =
  let kr = K.create ~seed:1L ~size:4 in
  let s = A.sign (K.secret kr 1) (D.of_string "m1") in
  Alcotest.(check bool) "wrong digest" false
    (A.verify kr ~signer:1 ~digest:(D.of_string "m2") s)

let test_forge_rejected () =
  let kr = K.create ~seed:1L ~size:4 in
  let d = D.of_string "command" in
  let s = A.forge ~claimed_signer:0 ~digest:d in
  Alcotest.(check bool) "forgery rejected" false
    (A.verify kr ~signer:0 ~digest:d s)

let test_rotate_invalidates_old_signatures () =
  let kr = K.create ~seed:1L ~size:4 in
  let d = D.of_string "m" in
  let old = A.sign (K.secret kr 0) d in
  let fresh_secret = K.rotate kr 0 in
  Alcotest.(check bool) "old signature dead" false
    (A.verify kr ~signer:0 ~digest:d old);
  let s = A.sign fresh_secret d in
  Alcotest.(check bool) "new signature lives" true
    (A.verify kr ~signer:0 ~digest:d s)

let test_mac_roundtrip () =
  let kr = K.create ~seed:2L ~size:4 in
  let d = D.of_string "pairwise" in
  let m = A.mac (K.secret kr 1) ~peer:3 d in
  Alcotest.(check bool) "mac verifies" true
    (A.verify_mac kr ~sender:1 ~receiver:3 ~digest:d m);
  Alcotest.(check bool) "wrong receiver" false
    (A.verify_mac kr ~sender:1 ~receiver:2 ~digest:d m);
  Alcotest.(check bool) "wrong sender" false
    (A.verify_mac kr ~sender:2 ~receiver:3 ~digest:d m)

(* ------------------------------------------------------------------ *)
(* Threshold signatures *)

let group () =
  T.create_group ~seed:5L ~members:[ 0; 1; 2; 3; 4; 5 ] ~threshold:4

let test_threshold_combine_success () =
  let g = group () in
  let d = D.of_string "state-update" in
  let shares = List.map (fun m -> T.sign_share g ~member:m d) [ 0; 1; 2; 3 ] in
  match T.combine g ~digest:d shares with
  | None -> Alcotest.fail "combine should succeed with threshold shares"
  | Some c -> Alcotest.(check bool) "verifies" true (T.verify g ~digest:d c)

let test_threshold_too_few_shares () =
  let g = group () in
  let d = D.of_string "state-update" in
  let shares = List.map (fun m -> T.sign_share g ~member:m d) [ 0; 1; 2 ] in
  Alcotest.(check bool) "too few" true (T.combine g ~digest:d shares = None)

let test_threshold_duplicate_members_dont_count () =
  let g = group () in
  let d = D.of_string "x" in
  let s0 = T.sign_share g ~member:0 d in
  let shares = [ s0; s0; s0; T.sign_share g ~member:1 d ] in
  Alcotest.(check bool) "duplicates collapse" true
    (T.combine g ~digest:d shares = None)

let test_threshold_corrupt_share_rejected () =
  let g = group () in
  let d = D.of_string "y" in
  let good = List.map (fun m -> T.sign_share g ~member:m d) [ 0; 1; 2 ] in
  let bad = T.corrupt_share (T.sign_share g ~member:3 d) in
  Alcotest.(check bool) "corrupt share invalid" false (T.verify_share g ~digest:d bad);
  Alcotest.(check bool) "combine fails with corrupt 4th" true
    (T.combine g ~digest:d (bad :: good) = None)

let test_threshold_wrong_digest_shares () =
  let g = group () in
  let d1 = D.of_string "d1" and d2 = D.of_string "d2" in
  let shares =
    List.map (fun m -> T.sign_share g ~member:m d1) [ 0; 1; 2 ]
    @ [ T.sign_share g ~member:3 d2 ]
  in
  Alcotest.(check bool) "mixed digests don't combine" true
    (T.combine g ~digest:d1 shares = None)

let test_threshold_nonmember_rejected () =
  let g = group () in
  Alcotest.check_raises "non-member"
    (Invalid_argument "Threshold.sign_share: not a member") (fun () ->
      ignore (T.sign_share g ~member:17 (D.of_string "z")))

let prop_sign_verify_roundtrip =
  QCheck.Test.make ~name:"sign/verify roundtrip for any message"
    QCheck.(pair small_string (int_bound 3))
    (fun (msg, signer) ->
      let kr = K.create ~seed:99L ~size:4 in
      let d = D.of_string msg in
      A.verify kr ~signer ~digest:d (A.sign (K.secret kr signer) d))

let prop_threshold_any_quorum_combines =
  QCheck.Test.make ~name:"any 4-of-6 subset combines"
    QCheck.(list_of_size (QCheck.Gen.return 6) bool)
    (fun mask ->
      let g = group () in
      let d = D.of_string "q" in
      let members = List.filteri (fun i _ -> List.nth mask i) [ 0; 1; 2; 3; 4; 5 ] in
      let shares = List.map (fun m -> T.sign_share g ~member:m d) members in
      let combined = T.combine g ~digest:d shares in
      if List.length members >= 4 then combined <> None else combined = None)

(* Reference FNV-1a 64-bit, written directly over Int64 as the digest
   module originally was. The shipping implementation tracks the hash
   as two unboxed 32-bit limbs; it must agree bit-for-bit, or every
   recorded golden run would silently shift. *)
let reference_fnv s =
  let fnv_offset = 0xcbf29ce484222325L in
  let fnv_prime = 0x100000001b3L in
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let prop_digest_matches_reference_fnv =
  QCheck.Test.make ~count:1000 ~name:"limb digest = reference Int64 FNV-1a"
    QCheck.(string_gen QCheck.Gen.char)
    (fun s -> Int64.equal (D.to_int64 (D.of_string s)) (reference_fnv s))

let prop_digest_combine_matches_reference =
  QCheck.Test.make ~count:1000 ~name:"combine = FNV over 16 big-endian bytes"
    QCheck.(pair (string_gen QCheck.Gen.char) (string_gen QCheck.Gen.char))
    (fun (sa, sb) ->
      let a = D.of_string sa and b = D.of_string sb in
      let buf = Bytes.create 16 in
      Bytes.set_int64_be buf 0 (D.to_int64 a);
      Bytes.set_int64_be buf 8 (D.to_int64 b);
      Int64.equal
        (D.to_int64 (D.combine a b))
        (reference_fnv (Bytes.to_string buf)))

let () =
  Alcotest.run "crypto"
    [
      ( "digest",
        [
          Alcotest.test_case "deterministic" `Quick test_digest_deterministic;
          Alcotest.test_case "combine order-sensitive" `Quick
            test_digest_combine_order_sensitive;
          Alcotest.test_case "hex" `Quick test_digest_hex;
          QCheck_alcotest.to_alcotest prop_digest_matches_reference_fnv;
          QCheck_alcotest.to_alcotest prop_digest_combine_matches_reference;
        ] );
      ( "auth",
        [
          Alcotest.test_case "sign/verify" `Quick test_sign_verify;
          Alcotest.test_case "wrong signer" `Quick test_verify_rejects_wrong_signer;
          Alcotest.test_case "wrong digest" `Quick test_verify_rejects_wrong_digest;
          Alcotest.test_case "forgery rejected" `Quick test_forge_rejected;
          Alcotest.test_case "rotation invalidates" `Quick
            test_rotate_invalidates_old_signatures;
          Alcotest.test_case "mac roundtrip" `Quick test_mac_roundtrip;
          QCheck_alcotest.to_alcotest prop_sign_verify_roundtrip;
        ] );
      ( "threshold",
        [
          Alcotest.test_case "combine success" `Quick test_threshold_combine_success;
          Alcotest.test_case "too few shares" `Quick test_threshold_too_few_shares;
          Alcotest.test_case "duplicates don't count" `Quick
            test_threshold_duplicate_members_dont_count;
          Alcotest.test_case "corrupt share rejected" `Quick
            test_threshold_corrupt_share_rejected;
          Alcotest.test_case "mixed digests" `Quick test_threshold_wrong_digest_shares;
          Alcotest.test_case "non-member rejected" `Quick
            test_threshold_nonmember_rejected;
          QCheck_alcotest.to_alcotest prop_threshold_any_quorum_combines;
        ] );
    ]
