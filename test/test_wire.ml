(* Wire-layer tests: qcheck round-trip properties for every codec,
   truncation / bit-flip fuzzing (decoders are total — Error, never an
   exception), envelope authentication, junk undecodability, and a
   short end-to-end system run with decode-on-delivery enabled. *)

module G = QCheck.Gen

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

let gen_bytes = G.string_size ~gen:G.char (G.int_bound 40)

let gen_int64 =
  G.map2
    (fun i b ->
      let v = Int64.of_int i in
      if b then Int64.lognot v else v)
    G.int G.bool

let gen_digest = G.map Cryptosim.Digest.of_int64 gen_int64
let gen_u16 = G.int_bound 0xffff
let gen_u32 = G.int_bound 0xffff_ffff

let gen_update =
  G.map
    (fun (client, client_seq, operation, submitted_us) ->
      Bft.Update.create ~client ~client_seq ~operation ~submitted_us)
    (G.quad gen_u16 gen_u32 gen_bytes (G.int_bound 1_000_000_000))

let gen_vector = G.array_size (G.int_bound 6) gen_u32
let gen_matrix = G.array_size (G.int_bound 5) gen_vector

let gen_prime_prepared =
  G.map
    (fun (entry_seq, entry_view, entry_matrix) ->
      { Prime.Msg.entry_seq; entry_view; entry_matrix })
    (G.triple gen_u32 gen_u32 gen_matrix)

let gen_prime =
  G.oneof
    [
      G.map
        (fun (origin, po_seq, update) ->
          Prime.Msg.Po_request { origin; po_seq; update })
        (G.triple gen_u16 gen_u32 gen_update);
      G.map
        (fun (origin, first_seq, updates) ->
          Prime.Msg.Po_batch { origin; first_seq; updates })
        (G.triple gen_u16 gen_u32 (G.list_size (G.int_bound 4) gen_update));
      G.map (fun vector -> Prime.Msg.Po_aru { vector }) gen_vector;
      G.map
        (fun (view, seq, matrix) -> Prime.Msg.Preprepare { view; seq; matrix })
        (G.triple gen_u32 gen_u32 gen_matrix);
      G.map
        (fun (view, seq, digest) -> Prime.Msg.Prepare { view; seq; digest })
        (G.triple gen_u32 gen_u32 gen_digest);
      G.map
        (fun (view, seq, digest) -> Prime.Msg.Commit { view; seq; digest })
        (G.triple gen_u32 gen_u32 gen_digest);
      G.map (fun view -> Prime.Msg.Suspect { view }) gen_u32;
      G.map
        (fun (new_view, last_committed, prepared) ->
          Prime.Msg.Viewchange { new_view; last_committed; prepared })
        (G.triple gen_u32 gen_u32 (G.list_size (G.int_bound 3) gen_prime_prepared));
      G.map
        (fun (view, proposals) -> Prime.Msg.Newview { view; proposals })
        (G.pair gen_u32
           (G.list_size (G.int_bound 3) (G.pair gen_u32 gen_matrix)));
      G.map
        (fun (origin, po_seq) -> Prime.Msg.Recon_request { origin; po_seq })
        (G.pair gen_u16 gen_u32);
      G.map
        (fun (origin, po_seq, update) ->
          Prime.Msg.Recon_reply { origin; po_seq; update })
        (G.triple gen_u16 gen_u32 gen_update);
      G.map (fun seq -> Prime.Msg.Slot_request { seq }) gen_u32;
      G.map
        (fun (seq, matrix) -> Prime.Msg.Slot_reply { seq; matrix })
        (G.pair gen_u32 gen_matrix);
      G.map
        (fun (executed, chain) -> Prime.Msg.Checkpoint { executed; chain })
        (G.pair gen_u32 gen_digest);
    ]

let gen_proposal =
  G.map
    (fun (seq, updates) -> { Pbft.Msg.seq; updates })
    (G.pair gen_u32 (G.list_size (G.int_bound 3) gen_update))

let gen_pbft_prepared =
  G.map
    (fun (entry_seq, entry_view, entry_updates) ->
      { Pbft.Msg.entry_seq; entry_view; entry_updates })
    (G.triple gen_u32 gen_u32 (G.list_size (G.int_bound 3) gen_update))

let gen_pbft =
  G.oneof
    [
      G.map
        (fun (update, broadcast) -> Pbft.Msg.Request { update; broadcast })
        (G.pair gen_update G.bool);
      G.map
        (fun (view, proposal) -> Pbft.Msg.Preprepare { view; proposal })
        (G.pair gen_u32 gen_proposal);
      G.map
        (fun (view, seq, digest) -> Pbft.Msg.Prepare { view; seq; digest })
        (G.triple gen_u32 gen_u32 gen_digest);
      G.map
        (fun (view, seq, digest) -> Pbft.Msg.Commit { view; seq; digest })
        (G.triple gen_u32 gen_u32 gen_digest);
      G.map
        (fun (seq, chain) -> Pbft.Msg.Checkpoint { seq; chain })
        (G.pair gen_u32 gen_digest);
      G.map
        (fun (new_view, last_stable, prepared) ->
          Pbft.Msg.Viewchange { new_view; last_stable; prepared })
        (G.triple gen_u32 gen_u32 (G.list_size (G.int_bound 4) gen_pbft_prepared));
      G.map
        (fun (view, proposals, stable_seq) ->
          Pbft.Msg.Newview { view; proposals; stable_seq })
        (G.triple gen_u32 (G.list_size (G.int_bound 4) gen_proposal) gen_u32);
    ]

let gen_share =
  G.map
    (fun (member, digest, tag) ->
      Cryptosim.Threshold.share_of_repr ~member ~digest ~tag)
    (G.triple gen_u16 gen_digest gen_digest)

let gen_reply_body =
  G.oneof
    [
      G.return Scada.Reply.Ack;
      G.map
        (fun (rtu, frame) -> Scada.Reply.Command { rtu; frame })
        (G.pair gen_u16 gen_bytes);
    ]

let gen_reply =
  G.map
    (fun ((replica, key_client, key_seq), (exec_index, digest, share, body)) ->
      {
        Scada.Reply.replica;
        update_key = (key_client, key_seq);
        exec_index;
        digest;
        share;
        body;
      })
    (G.pair
       (G.triple gen_u16 gen_u16 gen_u32)
       (G.quad gen_u32 gen_digest gen_share gen_reply_body))

let gen_chunk =
  G.map
    (fun ((xfer_id, chunk_index, chunk_count), (total_digest, data)) ->
      {
        Recovery.State_transfer.xfer_id;
        chunk_index;
        chunk_count;
        total_digest;
        data;
      })
    (G.pair (G.triple gen_u32 gen_u32 gen_u32) (G.pair gen_digest gen_bytes))

let gen_role =
  G.oneofl [ Member.Cert.Active_cc; Member.Cert.Backup_cc; Member.Cert.Data_center ]

let gen_site =
  G.map
    (fun (site_id, role, members) -> { Member.Cert.site_id; role; members })
    (G.triple gen_u16 gen_role (G.list_size (G.int_bound 4) gen_u16))

(* Arbitrary (not necessarily valid) certificates: the codec is a pure
   structural round-trip; validity is the Member layer's concern. *)
let gen_cert =
  G.map
    (fun ((epoch, f, k), (boundary_exec, sites, signers, prev_digest)) ->
      {
        Member.Cert.epoch;
        f;
        k;
        boundary_exec;
        sites;
        signers;
        prev_digest;
      })
    (G.pair
       (G.triple gen_u32 gen_u16 gen_u16)
       (G.quad gen_u32
          (G.list_size (G.int_bound 4) gen_site)
          (G.list_size (G.int_bound 6) gen_u16)
          gen_digest))

let gen_u8 = G.int_bound 0xff

let gen_field_advert =
  G.map
    (fun ((concentrator, device, map_digest), (di, co, ir, hr)) ->
      {
        Scada.Field_frame.concentrator;
        device;
        discrete_inputs = di;
        coils = co;
        input_registers = ir;
        holding_registers = hr;
        map_digest;
      })
    (G.pair
       (G.triple gen_u16 gen_u32 gen_digest)
       (G.quad gen_u8 gen_u8 gen_u8 gen_u8))

let gen_field_event =
  G.map
    (fun ((table, address), value) ->
      let table =
        Option.get (Scada.Field_frame.table_of_int (table land 3))
      in
      { Scada.Field_frame.table; address; value })
    (G.pair (G.pair gen_u8 gen_u16) gen_u16)

let gen_field_report =
  G.map
    (fun ((concentrator, device, seq), events) ->
      { Scada.Field_frame.concentrator; device; seq; events })
    (G.pair
       (G.triple gen_u16 gen_u32 gen_u32)
       (G.list_size (G.int_bound 6) gen_field_event))

let gen_inner_message =
  G.oneof
    [
      G.map
        (fun (sender, m) -> Wire.Message.Prime_msg (sender, m))
        (G.pair gen_u16 gen_prime);
      G.map
        (fun (sender, m) -> Wire.Message.Pbft_msg (sender, m))
        (G.pair gen_u16 gen_pbft);
      G.map (fun u -> Wire.Message.Client_update u) gen_update;
      G.map
        (fun us -> Wire.Message.Client_batch us)
        (G.list_size (G.int_bound 4) gen_update);
      G.map (fun r -> Wire.Message.Replica_reply r) gen_reply;
      G.map
        (fun rs -> Wire.Message.Reply_batch rs)
        (G.list_size (G.int_bound 4) gen_reply);
      G.map (fun c -> Wire.Message.Transfer_chunk c) gen_chunk;
      G.map (fun a -> Wire.Message.Field_advert a) gen_field_advert;
      G.map (fun r -> Wire.Message.Field_report r) gen_field_report;
    ]

let gen_message =
  G.oneof
    [
      gen_inner_message;
      (* One level of epoch wrapping, as the system produces. *)
      G.map
        (fun (e, inner) -> Wire.Message.Epoch_frame (e, inner))
        (G.pair gen_u32 gen_inner_message);
      G.map (fun c -> Wire.Message.Cert_frame c) gen_cert;
    ]

let arb gen pp = QCheck.make ~print:(Format.asprintf "%a" pp) gen

let pp_error ppf (e : Wire.Rw.error) =
  Format.pp_print_string ppf (Wire.Rw.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Round trips                                                         *)

let roundtrip ~name gen pp encode decode =
  QCheck.Test.make ~count:300 ~name (arb gen pp) (fun v ->
      match decode (encode v) with
      | Ok v' -> v' = v
      | Error e -> QCheck.Test.fail_reportf "decode error: %a" pp_error e)

let prop_update_roundtrip =
  roundtrip ~name:"update codec roundtrip" gen_update Bft.Update.pp
    Wire.Codec.encode_update Wire.Codec.decode_update

let prop_prime_roundtrip =
  roundtrip ~name:"prime msg codec roundtrip" gen_prime Prime.Msg.pp
    Wire.Codec.encode_prime Wire.Codec.decode_prime

let prop_pbft_roundtrip =
  roundtrip ~name:"pbft msg codec roundtrip" gen_pbft Pbft.Msg.pp
    Wire.Codec.encode_pbft Wire.Codec.decode_pbft

let prop_reply_roundtrip =
  roundtrip ~name:"replica reply codec roundtrip" gen_reply Scada.Reply.pp
    Wire.Codec.encode_reply Wire.Codec.decode_reply

let prop_chunk_roundtrip =
  roundtrip ~name:"state-transfer chunk codec roundtrip" gen_chunk
    (fun ppf c ->
      Format.fprintf ppf "chunk %d/%d" c.Recovery.State_transfer.chunk_index
        c.Recovery.State_transfer.chunk_count)
    Wire.Codec.encode_chunk Wire.Codec.decode_chunk

let gen_op =
  G.oneof
    [
      G.map
        (fun (rtu, breaker, desired) ->
          Scada.Op.Breaker_command
            {
              rtu;
              breaker;
              desired = (if desired then Scada.Rtu.Closed else Scada.Rtu.Open);
            })
        (G.triple (G.int_bound 200) (G.int_bound 16) G.bool);
      G.map
        (fun (rtu, position) -> Scada.Op.Tap_command { rtu; position })
        (G.pair (G.int_bound 200) (G.int_bound 32));
      G.map (fun hmi_id -> Scada.Op.Hmi_read { hmi_id }) (G.int_bound 200);
    ]

let prop_op_roundtrip =
  roundtrip ~name:"scada op codec roundtrip" gen_op Scada.Op.pp
    Wire.Codec.encode_op Wire.Codec.decode_op

let prop_message_roundtrip =
  roundtrip ~name:"message union codec roundtrip" gen_message Wire.Message.pp
    Wire.Message.encode Wire.Message.decode

let prop_envelope_roundtrip =
  QCheck.Test.make ~count:300 ~name:"envelope roundtrip (sender + message)"
    (arb (G.pair gen_u16 gen_message) (fun ppf (s, m) ->
         Format.fprintf ppf "sender=%d %a" s Wire.Message.pp m))
    (fun (sender, msg) ->
      match Wire.Envelope.decode (Wire.Envelope.encode ~sender msg) with
      | Ok env ->
        env.Wire.Envelope.sender = sender
        && Wire.Message.equal env.Wire.Envelope.message msg
        && env.Wire.Envelope.scheme = Wire.Envelope.scheme_of msg
      | Error e -> QCheck.Test.fail_reportf "decode error: %a" pp_error e)

let prop_encoding_deterministic =
  QCheck.Test.make ~count:200 ~name:"encoding is deterministic"
    (arb gen_message Wire.Message.pp) (fun msg ->
      String.equal (Wire.Message.encode msg) (Wire.Message.encode msg)
      && String.equal
           (Wire.Envelope.encode ~sender:3 msg)
           (Wire.Envelope.encode ~sender:3 msg))

let prop_envelope_size_accounts_overhead =
  QCheck.Test.make ~count:200
    ~name:"envelope size = body + header + authenticator"
    (arb (G.pair gen_u16 gen_message) (fun ppf (s, m) ->
         Format.fprintf ppf "sender=%d %a" s Wire.Message.pp m))
    (fun (sender, msg) ->
      Wire.Envelope.size ~sender msg
      = String.length (Wire.Message.encode msg)
        + Wire.Envelope.overhead (Wire.Envelope.scheme_of msg))

(* ------------------------------------------------------------------ *)
(* Measure law: the direct size computation used on the send hot path
   must equal the length of the actual encoding, for every codec and
   every constructor the generators can reach.                          *)

let measure_law ~name gen pp measure encode =
  QCheck.Test.make ~count:500 ~name (arb gen pp) (fun v ->
      measure v = String.length (encode v))

let prop_measure_update =
  measure_law ~name:"measure law: update" gen_update Bft.Update.pp
    Wire.Measure.update Wire.Codec.encode_update

let prop_measure_prime =
  measure_law ~name:"measure law: prime msg" gen_prime Prime.Msg.pp
    Wire.Measure.prime Wire.Codec.encode_prime

let prop_measure_pbft =
  measure_law ~name:"measure law: pbft msg" gen_pbft Pbft.Msg.pp
    Wire.Measure.pbft Wire.Codec.encode_pbft

let prop_measure_reply =
  measure_law ~name:"measure law: replica reply" gen_reply Scada.Reply.pp
    Wire.Measure.reply Wire.Codec.encode_reply

let prop_measure_chunk =
  measure_law ~name:"measure law: transfer chunk" gen_chunk
    (fun ppf c ->
      Format.fprintf ppf "chunk %d/%d" c.Recovery.State_transfer.chunk_index
        c.Recovery.State_transfer.chunk_count)
    Wire.Measure.chunk Wire.Codec.encode_chunk

let prop_measure_message =
  measure_law ~name:"measure law: message union" gen_message Wire.Message.pp
    Wire.Measure.message Wire.Message.encode

let prop_measure_envelope =
  QCheck.Test.make ~count:500 ~name:"measure law: size msg = length (encode msg)"
    (arb (G.pair gen_u16 gen_message) (fun ppf (s, m) ->
         Format.fprintf ppf "sender=%d %a" s Wire.Message.pp m))
    (fun (sender, msg) ->
      Wire.Envelope.size ~sender msg
      = String.length (Wire.Envelope.encode ~sender msg))

let test_kind_index_table () =
  Alcotest.(check int) "kind_count" 29 Wire.Message.kind_count;
  let names =
    List.init Wire.Message.kind_count Wire.Message.kind_name
  in
  Alcotest.(check int) "kind names distinct"
    Wire.Message.kind_count
    (List.length (List.sort_uniq compare names))

let prop_kind_index_consistent =
  QCheck.Test.make ~count:300 ~name:"kind m = kind_name (kind_index m)"
    (arb gen_message Wire.Message.pp) (fun m ->
      let k = Wire.Message.kind_index m in
      k >= 0
      && k < Wire.Message.kind_count
      && String.equal (Wire.Message.kind m) (Wire.Message.kind_name k))

(* ------------------------------------------------------------------ *)
(* Fuzz: truncation, bit flips, junk — decoders must return Error and
   must never raise.                                                   *)

let decode_is_error_never_raises decode s =
  match decode s with
  | Ok _ -> false
  | Error _ -> true
  | exception e ->
    QCheck.Test.fail_reportf "decoder raised %s" (Printexc.to_string e)

let prop_envelope_truncation =
  QCheck.Test.make ~count:300 ~name:"any strict prefix of a frame is Error"
    (arb
       (G.triple gen_u16 gen_message (G.float_bound_inclusive 1.))
       (fun ppf (s, m, f) ->
         Format.fprintf ppf "sender=%d cut=%.2f %a" s f Wire.Message.pp m))
    (fun (sender, msg, frac) ->
      let s = Wire.Envelope.encode ~sender msg in
      let cut = min (String.length s - 1) (int_of_float (frac *. float_of_int (String.length s))) in
      decode_is_error_never_raises Wire.Envelope.decode (String.sub s 0 cut))

let prop_message_truncation =
  QCheck.Test.make ~count:300 ~name:"any strict prefix of a body is Error"
    (arb
       (G.pair gen_message (G.float_bound_inclusive 1.))
       (fun ppf (m, f) -> Format.fprintf ppf "cut=%.2f %a" f Wire.Message.pp m))
    (fun (msg, frac) ->
      let s = Wire.Message.encode msg in
      let cut = min (String.length s - 1) (int_of_float (frac *. float_of_int (String.length s))) in
      decode_is_error_never_raises Wire.Message.decode (String.sub s 0 cut))

let prop_envelope_bitflip =
  QCheck.Test.make ~count:500
    ~name:"single bit flip anywhere in a frame is detected"
    (arb
       (G.triple gen_u16 gen_message (G.pair G.int G.int))
       (fun ppf (s, m, _) -> Format.fprintf ppf "sender=%d %a" s Wire.Message.pp m))
    (fun (sender, msg, (at_seed, bit_seed)) ->
      let s = Wire.Envelope.encode ~sender msg in
      let at = abs at_seed mod String.length s in
      let bit = 1 lsl (abs bit_seed mod 8) in
      let b = Bytes.of_string s in
      Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor bit));
      decode_is_error_never_raises Wire.Envelope.decode (Bytes.to_string b))

let never_raises_on_arbitrary_bytes =
  QCheck.Test.make ~count:1000 ~name:"decoders never raise on arbitrary bytes"
    (QCheck.make ~print:String.escaped (G.string_size ~gen:G.char (G.int_bound 80)))
    (fun s ->
      let total decode = match decode s with Ok _ | Error _ -> true in
      (try
         total Wire.Envelope.decode && total Wire.Message.decode
         && total Wire.Codec.decode_update
         && total Wire.Codec.decode_prime && total Wire.Codec.decode_pbft
         && total Wire.Codec.decode_reply && total Wire.Codec.decode_chunk
         && total Wire.Codec.decode_op
       with e ->
         QCheck.Test.fail_reportf "decoder raised %s" (Printexc.to_string e)))

let test_junk_is_undecodable () =
  let rng = Sim.Rng.create 0xBADF00DL in
  let rand = Sim.Rng.int rng in
  for _ = 1 to 200 do
    let size_bytes = 1 + rand 300 in
    (match Wire.Envelope.decode (Wire.Junk.undecodable ~rand ~size_bytes) with
    | Ok _ -> Alcotest.fail "random junk decoded as a valid frame"
    | Error _ -> ());
    match
      Wire.Envelope.decode
        (Wire.Junk.spoofed_header ~rand ~size_bytes:(size_bytes + 3))
    with
    | Ok _ -> Alcotest.fail "spoofed-header junk decoded as a valid frame"
    | Error _ -> ()
  done

(* A batch header claiming thousands of elements with almost no body
   must be rejected by the count-vs-remaining-bytes bound check, not
   allocated. *)
let test_lying_batch_is_rejected () =
  let rng = Sim.Rng.create 0xFEEDL in
  let rand = Sim.Rng.int rng in
  for _ = 1 to 200 do
    match Wire.Message.decode (Wire.Junk.lying_batch ~rand) with
    | Ok _ -> Alcotest.fail "lying batch count decoded as a valid message"
    | Error _ -> ()
  done

let test_corrupt_flips_one_bit () =
  let rng = Sim.Rng.create 7L in
  let rand = Sim.Rng.int rng in
  let s = String.make 32 'x' in
  for _ = 1 to 50 do
    let s' = Wire.Junk.corrupt ~rand s in
    let diff_bits = ref 0 in
    String.iteri
      (fun i c ->
        let x = Char.code c lxor Char.code s'.[i] in
        for b = 0 to 7 do
          if x land (1 lsl b) <> 0 then incr diff_bits
        done)
      s;
    Alcotest.(check int) "exactly one bit differs" 1 !diff_bits
  done

(* ------------------------------------------------------------------ *)
(* Envelope structure                                                  *)

let test_envelope_layout () =
  let msg = Wire.Message.Client_update
      (Bft.Update.create ~client:2 ~client_seq:5 ~operation:"op"
         ~submitted_us:1000)
  in
  let s = Wire.Envelope.encode ~sender:9 msg in
  Alcotest.(check char) "magic0" 'S' s.[0];
  Alcotest.(check char) "magic1" 'p' s.[1];
  Alcotest.(check int) "version" 1 (Char.code s.[2]);
  (* Client updates travel RSA-signed: 256-byte authenticator class. *)
  Alcotest.(check int) "rsa-class frame length"
    (Wire.Envelope.header_bytes
    + String.length (Wire.Message.encode msg)
    + Wire.Envelope.tag_bytes Wire.Envelope.Rsa)
    (String.length s);
  match Wire.Envelope.decode s with
  | Ok env ->
    Alcotest.(check int) "sender" 9 env.Wire.Envelope.sender;
    Alcotest.(check bool) "scheme is Rsa" true
      (env.Wire.Envelope.scheme = Wire.Envelope.Rsa)
  | Error e -> Alcotest.failf "decode failed: %s" (Wire.Rw.error_to_string e)

let test_scheme_assignment () =
  let u = Bft.Update.create ~client:0 ~client_seq:0 ~operation:"" ~submitted_us:0 in
  let check msg scheme name =
    Alcotest.(check bool) name true (Wire.Envelope.scheme_of msg = scheme)
  in
  check (Wire.Message.Prime_msg (0, Prime.Msg.Suspect { view = 0 }))
    Wire.Envelope.Hmac "replica traffic is HMAC class";
  check (Wire.Message.Client_update u) Wire.Envelope.Rsa
    "client updates are RSA class";
  check
    (Wire.Message.Replica_reply
       {
         Scada.Reply.replica = 0;
         update_key = (0, 0);
         exec_index = 0;
         digest = Cryptosim.Digest.of_string "d";
         share =
           Cryptosim.Threshold.share_of_repr ~member:0
             ~digest:(Cryptosim.Digest.of_string "s")
             ~tag:(Cryptosim.Digest.of_string "t");
         body = Scada.Reply.Ack;
       })
    Wire.Envelope.Threshold_sig "replies carry threshold shares"

(* Message classes must have visibly different frame costs: a leader's
   summary-matrix pre-prepare dwarfs a prepare/commit vote. *)
let test_size_shape () =
  let n = 6 in
  let matrix = Array.make n (Array.make n 7) in
  let pre =
    Wire.Envelope.size ~sender:0
      (Wire.Message.Prime_msg (0, Prime.Msg.Preprepare { view = 1; seq = 1; matrix }))
  in
  let commit =
    Wire.Envelope.size ~sender:0
      (Wire.Message.Prime_msg
         (0, Prime.Msg.Commit { view = 1; seq = 1; digest = Cryptosim.Digest.of_string "x" }))
  in
  if pre <= commit + 80 then
    Alcotest.failf "pre-prepare (%dB) should dwarf a commit vote (%dB)" pre
      commit

(* ------------------------------------------------------------------ *)
(* End-to-end: a fault-free system run with decode-on-delivery must
   confirm updates, keep agreement, and see zero decode errors — and
   the overlay's byte ledger must be consistent.                       *)

let test_system_decode_on_delivery () =
  let cfg =
    {
      (Spire.System.default_config ()) with
      Spire.System.substations = 4;
      wire_debug = true;
    }
  in
  let sys = Spire.System.create cfg in
  Spire.System.start sys;
  Spire.System.run sys ~duration_us:3_000_000;
  Spire.System.assert_agreement sys;
  Alcotest.(check int) "zero decode errors" 0 (Spire.System.wire_decode_errors sys);
  let confirmed = Spire.System.confirmed_updates sys in
  if confirmed = 0 then Alcotest.fail "no updates confirmed";
  let stats = Overlay.Net.stats (Spire.System.net sys) in
  if stats.Overlay.Net.submitted_bytes = 0 then
    Alcotest.fail "no bytes accounted on the overlay";
  if stats.Overlay.Net.delivered_bytes = 0 then
    Alcotest.fail "no delivered bytes accounted";
  if stats.Overlay.Net.delivered_bytes > stats.Overlay.Net.submitted_bytes then
    Alcotest.fail "delivered more bytes than submitted in single-path mode";
  (* Per-kind ledger: pre-prepares must be the heavyweight class. *)
  let traffic = Spire.System.wire_traffic sys in
  let avg kind =
    match List.find_opt (fun (k, _, _) -> String.equal k kind) traffic with
    | Some (_, frames, bytes) when frames > 0 -> Some (bytes / frames)
    | _ -> None
  in
  (match (avg "prime/preprepare", avg "prime/commit") with
  | Some pre, Some commit ->
    if pre <= commit then
      Alcotest.failf "avg pre-prepare frame (%dB) <= avg commit frame (%dB)"
        pre commit
  | _ -> Alcotest.fail "expected pre-prepare and commit traffic");
  (* Per-link accounting adds up and utilisation is sane. *)
  let reports = Overlay.Net.link_reports (Spire.System.net sys) in
  if reports = [] then Alcotest.fail "no link transmitted anything";
  List.iter
    (fun rep ->
      let u =
        Overlay.Net.link_utilisation (Spire.System.net sys)
          ~elapsed_us:3_000_000 rep
      in
      if u < 0. || u > 1. then Alcotest.failf "utilisation %f out of range" u)
    reports

let () =
  Alcotest.run "wire"
    [
      ( "roundtrip",
        [
          QCheck_alcotest.to_alcotest prop_update_roundtrip;
          QCheck_alcotest.to_alcotest prop_prime_roundtrip;
          QCheck_alcotest.to_alcotest prop_pbft_roundtrip;
          QCheck_alcotest.to_alcotest prop_reply_roundtrip;
          QCheck_alcotest.to_alcotest prop_chunk_roundtrip;
          QCheck_alcotest.to_alcotest prop_op_roundtrip;
          QCheck_alcotest.to_alcotest prop_message_roundtrip;
          QCheck_alcotest.to_alcotest prop_envelope_roundtrip;
          QCheck_alcotest.to_alcotest prop_encoding_deterministic;
          QCheck_alcotest.to_alcotest prop_envelope_size_accounts_overhead;
        ] );
      ( "measure",
        [
          QCheck_alcotest.to_alcotest prop_measure_update;
          QCheck_alcotest.to_alcotest prop_measure_prime;
          QCheck_alcotest.to_alcotest prop_measure_pbft;
          QCheck_alcotest.to_alcotest prop_measure_reply;
          QCheck_alcotest.to_alcotest prop_measure_chunk;
          QCheck_alcotest.to_alcotest prop_measure_message;
          QCheck_alcotest.to_alcotest prop_measure_envelope;
          Alcotest.test_case "kind index table" `Quick test_kind_index_table;
          QCheck_alcotest.to_alcotest prop_kind_index_consistent;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_envelope_truncation;
          QCheck_alcotest.to_alcotest prop_message_truncation;
          QCheck_alcotest.to_alcotest prop_envelope_bitflip;
          QCheck_alcotest.to_alcotest never_raises_on_arbitrary_bytes;
          Alcotest.test_case "junk byte strings never decode" `Quick
            test_junk_is_undecodable;
          Alcotest.test_case "lying batch counts never decode" `Quick
            test_lying_batch_is_rejected;
          Alcotest.test_case "corrupt flips exactly one bit" `Quick
            test_corrupt_flips_one_bit;
        ] );
      ( "envelope",
        [
          Alcotest.test_case "frame layout and magic" `Quick test_envelope_layout;
          Alcotest.test_case "auth scheme per traffic class" `Quick
            test_scheme_assignment;
          Alcotest.test_case "pre-prepares dwarf votes" `Quick test_size_shape;
        ] );
      ( "system",
        [
          Alcotest.test_case "decode-on-delivery E2E run" `Slow
            test_system_decode_on_delivery;
        ] );
    ]
