(* Tests for the SCADA layer: RTU device model, Modbus/DNP3 codecs,
   master state machine, endpoint/proxy/HMI client logic. *)

module R = Scada.Rtu
module MB = Scada.Modbus
module D3 = Scada.Dnp3

(* ------------------------------------------------------------------ *)
(* RTU *)

let make_rtu ?(id = 1) () =
  R.create ~id ~breakers:4 ~feeders:3 ~rng:(Sim.Rng.create 5L)

let test_rtu_initial_state () =
  let rtu = make_rtu () in
  Alcotest.(check int) "breakers" 4 (R.breaker_count rtu);
  Alcotest.(check int) "feeders" 3 (R.feeder_count rtu);
  for i = 0 to 3 do
    Alcotest.(check bool) "closed initially" true (R.breaker rtu ~index:i = R.Closed)
  done

let test_rtu_breaker_operation_delayed () =
  let rtu = make_rtu () in
  R.operate_breaker rtu ~index:2 ~desired:R.Open;
  Alcotest.(check bool) "not yet" true (R.breaker rtu ~index:2 = R.Closed);
  R.tick rtu;
  Alcotest.(check bool) "still pending" true (R.breaker rtu ~index:2 = R.Closed);
  R.tick rtu;
  Alcotest.(check bool) "now open" true (R.breaker rtu ~index:2 = R.Open)

let test_rtu_open_breaker_drops_current () =
  let rtu = make_rtu () in
  R.operate_breaker rtu ~index:0 ~desired:R.Open;
  R.tick rtu;
  R.tick rtu;
  R.tick rtu;
  let s = R.read_status rtu in
  Alcotest.(check bool) "current collapsed" true (s.R.currents_ma.(0) < 10_000)

let test_rtu_status_seq_increments () =
  let rtu = make_rtu () in
  let s1 = R.read_status rtu in
  let s2 = R.read_status rtu in
  Alcotest.(check int) "seq increments" (s1.R.seq + 1) s2.R.seq

let test_rtu_analog_within_bounds () =
  let rtu = make_rtu () in
  for _ = 1 to 500 do
    R.tick rtu
  done;
  let s = R.read_status rtu in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "voltage within spread" true
        (v >= 13_100_000 && v <= 14_500_000))
    s.R.voltages_mv;
  Alcotest.(check bool) "frequency near 60Hz" true
    (s.R.frequency_mhz >= 59_900 && s.R.frequency_mhz <= 60_100)

(* Satellite: physical-plausibility envelopes. Whatever the seed and
   however long the soak — including breaker trips and reclosures
   mid-run — no analog value ever leaves the envelope the mli
   advertises. *)
let prop_rtu_soak_stays_in_envelope =
  QCheck.Test.make ~count:20 ~name:"rtu soak never leaves analog envelopes"
    QCheck.(pair (map Int64.of_int int) (int_range 500 3000))
    (fun (seed, ticks) ->
      let rtu = R.create ~id:1 ~breakers:4 ~feeders:3 ~rng:(Sim.Rng.create seed) in
      let vlo, vhi = R.voltage_envelope_mv in
      let clo, chi = R.current_envelope_ma in
      let flo, fhi = R.frequency_envelope_mhz in
      let ok = ref true in
      for i = 1 to ticks do
        (* Exercise the breaker state machine too: trip and reclose a
           rotating breaker every ~100 ticks. *)
        if i mod 100 = 0 then
          R.operate_breaker rtu ~index:(i / 100 mod 4)
            ~desired:(if i mod 200 = 0 then R.Open else R.Closed);
        R.tick rtu;
        let s = R.read_status rtu in
        Array.iter (fun v -> if v < vlo || v > vhi then ok := false) s.R.voltages_mv;
        Array.iter (fun c -> if c < clo || c > chi then ok := false) s.R.currents_ma;
        if s.R.frequency_mhz < flo || s.R.frequency_mhz > fhi then ok := false
      done;
      !ok)

let test_rtu_tap_clamped () =
  let rtu = make_rtu () in
  R.set_tap rtu ~position:99;
  Alcotest.(check int) "clamped high" 16 (R.read_status rtu).R.tap_position;
  R.set_tap rtu ~position:(-99);
  Alcotest.(check int) "clamped low" (-16) (R.read_status rtu).R.tap_position

(* ------------------------------------------------------------------ *)
(* Modbus *)

let test_modbus_request_roundtrip () =
  let cases =
    [
      MB.Read_coils { start = 0; count = 16 };
      MB.Read_holding_registers { start = 100; count = 8 };
      MB.Write_single_coil { address = 3; value = true };
      MB.Write_single_coil { address = 4; value = false };
      MB.Write_single_register { address = 7; value = 0xBEEF };
    ]
  in
  List.iteri
    (fun i body ->
      let f = { MB.transaction = 1000 + i; unit_id = 17; body } in
      match MB.decode_request (MB.encode_request f) with
      | Ok f' ->
        Alcotest.(check int) "transaction" f.MB.transaction f'.MB.transaction;
        Alcotest.(check int) "unit" f.MB.unit_id f'.MB.unit_id;
        Alcotest.(check bool) "body" true (f.MB.body = f'.MB.body)
      | Error e -> Alcotest.failf "roundtrip %d failed: %s" i e)
    cases

let test_modbus_response_roundtrip () =
  let cases =
    [
      MB.Coils [ true; false; true; true; false; false; false; true; true ];
      MB.Coils [];
      MB.Holding_registers [ 0; 1; 0xFFFF; 42 ];
      MB.Coil_written { address = 2; value = true };
      MB.Register_written { address = 9; value = 77 };
      MB.Exception_response { function_code = 0x03; exception_code = 2 };
    ]
  in
  List.iteri
    (fun i body ->
      let f = { MB.transaction = i; unit_id = 1; body } in
      match MB.decode_response (MB.encode_response f) with
      | Ok f' -> Alcotest.(check bool) "body equal" true (f.MB.body = f'.MB.body)
      | Error e -> Alcotest.failf "roundtrip %d failed: %s" i e)
    cases

let test_modbus_rejects_garbage () =
  Alcotest.(check bool) "short frame" true
    (Result.is_error (MB.decode_request "ab"));
  Alcotest.(check bool) "bad protocol" true
    (Result.is_error (MB.decode_request "\x00\x01\x00\x99\x00\x05\x01\x01\x00\x00\x00\x08"))

let prop_modbus_coils_roundtrip =
  QCheck.Test.make ~name:"modbus coils roundtrip for any bit pattern"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 64) bool)
    (fun bits ->
      let f = { MB.transaction = 7; unit_id = 3; body = MB.Coils bits } in
      match MB.decode_response (MB.encode_response f) with
      | Ok { MB.body = MB.Coils bits'; _ } -> bits = bits'
      | Ok _ | Error _ -> false)

let prop_modbus_registers_roundtrip =
  QCheck.Test.make ~name:"modbus registers roundtrip"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 60) (int_bound 0xFFFF))
    (fun regs ->
      let f = { MB.transaction = 7; unit_id = 3; body = MB.Holding_registers regs } in
      match MB.decode_response (MB.encode_response f) with
      | Ok { MB.body = MB.Holding_registers regs'; _ } -> regs = regs'
      | Ok _ | Error _ -> false)

(* New function codes for the register-mapped fleet (lib/field):
   0x02 Read Discrete Inputs, 0x04 Read Input Registers, 0x0F Write
   Multiple Coils, 0x10 Write Multiple Registers. *)

let prop_modbus_new_requests_roundtrip =
  QCheck.Test.make ~name:"modbus 0x02/0x04/0x0F/0x10 requests roundtrip"
    QCheck.(
      pair (int_bound 3)
        (pair (int_bound 0xFFFF)
           (pair
              (list_of_size (QCheck.Gen.int_range 1 64) bool)
              (list_of_size (QCheck.Gen.int_range 1 60) (int_bound 0xFFFF)))))
    (fun (which, (start, (bits, regs))) ->
      let body =
        match which with
        | 0 -> MB.Read_discrete_inputs { start; count = List.length bits }
        | 1 -> MB.Read_input_registers { start; count = List.length regs }
        | 2 -> MB.Write_multiple_coils { start; values = bits }
        | _ -> MB.Write_multiple_registers { start; values = regs }
      in
      let f = { MB.transaction = 9; unit_id = 2; body } in
      match MB.decode_request (MB.encode_request f) with
      | Ok f' -> f'.MB.body = body
      | Error _ -> false)

let prop_modbus_new_responses_roundtrip =
  QCheck.Test.make ~name:"modbus 0x02/0x04/0x0F/0x10 responses roundtrip"
    QCheck.(
      pair (int_bound 3)
        (pair (int_bound 0xFFFF)
           (pair
              (list_of_size (QCheck.Gen.int_range 0 64) bool)
              (list_of_size (QCheck.Gen.int_range 0 60) (int_bound 0xFFFF)))))
    (fun (which, (start, (bits, regs))) ->
      let body =
        match which with
        | 0 -> MB.Discrete_inputs bits
        | 1 -> MB.Input_registers regs
        | 2 -> MB.Coils_written { start; count = 1 + List.length bits }
        | _ -> MB.Registers_written { start; count = 1 + List.length regs }
      in
      let f = { MB.transaction = 11; unit_id = 5; body } in
      match MB.decode_response (MB.encode_response f) with
      | Ok f' -> f'.MB.body = body
      | Error _ -> false)

let test_modbus_new_exception_responses () =
  List.iter
    (fun function_code ->
      let body = MB.Exception_response { function_code; exception_code = 2 } in
      let f = { MB.transaction = 3; unit_id = 8; body } in
      match MB.decode_response (MB.encode_response f) with
      | Ok f' -> Alcotest.(check bool) "body" true (f'.MB.body = body)
      | Error e -> Alcotest.failf "exception 0x%02x failed: %s" function_code e)
    [ 0x02; 0x04; 0x0F; 0x10 ]

let test_modbus_multi_write_caps () =
  (* byte count is a u8, so real Modbus caps one multi-write at 0x7B0
     coils / 123 registers; the encoder enforces both. *)
  let over_coils =
    { MB.transaction = 0; unit_id = 0;
      body = MB.Write_multiple_coils { start = 0; values = List.init 0x7B1 (fun _ -> true) } }
  in
  let over_regs =
    { MB.transaction = 0; unit_id = 0;
      body = MB.Write_multiple_registers { start = 0; values = List.init 124 (fun _ -> 1) } }
  in
  Alcotest.check_raises "coils over cap" (Invalid_argument "Modbus: too many coils in one write")
    (fun () -> ignore (MB.encode_request over_coils : string));
  Alcotest.check_raises "registers over cap"
    (Invalid_argument "Modbus: too many registers in one write") (fun () ->
      ignore (MB.encode_request over_regs : string))

(* Fuzz: truncation anywhere must yield Error, never an exception; a
   flipped bit must decode to Ok-or-Error, never raise (the MBAP
   header carries no checksum, so a flip may legally re-decode). *)

let gen_any_modbus_request =
  QCheck.Gen.(
    map
      (fun (which, (start, (bits, regs))) ->
        let body =
          match which with
          | 0 -> MB.Read_discrete_inputs { start; count = 1 + List.length bits }
          | 1 -> MB.Read_input_registers { start; count = 1 + List.length regs }
          | 2 -> MB.Write_multiple_coils { start; values = true :: bits }
          | 3 -> MB.Write_multiple_registers { start; values = 1 :: regs }
          | 4 -> MB.Read_coils { start; count = 1 + List.length bits }
          | _ -> MB.Read_holding_registers { start; count = 1 + List.length regs }
        in
        { MB.transaction = 21; unit_id = 4; body })
      (pair (int_bound 5)
         (pair (int_bound 0xFFFF)
            (pair
               (list_size (int_bound 32) bool)
               (list_size (int_bound 32) (int_bound 0xFFFF))))))

let prop_modbus_request_truncation =
  QCheck.Test.make ~name:"modbus request truncation is Error, never raises"
    QCheck.(
      pair
        (make ~print:(fun f -> Format.asprintf "%a" MB.pp_request f.MB.body)
           gen_any_modbus_request)
        (QCheck.float_bound_inclusive 1.))
    (fun (f, frac) ->
      let s = MB.encode_request f in
      let cut =
        min (String.length s - 1)
          (int_of_float (frac *. float_of_int (String.length s)))
      in
      match MB.decode_request (String.sub s 0 cut) with
      | Ok _ -> false
      | Error _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "decoder raised %s" (Printexc.to_string e))

let prop_modbus_request_bitflip_never_raises =
  QCheck.Test.make ~name:"modbus request bit flip never raises"
    QCheck.(
      pair
        (make ~print:(fun f -> Format.asprintf "%a" MB.pp_request f.MB.body)
           gen_any_modbus_request)
        (pair small_nat small_nat))
    (fun (f, (at_seed, bit_seed)) ->
      let s = Bytes.of_string (MB.encode_request f) in
      let at = at_seed mod Bytes.length s in
      let bit = bit_seed mod 8 in
      Bytes.set s at (Char.chr (Char.code (Bytes.get s at) lxor (1 lsl bit)));
      match MB.decode_request (Bytes.to_string s) with
      | Ok _ | Error _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "decoder raised %s" (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* DNP3 *)

let test_dnp3_roundtrip () =
  let cases =
    [
      D3.Poll_request;
      D3.Poll_response
        { binary_inputs = [ true; false; true ]; analog_inputs = [ 1; -5; 1 lsl 30 ] };
      D3.Operate { point = 2; action = D3.Trip };
      D3.Operate { point = 5; action = D3.Close };
      D3.Operate_ack { point = 2; success = true };
      D3.Operate_ack { point = 2; success = false };
    ]
  in
  List.iteri
    (fun i app ->
      let f = { D3.dest = 10; src = 0xF0; app } in
      match D3.decode (D3.encode f) with
      | Ok f' ->
        Alcotest.(check int) "dest" 10 f'.D3.dest;
        Alcotest.(check bool) "app" true (f.D3.app = f'.D3.app)
      | Error e -> Alcotest.failf "roundtrip %d failed: %s" i e)
    cases

let test_dnp3_checksum_rejects_corruption () =
  let f =
    {
      D3.dest = 4;
      src = 9;
      app = D3.Poll_response { binary_inputs = [ true ]; analog_inputs = [ 42 ] };
    }
  in
  let encoded = D3.encode f in
  (* Corrupt every body byte position in turn; all must be rejected. *)
  for at = 4 to String.length encoded - 3 do
    match D3.decode (D3.corrupt encoded ~at) with
    | Ok f' when f'.D3.app = f.D3.app -> Alcotest.failf "corruption at %d undetected" at
    | Ok _ | Error _ -> ()
  done

let prop_dnp3_poll_roundtrip =
  QCheck.Test.make ~name:"dnp3 poll response roundtrip"
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 0 16) bool)
        (list_of_size (QCheck.Gen.int_range 0 16) (int_range (-1000000) 1000000)))
    (fun (bins, anas) ->
      let f =
        { D3.dest = 1; src = 2; app = D3.Poll_response { binary_inputs = bins; analog_inputs = anas } }
      in
      match D3.decode (D3.encode f) with
      | Ok f' -> f'.D3.app = f.D3.app
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Op codec *)

let prop_op_roundtrip =
  QCheck.Test.make ~name:"scada op roundtrip" QCheck.(int_bound 3)
    (fun tag ->
      let rtu = make_rtu () in
      R.tick rtu;
      let op =
        match tag with
        | 0 -> Scada.Op.Status_report (R.read_status rtu)
        | 1 -> Scada.Op.Breaker_command { rtu = 3; breaker = 1; desired = R.Open }
        | 2 -> Scada.Op.Tap_command { rtu = 2; position = -7 }
        | _ -> Scada.Op.Hmi_read { hmi_id = 42 }
      in
      match Scada.Op.decode (Scada.Op.encode op) with
      | Ok op' -> op = op'
      | Error _ -> false)

let test_op_rejects_garbage () =
  Alcotest.(check bool) "empty" true (Result.is_error (Scada.Op.decode ""));
  Alcotest.(check bool) "bad tag" true (Result.is_error (Scada.Op.decode "\xFF"));
  Alcotest.(check bool) "truncated" true
    (Result.is_error (Scada.Op.decode "\x01\x00"))

(* ------------------------------------------------------------------ *)
(* Master *)

let test_master_applies_status () =
  let m = Scada.Master.create () in
  let rtu = make_rtu ~id:7 () in
  let s = R.read_status rtu in
  (match Scada.Master.apply m (Scada.Op.Status_report s) with
  | Scada.Master.No_effect -> ()
  | _ -> Alcotest.fail "status should have no effect");
  Alcotest.(check (list int)) "known rtus" [ 7 ] (Scada.Master.known_rtus m);
  match Scada.Master.last_status m ~rtu:7 with
  | Some s' -> Alcotest.(check int) "kept status" s.R.seq s'.R.seq
  | None -> Alcotest.fail "status lost"

let test_master_ignores_stale_status () =
  let m = Scada.Master.create () in
  let rtu = make_rtu ~id:7 () in
  let s1 = R.read_status rtu in
  let s2 = R.read_status rtu in
  ignore (Scada.Master.apply m (Scada.Op.Status_report s2));
  ignore (Scada.Master.apply m (Scada.Op.Status_report s1));
  match Scada.Master.last_status m ~rtu:7 with
  | Some s -> Alcotest.(check int) "newer kept" s2.R.seq s.R.seq
  | None -> Alcotest.fail "missing"

let test_master_breaker_command_effect () =
  let m = Scada.Master.create () in
  match
    Scada.Master.apply m
      (Scada.Op.Breaker_command { rtu = 3; breaker = 1; desired = R.Open })
  with
  | Scada.Master.Device_command { rtu = 3; command = D3.Operate { point = 1; action = D3.Trip } } ->
    Alcotest.(check bool) "intent recorded" true
      (Scada.Master.breaker_intent m ~rtu:3 ~breaker:1 = Some R.Open)
  | _ -> Alcotest.fail "expected trip command for rtu 3 point 1"

let test_master_determinism () =
  (* Two masters fed the same sequence have equal digests; diverging
     sequences have different digests. *)
  let ops =
    [
      Scada.Op.Breaker_command { rtu = 1; breaker = 0; desired = R.Open };
      Scada.Op.Tap_command { rtu = 1; position = 3 };
      Scada.Op.Hmi_read { hmi_id = 9 };
    ]
  in
  let a = Scada.Master.create () and b = Scada.Master.create () in
  List.iter (fun op -> ignore (Scada.Master.apply a op)) ops;
  List.iter (fun op -> ignore (Scada.Master.apply b op)) ops;
  Alcotest.(check bool) "same digest" true
    (Cryptosim.Digest.equal (Scada.Master.state_digest a) (Scada.Master.state_digest b));
  ignore (Scada.Master.apply b (Scada.Op.Hmi_read { hmi_id = 1 }));
  Alcotest.(check bool) "diverged digest" false
    (Cryptosim.Digest.equal (Scada.Master.state_digest a) (Scada.Master.state_digest b))

let test_master_stale_rtus () =
  let m = Scada.Master.create () in
  let rtu = make_rtu ~id:2 () in
  let s = R.read_status rtu in
  ignore (Scada.Master.apply m (Scada.Op.Status_report s));
  Alcotest.(check (list int)) "fresh" [] (Scada.Master.stale_rtus m ~now_seq:2 ~window:5);
  Alcotest.(check (list int)) "stale" [ 2 ]
    (Scada.Master.stale_rtus m ~now_seq:100 ~window:5)

(* ------------------------------------------------------------------ *)
(* Endpoint: threshold-signed confirmation flow *)

let test_endpoint_confirms_at_threshold () =
  let engine = Sim.Engine.create () in
  let group =
    Cryptosim.Threshold.create_group ~seed:3L ~members:[ 0; 1; 2; 3; 4; 5 ]
      ~threshold:2
  in
  let submitted = ref [] in
  let ep =
    Scada.Endpoint.create ~engine ~client_id:42 ~group
      ~resubmit_timeout_us:1_000_000
      ~submit:(fun ~attempt u -> submitted := (attempt, u) :: !submitted)
      ()
  in
  let latencies = ref [] in
  Scada.Endpoint.set_on_complete ep (fun _u ~latency_us ->
      latencies := latency_us :: !latencies);
  let u = Scada.Endpoint.send_op ep (Scada.Op.Hmi_read { hmi_id = 42 }) in
  Alcotest.(check int) "submitted once" 1 (List.length !submitted);
  let digest = Cryptosim.Digest.of_string "reply-digest" in
  let reply replica =
    {
      Scada.Reply.replica;
      update_key = Bft.Update.key u;
      exec_index = 1;
      digest;
      share = Cryptosim.Threshold.sign_share group ~member:replica digest;
      body = Scada.Reply.Ack;
    }
  in
  Alcotest.(check bool) "one share insufficient" true
    (Scada.Endpoint.handle_reply ep (reply 0) = None);
  Alcotest.(check bool) "second share confirms" true
    (Scada.Endpoint.handle_reply ep (reply 1) <> None);
  Alcotest.(check bool) "third share ignored (already confirmed)" true
    (Scada.Endpoint.handle_reply ep (reply 2) = None);
  Alcotest.(check int) "one completion" 1 (List.length !latencies);
  Alcotest.(check int) "completed count" 1 (Scada.Endpoint.completed_count ep)

let test_endpoint_corrupt_share_does_not_confirm () =
  let engine = Sim.Engine.create () in
  let group =
    Cryptosim.Threshold.create_group ~seed:3L ~members:[ 0; 1; 2 ] ~threshold:2
  in
  let ep =
    Scada.Endpoint.create ~engine ~client_id:1 ~group
      ~resubmit_timeout_us:1_000_000
      ~submit:(fun ~attempt:_ _ -> ())
      ()
  in
  let u = Scada.Endpoint.send_op ep (Scada.Op.Hmi_read { hmi_id = 1 }) in
  let digest = Cryptosim.Digest.of_string "d" in
  let good =
    {
      Scada.Reply.replica = 0;
      update_key = Bft.Update.key u;
      exec_index = 1;
      digest;
      share = Cryptosim.Threshold.sign_share group ~member:0 digest;
      body = Scada.Reply.Ack;
    }
  in
  let bad =
    {
      good with
      Scada.Reply.replica = 1;
      share =
        Cryptosim.Threshold.corrupt_share
          (Cryptosim.Threshold.sign_share group ~member:1 digest);
    }
  in
  Alcotest.(check bool) "good share alone" true
    (Scada.Endpoint.handle_reply ep good = None);
  Alcotest.(check bool) "corrupt share rejected" true
    (Scada.Endpoint.handle_reply ep bad = None)

let test_endpoint_resubmits_on_timeout () =
  let engine = Sim.Engine.create () in
  let group =
    Cryptosim.Threshold.create_group ~seed:3L ~members:[ 0; 1 ] ~threshold:1
  in
  let attempts = ref [] in
  let ep =
    Scada.Endpoint.create ~engine ~client_id:1 ~group ~resubmit_timeout_us:100_000
      ~submit:(fun ~attempt _ -> attempts := attempt :: !attempts)
      ()
  in
  Scada.Endpoint.start ep;
  ignore (Scada.Endpoint.send_op ep (Scada.Op.Hmi_read { hmi_id = 1 }));
  Sim.Engine.run engine ~until_us:350_000;
  Alcotest.(check bool) "retransmitted" true (List.length !attempts >= 2);
  Alcotest.(check bool) "attempt counter grows" true (List.hd !attempts >= 1);
  Alcotest.(check int) "resubmit count matches" (List.length !attempts - 1)
    (Scada.Endpoint.resubmit_count ep)

(* ------------------------------------------------------------------ *)
(* Proxy: poll loop over DNP3 and command actuation *)

let test_proxy_polls_and_reports () =
  let engine = Sim.Engine.create () in
  let group =
    Cryptosim.Threshold.create_group ~seed:3L ~members:[ 0; 1 ] ~threshold:1
  in
  let rtu = make_rtu ~id:3 () in
  let submitted = ref [] in
  let proxy =
    Scada.Proxy.create ~engine ~rtu ~client_id:3 ~poll_interval_us:100_000
      ~group ~resubmit_timeout_us:10_000_000
      ~submit:(fun ~attempt:_ u -> submitted := u :: !submitted)
      ()
  in
  Scada.Proxy.start proxy;
  Sim.Engine.run engine ~until_us:1_050_000;
  Alcotest.(check int) "10 polls" 10 (Scada.Proxy.polls_sent proxy);
  Alcotest.(check int) "10 submissions" 10 (List.length !submitted);
  (* Every submission decodes to a status report for this RTU. *)
  List.iter
    (fun u ->
      match Scada.Op.of_update u with
      | Ok (Scada.Op.Status_report s) -> Alcotest.(check int) "rtu id" 3 s.R.rtu_id
      | Ok _ | Error _ -> Alcotest.fail "expected status report")
    !submitted

let test_proxy_actuates_confirmed_command () =
  let engine = Sim.Engine.create () in
  let group =
    Cryptosim.Threshold.create_group ~seed:3L ~members:[ 0; 1 ] ~threshold:2
  in
  let rtu = make_rtu ~id:3 () in
  let proxy =
    Scada.Proxy.create ~engine ~rtu ~client_id:3 ~poll_interval_us:100_000
      ~group ~resubmit_timeout_us:10_000_000
      ~submit:(fun ~attempt:_ _ -> ())
      ()
  in
  (* The proxy submits something so an update is pending; replicas
     confirm it with an embedded trip command. *)
  Scada.Proxy.start proxy;
  Sim.Engine.run engine ~until_us:150_000;
  let u =
    match Scada.Proxy.polls_sent proxy with
    | 0 -> Alcotest.fail "no poll sent"
    | _ ->
      (* Reconstruct the pending update the proxy submitted. *)
      Scada.Endpoint.send_op (Scada.Proxy.endpoint proxy)
        (Scada.Op.Hmi_read { hmi_id = 3 })
  in
  let frame =
    D3.encode
      { D3.dest = 3; src = 0xF0; app = D3.Operate { point = 0; action = D3.Trip } }
  in
  let digest = Cryptosim.Digest.of_string "cmd-digest" in
  let reply replica =
    {
      Scada.Reply.replica;
      update_key = Bft.Update.key u;
      exec_index = 2;
      digest;
      share = Cryptosim.Threshold.sign_share group ~member:replica digest;
      body = Scada.Reply.Command { rtu = 3; frame };
    }
  in
  Scada.Proxy.handle_reply proxy (reply 0);
  Alcotest.(check int) "not actuated below threshold" 0
    (Scada.Proxy.commands_applied proxy);
  Scada.Proxy.handle_reply proxy (reply 1);
  Alcotest.(check int) "actuated once confirmed" 1
    (Scada.Proxy.commands_applied proxy);
  (* The breaker physically opens after the mechanical delay. *)
  R.tick rtu;
  R.tick rtu;
  Alcotest.(check bool) "breaker open" true (R.breaker rtu ~index:0 = R.Open)

let test_modbus_proxy_polls_and_reports () =
  let engine = Sim.Engine.create () in
  let group =
    Cryptosim.Threshold.create_group ~seed:3L ~members:[ 0; 1 ] ~threshold:1
  in
  let rtu = make_rtu ~id:5 () in
  let submitted = ref [] in
  let proxy =
    Scada.Proxy.create ~field_protocol:`Modbus ~engine ~rtu ~client_id:5
      ~poll_interval_us:100_000 ~group ~resubmit_timeout_us:10_000_000
      ~submit:(fun ~attempt:_ u -> submitted := u :: !submitted)
      ()
  in
  Alcotest.(check bool) "protocol recorded" true
    (Scada.Proxy.field_protocol proxy = `Modbus);
  Scada.Proxy.start proxy;
  Sim.Engine.run engine ~until_us:550_000;
  Alcotest.(check int) "5 polls over modbus" 5 (List.length !submitted);
  (* The register map round-trips into a faithful status. *)
  List.iter
    (fun u ->
      match Scada.Op.of_update u with
      | Ok (Scada.Op.Status_report s) ->
        Alcotest.(check int) "rtu id" 5 s.R.rtu_id;
        Alcotest.(check int) "breaker count" 4 (Array.length s.R.breakers);
        Alcotest.(check int) "feeder count" 3 (Array.length s.R.voltages_mv);
        Alcotest.(check bool) "voltage plausible" true
          (s.R.voltages_mv.(0) > 13_000_000 && s.R.voltages_mv.(0) < 14_600_000);
        Alcotest.(check bool) "frequency plausible" true
          (s.R.frequency_mhz > 59_800 && s.R.frequency_mhz < 60_200)
      | Ok _ | Error _ -> Alcotest.fail "expected status report")
    !submitted

let test_modbus_proxy_gateways_dnp3_command () =
  (* The master's DNP3 operate frame is translated to a Modbus coil
     write by the proxy. *)
  let engine = Sim.Engine.create () in
  let group =
    Cryptosim.Threshold.create_group ~seed:3L ~members:[ 0; 1 ] ~threshold:2
  in
  let rtu = make_rtu ~id:5 () in
  let proxy =
    Scada.Proxy.create ~field_protocol:`Modbus ~engine ~rtu ~client_id:5
      ~poll_interval_us:100_000 ~group ~resubmit_timeout_us:10_000_000
      ~submit:(fun ~attempt:_ _ -> ())
      ()
  in
  let frame =
    D3.encode
      { D3.dest = 5; src = 0xF0; app = D3.Operate { point = 2; action = D3.Trip } }
  in
  let digest = Cryptosim.Digest.of_string "mb-cmd" in
  let reply replica =
    {
      Scada.Reply.replica;
      update_key = (99, 1);
      exec_index = 7;
      digest;
      share = Cryptosim.Threshold.sign_share group ~member:replica digest;
      body = Scada.Reply.Command { rtu = 5; frame };
    }
  in
  Scada.Proxy.handle_reply proxy (reply 0);
  Scada.Proxy.handle_reply proxy (reply 1);
  Alcotest.(check int) "gatewayed once" 1 (Scada.Proxy.commands_applied proxy);
  R.tick rtu;
  R.tick rtu;
  Alcotest.(check bool) "breaker tripped via modbus write" true
    (R.breaker rtu ~index:2 = R.Open)

let () =
  Alcotest.run "scada"
    [
      ( "rtu",
        [
          Alcotest.test_case "initial state" `Quick test_rtu_initial_state;
          Alcotest.test_case "breaker delay" `Quick test_rtu_breaker_operation_delayed;
          Alcotest.test_case "open drops current" `Quick
            test_rtu_open_breaker_drops_current;
          Alcotest.test_case "status seq" `Quick test_rtu_status_seq_increments;
          Alcotest.test_case "analog bounds" `Quick test_rtu_analog_within_bounds;
          Alcotest.test_case "tap clamped" `Quick test_rtu_tap_clamped;
          QCheck_alcotest.to_alcotest prop_rtu_soak_stays_in_envelope;
        ] );
      ( "modbus",
        [
          Alcotest.test_case "request roundtrip" `Quick test_modbus_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick
            test_modbus_response_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_modbus_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_modbus_coils_roundtrip;
          QCheck_alcotest.to_alcotest prop_modbus_registers_roundtrip;
          QCheck_alcotest.to_alcotest prop_modbus_new_requests_roundtrip;
          QCheck_alcotest.to_alcotest prop_modbus_new_responses_roundtrip;
          Alcotest.test_case "new exception responses" `Quick
            test_modbus_new_exception_responses;
          Alcotest.test_case "multi-write caps" `Quick test_modbus_multi_write_caps;
          QCheck_alcotest.to_alcotest prop_modbus_request_truncation;
          QCheck_alcotest.to_alcotest prop_modbus_request_bitflip_never_raises;
        ] );
      ( "dnp3",
        [
          Alcotest.test_case "roundtrip" `Quick test_dnp3_roundtrip;
          Alcotest.test_case "checksum rejects corruption" `Quick
            test_dnp3_checksum_rejects_corruption;
          QCheck_alcotest.to_alcotest prop_dnp3_poll_roundtrip;
        ] );
      ( "op",
        [
          QCheck_alcotest.to_alcotest prop_op_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_op_rejects_garbage;
        ] );
      ( "master",
        [
          Alcotest.test_case "applies status" `Quick test_master_applies_status;
          Alcotest.test_case "ignores stale" `Quick test_master_ignores_stale_status;
          Alcotest.test_case "command effect" `Quick test_master_breaker_command_effect;
          Alcotest.test_case "determinism" `Quick test_master_determinism;
          Alcotest.test_case "stale rtus" `Quick test_master_stale_rtus;
        ] );
      ( "endpoint",
        [
          Alcotest.test_case "threshold confirmation" `Quick
            test_endpoint_confirms_at_threshold;
          Alcotest.test_case "corrupt share" `Quick
            test_endpoint_corrupt_share_does_not_confirm;
          Alcotest.test_case "resubmission" `Quick test_endpoint_resubmits_on_timeout;
        ] );
      ( "proxy",
        [
          Alcotest.test_case "polls and reports" `Quick test_proxy_polls_and_reports;
          Alcotest.test_case "actuates confirmed command" `Quick
            test_proxy_actuates_confirmed_command;
          Alcotest.test_case "modbus proxy polls" `Quick
            test_modbus_proxy_polls_and_reports;
          Alcotest.test_case "modbus proxy gateways commands" `Quick
            test_modbus_proxy_gateways_dnp3_command;
        ] );
    ]
