(* Chaos subsystem tests: the schedule generator/validator, the oracle
   layer in isolation, and the end-to-end soak property — every
   within-budget random schedule must leave all four oracles green,
   while a deliberately over-budget schedule must make one fire (the
   oracles are not vacuous). *)

let quorum_6 = Bft.Quorum.create ~n:6 ~f:1 ~k:1

(* The generator/validator profile of the default deployment, derived
   from a real built system so the tests exercise the same topology the
   soak runs on. *)
let profile =
  lazy
    (Chaos.Injector.profile_of_system
       (Spire.System.create (Chaos.Harness.default_config ()).Chaos.Harness.system))

let budget () = Chaos.Schedule.budget_of_quorum quorum_6

(* ------------------------------------------------------------------ *)
(* Schedule generator and validator                                    *)

let test_generator_deterministic () =
  let profile = Lazy.force profile in
  let budget = budget () in
  for i = 0 to 9 do
    let seed = Int64.of_int ((i * 7_919) + 1) in
    let s1 =
      Chaos.Schedule.generate ~profile ~budget ~seed ~horizon_us:6_000_000
    in
    let s2 =
      Chaos.Schedule.generate ~profile ~budget ~seed ~horizon_us:6_000_000
    in
    Alcotest.(check string)
      (Printf.sprintf "seed %Ld reproduces the schedule" seed)
      (Format.asprintf "%a" Chaos.Schedule.pp s1)
      (Format.asprintf "%a" Chaos.Schedule.pp s2);
    if s1 <> s2 then Alcotest.fail "structurally different schedules"
  done

let test_generator_within_budget () =
  let profile = Lazy.force profile in
  let budget = budget () in
  for i = 0 to 24 do
    let seed = Int64.of_int ((i * 104_729) + 3) in
    let s =
      Chaos.Schedule.generate ~profile ~budget ~seed ~horizon_us:6_000_000
    in
    (match Chaos.Schedule.validate ~profile ~budget s with
    | Ok () -> ()
    | Error msg ->
      Alcotest.failf "seed %Ld generated an invalid schedule: %s@.%a" seed msg
        Chaos.Schedule.pp s);
    if s.Chaos.Schedule.events = [] then
      Alcotest.failf "seed %Ld generated an empty schedule" seed
  done

let over_budget_schedule =
  (* Three simultaneous crashes: n - 3 = 3 available < quorum 4. One
     more than the f + k = 2 simultaneous failures the deployment
     tolerates. *)
  Chaos.Schedule.
    {
      horizon_us = 3_000_000;
      events =
        [
          { at_us = 200_000; fault = Crash_restart { replica = 0; down_us = 2_000_000 } };
          { at_us = 200_000; fault = Crash_restart { replica = 2; down_us = 2_000_000 } };
          { at_us = 200_000; fault = Crash_restart { replica = 4; down_us = 2_000_000 } };
        ];
    }

let test_validate_rejects_over_budget () =
  let profile = Lazy.force profile in
  let budget = budget () in
  (match Chaos.Schedule.validate ~profile ~budget over_budget_schedule with
  | Ok () -> Alcotest.fail "validator accepted 3 concurrent crashes"
  | Error _ -> ());
  (* Same resource claimed by two concurrent faults. *)
  let clash =
    Chaos.Schedule.
      {
        horizon_us = 3_000_000;
        events =
          [
            { at_us = 100_000; fault = Crash_restart { replica = 1; down_us = 500_000 } };
            { at_us = 300_000; fault = Silence { replica = 1; duration_us = 500_000 } };
          ];
      }
  in
  (match Chaos.Schedule.validate ~profile ~budget clash with
  | Ok () -> Alcotest.fail "validator accepted two faults on one replica"
  | Error _ -> ());
  (* A fault that heals after the horizon. *)
  let late =
    Chaos.Schedule.
      {
        horizon_us = 1_000_000;
        events =
          [ { at_us = 800_000; fault = Daemon_churn { replica = 0; down_us = 400_000 } } ];
      }
  in
  match Chaos.Schedule.validate ~profile ~budget late with
  | Ok () -> Alcotest.fail "validator accepted a fault outliving the horizon"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Oracles in isolation                                                *)

let update i op =
  Bft.Update.create ~client:0 ~client_seq:i ~operation:op ~submitted_us:0

let test_agreement_oracle () =
  let a = Bft.Exec_log.create () in
  let b = Bft.Exec_log.create () in
  ignore (Bft.Exec_log.append a (update 1 "open breaker 3") : int);
  ignore (Bft.Exec_log.append a (update 2 "close breaker 7") : int);
  ignore (Bft.Exec_log.append b (update 1 "open breaker 3") : int);
  (* A lagging replica is a prefix: still agreement. *)
  (match Oracle.Agreement.check_logs [ (0, a); (1, b) ] with
  | Oracle.Verdict.Pass -> ()
  | Oracle.Verdict.Fail m -> Alcotest.failf "prefix flagged as divergence: %s" m);
  (* Divergence at position 2 must be caught. *)
  ignore (Bft.Exec_log.append b (update 2 "trip transformer 1") : int);
  (match Oracle.Agreement.check_logs [ (0, a); (1, b) ] with
  | Oracle.Verdict.Fail _ -> ()
  | Oracle.Verdict.Pass -> Alcotest.fail "divergent logs passed agreement");
  (* State check: equal applied counts require equal digests. *)
  let d1 = Cryptosim.Digest.of_string "state-x" in
  let d2 = Cryptosim.Digest.of_string "state-y" in
  (match Oracle.Agreement.check_states [ (0, 5, d1); (1, 5, d1); (2, 4, d2) ] with
  | Oracle.Verdict.Pass -> ()
  | Oracle.Verdict.Fail m -> Alcotest.failf "consistent states flagged: %s" m);
  (match Oracle.Agreement.check_states [ (0, 5, d1); (1, 5, d2) ] with
  | Oracle.Verdict.Fail _ -> ()
  | Oracle.Verdict.Pass -> Alcotest.fail "divergent states passed");
  (* The stateful oracle latches. *)
  let t = Oracle.Agreement.create () in
  Oracle.Agreement.observe t ~logs:[ (0, a); (1, b) ] ~states:[];
  Oracle.Agreement.observe t ~logs:[ (0, a) ] ~states:[];
  Alcotest.(check bool)
    "violation latches" false
    (Oracle.Verdict.is_pass (Oracle.Agreement.verdict t));
  Alcotest.(check int) "checks counted" 2 (Oracle.Agreement.checks t)

let test_sla_oracle () =
  let t = Oracle.Sla.create ~turbulent_bound_ms:20_000. ~calm_bound_ms:250. in
  Oracle.Sla.observe t ~time_us:1_000_000 ~latency_ms:120.;
  Alcotest.(check bool)
    "within calm bound" true
    (Oracle.Verdict.is_pass (Oracle.Sla.verdict t));
  Oracle.Sla.set_phase t Oracle.Sla.Turbulent;
  Oracle.Sla.observe t ~time_us:2_000_000 ~latency_ms:5_000.;
  Alcotest.(check bool)
    "relaxed bound during turbulence" true
    (Oracle.Verdict.is_pass (Oracle.Sla.verdict t));
  Oracle.Sla.set_phase t Oracle.Sla.Calm;
  Oracle.Sla.observe t ~time_us:3_000_000 ~latency_ms:300.;
  Alcotest.(check bool)
    "calm-bound violation fails" false
    (Oracle.Verdict.is_pass (Oracle.Sla.verdict t));
  Oracle.Sla.observe t ~time_us:4_000_000 ~latency_ms:10.;
  Alcotest.(check bool)
    "violation latches" false
    (Oracle.Verdict.is_pass (Oracle.Sla.verdict t));
  Alcotest.(check int) "samples counted" 4 (Oracle.Sla.samples t);
  Alcotest.(check (float 0.001)) "worst overall" 5_000. (Oracle.Sla.worst_ms t);
  Alcotest.(check (float 0.001))
    "worst calm" 300. (Oracle.Sla.worst_calm_ms t)

let test_quorum_watch_oracle () =
  let t = Oracle.Quorum_watch.create ~quorum:quorum_6 in
  Oracle.Quorum_watch.observe t ~time_us:0 ~available:6;
  Oracle.Quorum_watch.observe t ~time_us:100_000 ~available:4;
  Alcotest.(check bool)
    "quorum held" true
    (Oracle.Verdict.is_pass (Oracle.Quorum_watch.verdict t));
  Oracle.Quorum_watch.observe t ~time_us:200_000 ~available:3;
  Oracle.Quorum_watch.observe t ~time_us:300_000 ~available:6;
  Alcotest.(check bool)
    "sub-quorum sample latches" false
    (Oracle.Verdict.is_pass (Oracle.Quorum_watch.verdict t));
  Alcotest.(check int) "min available" 3 (Oracle.Quorum_watch.min_available t)

let test_recovery_oracle () =
  let baseline = Stats.Histogram.create () in
  let post_good = Stats.Histogram.create () in
  let post_slow = Stats.Histogram.create () in
  for _ = 1 to 50 do
    Stats.Histogram.add baseline 40.;
    Stats.Histogram.add post_good 50.;
    Stats.Histogram.add post_slow 400.
  done;
  let good =
    Oracle.Recovery_check.check ~factor:3. ~slack_ms:10. ~min_confirmed:20
      ~baseline ~post:post_good
  in
  Alcotest.(check bool)
    "recovered" true
    (Oracle.Verdict.is_pass good.Oracle.Recovery_check.verdict);
  let slow =
    Oracle.Recovery_check.check ~factor:3. ~slack_ms:10. ~min_confirmed:20
      ~baseline ~post:post_slow
  in
  Alcotest.(check bool)
    "limping post-heal latency fails" false
    (Oracle.Verdict.is_pass slow.Oracle.Recovery_check.verdict);
  let starved =
    Oracle.Recovery_check.check ~factor:3. ~slack_ms:10. ~min_confirmed:200
      ~baseline ~post:post_good
  in
  Alcotest.(check bool)
    "too few post-heal confirmations fails" false
    (Oracle.Verdict.is_pass starved.Oracle.Recovery_check.verdict)

let test_verdict_combine () =
  let open Oracle.Verdict in
  Alcotest.(check bool) "all pass" true (is_pass (combine [ pass; pass ]));
  match combine [ pass; fail "first"; fail "second" ] with
  | Fail m -> Alcotest.(check string) "first failure wins" "first" m
  | Pass -> Alcotest.fail "failure swallowed"

(* ------------------------------------------------------------------ *)
(* End-to-end harness runs                                             *)

(* The soak property: ANY within-budget schedule leaves every oracle
   green. A failing seed prints its full report; rerunning
   [Chaos.Harness.soak ~seed] reproduces it exactly. *)
let prop_soak_clean =
  QCheck.Test.make ~count:50 ~name:"chaos soak: within-budget schedules stay clean"
    QCheck.(int_bound 1_000_000_000)
    (fun s ->
      let seed = Int64.of_int s in
      let report = Chaos.Harness.soak ~seed () in
      if Chaos.Harness.clean report then true
      else
        QCheck.Test.fail_reportf "%a" Chaos.Harness.pp_report report)

(* Non-vacuousness: pushing past the budget must trip an oracle. Three
   simultaneous crashes leave 3 < quorum 4 available for two seconds;
   the quorum watchdog has to notice. *)
let test_over_budget_trips_quorum_oracle () =
  let report =
    Chaos.Harness.run ~seed:424_242L ~schedule:over_budget_schedule ()
  in
  Alcotest.(check bool)
    "over-budget run is not clean" false
    (Chaos.Harness.clean report);
  match List.assoc_opt "quorum" report.Chaos.Harness.verdicts with
  | Some (Oracle.Verdict.Fail _) -> ()
  | Some Oracle.Verdict.Pass | None ->
    Alcotest.failf "quorum watchdog stayed green:@.%a" Chaos.Harness.pp_report
      report

(* Regression: this exact two-fault within-budget schedule (soak seed
   9000027) once wedged the deployment — the leader proposed while its
   overlay daemon was dark, leaving a pre-prepare hole; the resulting
   stall escalated into a mass self-state-transfer that reset the
   leader's sequence counter, and the re-burned sequence numbers
   diverged the execution logs. Fixed by leader hole repair, the
   strictly-newer snapshot guard, and a monotone next_seq. Times are
   exact to the microsecond: the cascade is sensitive to sub-ms timing. *)
let test_regression_seed_9000027 () =
  let schedule =
    Chaos.Schedule.
      {
        horizon_us = 6_000_000;
        events =
          [
            {
              at_us = 3_824_292;
              fault = Crash_restart { replica = 0; down_us = 340_000 };
            };
            {
              at_us = 5_114_943;
              fault = Daemon_churn { replica = 1; down_us = 260_000 };
            };
          ];
      }
  in
  let report = Chaos.Harness.run ~seed:9_000_027L ~schedule () in
  if not (Chaos.Harness.clean report) then
    Alcotest.failf "leader-hole regression resurfaced:@.%a"
      Chaos.Harness.pp_report report

(* Wire regression: a turbulent run with decode-on-delivery enabled.
   Every frame delivered during crashes, daemon churn and recovery
   storms is round-tripped through the binary codecs; a single decode
   mismatch fails [clean]. Pins down codec bugs that only bite on
   recovery-path traffic (state-transfer chunks, view changes). *)
let test_wire_debug_under_turbulence () =
  let config =
    let c = Chaos.Harness.default_config () in
    {
      c with
      Chaos.Harness.system =
        { c.Chaos.Harness.system with Spire.System.wire_debug = true };
    }
  in
  let schedule =
    Chaos.Schedule.
      {
        horizon_us = 6_000_000;
        events =
          [
            {
              at_us = 1_500_000;
              fault = Crash_restart { replica = 2; down_us = 900_000 };
            };
            {
              at_us = 3_200_000;
              fault = Daemon_churn { replica = 4; down_us = 400_000 };
            };
          ];
      }
  in
  let report = Chaos.Harness.run ~config ~seed:0x31BEL ~schedule () in
  Alcotest.(check int)
    "no wire decode errors under turbulence" 0
    report.Chaos.Harness.wire_decode_errors;
  if not (Chaos.Harness.clean report) then
    Alcotest.failf "wire-debug chaos run not clean:@.%a" Chaos.Harness.pp_report
      report

let () =
  Alcotest.run "chaos"
    [
      ( "schedule",
        [
          Alcotest.test_case "generator is deterministic in the seed" `Quick
            test_generator_deterministic;
          Alcotest.test_case "generated schedules validate" `Quick
            test_generator_within_budget;
          Alcotest.test_case "validator rejects over-budget schedules" `Quick
            test_validate_rejects_over_budget;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "agreement" `Quick test_agreement_oracle;
          Alcotest.test_case "sla" `Quick test_sla_oracle;
          Alcotest.test_case "quorum watchdog" `Quick test_quorum_watch_oracle;
          Alcotest.test_case "post-heal recovery" `Quick test_recovery_oracle;
          Alcotest.test_case "verdict combine" `Quick test_verdict_combine;
        ] );
      ( "harness",
        [
          Alcotest.test_case "over-budget schedule trips the quorum oracle"
            `Quick test_over_budget_trips_quorum_oracle;
          Alcotest.test_case "regression: leader hole + state-transfer reset"
            `Slow test_regression_seed_9000027;
          Alcotest.test_case "decode-on-delivery stays clean under turbulence"
            `Slow test_wire_debug_under_turbulence;
          QCheck_alcotest.to_alcotest prop_soak_clean;
        ] );
    ]
