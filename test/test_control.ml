(* Tests for the runtime tuning plane ([lib/control]) and its wiring
   into the live system: validation bounds, journal/counter
   reconciliation, the global controller's escalation ladder, and
   hot-swapping knobs on a running deployment. *)

module K = Control.Knobs
module G = Control.Global
module Sys_ = Spire.System

let ok = function Ok () -> true | Error _ -> false

(* ------------------------------------------------------------------ *)
(* Knobs: validation and the journal *)

let test_validate_bounds () =
  let valid r = Alcotest.(check bool) "valid" true (ok (K.validate r)) in
  let invalid r = Alcotest.(check bool) "invalid" false (ok (K.validate r)) in
  valid (K.Set_max_batch 1);
  valid (K.Set_max_batch K.max_batch_limit);
  invalid (K.Set_max_batch 0);
  invalid (K.Set_max_batch (K.max_batch_limit + 1));
  valid (K.Set_batch_delay_us 0);
  valid (K.Set_batch_delay_us K.batch_delay_limit_us);
  invalid (K.Set_batch_delay_us (-1));
  invalid (K.Set_batch_delay_us (K.batch_delay_limit_us + 1));
  valid (K.Set_routing K.Shortest);
  valid (K.Set_routing K.Flooding);
  valid (K.Set_routing (K.Kdisjoint 2));
  valid (K.Set_routing (K.Kdisjoint K.kdisjoint_limit));
  invalid (K.Set_routing (K.Kdisjoint 1));
  invalid (K.Set_routing (K.Kdisjoint (K.kdisjoint_limit + 1)));
  valid (K.Set_recovery_period_us K.min_recovery_period_us);
  invalid (K.Set_recovery_period_us (K.min_recovery_period_us - 1));
  valid (K.Set_tat_threshold_us K.min_tat_threshold_us);
  valid (K.Set_tat_threshold_us K.max_tat_threshold_us);
  invalid (K.Set_tat_threshold_us (K.min_tat_threshold_us - 1));
  invalid (K.Set_tat_threshold_us (K.max_tat_threshold_us + 1));
  valid (K.Set_tat_violations 1);
  invalid (K.Set_tat_violations 0);
  invalid (K.Set_tat_violations (K.tat_violations_limit + 1));
  valid K.Demote_leader

let test_no_actuator_rejects () =
  let k = K.create () in
  (* A valid request with no installed actuator must be rejected (and
     journalled), never silently dropped. *)
  Alcotest.(check bool) "rejected" false
    (ok (K.request k ~now_us:0 ~source:"test" (K.Set_max_batch 4)));
  Alcotest.(check int) "rejected counted" 1 (K.rejected_count k K.Max_batch);
  Alcotest.(check int) "nothing applied" 0 (K.total_applied k);
  Alcotest.(check int) "one journal line" 1 (K.journal_length k);
  Alcotest.(check bool) "reconciles" true (K.reconcile k)

let test_counters_journal_reconcile () =
  let k = K.create () in
  (* Actuator that refuses TAT changes, applies everything else. *)
  K.set_actuator k (function
    | K.Set_tat_threshold_us _ -> Error "refused by deployment"
    | _ -> Ok ());
  let fire now_us r = ignore (K.request k ~now_us ~source:"test" r) in
  fire 10 (K.Set_max_batch 8);
  fire 20 (K.Set_max_batch 0) (* validation failure *);
  fire 30 (K.Set_routing K.Flooding);
  fire 40 (K.Set_tat_threshold_us 50_000) (* actuator failure *);
  fire 50 K.Demote_leader;
  Alcotest.(check int) "max_batch applied" 1 (K.applied_count k K.Max_batch);
  Alcotest.(check int) "max_batch rejected" 1 (K.rejected_count k K.Max_batch);
  Alcotest.(check int) "routing applied" 1 (K.applied_count k K.Routing);
  Alcotest.(check int) "tat rejected" 1 (K.rejected_count k K.Tat_threshold);
  Alcotest.(check int) "demotion applied" 1 (K.applied_count k K.Demotion);
  Alcotest.(check int) "total applied" 3 (K.total_applied k);
  Alcotest.(check int) "total rejected" 2 (K.total_rejected k);
  Alcotest.(check int) "journal complete" 5 (K.journal_length k);
  (* Journal is oldest-first with provenance and outcomes. *)
  let j = K.journal k in
  Alcotest.(check (list int)) "chronological" [ 10; 20; 30; 40; 50 ]
    (List.map (fun e -> e.K.at_us) j);
  Alcotest.(check (list bool)) "outcomes recorded"
    [ true; false; true; false; true ]
    (List.map (fun e -> e.K.applied) j);
  List.iter
    (fun e -> Alcotest.(check string) "source recorded" "test" e.K.source)
    j;
  Alcotest.(check bool) "reconciles" true (K.reconcile k)

(* ------------------------------------------------------------------ *)
(* Global controller: escalation ladder, hysteresis, majority gate *)

let recording_knobs () =
  let k = K.create () in
  let reqs = ref [] in
  K.set_actuator k (fun r ->
      reqs := r :: !reqs;
      Ok ());
  (k, fun () -> List.rev !reqs)

let verdicts ?(n = 6) ?(slow = 0) kind =
  Array.init n (fun i -> if i < slow then kind else Control.Local.Healthy)

let test_global_routing_ladder () =
  let k, requests = recording_knobs () in
  let g = G.create (G.default_config ~n:6 ~base_tat_threshold_us:100_000) k in
  let net = verdicts ~slow:4 Control.Local.Net_slow in
  G.step g ~now_us:0 net;
  Alcotest.(check int) "first escalation" 1 (G.routing_level g);
  (* Within the cooldown: no further action even under sustained alarm. *)
  G.step g ~now_us:500_000 net;
  Alcotest.(check int) "cooldown holds" 1 (G.routing_level g);
  G.step g ~now_us:1_500_000 net;
  Alcotest.(check int) "second escalation" 2 (G.routing_level g);
  (* Ladder exhausted: stay at Flooding rather than thrash. *)
  G.step g ~now_us:3_000_000 net;
  Alcotest.(check int) "ladder capped" 2 (G.routing_level g);
  Alcotest.(check bool) "requests: kdisjoint then flooding" true
    (requests ()
    = [ K.Set_routing (K.Kdisjoint 2); K.Set_routing K.Flooding ]);
  Alcotest.(check bool) "journal reconciles" true (K.reconcile k)

let test_global_deescalates_after_sustained_health () =
  let k, requests = recording_knobs () in
  let cfg =
    { (G.default_config ~n:6 ~base_tat_threshold_us:100_000) with
      G.healthy_to_deescalate = 5;
    }
  in
  let g = G.create cfg k in
  G.step g ~now_us:0 (verdicts ~slow:6 Control.Local.Net_slow);
  Alcotest.(check int) "escalated" 1 (G.routing_level g);
  let healthy = verdicts Control.Local.Healthy in
  for i = 1 to 4 do
    G.step g ~now_us:(1_000_000 + (i * 250_000)) healthy
  done;
  Alcotest.(check int) "hysteresis: not yet" 1 (G.routing_level g);
  G.step g ~now_us:2_500_000 healthy;
  Alcotest.(check int) "de-escalated one step" 0 (G.routing_level g);
  Alcotest.(check bool) "returned to shortest" true
    (requests ()
    = [ K.Set_routing (K.Kdisjoint 2); K.Set_routing K.Shortest ])

let test_global_majority_gate () =
  let k, requests = recording_knobs () in
  let g = G.create (G.default_config ~n:6 ~base_tat_threshold_us:100_000) k in
  (* 3 of 6 is below the 4-vote majority: a compromised minority cannot
     steer the knobs, no matter how long it complains. *)
  for i = 0 to 9 do
    G.step g ~now_us:(i * 1_000_000) (verdicts ~slow:3 Control.Local.Net_slow)
  done;
  Alcotest.(check int) "no actions" 0 (G.actions g);
  Alcotest.(check int) "level unchanged" 0 (G.routing_level g);
  Alcotest.(check bool) "no requests" true (requests () = [])

let test_global_leader_strikes_tighten_tat () =
  let k, requests = recording_knobs () in
  let g = G.create (G.default_config ~n:6 ~base_tat_threshold_us:100_000) k in
  let leader = verdicts ~slow:4 Control.Local.Leader_slow in
  G.step g ~now_us:0 leader;
  Alcotest.(check bool) "first strike: demote only" true
    (requests () = [ K.Demote_leader ]);
  (* The condition survives a full cooldown: sharpen the protocol's own
     detector (one violation at half the threshold) and demote again. *)
  G.step g ~now_us:1_100_000 leader;
  Alcotest.(check bool) "second strike tightens TAT" true
    (requests ()
    = [
        K.Demote_leader;
        K.Set_tat_violations 1;
        K.Set_tat_threshold_us 50_000;
        K.Demote_leader;
      ]);
  Alcotest.(check bool) "journal reconciles" true (K.reconcile k)

(* ------------------------------------------------------------------ *)
(* Hot-swapping knobs on a live system *)

let short_config () =
  { (Sys_.default_config ()) with
    Sys_.substations = 4;
    poll_interval_us = 50_000;
  }

let test_system_routing_hot_swap () =
  let sys = Sys_.create (short_config ()) in
  Sys_.start sys;
  let outcome = ref (Error "never ran") in
  ignore
    (Sim.Engine.schedule_at (Sys_.engine sys) ~time_us:1_000_000 (fun () ->
         outcome :=
           K.request (Sys_.knobs sys) ~now_us:1_000_000 ~source:"test"
             (K.Set_routing K.Flooding)));
  Sys_.run sys ~duration_us:3_000_000;
  Sys_.assert_agreement sys;
  Alcotest.(check bool) "swap applied" true (ok !outcome);
  Alcotest.(check bool) "mode switched live" true
    (Sys_.dissemination sys = Overlay.Net.Flood);
  Alcotest.(check bool) "traffic survived the swap" true
    (Sys_.confirmed_updates sys > 100);
  Alcotest.(check int) "one applied" 1 (K.total_applied (Sys_.knobs sys));
  Alcotest.(check bool) "journal reconciles" true
    (K.reconcile (Sys_.knobs sys))

let test_system_batch_knobs_guarded () =
  let sys = Sys_.create (short_config ()) in
  Sys_.start sys;
  let k = Sys_.knobs sys in
  let outcomes = ref [] in
  ignore
    (Sim.Engine.schedule_at (Sys_.engine sys) ~time_us:1_000_000 (fun () ->
         let fire r =
           outcomes := ok (K.request k ~now_us:1_000_000 ~source:"test" r)
                       :: !outcomes
         in
         (* Deadline knob before batching is on: deployment rejects it. *)
         fire (K.Set_batch_delay_us 5_000);
         fire (K.Set_max_batch 8);
         fire (K.Set_batch_delay_us 5_000)));
  Sys_.run sys ~duration_us:3_000_000;
  Sys_.assert_agreement sys;
  Alcotest.(check (list bool)) "guarded then applied" [ false; true; true ]
    (List.rev !outcomes);
  Alcotest.(check int) "batch_delay applied" 1 (K.applied_count k K.Batch_delay);
  Alcotest.(check int) "batch_delay rejected" 1
    (K.rejected_count k K.Batch_delay);
  Alcotest.(check int) "max_batch applied" 1 (K.applied_count k K.Max_batch);
  Alcotest.(check bool) "traffic survived the swap" true
    (Sys_.confirmed_updates sys > 100);
  Alcotest.(check bool) "journal reconciles" true (K.reconcile k)

let test_system_demote_leader_advances_view () =
  let sys = Sys_.create (short_config ()) in
  Sys_.start sys;
  let outcome = ref (Error "never ran") in
  ignore
    (Sim.Engine.schedule_at (Sys_.engine sys) ~time_us:1_000_000 (fun () ->
         outcome :=
           K.request (Sys_.knobs sys) ~now_us:1_000_000 ~source:"test"
             K.Demote_leader));
  Sys_.run sys ~duration_us:4_000_000;
  Sys_.assert_agreement sys;
  Alcotest.(check bool) "demotion applied" true (ok !outcome);
  (* Every correct replica suspects the view-0 leader at once: the
     protocol rotates. *)
  Alcotest.(check bool) "view advanced" true (Sys_.view_of sys 1 >= 1);
  Alcotest.(check bool) "traffic survived the rotation" true
    (Sys_.confirmed_updates sys > 100)

let test_system_deployment_guards () =
  (* Recovery knob without proactive recovery enabled: actuator refuses;
     the rejection is journalled like any other. *)
  let sys = Sys_.create (short_config ()) in
  Sys_.start sys;
  let k = Sys_.knobs sys in
  Alcotest.(check bool) "recovery knob refused" false
    (ok (K.request k ~now_us:0 ~source:"test" (K.Set_recovery_period_us 200_000)));
  Alcotest.(check int) "rejection journalled" 1
    (K.rejected_count k K.Recovery_period);
  (* TAT knobs and demotion on a PBFT deployment: refused (PBFT has no
     TAT machinery and its leader keeps the role — the E4 contrast). *)
  let pbft =
    Sys_.create { (short_config ()) with Sys_.protocol = Sys_.Pbft_protocol }
  in
  Sys_.start pbft;
  let kp = Sys_.knobs pbft in
  Alcotest.(check bool) "tat threshold refused" false
    (ok (K.request kp ~now_us:0 ~source:"test" (K.Set_tat_threshold_us 50_000)));
  Alcotest.(check bool) "tat violations refused" false
    (ok (K.request kp ~now_us:0 ~source:"test" (K.Set_tat_violations 1)));
  Alcotest.(check bool) "demotion refused" false
    (ok (K.request kp ~now_us:0 ~source:"test" K.Demote_leader));
  Alcotest.(check int) "all journalled" 3 (K.total_rejected kp);
  Alcotest.(check bool) "journal reconciles" true (K.reconcile kp)

let test_controller_off_plane_inert () =
  (* adaptive = false (the default): the plane exists for operator use
     but nothing touches it — the journal stays empty. *)
  let sys = Sys_.create (short_config ()) in
  Sys_.start sys;
  Sys_.run sys ~duration_us:2_000_000;
  Sys_.assert_agreement sys;
  Alcotest.(check int) "no journal entries" 0
    (K.journal_length (Sys_.knobs sys));
  Alcotest.(check int) "no applied" 0 (K.total_applied (Sys_.knobs sys))

let test_controller_on_healthy_run_no_actions () =
  (* The controller live on a healthy system must not thrash: no attack,
     no knob requests. *)
  let sys =
    Sys_.create
      { (short_config ()) with Sys_.telemetry = true; adaptive = true }
  in
  Sys_.start sys;
  Sys_.run sys ~duration_us:3_000_000;
  Sys_.assert_agreement sys;
  Alcotest.(check int) "no knob requests" 0
    (K.journal_length (Sys_.knobs sys));
  Alcotest.(check bool) "journal reconciles" true
    (K.reconcile (Sys_.knobs sys))

let () =
  Alcotest.run "control"
    [
      ( "knobs",
        [
          Alcotest.test_case "validation bounds" `Quick test_validate_bounds;
          Alcotest.test_case "no actuator rejects" `Quick
            test_no_actuator_rejects;
          Alcotest.test_case "counters and journal reconcile" `Quick
            test_counters_journal_reconcile;
        ] );
      ( "global",
        [
          Alcotest.test_case "routing ladder escalates under cooldown" `Quick
            test_global_routing_ladder;
          Alcotest.test_case "sustained health de-escalates" `Quick
            test_global_deescalates_after_sustained_health;
          Alcotest.test_case "minority cannot steer" `Quick
            test_global_majority_gate;
          Alcotest.test_case "leader strikes tighten TAT" `Quick
            test_global_leader_strikes_tighten_tat;
        ] );
      ( "system",
        [
          Alcotest.test_case "routing hot-swap mid-run" `Quick
            test_system_routing_hot_swap;
          Alcotest.test_case "batch knobs guarded and applied" `Quick
            test_system_batch_knobs_guarded;
          Alcotest.test_case "demotion rotates the leader" `Quick
            test_system_demote_leader_advances_view;
          Alcotest.test_case "deployment guards journalled" `Quick
            test_system_deployment_guards;
          Alcotest.test_case "controller off: plane inert" `Quick
            test_controller_off_plane_inert;
          Alcotest.test_case "controller on, healthy: no actions" `Quick
            test_controller_on_healthy_run_no_actions;
        ] );
    ]
