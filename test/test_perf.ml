(* Determinism regression for the hot-path optimisations.

   The zero-allocation work (measured-size codecs, frame-size
   memoization, ring-based fair queueing, the engine's closure-free
   periodic timers and lazy cancelled-entry purge, unboxed digest
   limbs) must be *unobservable*: the simulation trajectory, the
   confirmed count, the view count, and the per-kind wire-byte ledger
   have to be bit-identical to what the straightforward implementations
   produced. The golden values below were recorded from the E2
   fault-free workload (60 s virtual time, default config and seed) and
   verified identical on the pre-optimisation code; any drift means a
   semantic change snuck into the "pure performance" layer. *)

let duration_us = 60 * 1_000_000

let golden_confirmed = 5990
let golden_max_view = 0
let golden_events = 917_538

let golden_ledger =
  [
    ("replica_reply", 35940, 6397320);
    ("prime/po_aru", 62925, 4530600);
    ("prime/prepare", 57485, 3564070);
    ("prime/commit", 57480, 3563760);
    ("prime/po_request", 31450, 3365150);
    ("prime/preprepare", 9585, 2032020);
    ("client_update", 6000, 1932000);
    ("prime/checkpoint", 1380, 80040);
  ]

type snapshot = {
  confirmed : int;
  max_view : int;
  events : int;
  ledger : (string * int * int) list;
}

let run () =
  let sys, r = Spire.Scenarios.fault_free ~duration_us () in
  {
    confirmed = r.Spire.Scenarios.confirmed;
    max_view = r.Spire.Scenarios.max_view;
    events = Sim.Engine.processed (Spire.System.engine sys);
    ledger = Spire.System.wire_traffic sys;
  }

let ledger_testable =
  Alcotest.(list (triple string int int))

let test_golden_trajectory () =
  let s = run () in
  Alcotest.(check int) "confirmed" golden_confirmed s.confirmed;
  Alcotest.(check int) "max view" golden_max_view s.max_view;
  Alcotest.(check int) "events processed" golden_events s.events;
  Alcotest.check ledger_testable "per-kind wire ledger" golden_ledger s.ledger

let test_run_to_run_identical () =
  let a = run () and b = run () in
  Alcotest.(check int) "confirmed" a.confirmed b.confirmed;
  Alcotest.(check int) "events" a.events b.events;
  Alcotest.check ledger_testable "ledger" a.ledger b.ledger

(* The batched send path at max_batch = 1 must be *the* legacy path:
   explicitly setting the batching fields (with a deliberately odd
   deadline, which singleton mode must never consult) has to reproduce
   the golden trajectory and the per-kind wire-byte ledger bit for
   bit — same frames, same kinds, same byte totals, same event count. *)
let test_singleton_batching_identical () =
  let cfg =
    {
      (Spire.System.default_config ()) with
      Spire.System.max_batch = 1;
      batch_delay_us = 77_777;
    }
  in
  let sys, r = Spire.Scenarios.fault_free ~config:cfg ~duration_us () in
  Alcotest.(check int) "confirmed" golden_confirmed r.Spire.Scenarios.confirmed;
  Alcotest.(check int) "max view" golden_max_view r.Spire.Scenarios.max_view;
  Alcotest.(check int) "events processed" golden_events
    (Sim.Engine.processed (Spire.System.engine sys));
  Alcotest.check ledger_testable "per-kind wire ledger" golden_ledger
    (Spire.System.wire_traffic sys)

(* The conservative-lookahead parallel path is the tentpole determinism
   claim: running the same E2 workload with the site shards spread over
   4 OCaml domains must reproduce the golden trajectory — confirmed
   count, view, *engine event count* and the per-kind wire-byte ledger —
   bit for bit. The stats assertion pins that the windowed scheduler
   actually ran (rather than silently falling back to sequential). *)
let test_intra_parallel_identical () =
  let cfg =
    { (Spire.System.default_config ()) with Spire.System.intra_domains = 4 }
  in
  let sys, r = Spire.Scenarios.fault_free ~config:cfg ~duration_us () in
  Alcotest.(check int) "confirmed" golden_confirmed r.Spire.Scenarios.confirmed;
  Alcotest.(check int) "max view" golden_max_view r.Spire.Scenarios.max_view;
  Alcotest.(check int) "events processed" golden_events
    (Sim.Engine.processed (Spire.System.engine sys));
  Alcotest.check ledger_testable "per-kind wire ledger" golden_ledger
    (Spire.System.wire_traffic sys);
  match Spire.System.intra_stats sys with
  | None -> Alcotest.fail "intra_domains=4 fell back to the sequential engine"
  | Some st ->
    Alcotest.(check bool) "windows executed" true (st.Sim.Conservative.windows > 0);
    Alcotest.(check bool)
      "windowed events executed" true
      (st.Sim.Conservative.window_events > 0)

(* With batching actually on, the telemetry invariant must survive:
   for every confirmed trace the six lifecycle phases — including the
   new batch-wait — sum exactly to the end-to-end span, and the
   deadline-flushed batches make batch-wait genuinely non-zero. *)
let lifecycle_phases =
  [
    Telemetry.Span.Batch_wait; Telemetry.Span.Ingress; Telemetry.Span.Preorder;
    Telemetry.Span.Ordering; Telemetry.Span.Execution; Telemetry.Span.Reply;
  ]

let test_batched_phase_reconciliation () =
  let cfg =
    {
      (Spire.System.default_config ()) with
      Spire.System.max_batch = 8;
      batch_delay_us = 10_000;
      telemetry = true;
    }
  in
  let sys, r = Spire.Scenarios.fault_free ~config:cfg ~duration_us () in
  Alcotest.(check bool)
    "some updates confirmed under batching" true
    (r.Spire.Scenarios.confirmed > 0);
  let sink = Spire.System.telemetry sys in
  let by_trace = Hashtbl.create 1024 in
  List.iter
    (fun (s : Telemetry.Span.t) ->
      if s.Telemetry.Span.trace >= 0 then
        Hashtbl.replace by_trace s.Telemetry.Span.trace
          (s
          :: (try Hashtbl.find by_trace s.Telemetry.Span.trace
              with Not_found -> [])))
    (Telemetry.Sink.spans sink);
  let roots = ref 0 and batch_waits = ref 0 in
  Hashtbl.iter
    (fun _trace spans ->
      match
        List.find_opt
          (fun (s : Telemetry.Span.t) ->
            s.Telemetry.Span.phase = Telemetry.Span.End_to_end)
          spans
      with
      | None -> ()
      | Some root ->
        incr roots;
        let child phase =
          match
            List.find_opt
              (fun (s : Telemetry.Span.t) -> s.Telemetry.Span.phase = phase)
              spans
          with
          | Some s -> s
          | None ->
            Alcotest.failf "trace missing lifecycle phase %s"
              (Telemetry.Span.phase_name phase)
        in
        let sum =
          List.fold_left
            (fun acc phase ->
              let s = child phase in
              if Telemetry.Span.duration s > 0
                 && phase = Telemetry.Span.Batch_wait
              then incr batch_waits;
              acc + Telemetry.Span.duration s)
            0 lifecycle_phases
        in
        if sum <> Telemetry.Span.duration root then
          Alcotest.failf "phase sum %d <> end-to-end %d" sum
            (Telemetry.Span.duration root))
    by_trace;
  Alcotest.(check bool) "confirmed traces materialised" true (!roots > 0);
  Alcotest.(check bool)
    "batch-wait is non-zero for deadline-flushed batches" true
    (!batch_waits > 0)

let () =
  Alcotest.run "perf"
    [
      ( "determinism",
        [
          Alcotest.test_case "E2 golden trajectory and byte ledger" `Slow
            test_golden_trajectory;
          Alcotest.test_case "run-to-run bit-identical" `Slow
            test_run_to_run_identical;
          Alcotest.test_case "max_batch=1 ledger bit-identical" `Slow
            test_singleton_batching_identical;
          Alcotest.test_case "intra_domains=4 ledger bit-identical" `Slow
            test_intra_parallel_identical;
        ] );
      ( "batching",
        [
          Alcotest.test_case "batch-wait phase sums reconcile exactly" `Slow
            test_batched_phase_reconciliation;
        ] );
    ]
