(* Determinism regression for the hot-path optimisations.

   The zero-allocation work (measured-size codecs, frame-size
   memoization, ring-based fair queueing, the engine's closure-free
   periodic timers and lazy cancelled-entry purge, unboxed digest
   limbs) must be *unobservable*: the simulation trajectory, the
   confirmed count, the view count, and the per-kind wire-byte ledger
   have to be bit-identical to what the straightforward implementations
   produced. The golden values below were recorded from the E2
   fault-free workload (60 s virtual time, default config and seed) and
   verified identical on the pre-optimisation code; any drift means a
   semantic change snuck into the "pure performance" layer. *)

let duration_us = 60 * 1_000_000

let golden_confirmed = 5990
let golden_max_view = 0
let golden_events = 917_538

let golden_ledger =
  [
    ("replica_reply", 35940, 6397320);
    ("prime/po_aru", 62925, 4530600);
    ("prime/prepare", 57485, 3564070);
    ("prime/commit", 57480, 3563760);
    ("prime/po_request", 31450, 3365150);
    ("prime/preprepare", 9585, 2032020);
    ("client_update", 6000, 1932000);
    ("prime/checkpoint", 1380, 80040);
  ]

type snapshot = {
  confirmed : int;
  max_view : int;
  events : int;
  ledger : (string * int * int) list;
}

let run () =
  let sys, r = Spire.Scenarios.fault_free ~duration_us () in
  {
    confirmed = r.Spire.Scenarios.confirmed;
    max_view = r.Spire.Scenarios.max_view;
    events = Sim.Engine.processed (Spire.System.engine sys);
    ledger = Spire.System.wire_traffic sys;
  }

let ledger_testable =
  Alcotest.(list (triple string int int))

let test_golden_trajectory () =
  let s = run () in
  Alcotest.(check int) "confirmed" golden_confirmed s.confirmed;
  Alcotest.(check int) "max view" golden_max_view s.max_view;
  Alcotest.(check int) "events processed" golden_events s.events;
  Alcotest.check ledger_testable "per-kind wire ledger" golden_ledger s.ledger

let test_run_to_run_identical () =
  let a = run () and b = run () in
  Alcotest.(check int) "confirmed" a.confirmed b.confirmed;
  Alcotest.(check int) "events" a.events b.events;
  Alcotest.check ledger_testable "ledger" a.ledger b.ledger

let () =
  Alcotest.run "perf"
    [
      ( "determinism",
        [
          Alcotest.test_case "E2 golden trajectory and byte ledger" `Slow
            test_golden_trajectory;
          Alcotest.test_case "run-to-run bit-identical" `Slow
            test_run_to_run_identical;
        ] );
    ]
