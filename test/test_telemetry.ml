(* Telemetry tests: drop-oldest ring model, span identity packing,
   sink lifecycle materialisation (clamping, missing milestones,
   pending-cap eviction), qcheck well-formedness of span trees under
   adversarial milestone orders, Chrome trace_event export goldens and
   round-trips, bounded Sim.Trace retention, and an end-to-end E2
   smoke asserting the attribution invariant on a real system run. *)

module Ring = Telemetry.Ring
module Span = Telemetry.Span
module Sink = Telemetry.Sink
module Export = Telemetry.Export
module Attribution = Telemetry.Attribution

(* ------------------------------------------------------------------ *)
(* Ring *)

let prop_ring_drop_oldest_model =
  QCheck.Test.make ~count:300 ~name:"ring: keeps exactly the newest [cap]"
    QCheck.(pair (int_range 1 16) (small_list small_int))
    (fun (cap, xs) ->
      let r = Ring.create cap in
      List.iter (Ring.push r) xs;
      let n = List.length xs in
      let d = max 0 (n - cap) in
      let expect = List.filteri (fun i _ -> i >= d) xs in
      Ring.to_list r = expect
      && Ring.length r = min n cap
      && Ring.dropped r = d
      && Ring.capacity r = cap)

let test_ring_rejects_nonpositive () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Ring.create 0 : int Ring.t))

let test_ring_iter_fold_clear () =
  let r = Ring.create 3 in
  List.iter (Ring.push r) [ 1; 2; 3; 4; 5 ];
  let seen = ref [] in
  Ring.iter (fun x -> seen := x :: !seen) r;
  Alcotest.(check (list int)) "iter oldest-first" [ 3; 4; 5 ] (List.rev !seen);
  Alcotest.(check int) "fold" 12 (Ring.fold ( + ) 0 r);
  Ring.clear r;
  Alcotest.(check int) "cleared len" 0 (Ring.length r);
  Alcotest.(check int) "cleared dropped" 0 (Ring.dropped r)

(* ------------------------------------------------------------------ *)
(* Span identity *)

let test_phase_names_roundtrip () =
  Array.iter
    (fun p ->
      match Span.phase_of_name (Span.phase_name p) with
      | Some p' ->
        Alcotest.(check int) "phase index survives name round-trip"
          (Span.phase_index p) (Span.phase_index p')
      | None -> Alcotest.failf "phase %s did not parse" (Span.phase_name p))
    Span.all_phases;
  Alcotest.(check int) "phase_count matches all_phases" Span.phase_count
    (Array.length Span.all_phases)

let prop_trace_id_roundtrip =
  QCheck.Test.make ~count:300 ~name:"trace id: (client, seq) pack round-trip"
    QCheck.(pair (int_bound 0xffff) (int_bound 0xffff_ffff))
    (fun (client, seq) ->
      let id = Span.trace_id ~client ~seq in
      id >= 0 && Span.trace_client id = client && Span.trace_seq id = seq)

(* ------------------------------------------------------------------ *)
(* Sink: disabled path *)

let span_t = Alcotest.testable Span.pp ( = )

let test_disabled_sink_is_inert () =
  let s = Sink.null in
  Alcotest.(check bool) "disabled" false (Sink.enabled s);
  let id = Sink.open_span s ~phase:Span.Net_queue ~node:0 ~label:"x" ~now:1 () in
  Alcotest.(check int) "open returns -1" (-1) id;
  Sink.close_span s ~id ~now:2;
  Sink.annotate s ~label:"y" ~now:3 ();
  let trace = Span.trace_id ~client:1 ~seq:1 in
  Sink.update_submitted s ~trace ~now:1;
  Sink.update_confirmed s ~trace ~now:2;
  Alcotest.(check int) "nothing opened" 0 (Sink.opened s);
  Alcotest.(check int) "nothing closed" 0 (Sink.closed s);
  Alcotest.(check int) "nothing pending" 0 (Sink.pending_count s);
  Alcotest.(check (list span_t)) "no spans" [] (Sink.spans s)

(* ------------------------------------------------------------------ *)
(* Sink: lifecycle materialisation *)

let find_phase spans phase =
  List.find (fun (s : Span.t) -> s.Span.phase = phase) spans

let lifecycle_children =
  [
    Span.Batch_wait; Span.Ingress; Span.Preorder; Span.Ordering; Span.Execution;
    Span.Reply;
  ]

let test_lifecycle_materialisation () =
  let s = Sink.create ~enabled:true () in
  Sink.set_quorums s ~order:2 ~reply:2;
  let trace = Span.trace_id ~client:7 ~seq:3 in
  Sink.update_submitted s ~trace ~now:100;
  Sink.update_batched s ~trace ~now:120;
  Sink.update_at_origin s ~trace ~now:150;
  Sink.update_body s ~trace ~replica:0 ~now:160;
  Sink.update_body s ~trace ~replica:0 ~now:170;
  (* duplicate replica: not distinct *)
  Sink.update_body s ~trace ~replica:1 ~now:200;
  Sink.update_executed s ~trace ~replica:2 ~now:300;
  Sink.update_executed s ~trace ~replica:4 ~now:350;
  Sink.update_reply_sent s ~trace ~replica:2 ~now:355;
  (* not r*: ignored *)
  Sink.update_reply_sent s ~trace ~replica:4 ~now:360;
  Sink.update_confirmed s ~trace ~now:500;
  let spans = Sink.spans s in
  Alcotest.(check int) "seven spans" 7 (List.length spans);
  Alcotest.(check int) "confirmed" 1 (Sink.confirmed s);
  Alcotest.(check int) "complete" 0 (Sink.incomplete s);
  Alcotest.(check int) "no clamps" 0 (Sink.clamped s);
  let root = find_phase spans Span.End_to_end in
  Alcotest.(check (pair int int)) "root interval" (100, 500)
    (root.Span.t_start, root.Span.t_end);
  Alcotest.(check int) "root is a root" (-1) root.Span.parent;
  let check_child phase t_start t_end node =
    let c = find_phase spans phase in
    Alcotest.(check (pair int int))
      (Span.phase_name phase ^ " interval")
      (t_start, t_end)
      (c.Span.t_start, c.Span.t_end);
    Alcotest.(check int) (Span.phase_name phase ^ " parent") root.Span.id
      c.Span.parent;
    Alcotest.(check int) (Span.phase_name phase ^ " node") node c.Span.node;
    Alcotest.(check int) (Span.phase_name phase ^ " trace") trace c.Span.trace
  in
  check_child Span.Batch_wait 100 120 (-1);
  check_child Span.Ingress 120 150 (-1);
  check_child Span.Preorder 150 200 (-1);
  check_child Span.Ordering 200 350 (-1);
  check_child Span.Execution 350 360 4;
  check_child Span.Reply 360 500 4

let test_missing_and_clamped_milestones () =
  let s = Sink.create ~enabled:true () in
  (* Missing everything but submit and confirm: all middle phases
     collapse to zero width, still summing to end-to-end. *)
  let t1 = Span.trace_id ~client:1 ~seq:1 in
  Sink.update_submitted s ~trace:t1 ~now:10;
  Sink.update_confirmed s ~trace:t1 ~now:40;
  Alcotest.(check int) "incomplete counted" 1 (Sink.incomplete s);
  let spans = Sink.spans s in
  let root = find_phase spans Span.End_to_end in
  let sum =
    List.fold_left
      (fun acc ph -> acc + Span.duration (find_phase spans ph))
      0 lifecycle_children
  in
  Alcotest.(check int) "children sum to e2e" (Span.duration root) sum;
  (* A milestone reported after confirmation time is clamped to it. *)
  Sink.clear s;
  let t2 = Span.trace_id ~client:2 ~seq:2 in
  Sink.update_submitted s ~trace:t2 ~now:10;
  Sink.update_at_origin s ~trace:t2 ~now:9_999;
  Sink.update_confirmed s ~trace:t2 ~now:50;
  Alcotest.(check int) "clamp counted" 1 (Sink.clamped s);
  List.iter
    (fun (sp : Span.t) ->
      Alcotest.(check bool)
        (Span.phase_name sp.Span.phase ^ " non-negative")
        true
        (sp.Span.t_end >= sp.Span.t_start))
    (Sink.spans s)

let test_unknown_trace_confirm_is_noop () =
  let s = Sink.create ~enabled:true () in
  Sink.update_confirmed s ~trace:(Span.trace_id ~client:9 ~seq:9) ~now:100;
  Alcotest.(check int) "nothing confirmed" 0 (Sink.confirmed s);
  Alcotest.(check (list span_t)) "no spans" [] (Sink.spans s)

let test_pending_cap_eviction () =
  let s = Sink.create ~pending_cap:4 ~enabled:true () in
  for i = 0 to 9 do
    Sink.update_submitted s ~trace:(Span.trace_id ~client:i ~seq:0) ~now:i
  done;
  Alcotest.(check bool) "pending bounded" true (Sink.pending_count s <= 4);
  Alcotest.(check int) "evictions counted" 6 (Sink.abandoned s);
  (* The abandoned traces confirm as no-ops; the survivors confirm. *)
  for i = 0 to 9 do
    Sink.update_confirmed s ~trace:(Span.trace_id ~client:i ~seq:0) ~now:100
  done;
  Alcotest.(check int) "only survivors confirmed" 4 (Sink.confirmed s)

let test_open_close_cancel () =
  let s = Sink.create ~enabled:true () in
  let a = Sink.open_span s ~phase:Span.Net_transmit ~node:3 ~label:"l" ~now:10 () in
  let b = Sink.open_span s ~phase:Span.Net_queue ~node:3 ~label:"q" ~now:10 () in
  Alcotest.(check int) "two open" 2 (Sink.open_count s);
  Sink.close_span s ~id:a ~now:25;
  Sink.cancel_span s ~id:b;
  Sink.close_span s ~id:b ~now:99;
  (* cancelled: ignored *)
  Alcotest.(check int) "none open" 0 (Sink.open_count s);
  Alcotest.(check int) "one closed" 1 (Sink.closed s);
  Alcotest.(check int) "cancel counted" 1 (Sink.abandoned s);
  let sp = List.hd (Sink.spans s) in
  Alcotest.(check int) "duration" 15 (Span.duration sp);
  (* Closing before opening time never yields a negative duration. *)
  let c = Sink.open_span s ~phase:Span.Net_arq ~node:0 ~label:"r" ~now:50 () in
  Sink.close_span s ~id:c ~now:40;
  let sp = List.nth (Sink.spans s) 1 in
  Alcotest.(check int) "clamped to zero width" 0 (Span.duration sp)

(* ------------------------------------------------------------------ *)
(* qcheck: span-tree well-formedness under adversarial milestones *)

(* Feed the sink milestones in arbitrary (possibly absent, possibly
   out-of-order, possibly beyond-confirmation) positions; whatever it
   materialises must be a well-formed tree whose children tile the
   root exactly. *)
let gen_milestones =
  QCheck.make
    ~print:(fun (a, b, c, d, e, f) ->
      Printf.sprintf
        "submit=%d batched=%d origin=%d orderable=%d exec=%d reply=%d" a b c d
        e f)
    QCheck.Gen.(
      let m = int_range (-1) 2_000 in
      tup6 m m m m m m)

let well_formed_tree spans =
  let by_id = Hashtbl.create 16 in
  List.iter (fun (s : Span.t) -> Hashtbl.replace by_id s.Span.id s) spans;
  List.for_all
    (fun (s : Span.t) ->
      s.Span.t_start <= s.Span.t_end
      &&
      (s.Span.parent < 0
      ||
      match Hashtbl.find_opt by_id s.Span.parent with
      | None -> false (* orphan: parent id never materialised *)
      | Some p ->
        p.Span.t_start <= s.Span.t_start && s.Span.t_end <= p.Span.t_end))
    spans

let children_tile_root spans =
  match
    List.find_opt (fun (s : Span.t) -> s.Span.phase = Span.End_to_end) spans
  with
  | None -> List.for_all (fun (s : Span.t) -> s.Span.parent < 0) spans
  | Some root ->
    let sum =
      List.fold_left
        (fun acc (s : Span.t) ->
          if List.mem s.Span.phase lifecycle_children then
            acc + Span.duration s
          else acc)
        0 spans
    in
    sum = Span.duration root

let prop_adversarial_milestones_well_formed =
  QCheck.Test.make ~count:500
    ~name:"sink: arbitrary milestone orders yield well-formed span trees"
    gen_milestones
    (fun (submit, batched, origin, orderable, exec, reply) ->
      let s = Sink.create ~enabled:true () in
      let trace = Span.trace_id ~client:1 ~seq:42 in
      if submit >= 0 then Sink.update_submitted s ~trace ~now:submit;
      if batched >= 0 then Sink.update_batched s ~trace ~now:batched;
      if origin >= 0 then Sink.update_at_origin s ~trace ~now:origin;
      if orderable >= 0 then Sink.update_orderable s ~trace ~now:orderable;
      if exec >= 0 then Sink.update_executed s ~trace ~replica:2 ~now:exec;
      if reply >= 0 then Sink.update_reply_sent s ~trace ~replica:2 ~now:reply;
      Sink.update_confirmed s ~trace ~now:1_000;
      let spans = Sink.spans s in
      (* confirm on a never-seen trace is a no-op; any milestone call
         registers the trace and confirm then materialises exactly 7. *)
      (match spans with [] -> true | l -> List.length l = 7)
      && well_formed_tree spans
      && children_tile_root spans
      && List.for_all
           (fun (sp : Span.t) -> sp.Span.t_end <= 1_000)
           spans)

(* ------------------------------------------------------------------ *)
(* Export: golden + round-trip *)

let golden_spans =
  [
    {
      Span.id = 0;
      parent = -1;
      trace = Span.trace_id ~client:3 ~seq:7;
      phase = Span.End_to_end;
      node = -1;
      label = "";
      t_start = 100;
      t_end = 400;
    };
    {
      Span.id = 1;
      parent = 0;
      trace = Span.trace_id ~client:3 ~seq:7;
      phase = Span.Ingress;
      node = -1;
      label = "";
      t_start = 100;
      t_end = 180;
    };
    {
      Span.id = 2;
      parent = -1;
      trace = -1;
      phase = Span.Net_transmit;
      node = 4;
      label = "link 4->5";
      t_start = 120;
      t_end = 125;
    };
    {
      Span.id = 3;
      parent = -1;
      trace = -1;
      phase = Span.Annotation;
      node = -1;
      label = "quoted \"label\"\twith\nescapes\\";
      t_start = 90;
      t_end = 90;
    };
  ]

let golden_export =
  "{\"traceEvents\":[\n\
   {\"name\":\"annotation\",\"cat\":\"annotation\",\"ph\":\"X\",\"ts\":90,\"dur\":0,\"pid\":0,\"tid\":0,\"args\":{\"id\":3,\"parent\":-1,\"trace\":-1,\"node\":-1,\"label\":\"quoted \\\"label\\\"\\twith\\nescapes\\\\\"}},\n\
   {\"name\":\"end_to_end\",\"cat\":\"lifecycle\",\"ph\":\"X\",\"ts\":100,\"dur\":300,\"pid\":0,\"tid\":7,\"args\":{\"id\":0,\"parent\":-1,\"trace\":12884901895,\"node\":-1,\"label\":\"\"}},\n\
   {\"name\":\"ingress\",\"cat\":\"lifecycle\",\"ph\":\"X\",\"ts\":100,\"dur\":80,\"pid\":0,\"tid\":7,\"args\":{\"id\":1,\"parent\":0,\"trace\":12884901895,\"node\":-1,\"label\":\"\"}},\n\
   {\"name\":\"net.transmit\",\"cat\":\"net\",\"ph\":\"X\",\"ts\":120,\"dur\":5,\"pid\":5,\"tid\":0,\"args\":{\"id\":2,\"parent\":-1,\"trace\":-1,\"node\":4,\"label\":\"link 4->5\"}}\n\
   ],\"displayTimeUnit\":\"ms\"}\n"

let test_export_golden () =
  Alcotest.(check string) "byte-stable Chrome export" golden_export
    (Export.to_string golden_spans)

let sorted_spans spans =
  List.stable_sort
    (fun (a : Span.t) (b : Span.t) ->
      match compare a.Span.t_start b.Span.t_start with
      | 0 -> compare a.Span.id b.Span.id
      | c -> c)
    spans

let test_export_roundtrip_golden () =
  let back = Export.spans_of_string (Export.to_string golden_spans) in
  Alcotest.(check int) "count" (List.length golden_spans) (List.length back);
  List.iter2
    (fun (a : Span.t) (b : Span.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "span %d survives round-trip" a.Span.id)
        true (a = b))
    (sorted_spans golden_spans) back

let gen_label =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'z'; ' '; '"'; '\\'; '\n'; '\t'; '-'; '>' ])
      (int_bound 12))

let gen_span =
  QCheck.make
    ~print:(fun s -> Format.asprintf "%a" Span.pp s)
    QCheck.Gen.(
      map
        (fun ((id, parent, trace), (node, t_start, dur), label, pi) ->
          {
            Span.id;
            parent;
            trace;
            phase = Span.all_phases.(pi);
            node;
            label;
            t_start;
            t_end = t_start + dur;
          })
        (tup4
           (tup3 (int_bound 10_000) (int_range (-1) 100) (int_range (-1) 1_000))
           (tup3 (int_range (-1) 50) (int_bound 100_000) (int_bound 5_000))
           gen_label
           (int_bound (Span.phase_count - 1))))

let prop_export_roundtrip =
  QCheck.Test.make ~count:200
    ~name:"export: spans_of_string inverts to_string (sorted)"
    (QCheck.list_of_size (QCheck.Gen.int_bound 20) gen_span)
    (fun spans ->
      Export.spans_of_string (Export.to_string spans) = sorted_spans spans)

(* ------------------------------------------------------------------ *)
(* Sim.Trace retention bound *)

let test_trace_bounded_retention () =
  let t = Sim.Trace.create ~capacity:4 () in
  Sim.Trace.enable t;
  for i = 1 to 10 do
    Sim.Trace.emit t ~time_us:i ~category:"c" (string_of_int i)
  done;
  Alcotest.(check int) "retains capacity" 4 (Sim.Trace.count t);
  Alcotest.(check int) "counts shed records" 6 (Sim.Trace.dropped t);
  Alcotest.(check (list string)) "keeps the newest"
    [ "7"; "8"; "9"; "10" ]
    (List.map (fun (r : Sim.Trace.record) -> r.Sim.Trace.message)
       (Sim.Trace.records t))

let test_trace_mirrors_to_sink () =
  let t = Sim.Trace.create () in
  let sink = Sink.create ~enabled:true () in
  Sim.Trace.set_sink t sink;
  Sim.Trace.emit t ~time_us:5 ~category:"net" "dropped while disabled";
  Sim.Trace.enable t;
  Sim.Trace.emit t ~time_us:7 ~category:"net" "frame lost";
  Alcotest.(check int) "one annotation" 1 (Sink.closed sink);
  let sp = List.hd (Sink.spans sink) in
  Alcotest.(check string) "label carries category" "net: frame lost"
    sp.Span.label;
  Alcotest.(check int) "zero duration" 0 (Span.duration sp);
  Alcotest.(check int) "at emit time" 7 sp.Span.t_start

(* ------------------------------------------------------------------ *)
(* End-to-end smoke: a real E2 run with telemetry on *)

let smoke =
  lazy
    (let cfg =
       { (Spire.System.default_config ()) with Spire.System.telemetry = true }
     in
     Spire.Scenarios.fault_free ~config:cfg ~duration_us:10_000_000 ())

let smoke_sink () =
  let sys, _ = Lazy.force smoke in
  Spire.System.telemetry sys

let test_smoke_spans_well_formed () =
  let sink = smoke_sink () in
  let spans = Sink.spans sink in
  Alcotest.(check bool) "produced spans" true (List.length spans > 0);
  Alcotest.(check int) "no ring drops (valid parent check)" 0
    (Sink.ring_dropped sink);
  Alcotest.(check bool) "tree well-formed (incl. no orphans)" true
    (well_formed_tree spans);
  let ids = List.map (fun (s : Span.t) -> s.Span.id) spans in
  Alcotest.(check int) "span ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_smoke_phase_sums_reconcile () =
  let sink = smoke_sink () in
  Alcotest.(check bool) "confirmed some updates" true (Sink.confirmed sink > 0);
  Alcotest.(check int) "no milestone clamps on a clean run" 0
    (Sink.clamped sink);
  (* Per-trace: the five lifecycle children tile their root exactly. *)
  let roots = Hashtbl.create 1024 in
  List.iter
    (fun (s : Span.t) ->
      if s.Span.phase = Span.End_to_end then
        Hashtbl.replace roots s.Span.trace (Span.duration s, ref 0))
    (Sink.spans sink);
  List.iter
    (fun (s : Span.t) ->
      if List.mem s.Span.phase lifecycle_children then
        match Hashtbl.find_opt roots s.Span.trace with
        | Some (_, acc) -> acc := !acc + Span.duration s
        | None -> Alcotest.failf "child of unknown trace %d" s.Span.trace)
    (Sink.spans sink);
  Hashtbl.iter
    (fun trace (e2e, acc) ->
      if abs (e2e - !acc) > 1 then
        Alcotest.failf "trace %d: phases sum to %d but end-to-end is %d" trace
          !acc e2e)
    roots;
  (* And the aggregate view agrees. *)
  let a = Attribution.build sink in
  Alcotest.(check bool) "attribution reconciled" true
    a.Attribution.reconciled;
  Alcotest.(check bool) "mean delta within tolerance" true
    (Float.abs a.Attribution.delta_us <= Attribution.tolerance_us)

let test_smoke_export_roundtrip () =
  let sink = smoke_sink () in
  let spans = Sink.spans sink in
  let back = Export.spans_of_string (Export.of_sink sink) in
  Alcotest.(check int) "all spans exported" (List.length spans)
    (List.length back);
  Alcotest.(check bool) "round-trip equals sink contents" true
    (back = sorted_spans spans)

let test_smoke_export_deterministic () =
  (* Same seed, same config: the Chrome export is byte-identical. *)
  let run () =
    let cfg =
      { (Spire.System.default_config ()) with Spire.System.telemetry = true }
    in
    let sys, _ = Spire.Scenarios.fault_free ~config:cfg ~duration_us:2_000_000 () in
    Export.of_sink (Spire.System.telemetry sys)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "exports byte-identical across runs" true
    (String.equal a b);
  Alcotest.(check bool) "export non-trivial" true (String.length a > 1_000)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "telemetry"
    [
      ( "ring",
        [
          QCheck_alcotest.to_alcotest prop_ring_drop_oldest_model;
          Alcotest.test_case "rejects non-positive capacity" `Quick
            test_ring_rejects_nonpositive;
          Alcotest.test_case "iter/fold/clear" `Quick test_ring_iter_fold_clear;
        ] );
      ( "span",
        [
          Alcotest.test_case "phase names round-trip" `Quick
            test_phase_names_roundtrip;
          QCheck_alcotest.to_alcotest prop_trace_id_roundtrip;
        ] );
      ( "sink",
        [
          Alcotest.test_case "disabled sink is inert" `Quick
            test_disabled_sink_is_inert;
          Alcotest.test_case "lifecycle materialisation" `Quick
            test_lifecycle_materialisation;
          Alcotest.test_case "missing and clamped milestones" `Quick
            test_missing_and_clamped_milestones;
          Alcotest.test_case "confirm without milestones is a no-op" `Quick
            test_unknown_trace_confirm_is_noop;
          Alcotest.test_case "pending cap evicts oldest" `Quick
            test_pending_cap_eviction;
          Alcotest.test_case "open/close/cancel spans" `Quick
            test_open_close_cancel;
          QCheck_alcotest.to_alcotest prop_adversarial_milestones_well_formed;
        ] );
      ( "export",
        [
          Alcotest.test_case "golden Chrome trace_event JSON" `Quick
            test_export_golden;
          Alcotest.test_case "golden round-trip" `Quick
            test_export_roundtrip_golden;
          QCheck_alcotest.to_alcotest prop_export_roundtrip;
        ] );
      ( "trace",
        [
          Alcotest.test_case "bounded drop-oldest retention" `Quick
            test_trace_bounded_retention;
          Alcotest.test_case "mirrors into telemetry sink" `Quick
            test_trace_mirrors_to_sink;
        ] );
      ( "smoke",
        [
          Alcotest.test_case "E2 span tree well-formed" `Slow
            test_smoke_spans_well_formed;
          Alcotest.test_case "E2 phase sums reconcile" `Slow
            test_smoke_phase_sums_reconcile;
          Alcotest.test_case "E2 export round-trips" `Slow
            test_smoke_export_roundtrip;
          Alcotest.test_case "E2 export deterministic" `Slow
            test_smoke_export_deterministic;
        ] );
    ]
