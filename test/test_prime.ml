(* Tests for the Prime protocol: summary matrices, fault-free ordering,
   the bounded-delay property under leader attack, reconciliation, and
   state transfer. *)

module M = Prime.Matrix

(* ------------------------------------------------------------------ *)
(* Matrix unit tests *)

let test_matrix_eligible_basic () =
  (* 4 replicas, threshold 3. Column 0: values 5,3,2,0 -> 3rd largest
     is 2. Column 1: 1,1,1,1 -> 1. *)
  let m =
    [|
      [| 5; 1; 0; 0 |]; [| 3; 1; 0; 0 |]; [| 2; 1; 0; 0 |]; [| 0; 1; 0; 0 |];
    |]
  in
  let e = M.eligible m ~threshold:3 in
  Alcotest.(check (array int)) "eligibility" [| 2; 1; 0; 0 |] e

let test_matrix_eligible_threshold_edge () =
  let m = [| [| 4 |] |] in
  Alcotest.(check (array int)) "threshold 1 takes max" [| 4 |]
    (M.eligible m ~threshold:1);
  Alcotest.check_raises "threshold too big"
    (Invalid_argument "Matrix.eligible: threshold out of range") (fun () ->
      ignore (M.eligible m ~threshold:2))

let test_matrix_merge () =
  let a = [| [| 1; 5 |]; [| 0; 0 |] |] and b = [| [| 3; 2 |]; [| 1; 0 |] |] in
  Alcotest.(check bool) "elementwise max" true
    (M.equal (M.merge a b) [| [| 3; 5 |]; [| 1; 0 |] |])

let test_matrix_digest_distinguishes () =
  let a = [| [| 1; 2 |]; [| 3; 4 |] |] and b = [| [| 1; 2 |]; [| 3; 5 |] |] in
  Alcotest.(check bool) "digests differ" false
    (Cryptosim.Digest.equal (M.digest a) (M.digest b));
  Alcotest.(check bool) "digest stable" true
    (Cryptosim.Digest.equal (M.digest a) (M.digest (M.copy a)))

let prop_eligible_monotone_in_matrix =
  QCheck.Test.make ~name:"merging can only raise eligibility"
    QCheck.(
      pair
        (array_of_size (QCheck.Gen.return 4) (array_of_size (QCheck.Gen.return 4) (int_bound 10)))
        (array_of_size (QCheck.Gen.return 4) (array_of_size (QCheck.Gen.return 4) (int_bound 10))))
    (fun (a, b) ->
      let ea = M.eligible a ~threshold:3 in
      let eab = M.eligible (M.merge a b) ~threshold:3 in
      M.vector_dominates eab ea)

let prop_eligible_bounded_by_max =
  QCheck.Test.make ~name:"eligibility never exceeds any column max"
    QCheck.(array_of_size (QCheck.Gen.return 4) (array_of_size (QCheck.Gen.return 4) (int_bound 10)))
    (fun m ->
      let e = M.eligible m ~threshold:3 in
      let ok = ref true in
      for j = 0 to 3 do
        let col_max = ref 0 in
        for i = 0 to 3 do
          col_max := max !col_max m.(i).(j)
        done;
        if e.(j) > !col_max then ok := false
      done;
      !ok)

let prop_threshold_n_is_column_min =
  QCheck.Test.make ~name:"threshold=n eligibility is the column minimum"
    QCheck.(array_of_size (QCheck.Gen.return 3) (array_of_size (QCheck.Gen.return 3) (int_bound 10)))
    (fun m ->
      let e = M.eligible m ~threshold:3 in
      let ok = ref true in
      for j = 0 to 2 do
        let col_min = ref max_int in
        for i = 0 to 2 do
          col_min := min !col_min m.(i).(j)
        done;
        if e.(j) <> !col_min then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Replica integration harness *)

let quorum_6 = Bft.Quorum.create ~n:6 ~f:1 ~k:1

let fast_config quorum =
  {
    (Prime.Replica.default_config quorum) with
    Prime.Replica.aru_interval_us = 2_000;
    proposal_interval_us = 5_000;
    tat_threshold_us = 100_000;
    tat_violations_to_suspect = 3;
    viewchange_timeout_us = 500_000;
    watchdog_interval_us = 10_000;
    checkpoint_interval = 16;
  }

type harness = {
  engine : Sim.Engine.t;
  cluster : (Prime.Replica.t, Prime.Msg.t) Bft.Cluster.t;
  exec_times : (int, (int * Bft.Update.t) list ref) Hashtbl.t;
}

let make_harness ?(n = 6) ?(quorum = quorum_6) ?(latency_us = 1_000) () =
  let engine = Sim.Engine.create ~seed:11L () in
  let exec_times = Hashtbl.create 7 in
  let cluster =
    Bft.Cluster.create ~engine ~n
      ~latency_us:(fun _ _ -> latency_us)
      ~make:(fun i env ->
        let log = ref [] in
        Hashtbl.replace exec_times i log;
        let r =
          Prime.Replica.create (fast_config quorum) env
            ~execute:(fun _idx u -> log := (Sim.Engine.now engine, u) :: !log)
        in
        Prime.Replica.start r;
        r)
      ~deliver:(fun r ~from msg -> Prime.Replica.handle r ~from msg)
  in
  { engine; cluster; exec_times }

let update ~client ~seq =
  Bft.Update.create ~client ~client_seq:seq
    ~operation:(Printf.sprintf "op-%d-%d" client seq)
    ~submitted_us:0

let submit_at h ~time_us ~origin u =
  ignore
    (Sim.Engine.schedule_at h.engine ~time_us (fun () ->
         Prime.Replica.submit (Bft.Cluster.replica h.cluster origin) u)
      : Sim.Engine.timer)

let check_agreement h =
  let n = Bft.Cluster.size h.cluster in
  let l0 = Prime.Replica.exec_log (Bft.Cluster.replica h.cluster 0) in
  for i = 1 to n - 1 do
    let li = Prime.Replica.exec_log (Bft.Cluster.replica h.cluster i) in
    Alcotest.(check bool)
      (Printf.sprintf "prefix-equal 0 vs %d" i)
      true
      (Bft.Exec_log.prefix_equal l0 li)
  done

let correct_execution_counts h ~skip =
  let n = Bft.Cluster.size h.cluster in
  List.filter_map
    (fun i ->
      if List.mem i skip then None
      else
        Some
          (Bft.Exec_log.length
             (Prime.Replica.exec_log (Bft.Cluster.replica h.cluster i))))
    (List.init n Fun.id)

let test_fault_free_ordering () =
  let h = make_harness () in
  for i = 1 to 30 do
    submit_at h ~time_us:(i * 5_000) ~origin:(i mod 6) (update ~client:3 ~seq:i)
  done;
  Sim.Engine.run h.engine ~until_us:3_000_000;
  check_agreement h;
  List.iter
    (fun c -> Alcotest.(check int) "all executed" 30 c)
    (correct_execution_counts h ~skip:[]);
  Alcotest.(check int) "no view change" 0
    (Prime.Replica.view (Bft.Cluster.replica h.cluster 2))

let test_fault_free_latency_bounded () =
  let h = make_harness () in
  let submit_time = 100_000 in
  submit_at h ~time_us:submit_time ~origin:2 (update ~client:1 ~seq:1);
  Sim.Engine.run h.engine ~until_us:2_000_000;
  (* Latency from submission to execution at replica 0: pre-order
     dissemination + ARU tick + proposal tick + 2 ordering rounds.
     With 1ms links and 2/5ms cadences this is well under 50 ms. *)
  (match List.rev !(Hashtbl.find h.exec_times 0) with
  | [ (exec_time, _) ] ->
    Alcotest.(check bool) "latency under 50ms" true
      (exec_time - submit_time < 50_000)
  | l -> Alcotest.failf "expected 1 execution, got %d" (List.length l));
  check_agreement h

let test_duplicate_origins_execute_once () =
  let h = make_harness () in
  let u = update ~client:5 ~seq:1 in
  submit_at h ~time_us:10_000 ~origin:0 u;
  submit_at h ~time_us:11_000 ~origin:3 u;
  Sim.Engine.run h.engine ~until_us:2_000_000;
  check_agreement h;
  List.iter
    (fun c -> Alcotest.(check int) "exactly once" 1 c)
    (correct_execution_counts h ~skip:[])

let test_slow_leader_rotated_and_bounded () =
  let h = make_harness () in
  let r0 = Bft.Cluster.replica h.cluster 0 in
  (* Leader delays every proposal by 400ms >> 100ms TAT bound. *)
  (Prime.Replica.faults r0).Bft.Faults.proposal_delay_us <- 400_000;
  for i = 1 to 20 do
    submit_at h ~time_us:(100_000 + (i * 10_000)) ~origin:(1 + (i mod 5))
      (update ~client:2 ~seq:i)
  done;
  Sim.Engine.run h.engine ~until_us:10_000_000;
  check_agreement h;
  (* The slow leader was detected and replaced... *)
  Alcotest.(check bool) "view advanced" true
    (Prime.Replica.view (Bft.Cluster.replica h.cluster 1) >= 1);
  (* ...and every update executed. *)
  List.iter
    (fun c -> Alcotest.(check int) "all executed" 20 c)
    (correct_execution_counts h ~skip:[ 0 ]);
  (* Bounded delay: every update executed within ~TAT bound + view
     change, far less than the 400ms the leader wanted to impose per
     update. *)
  let times = List.rev !(Hashtbl.find h.exec_times 1) in
  let last_exec, _ = List.nth times (List.length times - 1) in
  Alcotest.(check bool) "all done shortly after last submit" true
    (last_exec < 1_500_000)

let test_crashed_leader_rotated () =
  let h = make_harness () in
  let r0 = Bft.Cluster.replica h.cluster 0 in
  (Prime.Replica.faults r0).Bft.Faults.crashed <- true;
  for i = 1 to 5 do
    submit_at h ~time_us:(50_000 + (i * 10_000)) ~origin:1
      (update ~client:8 ~seq:i)
  done;
  Sim.Engine.run h.engine ~until_us:10_000_000;
  Alcotest.(check bool) "view advanced" true
    (Prime.Replica.view (Bft.Cluster.replica h.cluster 1) >= 1);
  List.iter
    (fun c -> Alcotest.(check int) "all executed" 5 c)
    (correct_execution_counts h ~skip:[ 0 ]);
  check_agreement h

let test_crashed_backup_tolerated () =
  let h = make_harness () in
  let r5 = Bft.Cluster.replica h.cluster 5 in
  (Prime.Replica.faults r5).Bft.Faults.crashed <- true;
  for i = 1 to 10 do
    submit_at h ~time_us:(i * 10_000) ~origin:(i mod 5) (update ~client:4 ~seq:i)
  done;
  Sim.Engine.run h.engine ~until_us:3_000_000;
  check_agreement h;
  List.iter
    (fun c -> Alcotest.(check int) "executed with crashed backup" 10 c)
    (correct_execution_counts h ~skip:[ 5 ]);
  Alcotest.(check int) "no view change needed" 0
    (Prime.Replica.view (Bft.Cluster.replica h.cluster 1))

let test_reconciliation_fills_missed_body () =
  let h = make_harness () in
  let r1 = Bft.Cluster.replica h.cluster 1 in
  (* Origin 1 suppresses its PO-Request to replica 4 only: 4 will see
     the update become eligible and must reconcile the body. *)
  (Prime.Replica.faults r1).Bft.Faults.drop_to <- (fun r -> r = 4);
  submit_at h ~time_us:10_000 ~origin:1 (update ~client:6 ~seq:1);
  (* Restore honest behaviour for subsequent updates. *)
  ignore
    (Sim.Engine.schedule_at h.engine ~time_us:20_000 (fun () ->
         (Prime.Replica.faults r1).Bft.Faults.drop_to <- (fun _ -> false)));
  submit_at h ~time_us:30_000 ~origin:2 (update ~client:6 ~seq:2);
  Sim.Engine.run h.engine ~until_us:3_000_000;
  check_agreement h;
  List.iter
    (fun c -> Alcotest.(check int) "everyone executed both" 2 c)
    (correct_execution_counts h ~skip:[]);
  (* Replica 4 executed the update it never directly received. *)
  Alcotest.(check bool) "replica 4 caught up via reconciliation" true
    (Bft.Exec_log.contains_key
       (Prime.Replica.exec_log (Bft.Cluster.replica h.cluster 4))
       (6, 1))

let test_snapshot_roundtrip () =
  let h = make_harness () in
  for i = 1 to 10 do
    submit_at h ~time_us:(i * 10_000) ~origin:(i mod 6) (update ~client:7 ~seq:i)
  done;
  Sim.Engine.run h.engine ~until_us:2_000_000;
  let r0 = Bft.Cluster.replica h.cluster 0 in
  let r1 = Bft.Cluster.replica h.cluster 1 in
  let snap = Prime.Replica.snapshot r0 in
  let snap1 = Prime.Replica.snapshot r1 in
  (* Snapshots of replicas at identical state have identical digests. *)
  Alcotest.(check bool) "snapshot digests agree" true
    (Cryptosim.Digest.equal
       (Prime.Replica.snapshot_digest snap)
       (Prime.Replica.snapshot_digest snap1));
  Alcotest.(check int) "snapshot carries executions" 10
    snap.Prime.Replica.snap_exec_count

let test_recovered_replica_rejoins () =
  let h = make_harness () in
  for i = 1 to 10 do
    submit_at h ~time_us:(i * 10_000) ~origin:(i mod 4) (update ~client:9 ~seq:i)
  done;
  (* Crash replica 5 mid-stream, then "recover" it: reset faults,
     install a snapshot from replica 0, and let it rejoin. *)
  ignore
    (Sim.Engine.schedule_at h.engine ~time_us:30_000 (fun () ->
         (Prime.Replica.faults (Bft.Cluster.replica h.cluster 5))
           .Bft.Faults.crashed <- true));
  ignore
    (Sim.Engine.schedule_at h.engine ~time_us:500_000 (fun () ->
         let r5 = Bft.Cluster.replica h.cluster 5 in
         Bft.Faults.reset (Prime.Replica.faults r5);
         let snap = Prime.Replica.snapshot (Bft.Cluster.replica h.cluster 0) in
         Prime.Replica.install_snapshot r5 snap));
  (* More updates after recovery. *)
  for i = 11 to 20 do
    submit_at h ~time_us:(600_000 + (i * 10_000)) ~origin:(i mod 4)
      (update ~client:9 ~seq:i)
  done;
  Sim.Engine.run h.engine ~until_us:5_000_000;
  check_agreement h;
  let l5 = Prime.Replica.exec_log (Bft.Cluster.replica h.cluster 5) in
  Alcotest.(check int) "recovered replica has full history" 20
    (Bft.Exec_log.length l5)

let test_max_tat_reflects_leader_delay () =
  let h = make_harness () in
  let r0 = Bft.Cluster.replica h.cluster 0 in
  (Prime.Replica.faults r0).Bft.Faults.proposal_delay_us <- 60_000;
  (* Below the 100ms suspicion bound: leader keeps role, but observed
     TAT grows to ~the injected delay. *)
  for i = 1 to 10 do
    submit_at h ~time_us:(i * 50_000) ~origin:1 (update ~client:1 ~seq:i)
  done;
  Sim.Engine.run h.engine ~until_us:3_000_000;
  let tat = Prime.Replica.max_tat_us (Bft.Cluster.replica h.cluster 1) in
  Alcotest.(check bool) "TAT reflects delay" true (tat >= 55_000);
  Alcotest.(check int) "leader kept role (below bound)" 0
    (Prime.Replica.view (Bft.Cluster.replica h.cluster 1));
  check_agreement h

let test_stale_suspect_views_pruned () =
  (* Regression for the per-view table leak: suspicions, view-change
     votes and new-view evidence are keyed by view; entries below the
     current view can never be read again and must be dropped when the
     view advances. Chaos run: slow down whichever replica currently
     leads, three times in a row, so the cluster rotates through
     several views while updates keep flowing. *)
  let h = make_harness () in
  let faulted = ref None in
  let slow_current_leader () =
    (match !faulted with
    | Some r ->
        Bft.Faults.reset (Prime.Replica.faults (Bft.Cluster.replica h.cluster r))
    | None -> ());
    let view = Prime.Replica.view (Bft.Cluster.replica h.cluster 5) in
    let leader = view mod 6 in
    faulted := Some leader;
    (Prime.Replica.faults (Bft.Cluster.replica h.cluster leader))
      .Bft.Faults.proposal_delay_us <- 400_000
  in
  List.iter
    (fun time_us ->
      ignore
        (Sim.Engine.schedule_at h.engine ~time_us (fun () ->
             slow_current_leader ())))
    [ 100_000; 3_100_000; 6_100_000 ];
  for i = 1 to 80 do
    submit_at h ~time_us:(i * 100_000) ~origin:(i mod 6) (update ~client:6 ~seq:i)
  done;
  Sim.Engine.run h.engine ~until_us:12_000_000;
  check_agreement h;
  Alcotest.(check bool) "several view changes happened" true
    (Prime.Replica.view (Bft.Cluster.replica h.cluster 5) >= 3);
  (* With pruning, each replica retains rows only for its current (and
     possibly next pending) view — a handful, independent of how many
     views the run burned through. Without pruning this climbs with
     every rotation (one suspects row + one vote row + one evidence row
     per historical view). *)
  for r = 0 to 5 do
    let retained =
      Prime.Replica.retained_suspect_views (Bft.Cluster.replica h.cluster r)
    in
    Alcotest.(check bool)
      (Printf.sprintf "replica %d retains only live view rows (got %d)" r
         retained)
      true (retained <= 4)
  done

let () =
  Alcotest.run "prime"
    [
      ( "matrix",
        [
          Alcotest.test_case "eligible basic" `Quick test_matrix_eligible_basic;
          Alcotest.test_case "eligible threshold edge" `Quick
            test_matrix_eligible_threshold_edge;
          Alcotest.test_case "merge" `Quick test_matrix_merge;
          Alcotest.test_case "digest" `Quick test_matrix_digest_distinguishes;
          QCheck_alcotest.to_alcotest prop_eligible_monotone_in_matrix;
          QCheck_alcotest.to_alcotest prop_eligible_bounded_by_max;
          QCheck_alcotest.to_alcotest prop_threshold_n_is_column_min;
        ] );
      ( "replica",
        [
          Alcotest.test_case "fault-free ordering" `Quick test_fault_free_ordering;
          Alcotest.test_case "fault-free latency" `Quick
            test_fault_free_latency_bounded;
          Alcotest.test_case "duplicate origins once" `Quick
            test_duplicate_origins_execute_once;
          Alcotest.test_case "slow leader rotated (bounded delay)" `Quick
            test_slow_leader_rotated_and_bounded;
          Alcotest.test_case "crashed leader rotated" `Quick
            test_crashed_leader_rotated;
          Alcotest.test_case "crashed backup tolerated" `Quick
            test_crashed_backup_tolerated;
          Alcotest.test_case "reconciliation" `Quick
            test_reconciliation_fills_missed_body;
          Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "recovered replica rejoins" `Quick
            test_recovered_replica_rejoins;
          Alcotest.test_case "TAT reflects delay" `Quick
            test_max_tat_reflects_leader_delay;
          Alcotest.test_case "stale suspect views pruned" `Quick
            test_stale_suspect_views_pruned;
        ] );
    ]
