(* Determinism regression tests for the ownership refactor and the
   domain-parallel sweep runner.

   The contract under test: a simulation instance is a pure function of
   its seed. Same seed -> bit-identical confirmed counts, byte ledgers
   and oracle verdicts, whether the instance runs alone, interleaved
   with another instance on one domain, or farmed across N domains by
   Sim.Parallel. Any hidden shared state (a module-level counter, a
   shared sink, a global RNG) breaks one of these checks. *)

(* Replica 0's execution log folded into one digest: sensitive to the
   content of every ordered update (RTU payloads are drawn from the
   seeded RNG), not just to counters — this is what actually separates
   two runs with different seeds. *)
let exec_digest sys =
  let log = Spire.System.exec_log sys 0 in
  let d = ref (Cryptosim.Digest.of_string "fp") in
  for i = 0 to Bft.Exec_log.length log - 1 do
    d := Cryptosim.Digest.combine !d (Bft.Exec_log.digest_at log i)
  done;
  Cryptosim.Digest.to_hex !d

let fingerprint sys =
  let net = Spire.System.net sys in
  let s = Overlay.Net.stats net in
  Printf.sprintf
    "exec=%s confirmed=%d submitted=%d processed=%d now=%d sub_b=%d del_b=%d \
     drop_b=%d wan_f=%d wan_b=%d"
    (exec_digest sys)
    (Spire.System.confirmed_updates sys)
    (Spire.System.submitted_updates sys)
    (Sim.Engine.processed (Spire.System.engine sys))
    (Sim.Engine.now (Spire.System.engine sys))
    s.Overlay.Net.submitted_bytes s.Overlay.Net.delivered_bytes
    s.Overlay.Net.dropped_bytes
    (Overlay.Net.wan_frames net)
    (Overlay.Net.wan_bytes net)

let run_instance ~seed ~duration_us =
  let cfg = { (Spire.System.default_config ()) with Spire.System.seed } in
  let sys = Spire.System.create cfg in
  Spire.System.start sys;
  Spire.System.run sys ~duration_us;
  sys

(* Satellite (b), first half: the same scenario + seed twice in one
   process must agree on every counter and byte ledger. *)
let test_same_seed_bit_identical () =
  let a = fingerprint (run_instance ~seed:0xFEEDL ~duration_us:2_000_000) in
  let b = fingerprint (run_instance ~seed:0xFEEDL ~duration_us:2_000_000) in
  Alcotest.(check string) "identical fingerprints" a b;
  let c = fingerprint (run_instance ~seed:0xBEEFL ~duration_us:2_000_000) in
  Alcotest.(check bool) "different seed actually diverges" true (a <> c)

(* Two systems stepped in alternating slices on one domain must each
   reproduce their solo run exactly. This is the regression test for
   the module-level state the refactor removed: the Modbus transaction
   counter (odd RTUs speak Modbus) and the shared disabled telemetry
   sink both leaked between instances when they were globals. *)
let test_interleaved_instances_independent () =
  let duration_us = 2_000_000 in
  let solo_a = fingerprint (run_instance ~seed:0xAAL ~duration_us) in
  let solo_b = fingerprint (run_instance ~seed:0xBBL ~duration_us) in
  let make seed =
    let cfg = { (Spire.System.default_config ()) with Spire.System.seed } in
    let sys = Spire.System.create cfg in
    Spire.System.start sys;
    sys
  in
  let a = make 0xAAL and b = make 0xBBL in
  let slice = 100_000 in
  for k = 1 to duration_us / slice do
    Sim.Engine.run (Spire.System.engine a) ~until_us:(k * slice);
    Sim.Engine.run (Spire.System.engine b) ~until_us:(k * slice)
  done;
  Alcotest.(check string) "A unchanged by interleaving" solo_a (fingerprint a);
  Alcotest.(check string) "B unchanged by interleaving" solo_b (fingerprint b)

(* The sweep runner's core promise: merged results are a pure function
   of the job set, independent of domain count and of which domain ran
   which job. *)
let test_one_vs_many_domains_identical () =
  let root = 0x5EEDL in
  let job i =
    let seed = Sim.Parallel.seed_of ~root ~index:i in
    fingerprint (run_instance ~seed ~duration_us:1_000_000)
  in
  let one = Sim.Parallel.run ~domains:1 ~jobs:5 job in
  let many = Sim.Parallel.run ~domains:4 ~jobs:5 job in
  Alcotest.(check (array string)) "merged results identical" one many

(* Same check at the chaos layer: soak_many reports (verdicts included)
   must not depend on the domain count. *)
let test_soak_many_domain_invariant () =
  let seeds = [ 104_736L; 209_465L ] in
  let show rs =
    List.map (fun r -> Format.asprintf "%a" Chaos.Harness.pp_report r) rs
  in
  let one = show (Chaos.Harness.soak_many ~domains:1 ~seeds ()) in
  let two = show (Chaos.Harness.soak_many ~domains:2 ~seeds ()) in
  Alcotest.(check (list string)) "reports identical across domain counts" one
    two

(* ------------------------------------------------------------------ *)
(* Work-stealing pool mechanics *)

let test_pool_runs_every_job_once () =
  let jobs = 64 in
  let counts = Array.init jobs (fun _ -> Atomic.make 0) in
  let results =
    Sim.Parallel.run ~domains:4 ~jobs (fun i ->
        Atomic.incr counts.(i);
        i * i)
  in
  Alcotest.(check (array int)) "results in index order"
    (Array.init jobs (fun i -> i * i))
    results;
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "job %d ran exactly once" i) 1
        (Atomic.get c))
    counts

let test_pool_empty_and_clamp () =
  Alcotest.(check (array int)) "zero jobs" [||]
    (Sim.Parallel.run ~domains:8 ~jobs:0 (fun i -> i));
  (* More domains than jobs: clamped, still correct. *)
  Alcotest.(check (array int)) "domains clamped to jobs" [| 0; 1 |]
    (Sim.Parallel.run ~domains:16 ~jobs:2 Fun.id);
  let _, stats = Sim.Parallel.run_with_stats ~domains:16 ~jobs:2 Fun.id in
  Alcotest.(check int) "stats report clamped workers" 2 stats.Sim.Parallel.domains

let test_pool_raises_lowest_failing_index () =
  (* Several failing jobs: the re-raised exception must be the lowest
     index's, deterministically, after all workers drain. *)
  let ran = Atomic.make 0 in
  Alcotest.check_raises "lowest index wins" (Failure "job 2") (fun () ->
      ignore
        (Sim.Parallel.run ~domains:4 ~jobs:8 (fun i ->
             Atomic.incr ran;
             if i = 5 then failwith "job 5";
             if i = 2 then failwith "job 2";
             i)
          : int array));
  Alcotest.(check int) "every job still ran" 8 (Atomic.get ran)

let test_pool_rejects_negative_jobs () =
  Alcotest.check_raises "negative jobs"
    (Invalid_argument "Parallel.run: jobs < 0") (fun () ->
      ignore (Sim.Parallel.run ~jobs:(-1) Fun.id : int array))

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed is bit-identical" `Quick
            test_same_seed_bit_identical;
          Alcotest.test_case "interleaved instances independent" `Quick
            test_interleaved_instances_independent;
          Alcotest.test_case "1 vs 4 domains identical" `Quick
            test_one_vs_many_domains_identical;
          Alcotest.test_case "soak_many domain-invariant" `Slow
            test_soak_many_domain_invariant;
        ] );
      ( "pool",
        [
          Alcotest.test_case "every job exactly once" `Quick
            test_pool_runs_every_job_once;
          Alcotest.test_case "empty set and domain clamp" `Quick
            test_pool_empty_and_clamp;
          Alcotest.test_case "lowest failing index re-raised" `Quick
            test_pool_raises_lowest_failing_index;
          Alcotest.test_case "negative jobs rejected" `Quick
            test_pool_rejects_negative_jobs;
        ] );
    ]
