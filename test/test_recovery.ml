(* Tests for the recovery library: diversity, proactive recovery
   scheduling, state transfer quorum selection. *)

module D = Recovery.Diversity
module S = Recovery.Scheduler
module ST = Recovery.State_transfer

(* ------------------------------------------------------------------ *)
(* Diversity *)

let test_diversity_initial_assignment () =
  let d = D.create ~variants:4 ~n:6 ~rng:(Sim.Rng.create 1L) in
  Alcotest.(check int) "replicas" 6 (D.replica_count d);
  for r = 0 to 5 do
    let v = D.variant_of d r in
    Alcotest.(check bool) "variant in range" true (v >= 0 && v < 4)
  done

let test_diversity_rejuvenate_changes_variant () =
  let d = D.create ~variants:8 ~n:4 ~rng:(Sim.Rng.create 2L) in
  for _ = 1 to 50 do
    let before = D.variant_of d 2 in
    let fresh = D.rejuvenate d 2 in
    Alcotest.(check bool) "different variant" true (fresh <> before);
    Alcotest.(check int) "recorded" fresh (D.variant_of d 2)
  done;
  Alcotest.(check int) "incarnation count" 50 (D.incarnation d 2)

let test_diversity_single_variant_space () =
  let d = D.create ~variants:1 ~n:3 ~rng:(Sim.Rng.create 3L) in
  Alcotest.(check int) "only variant" 0 (D.rejuvenate d 0);
  Alcotest.(check int) "max sharing = all" 3 (D.max_sharing d)

let test_diversity_replicas_running () =
  let d = D.create ~variants:2 ~n:4 ~rng:(Sim.Rng.create 4L) in
  let all =
    List.sort compare (D.replicas_running d 0 @ D.replicas_running d 1)
  in
  Alcotest.(check (list int)) "partition of replicas" [ 0; 1; 2; 3 ] all

let prop_max_sharing_bounds =
  QCheck.Test.make ~name:"max sharing within [ceil(n/v), n]"
    QCheck.(pair (int_range 1 8) (int_range 1 10))
    (fun (variants, n) ->
      let d = D.create ~variants ~n ~rng:(Sim.Rng.create 9L) in
      let m = D.max_sharing d in
      m >= (n + variants - 1) / variants && m <= n)

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let make_sched ?(n = 6) ?(max_concurrent = 1) ?(rotation = 6_000_000)
    ?(duration = 500_000) engine events =
  S.create ~engine
    ~config:
      {
        S.rotation_period_us = rotation;
        recovery_duration_us = duration;
        max_concurrent;
      }
    ~n
    ~on_begin:(fun r -> events := (`Begin, r) :: !events)
    ~on_complete:(fun r -> events := (`Complete, r) :: !events)

let test_scheduler_rotates_all_replicas () =
  let engine = Sim.Engine.create () in
  let events = ref [] in
  let sched = make_sched engine events in
  S.start sched;
  Sim.Engine.run engine ~until_us:6_500_000;
  (* One full rotation: every replica recovered exactly once, in
     descending order (see Scheduler on leader-rotation interaction). *)
  let begins =
    List.filter_map (function `Begin, r -> Some r | `Complete, _ -> None) !events
  in
  Alcotest.(check (list int)) "all replicas, staggered descending"
    [ 5; 4; 3; 2; 1; 0 ] (List.rev begins);
  Alcotest.(check int) "all completed" 6 (S.recoveries_completed sched)

let test_scheduler_respects_concurrency_cap () =
  let engine = Sim.Engine.create () in
  let events = ref [] in
  (* Recovery takes longer than the stagger slot: without the cap, two
     would overlap. *)
  let sched =
    make_sched ~max_concurrent:1 ~rotation:1_000_000 ~duration:400_000 engine
      events
  in
  S.start sched;
  let max_concurrent = ref 0 in
  ignore
    (Sim.Engine.periodic engine ~interval_us:10_000 (fun () ->
         max_concurrent := max !max_concurrent (List.length (S.in_progress sched))));
  Sim.Engine.run engine ~until_us:3_000_000;
  Alcotest.(check int) "never more than k=1 recovering" 1 !max_concurrent

let test_scheduler_trigger_now () =
  let engine = Sim.Engine.create () in
  let events = ref [] in
  let sched = make_sched engine events in
  Alcotest.(check bool) "reactive recovery accepted" true (S.trigger_now sched 3);
  Alcotest.(check bool) "duplicate rejected" false (S.trigger_now sched 3);
  Alcotest.(check bool) "cap rejected" false (S.trigger_now sched 4);
  Alcotest.(check (list int)) "in progress" [ 3 ] (S.in_progress sched);
  Sim.Engine.run engine ~until_us:600_000;
  Alcotest.(check bool) "completed" true (not (S.is_recovering sched 3))

let test_scheduler_stop () =
  let engine = Sim.Engine.create () in
  let events = ref [] in
  let sched = make_sched engine events in
  S.start sched;
  Sim.Engine.run engine ~until_us:1_100_000;
  let after_first = S.recoveries_started sched in
  S.stop sched;
  Sim.Engine.run engine ~until_us:20_000_000;
  Alcotest.(check int) "no recoveries after stop" after_first
    (S.recoveries_started sched)

(* ------------------------------------------------------------------ *)
(* State transfer *)

type snap = { version : int; who : string }

let snap_digest s = Cryptosim.Digest.of_string (Printf.sprintf "%d" s.version)

let source peers fetch =
  {
    ST.peers;
    fetch;
    digest_of = snap_digest;
    newer = (fun a b -> a.version > b.version);
  }

let test_state_transfer_agreeing_peers () =
  let fetch p = Some { version = 10; who = string_of_int p } in
  match ST.select ~f:1 (source [ 1; 2; 3 ] fetch) with
  | ST.Installed s -> Alcotest.(check int) "agreed version" 10 s.version
  | ST.No_quorum _ -> Alcotest.fail "expected quorum"

let test_state_transfer_byzantine_minority () =
  (* One lying peer (f=1) cannot outvote two honest ones. *)
  let fetch = function
    | 1 -> Some { version = 99; who = "liar" }
    | p -> Some { version = 10; who = string_of_int p }
  in
  match ST.select ~f:1 (source [ 1; 2; 3 ] fetch) with
  | ST.Installed s ->
    Alcotest.(check int) "honest version wins" 10 s.version;
    Alcotest.(check bool) "not the liar" true (s.who <> "liar")
  | ST.No_quorum _ -> Alcotest.fail "expected quorum"

let test_state_transfer_no_quorum () =
  (* Every peer reports something different: no f+1 agreement. *)
  let fetch p = Some { version = p; who = string_of_int p } in
  match ST.select ~f:1 (source [ 1; 2; 3 ] fetch) with
  | ST.Installed _ -> Alcotest.fail "expected no quorum"
  | ST.No_quorum best -> Alcotest.(check int) "best agreement" 1 best

let test_state_transfer_prefers_newest_quorum () =
  (* Two quorums exist (old and new state); the newest must win. *)
  let fetch = function
    | 1 | 2 -> Some { version = 10; who = "old" }
    | 3 | 4 -> Some { version = 20; who = "new" }
    | _ -> None
  in
  match ST.select ~f:1 (source [ 1; 2; 3; 4 ] fetch) with
  | ST.Installed s -> Alcotest.(check int) "newest quorum" 20 s.version
  | ST.No_quorum _ -> Alcotest.fail "expected quorum"

let test_state_transfer_unreachable_peers () =
  let fetch = function
    | 1 -> None
    | p -> Some { version = 5; who = string_of_int p }
  in
  match ST.select ~f:1 (source [ 1; 2; 3 ] fetch) with
  | ST.Installed s -> Alcotest.(check int) "works around dead peer" 5 s.version
  | ST.No_quorum _ -> Alcotest.fail "expected quorum"

(* Chunking: a snapshot blob split for the wire reassembles exactly,
   and tampering with any chunk is caught by the total digest. *)

let test_chunk_roundtrip () =
  let blob = String.init 3000 (fun i -> Char.chr (i mod 256)) in
  let chunks = ST.chunk_blob ~xfer_id:7 ~chunk_bytes:1024 blob in
  Alcotest.(check int) "ceil-div chunk count" 3 (List.length chunks);
  List.iter
    (fun c -> Alcotest.(check int) "consistent count" 3 c.ST.chunk_count)
    chunks;
  (match ST.reassemble (List.rev chunks) with
  | Ok blob' -> Alcotest.(check string) "reassembles out of order" blob blob'
  | Error e -> Alcotest.failf "reassemble failed: %s" e);
  match ST.reassemble [] with
  | Ok _ -> Alcotest.fail "empty chunk list must not reassemble"
  | Error _ -> ()

let test_chunk_empty_blob () =
  match ST.chunk_blob ~xfer_id:1 ~chunk_bytes:64 "" with
  | [ c ] ->
    Alcotest.(check int) "one empty chunk" 0 (String.length c.ST.data);
    (match ST.reassemble [ c ] with
    | Ok blob -> Alcotest.(check string) "empty roundtrip" "" blob
    | Error e -> Alcotest.failf "reassemble failed: %s" e)
  | chunks ->
    Alcotest.failf "empty blob must yield one chunk, got %d"
      (List.length chunks)

let test_chunk_tamper_detected () =
  let blob = String.init 2000 (fun i -> Char.chr ((i * 31) mod 256)) in
  let chunks = ST.chunk_blob ~xfer_id:3 ~chunk_bytes:512 blob in
  let tampered =
    List.mapi
      (fun i c ->
        if i = 1 then
          { c with ST.data = "X" ^ String.sub c.ST.data 1 (String.length c.ST.data - 1) }
        else c)
      chunks
  in
  (match ST.reassemble tampered with
  | Ok _ -> Alcotest.fail "tampered chunk data must not reassemble"
  | Error _ -> ());
  match ST.reassemble (List.tl chunks) with
  | Ok _ -> Alcotest.fail "missing chunk must not reassemble"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Chunk re-request ARQ: bounded exponential backoff with deterministic
   jitter. *)

let prop_arq_backoff =
  QCheck.Test.make ~count:500
    ~name:"arq: delay bounded by [backoff, 1.5*backoff), deterministic"
    QCheck.(
      triple (int_range 0 1000) (int_range 0 200)
        (int_range 0 (ST.default_arq.ST.max_attempts - 1)))
    (fun (xfer_id, chunk_index, attempt) ->
      let a = ST.default_arq in
      match ST.rerequest_delay_us a ~xfer_id ~chunk_index ~attempt with
      | None -> false
      | Some d ->
        let backoff = min (a.ST.base_us * (1 lsl attempt)) a.ST.cap_us in
        d >= backoff
        && d < backoff + (backoff / 2)
        && ST.rerequest_delay_us a ~xfer_id ~chunk_index ~attempt = Some d)

let test_arq_budget_exhausted () =
  let a = ST.default_arq in
  (match
     ST.rerequest_delay_us a ~xfer_id:1 ~chunk_index:0
       ~attempt:a.ST.max_attempts
   with
  | None -> ()
  | Some _ -> Alcotest.fail "attempt budget not enforced");
  (* Jitter de-synchronises concurrent transfers: with 64 distinct
     (xfer, chunk) pairs at the same attempt, delays must not all
     collide on one value. *)
  let delays =
    List.init 64 (fun i ->
        match
          ST.rerequest_delay_us a ~xfer_id:i ~chunk_index:(i * 7) ~attempt:3
        with
        | Some d -> d
        | None -> Alcotest.fail "unexpected give-up")
  in
  Alcotest.(check bool) "jitter spreads retries" true
    (List.length (List.sort_uniq compare delays) > 8)

(* Join convergence under the E6 lossy profile: a standby site is
   admitted while every inter-site replica link drops 30% of
   transmissions. The chunk-gated transfer must converge through the
   bounded-backoff ARQ (and the overlay's hop retransmissions) and the
   joiners must reach the new epoch. *)
let test_join_under_loss () =
  let cfg =
    {
      (Spire.System.default_config ()) with
      Spire.System.standby_site_sizes = [ 2 ];
      substations = 3;
      poll_interval_us = 100_000;
    }
  in
  let sys = Spire.System.create cfg in
  let net = Spire.System.net sys in
  let topo = Overlay.Net.topology net in
  let universe = Spire.System.universe_count sys in
  List.iter
    (fun link ->
      let a = link.Overlay.Topology.endpoint_a
      and b = link.Overlay.Topology.endpoint_b in
      if
        a < universe && b < universe
        && Overlay.Topology.site_of topo a <> Overlay.Topology.site_of topo b
      then Overlay.Net.set_loss_probability net a b 0.3)
    (Overlay.Topology.links topo);
  Spire.System.start sys;
  Spire.System.run sys ~duration_us:2_000_000;
  Spire.System.submit_reconfig sys
    [
      Member.Reconfig.Set_resilience { f = 1; k = 2 };
      Member.Reconfig.Add_site
        { site_id = 4; role = Member.Cert.Data_center; members = [ 6; 7 ] };
    ];
  Spire.System.run sys ~duration_us:13_000_000;
  Alcotest.(check int) "epoch 1 active" 1 (Spire.System.current_epoch sys);
  Alcotest.(check int) "joiner 6 caught up" 1 (Spire.System.epoch_of_replica sys 6);
  Alcotest.(check int) "joiner 7 caught up" 1 (Spire.System.epoch_of_replica sys 7);
  Alcotest.(check (option string)) "no epoch violation" None
    (Spire.System.epoch_violation sys);
  Spire.System.assert_agreement sys

let () =
  Alcotest.run "recovery"
    [
      ( "diversity",
        [
          Alcotest.test_case "initial assignment" `Quick
            test_diversity_initial_assignment;
          Alcotest.test_case "rejuvenate changes variant" `Quick
            test_diversity_rejuvenate_changes_variant;
          Alcotest.test_case "single-variant space" `Quick
            test_diversity_single_variant_space;
          Alcotest.test_case "replicas running" `Quick
            test_diversity_replicas_running;
          QCheck_alcotest.to_alcotest prop_max_sharing_bounds;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "rotates all" `Quick test_scheduler_rotates_all_replicas;
          Alcotest.test_case "concurrency cap" `Quick
            test_scheduler_respects_concurrency_cap;
          Alcotest.test_case "reactive trigger" `Quick test_scheduler_trigger_now;
          Alcotest.test_case "stop" `Quick test_scheduler_stop;
        ] );
      ( "state_transfer",
        [
          Alcotest.test_case "agreeing peers" `Quick
            test_state_transfer_agreeing_peers;
          Alcotest.test_case "byzantine minority" `Quick
            test_state_transfer_byzantine_minority;
          Alcotest.test_case "no quorum" `Quick test_state_transfer_no_quorum;
          Alcotest.test_case "prefers newest" `Quick
            test_state_transfer_prefers_newest_quorum;
          Alcotest.test_case "unreachable peers" `Quick
            test_state_transfer_unreachable_peers;
          Alcotest.test_case "chunking roundtrip" `Quick test_chunk_roundtrip;
          Alcotest.test_case "chunking empty blob" `Quick test_chunk_empty_blob;
          Alcotest.test_case "chunk tamper detected" `Quick
            test_chunk_tamper_detected;
          QCheck_alcotest.to_alcotest prop_arq_backoff;
          Alcotest.test_case "arq budget and jitter spread" `Quick
            test_arq_budget_exhausted;
          Alcotest.test_case "join converges under lossy links" `Slow
            test_join_under_loss;
        ] );
    ]
