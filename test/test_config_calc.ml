(* QCheck properties for the configuration calculus (Spire.Config_calc).

   The unit table in test_spire pins the paper's concrete
   configurations; these properties pin the *shape* of the calculus
   over the whole small-parameter space: the minimal replica count can
   only grow with the fault budget, and the even spread is exact —
   sums preserved, site sizes within one of each other. *)

module G = QCheck.Gen
module C = Spire.Config_calc

let gen_f = G.int_range 1 6
let gen_k = G.int_range 0 4
let gen_sites = G.int_range 2 8

(* --------------------------------------------------------------- *)
(* minimal_n monotonicity                                          *)

let prop_minimal_n_monotone_f =
  QCheck.Test.make ~count:300 ~name:"minimal_n is monotone in f"
    (QCheck.make
       (G.triple gen_f gen_k gen_sites)
       ~print:(fun (f, k, sites) -> Printf.sprintf "f=%d k=%d sites=%d" f k sites))
    (fun (f, k, sites) ->
      C.minimal_n ~f ~k ~sites <= C.minimal_n ~f:(f + 1) ~k ~sites)

let prop_minimal_n_monotone_k =
  QCheck.Test.make ~count:300 ~name:"minimal_n is monotone in k"
    (QCheck.make
       (G.triple gen_f gen_k gen_sites)
       ~print:(fun (f, k, sites) -> Printf.sprintf "f=%d k=%d sites=%d" f k sites))
    (fun (f, k, sites) ->
      C.minimal_n ~f ~k ~sites <= C.minimal_n ~f ~k:(k + 1) ~sites)

let prop_minimal_n_lower_bound =
  QCheck.Test.make ~count:300
    ~name:"minimal_n respects the 3f+2k+1 resilience bound"
    (QCheck.make
       (G.triple gen_f gen_k gen_sites)
       ~print:(fun (f, k, sites) -> Printf.sprintf "f=%d k=%d sites=%d" f k sites))
    (fun (f, k, sites) ->
      C.minimal_n ~f ~k ~sites >= C.required_replicas ~f ~k)

(* --------------------------------------------------------------- *)
(* distribute: exact sum, near-even spread                         *)

let gen_dist =
  G.map2 (fun n sites -> (n, sites)) (G.int_range 0 200) (G.int_range 1 12)

let print_dist (n, sites) = Printf.sprintf "n=%d sites=%d" n sites

let prop_distribute_sums =
  QCheck.Test.make ~count:500 ~name:"distribute ~n ~sites sums to n"
    (QCheck.make gen_dist ~print:print_dist)
    (fun (n, sites) ->
      List.fold_left ( + ) 0 (C.distribute ~n ~sites) = n)

let prop_distribute_even =
  QCheck.Test.make ~count:500
    ~name:"distribute site sizes differ by at most 1"
    (QCheck.make gen_dist ~print:print_dist)
    (fun (n, sites) ->
      let d = C.distribute ~n ~sites in
      List.length d = sites
      &&
      let mx = List.fold_left max min_int d
      and mn = List.fold_left min max_int d in
      mx - mn <= 1)

(* --------------------------------------------------------------- *)
(* minimal_config coherence: ties the two primitives together      *)

let prop_minimal_config_valid =
  QCheck.Test.make ~count:200
    ~name:"minimal_config is valid and tolerates any single site loss"
    (QCheck.make
       (G.triple gen_f gen_k (G.int_range 2 6))
       ~print:(fun (f, k, sites) -> Printf.sprintf "f=%d k=%d sites=%d" f k sites))
    (fun (f, k, sites) ->
      let c = C.minimal_config ~f ~k ~sites ~control_centers:2 in
      C.valid c && C.tolerates_site_loss c
      && C.total_replicas c = C.minimal_n ~f ~k ~sites)

(* --------------------------------------------------------------- *)
(* Epoch transitions: online reconfiguration must keep quorum       *)
(* intersection across the cutover boundary                         *)

let gen_epoch = G.map (fun (f, k) -> { C.e_f = f; e_k = k }) (G.pair gen_f gen_k)

let print_transition (o, n) =
  Printf.sprintf "old={f=%d;k=%d} new={f=%d;k=%d}" o.C.e_f o.C.e_k n.C.e_f
    n.C.e_k

let prop_epoch_transition_safe =
  QCheck.Test.make ~count:1000
    ~name:"epoch growth never shrinks quorum below old intersection"
    (QCheck.make (G.pair gen_epoch gen_epoch) ~print:print_transition)
    (fun (old_epoch, new_epoch) ->
      let q_old = C.quorum ~f:old_epoch.C.e_f ~k:old_epoch.C.e_k
      and q_new = C.quorum ~f:new_epoch.C.e_f ~k:new_epoch.C.e_k
      and tq = C.transition_quorum ~old_epoch ~new_epoch in
      (* The cutover vouching set is honoured by both epochs... *)
      tq = max q_old q_new
      && tq >= C.intersection ~f:old_epoch.C.e_f ~k:old_epoch.C.e_k
      && tq >= C.intersection ~f:new_epoch.C.e_f ~k:new_epoch.C.e_k
      (* ...growing resilience (f or k up, neither down) is always a
         safe transition... *)
      && ((not
             (new_epoch.C.e_f >= old_epoch.C.e_f
             && new_epoch.C.e_k >= old_epoch.C.e_k))
         || C.transition_safe ~old_epoch ~new_epoch)
      (* ...and safety holds exactly when the new quorum still meets
         the old epoch's f+1 intersection floor. *)
      && C.transition_safe ~old_epoch ~new_epoch
         = (q_new >= C.intersection ~f:old_epoch.C.e_f ~k:old_epoch.C.e_k))

let () =
  Alcotest.run "config_calc"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_minimal_n_monotone_f;
            prop_minimal_n_monotone_k;
            prop_minimal_n_lower_bound;
            prop_distribute_sums;
            prop_distribute_even;
            prop_minimal_config_valid;
            prop_epoch_transition_safe;
          ] );
    ]
