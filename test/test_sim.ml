(* Unit and property tests for the simulation engine. *)

let test_schedule_ordering () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  ignore (Sim.Engine.schedule e ~delay_us:30 (fun () -> order := 3 :: !order));
  ignore (Sim.Engine.schedule e ~delay_us:10 (fun () -> order := 1 :: !order));
  ignore (Sim.Engine.schedule e ~delay_us:20 (fun () -> order := 2 :: !order));
  Sim.Engine.run_until_quiescent e;
  Alcotest.(check (list int)) "timestamp order" [ 1; 2; 3 ] (List.rev !order)

let test_same_time_fifo () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Sim.Engine.schedule e ~delay_us:100 (fun () -> order := i :: !order))
  done;
  Sim.Engine.run_until_quiescent e;
  Alcotest.(check (list int)) "insertion order at equal time" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_clock_advances () =
  let e = Sim.Engine.create () in
  let seen = ref (-1) in
  ignore (Sim.Engine.schedule e ~delay_us:500 (fun () -> seen := Sim.Engine.now e));
  Sim.Engine.run e ~until_us:1_000;
  Alcotest.(check int) "callback saw its own time" 500 !seen;
  Alcotest.(check int) "clock at horizon" 1_000 (Sim.Engine.now e)

let test_run_until_horizon_only () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  ignore (Sim.Engine.schedule e ~delay_us:2_000 (fun () -> fired := true));
  Sim.Engine.run e ~until_us:1_000;
  Alcotest.(check bool) "not yet fired" false !fired;
  Sim.Engine.run e ~until_us:3_000;
  Alcotest.(check bool) "fired" true !fired

let test_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let timer = Sim.Engine.schedule e ~delay_us:100 (fun () -> fired := true) in
  Sim.Engine.cancel timer;
  Sim.Engine.run_until_quiescent e;
  Alcotest.(check bool) "cancelled timer silent" false !fired

let test_periodic () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let timer = Sim.Engine.periodic e ~interval_us:100 (fun () -> incr count) in
  Sim.Engine.run e ~until_us:550;
  Alcotest.(check int) "five firings" 5 !count;
  Sim.Engine.cancel timer;
  Sim.Engine.run e ~until_us:2_000;
  Alcotest.(check int) "no more after cancel" 5 !count

let test_periodic_no_drift () =
  (* A periodic callback that advances the clock (nested [run]) must not
     skew subsequent firings: re-arming happens at scheduled + interval,
     not at clock-at-return + interval. *)
  let e = Sim.Engine.create () in
  let times = ref [] in
  let timer =
    Sim.Engine.periodic e ~interval_us:100 (fun () ->
        times := Sim.Engine.now e :: !times;
        (* Burn 30us of virtual time inside the callback. *)
        Sim.Engine.run e ~until_us:(Sim.Engine.now e + 30))
  in
  Sim.Engine.run e ~until_us:350;
  Sim.Engine.cancel timer;
  Alcotest.(check (list int)) "firings anchored to cadence" [ 100; 200; 300 ]
    (List.rev !times)

let test_periodic_catches_up () =
  (* A callback that falls behind by more than one interval fires in
     quick succession until back on cadence (no firing is skipped). *)
  let e = Sim.Engine.create () in
  let times = ref [] in
  let first = ref true in
  let timer =
    Sim.Engine.periodic e ~interval_us:100 (fun () ->
        times := Sim.Engine.now e :: !times;
        if !first then begin
          first := false;
          Sim.Engine.run e ~until_us:(Sim.Engine.now e + 250)
        end)
  in
  Sim.Engine.run e ~until_us:450;
  Sim.Engine.cancel timer;
  Alcotest.(check (list int)) "late firings catch up"
    [ 100; 350; 350; 400 ] (List.rev !times)

let test_nested_scheduling () =
  let e = Sim.Engine.create () in
  let times = ref [] in
  ignore
    (Sim.Engine.schedule e ~delay_us:10 (fun () ->
         times := Sim.Engine.now e :: !times;
         ignore
           (Sim.Engine.schedule e ~delay_us:10 (fun () ->
                times := Sim.Engine.now e :: !times))));
  Sim.Engine.run_until_quiescent e;
  Alcotest.(check (list int)) "nested times" [ 10; 20 ] (List.rev !times)

let test_schedule_at_past_clamps () =
  let e = Sim.Engine.create () in
  let fired_at = ref (-1) in
  ignore
    (Sim.Engine.schedule e ~delay_us:100 (fun () ->
         ignore
           (Sim.Engine.schedule_at e ~time_us:50 (fun () ->
                fired_at := Sim.Engine.now e))));
  Sim.Engine.run_until_quiescent e;
  Alcotest.(check int) "clamped to now" 100 !fired_at

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Sim.Rng.create 7L and b = Sim.Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.next_int64 a)
      (Sim.Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let root = Sim.Rng.create 7L in
  let a = Sim.Rng.split root in
  let b = Sim.Rng.split root in
  Alcotest.(check bool) "split streams differ" true
    (Sim.Rng.next_int64 a <> Sim.Rng.next_int64 b)

let test_rng_bounds () =
  let r = Sim.Rng.create 3L in
  for _ = 1 to 1_000 do
    let x = Sim.Rng.int r 10 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 10);
    let f = Sim.Rng.float r 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0. && f < 2.5)
  done

let test_rng_bernoulli_extremes () =
  let r = Sim.Rng.create 9L in
  Alcotest.(check bool) "p=0 never" false (Sim.Rng.bernoulli r 0.);
  Alcotest.(check bool) "p=1 always" true (Sim.Rng.bernoulli r 1.)

let test_rng_exponential_positive () =
  let r = Sim.Rng.create 11L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "exp >= 0" true (Sim.Rng.exponential r ~mean:5. >= 0.)
  done

let test_rng_shuffle_permutation () =
  let r = Sim.Rng.create 13L in
  let arr = Array.init 20 Fun.id in
  Sim.Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation"
    (Array.init 20 Fun.id) sorted

(* Splittable-stream properties: the parallel sweep runner derives
   per-instance seeds with [Rng.derive] and per-component streams with
   [Rng.split]; both must be deterministic (scheduling can never
   perturb them) and the resulting streams independent. *)

let prop_rng_split_deterministic =
  QCheck.Test.make ~name:"split is deterministic in the root seed"
    QCheck.(int64)
    (fun seed ->
      let draw () =
        let root = Sim.Rng.create seed in
        let a = Sim.Rng.split root in
        let b = Sim.Rng.split root in
        List.init 16 (fun _ -> Sim.Rng.next_int64 a)
        @ List.init 16 (fun _ -> Sim.Rng.next_int64 b)
      in
      draw () = draw ())

let prop_rng_split_streams_independent =
  QCheck.Test.make ~name:"split streams are pairwise distinct"
    QCheck.(int64)
    (fun seed ->
      let root = Sim.Rng.create seed in
      let a = Sim.Rng.split root in
      let b = Sim.Rng.split root in
      let sa = Array.init 64 (fun _ -> Sim.Rng.next_int64 a) in
      let sb = Array.init 64 (fun _ -> Sim.Rng.next_int64 b) in
      (* 64 draws agreeing anywhere near fully would mean the split
         leaked state; distinct gammas make collisions vanishingly
         rare, so demand the streams differ in most positions. *)
      let agree = ref 0 in
      Array.iteri (fun i x -> if Int64.equal x sb.(i) then incr agree) sa;
      !agree < 4)

let prop_rng_derive_pure =
  QCheck.Test.make ~name:"derive is a pure function of (seed, index)"
    QCheck.(pair int64 (int_bound 10_000))
    (fun (seed, index) ->
      Int64.equal (Sim.Rng.derive ~seed ~index) (Sim.Rng.derive ~seed ~index))

let prop_rng_derive_distinct =
  QCheck.Test.make ~name:"derive separates neighbouring indices"
    QCheck.(pair int64 (int_bound 1_000))
    (fun (seed, index) ->
      let a = Sim.Rng.derive ~seed ~index in
      let b = Sim.Rng.derive ~seed ~index:(index + 1) in
      (* The derived seeds must differ, and the generators they seed
         must immediately diverge. *)
      (not (Int64.equal a b))
      && Sim.Rng.next_int64 (Sim.Rng.create a)
         <> Sim.Rng.next_int64 (Sim.Rng.create b))

let test_rng_derive_rejects_negative () =
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.derive: index < 0") (fun () ->
      ignore (Sim.Rng.derive ~seed:1L ~index:(-1) : int64))

(* ------------------------------------------------------------------ *)
(* Shard: ownership partition and boundary ledger *)

let shard_fixture () =
  (* 6 nodes over 3 shards: 0,1 -> shard 0; 2,3 -> shard 1; 4,5 -> 2. *)
  Sim.Shard.make ~shards:3 ~owner:(fun node -> node / 2) ~nodes:6

let test_shard_partition_shape () =
  let p = shard_fixture () in
  Alcotest.(check int) "shards" 3 (Sim.Shard.shards p);
  Alcotest.(check int) "nodes" 6 (Sim.Shard.nodes p);
  Alcotest.(check int) "owner of 3" 1 (Sim.Shard.owner_of p 3);
  Alcotest.(check (array int)) "members of shard 2" [| 4; 5 |]
    (Sim.Shard.members p 2);
  Alcotest.(check int) "engine heap of node 5 (control heap is 0)" 3
    (Sim.Shard.engine_shard p 5);
  Alcotest.(check int) "engine heaps = shards + control" 4
    (Sim.Shard.engine_shards p)

let test_shard_singleton () =
  let p = Sim.Shard.singleton ~nodes:4 in
  Alcotest.(check int) "one shard" 1 (Sim.Shard.shards p);
  Alcotest.(check (array int)) "all members" [| 0; 1; 2; 3 |]
    (Sim.Shard.members p 0)

let test_shard_make_validates () =
  Alcotest.check_raises "out-of-range owner"
    (Invalid_argument "Shard.make: owner 0 -> shard 7 out of range") (fun () ->
      ignore
        (Sim.Shard.make ~shards:3 ~owner:(fun _ -> 7) ~nodes:2
          : Sim.Shard.partition))

let test_shard_owned_roundtrip () =
  let p = shard_fixture () in
  let o = Sim.Shard.init p (fun node -> node * 10) in
  for node = 0 to 5 do
    Alcotest.(check int) "get after init" (node * 10) (Sim.Shard.get o node)
  done;
  Sim.Shard.set o 3 99;
  Alcotest.(check int) "set visible" 99 (Sim.Shard.get o 3);
  (* iter must walk nodes in ascending global order regardless of the
     shard-major storage layout — reports depend on it. *)
  let seen = ref [] in
  Sim.Shard.iter (fun node v -> seen := (node, v) :: !seen) o;
  Alcotest.(check (list (pair int int))) "ascending node order"
    [ (0, 0); (1, 10); (2, 20); (3, 99); (4, 40); (5, 50) ]
    (List.rev !seen)

let test_shard_boundary_ledger () =
  let p = shard_fixture () in
  let b = Sim.Shard.boundary p in
  let record ~src ~dst ~bytes =
    Sim.Shard.record b
      ~src_shard:(Sim.Shard.owner_of p src)
      ~dst_shard:(Sim.Shard.owner_of p dst)
      ~bytes
  in
  (* Same-shard traffic (nodes 0 -> 1) never lands in the WAN ledger. *)
  record ~src:0 ~dst:1 ~bytes:100;
  record ~src:0 ~dst:2 ~bytes:40;
  record ~src:0 ~dst:2 ~bytes:60;
  record ~src:5 ~dst:0 ~bytes:7;
  Alcotest.(check int) "cross frames" 3 (Sim.Shard.total_frames b);
  Alcotest.(check int) "cross bytes" 107 (Sim.Shard.total_bytes b);
  Alcotest.(check (list (pair (pair int int) (pair int int))))
    "crossings ordered by (src, dst), zero rows omitted"
    [ ((0, 1), (2, 100)); ((2, 0), (1, 7)) ]
    (List.map
       (fun (c : Sim.Shard.crossing) ->
         ((c.src_shard, c.dst_shard), (c.frames, c.bytes)))
       (Sim.Shard.crossings b))

let test_shard_locality () =
  let p = shard_fixture () in
  (match Sim.Shard.locality p ~src:2 ~dst:3 with
  | Sim.Shard.Local s -> Alcotest.(check int) "local shard" 1 s
  | Sim.Shard.Cross _ -> Alcotest.fail "same-site link reported Cross");
  match Sim.Shard.locality p ~src:1 ~dst:4 with
  | Sim.Shard.Local _ -> Alcotest.fail "WAN link reported Local"
  | Sim.Shard.Cross { src_shard; dst_shard } ->
    Alcotest.(check (pair int int)) "cross shards" (0, 2) (src_shard, dst_shard)

(* ------------------------------------------------------------------ *)
(* Multi-heap engine: shard tags partition storage, never order *)

(* The defining property of the sharded engine: a timer's shard tag
   decides which heap stores it, but the globally-allocated sequence
   numbers keep the merged pop order bit-identical to a single heap. *)
let prop_engine_shard_tags_preserve_order =
  QCheck.Test.make ~name:"k-shard engine fires in 1-shard order"
    QCheck.(list (pair (int_bound 500) (int_bound 3)))
    (fun specs ->
      let run ~shards =
        let e = Sim.Engine.create ~shards () in
        let order = ref [] in
        List.iteri
          (fun i (delay_us, shard) ->
            ignore
              (Sim.Engine.schedule ~shard e ~delay_us (fun () ->
                   order := (i, Sim.Engine.now e) :: !order)))
          specs;
        Sim.Engine.run_until_quiescent e;
        List.rev !order
      in
      run ~shards:4 = run ~shards:1)

let test_engine_processed_by_shard () =
  let e = Sim.Engine.create ~shards:3 () in
  ignore (Sim.Engine.schedule ~shard:1 e ~delay_us:10 ignore);
  ignore (Sim.Engine.schedule ~shard:1 e ~delay_us:20 ignore);
  ignore (Sim.Engine.schedule ~shard:2 e ~delay_us:30 ignore);
  ignore (Sim.Engine.schedule e ~delay_us:40 ignore);
  Sim.Engine.run_until_quiescent e;
  Alcotest.(check int) "total" 4 (Sim.Engine.processed e);
  Alcotest.(check (list int)) "per-heap split (0 = control)" [ 1; 2; 1 ]
    (List.init (Sim.Engine.shards e) (Sim.Engine.processed_of e));
  let sum =
    List.fold_left ( + ) 0
      (List.init (Sim.Engine.shards e) (Sim.Engine.processed_of e))
  in
  Alcotest.(check int) "per-shard counts sum to total" (Sim.Engine.processed e)
    sum

let test_engine_shard_clamped () =
  (* Out-of-range tags fall back to the control heap rather than raising:
     component code may be configured with more sites than the engine
     was built for. *)
  let e = Sim.Engine.create ~shards:2 () in
  let fired = ref 0 in
  ignore (Sim.Engine.schedule ~shard:99 e ~delay_us:10 (fun () -> incr fired));
  ignore (Sim.Engine.schedule ~shard:(-1) e ~delay_us:20 (fun () -> incr fired));
  Sim.Engine.run_until_quiescent e;
  Alcotest.(check int) "both fired" 2 !fired;
  Alcotest.(check int) "landed on control heap" 2 (Sim.Engine.processed_of e 0)

(* ------------------------------------------------------------------ *)
(* Conservative-lookahead parallel windows *)

(* The tentpole property, extended to the *parallel* path: executing a
   random workload under the conservative window scheduler — on 1, 2 or
   3 domains — must reproduce the sequential engine's trajectory bit
   for bit. Callbacks record into per-event slots (each slot written by
   exactly one stripe, so the recording itself is race-free), and the
   merged order is compared through each timer's final [(time, seq)]
   heap key, which is exactly the engine-global pop position. *)
let conservative_lat = 100

let run_cross_workload ~parallel ~domains specs =
  let n = List.length specs in
  let e = Sim.Engine.create ~shards:4 () in
  let fired = Array.make (2 * n) (-1) in
  let tms = Array.make (2 * n) None in
  List.iteri
    (fun i (delay_us, shard) ->
      let tm =
        Sim.Engine.schedule ~shard e ~delay_us (fun () ->
            fired.(i) <- Sim.Engine.now e;
            (* Follow-up onto a (usually different) stripe, always at
               or beyond the advertised cross-shard latency floor. *)
            let dst = 1 + ((shard + i) mod 3) in
            let tm2 =
              Sim.Engine.schedule ~shard:dst e
                ~delay_us:(conservative_lat + (i mod 7))
                (fun () -> fired.(n + i) <- Sim.Engine.now e)
            in
            tms.(n + i) <- Some tm2)
      in
      tms.(i) <- Some tm)
    specs;
  let until_us = 10_000 in
  if parallel then begin
    let k = Sim.Engine.shards e in
    let m =
      Array.init k (fun a ->
          Array.init k (fun b ->
              if a = 0 || b = 0 || a = b then max_int else conservative_lat))
    in
    ignore (Sim.Conservative.run ~domains e ~min_latency_us:m ~until_us)
  end
  else Sim.Engine.run e ~until_us;
  let keys =
    Array.to_list (Array.map (Option.map Sim.Engine.timer_key) tms)
  in
  ( Array.to_list fired,
    keys,
    Sim.Engine.processed e,
    List.init (Sim.Engine.shards e) (Sim.Engine.processed_of e) )

let prop_conservative_matches_sequential =
  QCheck.Test.make ~count:200
    ~name:"conservative windows reproduce sequential trajectory"
    QCheck.(
      pair (int_range 1 3)
        (list_of_size Gen.(1 -- 40) (pair (int_bound 500) (int_bound 3))))
    (fun (domains, specs) ->
      run_cross_workload ~parallel:true ~domains specs
      = run_cross_workload ~parallel:false ~domains specs)

(* Deterministic cross-stripe ping-pong: every bounce crosses the
   shard boundary at exactly the latency floor, the worst case for the
   window scheduler (each window carries one event). *)
let test_conservative_ping_pong () =
  let rounds = 50 in
  let play ~parallel =
    let e = Sim.Engine.create ~shards:3 () in
    let trace = Array.make rounds (-1) in
    let rec bounce i shard =
      if i < rounds then
        ignore
          (Sim.Engine.schedule ~shard e ~delay_us:conservative_lat (fun () ->
               trace.(i) <- (Sim.Engine.now e * 10) + shard;
               bounce (i + 1) (if shard = 1 then 2 else 1)))
    in
    bounce 0 1;
    let until_us = (rounds + 1) * conservative_lat in
    if parallel then begin
      let m =
        Array.init 3 (fun a ->
            Array.init 3 (fun b ->
                if a = 0 || b = 0 || a = b then max_int else conservative_lat))
      in
      ignore (Sim.Conservative.run ~domains:2 e ~min_latency_us:m ~until_us)
    end
    else Sim.Engine.run e ~until_us;
    (Array.to_list trace, Sim.Engine.processed e)
  in
  let seq = play ~parallel:false and par = play ~parallel:true in
  Alcotest.(check (pair (list int) int)) "ping-pong trajectory" seq par

(* Degenerate inputs must degrade to sequential stepping, not break:
   a single-heap engine and an all-[max_int] latency matrix. *)
let test_conservative_degenerate () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  ignore (Sim.Engine.schedule e ~delay_us:10 (fun () -> incr fired));
  let st =
    Sim.Conservative.run e ~min_latency_us:[| [| max_int |] |] ~until_us:100
  in
  Alcotest.(check int) "single heap still fires" 1 !fired;
  Alcotest.(check int) "no windows on a single heap" 0
    st.Sim.Conservative.windows;
  (* All-[max_int] matrix asserts the stripes never interact: the
     whole horizon becomes one window. *)
  let e2 = Sim.Engine.create ~shards:3 () in
  let fired2 = ref 0 in
  ignore (Sim.Engine.schedule ~shard:1 e2 ~delay_us:10 (fun () -> incr fired2));
  ignore (Sim.Engine.schedule ~shard:2 e2 ~delay_us:10 (fun () -> incr fired2));
  let m = Array.make_matrix 3 3 max_int in
  let st2 = Sim.Conservative.run ~domains:2 e2 ~min_latency_us:m ~until_us:100 in
  Alcotest.(check int) "independent stripes still fire" 2 !fired2;
  Alcotest.(check int) "one full-horizon window" 1 st2.Sim.Conservative.windows;
  (* A control event adjacent to tmin pinches the window shut: the
     scheduler must fall back to one sequential step, not stall. *)
  let e3 = Sim.Engine.create ~shards:3 () in
  let fired3 = ref 0 in
  ignore (Sim.Engine.schedule ~shard:1 e3 ~delay_us:10 (fun () -> incr fired3));
  ignore (Sim.Engine.schedule e3 ~delay_us:10 (fun () -> incr fired3));
  let m3 =
    Array.init 3 (fun a ->
        Array.init 3 (fun b ->
            if a = 0 || b = 0 || a = b then max_int else 1_000))
  in
  let st3 = Sim.Conservative.run ~domains:2 e3 ~min_latency_us:m3 ~until_us:100 in
  Alcotest.(check int) "both fire around the pinch" 2 !fired3;
  Alcotest.(check bool) "degraded sequential steps taken" true
    (st3.Sim.Conservative.degraded_steps > 0);
  Alcotest.(check bool) "control step taken" true
    (st3.Sim.Conservative.control_steps > 0)

(* A cross-shard event scheduled below the advertised latency floor is
   a conservative-safety violation and must fail loudly, not diverge
   silently. *)
let test_conservative_violation_trips () =
  let e = Sim.Engine.create ~shards:3 () in
  ignore
    (Sim.Engine.schedule ~shard:1 e ~delay_us:10 (fun () ->
         ignore (Sim.Engine.schedule ~shard:2 e ~delay_us:1 ignore)));
  (* Keep stripe 2 busy so a window actually opens over both stripes. *)
  ignore (Sim.Engine.schedule ~shard:2 e ~delay_us:10 ignore);
  let m =
    Array.init 3 (fun a ->
        Array.init 3 (fun b ->
            if a = 0 || b = 0 || a = b then max_int else 1_000))
  in
  match Sim.Conservative.run ~domains:2 e ~min_latency_us:m ~until_us:100 with
  | _ -> Alcotest.fail "lookahead violation was not detected"
  | exception Failure _ -> ()

(* ------------------------------------------------------------------ *)
(* Event heap *)

let prop_heap_sorted =
  QCheck.Test.make ~name:"event heap pops in time order"
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let h = Sim.Event_heap.create () in
      List.iteri (fun i time -> Sim.Event_heap.push h ~time i) times;
      let rec drain prev =
        match Sim.Event_heap.pop h with
        | None -> true
        | Some (time, _) -> time >= prev && drain time
      in
      drain min_int)

let prop_heap_stable_at_equal_times =
  QCheck.Test.make ~name:"equal timestamps pop in insertion order"
    QCheck.(int_range 1 50)
    (fun count ->
      let h = Sim.Event_heap.create () in
      for i = 0 to count - 1 do
        Sim.Event_heap.push h ~time:42 i
      done;
      let rec drain expected =
        match Sim.Event_heap.pop h with
        | None -> expected = count
        | Some (_, v) -> v = expected && drain (expected + 1)
      in
      drain 0)

(* Compaction removes filtered entries but must not disturb the pop
   order of survivors: original (time, seq) keys are preserved. *)
let prop_heap_compact_preserves_order =
  QCheck.Test.make ~name:"compact preserves survivor pop order"
    QCheck.(list (int_bound 1_000))
    (fun times ->
      let keep v = v mod 3 <> 0 in
      let h = Sim.Event_heap.create () in
      List.iteri (fun i time -> Sim.Event_heap.push h ~time i) times;
      Sim.Event_heap.compact h ~keep;
      let survivors =
        List.length (List.filteri (fun i _ -> keep i) times)
      in
      let rec drain acc =
        match Sim.Event_heap.pop h with
        | None -> List.rev acc
        | Some (time, v) -> drain ((time, v) :: acc)
      in
      let popped = drain [] in
      let rec ordered = function
        | (ta, va) :: ((tb, vb) :: _ as rest) ->
          (* Nondecreasing time; insertion order breaks ties (values
             were pushed in ascending order, so seq order = value
             order). *)
          (ta < tb || (ta = tb && va < vb)) && ordered rest
        | _ -> true
      in
      List.length popped = survivors
      && List.for_all (fun (_, v) -> keep v) popped
      && ordered popped)

(* Provisional-seq resolution: rekeying entries above the threshold to
   their final seqs must preserve pop order without a re-sift, and bump
   the internal counter past every resolved seq. *)
let test_heap_rekey () =
  let h = Sim.Event_heap.create () in
  Sim.Event_heap.push_keyed h ~time:10 ~seq:0 0;
  Sim.Event_heap.push_keyed h ~time:10 ~seq:1 1;
  (* Two provisional entries, same timestamp, huge seqs in push order. *)
  let prov = 1_000_000 in
  Sim.Event_heap.push_keyed h ~time:10 ~seq:prov 2;
  Sim.Event_heap.push_keyed h ~time:10 ~seq:(prov + 1) 3;
  (* Resolve: value = final seq (2 and 3) — strictly monotone over the
     provisional order, as the window scheduler guarantees. *)
  Sim.Event_heap.rekey h ~threshold:prov ~seq_of:(fun v -> v);
  (* A later plain push must get a fresh seq past every resolved one. *)
  Sim.Event_heap.push h ~time:10 4;
  let popped = List.init 5 (fun _ -> Sim.Event_heap.pop_min h) in
  Alcotest.(check (list int)) "resolved pop order" [ 0; 1; 2; 3; 4 ] popped

let test_heap_hi_water () =
  let h = Sim.Event_heap.create () in
  Alcotest.(check int) "empty" 0 (Sim.Event_heap.hi_water h);
  for i = 0 to 4 do
    Sim.Event_heap.push h ~time:i i
  done;
  ignore (Sim.Event_heap.pop_min h);
  ignore (Sim.Event_heap.pop_min h);
  Sim.Event_heap.push h ~time:9 9;
  Alcotest.(check int) "peak not current size" 5 (Sim.Event_heap.hi_water h);
  for i = 10 to 13 do
    Sim.Event_heap.push h ~time:i i
  done;
  Alcotest.(check int) "new peak" 8 (Sim.Event_heap.hi_water h)

(* Engine-level purge: cancelling queued timers past the threshold must
   shrink the pending count without firing anything. *)
let test_engine_purges_cancelled () =
  let e = Sim.Engine.create ~seed:1L () in
  let fired = ref 0 in
  let timers =
    List.init 200 (fun i ->
        Sim.Engine.schedule e ~delay_us:(1_000 + i) (fun () -> incr fired))
  in
  Alcotest.(check int) "all queued" 200 (Sim.Engine.pending e);
  List.iter Sim.Engine.cancel timers;
  Alcotest.(check bool) "cancelled entries purged lazily" true
    (Sim.Engine.pending e < 200);
  Sim.Engine.run_until_quiescent e;
  Alcotest.(check int) "nothing fired" 0 !fired;
  Alcotest.(check int) "no events processed" 0 (Sim.Engine.processed e);
  Alcotest.(check int) "heap drained" 0 (Sim.Engine.pending e)

(* A periodic timer that keeps running while unrelated timers are
   cancelled in bulk must be unaffected by compaction. *)
let test_engine_compact_keeps_live_periodic () =
  let e = Sim.Engine.create ~seed:1L () in
  let ticks = ref 0 in
  let _p = Sim.Engine.periodic e ~interval_us:10 (fun () -> incr ticks) in
  let doomed =
    List.init 300 (fun i ->
        Sim.Engine.schedule e ~delay_us:(10_000 + i) (fun () ->
            Alcotest.fail "cancelled timer fired"))
  in
  List.iter Sim.Engine.cancel doomed;
  Sim.Engine.run e ~until_us:100;
  Alcotest.(check int) "periodic survived compaction" 10 !ticks

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "schedule ordering" `Quick test_schedule_ordering;
          Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "run horizon" `Quick test_run_until_horizon_only;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "periodic" `Quick test_periodic;
          Alcotest.test_case "periodic no drift" `Quick test_periodic_no_drift;
          Alcotest.test_case "periodic catches up" `Quick
            test_periodic_catches_up;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "schedule_at clamps" `Quick
            test_schedule_at_past_clamps;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick
            test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick
            test_rng_bernoulli_extremes;
          Alcotest.test_case "exponential positive" `Quick
            test_rng_exponential_positive;
          Alcotest.test_case "shuffle permutation" `Quick
            test_rng_shuffle_permutation;
          QCheck_alcotest.to_alcotest prop_rng_split_deterministic;
          QCheck_alcotest.to_alcotest prop_rng_split_streams_independent;
          QCheck_alcotest.to_alcotest prop_rng_derive_pure;
          QCheck_alcotest.to_alcotest prop_rng_derive_distinct;
          Alcotest.test_case "derive rejects negative index" `Quick
            test_rng_derive_rejects_negative;
        ] );
      ( "shard",
        [
          Alcotest.test_case "partition shape" `Quick test_shard_partition_shape;
          Alcotest.test_case "singleton" `Quick test_shard_singleton;
          Alcotest.test_case "make validates owners" `Quick
            test_shard_make_validates;
          Alcotest.test_case "owned get/set/iter" `Quick
            test_shard_owned_roundtrip;
          Alcotest.test_case "boundary ledger" `Quick test_shard_boundary_ledger;
          Alcotest.test_case "locality" `Quick test_shard_locality;
        ] );
      ( "sharded_engine",
        [
          QCheck_alcotest.to_alcotest prop_engine_shard_tags_preserve_order;
          Alcotest.test_case "per-shard processed counters" `Quick
            test_engine_processed_by_shard;
          Alcotest.test_case "out-of-range tags clamp to control" `Quick
            test_engine_shard_clamped;
        ] );
      ( "conservative",
        [
          QCheck_alcotest.to_alcotest prop_conservative_matches_sequential;
          Alcotest.test_case "cross-stripe ping-pong identical" `Quick
            test_conservative_ping_pong;
          Alcotest.test_case "degenerate inputs degrade to sequential" `Quick
            test_conservative_degenerate;
          Alcotest.test_case "lookahead violation fails loudly" `Quick
            test_conservative_violation_trips;
        ] );
      ( "event_heap",
        [
          QCheck_alcotest.to_alcotest prop_heap_sorted;
          QCheck_alcotest.to_alcotest prop_heap_stable_at_equal_times;
          QCheck_alcotest.to_alcotest prop_heap_compact_preserves_order;
          Alcotest.test_case "rekey resolves provisional seqs" `Quick
            test_heap_rekey;
          Alcotest.test_case "hi-water occupancy" `Quick test_heap_hi_water;
          Alcotest.test_case "engine purges cancelled timers" `Quick
            test_engine_purges_cancelled;
          Alcotest.test_case "compaction keeps live periodic" `Quick
            test_engine_compact_keeps_live_periodic;
        ] );
    ]
