(* Unit and property tests for the simulation engine. *)

let test_schedule_ordering () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  ignore (Sim.Engine.schedule e ~delay_us:30 (fun () -> order := 3 :: !order));
  ignore (Sim.Engine.schedule e ~delay_us:10 (fun () -> order := 1 :: !order));
  ignore (Sim.Engine.schedule e ~delay_us:20 (fun () -> order := 2 :: !order));
  Sim.Engine.run_until_quiescent e;
  Alcotest.(check (list int)) "timestamp order" [ 1; 2; 3 ] (List.rev !order)

let test_same_time_fifo () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Sim.Engine.schedule e ~delay_us:100 (fun () -> order := i :: !order))
  done;
  Sim.Engine.run_until_quiescent e;
  Alcotest.(check (list int)) "insertion order at equal time" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_clock_advances () =
  let e = Sim.Engine.create () in
  let seen = ref (-1) in
  ignore (Sim.Engine.schedule e ~delay_us:500 (fun () -> seen := Sim.Engine.now e));
  Sim.Engine.run e ~until_us:1_000;
  Alcotest.(check int) "callback saw its own time" 500 !seen;
  Alcotest.(check int) "clock at horizon" 1_000 (Sim.Engine.now e)

let test_run_until_horizon_only () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  ignore (Sim.Engine.schedule e ~delay_us:2_000 (fun () -> fired := true));
  Sim.Engine.run e ~until_us:1_000;
  Alcotest.(check bool) "not yet fired" false !fired;
  Sim.Engine.run e ~until_us:3_000;
  Alcotest.(check bool) "fired" true !fired

let test_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let timer = Sim.Engine.schedule e ~delay_us:100 (fun () -> fired := true) in
  Sim.Engine.cancel timer;
  Sim.Engine.run_until_quiescent e;
  Alcotest.(check bool) "cancelled timer silent" false !fired

let test_periodic () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let timer = Sim.Engine.periodic e ~interval_us:100 (fun () -> incr count) in
  Sim.Engine.run e ~until_us:550;
  Alcotest.(check int) "five firings" 5 !count;
  Sim.Engine.cancel timer;
  Sim.Engine.run e ~until_us:2_000;
  Alcotest.(check int) "no more after cancel" 5 !count

let test_periodic_no_drift () =
  (* A periodic callback that advances the clock (nested [run]) must not
     skew subsequent firings: re-arming happens at scheduled + interval,
     not at clock-at-return + interval. *)
  let e = Sim.Engine.create () in
  let times = ref [] in
  let timer =
    Sim.Engine.periodic e ~interval_us:100 (fun () ->
        times := Sim.Engine.now e :: !times;
        (* Burn 30us of virtual time inside the callback. *)
        Sim.Engine.run e ~until_us:(Sim.Engine.now e + 30))
  in
  Sim.Engine.run e ~until_us:350;
  Sim.Engine.cancel timer;
  Alcotest.(check (list int)) "firings anchored to cadence" [ 100; 200; 300 ]
    (List.rev !times)

let test_periodic_catches_up () =
  (* A callback that falls behind by more than one interval fires in
     quick succession until back on cadence (no firing is skipped). *)
  let e = Sim.Engine.create () in
  let times = ref [] in
  let first = ref true in
  let timer =
    Sim.Engine.periodic e ~interval_us:100 (fun () ->
        times := Sim.Engine.now e :: !times;
        if !first then begin
          first := false;
          Sim.Engine.run e ~until_us:(Sim.Engine.now e + 250)
        end)
  in
  Sim.Engine.run e ~until_us:450;
  Sim.Engine.cancel timer;
  Alcotest.(check (list int)) "late firings catch up"
    [ 100; 350; 350; 400 ] (List.rev !times)

let test_nested_scheduling () =
  let e = Sim.Engine.create () in
  let times = ref [] in
  ignore
    (Sim.Engine.schedule e ~delay_us:10 (fun () ->
         times := Sim.Engine.now e :: !times;
         ignore
           (Sim.Engine.schedule e ~delay_us:10 (fun () ->
                times := Sim.Engine.now e :: !times))));
  Sim.Engine.run_until_quiescent e;
  Alcotest.(check (list int)) "nested times" [ 10; 20 ] (List.rev !times)

let test_schedule_at_past_clamps () =
  let e = Sim.Engine.create () in
  let fired_at = ref (-1) in
  ignore
    (Sim.Engine.schedule e ~delay_us:100 (fun () ->
         ignore
           (Sim.Engine.schedule_at e ~time_us:50 (fun () ->
                fired_at := Sim.Engine.now e))));
  Sim.Engine.run_until_quiescent e;
  Alcotest.(check int) "clamped to now" 100 !fired_at

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Sim.Rng.create 7L and b = Sim.Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.next_int64 a)
      (Sim.Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let root = Sim.Rng.create 7L in
  let a = Sim.Rng.split root in
  let b = Sim.Rng.split root in
  Alcotest.(check bool) "split streams differ" true
    (Sim.Rng.next_int64 a <> Sim.Rng.next_int64 b)

let test_rng_bounds () =
  let r = Sim.Rng.create 3L in
  for _ = 1 to 1_000 do
    let x = Sim.Rng.int r 10 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 10);
    let f = Sim.Rng.float r 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0. && f < 2.5)
  done

let test_rng_bernoulli_extremes () =
  let r = Sim.Rng.create 9L in
  Alcotest.(check bool) "p=0 never" false (Sim.Rng.bernoulli r 0.);
  Alcotest.(check bool) "p=1 always" true (Sim.Rng.bernoulli r 1.)

let test_rng_exponential_positive () =
  let r = Sim.Rng.create 11L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "exp >= 0" true (Sim.Rng.exponential r ~mean:5. >= 0.)
  done

let test_rng_shuffle_permutation () =
  let r = Sim.Rng.create 13L in
  let arr = Array.init 20 Fun.id in
  Sim.Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation"
    (Array.init 20 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Event heap *)

let prop_heap_sorted =
  QCheck.Test.make ~name:"event heap pops in time order"
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let h = Sim.Event_heap.create () in
      List.iteri (fun i time -> Sim.Event_heap.push h ~time i) times;
      let rec drain prev =
        match Sim.Event_heap.pop h with
        | None -> true
        | Some (time, _) -> time >= prev && drain time
      in
      drain min_int)

let prop_heap_stable_at_equal_times =
  QCheck.Test.make ~name:"equal timestamps pop in insertion order"
    QCheck.(int_range 1 50)
    (fun count ->
      let h = Sim.Event_heap.create () in
      for i = 0 to count - 1 do
        Sim.Event_heap.push h ~time:42 i
      done;
      let rec drain expected =
        match Sim.Event_heap.pop h with
        | None -> expected = count
        | Some (_, v) -> v = expected && drain (expected + 1)
      in
      drain 0)

(* Compaction removes filtered entries but must not disturb the pop
   order of survivors: original (time, seq) keys are preserved. *)
let prop_heap_compact_preserves_order =
  QCheck.Test.make ~name:"compact preserves survivor pop order"
    QCheck.(list (int_bound 1_000))
    (fun times ->
      let keep v = v mod 3 <> 0 in
      let h = Sim.Event_heap.create () in
      List.iteri (fun i time -> Sim.Event_heap.push h ~time i) times;
      Sim.Event_heap.compact h ~keep;
      let survivors =
        List.length (List.filteri (fun i _ -> keep i) times)
      in
      let rec drain acc =
        match Sim.Event_heap.pop h with
        | None -> List.rev acc
        | Some (time, v) -> drain ((time, v) :: acc)
      in
      let popped = drain [] in
      let rec ordered = function
        | (ta, va) :: ((tb, vb) :: _ as rest) ->
          (* Nondecreasing time; insertion order breaks ties (values
             were pushed in ascending order, so seq order = value
             order). *)
          (ta < tb || (ta = tb && va < vb)) && ordered rest
        | _ -> true
      in
      List.length popped = survivors
      && List.for_all (fun (_, v) -> keep v) popped
      && ordered popped)

(* Engine-level purge: cancelling queued timers past the threshold must
   shrink the pending count without firing anything. *)
let test_engine_purges_cancelled () =
  let e = Sim.Engine.create ~seed:1L () in
  let fired = ref 0 in
  let timers =
    List.init 200 (fun i ->
        Sim.Engine.schedule e ~delay_us:(1_000 + i) (fun () -> incr fired))
  in
  Alcotest.(check int) "all queued" 200 (Sim.Engine.pending e);
  List.iter Sim.Engine.cancel timers;
  Alcotest.(check bool) "cancelled entries purged lazily" true
    (Sim.Engine.pending e < 200);
  Sim.Engine.run_until_quiescent e;
  Alcotest.(check int) "nothing fired" 0 !fired;
  Alcotest.(check int) "no events processed" 0 (Sim.Engine.processed e);
  Alcotest.(check int) "heap drained" 0 (Sim.Engine.pending e)

(* A periodic timer that keeps running while unrelated timers are
   cancelled in bulk must be unaffected by compaction. *)
let test_engine_compact_keeps_live_periodic () =
  let e = Sim.Engine.create ~seed:1L () in
  let ticks = ref 0 in
  let _p = Sim.Engine.periodic e ~interval_us:10 (fun () -> incr ticks) in
  let doomed =
    List.init 300 (fun i ->
        Sim.Engine.schedule e ~delay_us:(10_000 + i) (fun () ->
            Alcotest.fail "cancelled timer fired"))
  in
  List.iter Sim.Engine.cancel doomed;
  Sim.Engine.run e ~until_us:100;
  Alcotest.(check int) "periodic survived compaction" 10 !ticks

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "schedule ordering" `Quick test_schedule_ordering;
          Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "run horizon" `Quick test_run_until_horizon_only;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "periodic" `Quick test_periodic;
          Alcotest.test_case "periodic no drift" `Quick test_periodic_no_drift;
          Alcotest.test_case "periodic catches up" `Quick
            test_periodic_catches_up;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "schedule_at clamps" `Quick
            test_schedule_at_past_clamps;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick
            test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick
            test_rng_bernoulli_extremes;
          Alcotest.test_case "exponential positive" `Quick
            test_rng_exponential_positive;
          Alcotest.test_case "shuffle permutation" `Quick
            test_rng_shuffle_permutation;
        ] );
      ( "event_heap",
        [
          QCheck_alcotest.to_alcotest prop_heap_sorted;
          QCheck_alcotest.to_alcotest prop_heap_stable_at_equal_times;
          QCheck_alcotest.to_alcotest prop_heap_compact_preserves_order;
          Alcotest.test_case "engine purges cancelled timers" `Quick
            test_engine_purges_cancelled;
          Alcotest.test_case "compaction keeps live periodic" `Quick
            test_engine_compact_keeps_live_periodic;
        ] );
    ]
