(* Unit and property tests for the exactly-once FIFO delivery filter
   and the trace / dedup-cache utility modules. *)

module D = Bft.Delivery

let upd client seq =
  Bft.Update.create ~client ~client_seq:seq
    ~operation:(Printf.sprintf "%d-%d" client seq)
    ~submitted_us:0

let keys released = List.map Bft.Update.key released

(* ------------------------------------------------------------------ *)
(* Delivery *)

let test_delivery_in_order () =
  let d = D.create () in
  Alcotest.(check (list (pair int int))) "first" [ (1, 1) ] (keys (D.offer d (upd 1 1)));
  Alcotest.(check (list (pair int int))) "second" [ (1, 2) ] (keys (D.offer d (upd 1 2)));
  Alcotest.(check int) "expected advanced" 3 (D.expected d 1)

let test_delivery_duplicate_dropped () =
  let d = D.create () in
  ignore (D.offer d (upd 1 1));
  Alcotest.(check (list (pair int int))) "dup" [] (keys (D.offer d (upd 1 1)));
  Alcotest.(check bool) "seen" true (D.seen d (1, 1))

let test_delivery_out_of_order_buffered () =
  let d = D.create () in
  Alcotest.(check (list (pair int int))) "early buffered" []
    (keys (D.offer d (upd 2 3)));
  Alcotest.(check int) "buffered count" 1 (D.buffered_count d);
  Alcotest.(check bool) "buffered is seen" true (D.seen d (2, 3));
  Alcotest.(check (list (pair int int))) "seq2 buffered" []
    (keys (D.offer d (upd 2 2)));
  (* Releasing seq 1 flushes the whole buffered run. *)
  Alcotest.(check (list (pair int int))) "flush" [ (2, 1); (2, 2); (2, 3) ]
    (keys (D.offer d (upd 2 1)));
  Alcotest.(check int) "buffer drained" 0 (D.buffered_count d)

let test_delivery_clients_independent () =
  let d = D.create () in
  ignore (D.offer d (upd 1 1));
  Alcotest.(check (list (pair int int))) "client 2 unaffected" [ (2, 1) ]
    (keys (D.offer d (upd 2 1)));
  Alcotest.(check int) "client 1 expected" 2 (D.expected d 1);
  Alcotest.(check int) "client 3 fresh" 1 (D.expected d 3)

let test_delivery_state_roundtrip () =
  let a = D.create () in
  ignore (D.offer a (upd 1 1));
  ignore (D.offer a (upd 1 2));
  ignore (D.offer a (upd 2 5));
  (* buffered *)
  let b = D.create () in
  D.install b (D.state a);
  Alcotest.(check bool) "digests equal" true
    (Cryptosim.Digest.equal (D.digest a) (D.digest b));
  (* Behaviour equal after transfer. *)
  Alcotest.(check (list (pair int int))) "same release" (keys (D.offer a (upd 1 3)))
    (keys (D.offer b (upd 1 3)));
  Alcotest.(check bool) "buffered survived" true (D.seen b (2, 5))

let prop_delivery_exactly_once_any_order =
  QCheck.Test.make
    ~name:"delivery: any occurrence order releases each key exactly once, in order"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (int_bound 9))
    (fun occurrence_pattern ->
      (* Build an occurrence stream: values 0..9 map to client seqs;
         make them contiguous 1..k per client then shuffle-ish by the
         generated pattern order. *)
      let d = D.create () in
      let stream =
        List.concat_map
          (fun v ->
            let seq = (v mod 3) + 1 in
            [ upd 0 seq; upd 0 ((v mod 2) + 1) ])
          occurrence_pattern
        @ [ upd 0 1; upd 0 2; upd 0 3 ]
      in
      let released = List.concat_map (fun u -> D.offer d u) stream in
      let ks = keys released in
      (* Released keys are distinct and in increasing seq order. *)
      let rec increasing = function
        | (_, a) :: ((_, b) :: _ as rest) -> a + 1 = b && increasing rest
        | _ -> true
      in
      List.length ks = List.length (List.sort_uniq compare ks)
      && increasing ks)

let prop_delivery_state_digest_stable =
  QCheck.Test.make ~name:"delivery: digest deterministic across install"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 20) (pair (int_bound 3) (int_range 1 6)))
    (fun offers ->
      let a = D.create () in
      List.iter (fun (c, s) -> ignore (D.offer a (upd c s))) offers;
      let b = D.create () in
      D.install b (D.state a);
      Cryptosim.Digest.equal (D.digest a) (D.digest b))

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_disabled_by_default () =
  let t = Sim.Trace.create () in
  Sim.Trace.emit t ~time_us:1 ~category:"x" "dropped";
  Alcotest.(check int) "nothing retained" 0 (Sim.Trace.count t)

let test_trace_records_and_filters () =
  let t = Sim.Trace.create () in
  Sim.Trace.enable t;
  Sim.Trace.emit t ~time_us:10 ~category:"net" "a";
  Sim.Trace.emit t ~time_us:20 ~category:"bft" "b";
  Sim.Trace.emit t ~time_us:30 ~category:"net" "c";
  Alcotest.(check int) "count" 3 (Sim.Trace.count t);
  let net = Sim.Trace.by_category t "net" in
  Alcotest.(check int) "filtered" 2 (List.length net);
  Alcotest.(check string) "oldest first" "a"
    (List.hd (Sim.Trace.records t)).Sim.Trace.message;
  Sim.Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Sim.Trace.count t);
  Sim.Trace.disable t;
  Sim.Trace.emit t ~time_us:40 ~category:"net" "d";
  Alcotest.(check int) "disabled again" 0 (Sim.Trace.count t)

(* ------------------------------------------------------------------ *)
(* Dedup cache *)

let test_dedup_cache_remembers () =
  let c = Overlay.Dedup_cache.create ~generation_size:4 () in
  Overlay.Dedup_cache.add c 1;
  Overlay.Dedup_cache.add c 2;
  Alcotest.(check bool) "mem 1" true (Overlay.Dedup_cache.mem c 1);
  Alcotest.(check bool) "not mem 3" false (Overlay.Dedup_cache.mem c 3)

let test_dedup_cache_generational_expiry () =
  let c = Overlay.Dedup_cache.create ~generation_size:2 () in
  Overlay.Dedup_cache.add c 1;
  Overlay.Dedup_cache.add c 2;
  (* Generation full; next adds rotate. *)
  Overlay.Dedup_cache.add c 3;
  Overlay.Dedup_cache.add c 4;
  Alcotest.(check bool) "previous generation still remembered" true
    (Overlay.Dedup_cache.mem c 1);
  (* One more rotation evicts the oldest generation. *)
  Overlay.Dedup_cache.add c 5;
  Overlay.Dedup_cache.add c 6;
  Alcotest.(check bool) "two generations back forgotten" false
    (Overlay.Dedup_cache.mem c 1);
  Alcotest.(check bool) "recent kept" true (Overlay.Dedup_cache.mem c 5)

(* Regression: re-adding an id that is still remembered in the
   [previous] generation must be a no-op. The old code re-inserted it
   into [current], double-counting it and extending its lifetime. *)
let test_dedup_cache_no_reinsert_from_previous () =
  let c = Overlay.Dedup_cache.create ~generation_size:2 () in
  Overlay.Dedup_cache.add c 1;
  Overlay.Dedup_cache.add c 2;
  (* Rotation: previous = {1,2}, current = {3}. *)
  Overlay.Dedup_cache.add c 3;
  (* 1 is remembered; re-adding must not copy it into [current]. *)
  Overlay.Dedup_cache.add c 1;
  Alcotest.(check int) "size not inflated by re-add" 3
    (Overlay.Dedup_cache.size c);
  (* Fill and rotate again: previous = {3,4}, current = {5}. With the
     old bug, 1 would have been resurrected into the newer generation
     and still be remembered here. *)
  Overlay.Dedup_cache.add c 4;
  Overlay.Dedup_cache.add c 5;
  Alcotest.(check bool) "re-added id expires on schedule" false
    (Overlay.Dedup_cache.mem c 1);
  Alcotest.(check bool) "younger ids kept" true (Overlay.Dedup_cache.mem c 3)

let prop_dedup_cache_bounded =
  QCheck.Test.make ~name:"dedup cache memory is bounded by 2 generations"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 500) (int_bound 10_000))
    (fun ids ->
      let c = Overlay.Dedup_cache.create ~generation_size:32 () in
      List.iter (Overlay.Dedup_cache.add c) ids;
      Overlay.Dedup_cache.size c <= 64)

let () =
  Alcotest.run "delivery"
    [
      ( "delivery",
        [
          Alcotest.test_case "in order" `Quick test_delivery_in_order;
          Alcotest.test_case "duplicate dropped" `Quick test_delivery_duplicate_dropped;
          Alcotest.test_case "out of order buffered" `Quick
            test_delivery_out_of_order_buffered;
          Alcotest.test_case "clients independent" `Quick
            test_delivery_clients_independent;
          Alcotest.test_case "state roundtrip" `Quick test_delivery_state_roundtrip;
          QCheck_alcotest.to_alcotest prop_delivery_exactly_once_any_order;
          QCheck_alcotest.to_alcotest prop_delivery_state_digest_stable;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled by default" `Quick test_trace_disabled_by_default;
          Alcotest.test_case "records and filters" `Quick test_trace_records_and_filters;
        ] );
      ( "dedup_cache",
        [
          Alcotest.test_case "remembers" `Quick test_dedup_cache_remembers;
          Alcotest.test_case "generational expiry" `Quick
            test_dedup_cache_generational_expiry;
          QCheck_alcotest.to_alcotest prop_dedup_cache_bounded;
          Alcotest.test_case "no re-insert from previous generation" `Quick
            test_dedup_cache_no_reinsert_from_previous;
        ] );
    ]
