type t = {
  mutable times : int array;
  mutable values : float array;
  mutable len : int;
}

let create () = { times = Array.make 64 0; values = Array.make 64 0.; len = 0 }

let grow t =
  let cap = Array.length t.times in
  let times = Array.make (cap * 2) 0 in
  let values = Array.make (cap * 2) 0. in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.values 0 values 0 t.len;
  t.times <- times;
  t.values <- values

let add t ~time_us value =
  if t.len > 0 && time_us < t.times.(t.len - 1) then
    invalid_arg "Timeseries.add: non-monotonic timestamp";
  if t.len = Array.length t.times then grow t;
  t.times.(t.len) <- time_us;
  t.values.(t.len) <- value;
  t.len <- t.len + 1

let length t = t.len

let to_list t =
  List.init t.len (fun i -> (t.times.(i), t.values.(i)))

let bucketed t ~bucket_us =
  if bucket_us <= 0 then invalid_arg "Timeseries.bucketed: bucket_us <= 0";
  let buckets = Hashtbl.create 97 in
  let order = ref [] in
  for i = 0 to t.len - 1 do
    let b = t.times.(i) / bucket_us * bucket_us in
    let summary =
      match Hashtbl.find_opt buckets b with
      | Some s -> s
      | None ->
        let s = Summary.create () in
        Hashtbl.add buckets b s;
        order := b :: !order;
        s
    in
    Summary.add summary t.values.(i)
  done;
  List.rev_map (fun b -> (b, Hashtbl.find buckets b)) !order

let max_in_buckets t ~bucket_us =
  bucketed t ~bucket_us
  |> List.map (fun (b, s) -> (b, Summary.max_value s))

let span_us t = if t.len < 2 then 0 else t.times.(t.len - 1) - t.times.(0)
