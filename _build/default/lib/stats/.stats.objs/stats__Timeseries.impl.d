lib/stats/timeseries.ml: Array Hashtbl List Summary
