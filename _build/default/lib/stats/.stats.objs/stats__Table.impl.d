lib/stats/table.ml: Format List String
