lib/stats/timeseries.mli: Summary
