type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- cells :: t.rows

let row_count t = List.length t.rows

let render ppf t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w c -> max w (String.length c)) acc row)
      (List.map String.length t.columns)
      rows
  in
  let pad width s = s ^ String.make (width - String.length s) ' ' in
  let render_row row =
    let cells = List.map2 pad widths row in
    Format.fprintf ppf "| %s |@." (String.concat " | " cells)
  in
  let rule () =
    let segments = List.map (fun w -> String.make (w + 2) '-') widths in
    Format.fprintf ppf "+%s+@." (String.concat "+" segments)
  in
  Format.fprintf ppf "@.== %s ==@." t.title;
  rule ();
  render_row t.columns;
  rule ();
  List.iter render_row rows;
  rule ()

let print t = render Format.std_formatter t
