type t = {
  mutable data : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { data = Array.make 64 0.; len = 0; sorted = true }

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (cap * 2) 0. in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let add t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.len

let ensure_sorted t =
  if not t.sorted then begin
    let sub = Array.sub t.data 0 t.len in
    Array.sort compare sub;
    Array.blit sub 0 t.data 0 t.len;
    t.sorted <- true
  end

let percentile t p =
  if t.len = 0 then invalid_arg "Histogram.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile: range";
  ensure_sorted t;
  if t.len = 1 then t.data.(0)
  else begin
    let rank = p /. 100. *. float_of_int (t.len - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (t.len - 1) in
    let frac = rank -. float_of_int lo in
    t.data.(lo) +. (frac *. (t.data.(hi) -. t.data.(lo)))
  end

let median t = percentile t 50.

let mean t =
  if t.len = 0 then invalid_arg "Histogram.mean: empty";
  let sum = ref 0. in
  for i = 0 to t.len - 1 do
    sum := !sum +. t.data.(i)
  done;
  !sum /. float_of_int t.len

let min_value t =
  if t.len = 0 then invalid_arg "Histogram.min_value: empty";
  ensure_sorted t;
  t.data.(0)

let max_value t =
  if t.len = 0 then invalid_arg "Histogram.max_value: empty";
  ensure_sorted t;
  t.data.(t.len - 1)

let fraction_below t x =
  if t.len = 0 then 0.
  else begin
    ensure_sorted t;
    (* Binary search for the rightmost index with data.(i) <= x. *)
    let rec loop lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if t.data.(mid) <= x then loop (mid + 1) hi else loop lo mid
      end
    in
    let idx = loop 0 t.len in
    float_of_int idx /. float_of_int t.len
  end

let cdf t ~points =
  if t.len = 0 || points <= 0 then []
  else begin
    ensure_sorted t;
    let lo = t.data.(0) and hi = t.data.(t.len - 1) in
    let step = if points = 1 then 0. else (hi -. lo) /. float_of_int (points - 1) in
    List.init points (fun i ->
        let v = lo +. (float_of_int i *. step) in
        (v, fraction_below t v))
  end

let values t = Array.sub t.data 0 t.len

let pp ppf t =
  if t.len = 0 then Format.fprintf ppf "empty"
  else
    Format.fprintf ppf
      "n=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f p99.9=%.3f max=%.3f" t.len
      (mean t) (percentile t 50.) (percentile t 90.) (percentile t 99.)
      (percentile t 99.9) (max_value t)
