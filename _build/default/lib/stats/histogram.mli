(** Exact-percentile histogram over float observations.

    Unlike {!Summary}, a histogram retains every observation (in a growable
    buffer) so it can answer arbitrary percentile and CDF queries exactly.
    Intended for latency measurements where experiment sizes are bounded
    (millions of points at most). *)

type t

(** [create ()] is an empty histogram. *)
val create : unit -> t

(** [add t x] records observation [x]. *)
val add : t -> float -> unit

(** [count t] is the number of observations. *)
val count : t -> int

(** [percentile t p] is the [p]-th percentile with [p] in [0., 100.],
    using linear interpolation between closest ranks.
    @raise Invalid_argument if the histogram is empty or [p] out of range. *)
val percentile : t -> float -> float

(** [median t] is [percentile t 50.]. *)
val median : t -> float

(** [mean t] is the arithmetic mean.
    @raise Invalid_argument if empty. *)
val mean : t -> float

(** [min_value t], [max_value t]: extreme observations.
    @raise Invalid_argument if empty. *)
val min_value : t -> float

val max_value : t -> float

(** [fraction_below t x] is the fraction of observations strictly less
    than or equal to [x]; 0 if empty. *)
val fraction_below : t -> float -> float

(** [cdf t ~points] samples the empirical CDF at [points] evenly spaced
    values between min and max, returned as [(value, cumulative_fraction)]
    pairs. *)
val cdf : t -> points:int -> (float * float) list

(** [values t] is a copy of all recorded observations, unsorted. *)
val values : t -> float array

(** [pp ppf t] prints a one-line summary with p50/p90/p99/p99.9. *)
val pp : Format.formatter -> t -> unit
