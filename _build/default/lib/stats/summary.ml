type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable total : float;
}

let create () =
  { count = 0; mean = 0.; m2 = 0.; min_v = nan; max_v = nan; total = 0. }

let add t x =
  t.count <- t.count + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.count = 1 then begin
    t.min_v <- x;
    t.max_v <- x
  end
  else begin
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x
  end

let count t = t.count
let mean t = if t.count = 0 then nan else t.mean
let variance t = if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)
let stddev t = sqrt (variance t)
let min_value t = t.min_v
let max_value t = t.max_v
let total t = t.total

let merge a b =
  if a.count = 0 then { b with count = b.count }
  else if b.count = 0 then { a with count = a.count }
  else begin
    let count = a.count + b.count in
    let delta = b.mean -. a.mean in
    let mean =
      a.mean +. (delta *. float_of_int b.count /. float_of_int count)
    in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta
          *. float_of_int a.count
          *. float_of_int b.count
          /. float_of_int count)
    in
    {
      count;
      mean;
      m2;
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
      total = a.total +. b.total;
    }
  end

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.count
    (mean t) (stddev t) t.min_v t.max_v
