(** Time series of (timestamp, value) samples with windowed aggregation.

    Timestamps are in microseconds of virtual time (the unit used by the
    simulation engine). Samples must be appended in non-decreasing
    timestamp order. *)

type t

(** [create ()] is an empty series. *)
val create : unit -> t

(** [add t ~time_us value] appends a sample.
    @raise Invalid_argument if [time_us] precedes the last sample. *)
val add : t -> time_us:int -> float -> unit

(** [length t] is the number of samples. *)
val length : t -> int

(** [to_list t] is all samples oldest-first as [(time_us, value)]. *)
val to_list : t -> (int * float) list

(** [bucketed t ~bucket_us] aggregates samples into fixed-width time
    buckets; each bucket is [(bucket_start_us, per-bucket summary)].
    Empty buckets between populated ones are omitted. *)
val bucketed : t -> bucket_us:int -> (int * Summary.t) list

(** [max_in_buckets t ~bucket_us] is, for each populated bucket, the
    maximum sample value — useful for "worst latency per interval"
    figures. *)
val max_in_buckets : t -> bucket_us:int -> (int * float) list

(** [span_us t] is [last_time - first_time], or 0 if fewer than 2 samples. *)
val span_us : t -> int
