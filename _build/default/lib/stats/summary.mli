(** Streaming summary statistics (Welford's online algorithm).

    A [Summary.t] accumulates observations one at a time and can report
    count, mean, variance, standard deviation, min and max at any point
    without retaining the observations themselves. *)

type t

(** [create ()] is an empty accumulator. *)
val create : unit -> t

(** [add t x] records the observation [x]. *)
val add : t -> float -> unit

(** [count t] is the number of observations recorded so far. *)
val count : t -> int

(** [mean t] is the arithmetic mean, or [nan] if no observations. *)
val mean : t -> float

(** [variance t] is the unbiased sample variance, or [nan] if fewer than
    two observations were recorded. *)
val variance : t -> float

(** [stddev t] is [sqrt (variance t)]. *)
val stddev : t -> float

(** [min_value t] is the smallest observation, or [nan] if empty. *)
val min_value : t -> float

(** [max_value t] is the largest observation, or [nan] if empty. *)
val max_value : t -> float

(** [total t] is the sum of all observations. *)
val total : t -> float

(** [merge a b] is a fresh accumulator equivalent to having recorded all
    observations of [a] followed by all observations of [b]. *)
val merge : t -> t -> t

(** [pp ppf t] prints ["n=.. mean=.. sd=.. min=.. max=.."]. *)
val pp : Format.formatter -> t -> unit
