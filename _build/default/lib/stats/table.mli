(** Plain-text table rendering for experiment output.

    Every experiment in the benchmark harness prints its result as a table
    whose rows mirror the corresponding table or figure series of the
    paper. This module renders aligned ASCII tables on a formatter. *)

type t

(** [create ~title ~columns] is an empty table with the given column
    headers. *)
val create : title:string -> columns:string list -> t

(** [add_row t cells] appends a row.
    @raise Invalid_argument if [cells] length differs from the header. *)
val add_row : t -> string list -> unit

(** [row_count t] is the number of data rows. *)
val row_count : t -> int

(** [render ppf t] prints the table with a title line, a header and
    aligned columns. *)
val render : Format.formatter -> t -> unit

(** [print t] renders to stdout. *)
val print : t -> unit
