type variant = int

type t = {
  variants : int;
  rng : Sim.Rng.t;
  current : variant array;
  incarnations : int array;
}

let create ~variants ~n ~rng =
  if variants < 1 then invalid_arg "Diversity.create: variants < 1";
  if n < 1 then invalid_arg "Diversity.create: n < 1";
  (* When the variant space allows, replicas start on pairwise-distinct
     variants (operators deploy distinct builds; MultiCompiler output
     is effectively unique per build). With a smaller space, sharing is
     unavoidable and drawn uniformly. *)
  let current =
    if variants >= n then begin
      let pool = Array.init variants Fun.id in
      Sim.Rng.shuffle rng pool;
      Array.sub pool 0 n
    end
    else Array.init n (fun _ -> Sim.Rng.int rng variants)
  in
  { variants; rng; current; incarnations = Array.make n 0 }

let replica_count t = Array.length t.current
let variant_space t = t.variants

let check t r =
  if r < 0 || r >= replica_count t then
    invalid_arg "Diversity: replica out of range"

let variant_of t r =
  check t r;
  t.current.(r)

let rejuvenate t r =
  check t r;
  let n = Array.length t.current in
  let in_use v = Array.exists (fun x -> x = v) t.current in
  let fresh =
    if t.variants = 1 then 0
    else if t.variants > n then begin
      (* Prefer a variant no replica currently runs (a fresh build). *)
      let v = ref (Sim.Rng.int t.rng t.variants) in
      while in_use !v do
        v := Sim.Rng.int t.rng t.variants
      done;
      !v
    end
    else begin
      let v = ref (Sim.Rng.int t.rng t.variants) in
      while !v = t.current.(r) do
        v := Sim.Rng.int t.rng t.variants
      done;
      !v
    end
  in
  t.current.(r) <- fresh;
  t.incarnations.(r) <- t.incarnations.(r) + 1;
  fresh

let incarnation t r =
  check t r;
  t.incarnations.(r)

let replicas_running t variant =
  let result = ref [] in
  for r = replica_count t - 1 downto 0 do
    if t.current.(r) = variant then result := r :: !result
  done;
  !result

let max_sharing t =
  let counts = Hashtbl.create 17 in
  Array.iter
    (fun v ->
      Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
    t.current;
  Hashtbl.fold (fun _ c acc -> max c acc) counts 0
