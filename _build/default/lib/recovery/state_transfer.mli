(** State transfer for rejuvenated replicas.

    A replica returning from a clean reboot must adopt the current
    application state without trusting any single peer: it fetches
    snapshots from peers and installs one only when [f + 1] peers vouch
    for the same snapshot digest — at least one of them is correct.

    The module is protocol-agnostic: it works through a {!source}
    record the deployment wires to the live replicas (including
    whatever transfer delay the network imposes — fetches are
    callback-based). *)

type 'snapshot source = {
  peers : Bft.Types.replica list;  (** candidate donors, self excluded *)
  fetch : Bft.Types.replica -> 'snapshot option;
      (** read a peer's current snapshot; [None] if unreachable *)
  digest_of : 'snapshot -> Cryptosim.Digest.t;
  newer : 'snapshot -> 'snapshot -> bool;
      (** [newer a b] when [a] supersedes [b] (more executions) *)
}

type 'snapshot outcome =
  | Installed of 'snapshot  (** f+1 peers agreed on this snapshot *)
  | No_quorum of int  (** best agreement count achieved *)

(** [select ~f source] fetches from every peer and returns the newest
    snapshot vouched for by at least [f + 1] peers. Byzantine peers can
    lie about their snapshot; they cannot forge agreement. *)
val select : f:int -> 'snapshot source -> 'snapshot outcome
