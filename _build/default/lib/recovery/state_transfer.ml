type 'snapshot source = {
  peers : Bft.Types.replica list;
  fetch : Bft.Types.replica -> 'snapshot option;
  digest_of : 'snapshot -> Cryptosim.Digest.t;
  newer : 'snapshot -> 'snapshot -> bool;
}

type 'snapshot outcome = Installed of 'snapshot | No_quorum of int

let select ~f source =
  if f < 0 then invalid_arg "State_transfer.select: negative f";
  (* Group fetched snapshots by digest and count vouchers per group. *)
  let groups : (int64, 'a * int) Hashtbl.t = Hashtbl.create 17 in
  List.iter
    (fun peer ->
      match source.fetch peer with
      | None -> ()
      | Some snap ->
        let key = Cryptosim.Digest.to_int64 (source.digest_of snap) in
        let count =
          match Hashtbl.find_opt groups key with Some (_, c) -> c | None -> 0
        in
        Hashtbl.replace groups key (snap, count + 1))
    source.peers;
  let all = Hashtbl.fold (fun _ entry acc -> entry :: acc) groups [] in
  let qualifying =
    List.filter_map (fun (snap, count) -> if count > f then Some snap else None) all
  in
  match qualifying with
  | [] ->
    No_quorum (List.fold_left (fun acc (_, count) -> max acc count) 0 all)
  | first :: rest ->
    (* Among digests vouched by f+1 peers, adopt the newest. *)
    Installed
      (List.fold_left
         (fun acc snap -> if source.newer snap acc then snap else acc)
         first rest)
