lib/recovery/scheduler.mli: Bft Sim
