lib/recovery/state_transfer.mli: Bft Cryptosim
