lib/recovery/scheduler.ml: Bft Hashtbl List Sim
