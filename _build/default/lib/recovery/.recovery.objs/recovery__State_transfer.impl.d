lib/recovery/state_transfer.ml: Bft Cryptosim Hashtbl List
