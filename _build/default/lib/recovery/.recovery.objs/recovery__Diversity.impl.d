lib/recovery/diversity.ml: Array Fun Hashtbl Option Sim
