lib/recovery/diversity.mli: Bft Sim
