(** Software diversity model (the MultiCompiler substitute).

    Each replica runs a {e variant} — a distinct compilation of the
    same software. An attacker's exploit targets one variant: it
    compromises only replicas currently running that variant. Proactive
    recovery re-randomizes: a rejuvenated replica comes back with a
    fresh variant, forcing the attacker to start over.

    The variant space is large in practice (MultiCompiler randomizes
    layout per build); we model it as [variants] distinct ids with
    fresh draws on rejuvenation. *)

type variant = int
type t

(** [create ~variants ~n ~rng] assigns initial variants to [n]
    replicas: pairwise distinct when [variants >= n] (operators deploy
    distinct builds), uniform draws otherwise.
    @raise Invalid_argument if [variants < 1] or [n < 1]. *)
val create : variants:int -> n:int -> rng:Sim.Rng.t -> t

val replica_count : t -> int
val variant_space : t -> int

(** [variant_of t replica] is the replica's current variant. *)
val variant_of : t -> Bft.Types.replica -> variant

(** [rejuvenate t replica] draws a fresh variant for [replica]: one no
    replica currently runs when [variants > n], else merely different
    from its current one when possible. Increments the replica's
    incarnation. *)
val rejuvenate : t -> Bft.Types.replica -> variant

(** [incarnation t replica] counts rejuvenations of [replica]. *)
val incarnation : t -> Bft.Types.replica -> int

(** [replicas_running t variant] lists replicas currently on [variant]. *)
val replicas_running : t -> variant -> Bft.Types.replica list

(** [max_sharing t] is the size of the largest same-variant group — the
    blast radius of a single exploit right now. *)
val max_sharing : t -> int
