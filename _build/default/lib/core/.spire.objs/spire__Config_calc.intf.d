lib/core/config_calc.mli: Format
