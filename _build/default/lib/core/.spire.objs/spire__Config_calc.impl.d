lib/core/config_calc.ml: Format List Printf String
