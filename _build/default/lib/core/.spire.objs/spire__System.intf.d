lib/core/system.mli: Bft Overlay Pbft Prime Recovery Scada Sim Stats
