lib/core/scenarios.ml: Array Attack Bft Hashtbl List Overlay Prime Recovery Sim Stats System
