lib/core/scenarios.mli: Overlay Stats System
