lib/core/system.ml: Array Bft Cryptosim Fun List Overlay Pbft Prime Printf Recovery Scada Sim Stats String
