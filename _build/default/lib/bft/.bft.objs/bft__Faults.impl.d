lib/bft/faults.ml: Types
