lib/bft/delivery.mli: Cryptosim Types Update
