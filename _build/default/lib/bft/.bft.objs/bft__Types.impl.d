lib/bft/types.ml: Format
