lib/bft/env.ml: Fun List Sim Types
