lib/bft/faults.mli: Types
