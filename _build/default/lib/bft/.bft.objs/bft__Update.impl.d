lib/bft/update.ml: Cryptosim Format Printf String Types
