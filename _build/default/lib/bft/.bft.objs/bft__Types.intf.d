lib/bft/types.mli: Format
