lib/bft/update.mli: Cryptosim Format Types
