lib/bft/cluster.ml: Array Env Hashtbl List Sim Types
