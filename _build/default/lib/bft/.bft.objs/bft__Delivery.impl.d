lib/bft/delivery.ml: Buffer Cryptosim Hashtbl List Printf Types Update
