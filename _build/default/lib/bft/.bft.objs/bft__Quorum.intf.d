lib/bft/quorum.mli: Format
