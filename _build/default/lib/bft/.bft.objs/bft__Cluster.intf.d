lib/bft/cluster.mli: Env Sim Types
