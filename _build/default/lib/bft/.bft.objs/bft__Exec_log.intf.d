lib/bft/exec_log.mli: Cryptosim Types Update
