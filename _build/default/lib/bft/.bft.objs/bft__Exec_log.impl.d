lib/bft/exec_log.ml: Cryptosim Hashtbl List Types Update
