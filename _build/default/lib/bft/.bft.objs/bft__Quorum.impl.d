lib/bft/quorum.ml: Format
