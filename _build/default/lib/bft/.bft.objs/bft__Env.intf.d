lib/bft/env.mli: Sim Types
