type replica = int
type client = int
type view = int
type seqno = int

let leader_of ~n view =
  if n <= 0 then invalid_arg "Types.leader_of: n <= 0";
  view mod n

let pp_replica ppf r = Format.fprintf ppf "r%d" r
let pp_view ppf v = Format.fprintf ppf "v%d" v
