(** Exactly-once, per-client-FIFO delivery filter.

    The ordering layer can surface the same client update more than
    once (retransmissions routed through different origins) and can
    surface a client's updates out of client order in corner cases.
    This filter sits between ordering and execution: it releases each
    client's updates exactly once, in client-sequence order, buffering
    early arrivals until their predecessors release.

    Its state is deliberately compact — a per-client expected counter
    plus the (normally empty) out-of-order buffer — so it travels
    inside state-transfer snapshots, which is what makes execution
    dedup consistent across proactive recoveries. All replicas feed it
    the same ordered occurrence stream, so all make identical release
    decisions. *)

type t

val create : unit -> t

(** [offer t update] is the list of updates to execute {e now}, in
    order: empty for duplicates and early arrivals, possibly several
    when [update] unblocks buffered successors. *)
val offer : t -> Update.t -> Update.t list

(** [seen t key] is true when the update was already released or is
    buffered — used by origins to avoid re-preordering. *)
val seen : t -> Types.client * int -> bool

(** [expected t client] is the next client sequence to release
    (1 for unknown clients). *)
val expected : t -> Types.client -> int

(** [buffered_count t] counts out-of-order updates currently held. *)
val buffered_count : t -> int

(** {1 State transfer} *)

type state = (Types.client * int * Update.t list) list
(** Per client: (client, expected, buffered updates sorted by seq). *)

(** [state t] is a deterministic serialisation (clients ascending). *)
val state : t -> state

(** [digest t] hashes {!state} for snapshot cross-validation. *)
val digest : t -> Cryptosim.Digest.t

(** [digest_of_state state] hashes a serialised state directly. *)
val digest_of_state : state -> Cryptosim.Digest.t

(** [install t state] replaces [t]'s contents. *)
val install : t -> state -> unit
