type client_state = {
  mutable expected : int;
  buffer : (int, Update.t) Hashtbl.t;
}

type t = { clients : (Types.client, client_state) Hashtbl.t }

type state = (Types.client * int * Update.t list) list

let create () = { clients = Hashtbl.create 97 }

let client_state t c =
  match Hashtbl.find_opt t.clients c with
  | Some cs -> cs
  | None ->
    let cs = { expected = 1; buffer = Hashtbl.create 3 } in
    Hashtbl.replace t.clients c cs;
    cs

let offer t (update : Update.t) =
  let c = update.Update.client and seq = update.Update.client_seq in
  let cs = client_state t c in
  if seq < cs.expected then []
  else if seq > cs.expected then begin
    if not (Hashtbl.mem cs.buffer seq) then Hashtbl.replace cs.buffer seq update;
    []
  end
  else begin
    (* Release this update and any buffered successors. *)
    let released = ref [ update ] in
    cs.expected <- cs.expected + 1;
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt cs.buffer cs.expected with
      | Some u ->
        Hashtbl.remove cs.buffer cs.expected;
        released := u :: !released;
        cs.expected <- cs.expected + 1
      | None -> continue := false
    done;
    List.rev !released
  end

let seen t (c, seq) =
  match Hashtbl.find_opt t.clients c with
  | None -> false
  | Some cs -> seq < cs.expected || Hashtbl.mem cs.buffer seq

let expected t c =
  match Hashtbl.find_opt t.clients c with None -> 1 | Some cs -> cs.expected

let buffered_count t =
  Hashtbl.fold (fun _ cs acc -> acc + Hashtbl.length cs.buffer) t.clients 0

let state t =
  Hashtbl.fold
    (fun c cs acc ->
      let buffered =
        Hashtbl.fold (fun _ u acc -> u :: acc) cs.buffer []
        |> List.sort Update.compare_key
      in
      (c, cs.expected, buffered) :: acc)
    t.clients []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let digest_of_state st =
  let buf = Buffer.create 128 in
  List.iter
    (fun (c, expected, buffered) ->
      Buffer.add_string buf (Printf.sprintf "%d:%d[" c expected);
      List.iter
        (fun u ->
          Buffer.add_string buf
            (Printf.sprintf "%Ld;" (Cryptosim.Digest.to_int64 (Update.digest u))))
        buffered;
      Buffer.add_char buf ']')
    st;
  Cryptosim.Digest.of_string (Buffer.contents buf)

let digest t = digest_of_state (state t)

let install t st =
  Hashtbl.reset t.clients;
  List.iter
    (fun (c, expected, buffered) ->
      let cs = { expected; buffer = Hashtbl.create 3 } in
      List.iter
        (fun (u : Update.t) -> Hashtbl.replace cs.buffer u.Update.client_seq u)
        buffered;
      Hashtbl.replace t.clients c cs)
    st
