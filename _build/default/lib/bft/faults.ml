type t = {
  mutable crashed : bool;
  mutable silent : bool;
  mutable proposal_delay_us : int;
  mutable equivocate : bool;
  mutable drop_to : Types.replica -> bool;
}

let honest () =
  {
    crashed = false;
    silent = false;
    proposal_delay_us = 0;
    equivocate = false;
    drop_to = (fun _ -> false);
  }

let is_byzantine t =
  t.crashed || t.silent || t.proposal_delay_us > 0 || t.equivocate
  (* drop_to cannot be inspected pointwise; scenarios that use it also
     set one of the other knobs when they need [is_byzantine]. *)

let reset t =
  t.crashed <- false;
  t.silent <- false;
  t.proposal_delay_us <- 0;
  t.equivocate <- false;
  t.drop_to <- (fun _ -> false)
