(** Execution log: the totally-ordered sequence of updates a replica has
    applied, with a running digest chain.

    The digest chain makes safety violations detectable in O(1): two
    replicas executed the same sequence iff their chained digests at the
    same length are equal. Every integration test and benchmark asserts
    this across all correct replicas. *)

type t

val create : unit -> t

(** [append t update] records the next executed update and returns its
    1-based sequence position. Duplicate keys are the caller's problem —
    the log records exactly what was executed. *)
val append : t -> Update.t -> int

(** [length t] is the number of executed updates. *)
val length : t -> int

(** [chain_digest t] is the running digest after the last executed
    update (a fixed constant for the empty log). *)
val chain_digest : t -> Cryptosim.Digest.t

(** [digest_at t pos] is the chain digest after the [pos]-th update
    (0 = empty prefix). @raise Invalid_argument if out of range. *)
val digest_at : t -> int -> Cryptosim.Digest.t

(** [executed t] is the full ordered list of executed updates. *)
val executed : t -> Update.t list

(** [nth t pos] is the [pos]-th executed update (1-based). *)
val nth : t -> int -> Update.t

(** [contains_key t key] says whether an update with identity [key] was
    executed. O(1). *)
val contains_key : t -> Types.client * int -> bool

(** [prefix_equal a b] checks that the shorter log is a prefix of the
    longer (the safety invariant between two correct replicas). *)
val prefix_equal : t -> t -> bool

(** [install_snapshot t ~updates ~chain] installs a checkpointed state:
    the log forgets individual updates and is seeded with the snapshot's
    length and chain digest (used by state transfer when a recovering
    replica adopts a snapshot). [updates] is the number of updates
    covered by the snapshot. *)
val install_snapshot : t -> updates:int -> chain:Cryptosim.Digest.t -> unit
