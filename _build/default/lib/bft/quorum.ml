type t = { n : int; f : int; k : int }

let create ~n ~f ~k =
  if f < 0 || k < 0 then invalid_arg "Quorum.create: negative f or k";
  if n < 1 then invalid_arg "Quorum.create: n < 1";
  if n < (3 * f) + (2 * k) + 1 then
    invalid_arg "Quorum.create: n < 3f + 2k + 1";
  { n; f; k }

let minimal ~f ~k = create ~n:((3 * f) + (2 * k) + 1) ~f ~k

let quorum_size t = (2 * t.f) + t.k + 1
let preorder_threshold = quorum_size
let execution_threshold t = t.f + t.k + 1
let suspect_threshold t = t.f + t.k + 1
let reply_threshold t = t.f + 1
let two_quorum_intersection t = (2 * quorum_size t) - t.n

let tolerates_simultaneously t ~compromised ~recovering =
  compromised <= t.f && recovering <= t.k
  && t.n - compromised - recovering >= quorum_size t

let pp ppf t = Format.fprintf ppf "n=%d f=%d k=%d q=%d" t.n t.f t.k (quorum_size t)
