(** Quorum arithmetic for intrusion-tolerant replication with proactive
    recovery.

    Following the paper, a system that must tolerate [f] simultaneous
    intrusions {e and} [k] replicas being unavailable because they are
    undergoing proactive recovery needs

    {v n >= 3f + 2k + 1 v}

    replicas, with quorums of size [2f + k + 1]: any two such quorums
    intersect in at least [f + 1] replicas, of which at least one is
    correct, and a full quorum of correct, non-recovering replicas
    remains available even with [f] compromised and [k] recovering. *)

type t = private { n : int; f : int; k : int }

(** [create ~n ~f ~k] validates [n >= 3f + 2k + 1] (and [f >= 0],
    [k >= 0], [n >= 1]).
    @raise Invalid_argument when the resilience bound is violated. *)
val create : n:int -> f:int -> k:int -> t

(** [minimal ~f ~k] is the smallest legal system: [n = 3f + 2k + 1]. *)
val minimal : f:int -> k:int -> t

(** [quorum_size t] is [2f + k + 1]. *)
val quorum_size : t -> int

(** [preorder_threshold t] is also [2f + k + 1] — the number of
    acknowledgements that make a pre-ordered update durable across
    views. *)
val preorder_threshold : t -> int

(** [execution_threshold t] is [f + k + 1]: enough reporters to ensure
    at least one correct, non-recovering replica holds the update. *)
val execution_threshold : t -> int

(** [suspect_threshold t] is [f + k + 1]: a set of suspicions that
    cannot be produced by faulty + recovering replicas alone. *)
val suspect_threshold : t -> int

(** [reply_threshold t] is [f + 1]: matching replies that guarantee at
    least one comes from a correct replica. *)
val reply_threshold : t -> int

(** [two_quorum_intersection t] is the guaranteed size of the
    intersection of any two quorums: [2 * quorum_size - n]. *)
val two_quorum_intersection : t -> int

(** [tolerates_simultaneously t ~compromised ~recovering] checks whether
    progress and safety hold with the given number of compromised and
    concurrently-recovering replicas. *)
val tolerates_simultaneously : t -> compromised:int -> recovering:int -> bool

val pp : Format.formatter -> t -> unit
