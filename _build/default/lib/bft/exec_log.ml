type t = {
  mutable updates : Update.t list; (* reversed; empty after snapshot install *)
  mutable snapshot_len : int;
  mutable live_len : int;
  mutable chain : Cryptosim.Digest.t;
  chains : (int, Cryptosim.Digest.t) Hashtbl.t; (* position -> digest *)
  keys : (Types.client * int, unit) Hashtbl.t;
}

let empty_chain = Cryptosim.Digest.of_string "exec-log-genesis"

let create () =
  let chains = Hashtbl.create 97 in
  Hashtbl.replace chains 0 empty_chain;
  {
    updates = [];
    snapshot_len = 0;
    live_len = 0;
    chain = empty_chain;
    chains;
    keys = Hashtbl.create 97;
  }

let length t = t.snapshot_len + t.live_len

let append t update =
  t.updates <- update :: t.updates;
  t.live_len <- t.live_len + 1;
  t.chain <- Cryptosim.Digest.combine t.chain (Update.digest update);
  let pos = length t in
  Hashtbl.replace t.chains pos t.chain;
  Hashtbl.replace t.keys (Update.key update) ();
  pos

let chain_digest t = t.chain

let digest_at t pos =
  match Hashtbl.find_opt t.chains pos with
  | Some d -> d
  | None -> invalid_arg "Exec_log.digest_at: position out of range"

let executed t = List.rev t.updates

let nth t pos =
  let live_pos = pos - t.snapshot_len in
  if live_pos < 1 || live_pos > t.live_len then
    invalid_arg "Exec_log.nth: position out of range";
  List.nth (executed t) (live_pos - 1)

let contains_key t key = Hashtbl.mem t.keys key

let prefix_equal a b =
  let la = length a and lb = length b in
  let common = min la lb in
  (* Compare chain digests at the common length when both logs still
     remember it; positions truncated by snapshots compare trivially. *)
  match (Hashtbl.find_opt a.chains common, Hashtbl.find_opt b.chains common) with
  | Some da, Some db -> Cryptosim.Digest.equal da db
  | _ -> true

let install_snapshot t ~updates ~chain =
  t.updates <- [];
  t.live_len <- 0;
  t.snapshot_len <- updates;
  t.chain <- chain;
  Hashtbl.reset t.chains;
  Hashtbl.replace t.chains updates chain;
  Hashtbl.reset t.keys
