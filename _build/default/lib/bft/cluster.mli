(** In-memory replica cluster harness.

    Wires [n] protocol instances together over the simulation engine
    with a configurable pairwise delay function — no overlay network in
    between. Used by unit/integration tests and microbenchmarks where
    the subject is the protocol itself; full-system experiments use the
    overlay deployment in the [spire] library instead. *)

type ('r, 'm) t

(** [create ~engine ~n ~latency_us ~make ~deliver] builds [n] replicas.

    [latency_us src dst] is the one-way message delay. [make i env]
    constructs replica [i] with its environment; [deliver r ~from msg]
    feeds an incoming message into the instance.

    Message sends from [i] to [j] (including [i = j]) are scheduled on
    the engine after [latency_us i j] (self-delay clamps to 0). *)
val create :
  engine:Sim.Engine.t ->
  n:int ->
  latency_us:(Types.replica -> Types.replica -> int) ->
  make:(Types.replica -> 'm Env.t -> 'r) ->
  deliver:('r -> from:Types.replica -> 'm -> unit) ->
  ('r, 'm) t

(** [replica t i] is instance [i]. *)
val replica : ('r, 'm) t -> Types.replica -> 'r

(** [replicas t] is all instances, index-ordered. *)
val replicas : ('r, 'm) t -> 'r array

(** [size t] is [n]. *)
val size : ('r, 'm) t -> int

(** [message_count t] counts messages sent through the harness so far. *)
val message_count : ('r, 'm) t -> int

(** [set_link_delay t ~src ~dst delay_us] overrides one directed pair's
    delay (e.g. to simulate a degraded path). *)
val set_link_delay :
  ('r, 'm) t -> src:Types.replica -> dst:Types.replica -> int -> unit

(** [partition t ~island] disconnects the replicas in [island] from the
    rest (messages crossing the cut are dropped) until [heal] is
    called. *)
val partition : ('r, 'm) t -> island:Types.replica list -> unit

val heal : ('r, 'm) t -> unit
