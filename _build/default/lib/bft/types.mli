(** Identifiers shared by every replication protocol in this repository. *)

type replica = int
(** Replica index in [0 .. n-1]. *)

type client = int
(** Client identity (a SCADA proxy or HMI in Spire). *)

type view = int
(** View number; the leader of view [v] with [n] replicas is [v mod n]. *)

type seqno = int
(** Global ordering sequence number (1-based). *)

(** [leader_of ~n view] is the leader replica of [view]. *)
val leader_of : n:int -> view -> replica

(** [pp_replica], [pp_view]: conventional renderings for traces. *)
val pp_replica : Format.formatter -> replica -> unit

val pp_view : Format.formatter -> view -> unit
