(** Client updates — the unit of work ordered by the replication engine.

    In Spire an update is a SCADA event: a substation proxy's status
    report or an HMI supervisory command. Updates are identified by
    [(client, client_seq)]; the pair is unique and lets replicas
    deduplicate retransmissions and multi-path deliveries. *)

type t = {
  client : Types.client;
  client_seq : int;  (** per-client monotonically increasing *)
  operation : string;  (** opaque application payload (encoded SCADA op) *)
  submitted_us : int;  (** virtual time the client created the update *)
}

(** [create ~client ~client_seq ~operation ~submitted_us]. *)
val create :
  client:Types.client -> client_seq:int -> operation:string -> submitted_us:int -> t

(** [key u] is the identity pair [(client, client_seq)]. *)
val key : t -> Types.client * int

(** [digest u] hashes the identity and payload (not the submission
    time, so retransmissions hash identically). *)
val digest : t -> Cryptosim.Digest.t

val equal : t -> t -> bool
val compare_key : t -> t -> int
val pp : Format.formatter -> t -> unit
