(** Fault and attack behaviour knobs attached to a replica instance.

    Scenario code flips these at runtime to turn a replica crashed,
    silent, or Byzantine. The protocol implementations consult them at
    the relevant decision points; a replica with {!honest} behaviour is
    a correct replica.

    The modelled Byzantine repertoire is the one the paper's evaluation
    exercises: crash, selective silence, leader slowdown (the
    performance attack Prime defends against), and leader equivocation.
    Behaviours that real cryptography prevents (forging another
    replica's signed messages, fabricating prepared certificates) are
    outside the model, as they are in the paper. *)

type t = {
  mutable crashed : bool;
      (** drops all input and output; models a down or rejuvenating node *)
  mutable silent : bool;  (** processes input but sends nothing *)
  mutable proposal_delay_us : int;
      (** a malicious leader holds every proposal this long before
          sending — the classic performance (slowdown) attack *)
  mutable equivocate : bool;
      (** a malicious leader sends conflicting proposals to different
          halves of the replica set *)
  mutable drop_to : Types.replica -> bool;
      (** selective output suppression towards specific peers *)
}

(** [honest ()] is fresh, fully-correct behaviour. *)
val honest : unit -> t

(** [is_byzantine t] is true when any fault knob deviates from honest. *)
val is_byzantine : t -> bool

(** [reset t] restores honest behaviour in place (used when a replica is
    rejuvenated by proactive recovery). *)
val reset : t -> unit
