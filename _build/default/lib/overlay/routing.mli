(** Route computation over an overlay topology.

    Two route families back the overlay's dissemination modes:
    single shortest paths (latency-weighted Dijkstra) for normal
    unicast, and sets of node-disjoint paths for the intrusion-tolerant
    redundant mode, in which a message travels every path so that an
    adversary must cut (or compromise a node on) {e all} of them to
    suppress it.

    All functions take a [usable] predicate so the runtime can exclude
    failed links/nodes and recompute routes after failures. *)

type path = Topology.node list
(** A path as the full node sequence, source first, destination last. *)

(** [shortest_path topo ~usable ~src ~dst] is the minimum-latency usable
    path, or [None] if [dst] is unreachable. [usable a b] says whether
    the directed hop a->b may be used. *)
val shortest_path :
  Topology.t ->
  usable:(Topology.node -> Topology.node -> bool) ->
  src:Topology.node ->
  dst:Topology.node ->
  path option

(** [path_latency_us topo path] is the summed one-way link latency.
    @raise Invalid_argument if consecutive hops are not linked. *)
val path_latency_us : Topology.t -> path -> int

(** [disjoint_paths topo ~usable ~src ~dst ~k] is up to [k]
    pairwise internally-node-disjoint paths (they share only [src] and
    [dst]), greedily shortest-first. Returns fewer than [k] when the
    topology does not admit them. *)
val disjoint_paths :
  Topology.t ->
  usable:(Topology.node -> Topology.node -> bool) ->
  src:Topology.node ->
  dst:Topology.node ->
  k:int ->
  path list

(** [max_disjoint topo ~src ~dst] is the number of internally
    node-disjoint paths found greedily with all links usable — a lower
    bound on the min node cut between [src] and [dst]. *)
val max_disjoint : Topology.t -> src:Topology.node -> dst:Topology.node -> int
