lib/overlay/fair_queue.ml: Hashtbl Queue
