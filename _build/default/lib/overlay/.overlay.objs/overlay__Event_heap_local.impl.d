lib/overlay/event_heap_local.ml: Array
