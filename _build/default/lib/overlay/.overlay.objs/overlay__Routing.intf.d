lib/overlay/routing.mli: Topology
