lib/overlay/net.mli: Fair_queue Routing Sim Topology
