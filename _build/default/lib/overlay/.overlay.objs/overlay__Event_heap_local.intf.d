lib/overlay/event_heap_local.mli:
