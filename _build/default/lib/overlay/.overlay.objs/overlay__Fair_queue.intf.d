lib/overlay/fair_queue.mli:
