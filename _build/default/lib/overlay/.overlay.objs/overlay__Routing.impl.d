lib/overlay/routing.ml: Array Event_heap_local Hashtbl List Topology
