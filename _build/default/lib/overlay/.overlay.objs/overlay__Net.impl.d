lib/overlay/net.ml: Array Dedup_cache Fair_queue Hashtbl List Option Routing Sim Topology
