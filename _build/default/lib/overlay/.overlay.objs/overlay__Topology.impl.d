lib/overlay/topology.ml: Array Hashtbl List Option
