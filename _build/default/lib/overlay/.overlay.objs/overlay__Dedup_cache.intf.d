lib/overlay/dedup_cache.mli:
