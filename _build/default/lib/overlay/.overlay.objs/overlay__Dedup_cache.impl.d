lib/overlay/dedup_cache.ml: Hashtbl
