lib/overlay/topology.mli:
