(** Bounded-memory duplicate-suppression cache.

    Frame-id dedup must remember ids long enough to suppress duplicates
    still in flight, but a long-running overlay cannot remember every
    id forever. This cache keeps two generations: inserts go to the
    current generation; when it fills, the previous generation is
    dropped and the generations rotate. An id is remembered for at
    least one full generation — orders of magnitude longer than any
    frame's time in flight. *)

type t

(** [create ~generation_size ()] — each generation holds up to
    [generation_size] ids (default 65536). *)
val create : ?generation_size:int -> unit -> t

(** [mem t id] is true if [id] was added within the last two
    generations. *)
val mem : t -> int -> bool

(** [add t id] records [id] (rotating generations when full). *)
val add : t -> int -> unit

(** [size t] is the number of ids currently remembered. *)
val size : t -> int
