(** Two-class priority queue with round-robin fairness across sources.

    This is the queueing discipline of the intrusion-tolerant overlay:
    protocol traffic ([Control]) is always served before bulk traffic,
    and within each class service rotates round-robin over source nodes
    so that a single (possibly compromised) source flooding the link
    cannot starve other sources — it only ever gets its fair share.

    Each source's per-class backlog is additionally capped; pushes beyond
    the cap are dropped and counted, bounding the memory a flooding
    source can consume (the overlay's defence against resource-exhaustion
    DoS). *)

type priority = Control | Bulk

type 'a t

(** [create ~per_source_cap] is an empty queue; each (source, class)
    backlog holds at most [per_source_cap] items. *)
val create : per_source_cap:int -> 'a t

(** [push t ~source ~priority item] enqueues; returns [false] (and drops)
    if the source's backlog for that class is full. *)
val push : 'a t -> source:int -> priority:priority -> 'a -> bool

(** [pop t] dequeues the next item by (priority, round-robin source)
    order, or [None] if empty. *)
val pop : 'a t -> (int * priority * 'a) option

(** [length t] is the number of queued items across classes. *)
val length : 'a t -> int

(** [is_empty t]. *)
val is_empty : 'a t -> bool

(** [dropped t] is the number of pushes rejected by the cap so far. *)
val dropped : 'a t -> int

(** [backlog_of t ~source ~priority] is that backlog's current length. *)
val backlog_of : 'a t -> source:int -> priority:priority -> int
