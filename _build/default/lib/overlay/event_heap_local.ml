type 'a entry = { key : int; value : 'a }
type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let push t ~key value =
  let entry = { key; value } in
  if t.len >= Array.length t.data then begin
    let cap = max 32 (Array.length t.data * 2) in
    let data = Array.make cap entry in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  let i = ref (t.len - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if t.data.(!i).key < t.data.(parent).key then begin
      let tmp = t.data.(!i) in
      t.data.(!i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && t.data.(l).key < t.data.(!smallest).key then smallest := l;
        if r < t.len && t.data.(r).key < t.data.(!smallest).key then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.data.(!i) in
          t.data.(!i) <- t.data.(!smallest);
          t.data.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.key, top.value)
  end

let size t = t.len
