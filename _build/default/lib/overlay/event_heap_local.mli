(** Minimal int-keyed min-heap used by {!Routing}'s Dijkstra.

    Kept local to the overlay library so routing does not depend on the
    simulation engine's event heap (which orders by insertion sequence,
    a property Dijkstra does not want). *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> key:int -> 'a -> unit
val pop : 'a t -> (int * 'a) option
val size : 'a t -> int
