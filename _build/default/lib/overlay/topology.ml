type node = int
type site = int

type link = {
  endpoint_a : node;
  endpoint_b : node;
  latency_us : int;
  bandwidth_bps : int;
}

type t = {
  nodes : int;
  sites : site array;
  mutable links : link list;
  adjacency : (node, (node * link) list) Hashtbl.t;
}

let create ~nodes =
  if nodes <= 0 then invalid_arg "Topology.create: nodes <= 0";
  {
    nodes;
    sites = Array.make nodes 0;
    links = [];
    adjacency = Hashtbl.create 97;
  }

let node_count t = t.nodes

let check_node t n =
  if n < 0 || n >= t.nodes then invalid_arg "Topology: node out of range"

let assign_site t node site =
  check_node t node;
  t.sites.(node) <- site

let site_of t node =
  check_node t node;
  t.sites.(node)

let site_count t =
  Array.fold_left (fun acc s -> max acc (s + 1)) 0 t.sites

let nodes_in_site t site =
  let result = ref [] in
  for n = t.nodes - 1 downto 0 do
    if t.sites.(n) = site then result := n :: !result
  done;
  !result

let adjacency_of t n =
  Option.value ~default:[] (Hashtbl.find_opt t.adjacency n)

let link_between t a b =
  List.find_opt (fun (peer, _) -> peer = b) (adjacency_of t a)
  |> Option.map snd

let add_link t ~a ~b ~latency_us ~bandwidth_bps =
  check_node t a;
  check_node t b;
  if a = b then invalid_arg "Topology.add_link: self-link";
  if Option.is_some (link_between t a b) then
    invalid_arg "Topology.add_link: duplicate link";
  if latency_us < 0 then invalid_arg "Topology.add_link: negative latency";
  if bandwidth_bps <= 0 then invalid_arg "Topology.add_link: bandwidth <= 0";
  let link = { endpoint_a = a; endpoint_b = b; latency_us; bandwidth_bps } in
  t.links <- link :: t.links;
  Hashtbl.replace t.adjacency a ((b, link) :: adjacency_of t a);
  Hashtbl.replace t.adjacency b ((a, link) :: adjacency_of t b)

let links t = List.rev t.links

let neighbors t n =
  check_node t n;
  List.map fst (adjacency_of t n) |> List.sort compare

let connected t =
  if t.nodes = 0 then true
  else begin
    let seen = Array.make t.nodes false in
    let rec visit n =
      if not seen.(n) then begin
        seen.(n) <- true;
        List.iter (fun (peer, _) -> visit peer) (adjacency_of t n)
      end
    in
    visit 0;
    Array.for_all (fun b -> b) seen
  end

let full_mesh ~nodes ~latency_us ~bandwidth_bps =
  let t = create ~nodes in
  for a = 0 to nodes - 1 do
    for b = a + 1 to nodes - 1 do
      add_link t ~a ~b ~latency_us ~bandwidth_bps
    done
  done;
  t

let multi_site ~site_sizes ~lan_latency_us ~wan_latency_us ~lan_bandwidth_bps
    ~wan_bandwidth_bps =
  let total = List.fold_left ( + ) 0 site_sizes in
  let t = create ~nodes:total in
  (* Assign sites and build per-site LANs. *)
  let site_members =
    let offset = ref 0 in
    List.mapi
      (fun site size ->
        let members = List.init size (fun i -> !offset + i) in
        offset := !offset + size;
        List.iter (fun n -> assign_site t n site) members;
        members)
      site_sizes
  in
  List.iter
    (fun members ->
      let arr = Array.of_list members in
      let count = Array.length arr in
      for i = 0 to count - 1 do
        for j = i + 1 to count - 1 do
          add_link t ~a:arr.(i) ~b:arr.(j) ~latency_us:lan_latency_us
            ~bandwidth_bps:lan_bandwidth_bps
        done
      done)
    site_members;
  (* WAN links between sites: primary link between the first node of
     each site, and a redundant link between second nodes when both
     sites have at least two members, so that no single WAN link failure
     partitions a site pair. *)
  let sites = Array.of_list site_members in
  for sa = 0 to Array.length sites - 1 do
    for sb = sa + 1 to Array.length sites - 1 do
      let lat = wan_latency_us sa sb in
      (match (sites.(sa), sites.(sb)) with
      | a0 :: _, b0 :: _ ->
        add_link t ~a:a0 ~b:b0 ~latency_us:lat ~bandwidth_bps:wan_bandwidth_bps
      | _, _ -> ());
      (match (sites.(sa), sites.(sb)) with
      | _ :: a1 :: _, _ :: b1 :: _ ->
        add_link t ~a:a1 ~b:b1 ~latency_us:lat ~bandwidth_bps:wan_bandwidth_bps
      | _, _ -> ())
    done
  done;
  t

let wide_area_east_coast () =
  (* Sites: 0 = control center A (Baltimore), 1 = control center B
     (Washington DC), 2 = data center C (New York), 3 = data center D
     (Boston). One-way latencies approximate published inter-city
     values. *)
  let one_way = function
    | 0, 1 | 1, 0 -> 2_000 (* Baltimore <-> DC *)
    | 0, 2 | 2, 0 -> 4_000 (* Baltimore <-> NYC *)
    | 0, 3 | 3, 0 -> 8_000 (* Baltimore <-> Boston *)
    | 1, 2 | 2, 1 -> 5_000 (* DC <-> NYC *)
    | 1, 3 | 3, 1 -> 9_000 (* DC <-> Boston *)
    | 2, 3 | 3, 2 -> 5_000 (* NYC <-> Boston *)
    | _ -> 10_000
  in
  let t =
    multi_site ~site_sizes:[ 3; 3; 2; 2 ] ~lan_latency_us:100
      ~wan_latency_us:(fun a b -> one_way (a, b))
      ~lan_bandwidth_bps:125_000_000 (* 1 Gbps LAN *)
      ~wan_bandwidth_bps:12_500_000 (* 100 Mbps WAN *)
  in
  (t, [ (0, `Control_center); (1, `Control_center); (2, `Data_center); (3, `Data_center) ])
