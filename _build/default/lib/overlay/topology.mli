(** Static description of an overlay network: nodes, sites, links.

    An overlay node models one Spines daemon. Nodes belong to {e sites}
    (a control center or data center); intra-site links are fast LAN
    links, inter-site links are WAN links with city-to-city latencies.

    The topology is immutable; runtime state (links up/down, queues) is
    owned by {!Net}. *)

type node = int
type site = int

type link = {
  endpoint_a : node;
  endpoint_b : node;
  latency_us : int;  (** one-way propagation delay *)
  bandwidth_bps : int;  (** serialisation bandwidth, bytes per second *)
}

type t

(** [create ~nodes] starts a topology with [nodes] nodes, all in site 0
    and no links. *)
val create : nodes:int -> t

(** [node_count t] / [site_count t]. *)
val node_count : t -> int

val site_count : t -> int

(** [assign_site t node site] places [node] in [site]. *)
val assign_site : t -> node -> site -> unit

(** [site_of t node] is the site of [node]. *)
val site_of : t -> node -> site

(** [nodes_in_site t site] lists nodes of a site, ascending. *)
val nodes_in_site : t -> site -> node list

(** [add_link t ~a ~b ~latency_us ~bandwidth_bps] adds an undirected
    link. @raise Invalid_argument on self-links, duplicate links, or
    out-of-range nodes. *)
val add_link :
  t -> a:node -> b:node -> latency_us:int -> bandwidth_bps:int -> unit

(** [links t] is every undirected link. *)
val links : t -> link list

(** [neighbors t node] lists the nodes adjacent to [node]. *)
val neighbors : t -> node -> node list

(** [link_between t a b] finds the link joining [a] and [b], if any. *)
val link_between : t -> node -> node -> link option

(** [connected t] checks that the graph is connected (ignoring failures). *)
val connected : t -> bool

(** {1 Topology builders} *)

(** [full_mesh ~nodes ~latency_us ~bandwidth_bps] is a clique; models a
    LAN segment. *)
val full_mesh : nodes:int -> latency_us:int -> bandwidth_bps:int -> t

(** [multi_site ~site_sizes ~lan_latency_us ~wan_latency_us ~lan_bandwidth_bps
     ~wan_bandwidth_bps] builds one full-mesh LAN per site and a full
    mesh of WAN links between sites (one WAN link per node pair across
    sites would be overkill; each pair of sites is joined by links
    between the first node of each site plus redundant links between the
    second nodes when both sites have them).

    [wan_latency_us] is indexed by unordered site pair via
    [wan_latency_us sa sb]. *)
val multi_site :
  site_sizes:int list ->
  lan_latency_us:int ->
  wan_latency_us:(site -> site -> int) ->
  lan_bandwidth_bps:int ->
  wan_bandwidth_bps:int ->
  t

(** [wide_area_east_coast ()] is the reproduction of the paper's
    deployment substrate: 4 sites — two control centers and two data
    centers on the US East coast — with 3, 3, 2 and 2 overlay daemons
    and WAN latencies drawn from published inter-city RTT/2 values
    (5-16 ms one way). Returns the topology and the list of sites
    [(site, kind)] where kind is [`Control_center] or [`Data_center]. *)
val wide_area_east_coast :
  unit -> t * (site * [ `Control_center | `Data_center ]) list
