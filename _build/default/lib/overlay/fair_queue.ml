type priority = Control | Bulk

type 'a class_state = {
  queues : (int, 'a Queue.t) Hashtbl.t;
  mutable rotation : int list; (* sources with pending items, service order *)
  mutable count : int;
}

type 'a t = {
  per_source_cap : int;
  control : 'a class_state;
  bulk : 'a class_state;
  mutable dropped : int;
}

let empty_class () = { queues = Hashtbl.create 17; rotation = []; count = 0 }

let create ~per_source_cap =
  if per_source_cap <= 0 then invalid_arg "Fair_queue.create: cap <= 0";
  { per_source_cap; control = empty_class (); bulk = empty_class (); dropped = 0 }

let class_of t = function Control -> t.control | Bulk -> t.bulk

let queue_of cls source =
  match Hashtbl.find_opt cls.queues source with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add cls.queues source q;
    q

let push t ~source ~priority item =
  let cls = class_of t priority in
  let q = queue_of cls source in
  if Queue.length q >= t.per_source_cap then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    if Queue.is_empty q then cls.rotation <- cls.rotation @ [ source ];
    Queue.push item q;
    cls.count <- cls.count + 1;
    true
  end

let pop_class cls =
  match cls.rotation with
  | [] -> None
  | source :: rest ->
    let q = queue_of cls source in
    let item = Queue.pop q in
    cls.count <- cls.count - 1;
    cls.rotation <- (if Queue.is_empty q then rest else rest @ [ source ]);
    Some (source, item)

let pop t =
  match pop_class t.control with
  | Some (source, item) -> Some (source, Control, item)
  | None -> (
    match pop_class t.bulk with
    | Some (source, item) -> Some (source, Bulk, item)
    | None -> None)

let length t = t.control.count + t.bulk.count
let is_empty t = length t = 0
let dropped t = t.dropped

let backlog_of t ~source ~priority =
  let cls = class_of t priority in
  match Hashtbl.find_opt cls.queues source with
  | Some q -> Queue.length q
  | None -> 0
