type path = Topology.node list

let shortest_path topo ~usable ~src ~dst =
  let n = Topology.node_count topo in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Routing.shortest_path: node out of range";
  if src = dst then Some [ src ]
  else begin
    let dist = Array.make n max_int in
    let prev = Array.make n (-1) in
    let visited = Array.make n false in
    dist.(src) <- 0;
    (* Priority queue of (distance, node). *)
    let heap = Event_heap_local.create () in
    Event_heap_local.push heap ~key:0 src;
    let finished = ref false in
    while not !finished do
      match Event_heap_local.pop heap with
      | None -> finished := true
      | Some (d, u) ->
        if (not visited.(u)) && d = dist.(u) then begin
          visited.(u) <- true;
          if u = dst then finished := true
          else
            List.iter
              (fun v ->
                if (not visited.(v)) && usable u v then
                  match Topology.link_between topo u v with
                  | None -> ()
                  | Some link ->
                    let weight = max 1 link.Topology.latency_us in
                    let alt = dist.(u) + weight in
                    if alt < dist.(v) then begin
                      dist.(v) <- alt;
                      prev.(v) <- u;
                      Event_heap_local.push heap ~key:alt v
                    end)
              (Topology.neighbors topo u)
        end
    done;
    if dist.(dst) = max_int then None
    else begin
      let rec build acc v = if v = src then src :: acc else build (v :: acc) prev.(v) in
      Some (build [] dst)
    end
  end

let path_latency_us topo path =
  let rec loop acc = function
    | [] | [ _ ] -> acc
    | a :: (b :: _ as rest) -> (
      match Topology.link_between topo a b with
      | None -> invalid_arg "Routing.path_latency_us: hop without link"
      | Some link -> loop (acc + link.Topology.latency_us) rest)
  in
  loop 0 path

let disjoint_paths topo ~usable ~src ~dst ~k =
  let banned_nodes = Hashtbl.create 17 in
  let banned_edges = Hashtbl.create 17 in
  let usable' a b =
    usable a b
    && (not (Hashtbl.mem banned_nodes a))
    && (not (Hashtbl.mem banned_nodes b))
    && not (Hashtbl.mem banned_edges (min a b, max a b))
  in
  let rec ban_edges = function
    | a :: (b :: _ as rest) ->
      Hashtbl.replace banned_edges (min a b, max a b) ();
      ban_edges rest
    | [] | [ _ ] -> ()
  in
  let rec loop acc remaining =
    if remaining = 0 then List.rev acc
    else
      match shortest_path topo ~usable:usable' ~src ~dst with
      | None -> List.rev acc
      | Some path ->
        (* Ban the internal nodes and every edge of this path for
           subsequent searches (a direct src-dst edge has no internal
           node, so edge banning is what forces true alternatives). *)
        List.iter
          (fun node ->
            if node <> src && node <> dst then
              Hashtbl.replace banned_nodes node ())
          path;
        ban_edges path;
        loop (path :: acc) (remaining - 1)
  in
  loop [] (max 0 k)

let max_disjoint topo ~src ~dst =
  disjoint_paths topo ~usable:(fun _ _ -> true) ~src ~dst
    ~k:(Topology.node_count topo)
  |> List.length
