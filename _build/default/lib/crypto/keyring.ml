type principal = int
type secret = { owner : principal; material : int64 }

type t = { mutable materials : int64 array; seed : int64; mutable epoch : int }

let derive seed index epoch =
  let s = Printf.sprintf "key:%Ld:%d:%d" seed index epoch in
  Digest.to_int64 (Digest.of_string s)

let create ~seed ~size =
  if size <= 0 then invalid_arg "Keyring.create: size <= 0";
  { materials = Array.init size (fun i -> derive seed i 0); seed; epoch = 0 }

let size t = Array.length t.materials

let check t p =
  if p < 0 || p >= size t then invalid_arg "Keyring: principal out of range"

let secret t p =
  check t p;
  { owner = p; material = t.materials.(p) }

let secret_owner s = s.owner
let secret_material s = s.material

let material_of t p =
  check t p;
  t.materials.(p)

let rotate t p =
  check t p;
  t.epoch <- t.epoch + 1;
  t.materials.(p) <- derive t.seed p t.epoch;
  secret t p
