(** Key material for a fixed population of principals.

    Each principal (replica, proxy, HMI, overlay daemon) owns a signing
    secret derived from the keyring seed. The keyring is the trusted
    distribution of public keys that the paper assumes is installed
    out-of-band before deployment.

    The API enforces the simulated security property: producing a
    signature for principal [p] requires [p]'s {!secret}, which honest
    code only hands to the component acting as [p]. Verification needs
    only the keyring. *)

type t

(** Identity of a principal; the keyring covers ids [0 .. size-1]. *)
type principal = int

(** Secret signing material of one principal. *)
type secret

(** [create ~seed ~size] derives secrets for [size] principals. *)
val create : seed:int64 -> size:int -> t

(** [size t] is the number of principals. *)
val size : t -> int

(** [secret t p] is [p]'s signing secret.
    @raise Invalid_argument if [p] is out of range. *)
val secret : t -> principal -> secret

(** [secret_owner s] is the principal a secret belongs to. *)
val secret_owner : secret -> principal

(** [secret_material s] is the raw secret value (used by {!Auth}). *)
val secret_material : secret -> int64

(** [material_of t p] is the secret value as known to the verifier side
    (simulated public-key check). *)
val material_of : t -> principal -> int64

(** [rotate t p] replaces [p]'s secret with a fresh one (proactive
    recovery installs new keys on rejuvenated replicas); returns the new
    secret. Signatures made with the old secret no longer verify. *)
val rotate : t -> principal -> secret
