type signature = { signer : Keyring.principal; tag : Digest.t }
type mac = { mac_tag : Digest.t }

type cost = {
  sign_us : int;
  verify_us : int;
  mac_us : int;
  mac_verify_us : int;
}

let default_cost = { sign_us = 800; verify_us = 60; mac_us = 2; mac_verify_us = 2 }
let free_cost = { sign_us = 0; verify_us = 0; mac_us = 0; mac_verify_us = 0 }

let tag_of ~material ~signer digest =
  let s = Printf.sprintf "sig:%Ld:%d:%Ld" material signer (Digest.to_int64 digest) in
  Digest.of_string s

let sign secret digest =
  let signer = Keyring.secret_owner secret in
  { signer; tag = tag_of ~material:(Keyring.secret_material secret) ~signer digest }

let verify keyring ~signer ~digest signature =
  signature.signer = signer
  && Digest.equal signature.tag
       (tag_of ~material:(Keyring.material_of keyring signer) ~signer digest)

let signature_signer s = s.signer

let forge ~claimed_signer ~digest =
  let s = Printf.sprintf "forged:%d:%Ld" claimed_signer (Digest.to_int64 digest) in
  { signer = claimed_signer; tag = Digest.of_string s }

let mac_tag_of ~material ~sender ~peer digest =
  let s =
    Printf.sprintf "mac:%Ld:%d:%d:%Ld" material sender peer
      (Digest.to_int64 digest)
  in
  Digest.of_string s

let mac secret ~peer digest =
  let sender = Keyring.secret_owner secret in
  {
    mac_tag =
      mac_tag_of ~material:(Keyring.secret_material secret) ~sender ~peer digest;
  }

let verify_mac keyring ~sender ~receiver ~digest m =
  Digest.equal m.mac_tag
    (mac_tag_of
       ~material:(Keyring.material_of keyring sender)
       ~sender ~peer:receiver digest)
