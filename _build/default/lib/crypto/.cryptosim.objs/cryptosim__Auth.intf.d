lib/crypto/auth.mli: Digest Keyring
