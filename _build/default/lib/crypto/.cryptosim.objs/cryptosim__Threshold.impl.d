lib/crypto/threshold.ml: Digest Keyring List Printf String
