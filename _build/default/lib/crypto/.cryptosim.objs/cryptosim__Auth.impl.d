lib/crypto/auth.ml: Digest Keyring Printf
