lib/crypto/keyring.mli:
