lib/crypto/digest.ml: Bytes Char Format Int64 Printf String
