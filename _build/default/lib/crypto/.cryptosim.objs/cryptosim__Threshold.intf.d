lib/crypto/threshold.mli: Digest Keyring
