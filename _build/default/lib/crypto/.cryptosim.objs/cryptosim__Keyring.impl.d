lib/crypto/keyring.ml: Array Digest Printf
