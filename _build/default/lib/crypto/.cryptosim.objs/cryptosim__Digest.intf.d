lib/crypto/digest.mli: Format
