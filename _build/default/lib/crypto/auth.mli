(** Signatures and HMACs over message digests.

    Spire authenticates every protocol message: RSA signatures on
    client-visible artifacts and pairwise HMACs on high-rate internal
    traffic. Both are simulated structurally — a tag is a hash binding
    (signer-secret, digest) — together with a CPU cost model so protocol
    layers can charge realistic signing/verification latency. *)

(** A signature produced by one principal over one digest. *)
type signature

(** A pairwise MAC between two principals over one digest. *)
type mac

(** CPU cost (microseconds) charged per operation; modelled on RSA-2048
    sign / verify and SHA-based HMAC on commodity hardware (2018-era,
    matching the paper's testbed class). *)
type cost = {
  sign_us : int;
  verify_us : int;
  mac_us : int;
  mac_verify_us : int;
}

(** Default cost model: sign 800us, verify 60us, mac 2us, mac verify 2us. *)
val default_cost : cost

(** [free_cost] charges nothing; used by unit tests that assert pure
    protocol logic. *)
val free_cost : cost

(** [sign secret digest] signs [digest] with a principal's secret. *)
val sign : Keyring.secret -> Digest.t -> signature

(** [verify keyring ~signer ~digest signature] checks that [signature]
    was produced over [digest] by [signer]'s current secret. *)
val verify :
  Keyring.t -> signer:Keyring.principal -> digest:Digest.t -> signature -> bool

(** [signature_signer s] is the claimed signer carried in the signature. *)
val signature_signer : signature -> Keyring.principal

(** [forge ~claimed_signer ~digest] builds a structurally invalid
    signature — what a Byzantine node can produce without the victim's
    secret. [verify] always rejects it; attack scenarios use this to
    exercise rejection paths. *)
val forge : claimed_signer:Keyring.principal -> digest:Digest.t -> signature

(** [mac secret ~peer digest] authenticates [digest] on the directed pair
    (owner of [secret] -> [peer]). *)
val mac : Keyring.secret -> peer:Keyring.principal -> Digest.t -> mac

(** [verify_mac keyring ~sender ~receiver ~digest mac] checks a pairwise
    MAC from the receiver's point of view. *)
val verify_mac :
  Keyring.t ->
  sender:Keyring.principal ->
  receiver:Keyring.principal ->
  digest:Digest.t ->
  mac ->
  bool
