lib/pbft/msg.mli: Bft Cryptosim Format
