lib/pbft/replica.mli: Bft Msg
