lib/pbft/replica.ml: Bft Cryptosim Delivery Env Exec_log Faults Hashtbl List Msg Option Printf Quorum Sim Types Update
