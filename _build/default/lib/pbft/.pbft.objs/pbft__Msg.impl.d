lib/pbft/msg.ml: Bft Cryptosim Format List Printf
