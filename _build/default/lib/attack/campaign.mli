(** Long-running intrusion campaign model (experiment E9).

    The attacker iterates: pick a variant, spend
    [exploit_development_us] building an exploit for it, then
    periodically attempt intrusions. An attempt against a replica
    succeeds iff the replica currently runs the exploited variant and
    is not down for recovery. A compromise ends when the replica is
    rejuvenated (fresh variant, clean image), at which point the
    exploit no longer applies to it.

    With diversity + proactive recovery the attacker's simultaneous
    holdings stay bounded (the paper's argument); the ablations
    (diversity off / recovery off) let the holdings accumulate. *)

type config = {
  exploit_development_us : int;
      (** time to build an exploit for a newly-targeted variant *)
  attempt_interval_us : int;  (** cadence of intrusion attempts *)
  retarget : [ `Cycle | `Largest_group ];
      (** how the attacker picks the next variant: round-robin or
          aim at the variant with most replicas (worst case) *)
}

type t

(** [create ~engine ~rng ~diversity ~config ~on_compromise ~on_cleanse]
    wires the campaign to a diversity model. [on_compromise r] fires
    when the attacker takes replica [r]; [on_cleanse r] when a
    rejuvenation evicts it. *)
val create :
  engine:Sim.Engine.t ->
  rng:Sim.Rng.t ->
  diversity:Recovery.Diversity.t ->
  config:config ->
  on_compromise:(Bft.Types.replica -> unit) ->
  on_cleanse:(Bft.Types.replica -> unit) ->
  t

(** [start t] begins exploit development against the first target. *)
val start : t -> unit

(** [stop t] halts the campaign. *)
val stop : t -> unit

(** [notify_rejuvenated t replica] must be called when proactive
    recovery rejuvenates [replica]: any compromise of it is cleansed
    and its fresh variant requires a new exploit. *)
val notify_rejuvenated : t -> Bft.Types.replica -> unit

(** [set_recovering t replica flag] marks a replica as down for
    recovery (attempts against it fail while down). *)
val set_recovering : t -> Bft.Types.replica -> bool -> unit

val compromised : t -> Bft.Types.replica list
val compromised_count : t -> int

(** [max_simultaneous t] is the historical maximum of simultaneous
    compromises. *)
val max_simultaneous : t -> int

(** [total_compromises t] counts compromise events over the campaign. *)
val total_compromises : t -> int

(** [exploits_developed t] counts completed exploit developments. *)
val exploits_developed : t -> int
