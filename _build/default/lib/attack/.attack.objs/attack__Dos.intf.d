lib/attack/dos.mli: Overlay Sim
