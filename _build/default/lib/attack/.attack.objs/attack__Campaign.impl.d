lib/attack/campaign.ml: Bft Hashtbl List Recovery Sim
