lib/attack/dos.ml: Hashtbl Overlay Sim
