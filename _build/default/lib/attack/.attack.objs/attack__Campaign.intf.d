lib/attack/campaign.mli: Bft Recovery Sim
