type config = {
  exploit_development_us : int;
  attempt_interval_us : int;
  retarget : [ `Cycle | `Largest_group ];
}

type t = {
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  diversity : Recovery.Diversity.t;
  config : config;
  on_compromise : Bft.Types.replica -> unit;
  on_cleanse : Bft.Types.replica -> unit;
  compromised : (Bft.Types.replica, unit) Hashtbl.t;
  recovering : (Bft.Types.replica, unit) Hashtbl.t;
  mutable exploited_variant : Recovery.Diversity.variant option;
  mutable next_cycle_variant : int;
  mutable exploits : int;
  mutable total_compromises : int;
  mutable max_simultaneous : int;
  mutable running : bool;
}

let create ~engine ~rng ~diversity ~config ~on_compromise ~on_cleanse =
  {
    engine;
    rng;
    diversity;
    config;
    on_compromise;
    on_cleanse;
    compromised = Hashtbl.create 7;
    recovering = Hashtbl.create 7;
    exploited_variant = None;
    next_cycle_variant = 0;
    exploits = 0;
    total_compromises = 0;
    max_simultaneous = 0;
    running = false;
  }

let compromised t =
  Hashtbl.fold (fun r () acc -> r :: acc) t.compromised [] |> List.sort compare

let compromised_count t = Hashtbl.length t.compromised
let max_simultaneous t = t.max_simultaneous
let total_compromises t = t.total_compromises
let exploits_developed t = t.exploits

let pick_target t =
  match t.config.retarget with
  | `Cycle ->
    let v = t.next_cycle_variant mod Recovery.Diversity.variant_space t.diversity in
    t.next_cycle_variant <- t.next_cycle_variant + 1;
    v
  | `Largest_group ->
    (* Aim at the variant shared by the most not-yet-compromised
       replicas. *)
    let best = ref 0 and best_count = ref (-1) in
    for v = 0 to Recovery.Diversity.variant_space t.diversity - 1 do
      let count =
        List.length
          (List.filter
             (fun r -> not (Hashtbl.mem t.compromised r))
             (Recovery.Diversity.replicas_running t.diversity v))
      in
      if count > !best_count then begin
        best := v;
        best_count := count
      end
    done;
    !best

let attempt t =
  match t.exploited_variant with
  | None -> ()
  | Some variant ->
    List.iter
      (fun r ->
        if
          (not (Hashtbl.mem t.compromised r))
          && not (Hashtbl.mem t.recovering r)
        then begin
          Hashtbl.replace t.compromised r ();
          t.total_compromises <- t.total_compromises + 1;
          if Hashtbl.length t.compromised > t.max_simultaneous then
            t.max_simultaneous <- Hashtbl.length t.compromised;
          t.on_compromise r
        end)
      (Recovery.Diversity.replicas_running t.diversity variant)

let rec develop_next_exploit t =
  if t.running then begin
    let target = pick_target t in
    ignore
      (Sim.Engine.schedule t.engine ~delay_us:t.config.exploit_development_us
         (fun () ->
           if t.running then begin
             t.exploits <- t.exploits + 1;
             t.exploited_variant <- Some target;
             attempt t;
             (* Keep attempting with this exploit for one development
                period, then move on to the next variant. *)
             let attempts =
               max 1 (t.config.exploit_development_us / t.config.attempt_interval_us)
             in
             let remaining = ref attempts in
             let rec attempt_loop () =
               if t.running && !remaining > 0 then begin
                 decr remaining;
                 ignore
                   (Sim.Engine.schedule t.engine
                      ~delay_us:t.config.attempt_interval_us (fun () ->
                        attempt t;
                        attempt_loop ())
                     : Sim.Engine.timer)
               end
               else develop_next_exploit t
             in
             attempt_loop ()
           end)
        : Sim.Engine.timer)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    develop_next_exploit t
  end

let stop t = t.running <- false

let notify_rejuvenated t r =
  if Hashtbl.mem t.compromised r then begin
    Hashtbl.remove t.compromised r;
    t.on_cleanse r
  end

let set_recovering t r flag =
  if flag then Hashtbl.replace t.recovering r ()
  else Hashtbl.remove t.recovering r
