(** DNP3 wire codec (simplified but structurally faithful).

    Frames carry a link-layer header (start octets [0x05 0x64], length,
    control, destination and source addresses, checksum) followed by an
    application fragment. The application functions cover what a SCADA
    master exchanges with a substation:

    - [Poll_request]: class-0 static read;
    - [Poll_response]: binary-input states plus 32-bit analog inputs;
    - [Operate]: control relay output block (trip/close a point);
    - [Operate_ack]: command confirmation with status.

    The checksum is a 16-bit ones'-complement sum rather than DNP3's
    per-block CRC-16; corruption detection behaves equivalently for the
    simulation's purposes and is exercised by tests. *)

type trip_close = Trip | Close

type app =
  | Poll_request
  | Poll_response of {
      binary_inputs : bool list;
      analog_inputs : int list;  (** signed 32-bit values *)
    }
  | Operate of { point : int; action : trip_close }
  | Operate_ack of { point : int; success : bool }

type frame = { dest : int; src : int; app : app }

(** [encode f] renders the frame as bytes. *)
val encode : frame -> string

(** [decode s] parses and verifies start octets, length and checksum. *)
val decode : string -> (frame, string) result

(** [corrupt s ~at] flips one byte — used by tests to check that the
    checksum rejects damaged frames.
    @raise Invalid_argument if [at] is out of range. *)
val corrupt : string -> at:int -> string

val pp_app : Format.formatter -> app -> unit
