(** Replica-to-client replies, threshold-signed.

    When a replica executes an update it sends the client (proxy or
    HMI) a reply carrying its threshold-signature {e share} over a
    digest that binds the execution index, the update identity, the
    resulting master state, and the reply body. The client combines
    [threshold] shares into one signature: one cryptographic check
    proves a quorum of replicas executed the update with the same
    outcome — no [f+1] vote counting on the client. *)

type body =
  | Ack  (** plain completion (status reports, reads) *)
  | Command of { rtu : int; frame : string }
      (** an encoded DNP3 frame the proxy must actuate on its RTU *)

type t = {
  replica : Bft.Types.replica;
  update_key : Bft.Types.client * int;
  exec_index : int;
  digest : Cryptosim.Digest.t;
  share : Cryptosim.Threshold.share;
  body : body;
}

(** [body_digest ~exec_index ~update_digest ~state ~body] is the digest
    replicas sign; all fields are deterministic outputs of execution, so
    correct replicas produce identical digests. *)
val body_digest :
  exec_index:int ->
  update_digest:Cryptosim.Digest.t ->
  state:Cryptosim.Digest.t ->
  body:body ->
  Cryptosim.Digest.t

val pp : Format.formatter -> t -> unit
