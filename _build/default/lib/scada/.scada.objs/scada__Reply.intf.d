lib/scada/reply.mli: Bft Cryptosim Format
