lib/scada/endpoint.mli: Bft Cryptosim Op Reply Sim
