lib/scada/rtu.mli: Format Sim
