lib/scada/rtu.ml: Array Format List Sim String
