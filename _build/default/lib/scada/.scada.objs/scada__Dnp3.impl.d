lib/scada/dnp3.ml: Buffer Bytes Char Format Int32 List Printf Result String
