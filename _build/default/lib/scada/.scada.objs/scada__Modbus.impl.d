lib/scada/modbus.ml: Array Buffer Char Format List Printf Result String
