lib/scada/proxy.mli: Bft Cryptosim Endpoint Reply Rtu Sim
