lib/scada/endpoint.ml: Bft Cryptosim Hashtbl Op Reply Sim
