lib/scada/master.mli: Bft Cryptosim Dnp3 Op Rtu
