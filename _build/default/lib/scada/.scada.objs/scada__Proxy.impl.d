lib/scada/proxy.ml: Array Bft Cryptosim Dnp3 Endpoint Hashtbl List Modbus Op Option Reply Rtu Sim
