lib/scada/hmi.ml: Endpoint Op Reply Rtu Sim
