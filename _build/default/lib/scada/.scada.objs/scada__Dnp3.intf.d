lib/scada/dnp3.mli: Format
