lib/scada/op.ml: Array Bft Buffer Char Format Int32 List Printf Rtu String
