lib/scada/modbus.mli: Format
