lib/scada/op.mli: Bft Format Rtu
