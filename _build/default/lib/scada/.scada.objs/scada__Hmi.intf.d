lib/scada/hmi.mli: Bft Cryptosim Endpoint Reply Sim
