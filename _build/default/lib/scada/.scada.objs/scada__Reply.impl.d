lib/scada/reply.ml: Bft Cryptosim Format Printf
