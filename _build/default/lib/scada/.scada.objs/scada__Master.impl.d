lib/scada/master.ml: Bft Cryptosim Dnp3 List Op Printf Rtu
