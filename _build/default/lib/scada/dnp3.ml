type trip_close = Trip | Close

type app =
  | Poll_request
  | Poll_response of { binary_inputs : bool list; analog_inputs : int list }
  | Operate of { point : int; action : trip_close }
  | Operate_ack of { point : int; success : bool }

type frame = { dest : int; src : int; app : app }

let start0 = 0x05
let start1 = 0x64

let checksum s =
  let sum = ref 0 in
  String.iter (fun c -> sum := (!sum + Char.code c) land 0xFFFF) s;
  lnot !sum land 0xFFFF

let encode_app = function
  | Poll_request ->
    let b = Buffer.create 1 in
    Buffer.add_uint8 b 0x01;
    Buffer.contents b
  | Poll_response { binary_inputs; analog_inputs } ->
    let b = Buffer.create 16 in
    Buffer.add_uint8 b 0x81;
    Buffer.add_uint8 b (List.length binary_inputs);
    List.iter (fun bit -> Buffer.add_uint8 b (if bit then 1 else 0)) binary_inputs;
    Buffer.add_uint8 b (List.length analog_inputs);
    List.iter (fun v -> Buffer.add_int32_be b (Int32.of_int v)) analog_inputs;
    Buffer.contents b
  | Operate { point; action } ->
    let b = Buffer.create 4 in
    Buffer.add_uint8 b 0x04;
    Buffer.add_uint16_be b point;
    Buffer.add_uint8 b (match action with Trip -> 0x01 | Close -> 0x41);
    Buffer.contents b
  | Operate_ack { point; success } ->
    let b = Buffer.create 4 in
    Buffer.add_uint8 b 0x84;
    Buffer.add_uint16_be b point;
    Buffer.add_uint8 b (if success then 0x00 else 0x04);
    Buffer.contents b

let encode f =
  let app = encode_app f.app in
  let body = Buffer.create (8 + String.length app) in
  Buffer.add_uint8 body 0xC4 (* link control: primary, user data *);
  Buffer.add_uint16_be body f.dest;
  Buffer.add_uint16_be body f.src;
  Buffer.add_string body app;
  let body = Buffer.contents body in
  let b = Buffer.create (4 + String.length body + 2) in
  Buffer.add_uint8 b start0;
  Buffer.add_uint8 b start1;
  Buffer.add_uint16_be b (String.length body);
  Buffer.add_string b body;
  Buffer.add_uint16_be b (checksum body);
  Buffer.contents b

let get_u8 s pos = Char.code s.[pos]
let get_u16 s pos = (get_u8 s pos lsl 8) lor get_u8 s (pos + 1)

let get_i32 s pos =
  let v =
    Int32.logor
      (Int32.shift_left (Int32.of_int (get_u16 s pos)) 16)
      (Int32.of_int (get_u16 s (pos + 2)))
  in
  Int32.to_int v

let decode_app s =
  if String.length s < 1 then Error "empty application fragment"
  else
    match get_u8 s 0 with
    | 0x01 when String.length s = 1 -> Ok Poll_request
    | 0x81 ->
      if String.length s < 2 then Error "truncated poll response"
      else begin
        let nbin = get_u8 s 1 in
        if String.length s < 2 + nbin + 1 then Error "truncated binaries"
        else begin
          let binary_inputs = List.init nbin (fun i -> get_u8 s (2 + i) <> 0) in
          let nana_pos = 2 + nbin in
          let nana = get_u8 s nana_pos in
          if String.length s <> nana_pos + 1 + (4 * nana) then
            Error "truncated analogs"
          else
            Ok
              (Poll_response
                 {
                   binary_inputs;
                   analog_inputs =
                     List.init nana (fun i -> get_i32 s (nana_pos + 1 + (4 * i)));
                 })
        end
      end
    | 0x04 when String.length s = 4 -> (
      match get_u8 s 3 with
      | 0x01 -> Ok (Operate { point = get_u16 s 1; action = Trip })
      | 0x41 -> Ok (Operate { point = get_u16 s 1; action = Close })
      | _ -> Error "bad control code")
    | 0x84 when String.length s = 4 ->
      Ok (Operate_ack { point = get_u16 s 1; success = get_u8 s 3 = 0x00 })
    | code -> Error (Printf.sprintf "unknown function 0x%02x" code)

let decode s =
  if String.length s < 6 then Error "frame too short"
  else if get_u8 s 0 <> start0 || get_u8 s 1 <> start1 then Error "bad start octets"
  else begin
    let len = get_u16 s 2 in
    if String.length s <> 4 + len + 2 then Error "length mismatch"
    else begin
      let body = String.sub s 4 len in
      let expected = get_u16 s (4 + len) in
      if checksum body <> expected then Error "checksum mismatch"
      else if len < 5 then Error "body too short"
      else begin
        let dest = get_u16 body 1 and src = get_u16 body 3 in
        Result.map
          (fun app -> { dest; src; app })
          (decode_app (String.sub body 5 (len - 5)))
      end
    end
  end

let corrupt s ~at =
  if at < 0 || at >= String.length s then invalid_arg "Dnp3.corrupt: out of range";
  let b = Bytes.of_string s in
  Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0xFF));
  Bytes.to_string b

let pp_app ppf = function
  | Poll_request -> Format.pp_print_string ppf "PollRequest"
  | Poll_response { binary_inputs; analog_inputs } ->
    Format.fprintf ppf "PollResponse(%d bin, %d ana)"
      (List.length binary_inputs) (List.length analog_inputs)
  | Operate { point; action } ->
    Format.fprintf ppf "Operate(%d,%s)" point
      (match action with Trip -> "trip" | Close -> "close")
  | Operate_ack { point; success } ->
    Format.fprintf ppf "OperateAck(%d,%b)" point success
