(** Modbus/TCP wire codec (the subset Spire's proxies use).

    Byte-accurate encoding of the MBAP header and the PDU function
    codes needed to poll an RTU and operate breakers:
    - [0x01] Read Coils (breaker states)
    - [0x03] Read Holding Registers (analog measurements)
    - [0x05] Write Single Coil (breaker open/close)
    - [0x06] Write Single Register (transformer tap)

    Responses mirror requests; exception responses carry
    [function | 0x80] and an exception code. All multi-byte fields are
    big-endian per the Modbus specification. *)

type request =
  | Read_coils of { start : int; count : int }
  | Read_holding_registers of { start : int; count : int }
  | Write_single_coil of { address : int; value : bool }
  | Write_single_register of { address : int; value : int }

type response =
  | Coils of bool list
  | Holding_registers of int list  (** 16-bit unsigned values *)
  | Coil_written of { address : int; value : bool }
  | Register_written of { address : int; value : int }
  | Exception_response of { function_code : int; exception_code : int }

type 'a frame = { transaction : int; unit_id : int; body : 'a }

(** [encode_request f] renders an ADU (MBAP header + PDU) as bytes. *)
val encode_request : request frame -> string

(** [decode_request s] parses bytes back; [Error _] describes the first
    malformation found. *)
val decode_request : string -> (request frame, string) result

val encode_response : response frame -> string
val decode_response : string -> (response frame, string) result

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
