(** Pre-order summary vectors and matrices — Prime's core data
    structures.

    Every replica [i] maintains a {e cumulative pre-order vector}
    [v] where [v.(j)] is the highest sequence number [t] such that [i]
    has received all pre-order requests [1..t] originated by replica
    [j]. Replicas continually exchange these vectors; the leader's
    {e pre-prepare} carries the full matrix (one row per reporting
    replica).

    An update [(j, t)] is {e eligible for execution} once at least
    [threshold = 2f + k + 1] rows report [row.(j) >= t]: a quorum then
    holds the update, so it can always be recovered, and the eligibility
    computation is a deterministic function of the ordered matrix — the
    heart of Prime's bounded-delay ordering. *)

type vector = int array
type t = vector array

(** [empty_vector ~n] is the all-zero vector of length [n]. *)
val empty_vector : n:int -> vector

(** [empty ~n] is the [n x n] all-zero matrix. *)
val empty : n:int -> t

(** [copy m] is a deep copy. *)
val copy : t -> t

(** [merge_vector a b] is the element-wise maximum (cumulative vectors
    only ever grow). @raise Invalid_argument on length mismatch. *)
val merge_vector : vector -> vector -> vector

(** [merge a b] merges two matrices row-wise by element maximum. *)
val merge : t -> t -> t

(** [set_row m ~row v] functionally replaces row [row] with the merge of
    the existing row and [v] (rows are cumulative too). *)
val set_row : t -> row:int -> vector -> t

(** [eligible m ~threshold] is the eligibility vector: entry [j] is the
    largest [t] such that at least [threshold] rows have [row.(j) >= t]
    (0 when fewer than [threshold] rows report anything for [j]).
    Computed as the [threshold]-th largest value of column [j]. *)
val eligible : t -> threshold:int -> vector

(** [digest m] hashes the matrix content (for prepare/commit votes). *)
val digest : t -> Cryptosim.Digest.t

(** [vector_dominates a b] is true when [a.(j) >= b.(j)] for all [j]. *)
val vector_dominates : vector -> vector -> bool

(** [is_empty m] is true when every entry is 0. *)
val is_empty : t -> bool

val equal : t -> t -> bool
val pp_vector : Format.formatter -> vector -> unit
val pp : Format.formatter -> t -> unit
