lib/prime/replica.ml: Array Bft Cryptosim Delivery Env Exec_log Faults Fun Hashtbl List Matrix Msg Option Printf Queue Quorum Sim String Types Update
