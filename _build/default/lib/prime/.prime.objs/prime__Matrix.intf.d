lib/prime/matrix.mli: Cryptosim Format
