lib/prime/msg.mli: Bft Cryptosim Format Matrix
