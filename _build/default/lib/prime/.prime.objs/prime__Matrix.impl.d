lib/prime/matrix.ml: Array Buffer Cryptosim Format String
