lib/prime/replica.mli: Bft Cryptosim Matrix Msg
