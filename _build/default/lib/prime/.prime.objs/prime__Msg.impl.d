lib/prime/msg.ml: Bft Cryptosim Format List Matrix String
