type 'a entry = { time : int; seq : int; event : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = max 64 (Array.length t.data * 2) in
  if t.len = 0 then t.data <- [||]
  else begin
    let data = Array.make cap t.data.(0) in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t ~time event =
  let entry = { time; seq = t.next_seq; event } in
  t.next_seq <- t.next_seq + 1;
  if t.len >= Array.length t.data then begin
    if Array.length t.data = 0 then t.data <- Array.make 64 entry else grow t
  end;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  (* Sift up. *)
  let i = ref (t.len - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if earlier t.data.(!i) t.data.(parent) then begin
      let tmp = t.data.(!i) in
      t.data.(!i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && earlier t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.len && earlier t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.data.(!i) in
          t.data.(!i) <- t.data.(!smallest);
          t.data.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.event)
  end

let peek_time t = if t.len = 0 then None else Some t.data.(0).time
let size t = t.len
let is_empty t = t.len = 0
