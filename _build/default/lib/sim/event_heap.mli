(** Binary min-heap of timed events.

    Events are ordered by [(time, sequence)] where [sequence] is the
    insertion order; this makes the simulation deterministic when many
    events share a timestamp. *)

type 'a t

(** [create ()] is an empty heap. *)
val create : unit -> 'a t

(** [push t ~time event] inserts [event] at [time]. *)
val push : 'a t -> time:int -> 'a -> unit

(** [pop t] removes and returns the earliest event as [(time, event)],
    or [None] if empty. *)
val pop : 'a t -> (int * 'a) option

(** [peek_time t] is the timestamp of the earliest event, if any. *)
val peek_time : 'a t -> int option

(** [size t] is the number of queued events. *)
val size : 'a t -> int

(** [is_empty t] is [size t = 0]. *)
val is_empty : 'a t -> bool
