(** Lightweight structured trace of simulation events.

    Components emit trace records (category + message + virtual time);
    tests and the scenario runner inspect them to assert ordering
    properties without coupling to log formatting. Tracing is off by
    default and cheap when disabled. *)

type record = { time_us : int; category : string; message : string }

type t

(** [create ()] is a disabled trace (records are dropped). *)
val create : unit -> t

(** [enable t] starts retaining records; [disable t] stops. *)
val enable : t -> unit

val disable : t -> unit

(** [emit t ~time_us ~category message] records an event if enabled. *)
val emit : t -> time_us:int -> category:string -> string -> unit

(** [records t] is all retained records, oldest first. *)
val records : t -> record list

(** [by_category t cat] filters records with the given category. *)
val by_category : t -> string -> record list

(** [count t] is the number of retained records. *)
val count : t -> int

(** [clear t] drops all retained records. *)
val clear : t -> unit

(** [pp_record ppf r] prints ["[12.345s] category: message"]. *)
val pp_record : Format.formatter -> record -> unit
