type record = { time_us : int; category : string; message : string }

type t = { mutable enabled : bool; mutable records : record list (* reversed *) }

let create () = { enabled = false; records = [] }
let enable t = t.enabled <- true
let disable t = t.enabled <- false

let emit t ~time_us ~category message =
  if t.enabled then t.records <- { time_us; category; message } :: t.records

let records t = List.rev t.records

let by_category t cat =
  List.filter (fun r -> String.equal r.category cat) (records t)

let count t = List.length t.records
let clear t = t.records <- []

let pp_record ppf r =
  Format.fprintf ppf "[%a] %s: %s" Engine.pp_time_us r.time_us r.category
    r.message
