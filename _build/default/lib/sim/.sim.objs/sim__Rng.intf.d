lib/sim/rng.mli:
