examples/site_failure.ml: Bft List Printf Spire Stats
