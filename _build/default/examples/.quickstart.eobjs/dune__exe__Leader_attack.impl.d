examples/leader_attack.ml: List Printf Spire Stats
