examples/quickstart.ml: Bft Format Printf Scada Spire Stats
