examples/quickstart.mli:
