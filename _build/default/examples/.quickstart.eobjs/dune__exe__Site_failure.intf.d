examples/site_failure.mli:
