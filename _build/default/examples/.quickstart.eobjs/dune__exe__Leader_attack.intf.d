examples/leader_attack.mli:
