examples/wide_area.ml: List Overlay Printf Spire Stats
