examples/recovery_drill.ml: Attack Bft Printf Recovery Sim Spire
