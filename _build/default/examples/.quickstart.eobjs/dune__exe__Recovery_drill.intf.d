examples/recovery_drill.mli:
