(* Quickstart: bring up the full intrusion-tolerant SCADA system and
   watch one supervisory command travel the entire path.

     dune exec examples/quickstart.exe

   What this builds (all on one deterministic simulation):
   - 6 SCADA-master replicas (f=1 intrusions, k=1 recovering) spread
     over 4 sites: 2 control centers and 2 data centers, connected by
     an intrusion-tolerant overlay network with east-coast WAN latencies;
   - 3 substations whose proxies poll their RTUs over byte-level DNP3
     every 100 ms and submit status reports as ordered updates;
   - 1 operator HMI.

   The script opens a breaker from the HMI and shows the confirmation
   (threshold-signed by the replicas) and the physical actuation at the
   substation. *)

let () =
  (* 1. Configure and create the system. *)
  let config =
    { (Spire.System.default_config ()) with Spire.System.substations = 3 }
  in
  let sys = Spire.System.create config in
  Spire.System.start sys;

  Printf.printf "Spire reproduction quickstart\n";
  Printf.printf "  replicas: %d (f=1, k=1) over 4 sites\n"
    (Spire.System.replica_count sys);
  Printf.printf "  substations: 3 (DNP3 polling every 100 ms), HMIs: 1\n\n";

  (* 2. Let the polling workload run for two virtual seconds. *)
  Spire.System.run sys ~duration_us:2_000_000;
  Printf.printf "after 2 s: %d status updates confirmed (mean latency %.1f ms)\n"
    (Spire.System.confirmed_updates sys)
    (Stats.Histogram.mean (Spire.System.latency_histogram sys));

  (* 3. The operator opens breaker 1 of substation 2. *)
  let hmi = Spire.System.hmi sys 0 in
  let update = Scada.Hmi.open_breaker hmi ~rtu:2 ~breaker:1 in
  Printf.printf "\nHMI issues: open breaker 1 on RTU 2 (update %s)\n"
    (Format.asprintf "%a" Bft.Update.pp update);

  Spire.System.run sys ~duration_us:1_000_000;

  (* 4. Observe the effects end to end. *)
  let proxy = Spire.System.proxy sys 2 in
  let rtu = Scada.Proxy.rtu proxy in
  Printf.printf "  HMI confirmations (threshold-signed): %d\n"
    (Scada.Hmi.confirmed_commands hmi);
  Printf.printf "  proxy actuated commands: %d\n"
    (Scada.Proxy.commands_applied proxy);
  Printf.printf "  breaker state at the device: %s\n"
    (match Scada.Rtu.breaker rtu ~index:1 with
    | Scada.Rtu.Open -> "OPEN"
    | Scada.Rtu.Closed -> "CLOSED");
  (match
     Scada.Master.breaker_intent (Spire.System.master sys 0) ~rtu:2 ~breaker:1
   with
  | Some Scada.Rtu.Open -> Printf.printf "  master state records intent: OPEN\n"
  | Some Scada.Rtu.Closed | None ->
    Printf.printf "  master state records intent: (missing!)\n");

  (* 5. Safety invariant: all correct replicas executed the exact same
     update sequence. *)
  Spire.System.assert_agreement sys;
  Printf.printf "\nagreement across all replicas: OK\n";
  Printf.printf "total updates confirmed: %d\n"
    (Spire.System.confirmed_updates sys)
