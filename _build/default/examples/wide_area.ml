(* Wide-area deployment: the paper's flagship experiment in miniature.

     dune exec examples/wide_area.exe

   Runs the 6-replica, 4-site deployment with 10 substations polling
   every 100 ms for 10 virtual minutes and prints the latency
   distribution and CDF — the data behind experiments E2/E3. *)

let () =
  let duration_us = 10 * 60 * 1_000_000 in
  Printf.printf
    "wide-area deployment: 10 substations, 100 ms polling, 10 virtual minutes\n";
  Printf.printf "(sites: Baltimore CC, Washington CC, NYC DC, Boston DC)\n\n%!";
  let sys, result = Spire.Scenarios.fault_free ~duration_us () in
  let h = result.Spire.Scenarios.hist in

  Printf.printf "updates: %d submitted, %d confirmed\n"
    result.Spire.Scenarios.submitted result.Spire.Scenarios.confirmed;
  Printf.printf "latency: mean %.1f ms, p50 %.1f, p90 %.1f, p99 %.1f, max %.1f\n"
    (Stats.Histogram.mean h)
    (Stats.Histogram.percentile h 50.)
    (Stats.Histogram.percentile h 90.)
    (Stats.Histogram.percentile h 99.)
    (Stats.Histogram.max_value h);

  Printf.printf "\nCDF:\n";
  List.iter
    (fun bound ->
      Printf.printf "  within %3.0f ms: %.4f\n" bound
        (Stats.Histogram.fraction_below h bound))
    [ 20.; 30.; 50.; 100.; 200. ];

  (* Per-minute stability, as in the 30-hour figure. *)
  Printf.printf "\nper-minute mean latency (stability over time):\n";
  List.iter
    (fun (start, summary) ->
      Printf.printf "  minute %2d: %.1f ms over %d updates\n"
        (start / 60_000_000)
        (Stats.Summary.mean summary)
        (Stats.Summary.count summary))
    (Stats.Timeseries.bucketed result.Spire.Scenarios.series
       ~bucket_us:60_000_000);

  Printf.printf "\nview changes: %d (expected 0 fault-free)\n"
    result.Spire.Scenarios.max_view;
  Printf.printf "overlay stats: %s\n"
    (let s = Overlay.Net.stats (Spire.System.net sys) in
     Printf.sprintf "submitted=%d delivered=%d dropped=%d"
       s.Overlay.Net.submitted s.Overlay.Net.delivered
       (s.Overlay.Net.dropped_link_down + s.Overlay.Net.dropped_queue_full
      + s.Overlay.Net.dropped_no_route))
