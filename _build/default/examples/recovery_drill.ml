(* Proactive recovery drill: rejuvenation under fire.

     dune exec examples/recovery_drill.exe

   Every replica is periodically rebooted from a clean image with a
   fresh diversity variant while an attacker with a working exploit
   keeps trying to re-establish a foothold. Because n = 3f + 2k + 1,
   the system keeps a full quorum even while k=1 replica is down for
   its rejuvenation and f=1 is compromised.

   Watch: (1) the service never stops, (2) state transfer brings each
   rejuvenated replica back in sync, (3) the attacker's holdings are
   wiped by each rejuvenation. *)

let () =
  let cfg =
    { (Spire.System.default_config ()) with Spire.System.substations = 5 }
  in
  let sys = Spire.System.create cfg in
  let engine = Spire.System.engine sys in

  (* Attack campaign: the attacker has an exploit for whatever variant
     replica 3 currently runs and keeps re-attacking. *)
  let diversity = Spire.System.diversity sys in
  let campaign =
    Attack.Campaign.create ~engine ~rng:(Sim.Engine.rng engine) ~diversity
      ~config:
        {
          Attack.Campaign.exploit_development_us = 20_000_000;
          attempt_interval_us = 5_000_000;
          retarget = `Largest_group;
        }
      ~on_compromise:(fun r ->
        Printf.printf "  [%6.1fs] ATTACKER compromises replica %d (variant %d)\n"
          (float_of_int (Sim.Engine.now engine) /. 1e6)
          r
          (Recovery.Diversity.variant_of diversity r);
        (Spire.System.faults sys r).Bft.Faults.silent <- true)
      ~on_cleanse:(fun r ->
        Printf.printf "  [%6.1fs] rejuvenation CLEANSES replica %d\n"
          (float_of_int (Sim.Engine.now engine) /. 1e6)
          r;
        (Spire.System.faults sys r).Bft.Faults.silent <- false)
  in
  Spire.System.on_recovery_event sys (fun phase r ->
      let now = float_of_int (Sim.Engine.now engine) /. 1e6 in
      match phase with
      | `Begin ->
        Printf.printf "  [%6.1fs] recovery begins: replica %d goes down\n" now r;
        Attack.Campaign.set_recovering campaign r true
      | `Complete ->
        Printf.printf
          "  [%6.1fs] recovery done: replica %d back (fresh variant %d)\n" now r
          (Recovery.Diversity.variant_of diversity r);
        Attack.Campaign.set_recovering campaign r false;
        Attack.Campaign.notify_rejuvenated campaign r);

  Printf.printf "Proactive recovery drill: 6 replicas, rotation every 60 s\n\n%!";
  Spire.System.start sys;
  ignore
    (Spire.System.enable_recovery sys ~rotation_period_us:60_000_000
       ~recovery_duration_us:5_000_000
      : Recovery.Scheduler.t);
  Attack.Campaign.start campaign;
  Spire.System.run sys ~duration_us:130_000_000;

  Spire.System.assert_agreement sys;
  Printf.printf "\nafter 130 s:\n";
  Printf.printf "  updates confirmed: %d (service never stopped)\n"
    (Spire.System.confirmed_updates sys);
  let max_held = Attack.Campaign.max_simultaneous campaign in
  Printf.printf "  attacker max simultaneous holdings: %d%s\n" max_held
    (if max_held <= 1 then " (within f = 1)"
     else " (variant collision let the attacker briefly exceed f)");
  Printf.printf "  agreement across correct replicas: OK\n"
