(* Leader performance attack: the experiment that motivates Prime.

     dune exec examples/leader_attack.exe

   A compromised leader delays every ordering step it controls by one
   second. Under the PBFT baseline it keeps its role forever (the delay
   stays just under the view-change timeout) and every SCADA update
   pays the full delay. Under Prime, replicas measure the leader's
   turnaround time against the network round-trip and replace it within
   a bounded interval — latency returns to normal. *)

let run name protocol =
  let duration_us = 60_000_000 in
  let attack_from_us = 10_000_000 in
  let _, r =
    Spire.Scenarios.leader_attack ~protocol ~delay_us:1_000_000
      ~attack_from_us ~duration_us ()
  in
  Printf.printf "\n--- %s ---\n" name;
  Printf.printf "attack: leader delays proposals by 1 s, starting at t=10 s\n";
  Printf.printf "view changes: %d\n" r.Spire.Scenarios.max_view;
  (* Latency per 10-second window shows the shape. *)
  List.iter
    (fun (start, summary) ->
      Printf.printf "  t=%2ds..%2ds: mean %7.1f ms (max %7.1f) over %d updates\n"
        (start / 1_000_000)
        ((start / 1_000_000) + 10)
        (Stats.Summary.mean summary)
        (Stats.Summary.max_value summary)
        (Stats.Summary.count summary))
    (Stats.Timeseries.bucketed r.Spire.Scenarios.series ~bucket_us:10_000_000);
  r

let () =
  Printf.printf "Leader slowdown attack: Prime vs the PBFT baseline\n%!";
  let prime = run "Prime (Spire)" Spire.System.Prime_protocol in
  let pbft = run "PBFT baseline" Spire.System.Pbft_protocol in
  let mean_of (r : Spire.Scenarios.latency_result) =
    Stats.Histogram.mean r.Spire.Scenarios.hist
  in
  Printf.printf "\nconclusion: overall mean %.1f ms (Prime) vs %.1f ms (PBFT)\n"
    (mean_of prime) (mean_of pbft);
  Printf.printf
    "Prime rotated the slow leader (%d view changes) and restored normal\n\
     latency; PBFT kept it (%d view changes) and served every update at\n\
     attacker-chosen speed.\n"
    prime.Spire.Scenarios.max_view pbft.Spire.Scenarios.max_view
