(* Loss of an entire control center — the network-attack scenario the
   architecture is built for.

     dune exec examples/site_failure.exe

   At t=15 s the primary control center (site 0, holding 2 of the 6
   replicas including the initial leader) is disconnected: a targeted
   DoS or a fiber cut. The remaining 4 replicas still form a quorum
   (2f+k+1 = 4), so after a short leader rotation the grid keeps being
   monitored and controlled. At t=40 s the site reconnects and its
   replicas catch up. *)

let () =
  let duration_us = 60_000_000 in
  Printf.printf "Control-center loss and reconnection\n";
  Printf.printf "  t=15s: site 0 (2 replicas, incl. leader) disconnected\n";
  Printf.printf "  t=40s: site 0 reconnected\n\n%!";
  let sys, r =
    Spire.Scenarios.site_failure ~site:0 ~fail_at_us:15_000_000
      ~restore_at_us:(Some 40_000_000) ~duration_us ()
  in
  Printf.printf "timeline (per 3 s):\n";
  List.iter
    (fun (start, summary) ->
      let marker =
        if start >= 15_000_000 && start < 40_000_000 then " <- site 0 down"
        else ""
      in
      Printf.printf "  t=%2ds: %3d confirmations, mean %6.1f ms%s\n"
        (start / 1_000_000)
        (Stats.Summary.count summary)
        (Stats.Summary.mean summary)
        marker)
    (Stats.Timeseries.bucketed r.Spire.Scenarios.series ~bucket_us:3_000_000);
  Printf.printf "\nview changes during failover: %d\n" r.Spire.Scenarios.max_view;
  Printf.printf "confirmed %d updates in total; agreement verified\n"
    r.Spire.Scenarios.confirmed;
  (* The replicas of the failed site caught up after reconnection. *)
  let l0 = Spire.System.exec_log sys 0 in
  let l2 = Spire.System.exec_log sys 2 in
  Printf.printf "replica 0 (was down) executed %d of %d updates%s\n"
    (Bft.Exec_log.length l0) (Bft.Exec_log.length l2)
    (if Bft.Exec_log.length l0 > 0 then " (catching up)" else "")
