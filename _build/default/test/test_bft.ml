(* Tests for the shared BFT substrate: quorum arithmetic, updates,
   execution logs, and the in-memory cluster harness. *)

module Q = Bft.Quorum
module U = Bft.Update
module L = Bft.Exec_log

let test_quorum_minimal () =
  let q = Q.minimal ~f:1 ~k:1 in
  Alcotest.(check int) "n = 3f+2k+1" 6 q.Q.n;
  Alcotest.(check int) "quorum = 2f+k+1" 4 (Q.quorum_size q);
  Alcotest.(check int) "exec threshold" 3 (Q.execution_threshold q);
  Alcotest.(check int) "reply threshold" 2 (Q.reply_threshold q)

let test_quorum_rejects_undersized () =
  Alcotest.check_raises "n too small"
    (Invalid_argument "Quorum.create: n < 3f + 2k + 1") (fun () ->
      ignore (Q.create ~n:5 ~f:1 ~k:1))

let test_quorum_classic_pbft () =
  (* k = 0 degenerates to the classic 3f+1 bound. *)
  let q = Q.minimal ~f:1 ~k:0 in
  Alcotest.(check int) "n" 4 q.Q.n;
  Alcotest.(check int) "quorum" 3 (Q.quorum_size q)

let test_quorum_tolerates () =
  let q = Q.minimal ~f:1 ~k:1 in
  Alcotest.(check bool) "f=1,k=1 ok" true
    (Q.tolerates_simultaneously q ~compromised:1 ~recovering:1);
  Alcotest.(check bool) "f=2 too many" false
    (Q.tolerates_simultaneously q ~compromised:2 ~recovering:0)

let prop_quorum_intersection_contains_correct =
  QCheck.Test.make
    ~name:"two quorums intersect in >= f+1 replicas (so >= 1 correct)"
    QCheck.(pair (int_bound 3) (int_bound 3))
    (fun (f, k) ->
      let q = Q.minimal ~f ~k in
      Q.two_quorum_intersection q >= f + 1)

let prop_quorum_always_available =
  QCheck.Test.make
    ~name:"a quorum of correct, non-recovering replicas always exists"
    QCheck.(pair (int_bound 3) (int_bound 3))
    (fun (f, k) ->
      let q = Q.minimal ~f ~k in
      q.Q.n - f - k >= Q.quorum_size q)

let test_leader_rotation () =
  Alcotest.(check int) "v0" 0 (Bft.Types.leader_of ~n:4 0);
  Alcotest.(check int) "v5" 1 (Bft.Types.leader_of ~n:4 5)

(* ------------------------------------------------------------------ *)
(* Update *)

let test_update_digest_ignores_submission_time () =
  let a = U.create ~client:1 ~client_seq:2 ~operation:"op" ~submitted_us:0 in
  let b = U.create ~client:1 ~client_seq:2 ~operation:"op" ~submitted_us:999 in
  Alcotest.(check bool) "same digest" true
    (Cryptosim.Digest.equal (U.digest a) (U.digest b));
  Alcotest.(check bool) "equal" true (U.equal a b)

let test_update_digest_distinguishes_content () =
  let a = U.create ~client:1 ~client_seq:2 ~operation:"op1" ~submitted_us:0 in
  let b = U.create ~client:1 ~client_seq:2 ~operation:"op2" ~submitted_us:0 in
  Alcotest.(check bool) "different digest" false
    (Cryptosim.Digest.equal (U.digest a) (U.digest b))

(* ------------------------------------------------------------------ *)
(* Exec log *)

let upd i =
  U.create ~client:0 ~client_seq:i ~operation:(string_of_int i) ~submitted_us:0

let test_exec_log_append_and_chain () =
  let l = L.create () in
  Alcotest.(check int) "pos 1" 1 (L.append l (upd 1));
  Alcotest.(check int) "pos 2" 2 (L.append l (upd 2));
  Alcotest.(check int) "length" 2 (L.length l);
  Alcotest.(check bool) "contains key" true (L.contains_key l (0, 1));
  Alcotest.(check bool) "not contains" false (L.contains_key l (0, 3))

let test_exec_log_prefix_equal () =
  let a = L.create () and b = L.create () in
  ignore (L.append a (upd 1));
  ignore (L.append a (upd 2));
  ignore (L.append b (upd 1));
  Alcotest.(check bool) "prefix" true (L.prefix_equal a b);
  ignore (L.append b (upd 3));
  Alcotest.(check bool) "diverged" false (L.prefix_equal a b)

let test_exec_log_snapshot () =
  let a = L.create () in
  ignore (L.append a (upd 1));
  ignore (L.append a (upd 2));
  let chain = L.chain_digest a in
  let b = L.create () in
  L.install_snapshot b ~updates:2 ~chain;
  Alcotest.(check int) "length adopted" 2 (L.length b);
  Alcotest.(check bool) "chains equal" true
    (Cryptosim.Digest.equal (L.chain_digest a) (L.chain_digest b));
  (* Continue identically on both: chains stay equal. *)
  ignore (L.append a (upd 3));
  ignore (L.append b (upd 3));
  Alcotest.(check bool) "still equal" true
    (Cryptosim.Digest.equal (L.chain_digest a) (L.chain_digest b));
  Alcotest.(check bool) "prefix equal across snapshot" true (L.prefix_equal a b)

let prop_exec_log_chain_detects_divergence =
  QCheck.Test.make ~name:"chain digest differs iff sequences differ"
    QCheck.(pair (list (int_bound 20)) (list (int_bound 20)))
    (fun (xs, ys) ->
      let build ops =
        let l = L.create () in
        List.iteri
          (fun i op ->
            ignore
              (L.append l
                 (U.create ~client:0 ~client_seq:i
                    ~operation:(string_of_int op) ~submitted_us:0)))
          ops;
        l
      in
      let a = build xs and b = build ys in
      let same_len = List.length xs = List.length ys in
      if same_len && xs = ys then
        Cryptosim.Digest.equal (L.chain_digest a) (L.chain_digest b)
      else if same_len then
        not (Cryptosim.Digest.equal (L.chain_digest a) (L.chain_digest b))
      else true)

let test_exec_log_nth () =
  let l = L.create () in
  ignore (L.append l (upd 5));
  ignore (L.append l (upd 6));
  Alcotest.(check int) "nth 2" 6 (L.nth l 2).U.client_seq;
  Alcotest.check_raises "out of range"
    (Invalid_argument "Exec_log.nth: position out of range") (fun () ->
      ignore (L.nth l 3))

(* ------------------------------------------------------------------ *)
(* Cluster harness *)

type echo_msg = Echo of int

type echo_node = {
  env : echo_msg Bft.Env.t;
  mutable received : (int * int) list; (* (from, value) *)
}

let test_cluster_delivery_and_partition () =
  let engine = Sim.Engine.create () in
  let cluster =
    Bft.Cluster.create ~engine ~n:3
      ~latency_us:(fun _ _ -> 100)
      ~make:(fun _ env -> { env; received = [] })
      ~deliver:(fun node ~from (Echo v) ->
        node.received <- (from, v) :: node.received)
  in
  let n0 = Bft.Cluster.replica cluster 0 in
  Bft.Env.broadcast n0.env (Echo 42);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check (list (pair int int))) "node 1 got it" [ (0, 42) ]
    (Bft.Cluster.replica cluster 1).received;
  Alcotest.(check (list (pair int int))) "node 0 did not (broadcast excludes self)"
    [] n0.received;
  (* Partition node 2 away. *)
  Bft.Cluster.partition cluster ~island:[ 2 ];
  Bft.Env.broadcast n0.env (Echo 43);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check bool) "node 2 isolated" true
    (not (List.mem (0, 43) (Bft.Cluster.replica cluster 2).received));
  Alcotest.(check bool) "node 1 still reachable" true
    (List.mem (0, 43) (Bft.Cluster.replica cluster 1).received);
  Bft.Cluster.heal cluster;
  Bft.Env.broadcast n0.env (Echo 44);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check bool) "node 2 back" true
    (List.mem (0, 44) (Bft.Cluster.replica cluster 2).received)

let test_cluster_latency_override () =
  let engine = Sim.Engine.create () in
  let arrival = ref 0 in
  let cluster =
    Bft.Cluster.create ~engine ~n:2
      ~latency_us:(fun _ _ -> 100)
      ~make:(fun _ env -> env)
      ~deliver:(fun _env ~from:_ (Echo _) -> arrival := Sim.Engine.now engine)
  in
  Bft.Cluster.set_link_delay cluster ~src:0 ~dst:1 5_000;
  let env0 = Bft.Cluster.replica cluster 0 in
  env0.Bft.Env.send 1 (Echo 1);
  Sim.Engine.run_until_quiescent engine;
  Alcotest.(check int) "overridden delay" 5_000 !arrival

let () =
  Alcotest.run "bft"
    [
      ( "quorum",
        [
          Alcotest.test_case "minimal" `Quick test_quorum_minimal;
          Alcotest.test_case "undersized rejected" `Quick
            test_quorum_rejects_undersized;
          Alcotest.test_case "classic pbft bound" `Quick test_quorum_classic_pbft;
          Alcotest.test_case "tolerates" `Quick test_quorum_tolerates;
          Alcotest.test_case "leader rotation" `Quick test_leader_rotation;
          QCheck_alcotest.to_alcotest prop_quorum_intersection_contains_correct;
          QCheck_alcotest.to_alcotest prop_quorum_always_available;
        ] );
      ( "update",
        [
          Alcotest.test_case "digest ignores time" `Quick
            test_update_digest_ignores_submission_time;
          Alcotest.test_case "digest binds content" `Quick
            test_update_digest_distinguishes_content;
        ] );
      ( "exec_log",
        [
          Alcotest.test_case "append and chain" `Quick test_exec_log_append_and_chain;
          Alcotest.test_case "prefix equal" `Quick test_exec_log_prefix_equal;
          Alcotest.test_case "snapshot" `Quick test_exec_log_snapshot;
          Alcotest.test_case "nth" `Quick test_exec_log_nth;
          QCheck_alcotest.to_alcotest prop_exec_log_chain_detects_divergence;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "delivery and partition" `Quick
            test_cluster_delivery_and_partition;
          Alcotest.test_case "latency override" `Quick test_cluster_latency_override;
        ] );
    ]
