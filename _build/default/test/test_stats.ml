(* Unit and property tests for the stats library. *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float msg expected actual =
  if not (feq ~eps:1e-6 expected actual) then
    Alcotest.failf "%s: expected %f, got %f" msg expected actual

(* ------------------------------------------------------------------ *)
(* Summary *)

let test_summary_basic () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check int) "count" 5 (Stats.Summary.count s);
  check_float "mean" 3. (Stats.Summary.mean s);
  check_float "variance" 2.5 (Stats.Summary.variance s);
  check_float "min" 1. (Stats.Summary.min_value s);
  check_float "max" 5. (Stats.Summary.max_value s);
  check_float "total" 15. (Stats.Summary.total s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.(check int) "count" 0 (Stats.Summary.count s);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.Summary.mean s))

let test_summary_single () =
  let s = Stats.Summary.create () in
  Stats.Summary.add s 7.;
  check_float "mean" 7. (Stats.Summary.mean s);
  Alcotest.(check bool) "variance nan" true
    (Float.is_nan (Stats.Summary.variance s))

let test_summary_merge () =
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  List.iter (Stats.Summary.add a) [ 1.; 2.; 3. ];
  List.iter (Stats.Summary.add b) [ 10.; 20. ];
  let m = Stats.Summary.merge a b in
  let all = Stats.Summary.create () in
  List.iter (Stats.Summary.add all) [ 1.; 2.; 3.; 10.; 20. ];
  Alcotest.(check int) "count" (Stats.Summary.count all) (Stats.Summary.count m);
  check_float "mean" (Stats.Summary.mean all) (Stats.Summary.mean m);
  check_float "variance" (Stats.Summary.variance all) (Stats.Summary.variance m)

let test_summary_merge_empty () =
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  Stats.Summary.add b 4.;
  let m = Stats.Summary.merge a b in
  Alcotest.(check int) "count" 1 (Stats.Summary.count m);
  check_float "mean" 4. (Stats.Summary.mean m)

let prop_summary_merge_equals_sequential =
  QCheck.Test.make ~name:"summary merge == sequential"
    QCheck.(pair (list (float_bound_exclusive 1000.)) (list (float_bound_exclusive 1000.)))
    (fun (xs, ys) ->
      QCheck.assume (xs <> [] && ys <> []);
      let a = Stats.Summary.create () and b = Stats.Summary.create () in
      List.iter (Stats.Summary.add a) xs;
      List.iter (Stats.Summary.add b) ys;
      let m = Stats.Summary.merge a b in
      let seq = Stats.Summary.create () in
      List.iter (Stats.Summary.add seq) (xs @ ys);
      feq ~eps:1e-6 (Stats.Summary.mean m) (Stats.Summary.mean seq)
      && Stats.Summary.count m = Stats.Summary.count seq)

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_histogram_percentiles () =
  let h = Stats.Histogram.create () in
  for i = 1 to 100 do
    Stats.Histogram.add h (float_of_int i)
  done;
  check_float "p50" 50.5 (Stats.Histogram.percentile h 50.);
  check_float "p0" 1. (Stats.Histogram.percentile h 0.);
  check_float "p100" 100. (Stats.Histogram.percentile h 100.);
  check_float "median" 50.5 (Stats.Histogram.median h);
  check_float "mean" 50.5 (Stats.Histogram.mean h)

let test_histogram_empty_raises () =
  let h = Stats.Histogram.create () in
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Histogram.percentile: empty") (fun () ->
      ignore (Stats.Histogram.percentile h 50.))

let test_histogram_fraction_below () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add h) [ 1.; 2.; 3.; 4. ];
  check_float "below 2.5" 0.5 (Stats.Histogram.fraction_below h 2.5);
  check_float "below 0" 0. (Stats.Histogram.fraction_below h 0.);
  check_float "below 10" 1. (Stats.Histogram.fraction_below h 10.);
  check_float "below 2 (inclusive)" 0.5 (Stats.Histogram.fraction_below h 2.)

let test_histogram_cdf () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add h) [ 0.; 10. ];
  let cdf = Stats.Histogram.cdf h ~points:3 in
  Alcotest.(check int) "points" 3 (List.length cdf);
  let _, last = List.nth cdf 2 in
  check_float "cdf ends at 1" 1. last

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p"
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 2 50) (float_bound_exclusive 1000.)) (pair (int_bound 100) (int_bound 100)))
    (fun (xs, (p1, p2)) ->
      QCheck.assume (List.length xs >= 2);
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.add h) xs;
      let lo = min p1 p2 and hi = max p1 p2 in
      Stats.Histogram.percentile h (float_of_int lo)
      <= Stats.Histogram.percentile h (float_of_int hi) +. 1e-9)

let prop_percentile_within_range =
  QCheck.Test.make ~name:"percentile within [min,max]"
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 50) (float_bound_exclusive 1000.)) (int_bound 100))
    (fun (xs, p) ->
      QCheck.assume (xs <> []);
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.add h) xs;
      let v = Stats.Histogram.percentile h (float_of_int p) in
      v >= Stats.Histogram.min_value h -. 1e-9
      && v <= Stats.Histogram.max_value h +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Timeseries *)

let test_timeseries_buckets () =
  let ts = Stats.Timeseries.create () in
  Stats.Timeseries.add ts ~time_us:100 1.;
  Stats.Timeseries.add ts ~time_us:900 3.;
  Stats.Timeseries.add ts ~time_us:1_100 10.;
  let buckets = Stats.Timeseries.bucketed ts ~bucket_us:1_000 in
  Alcotest.(check int) "bucket count" 2 (List.length buckets);
  let b0, s0 = List.hd buckets in
  Alcotest.(check int) "first bucket start" 0 b0;
  check_float "first bucket mean" 2. (Stats.Summary.mean s0)

let test_timeseries_monotonic_guard () =
  let ts = Stats.Timeseries.create () in
  Stats.Timeseries.add ts ~time_us:100 1.;
  Alcotest.check_raises "non-monotonic"
    (Invalid_argument "Timeseries.add: non-monotonic timestamp") (fun () ->
      Stats.Timeseries.add ts ~time_us:50 2.)

let test_timeseries_span () =
  let ts = Stats.Timeseries.create () in
  Alcotest.(check int) "empty span" 0 (Stats.Timeseries.span_us ts);
  Stats.Timeseries.add ts ~time_us:10 1.;
  Stats.Timeseries.add ts ~time_us:250 1.;
  Alcotest.(check int) "span" 240 (Stats.Timeseries.span_us ts)

let test_timeseries_max_in_buckets () =
  let ts = Stats.Timeseries.create () in
  Stats.Timeseries.add ts ~time_us:0 1.;
  Stats.Timeseries.add ts ~time_us:10 5.;
  Stats.Timeseries.add ts ~time_us:1_005 2.;
  let maxes = Stats.Timeseries.max_in_buckets ts ~bucket_us:1_000 in
  Alcotest.(check int) "buckets" 2 (List.length maxes);
  check_float "max of first" 5. (snd (List.hd maxes))

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let t = Stats.Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Stats.Table.add_row t [ "1"; "2" ];
  Stats.Table.add_row t [ "333"; "4" ];
  Alcotest.(check int) "rows" 2 (Stats.Table.row_count t);
  let rendered = Format.asprintf "%a" Stats.Table.render t in
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
    loop 0
  in
  Alcotest.(check bool) "contains title" true (contains rendered "demo");
  Alcotest.(check bool) "contains padded cell" true (contains rendered "333")

let test_table_arity_guard () =
  let t = Stats.Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Stats.Table.add_row t [ "1" ])

let () =
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "basic" `Quick test_summary_basic;
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "single" `Quick test_summary_single;
          Alcotest.test_case "merge" `Quick test_summary_merge;
          Alcotest.test_case "merge with empty" `Quick test_summary_merge_empty;
          QCheck_alcotest.to_alcotest prop_summary_merge_equals_sequential;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "empty raises" `Quick test_histogram_empty_raises;
          Alcotest.test_case "fraction below" `Quick test_histogram_fraction_below;
          Alcotest.test_case "cdf" `Quick test_histogram_cdf;
          QCheck_alcotest.to_alcotest prop_percentile_monotone;
          QCheck_alcotest.to_alcotest prop_percentile_within_range;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "buckets" `Quick test_timeseries_buckets;
          Alcotest.test_case "monotonic guard" `Quick
            test_timeseries_monotonic_guard;
          Alcotest.test_case "span" `Quick test_timeseries_span;
          Alcotest.test_case "max in buckets" `Quick
            test_timeseries_max_in_buckets;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity guard" `Quick test_table_arity_guard;
        ] );
    ]
