(* Integration tests for the full Spire system: configuration calculus,
   end-to-end deployment, attacks, recovery, and site failures.

   These are the heaviest tests in the suite (each spins up the full
   overlay + replicas + proxies); durations are kept short. *)

module CC = Spire.Config_calc
module Sys_ = Spire.System

(* ------------------------------------------------------------------ *)
(* Config calculus (experiment E1 logic) *)

let test_required_replicas () =
  Alcotest.(check int) "f=1 k=0" 4 (CC.required_replicas ~f:1 ~k:0);
  Alcotest.(check int) "f=1 k=1" 6 (CC.required_replicas ~f:1 ~k:1);
  Alcotest.(check int) "f=2 k=1" 9 (CC.required_replicas ~f:2 ~k:1);
  Alcotest.(check int) "f=3 k=2" 14 (CC.required_replicas ~f:3 ~k:2)

let test_minimal_n_site_constraint () =
  (* 4 sites, f=1, k=1: 6 replicas suffice ({2,2,1,1}). *)
  Alcotest.(check int) "4 sites" 6 (CC.minimal_n ~f:1 ~k:1 ~sites:4);
  (* 2 sites need more: each site holds n/2, and losing one must leave
     a quorum of 4 -> n = 8. *)
  Alcotest.(check int) "2 sites" 8 (CC.minimal_n ~f:1 ~k:1 ~sites:2);
  (* 3 sites: ceil(n/3) <= n - 4 -> n = 6 ({2,2,2}). *)
  Alcotest.(check int) "3 sites" 6 (CC.minimal_n ~f:1 ~k:1 ~sites:3)

let test_minimal_config_valid () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "valid" true (CC.valid c);
      Alcotest.(check bool) "tolerates site loss" true (CC.tolerates_site_loss c);
      Alcotest.(check int) "2 CCs" 2 (CC.control_centers c))
    (CC.standard_table ())

let test_standard_table_shape () =
  let table = CC.standard_table () in
  Alcotest.(check int) "27 rows (3f x 3k x 3sites)" 27 (List.length table);
  (* The flagship configuration from the paper: f=1, k=1, 4 sites, 6
     replicas 2+2+1+1. *)
  let flagship =
    List.find (fun c -> c.CC.f = 1 && c.CC.k = 1 && List.length c.CC.sites = 4) table
  in
  Alcotest.(check int) "flagship n" 6 flagship.CC.n;
  Alcotest.(check (list int)) "flagship spread" [ 2; 2; 1; 1 ]
    (List.map snd flagship.CC.sites)

let prop_site_loss_bound =
  QCheck.Test.make ~name:"minimal config always tolerates any site loss"
    QCheck.(triple (int_range 0 3) (int_range 0 3) (int_range 2 6))
    (fun (f, k, sites) ->
      QCheck.assume (f + k > 0);
      let c = CC.minimal_config ~f ~k ~sites ~control_centers:2 in
      CC.valid c && CC.tolerates_site_loss c)

let prop_minimal_n_is_minimal =
  QCheck.Test.make ~name:"minimal n: n-1 violates a constraint"
    QCheck.(triple (int_range 0 2) (int_range 0 2) (int_range 2 5))
    (fun (f, k, sites) ->
      QCheck.assume (f + k > 0);
      let n = CC.minimal_n ~f ~k ~sites in
      let q = CC.quorum ~f ~k in
      let smaller = n - 1 in
      smaller < CC.required_replicas ~f ~k
      || smaller < sites
      || smaller - ((smaller + sites - 1) / sites) < q)

(* ------------------------------------------------------------------ *)
(* End-to-end system *)

let short_config () =
  { (Sys_.default_config ()) with Sys_.substations = 4; poll_interval_us = 50_000 }

let test_system_fault_free_end_to_end () =
  let sys = Sys_.create (short_config ()) in
  Sys_.start sys;
  Sys_.run sys ~duration_us:3_000_000;
  Sys_.assert_agreement sys;
  (* 4 substations x 20 polls/s x 3s = 240 updates; allow in-flight tail. *)
  Alcotest.(check bool) "most updates confirmed" true
    (Sys_.confirmed_updates sys >= 220);
  let hist = Sys_.latency_histogram sys in
  Alcotest.(check bool) "p99 under 100ms (wide area)" true
    (Stats.Histogram.percentile hist 99. < 100.);
  (* Masters saw all RTUs. *)
  Alcotest.(check int) "master knows all RTUs" 4
    (List.length (Scada.Master.known_rtus (Sys_.master sys 0)))

let test_system_hmi_command_reaches_rtu () =
  let sys = Sys_.create (short_config ()) in
  Sys_.start sys;
  ignore
    (Sim.Engine.schedule_at (Sys_.engine sys) ~time_us:500_000 (fun () ->
         ignore (Scada.Hmi.open_breaker (Sys_.hmi sys 0) ~rtu:2 ~breaker:1))
      : Sim.Engine.timer);
  Sys_.run sys ~duration_us:3_000_000;
  Sys_.assert_agreement sys;
  (* The command executed, was threshold-confirmed at the HMI, and the
     proxy actuated the RTU. *)
  Alcotest.(check bool) "hmi confirmed" true
    (Scada.Hmi.confirmed_commands (Sys_.hmi sys 0) >= 1);
  Alcotest.(check int) "proxy actuated" 1
    (Scada.Proxy.commands_applied (Sys_.proxy sys 2));
  Alcotest.(check bool) "breaker physically open" true
    (Scada.Rtu.breaker (Scada.Proxy.rtu (Sys_.proxy sys 2)) ~index:1 = Scada.Rtu.Open);
  (* And the replicated masters recorded the operator intent. *)
  Alcotest.(check bool) "intent in master" true
    (Scada.Master.breaker_intent (Sys_.master sys 1) ~rtu:2 ~breaker:1
    = Some Scada.Rtu.Open)

let test_system_pbft_baseline_works_fault_free () =
  let cfg = { (short_config ()) with Sys_.protocol = Sys_.Pbft_protocol } in
  let sys = Sys_.create cfg in
  Sys_.start sys;
  Sys_.run sys ~duration_us:3_000_000;
  Sys_.assert_agreement sys;
  Alcotest.(check bool) "pbft confirms updates" true
    (Sys_.confirmed_updates sys >= 200)

let test_system_crashed_replica_tolerated () =
  let sys = Sys_.create (short_config ()) in
  Sys_.start sys;
  ignore
    (Sim.Engine.schedule_at (Sys_.engine sys) ~time_us:500_000 (fun () ->
         Sys_.crash_replica sys 5)
      : Sim.Engine.timer);
  Sys_.run sys ~duration_us:3_000_000;
  Sys_.assert_agreement sys;
  Alcotest.(check bool) "service continues" true
    (Sys_.confirmed_updates sys >= 200)

let test_system_site_failure_service_continues () =
  let sys = Sys_.create (short_config ()) in
  Sys_.start sys;
  ignore
    (Sim.Engine.schedule_at (Sys_.engine sys) ~time_us:1_000_000 (fun () ->
         Sys_.kill_site sys 0)
      : Sim.Engine.timer);
  Sys_.run sys ~duration_us:5_000_000;
  Sys_.assert_agreement sys;
  (* Losing control center 0 (2 replicas incl. the leader) must not stop
     the service: the other 4 replicas form a quorum. *)
  let confirmed = Sys_.confirmed_updates sys in
  Alcotest.(check bool)
    (Printf.sprintf "service survived site loss (confirmed=%d)" confirmed)
    true (confirmed >= 280)

let test_system_leader_slowdown_prime_recovers () =
  let sys = Sys_.create (short_config ()) in
  Sys_.start sys;
  ignore
    (Sim.Engine.schedule_at (Sys_.engine sys) ~time_us:1_000_000 (fun () ->
         Sys_.set_leader_delay sys ~delay_us:2_000_000)
      : Sim.Engine.timer);
  Sys_.run sys ~duration_us:8_000_000;
  Sys_.assert_agreement sys;
  (* Prime suspected and replaced the slow leader. *)
  Alcotest.(check bool) "view advanced" true (Sys_.view_of sys 1 >= 1);
  Alcotest.(check bool) "leader moved" true (Sys_.current_leader sys <> 0)

let test_system_proactive_recovery_full_cycle () =
  let sys = Sys_.create (short_config ()) in
  let events = ref [] in
  Sys_.on_recovery_event sys (fun phase r -> events := (phase, r) :: !events);
  Sys_.start sys;
  let sched =
    Sys_.enable_recovery sys ~rotation_period_us:3_000_000
      ~recovery_duration_us:300_000
  in
  Sys_.run sys ~duration_us:7_000_000;
  Sys_.assert_agreement sys;
  (* Two full rotations: every replica recovered at least once. *)
  Alcotest.(check bool) "recoveries happened" true
    (Recovery.Scheduler.recoveries_completed sched >= 6);
  let recovered =
    List.sort_uniq compare
      (List.filter_map (function `Complete, r -> Some r | `Begin, _ -> None) !events)
  in
  Alcotest.(check (list int)) "all replicas rotated" [ 0; 1; 2; 3; 4; 5 ] recovered;
  (* Diversity redraws happened. *)
  Alcotest.(check bool) "incarnations advanced" true
    (Recovery.Diversity.incarnation (Sys_.diversity sys) 0 >= 1);
  (* Service kept flowing throughout. *)
  Alcotest.(check bool) "service continued" true (Sys_.confirmed_updates sys >= 400)

let test_system_recovery_requires_prime () =
  let cfg = { (short_config ()) with Sys_.protocol = Sys_.Pbft_protocol } in
  let sys = Sys_.create cfg in
  Alcotest.check_raises "pbft rejected"
    (Invalid_argument "System.enable_recovery: recovery requires the Prime protocol")
    (fun () ->
      ignore
        (Sys_.enable_recovery sys ~rotation_period_us:1_000_000
           ~recovery_duration_us:100_000))

let test_system_reactive_recovery_cleanses_silent_replica () =
  (* A compromised (silent) replica is accused by its peers and
     rejuvenated within seconds — long before its rotation slot. *)
  let sys = Sys_.create (short_config ()) in
  let completed = ref [] in
  Sys_.on_recovery_event sys (fun phase r ->
      if phase = `Complete then completed := r :: !completed);
  Sys_.start sys;
  ignore
    (Sys_.enable_recovery sys ~rotation_period_us:600_000_000
       (* rotation far beyond the test horizon: any recovery we see is
          reactive *)
       ~recovery_duration_us:200_000
      : Recovery.Scheduler.t);
  Sys_.enable_reactive_recovery sys ~silence_threshold_us:1_000_000
    ~poll_interval_us:250_000;
  ignore
    (Sim.Engine.schedule_at (Sys_.engine sys) ~time_us:500_000 (fun () ->
         (Sys_.faults sys 3).Bft.Faults.silent <- true)
      : Sim.Engine.timer);
  Sys_.run sys ~duration_us:6_000_000;
  Sys_.assert_agreement sys;
  Alcotest.(check bool) "replica 3 reactively recovered" true
    (List.mem 3 !completed);
  (* Rejuvenation resets the fault (clean image). *)
  Alcotest.(check bool) "silence cleansed" false
    (Sys_.faults sys 3).Bft.Faults.silent;
  (* No spurious recoveries of honest replicas. *)
  Alcotest.(check bool) "no witch hunts" true
    (List.for_all (fun r -> r = 3) !completed)

let test_system_reactive_requires_recovery () =
  let sys = Sys_.create (short_config ()) in
  Alcotest.check_raises "requires proactive first"
    (Invalid_argument "System.enable_reactive_recovery: call enable_recovery first")
    (fun () ->
      Sys_.enable_reactive_recovery sys ~silence_threshold_us:1_000_000
        ~poll_interval_us:250_000)

let test_system_site_isolation_and_reconnect () =
  (* The paper's actual scenario: the control center is cut off the
     network, its replicas keep running, and after reconnection they
     adopt the quorum's view from live traffic (no state transfer). *)
  let sys = Sys_.create (short_config ()) in
  Sys_.start sys;
  ignore
    (Sim.Engine.schedule_at (Sys_.engine sys) ~time_us:1_000_000 (fun () ->
         Sys_.isolate_site sys 0)
      : Sim.Engine.timer);
  ignore
    (Sim.Engine.schedule_at (Sys_.engine sys) ~time_us:5_000_000 (fun () ->
         Sys_.reconnect_site sys 0)
      : Sim.Engine.timer);
  Sys_.run sys ~duration_us:10_000_000;
  Sys_.assert_agreement sys;
  (* Service survived the isolation... *)
  Alcotest.(check bool) "service survived" true
    (Sys_.confirmed_updates sys >= 550);
  (* ...and the isolated replicas adopted the new view after
     reconnection and caught up on the ordered history. *)
  let majority_view = Sys_.view_of sys 2 in
  Alcotest.(check bool) "view advanced during isolation" true
    (majority_view >= 1);
  Alcotest.(check int) "replica 0 adopted the view" majority_view
    (Sys_.view_of sys 0);
  let l0 = Sys_.exec_log sys 0 and l2 = Sys_.exec_log sys 2 in
  Alcotest.(check bool) "replica 0 caught up" true
    (Bft.Exec_log.length l0 >= Bft.Exec_log.length l2 - 50)

let test_system_tap_command_end_to_end () =
  let sys = Sys_.create (short_config ()) in
  Sys_.start sys;
  ignore
    (Sim.Engine.schedule_at (Sys_.engine sys) ~time_us:300_000 (fun () ->
         ignore (Scada.Hmi.set_tap (Sys_.hmi sys 0) ~rtu:1 ~position:(-5)))
      : Sim.Engine.timer);
  Sys_.run sys ~duration_us:2_000_000;
  Sys_.assert_agreement sys;
  Alcotest.(check int) "tap moved at the device" (-5)
    (Scada.Rtu.read_status (Scada.Proxy.rtu (Sys_.proxy sys 1))).Scada.Rtu.tap_position

let test_scenarios_throughput_smoke () =
  let _, r =
    Spire.Scenarios.throughput ~substations:8 ~poll_interval_us:50_000
      ~duration_us:2_000_000 ()
  in
  Alcotest.(check bool) "confirms most" true
    (float_of_int r.Spire.Scenarios.confirmed
     /. float_of_int (max 1 r.Spire.Scenarios.submitted)
    > 0.9)

let () =
  Alcotest.run "spire"
    [
      ( "config_calc",
        [
          Alcotest.test_case "required replicas" `Quick test_required_replicas;
          Alcotest.test_case "minimal n per sites" `Quick
            test_minimal_n_site_constraint;
          Alcotest.test_case "table valid" `Quick test_minimal_config_valid;
          Alcotest.test_case "table shape" `Quick test_standard_table_shape;
          QCheck_alcotest.to_alcotest prop_site_loss_bound;
          QCheck_alcotest.to_alcotest prop_minimal_n_is_minimal;
        ] );
      ( "system",
        [
          Alcotest.test_case "fault-free end to end" `Quick
            test_system_fault_free_end_to_end;
          Alcotest.test_case "hmi command reaches rtu" `Quick
            test_system_hmi_command_reaches_rtu;
          Alcotest.test_case "pbft baseline" `Quick
            test_system_pbft_baseline_works_fault_free;
          Alcotest.test_case "crashed replica tolerated" `Quick
            test_system_crashed_replica_tolerated;
          Alcotest.test_case "site failure" `Quick
            test_system_site_failure_service_continues;
          Alcotest.test_case "leader slowdown (prime)" `Quick
            test_system_leader_slowdown_prime_recovers;
          Alcotest.test_case "proactive recovery cycle" `Quick
            test_system_proactive_recovery_full_cycle;
          Alcotest.test_case "recovery requires prime" `Quick
            test_system_recovery_requires_prime;
          Alcotest.test_case "reactive recovery cleanses" `Quick
            test_system_reactive_recovery_cleanses_silent_replica;
          Alcotest.test_case "reactive requires proactive" `Quick
            test_system_reactive_requires_recovery;
          Alcotest.test_case "site isolation + reconnect" `Quick
            test_system_site_isolation_and_reconnect;
          Alcotest.test_case "tap command end to end" `Quick
            test_system_tap_command_end_to_end;
          Alcotest.test_case "throughput scenario smoke" `Quick
            test_scenarios_throughput_smoke;
        ] );
    ]
