(* Tests for the attack library: intrusion campaigns and DoS drivers. *)

module C = Attack.Campaign
module D = Recovery.Diversity

let campaign_config =
  {
    C.exploit_development_us = 100_000;
    attempt_interval_us = 20_000;
    retarget = `Largest_group;
  }

let make_campaign ?(variants = 4) ?(n = 6) ?(config = campaign_config) engine =
  let rng = Sim.Rng.create 7L in
  let diversity = D.create ~variants ~n ~rng:(Sim.Rng.create 8L) in
  let compromised_log = ref [] in
  let cleansed_log = ref [] in
  let campaign =
    C.create ~engine ~rng ~diversity ~config
      ~on_compromise:(fun r -> compromised_log := r :: !compromised_log)
      ~on_cleanse:(fun r -> cleansed_log := r :: !cleansed_log)
  in
  (campaign, diversity, compromised_log, cleansed_log)

let test_campaign_compromises_matching_variant () =
  let engine = Sim.Engine.create () in
  let campaign, diversity, compromised_log, _ = make_campaign engine in
  C.start campaign;
  Sim.Engine.run engine ~until_us:150_000;
  (* After the first exploit lands, the largest variant group is
     compromised. *)
  Alcotest.(check bool) "someone compromised" true (!compromised_log <> []);
  List.iter
    (fun r ->
      let v = D.variant_of diversity r in
      let others = C.compromised campaign in
      Alcotest.(check bool) "compromised replica is on a hit variant" true
        (List.exists (fun r' -> D.variant_of diversity r' = v) others))
    !compromised_log

let test_campaign_without_diversity_takes_everything () =
  let engine = Sim.Engine.create () in
  let campaign, _, _, _ = make_campaign ~variants:1 engine in
  C.start campaign;
  Sim.Engine.run engine ~until_us:200_000;
  (* One exploit applies to every replica. *)
  Alcotest.(check int) "all replicas compromised" 6 (C.compromised_count campaign);
  Alcotest.(check int) "max simultaneous" 6 (C.max_simultaneous campaign)

let test_campaign_rejuvenation_cleanses () =
  let engine = Sim.Engine.create () in
  let campaign, diversity, _, cleansed_log = make_campaign ~variants:1 engine in
  C.start campaign;
  Sim.Engine.run engine ~until_us:200_000;
  let victim = List.hd (C.compromised campaign) in
  ignore (D.rejuvenate diversity victim : int);
  C.notify_rejuvenated campaign victim;
  Alcotest.(check bool) "victim cleansed" true
    (not (List.mem victim (C.compromised campaign)));
  Alcotest.(check (list int)) "cleanse callback" [ victim ] !cleansed_log

let test_campaign_recovering_replicas_protected () =
  let engine = Sim.Engine.create () in
  let campaign, _, _, _ = make_campaign ~variants:1 engine in
  C.set_recovering campaign 0 true;
  C.start campaign;
  Sim.Engine.run engine ~until_us:200_000;
  Alcotest.(check bool) "replica 0 untouched while down" true
    (not (List.mem 0 (C.compromised campaign)));
  (* Once back up, the next attempt takes it. *)
  C.set_recovering campaign 0 false;
  Sim.Engine.run engine ~until_us:400_000;
  Alcotest.(check bool) "replica 0 compromised after return" true
    (List.mem 0 (C.compromised campaign))

let test_campaign_stop_halts_attempts () =
  let engine = Sim.Engine.create () in
  let campaign, _, _, _ = make_campaign ~variants:1 engine in
  C.start campaign;
  C.stop campaign;
  Sim.Engine.run engine ~until_us:500_000;
  Alcotest.(check int) "no compromises after stop" 0 (C.compromised_count campaign)

(* ------------------------------------------------------------------ *)
(* DoS driver *)

type junk_probe = Probe

let test_dos_flood_consumes_capacity () =
  let engine = Sim.Engine.create () in
  let topo = Overlay.Topology.create ~nodes:2 in
  Overlay.Topology.add_link topo ~a:0 ~b:1 ~latency_us:100
    ~bandwidth_bps:100_000;
  let net : junk_probe Overlay.Net.t = Overlay.Net.create engine topo () in
  let dos = Attack.Dos.create ~engine in
  let handle =
    Attack.Dos.flood dos ~net ~src:0 ~dst:1 ~frame_bytes:1_000
      ~frames_per_burst:5 ~burst_interval_us:50_000
  in
  Alcotest.(check int) "one active attack" 1 (Attack.Dos.active dos);
  Sim.Engine.run engine ~until_us:1_000_000;
  let stats = Overlay.Net.stats net in
  Alcotest.(check bool) "junk generated" true (stats.Overlay.Net.junk_frames >= 90);
  Attack.Dos.stop dos handle;
  let junk_before = (Overlay.Net.stats net).Overlay.Net.junk_frames in
  Sim.Engine.run engine ~until_us:2_000_000;
  Alcotest.(check int) "stopped" junk_before
    (Overlay.Net.stats net).Overlay.Net.junk_frames

let test_dos_control_traffic_survives_bulk_flood () =
  let engine = Sim.Engine.create () in
  let topo = Overlay.Topology.create ~nodes:3 in
  (* Attacker at node 2 floods node 1 through the same link used by
     node 0's control traffic. *)
  Overlay.Topology.add_link topo ~a:0 ~b:1 ~latency_us:1_000
    ~bandwidth_bps:50_000;
  Overlay.Topology.add_link topo ~a:2 ~b:0 ~latency_us:100
    ~bandwidth_bps:1_000_000;
  let net : junk_probe Overlay.Net.t = Overlay.Net.create engine topo () in
  let dos = Attack.Dos.create ~engine in
  ignore
    (Attack.Dos.flood dos ~net ~src:2 ~dst:1 ~frame_bytes:2_000
       ~frames_per_burst:10 ~burst_interval_us:20_000
      : int);
  let delivered = ref [] in
  Overlay.Net.set_handler net 1 (fun d ->
      delivered := (d.Overlay.Net.delivered_us - d.Overlay.Net.sent_us) :: !delivered);
  (* Send control frames periodically during the flood. *)
  ignore
    (Sim.Engine.periodic engine ~interval_us:100_000 (fun () ->
         Overlay.Net.send net ~src:0 ~dst:1 ~size_bytes:200
           ~mode:Overlay.Net.Shortest Probe));
  Sim.Engine.run engine ~until_us:2_000_000;
  Alcotest.(check bool) "control frames delivered" true
    (List.length !delivered >= 15);
  (* Control class preempts bulk junk: waits at most one junk frame's
     serialisation (2000B @ 50kB/s = 40ms) plus its own. *)
  List.iter
    (fun lat -> Alcotest.(check bool) "latency bounded during flood" true (lat < 60_000))
    !delivered

let test_dos_control_class_flood_fairness () =
  (* Even when the attacker marks junk as Control, round-robin source
     fairness bounds the victim's added delay to ~one attacker frame
     per own frame. *)
  let engine = Sim.Engine.create () in
  let topo = Overlay.Topology.create ~nodes:3 in
  Overlay.Topology.add_link topo ~a:0 ~b:1 ~latency_us:1_000
    ~bandwidth_bps:50_000;
  Overlay.Topology.add_link topo ~a:2 ~b:0 ~latency_us:100
    ~bandwidth_bps:1_000_000;
  let net : junk_probe Overlay.Net.t = Overlay.Net.create engine topo () in
  let dos = Attack.Dos.create ~engine in
  ignore
    (Attack.Dos.flood_control_class dos ~net ~src:2 ~dst:1 ~frame_bytes:1_000
       ~frames_per_burst:5 ~burst_interval_us:50_000
      : int);
  let delivered = ref [] in
  Overlay.Net.set_handler net 1 (fun d ->
      delivered := (d.Overlay.Net.delivered_us - d.Overlay.Net.sent_us) :: !delivered);
  ignore
    (Sim.Engine.periodic engine ~interval_us:100_000 (fun () ->
         Overlay.Net.send net ~src:0 ~dst:1 ~size_bytes:200
           ~mode:Overlay.Net.Shortest Probe));
  Sim.Engine.run engine ~until_us:2_000_000;
  Alcotest.(check bool) "still delivered" true (List.length !delivered >= 15);
  (* Fair share: the victim alternates with the attacker, so waits are
     bounded by a couple of junk serialisations (~20ms each), not the
     full backlog. *)
  List.iter
    (fun lat ->
      Alcotest.(check bool) "fairness bounds delay" true (lat < 100_000))
    !delivered

let () =
  Alcotest.run "attack"
    [
      ( "campaign",
        [
          Alcotest.test_case "compromises matching variant" `Quick
            test_campaign_compromises_matching_variant;
          Alcotest.test_case "no diversity -> total compromise" `Quick
            test_campaign_without_diversity_takes_everything;
          Alcotest.test_case "rejuvenation cleanses" `Quick
            test_campaign_rejuvenation_cleanses;
          Alcotest.test_case "recovering replicas protected" `Quick
            test_campaign_recovering_replicas_protected;
          Alcotest.test_case "stop" `Quick test_campaign_stop_halts_attempts;
        ] );
      ( "dos",
        [
          Alcotest.test_case "flood consumes capacity" `Quick
            test_dos_flood_consumes_capacity;
          Alcotest.test_case "control survives bulk flood" `Quick
            test_dos_control_traffic_survives_bulk_flood;
          Alcotest.test_case "fairness vs control-class flood" `Quick
            test_dos_control_class_flood_fairness;
        ] );
    ]
