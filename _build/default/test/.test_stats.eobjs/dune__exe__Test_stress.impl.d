test/test_stress.ml: Alcotest Array Bft Fun Int64 List Overlay Prime Printf QCheck QCheck_alcotest Sim Spire
