test/test_crypto.ml: Alcotest Cryptosim List QCheck QCheck_alcotest String
