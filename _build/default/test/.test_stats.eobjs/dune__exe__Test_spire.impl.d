test/test_spire.ml: Alcotest Bft List Printf QCheck QCheck_alcotest Recovery Scada Sim Spire Stats
