test/test_pbft.ml: Alcotest Bft Hashtbl List Pbft Printf Sim
