test/test_bft.mli:
