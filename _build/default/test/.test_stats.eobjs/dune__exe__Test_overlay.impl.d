test/test_overlay.ml: Alcotest List Option Overlay Printf QCheck QCheck_alcotest Sim
