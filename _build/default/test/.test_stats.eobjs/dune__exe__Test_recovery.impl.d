test/test_recovery.ml: Alcotest Cryptosim List Printf QCheck QCheck_alcotest Recovery Sim
