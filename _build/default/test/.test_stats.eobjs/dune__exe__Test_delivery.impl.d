test/test_delivery.ml: Alcotest Bft Cryptosim List Overlay Printf QCheck QCheck_alcotest Sim
