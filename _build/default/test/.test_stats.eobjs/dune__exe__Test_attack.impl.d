test/test_attack.ml: Alcotest Attack List Overlay Recovery Sim
