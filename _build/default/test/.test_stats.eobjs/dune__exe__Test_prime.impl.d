test/test_prime.ml: Alcotest Array Bft Cryptosim Fun Hashtbl List Prime Printf QCheck QCheck_alcotest Sim
