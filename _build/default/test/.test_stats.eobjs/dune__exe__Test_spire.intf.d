test/test_spire.mli:
