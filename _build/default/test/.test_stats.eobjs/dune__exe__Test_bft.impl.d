test/test_bft.ml: Alcotest Bft Cryptosim List QCheck QCheck_alcotest Sim
