test/test_stats.ml: Alcotest Float Format List QCheck QCheck_alcotest Stats String
