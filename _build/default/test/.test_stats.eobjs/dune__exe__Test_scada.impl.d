test/test_scada.ml: Alcotest Array Bft Cryptosim List QCheck QCheck_alcotest Result Scada Sim String
