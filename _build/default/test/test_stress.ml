(* Randomized stress tests: agreement must survive arbitrary (bounded)
   fault schedules. Each qcheck case derives a fault script from the
   generated seed — crashes, restarts, silences, leader delays, link
   kills — always within the f=1/k=1 budget, runs the full system, and
   asserts that all correct replicas agree and the service made
   progress. *)

let quorum_6 = Bft.Quorum.create ~n:6 ~f:1 ~k:1

let fast_prime quorum =
  {
    (Prime.Replica.default_config quorum) with
    Prime.Replica.aru_interval_us = 2_000;
    proposal_interval_us = 5_000;
    tat_threshold_us = 100_000;
    viewchange_timeout_us = 400_000;
    watchdog_interval_us = 10_000;
    checkpoint_interval = 16;
  }

(* One stress run over the in-memory cluster: a scripted adversary
   derived from [seed] misbehaves within budget while clients submit. *)
let run_cluster_stress seed =
  let engine = Sim.Engine.create ~seed:(Int64.of_int seed) () in
  let rng = Sim.Engine.rng engine in
  let n = 6 in
  let cluster =
    Bft.Cluster.create ~engine ~n
      ~latency_us:(fun _ _ -> 500 + Sim.Rng.int rng 2_000)
      ~make:(fun _ env ->
        let r = Prime.Replica.create (fast_prime quorum_6) env ~execute:(fun _ _ -> ()) in
        Prime.Replica.start r;
        r)
      ~deliver:(fun r ~from msg -> Prime.Replica.handle r ~from msg)
  in
  (* Adversary: pick ONE victim replica (f=1 budget) and a misbehaviour. *)
  let victim = Sim.Rng.int rng n in
  (* Submissions: 40 updates over 2 virtual seconds. Origins avoid the
     victim (clients fail over away from unresponsive origins; the
     cluster harness has no endpoint retry layer, so model the outcome
     directly). Client sequences are contiguous from 1 per client, as
     the endpoint layer guarantees. *)
  for i = 1 to 40 do
    let origin = (victim + 1 + Sim.Rng.int rng (n - 1)) mod n in
    let time_us = 10_000 + Sim.Rng.int rng 2_000_000 in
    ignore
      (Sim.Engine.schedule_at engine ~time_us (fun () ->
           Prime.Replica.submit
             (Bft.Cluster.replica cluster origin)
             (Bft.Update.create ~client:(i mod 3)
                ~client_seq:(((i - 1) / 3) + 1)
                ~operation:(Printf.sprintf "op%d" i)
                ~submitted_us:time_us))
        : Sim.Engine.timer)
  done;
  let misbehaviour = Sim.Rng.int rng 4 in
  let faults = Prime.Replica.faults (Bft.Cluster.replica cluster victim) in
  ignore
    (Sim.Engine.schedule_at engine
       ~time_us:(200_000 + Sim.Rng.int rng 500_000)
       (fun () ->
         match misbehaviour with
         | 0 -> faults.Bft.Faults.crashed <- true
         | 1 -> faults.Bft.Faults.silent <- true
         | 2 -> faults.Bft.Faults.proposal_delay_us <- 300_000
         | _ ->
           let drop_target = Sim.Rng.int rng n in
           faults.Bft.Faults.drop_to <- (fun r -> r = drop_target))
      : Sim.Engine.timer);
  (* Sometimes the victim recovers honestly later. *)
  if Sim.Rng.bool rng then
    ignore
      (Sim.Engine.schedule_at engine
         ~time_us:(1_200_000 + Sim.Rng.int rng 500_000)
         (fun () -> Bft.Faults.reset faults)
        : Sim.Engine.timer);
  Sim.Engine.run engine ~until_us:12_000_000;
  (* Correct replicas: everyone but (possibly) the victim. *)
  let correct =
    List.filter
      (fun r ->
        let f = Prime.Replica.faults (Bft.Cluster.replica cluster r) in
        (not f.Bft.Faults.crashed) && not (Bft.Faults.is_byzantine f))
      (List.init n Fun.id)
  in
  match correct with
  | [] -> true
  | first :: rest ->
    let l0 = Prime.Replica.exec_log (Bft.Cluster.replica cluster first) in
    List.for_all
      (fun r ->
        let li = Prime.Replica.exec_log (Bft.Cluster.replica cluster r) in
        Bft.Exec_log.prefix_equal l0 li
        && Bft.Exec_log.length li = Bft.Exec_log.length l0)
      rest
    && Bft.Exec_log.length l0 = 40

let prop_prime_agreement_under_random_faults =
  QCheck.Test.make ~count:25 ~name:"prime: agreement + progress under any 1-replica fault"
    QCheck.(int_bound 1_000_000)
    run_cluster_stress

(* Full-system stress: random single-fault schedule over the overlay
   deployment, checked with System.assert_agreement (which also compares
   master state digests). *)
let run_system_stress seed =
  let cfg =
    {
      (Spire.System.default_config ()) with
      Spire.System.substations = 3;
      poll_interval_us = 100_000;
      seed = Int64.of_int (seed * 7919);
    }
  in
  let sys = Spire.System.create cfg in
  Spire.System.start sys;
  let engine = Spire.System.engine sys in
  let rng = Sim.Engine.rng engine in
  let n = Spire.System.replica_count sys in
  let victim = Sim.Rng.int rng n in
  let action = Sim.Rng.int rng 3 in
  ignore
    (Sim.Engine.schedule_at engine ~time_us:(500_000 + Sim.Rng.int rng 1_000_000)
       (fun () ->
         match action with
         | 0 -> Spire.System.crash_replica sys victim
         | 1 -> (Spire.System.faults sys victim).Bft.Faults.silent <- true
         | _ -> Spire.System.set_leader_delay sys ~delay_us:400_000)
      : Sim.Engine.timer);
  if Sim.Rng.bool rng then
    ignore
      (Sim.Engine.schedule_at engine ~time_us:4_000_000 (fun () ->
           Spire.System.restore_replica sys victim;
           Bft.Faults.reset (Spire.System.faults sys victim))
        : Sim.Engine.timer);
  Spire.System.run sys ~duration_us:10_000_000;
  Spire.System.assert_agreement sys;
  (* Progress: the vast majority of polls must confirm despite the fault. *)
  let polls = 3 * 100 in
  Spire.System.confirmed_updates sys > polls * 6 / 10

let prop_system_agreement_under_random_faults =
  QCheck.Test.make ~count:10
    ~name:"full system: agreement + progress under random fault schedules"
    QCheck.(int_bound 1_000_000)
    run_system_stress

(* Random link kills within connectivity: kill up to 2 WAN links; the
   overlay must keep delivering (reroute) and replicas must agree. *)
let run_link_stress seed =
  let cfg =
    {
      (Spire.System.default_config ()) with
      Spire.System.substations = 3;
      seed = Int64.of_int (seed * 104729);
    }
  in
  let sys = Spire.System.create cfg in
  Spire.System.start sys;
  let engine = Spire.System.engine sys in
  let rng = Sim.Engine.rng engine in
  let net = Spire.System.net sys in
  let topo = Overlay.Net.topology net in
  let n = Spire.System.replica_count sys in
  (* Candidate WAN links between replica sites. *)
  let wan_links =
    List.filter
      (fun l ->
        l.Overlay.Topology.endpoint_a < n
        && l.Overlay.Topology.endpoint_b < n
        && Overlay.Topology.site_of topo l.Overlay.Topology.endpoint_a
           <> Overlay.Topology.site_of topo l.Overlay.Topology.endpoint_b)
      (Overlay.Topology.links topo)
    |> Array.of_list
  in
  Sim.Rng.shuffle rng wan_links;
  let kills = min 2 (Array.length wan_links) in
  for i = 0 to kills - 1 do
    let l = wan_links.(i) in
    ignore
      (Sim.Engine.schedule_at engine
         ~time_us:(500_000 + Sim.Rng.int rng 1_000_000)
         (fun () ->
           Overlay.Net.kill_link net l.Overlay.Topology.endpoint_a
             l.Overlay.Topology.endpoint_b)
        : Sim.Engine.timer)
  done;
  Spire.System.run sys ~duration_us:8_000_000;
  Spire.System.assert_agreement sys;
  Spire.System.confirmed_updates sys > 150

let prop_system_survives_link_kills =
  QCheck.Test.make ~count:10
    ~name:"full system: survives killing up to 2 WAN links"
    QCheck.(int_bound 1_000_000)
    run_link_stress

(* Sustained packet loss on all inter-site links: ARQ plus protocol
   reconciliation must preserve agreement. *)
let run_loss_stress seed =
  let loss = 0.1 +. (float_of_int (seed mod 3) /. 10.) in
  let cfg =
    {
      (Spire.System.default_config ()) with
      Spire.System.substations = 3;
      seed = Int64.of_int (seed * 31);
    }
  in
  let sys = Spire.System.create cfg in
  let net = Spire.System.net sys in
  let topo = Overlay.Net.topology net in
  let n = Spire.System.replica_count sys in
  List.iter
    (fun l ->
      let a = l.Overlay.Topology.endpoint_a
      and b = l.Overlay.Topology.endpoint_b in
      if
        a < n && b < n
        && Overlay.Topology.site_of topo a <> Overlay.Topology.site_of topo b
      then Overlay.Net.set_loss_probability net a b loss)
    (Overlay.Topology.links topo);
  Spire.System.start sys;
  Spire.System.run sys ~duration_us:10_000_000;
  Spire.System.assert_agreement sys;
  (* Loss costs latency, not correctness; most updates still confirm. *)
  Spire.System.confirmed_updates sys > 150

let prop_system_agreement_under_packet_loss =
  QCheck.Test.make ~count:8
    ~name:"full system: agreement under 10-40% WAN packet loss"
    QCheck.(int_bound 1_000_000)
    run_loss_stress

let () =
  Alcotest.run "stress"
    [
      ( "randomized",
        [
          QCheck_alcotest.to_alcotest prop_prime_agreement_under_random_faults;
          QCheck_alcotest.to_alcotest prop_system_agreement_under_random_faults;
          QCheck_alcotest.to_alcotest prop_system_survives_link_kills;
          QCheck_alcotest.to_alcotest prop_system_agreement_under_packet_loss;
        ] );
    ]
