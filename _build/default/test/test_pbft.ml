(* Integration tests for the PBFT baseline replica. *)

let quorum_f1 = Bft.Quorum.create ~n:4 ~f:1 ~k:0

let fast_config quorum =
  {
    (Pbft.Replica.default_config quorum) with
    Pbft.Replica.request_timeout_us = 500_000;
    viewchange_timeout_us = 1_000_000;
    watchdog_interval_us = 50_000;
    checkpoint_interval = 8;
  }

type harness = {
  engine : Sim.Engine.t;
  cluster : (Pbft.Replica.t, Pbft.Msg.t) Bft.Cluster.t;
  executed : (int, (Bft.Types.seqno * Bft.Update.t) list ref) Hashtbl.t;
}

let make_harness ?(n = 4) ?(quorum = quorum_f1) ?(latency_us = 1_000) () =
  let engine = Sim.Engine.create ~seed:42L () in
  let executed = Hashtbl.create 7 in
  let cluster =
    Bft.Cluster.create ~engine ~n
      ~latency_us:(fun _ _ -> latency_us)
      ~make:(fun i env ->
        let log = ref [] in
        Hashtbl.replace executed i log;
        let r =
          Pbft.Replica.create (fast_config quorum) env
            ~execute:(fun seq u -> log := (seq, u) :: !log)
        in
        Pbft.Replica.start r;
        r)
      ~deliver:(fun r ~from msg -> Pbft.Replica.handle r ~from msg)
  in
  { engine; cluster; executed }

let update ~client ~seq =
  Bft.Update.create ~client ~client_seq:seq
    ~operation:(Printf.sprintf "op-%d-%d" client seq)
    ~submitted_us:0

let submit_at h ~time_us ~replica u =
  ignore
    (Sim.Engine.schedule_at h.engine ~time_us (fun () ->
         Pbft.Replica.submit (Bft.Cluster.replica h.cluster replica) u)
      : Sim.Engine.timer)

let executed_ops h i = List.rev !(Hashtbl.find h.executed i)

let check_all_executed_equally h ~expected_count =
  let reference = executed_ops h 0 in
  Alcotest.(check int) "replica 0 executed count" expected_count
    (List.length reference);
  let n = Bft.Cluster.size h.cluster in
  for i = 1 to n - 1 do
    let other = executed_ops h i in
    Alcotest.(check int)
      (Printf.sprintf "replica %d executed count" i)
      (List.length reference) (List.length other);
    List.iter2
      (fun (s1, u1) (s2, u2) ->
        Alcotest.(check int) "same seq" s1 s2;
        Alcotest.(check bool) "same update" true (Bft.Update.equal u1 u2))
      reference other
  done;
  (* Digest-chain safety invariant. *)
  let log0 = Pbft.Replica.exec_log (Bft.Cluster.replica h.cluster 0) in
  for i = 1 to n - 1 do
    let li = Pbft.Replica.exec_log (Bft.Cluster.replica h.cluster i) in
    Alcotest.(check bool)
      (Printf.sprintf "prefix-equal 0 vs %d" i)
      true
      (Bft.Exec_log.prefix_equal log0 li)
  done

let test_fault_free () =
  let h = make_harness () in
  for i = 1 to 20 do
    submit_at h ~time_us:(i * 10_000) ~replica:0 (update ~client:7 ~seq:i)
  done;
  Sim.Engine.run h.engine ~until_us:5_000_000;
  check_all_executed_equally h ~expected_count:20;
  Alcotest.(check int) "no view change" 0
    (Pbft.Replica.view (Bft.Cluster.replica h.cluster 1))

let test_submit_to_backup () =
  let h = make_harness () in
  (* Requests hit a backup, which must forward to the leader. *)
  for i = 1 to 10 do
    submit_at h ~time_us:(i * 10_000) ~replica:2 (update ~client:3 ~seq:i)
  done;
  Sim.Engine.run h.engine ~until_us:5_000_000;
  check_all_executed_equally h ~expected_count:10

let test_leader_crash_triggers_view_change () =
  let h = make_harness () in
  let r0 = Bft.Cluster.replica h.cluster 0 in
  (Pbft.Replica.faults r0).Bft.Faults.crashed <- true;
  for i = 1 to 5 do
    submit_at h ~time_us:(100_000 + (i * 10_000)) ~replica:1
      (update ~client:1 ~seq:i)
  done;
  Sim.Engine.run h.engine ~until_us:20_000_000;
  (* Replicas 1..3 must have moved past view 0 and executed everything. *)
  let v1 = Pbft.Replica.view (Bft.Cluster.replica h.cluster 1) in
  Alcotest.(check bool) "view advanced" true (v1 >= 1);
  let ops = executed_ops h 1 in
  Alcotest.(check int) "executed after view change" 5 (List.length ops);
  (* Correct replicas agree. *)
  let l1 = Pbft.Replica.exec_log (Bft.Cluster.replica h.cluster 1) in
  for i = 2 to 3 do
    let li = Pbft.Replica.exec_log (Bft.Cluster.replica h.cluster i) in
    Alcotest.(check bool) "agreement" true (Bft.Exec_log.prefix_equal l1 li);
    Alcotest.(check int) "same length" (Bft.Exec_log.length l1)
      (Bft.Exec_log.length li)
  done

let test_slow_leader_is_not_replaced () =
  (* The baseline's weakness: delay just under the timeout keeps the
     leader in place while latency balloons. *)
  let h = make_harness () in
  let r0 = Bft.Cluster.replica h.cluster 0 in
  (Pbft.Replica.faults r0).Bft.Faults.proposal_delay_us <- 400_000;
  (* timeout is 500_000 *)
  for i = 1 to 5 do
    submit_at h ~time_us:(i * 600_000) ~replica:0 (update ~client:2 ~seq:i)
  done;
  Sim.Engine.run h.engine ~until_us:10_000_000;
  check_all_executed_equally h ~expected_count:5;
  Alcotest.(check int) "leader kept the role" 0
    (Pbft.Replica.view (Bft.Cluster.replica h.cluster 1))

let test_equivocating_leader_no_divergence () =
  let h = make_harness () in
  let r0 = Bft.Cluster.replica h.cluster 0 in
  (Pbft.Replica.faults r0).Bft.Faults.equivocate <- true;
  for i = 1 to 5 do
    submit_at h ~time_us:(i * 10_000) ~replica:1 (update ~client:9 ~seq:i)
  done;
  Sim.Engine.run h.engine ~until_us:30_000_000;
  (* Correct replicas never diverge; eventually a view change removes
     the equivocator and the updates execute. *)
  let l1 = Pbft.Replica.exec_log (Bft.Cluster.replica h.cluster 1) in
  for i = 2 to 3 do
    let li = Pbft.Replica.exec_log (Bft.Cluster.replica h.cluster i) in
    Alcotest.(check bool) "no divergence" true (Bft.Exec_log.prefix_equal l1 li)
  done;
  Alcotest.(check bool) "view advanced past equivocator" true
    (Pbft.Replica.view (Bft.Cluster.replica h.cluster 1) >= 1);
  Alcotest.(check int) "all executed at replica 1" 5 (Bft.Exec_log.length l1)

let test_checkpoint_garbage_collection () =
  let h = make_harness () in
  for i = 1 to 40 do
    submit_at h ~time_us:(i * 5_000) ~replica:0 (update ~client:4 ~seq:i)
  done;
  Sim.Engine.run h.engine ~until_us:10_000_000;
  check_all_executed_equally h ~expected_count:40

let test_larger_cluster_f2 () =
  let quorum = Bft.Quorum.create ~n:7 ~f:2 ~k:0 in
  let h = make_harness ~n:7 ~quorum () in
  (* Two crashed replicas (= f), one of them a future leader. *)
  (Pbft.Replica.faults (Bft.Cluster.replica h.cluster 5)).Bft.Faults.crashed <-
    true;
  (Pbft.Replica.faults (Bft.Cluster.replica h.cluster 6)).Bft.Faults.crashed <-
    true;
  for i = 1 to 15 do
    submit_at h ~time_us:(i * 10_000) ~replica:0 (update ~client:5 ~seq:i)
  done;
  Sim.Engine.run h.engine ~until_us:10_000_000;
  let l0 = Pbft.Replica.exec_log (Bft.Cluster.replica h.cluster 0) in
  Alcotest.(check int) "executed with f crashed" 15 (Bft.Exec_log.length l0);
  for i = 1 to 4 do
    let li = Pbft.Replica.exec_log (Bft.Cluster.replica h.cluster i) in
    Alcotest.(check bool) "agreement" true (Bft.Exec_log.prefix_equal l0 li)
  done

let test_duplicate_submission_executes_once () =
  let h = make_harness () in
  let u = update ~client:11 ~seq:1 in
  (* Same update submitted at three replicas. *)
  submit_at h ~time_us:10_000 ~replica:0 u;
  submit_at h ~time_us:12_000 ~replica:1 u;
  submit_at h ~time_us:14_000 ~replica:2 u;
  Sim.Engine.run h.engine ~until_us:5_000_000;
  check_all_executed_equally h ~expected_count:1

let () =
  Alcotest.run "pbft"
    [
      ( "replica",
        [
          Alcotest.test_case "fault-free ordering" `Quick test_fault_free;
          Alcotest.test_case "submit to backup" `Quick test_submit_to_backup;
          Alcotest.test_case "leader crash -> view change" `Quick
            test_leader_crash_triggers_view_change;
          Alcotest.test_case "slow leader keeps role (weakness)" `Quick
            test_slow_leader_is_not_replaced;
          Alcotest.test_case "equivocation: safety preserved" `Quick
            test_equivocating_leader_no_divergence;
          Alcotest.test_case "checkpoints + GC" `Quick
            test_checkpoint_garbage_collection;
          Alcotest.test_case "n=7 f=2 with crashes" `Quick
            test_larger_cluster_f2;
          Alcotest.test_case "duplicate submission executes once" `Quick
            test_duplicate_submission_executes_once;
        ] );
    ]
