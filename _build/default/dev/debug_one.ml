let log fmt = Printf.eprintf (fmt ^^ "\n%!")

let () =
  let which = try Sys.argv.(1) with _ -> "e5" in
  let t0 = Unix.gettimeofday () in
  (match which with
  | "e5" ->
    let sys = Spire.System.create (Spire.System.default_config ()) in
    Spire.System.start sys;
    ignore
      (Spire.System.enable_recovery sys ~rotation_period_us:60_000_000
         ~recovery_duration_us:3_000_000);
    for i = 1 to 12 do
      Spire.System.run sys ~duration_us:10_000_000;
      log "t=%ds events=%d confirmed=%d rss-words=%d" (i * 10)
        (Sim.Engine.processed (Spire.System.engine sys))
        (Spire.System.confirmed_updates sys)
        (let s = Gc.quick_stat () in s.Gc.heap_words)
    done;
    Spire.System.assert_agreement sys;
    log "E5 ok"
  | "e6" ->
    List.iter
      (fun (name, mode) ->
        let _, r =
          Spire.Scenarios.link_degradation ~mode ~factor:20.
            ~attack_from_us:5_000_000 ~duration_us:20_000_000 ()
        in
        log "E6 %s: confirmed=%d mean=%.1f p99=%.1f" name r.Spire.Scenarios.confirmed
          (Stats.Histogram.mean r.Spire.Scenarios.hist)
          (Stats.Histogram.percentile r.Spire.Scenarios.hist 99.))
      [ ("shortest", Overlay.Net.Shortest); ("redundant2", Overlay.Net.Redundant 2); ("flood", Overlay.Net.Flood) ]
  | "e7" ->
    let _, r =
      Spire.Scenarios.site_failure ~site:0 ~fail_at_us:10_000_000
        ~restore_at_us:(Some 25_000_000) ~duration_us:40_000_000 ()
    in
    log "E7: confirmed=%d/%d" r.Spire.Scenarios.confirmed r.Spire.Scenarios.submitted
  | "e9" ->
    let _, c =
      Spire.Scenarios.intrusion_campaign ~diversity_on:true ~recovery_on:true
        ~duration_us:(2 * 3600 * 1_000_000) ()
    in
    log "E9: max=%d total=%d" c.Spire.Scenarios.max_simultaneous_compromised
      c.Spire.Scenarios.total_compromises
  | other -> log "unknown %s" other);
  log "done in %.1fs" (Unix.gettimeofday () -. t0)
