let () =
  let quorum = Bft.Quorum.create ~n:4 ~f:1 ~k:0 in
  let config =
    {
      (Pbft.Replica.default_config quorum) with
      Pbft.Replica.request_timeout_us = 500_000;
      viewchange_timeout_us = 1_000_000;
      watchdog_interval_us = 50_000;
      checkpoint_interval = 8;
    }
  in
  let engine = Sim.Engine.create ~seed:42L () in
  let cluster =
    Bft.Cluster.create ~engine ~n:4
      ~latency_us:(fun _ _ -> 1_000)
      ~make:(fun i env ->
        let env = { env with Bft.Env.trace = (fun s -> Printf.printf "[%d @ %d] %s\n" i (Sim.Engine.now engine) s) } in
        let r = Pbft.Replica.create config env ~execute:(fun seq u -> Printf.printf "[%d @ %d] exec s%d %s\n" i (Sim.Engine.now engine) seq (Format.asprintf "%a" Bft.Update.pp u)) in
        Pbft.Replica.start r;
        r)
      ~deliver:(fun r ~from msg -> Pbft.Replica.handle r ~from msg)
  in
  let r0 = Bft.Cluster.replica cluster 0 in
  (Pbft.Replica.faults r0).Bft.Faults.crashed <- true;
  for i = 1 to 5 do
    ignore
      (Sim.Engine.schedule_at engine ~time_us:(100_000 + (i * 10_000)) (fun () ->
           Pbft.Replica.submit (Bft.Cluster.replica cluster 1)
             (Bft.Update.create ~client:1 ~client_seq:i ~operation:"op" ~submitted_us:0)))
  done;
  Sim.Engine.run engine ~until_us:20_000_000;
  for i = 0 to 3 do
    let r = Bft.Cluster.replica cluster i in
    Printf.printf "replica %d: view=%d last_exec=%d pending=%d vc=%d\n" i
      (Pbft.Replica.view r) (Pbft.Replica.last_executed r)
      (Pbft.Replica.pending_count r) (Pbft.Replica.view_changes r)
  done
