let pr_result name (r : Spire.Scenarios.latency_result) =
  Printf.printf "%s: submitted=%d confirmed=%d max_view=%d\n" name r.submitted
    r.confirmed r.max_view;
  if Stats.Histogram.count r.hist > 0 then
    Format.printf "  latency: %a@." Stats.Histogram.pp r.hist

let () =
  let t0 = Unix.gettimeofday () in
  (* E4 prime *)
  let _, rp =
    Spire.Scenarios.leader_attack ~protocol:Spire.System.Prime_protocol
      ~delay_us:1_000_000 ~attack_from_us:5_000_000 ~duration_us:30_000_000 ()
  in
  pr_result "E4 prime (1s leader delay)" rp;
  let _, rb =
    Spire.Scenarios.leader_attack ~protocol:Spire.System.Pbft_protocol
      ~delay_us:1_000_000 ~attack_from_us:5_000_000 ~duration_us:30_000_000 ()
  in
  pr_result "E4 pbft (1s leader delay)" rb;
  Printf.printf "-- %.1fs\n%!" (Unix.gettimeofday () -. t0);
  (* E5 recovery *)
  let _, r5, events =
    Spire.Scenarios.proactive_recovery ~rotation_period_us:60_000_000
      ~recovery_duration_us:3_000_000 ~duration_us:120_000_000 ()
  in
  pr_result "E5 recovery" r5;
  Printf.printf "  recovery events: %d\n" (List.length events);
  Printf.printf "-- %.1fs\n%!" (Unix.gettimeofday () -. t0);
  (* E6 degradation *)
  List.iter
    (fun (name, mode) ->
      let _, r =
        Spire.Scenarios.link_degradation ~mode ~factor:20.
          ~attack_from_us:5_000_000 ~duration_us:20_000_000 ()
      in
      pr_result ("E6 " ^ name) r)
    [
      ("shortest", Overlay.Net.Shortest);
      ("redundant2", Overlay.Net.Redundant 2);
      ("flood", Overlay.Net.Flood);
    ];
  Printf.printf "-- %.1fs\n%!" (Unix.gettimeofday () -. t0);
  (* E7 site failure *)
  let _, r7 =
    Spire.Scenarios.site_failure ~site:0 ~fail_at_us:10_000_000
      ~restore_at_us:(Some 25_000_000) ~duration_us:40_000_000 ()
  in
  pr_result "E7 site failure" r7;
  Printf.printf "-- %.1fs\n%!" (Unix.gettimeofday () -. t0);
  (* E9 campaign quick *)
  let _, c =
    Spire.Scenarios.intrusion_campaign ~diversity_on:true ~recovery_on:true
      ~duration_us:(6 * 3600 * 1_000_000) ()
  in
  Printf.printf
    "E9 div+rec: max_simul=%d total=%d exploits=%d above_f=%ds final=%d\n"
    c.Spire.Scenarios.max_simultaneous_compromised
    c.Spire.Scenarios.total_compromises c.Spire.Scenarios.exploits_developed
    (c.Spire.Scenarios.time_above_f_us / 1_000_000)
    c.Spire.Scenarios.final_compromised;
  let _, c2 =
    Spire.Scenarios.intrusion_campaign ~diversity_on:false ~recovery_on:false
      ~duration_us:(6 * 3600 * 1_000_000) ()
  in
  Printf.printf "E9 ablation: max_simul=%d total=%d final=%d\n"
    c2.Spire.Scenarios.max_simultaneous_compromised
    c2.Spire.Scenarios.total_compromises c2.Spire.Scenarios.final_compromised;
  Printf.printf "-- total %.1fs\n" (Unix.gettimeofday () -. t0)
