let () =
  let cfg = Spire.System.default_config () in
  let sys = Spire.System.create cfg in
  Spire.System.start sys;
  let t0 = Unix.gettimeofday () in
  Spire.System.run sys ~duration_us:10_000_000;
  let wall = Unix.gettimeofday () -. t0 in
  Spire.System.assert_agreement sys;
  let hist = Spire.System.latency_histogram sys in
  Printf.printf "wall time: %.2fs, events: %d\n" wall
    (Sim.Engine.processed (Spire.System.engine sys));
  Printf.printf "submitted=%d confirmed=%d\n"
    (Spire.System.submitted_updates sys)
    (Spire.System.confirmed_updates sys);
  if Stats.Histogram.count hist > 0 then
    Format.printf "latency ms: %a@." Stats.Histogram.pp hist
  else print_endline "NO CONFIRMATIONS";
  for r = 0 to Spire.System.replica_count sys - 1 do
    Printf.printf "replica %d: view=%d exec=%d\n" r
      (Spire.System.view_of sys r)
      (Bft.Exec_log.length (Spire.System.exec_log sys r))
  done
