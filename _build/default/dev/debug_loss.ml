let () =
  let cfg =
    { (Spire.System.default_config ()) with Spire.System.substations = 10 }
  in
  let sys = Spire.System.create cfg in
  let net = Spire.System.net sys in
  let topo = Overlay.Net.topology net in
  let n = Spire.System.replica_count sys in
  List.iter
    (fun link ->
      let a = link.Overlay.Topology.endpoint_a
      and b = link.Overlay.Topology.endpoint_b in
      if
        a < n && b < n
        && Overlay.Topology.site_of topo a <> Overlay.Topology.site_of topo b
      then Overlay.Net.set_loss_probability net a b 0.4)
    (Overlay.Topology.links topo);
  Spire.System.start sys;
  (try
     for _ = 1 to 40 do
       Spire.System.run sys ~duration_us:500_000;
       Spire.System.assert_agreement sys
     done;
     print_endline "no divergence in 20s"
   with Failure msg ->
     Printf.printf "%s at t=%d\n" msg (Sim.Engine.now (Spire.System.engine sys)));
  (* Compare logs pairwise for first difference. *)
  let logs = List.init n (fun r -> Spire.System.exec_log sys r) in
  let l0 = List.nth logs 0 in
  List.iteri
    (fun i li ->
      if i > 0 then begin
        let n0 = Bft.Exec_log.length l0 and ni = Bft.Exec_log.length li in
        let common = min n0 ni in
        let rec first_diff p =
          if p > common then None
          else if
            not
              (Cryptosim.Digest.equal
                 (Bft.Exec_log.digest_at l0 p)
                 (Bft.Exec_log.digest_at li p))
          then Some p
          else first_diff (p + 1)
        in
        match first_diff 1 with
        | Some p ->
          let u0 = Bft.Exec_log.nth l0 p and ui = Bft.Exec_log.nth li p in
          Printf.printf
            "replica 0 vs %d: first diff at position %d: (%d,%d)%s vs (%d,%d)%s\n"
            i p (fst (Bft.Update.key u0)) (snd (Bft.Update.key u0))
            "" (fst (Bft.Update.key ui)) (snd (Bft.Update.key ui)) ""
        | None ->
          Printf.printf "replica 0 vs %d: no diff in common prefix (%d vs %d)\n" i
            n0 ni
      end)
    logs;
  (* Compare applied slot matrices between replicas 0 and 4. *)
  (match
     ( List.nth
         (List.init n (fun r ->
              match Spire.System.exec_log sys r with _ -> r))
         0,
       () )
   with
  | _ -> ());
  ()
