(* Reproduce a failing stress seed with diagnostics. *)

let quorum_6 = Bft.Quorum.create ~n:6 ~f:1 ~k:1

let fast_prime quorum =
  {
    (Prime.Replica.default_config quorum) with
    Prime.Replica.aru_interval_us = 2_000;
    proposal_interval_us = 5_000;
    tat_threshold_us = 100_000;
    viewchange_timeout_us = 400_000;
    watchdog_interval_us = 10_000;
    checkpoint_interval = 16;
  }

let () =
  let seed = int_of_string Sys.argv.(1) in
  let engine = Sim.Engine.create ~seed:(Int64.of_int seed) () in
  let rng = Sim.Engine.rng engine in
  let n = 6 in
  let cluster =
    Bft.Cluster.create ~engine ~n
      ~latency_us:(fun _ _ -> 500 + Sim.Rng.int rng 2_000)
      ~make:(fun _ env ->
        let r = Prime.Replica.create (fast_prime quorum_6) env ~execute:(fun _ _ -> ()) in
        Prime.Replica.start r;
        r)
      ~deliver:(fun r ~from msg -> Prime.Replica.handle r ~from msg)
  in
  let victim = Sim.Rng.int rng n in
  for i = 1 to 40 do
    let origin = (victim + 1 + Sim.Rng.int rng (n - 1)) mod n in
    let time_us = 10_000 + Sim.Rng.int rng 2_000_000 in
    ignore
      (Sim.Engine.schedule_at engine ~time_us (fun () ->
           Prime.Replica.submit
             (Bft.Cluster.replica cluster origin)
             (Bft.Update.create ~client:(i mod 3)
                ~client_seq:(((i - 1) / 3) + 1)
                ~operation:(Printf.sprintf "op%d" i)
                ~submitted_us:time_us)))
  done;
  let misbehaviour = Sim.Rng.int rng 4 in
  let faults = Prime.Replica.faults (Bft.Cluster.replica cluster victim) in
  let attack_at = 200_000 + Sim.Rng.int rng 500_000 in
  ignore
    (Sim.Engine.schedule_at engine ~time_us:attack_at (fun () ->
         match misbehaviour with
         | 0 -> faults.Bft.Faults.crashed <- true
         | 1 -> faults.Bft.Faults.silent <- true
         | 2 -> faults.Bft.Faults.proposal_delay_us <- 300_000
         | _ ->
           let drop_target = Sim.Rng.int rng n in
           faults.Bft.Faults.drop_to <- (fun r -> r = drop_target)));
  let reset = Sim.Rng.bool rng in
  if reset then
    ignore
      (Sim.Engine.schedule_at engine
         ~time_us:(1_200_000 + Sim.Rng.int rng 500_000)
         (fun () -> Bft.Faults.reset faults));
  Printf.printf "victim=%d misbehaviour=%d attack_at=%d reset=%b\n" victim
    misbehaviour attack_at reset;
  Sim.Engine.run engine ~until_us:12_000_000;
  for r = 0 to n - 1 do
    let rep = Bft.Cluster.replica cluster r in
    Printf.printf
      "replica %d: view=%d exec=%d last_applied=%d recv=%s suspected=%b\n" r
      (Prime.Replica.view rep)
      (Bft.Exec_log.length (Prime.Replica.exec_log rep))
      (Prime.Replica.last_applied rep)
      (Format.asprintf "%a" Prime.Matrix.pp_vector (Prime.Replica.recv_vector rep))
      (Prime.Replica.suspected rep)
  done
