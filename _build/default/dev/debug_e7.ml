let () =
  let sys = Spire.System.create (Spire.System.default_config ()) in
  Spire.System.start sys;
  ignore
    (Sim.Engine.schedule_at (Spire.System.engine sys) ~time_us:10_000_000
       (fun () -> Spire.System.kill_site sys 0));
  Spire.System.run sys ~duration_us:20_000_000;
  (* Mid-outage: who is stuck? *)
  for c = 0 to 9 do
    let ep = Scada.Proxy.endpoint (Spire.System.proxy sys c) in
    Printf.printf "client %d: completed=%d pending=%d resubmits=%d\n" c
      (Scada.Endpoint.completed_count ep)
      (Scada.Endpoint.pending_count ep)
      (Scada.Endpoint.resubmit_count ep)
  done;
  Printf.printf "confirmed=%d submitted=%d\n"
    (Spire.System.confirmed_updates sys)
    (Spire.System.submitted_updates sys)
