let () =
  let cfg =
    {
      (Spire.System.default_config ()) with
      Spire.System.substations = 4;
      poll_interval_us = 50_000;
    }
  in
  let sys = Spire.System.create cfg in
  Spire.System.start sys;
  ignore
    (Sim.Engine.schedule_at (Spire.System.engine sys) ~time_us:1_000_000
       (fun () -> Spire.System.kill_site sys 0));
  for i = 1 to 10 do
    Spire.System.run sys ~duration_us:500_000;
    Printf.printf "t=%.1fs confirmed=%d views=[%s] leader=%d\n" (float_of_int i *. 0.5)
      (Spire.System.confirmed_updates sys)
      (String.concat ","
         (List.init 6 (fun r -> string_of_int (Spire.System.view_of sys r))))
      (Spire.System.current_leader sys)
  done;
  for c = 0 to 3 do
    let ep = Scada.Proxy.endpoint (Spire.System.proxy sys c) in
    Printf.printf "client %d: completed=%d pending=%d resubmits=%d\n" c
      (Scada.Endpoint.completed_count ep)
      (Scada.Endpoint.pending_count ep)
      (Scada.Endpoint.resubmit_count ep)
  done;
  Spire.System.assert_agreement sys
