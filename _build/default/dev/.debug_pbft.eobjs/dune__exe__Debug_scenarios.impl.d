dev/debug_scenarios.ml: Format List Overlay Printf Spire Stats Unix
