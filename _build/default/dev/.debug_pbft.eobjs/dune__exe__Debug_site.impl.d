dev/debug_site.ml: List Printf Scada Sim Spire String
