dev/debug_iso.mli:
