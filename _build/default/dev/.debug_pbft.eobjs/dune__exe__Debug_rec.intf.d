dev/debug_rec.mli:
