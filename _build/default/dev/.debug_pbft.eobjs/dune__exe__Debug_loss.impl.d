dev/debug_loss.ml: Bft Cryptosim List Overlay Printf Sim Spire
