dev/debug_site.mli:
