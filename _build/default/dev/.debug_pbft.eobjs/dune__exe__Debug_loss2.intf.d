dev/debug_loss2.mli:
