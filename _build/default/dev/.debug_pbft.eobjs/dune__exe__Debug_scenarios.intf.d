dev/debug_scenarios.mli:
