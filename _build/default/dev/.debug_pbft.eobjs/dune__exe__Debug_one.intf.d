dev/debug_one.mli:
