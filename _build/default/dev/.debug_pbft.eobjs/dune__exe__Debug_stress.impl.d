dev/debug_stress.ml: Array Bft Format Int64 Prime Printf Sim Sys
