dev/debug_iso.ml: Bft List Printf Sim Spire String
