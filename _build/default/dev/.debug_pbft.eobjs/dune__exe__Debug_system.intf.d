dev/debug_system.mli:
