dev/debug_loss2.ml: Array Bft Cryptosim Fun Int64 List Option Prime Printf Sim String Sys
