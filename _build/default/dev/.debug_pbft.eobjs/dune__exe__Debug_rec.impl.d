dev/debug_rec.ml: List Printf Spire String
