dev/debug_stress.mli:
