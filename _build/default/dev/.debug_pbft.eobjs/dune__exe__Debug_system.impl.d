dev/debug_system.ml: Bft Format Printf Sim Spire Stats Unix
