dev/debug_loss.mli:
