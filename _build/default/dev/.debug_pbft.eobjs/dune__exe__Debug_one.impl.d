dev/debug_one.ml: Array Gc List Overlay Printf Sim Spire Stats Sys Unix
