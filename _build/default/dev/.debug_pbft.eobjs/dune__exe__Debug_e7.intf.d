dev/debug_e7.mli:
