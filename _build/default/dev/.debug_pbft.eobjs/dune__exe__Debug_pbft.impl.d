dev/debug_pbft.ml: Bft Format Pbft Printf Sim
