dev/debug_pbft.mli:
