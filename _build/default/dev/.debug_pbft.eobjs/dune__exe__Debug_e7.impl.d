dev/debug_e7.ml: Printf Scada Sim Spire
