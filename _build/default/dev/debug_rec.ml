let () =
  let cfg =
    {
      (Spire.System.default_config ()) with
      Spire.System.substations = 4;
      poll_interval_us = 50_000;
    }
  in
  let sys = Spire.System.create cfg in
  Spire.System.start sys;
  ignore
    (Spire.System.enable_recovery sys ~rotation_period_us:3_000_000
       ~recovery_duration_us:300_000);
  for i = 1 to 14 do
    Spire.System.run sys ~duration_us:500_000;
    Printf.printf "t=%.1fs confirmed=%d views=[%s]\n" (float_of_int i *. 0.5)
      (Spire.System.confirmed_updates sys)
      (String.concat ","
         (List.init 6 (fun r -> string_of_int (Spire.System.view_of sys r))))
  done;
  Spire.System.assert_agreement sys
