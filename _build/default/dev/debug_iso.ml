let () =
  let cfg =
    {
      (Spire.System.default_config ()) with
      Spire.System.substations = 4;
      poll_interval_us = 50_000;
    }
  in
  let sys = Spire.System.create cfg in
  Spire.System.start sys;
  ignore
    (Sim.Engine.schedule_at (Spire.System.engine sys) ~time_us:1_000_000
       (fun () -> Spire.System.isolate_site sys 0));
  ignore
    (Sim.Engine.schedule_at (Spire.System.engine sys) ~time_us:5_000_000
       (fun () -> Spire.System.reconnect_site sys 0));
  for i = 1 to 20 do
    Spire.System.run sys ~duration_us:500_000;
    Printf.printf "t=%4.1fs confirmed=%d views=[%s] execs=[%s]\n"
      (float_of_int i *. 0.5)
      (Spire.System.confirmed_updates sys)
      (String.concat ","
         (List.init 6 (fun r -> string_of_int (Spire.System.view_of sys r))))
      (String.concat ","
         (List.init 6 (fun r ->
              string_of_int (Bft.Exec_log.length (Spire.System.exec_log sys r)))))
  done;
  Spire.System.assert_agreement sys
