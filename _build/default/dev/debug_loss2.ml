(* Focused repro: prime cluster with random message loss; find the
   first slot where applied matrices diverge. *)

let quorum_6 = Bft.Quorum.create ~n:6 ~f:1 ~k:1

let fast_prime quorum =
  {
    (Prime.Replica.default_config quorum) with
    Prime.Replica.aru_interval_us = 2_000;
    proposal_interval_us = 5_000;
    tat_threshold_us = 100_000;
    viewchange_timeout_us = 400_000;
    watchdog_interval_us = 10_000;
    checkpoint_interval = 16;
  }

let () =
  let seed = try Int64.of_string Sys.argv.(1) with _ -> 99L in
  let loss = try float_of_string Sys.argv.(2) with _ -> 0.10 in
  let engine = Sim.Engine.create ~seed () in
  let drop_rng = Sim.Engine.rng engine in
  let n = 6 in
  let replicas : Prime.Replica.t option array = Array.make n None in
  let cluster =
    Bft.Cluster.create ~engine ~n
      ~latency_us:(fun _ _ -> 1_000)
      ~make:(fun i env ->
        (* Wrap send with random loss. *)
        let lossy_env =
          {
            env with
            Bft.Env.send =
              (fun dst msg ->
                if not (Sim.Rng.bernoulli drop_rng loss) then
                  env.Bft.Env.send dst msg);
          }
        in
        let r =
          Prime.Replica.create (fast_prime quorum_6) lossy_env
            ~execute:(fun _ _ -> ())
        in
        replicas.(i) <- Some r;
        Prime.Replica.start r;
        r)
      ~deliver:(fun r ~from msg -> Prime.Replica.handle r ~from msg)
  in
  ignore cluster;
  for i = 1 to 60 do
    let origin = i mod n in
    ignore
      (Sim.Engine.schedule_at engine ~time_us:(10_000 + (i * 40_000)) (fun () ->
           Prime.Replica.submit
             (Option.get replicas.(origin))
             (Bft.Update.create ~client:(i mod 3)
                ~client_seq:(((i - 1) / 3) + 1)
                ~operation:(Printf.sprintf "op%d" i)
                ~submitted_us:0)))
  done;
  Sim.Engine.run engine ~until_us:20_000_000;
  let get r = Option.get replicas.(r) in
  for r = 0 to n - 1 do
    Printf.printf "replica %d: view=%d exec=%d applied=%d\n" r
      (Prime.Replica.view (get r))
      (Bft.Exec_log.length (Prime.Replica.exec_log (get r)))
      (Prime.Replica.last_applied (get r))
  done;
  (* Compare applied matrices slot by slot. *)
  let max_applied =
    List.fold_left max 0 (List.init n (fun r -> Prime.Replica.last_applied (get r)))
  in
  for seq = 1 to max_applied do
    let digests =
      List.init n (fun r -> Prime.Replica.applied_matrix_digest (get r) seq)
    in
    let present = List.filter_map Fun.id digests in
    match present with
    | [] -> ()
    | first :: rest ->
      if not (List.for_all (Cryptosim.Digest.equal first) rest) then
        Printf.printf "slot %d: DIVERGENT matrices: %s\n" seq
          (String.concat " "
             (List.mapi
                (fun r d ->
                  match d with
                  | None -> Printf.sprintf "%d:-" r
                  | Some d -> Printf.sprintf "%d:%s" r (String.sub (Cryptosim.Digest.to_hex d) 0 6))
                digests))
  done;
  (* Agreement check. *)
  let l0 = Prime.Replica.exec_log (get 0) in
  for r = 1 to n - 1 do
    if not (Bft.Exec_log.prefix_equal l0 (Prime.Replica.exec_log (get r))) then
      Printf.printf "DIVERGENCE between 0 and %d\n" r
  done;
  print_endline "done"
