bin/spire_run.mli:
