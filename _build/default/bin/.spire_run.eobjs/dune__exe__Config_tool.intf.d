bin/config_tool.mli:
