bin/config_tool.ml: Arg Cmd Cmdliner Format List Spire Stats Term
