bin/spire_run.ml: Arg Cmd Cmdliner Format Int64 List Overlay Spire Stats Term
