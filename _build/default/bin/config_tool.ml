(* Configuration calculator CLI.

   Prints the replica count and site distribution needed to tolerate a
   given number of intrusions, concurrent recoveries, and the loss of
   any single site. *)

open Cmdliner

let run f k sites control_centers table =
  if table then begin
    let t =
      Stats.Table.create ~title:"standard configuration table"
        ~columns:[ "f"; "k"; "sites"; "n"; "quorum"; "distribution" ]
    in
    List.iter
      (fun (c : Spire.Config_calc.configuration) ->
        Stats.Table.add_row t
          [
            string_of_int c.Spire.Config_calc.f;
            string_of_int c.Spire.Config_calc.k;
            string_of_int (List.length c.Spire.Config_calc.sites);
            string_of_int c.Spire.Config_calc.n;
            string_of_int
              (Spire.Config_calc.quorum ~f:c.Spire.Config_calc.f
                 ~k:c.Spire.Config_calc.k);
            Format.asprintf "%a" Spire.Config_calc.pp c;
          ])
      (Spire.Config_calc.standard_table ());
    Stats.Table.print t;
    0
  end
  else
    match Spire.Config_calc.minimal_config ~f ~k ~sites ~control_centers with
    | c ->
      Format.printf "%a@." Spire.Config_calc.pp c;
      Format.printf "quorum size: %d@." (Spire.Config_calc.quorum ~f ~k);
      Format.printf "tolerates single-site loss: %b@."
        (Spire.Config_calc.tolerates_site_loss c);
      0
    | exception Invalid_argument msg ->
      Format.eprintf "error: %s@." msg;
      1

let f_arg =
  Arg.(value & opt int 1 & info [ "f" ] ~doc:"Simultaneous intrusions to tolerate.")

let k_arg =
  Arg.(
    value & opt int 1
    & info [ "k" ] ~doc:"Replicas that may be recovering concurrently.")

let sites_arg =
  Arg.(value & opt int 4 & info [ "sites" ] ~doc:"Number of sites available.")

let cc_arg =
  Arg.(
    value & opt int 2
    & info [ "control-centers" ] ~doc:"How many sites are control centers.")

let table_arg =
  Arg.(value & flag & info [ "table" ] ~doc:"Print the full standard table.")

let cmd =
  let doc = "compute intrusion-tolerant SCADA replica configurations" in
  Cmd.v
    (Cmd.info "config_tool" ~doc)
    Term.(const run $ f_arg $ k_arg $ sites_arg $ cc_arg $ table_arg)

let () = exit (Cmd.eval' cmd)
