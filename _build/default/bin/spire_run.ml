(* Scenario runner CLI.

   Runs any of the repository's experiment scenarios from the command
   line with configurable durations and parameters, printing the
   latency distribution and safety-check outcome. The benchmark harness
   (bench/main.exe) drives the same scenario functions; this tool is for
   interactive exploration. *)

open Cmdliner

let ms v = v * 1_000
let print_result name (r : Spire.Scenarios.latency_result) =
  Format.printf "scenario: %s@." name;
  Format.printf "  submitted: %d  confirmed: %d  max view: %d@."
    r.Spire.Scenarios.submitted r.Spire.Scenarios.confirmed
    r.Spire.Scenarios.max_view;
  if Stats.Histogram.count r.Spire.Scenarios.hist > 0 then
    Format.printf "  latency (ms): %a@." Stats.Histogram.pp
      r.Spire.Scenarios.hist;
  Format.printf "  agreement: OK (asserted)@."

let duration_arg =
  Arg.(
    value & opt int 30
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Virtual duration in seconds.")

let seed_arg =
  Arg.(value & opt int 0x5917 & info [ "seed" ] ~doc:"Deterministic RNG seed.")

(* ------------------------------------------------------------------ *)

let fault_free duration seed substations poll_ms =
  let cfg =
    {
      (Spire.System.default_config ()) with
      Spire.System.substations;
      poll_interval_us = ms poll_ms;
      seed = Int64.of_int seed;
    }
  in
  let _, r =
    Spire.Scenarios.fault_free ~config:cfg ~duration_us:(duration * 1_000_000) ()
  in
  print_result "fault-free wide-area" r;
  0

let fault_free_cmd =
  let substations =
    Arg.(value & opt int 10 & info [ "substations" ] ~doc:"Substation count.")
  in
  let poll =
    Arg.(value & opt int 100 & info [ "poll-ms" ] ~doc:"Poll interval (ms).")
  in
  Cmd.v
    (Cmd.info "fault-free" ~doc:"Wide-area deployment, no faults (E2/E3).")
    Term.(const fault_free $ duration_arg $ seed_arg $ substations $ poll)

let leader_attack duration _seed protocol delay_ms =
  let protocol =
    match protocol with
    | "prime" -> Spire.System.Prime_protocol
    | "pbft" -> Spire.System.Pbft_protocol
    | other -> failwith ("unknown protocol " ^ other)
  in
  let duration_us = duration * 1_000_000 in
  let _, r =
    Spire.Scenarios.leader_attack ~protocol ~delay_us:(ms delay_ms)
      ~attack_from_us:(duration_us / 6) ~duration_us ()
  in
  print_result "leader slowdown attack" r;
  0

let leader_attack_cmd =
  let protocol =
    Arg.(
      value & opt string "prime"
      & info [ "protocol" ] ~doc:"Replication protocol: prime or pbft.")
  in
  let delay =
    Arg.(
      value & opt int 1000
      & info [ "delay-ms" ] ~doc:"Proposal delay injected at the leader (ms).")
  in
  Cmd.v
    (Cmd.info "leader-attack"
       ~doc:"Malicious leader performance attack (E4).")
    Term.(const leader_attack $ duration_arg $ seed_arg $ protocol $ delay)

let site_failure duration _seed site restore =
  let duration_us = duration * 1_000_000 in
  let restore_at_us = if restore then Some (duration_us * 5 / 8) else None in
  let _, r =
    Spire.Scenarios.site_failure ~site ~fail_at_us:(duration_us / 4)
      ~restore_at_us ~duration_us ()
  in
  print_result "control-center loss" r;
  0

let site_failure_cmd =
  let site =
    Arg.(value & opt int 0 & info [ "site" ] ~doc:"Site to disconnect.")
  in
  let restore =
    Arg.(value & flag & info [ "restore" ] ~doc:"Reconnect the site later.")
  in
  Cmd.v
    (Cmd.info "site-failure" ~doc:"Disconnect a whole control center (E7).")
    Term.(const site_failure $ duration_arg $ seed_arg $ site $ restore)

let recovery duration _seed rotation_s =
  let _, r, events =
    Spire.Scenarios.proactive_recovery
      ~rotation_period_us:(rotation_s * 1_000_000)
      ~recovery_duration_us:10_000_000
      ~duration_us:(duration * 1_000_000) ()
  in
  print_result "proactive recovery" r;
  Format.printf "  recovery events: %d@." (List.length events);
  0

let recovery_cmd =
  let rotation =
    Arg.(
      value & opt int 120
      & info [ "rotation" ] ~docv:"SECONDS" ~doc:"Full rotation period.")
  in
  Cmd.v
    (Cmd.info "recovery" ~doc:"Proactive recovery rotation (E5).")
    Term.(const recovery $ duration_arg $ seed_arg $ rotation)

let dos duration _seed mode factor =
  let mode =
    match mode with
    | "shortest" -> Overlay.Net.Shortest
    | "redundant" -> Overlay.Net.Redundant 2
    | "flood" -> Overlay.Net.Flood
    | other -> failwith ("unknown mode " ^ other)
  in
  let duration_us = duration * 1_000_000 in
  let _, r =
    Spire.Scenarios.link_degradation ~mode ~factor
      ~attack_from_us:(duration_us / 4) ~duration_us ()
  in
  print_result "network delay attack" r;
  0

let dos_cmd =
  let mode =
    Arg.(
      value & opt string "redundant"
      & info [ "mode" ] ~doc:"Dissemination: shortest, redundant, flood.")
  in
  let factor =
    Arg.(
      value & opt float 20.
      & info [ "factor" ] ~doc:"Latency inflation factor on attacked links.")
  in
  Cmd.v
    (Cmd.info "network-attack"
       ~doc:"Delay attack on primary WAN links (E6).")
    Term.(const dos $ duration_arg $ seed_arg $ mode $ factor)

let campaign hours_ diversity recovery =
  let _, c =
    Spire.Scenarios.intrusion_campaign ~diversity_on:diversity
      ~recovery_on:recovery
      ~duration_us:(hours_ * 3600 * 1_000_000) ()
  in
  Format.printf "intrusion campaign (%d h): max simultaneous %d, total %d,@."
    hours_ c.Spire.Scenarios.max_simultaneous_compromised
    c.Spire.Scenarios.total_compromises;
  Format.printf "  exploits developed %d, time above f: %ds, held at end: %d@."
    c.Spire.Scenarios.exploits_developed
    (c.Spire.Scenarios.time_above_f_us / 1_000_000)
    c.Spire.Scenarios.final_compromised;
  0

let campaign_cmd =
  let hours_arg =
    Arg.(value & opt int 6 & info [ "hours" ] ~doc:"Virtual hours to run.")
  in
  let diversity =
    Arg.(value & opt bool true & info [ "diversity" ] ~doc:"Diversity on/off.")
  in
  let recovery =
    Arg.(value & opt bool true & info [ "recovery" ] ~doc:"Recovery on/off.")
  in
  Cmd.v
    (Cmd.info "campaign" ~doc:"Long-running intrusion campaign (E9).")
    Term.(const campaign $ hours_arg $ diversity $ recovery)

let main_cmd =
  let doc = "run Spire reproduction scenarios" in
  Cmd.group (Cmd.info "spire_run" ~doc)
    [
      fault_free_cmd;
      leader_attack_cmd;
      site_failure_cmd;
      recovery_cmd;
      dos_cmd;
      campaign_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
