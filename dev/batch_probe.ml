(* One-point throughput probe for tuning the E8 batch sweep:
   SUBS=<n> BATCH=<b> DUR_S=<s> dune exec dev/batch_probe.exe *)

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some v -> (match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let () =
  let substations = getenv_int "SUBS" 640 in
  let max_batch = getenv_int "BATCH" 1 in
  let dur_s = getenv_int "DUR_S" 15 in
  let poll_interval_us = getenv_int "POLL_US" 100_000 in
  let duration_us = dur_s * 1_000_000 in
  let t0 = Unix.gettimeofday () in
  let wan_bps = getenv_int "WAN_BPS" 0 in
  let lan_bps = getenv_int "LAN_BPS" 0 in
  let tweak c =
    let c =
      if wan_bps > 0 then { c with Spire.System.wan_bandwidth_bps = wan_bps }
      else c
    in
    let c =
      if lan_bps > 0 then { c with Spire.System.lan_bandwidth_bps = lan_bps }
      else c
    in
    match Sys.getenv_opt "MODE" with
    | Some "flood" -> { c with Spire.System.dissemination = Overlay.Net.Flood }
    | _ -> c
  in
  let sys, r =
    Spire.Scenarios.throughput ~tweak ~max_batch ~substations ~poll_interval_us
      ~duration_us ()
  in
  let secs = float_of_int duration_us /. 1e6 in
  let h = r.Spire.Scenarios.hist in
  let pct p =
    if Stats.Histogram.count h > 0 then Stats.Histogram.percentile h p else nan
  in
  let wire =
    (Overlay.Net.stats (Spire.System.net sys)).Overlay.Net.submitted_bytes
  in
  Printf.printf
    "subs=%d batch=%d confirmed/s=%.0f ratio=%.3f p50=%.1f p99=%.1f wire \
     MB=%.1f KB/upd=%.2f wall=%.1fs\n"
    substations max_batch
    (float_of_int r.Spire.Scenarios.confirmed /. secs)
    (float_of_int r.Spire.Scenarios.confirmed
    /. float_of_int (max 1 r.Spire.Scenarios.submitted))
    (pct 50.) (pct 99.)
    (float_of_int wire /. 1e6)
    (float_of_int wire /. 1e3 /. float_of_int (max 1 r.Spire.Scenarios.confirmed))
    (Unix.gettimeofday () -. t0);
  let net = Spire.System.net sys in
  let s = Overlay.Net.stats net in
  Printf.printf
    "  drops: queue_full=%d link_down=%d no_route=%d arq=%d retrans=%d\n"
    s.Overlay.Net.dropped_queue_full s.Overlay.Net.dropped_link_down
    s.Overlay.Net.dropped_no_route s.Overlay.Net.dropped_arq_exhausted
    (Overlay.Net.retransmissions net);
  let reports = Overlay.Net.link_reports net in
  let top =
    List.sort
      (fun (a : Overlay.Net.link_report) b ->
        compare b.Overlay.Net.tx_busy_us a.Overlay.Net.tx_busy_us)
      reports
  in
  List.iteri
    (fun i (lr : Overlay.Net.link_report) ->
      if i < 5 then
        Printf.printf "  link %d->%d util=%.2f MB=%.1f\n" lr.Overlay.Net.link_src
          lr.Overlay.Net.link_dst
          (Overlay.Net.link_utilisation net ~elapsed_us:duration_us lr)
          (float_of_int lr.Overlay.Net.tx_bytes /. 1e6))
    top
