(* Telemetry smoke: run a telemetry-enabled E2 slice and assert the
   structural invariants of the span stream on a real system run —
   every finished span's parent exists, phase sums reconcile with the
   measured end-to-end latency, and the number of still-open spans at
   cutoff is bounded by frames genuinely in flight. Exits non-zero on
   any violation (wired into dev/check.sh). *)

let () =
  let duration_us =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) * 1_000_000
    else 10_000_000
  in
  let cfg =
    { (Spire.System.default_config ()) with Spire.System.telemetry = true }
  in
  let sys, r = Spire.Scenarios.fault_free ~config:cfg ~duration_us () in
  let sink = Spire.System.telemetry sys in
  let spans = Telemetry.Sink.spans sink in
  let fail = ref 0 in
  let check name ok detail =
    if not ok then begin
      incr fail;
      Printf.printf "  FAIL %-28s %s\n" name detail
    end
    else Printf.printf "  ok   %-28s %s\n" name detail
  in
  (* Orphans: every parent id must itself be a finished span. Valid
     only while the ring has not overwritten history. *)
  check "no ring drops"
    (Telemetry.Sink.ring_dropped sink = 0)
    (Printf.sprintf "dropped=%d capacity=%d"
       (Telemetry.Sink.ring_dropped sink)
       cfg.Spire.System.telemetry_capacity);
  let by_id = Hashtbl.create 4096 in
  List.iter
    (fun (s : Telemetry.Span.t) -> Hashtbl.replace by_id s.Telemetry.Span.id s)
    spans;
  let orphans =
    List.length
      (List.filter
         (fun (s : Telemetry.Span.t) ->
           s.Telemetry.Span.parent >= 0
           && not (Hashtbl.mem by_id s.Telemetry.Span.parent))
         spans)
  in
  check "zero orphan spans" (orphans = 0)
    (Printf.sprintf "%d orphans / %d spans" orphans (List.length spans));
  let negative =
    List.length
      (List.filter
         (fun (s : Telemetry.Span.t) -> Telemetry.Span.duration s < 0)
         spans)
  in
  check "no negative durations" (negative = 0)
    (Printf.sprintf "%d negative" negative);
  (* Unclosed spans at cutoff are frames caught mid-flight by the end
     of virtual time; there can only be a handful per link, never a
     leak that grows with run length. *)
  let open_now = Telemetry.Sink.open_count sink in
  check "open spans bounded" (open_now < 256)
    (Printf.sprintf "%d open at cutoff (opened=%d closed=%d)" open_now
       (Telemetry.Sink.opened sink)
       (Telemetry.Sink.closed sink));
  check "no milestone clamps"
    (Telemetry.Sink.clamped sink = 0)
    (Printf.sprintf "clamped=%d" (Telemetry.Sink.clamped sink));
  check "updates confirmed"
    (Telemetry.Sink.confirmed sink > 0
    && Telemetry.Sink.confirmed sink = r.Spire.Scenarios.confirmed)
    (Printf.sprintf "sink=%d system=%d"
       (Telemetry.Sink.confirmed sink)
       r.Spire.Scenarios.confirmed);
  let a = Telemetry.Attribution.build sink in
  check "attribution reconciled" a.Telemetry.Attribution.reconciled
    (Printf.sprintf "sum=%.1fµs Δ=%+.3fµs"
       a.Telemetry.Attribution.sum_mean_us a.Telemetry.Attribution.delta_us);
  Telemetry.Attribution.print sink;
  if !fail > 0 then begin
    Printf.printf "telemetry_smoke: %d check(s) FAILED\n" !fail;
    exit 1
  end;
  Printf.printf "telemetry_smoke: all checks green (%d spans, %d traces)\n"
    (List.length spans)
    (Telemetry.Sink.confirmed sink)
