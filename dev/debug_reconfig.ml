(* E11 probe: run the online-reconfiguration scenario and print the
   cutover chain, downtime, and per-epoch activity envelope. *)
let () =
  let duration_us = 50_000_000 in
  let _sys, r = Spire.Scenarios.reconfiguration ~duration_us () in
  Printf.printf "final epoch=%d n=%d confirmed=%d submitted=%d\n"
    r.Spire.Scenarios.final_epoch r.final_n r.base.Spire.Scenarios.confirmed
    r.base.Spire.Scenarios.submitted;
  List.iter
    (fun (e, boundary, time) ->
      Printf.printf "cutover epoch=%d boundary=%d t=%.1fs\n" e boundary
        (float_of_int time /. 1e6))
    r.cutovers;
  Printf.printf "stale frames=%d max confirm gap=%.2fs violation=%s\n"
    r.stale_frames
    (float_of_int r.max_confirm_gap_us /. 1e6)
    (match r.violation with None -> "none" | Some v -> v);
  (* Verify the epoch-safety oracle over the recorded samples. *)
  let check = Oracle.Epoch_check.create () in
  List.iter
    (fun (s : Spire.Scenarios.activity_sample) ->
      Oracle.Epoch_check.observe_activity check ~time_us:s.at_us
        ~live:(List.map (fun (e, live, _) -> (e, live)) s.per_epoch)
        ~quorum_of:(fun e ->
          match
            List.find_opt (fun (e', _, _) -> e' = e) s.per_epoch
          with
          | Some (_, _, q) -> q
          | None -> max_int))
    r.activity;
  (match r.violation with
  | Some v -> Oracle.Epoch_check.note_violation check v
  | None -> ());
  Format.printf "oracle: %a (%d samples)@." Oracle.Verdict.pp
    (Oracle.Epoch_check.verdict check)
    (Oracle.Epoch_check.observations check)
