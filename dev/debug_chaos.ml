(* Quick chaos-harness driver: run N seeded soaks, print every report
   that is not clean (plus the first clean one for eyeballing). Usage:
     dune exec dev/debug_chaos.exe -- [count] [first_seed]   *)

let () =
  let count =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 10
  in
  let first =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1
  in
  let t0 = Unix.gettimeofday () in
  let dirty = ref 0 in
  for i = first to first + count - 1 do
    let seed = Int64.of_int (i * 1_000_003) in
    let r = Chaos.Harness.soak ~seed () in
    if not (Chaos.Harness.clean r) then begin
      incr dirty;
      Format.printf "%a@." Chaos.Harness.pp_report r
    end
    else if i = first then Format.printf "%a@." Chaos.Harness.pp_report r
    else
      Format.printf "seed %Ld: clean (%d faults, %d confirmed, worst %.0fms)@."
        seed
        (List.length r.Chaos.Harness.schedule.Chaos.Schedule.events)
        r.Chaos.Harness.confirmed r.Chaos.Harness.worst_latency_ms
  done;
  Format.printf "%d/%d dirty, %.1fs wall@." !dirty count
    (Unix.gettimeofday () -. t0)
