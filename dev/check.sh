#!/bin/sh
# Pre-commit check: tier-1 build + test suites, then a quick chaos soak
# (5 seeded within-budget schedules; every oracle must stay green).
set -e
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec dev/debug_chaos.exe -- 5

echo "check.sh: all green"
