#!/bin/sh
# Pre-commit check: tier-1 build + test suites, a quick chaos soak
# (5 seeded within-budget schedules; every oracle must stay green), a
# field-fleet smoke, a reconfiguration soak, then a release-profile
# build with E2 + E6 + E11 bench smoke runs (exercises the wire layer,
# the byte-accounting tables, and the epoch cutover path end to end).
set -e
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec dev/debug.exe -- chaos 5

# Parallel sweep smoke: E10's soak seeds farmed over 4 domains must
# print byte-identical tables to the sequential run (PAR only changes
# wall time, never results).
PAR=4 ONLY=E10 MICRO=0 dune exec bench/main.exe > /dev/null

# Field-fleet smoke at 1k devices: E12 exits nonzero if any sweep
# point confirms zero events (aggregation or the write path broken).
FLEET=1000 ONLY=E12 MICRO=0 dune exec bench/main.exe > /dev/null

# Telemetry-enabled E2 smoke: zero orphan spans, bounded open spans,
# per-phase attribution reconciling with end-to-end latency.
dune exec dev/telemetry_smoke.exe

# Reconfiguration soak: seeded fault schedules injected during epoch
# cutover windows; agreement / epoch-safety / progress must stay green.
dune exec dev/reconfig_soak.exe -- 3 7100

dune build --profile release
EXPERIMENT=E2 MICRO=0 dune exec --profile release bench/main.exe
EXPERIMENT=E6 MICRO=0 dune exec --profile release bench/main.exe
# E11 exits nonzero on any epoch-safety violation, wrong final epoch, or
# a confirmation gap over 8s during the failover/rejoin/growth arc.
EXPERIMENT=E11 MICRO=0 dune exec --profile release bench/main.exe
# E13 exits nonzero unless the adaptive controller converges within 25%
# of the best static configuration under each replayed attack, beats
# the worst static across attacks, and every knob-change journal
# reconciles with its counters (statics must issue zero requests).
EXPERIMENT=E13 MICRO=0 dune exec --profile release bench/main.exe

# Perf trajectory (telemetry disabled, as in production hot paths):
# regenerates BENCH_PERF.json and fails if E3 events/sec or the E12
# fleet confirmed-event rate falls below the floors recorded in the file.
PERF=1 dune exec --profile release bench/main.exe

echo "check.sh: all green"
