#!/bin/sh
# Pre-commit check: tier-1 build + test suites, a quick chaos soak
# (5 seeded within-budget schedules; every oracle must stay green),
# then a release-profile build with E2 + E6 bench smoke runs (exercises
# the wire layer and the byte-accounting tables end to end).
set -e
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec dev/debug_chaos.exe -- 5

dune build --profile release
EXPERIMENT=E2 MICRO=0 dune exec --profile release bench/main.exe
EXPERIMENT=E6 MICRO=0 dune exec --profile release bench/main.exe

# Perf trajectory: regenerates BENCH_PERF.json and fails if E3
# events/sec falls below the floor recorded in the file.
PERF=1 dune exec --profile release bench/main.exe

echo "check.sh: all green"
