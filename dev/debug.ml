(* Consolidated debug driver: every one-off repro/driver that used to
   be its own debug_*.exe, behind a single dispatcher.

     dune exec dev/debug.exe -- <case> [args]

   Each case module is the old executable verbatim, with Sys.argv
   replaced by the dispatcher's shifted argv (args.(0) is the case
   name, so positional indices are unchanged). *)

module Case_chaos = struct
  (* Quick chaos-harness driver: run N seeded soaks, print every report
     that is not clean (plus the first clean one for eyeballing). Usage:
       dune exec dev/debug.exe -- chaos [count] [first_seed]   *)
  
  let run (args : string array) =
      ignore (args : string array);
    let count =
      if Array.length args > 1 then int_of_string args.(1) else 10
    in
    let first =
      if Array.length args > 2 then int_of_string args.(2) else 1
    in
    let t0 = Unix.gettimeofday () in
    let dirty = ref 0 in
    for i = first to first + count - 1 do
      let seed = Int64.of_int (i * 1_000_003) in
      let r = Chaos.Harness.soak ~seed () in
      if not (Chaos.Harness.clean r) then begin
        incr dirty;
        Format.printf "%a@." Chaos.Harness.pp_report r
      end
      else if i = first then Format.printf "%a@." Chaos.Harness.pp_report r
      else
        Format.printf "seed %Ld: clean (%d faults, %d confirmed, worst %.0fms)@."
          seed
          (List.length r.Chaos.Harness.schedule.Chaos.Schedule.events)
          r.Chaos.Harness.confirmed r.Chaos.Harness.worst_latency_ms
    done;
    Format.printf "%d/%d dirty, %.1fs wall@." !dirty count
      (Unix.gettimeofday () -. t0)
end

module Case_chaos2 = struct
  (* Bisect a dirty chaos schedule: rerun every subset of its events and
     report the minimal subsets that still violate an oracle.
     Usage: dune exec dev/debug.exe -- chaos2 <seed-int> *)
  
  let run (args : string array) =
      ignore (args : string array);
    let seed_int =
      if Array.length args > 1 then int_of_string args.(1) else 9000027
    in
    let seed = Int64.of_int seed_int in
    let full = Chaos.Harness.soak ~seed () in
    Format.printf "full run:@.%a@." Chaos.Harness.pp_report full;
    let events = Array.of_list full.Chaos.Harness.schedule.Chaos.Schedule.events in
    let horizon = full.Chaos.Harness.schedule.Chaos.Schedule.horizon_us in
    let m = Array.length events in
    let dirty_masks = ref [] in
    for mask = 1 to (1 lsl m) - 1 do
      let subset =
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list events)
      in
      let schedule = { Chaos.Schedule.horizon_us = horizon; events = subset } in
      let r = Chaos.Harness.run ~seed ~schedule () in
      if not (Chaos.Harness.clean r) then dirty_masks := (mask, r) :: !dirty_masks
    done;
    (* Print minimal dirty subsets (no dirty strict subset). *)
    let masks = List.map fst !dirty_masks in
    List.iter
      (fun (mask, r) ->
        let strictly_within other = other land mask = other && other <> mask in
        if not (List.exists strictly_within masks) then begin
          Format.printf "@.MINIMAL dirty subset (mask %d):@." mask;
          Format.printf "%a@." Chaos.Harness.pp_report r
        end)
      !dirty_masks;
    Format.printf "%d/%d subsets dirty@." (List.length !dirty_masks)
      ((1 lsl m) - 1)
end

module Case_e7 = struct
  let run (args : string array) =
      ignore (args : string array);
    let sys = Spire.System.create (Spire.System.default_config ()) in
    Spire.System.start sys;
    ignore
      (Sim.Engine.schedule_at (Spire.System.engine sys) ~time_us:10_000_000
         (fun () -> Spire.System.kill_site sys 0));
    Spire.System.run sys ~duration_us:20_000_000;
    (* Mid-outage: who is stuck? *)
    for c = 0 to 9 do
      let ep = Scada.Proxy.endpoint (Spire.System.proxy sys c) in
      Printf.printf "client %d: completed=%d pending=%d resubmits=%d\n" c
        (Scada.Endpoint.completed_count ep)
        (Scada.Endpoint.pending_count ep)
        (Scada.Endpoint.resubmit_count ep)
    done;
    Printf.printf "confirmed=%d submitted=%d\n"
      (Spire.System.confirmed_updates sys)
      (Spire.System.submitted_updates sys)
end

module Case_iso = struct
  let run (args : string array) =
      ignore (args : string array);
    let cfg =
      {
        (Spire.System.default_config ()) with
        Spire.System.substations = 4;
        poll_interval_us = 50_000;
      }
    in
    let sys = Spire.System.create cfg in
    Spire.System.start sys;
    ignore
      (Sim.Engine.schedule_at (Spire.System.engine sys) ~time_us:1_000_000
         (fun () -> Spire.System.isolate_site sys 0));
    ignore
      (Sim.Engine.schedule_at (Spire.System.engine sys) ~time_us:5_000_000
         (fun () -> Spire.System.reconnect_site sys 0));
    for i = 1 to 20 do
      Spire.System.run sys ~duration_us:500_000;
      Printf.printf "t=%4.1fs confirmed=%d views=[%s] execs=[%s]\n"
        (float_of_int i *. 0.5)
        (Spire.System.confirmed_updates sys)
        (String.concat ","
           (List.init 6 (fun r -> string_of_int (Spire.System.view_of sys r))))
        (String.concat ","
           (List.init 6 (fun r ->
                string_of_int (Bft.Exec_log.length (Spire.System.exec_log sys r)))))
    done;
    Spire.System.assert_agreement sys
end

module Case_loss = struct
  let run (args : string array) =
      ignore (args : string array);
    let cfg =
      { (Spire.System.default_config ()) with Spire.System.substations = 10 }
    in
    let sys = Spire.System.create cfg in
    let net = Spire.System.net sys in
    let topo = Overlay.Net.topology net in
    let n = Spire.System.replica_count sys in
    List.iter
      (fun link ->
        let a = link.Overlay.Topology.endpoint_a
        and b = link.Overlay.Topology.endpoint_b in
        if
          a < n && b < n
          && Overlay.Topology.site_of topo a <> Overlay.Topology.site_of topo b
        then Overlay.Net.set_loss_probability net a b 0.4)
      (Overlay.Topology.links topo);
    Spire.System.start sys;
    (try
       for _ = 1 to 40 do
         Spire.System.run sys ~duration_us:500_000;
         Spire.System.assert_agreement sys
       done;
       print_endline "no divergence in 20s"
     with Failure msg ->
       Printf.printf "%s at t=%d\n" msg (Sim.Engine.now (Spire.System.engine sys)));
    (* Compare logs pairwise for first difference. *)
    let logs = List.init n (fun r -> Spire.System.exec_log sys r) in
    let l0 = List.nth logs 0 in
    List.iteri
      (fun i li ->
        if i > 0 then begin
          let n0 = Bft.Exec_log.length l0 and ni = Bft.Exec_log.length li in
          let common = min n0 ni in
          let rec first_diff p =
            if p > common then None
            else if
              not
                (Cryptosim.Digest.equal
                   (Bft.Exec_log.digest_at l0 p)
                   (Bft.Exec_log.digest_at li p))
            then Some p
            else first_diff (p + 1)
          in
          match first_diff 1 with
          | Some p ->
            let u0 = Bft.Exec_log.nth l0 p and ui = Bft.Exec_log.nth li p in
            Printf.printf
              "replica 0 vs %d: first diff at position %d: (%d,%d)%s vs (%d,%d)%s\n"
              i p (fst (Bft.Update.key u0)) (snd (Bft.Update.key u0))
              "" (fst (Bft.Update.key ui)) (snd (Bft.Update.key ui)) ""
          | None ->
            Printf.printf "replica 0 vs %d: no diff in common prefix (%d vs %d)\n" i
              n0 ni
        end)
      logs;
    (* Compare applied slot matrices between replicas 0 and 4. *)
    (match
       ( List.nth
           (List.init n (fun r ->
                match Spire.System.exec_log sys r with _ -> r))
           0,
         () )
     with
    | _ -> ());
    ()
end

module Case_loss2 = struct
  (* Focused repro: prime cluster with random message loss; find the
     first slot where applied matrices diverge. *)
  
  let quorum_6 = Bft.Quorum.create ~n:6 ~f:1 ~k:1
  
  let fast_prime quorum =
    {
      (Prime.Replica.default_config quorum) with
      Prime.Replica.aru_interval_us = 2_000;
      proposal_interval_us = 5_000;
      tat_threshold_us = 100_000;
      viewchange_timeout_us = 400_000;
      watchdog_interval_us = 10_000;
      checkpoint_interval = 16;
    }
  
  let run (args : string array) =
      ignore (args : string array);
    let seed = try Int64.of_string args.(1) with _ -> 99L in
    let loss = try float_of_string args.(2) with _ -> 0.10 in
    let engine = Sim.Engine.create ~seed () in
    let drop_rng = Sim.Engine.rng engine in
    let n = 6 in
    let replicas : Prime.Replica.t option array = Array.make n None in
    let cluster =
      Bft.Cluster.create ~engine ~n
        ~latency_us:(fun _ _ -> 1_000)
        ~make:(fun i env ->
          (* Wrap send with random loss. *)
          let lossy_env =
            {
              env with
              Bft.Env.send =
                (fun dst msg ->
                  if not (Sim.Rng.bernoulli drop_rng loss) then
                    env.Bft.Env.send dst msg);
            }
          in
          let r =
            Prime.Replica.create (fast_prime quorum_6) lossy_env
              ~execute:(fun _ _ -> ())
          in
          replicas.(i) <- Some r;
          Prime.Replica.start r;
          r)
        ~deliver:(fun r ~from msg -> Prime.Replica.handle r ~from msg)
    in
    ignore cluster;
    for i = 1 to 60 do
      let origin = i mod n in
      ignore
        (Sim.Engine.schedule_at engine ~time_us:(10_000 + (i * 40_000)) (fun () ->
             Prime.Replica.submit
               (Option.get replicas.(origin))
               (Bft.Update.create ~client:(i mod 3)
                  ~client_seq:(((i - 1) / 3) + 1)
                  ~operation:(Printf.sprintf "op%d" i)
                  ~submitted_us:0)))
    done;
    Sim.Engine.run engine ~until_us:20_000_000;
    let get r = Option.get replicas.(r) in
    for r = 0 to n - 1 do
      Printf.printf "replica %d: view=%d exec=%d applied=%d\n" r
        (Prime.Replica.view (get r))
        (Bft.Exec_log.length (Prime.Replica.exec_log (get r)))
        (Prime.Replica.last_applied (get r))
    done;
    (* Compare applied matrices slot by slot. *)
    let max_applied =
      List.fold_left max 0 (List.init n (fun r -> Prime.Replica.last_applied (get r)))
    in
    for seq = 1 to max_applied do
      let digests =
        List.init n (fun r -> Prime.Replica.applied_matrix_digest (get r) seq)
      in
      let present = List.filter_map Fun.id digests in
      match present with
      | [] -> ()
      | first :: rest ->
        if not (List.for_all (Cryptosim.Digest.equal first) rest) then
          Printf.printf "slot %d: DIVERGENT matrices: %s\n" seq
            (String.concat " "
               (List.mapi
                  (fun r d ->
                    match d with
                    | None -> Printf.sprintf "%d:-" r
                    | Some d -> Printf.sprintf "%d:%s" r (String.sub (Cryptosim.Digest.to_hex d) 0 6))
                  digests))
    done;
    (* Agreement check. *)
    let l0 = Prime.Replica.exec_log (get 0) in
    for r = 1 to n - 1 do
      if not (Bft.Exec_log.prefix_equal l0 (Prime.Replica.exec_log (get r))) then
        Printf.printf "DIVERGENCE between 0 and %d\n" r
    done;
    print_endline "done"
end

module Case_one = struct
  let log fmt = Printf.eprintf (fmt ^^ "\n%!")
  
  let run (args : string array) =
      ignore (args : string array);
    let which = try args.(1) with _ -> "e5" in
    let t0 = Unix.gettimeofday () in
    (match which with
    | "e5" ->
      let sys = Spire.System.create (Spire.System.default_config ()) in
      Spire.System.start sys;
      ignore
        (Spire.System.enable_recovery sys ~rotation_period_us:60_000_000
           ~recovery_duration_us:3_000_000);
      for i = 1 to 12 do
        Spire.System.run sys ~duration_us:10_000_000;
        log "t=%ds events=%d confirmed=%d rss-words=%d" (i * 10)
          (Sim.Engine.processed (Spire.System.engine sys))
          (Spire.System.confirmed_updates sys)
          (let s = Gc.quick_stat () in s.Gc.heap_words)
      done;
      Spire.System.assert_agreement sys;
      log "E5 ok"
    | "e6" ->
      List.iter
        (fun (name, mode) ->
          let _, r =
            Spire.Scenarios.link_degradation ~mode ~factor:20.
              ~attack_from_us:5_000_000 ~duration_us:20_000_000 ()
          in
          log "E6 %s: confirmed=%d mean=%.1f p99=%.1f" name r.Spire.Scenarios.confirmed
            (Stats.Histogram.mean r.Spire.Scenarios.hist)
            (Stats.Histogram.percentile r.Spire.Scenarios.hist 99.))
        [ ("shortest", Overlay.Net.Shortest); ("redundant2", Overlay.Net.Redundant 2); ("flood", Overlay.Net.Flood) ]
    | "e7" ->
      let _, r =
        Spire.Scenarios.site_failure ~site:0 ~fail_at_us:10_000_000
          ~restore_at_us:(Some 25_000_000) ~duration_us:40_000_000 ()
      in
      log "E7: confirmed=%d/%d" r.Spire.Scenarios.confirmed r.Spire.Scenarios.submitted
    | "e9" ->
      let _, c =
        Spire.Scenarios.intrusion_campaign ~diversity_on:true ~recovery_on:true
          ~duration_us:(2 * 3600 * 1_000_000) ()
      in
      log "E9: max=%d total=%d" c.Spire.Scenarios.max_simultaneous_compromised
        c.Spire.Scenarios.total_compromises
    | other -> log "unknown %s" other);
    log "done in %.1fs" (Unix.gettimeofday () -. t0)
end

module Case_pbft = struct
  let run (args : string array) =
      ignore (args : string array);
    let quorum = Bft.Quorum.create ~n:4 ~f:1 ~k:0 in
    let config =
      {
        (Pbft.Replica.default_config quorum) with
        Pbft.Replica.request_timeout_us = 500_000;
        viewchange_timeout_us = 1_000_000;
        watchdog_interval_us = 50_000;
        checkpoint_interval = 8;
      }
    in
    let engine = Sim.Engine.create ~seed:42L () in
    let cluster =
      Bft.Cluster.create ~engine ~n:4
        ~latency_us:(fun _ _ -> 1_000)
        ~make:(fun i env ->
          let env = { env with Bft.Env.trace = (fun s -> Printf.printf "[%d @ %d] %s\n" i (Sim.Engine.now engine) s) } in
          let r = Pbft.Replica.create config env ~execute:(fun seq u -> Printf.printf "[%d @ %d] exec s%d %s\n" i (Sim.Engine.now engine) seq (Format.asprintf "%a" Bft.Update.pp u)) in
          Pbft.Replica.start r;
          r)
        ~deliver:(fun r ~from msg -> Pbft.Replica.handle r ~from msg)
    in
    let r0 = Bft.Cluster.replica cluster 0 in
    (Pbft.Replica.faults r0).Bft.Faults.crashed <- true;
    for i = 1 to 5 do
      ignore
        (Sim.Engine.schedule_at engine ~time_us:(100_000 + (i * 10_000)) (fun () ->
             Pbft.Replica.submit (Bft.Cluster.replica cluster 1)
               (Bft.Update.create ~client:1 ~client_seq:i ~operation:"op" ~submitted_us:0)))
    done;
    Sim.Engine.run engine ~until_us:20_000_000;
    for i = 0 to 3 do
      let r = Bft.Cluster.replica cluster i in
      Printf.printf "replica %d: view=%d last_exec=%d pending=%d vc=%d\n" i
        (Pbft.Replica.view r) (Pbft.Replica.last_executed r)
        (Pbft.Replica.pending_count r) (Pbft.Replica.view_changes r)
    done
end

module Case_rec = struct
  let run (args : string array) =
      ignore (args : string array);
    let cfg =
      {
        (Spire.System.default_config ()) with
        Spire.System.substations = 4;
        poll_interval_us = 50_000;
      }
    in
    let sys = Spire.System.create cfg in
    Spire.System.start sys;
    ignore
      (Spire.System.enable_recovery sys ~rotation_period_us:3_000_000
         ~recovery_duration_us:300_000);
    for i = 1 to 14 do
      Spire.System.run sys ~duration_us:500_000;
      Printf.printf "t=%.1fs confirmed=%d views=[%s]\n" (float_of_int i *. 0.5)
        (Spire.System.confirmed_updates sys)
        (String.concat ","
           (List.init 6 (fun r -> string_of_int (Spire.System.view_of sys r))))
    done;
    Spire.System.assert_agreement sys
end

module Case_reconfig = struct
  (* E11 probe: run the online-reconfiguration scenario and print the
     cutover chain, downtime, and per-epoch activity envelope. *)
  let run (args : string array) =
      ignore (args : string array);
    let duration_us = 50_000_000 in
    let _sys, r = Spire.Scenarios.reconfiguration ~duration_us () in
    Printf.printf "final epoch=%d n=%d confirmed=%d submitted=%d\n"
      r.Spire.Scenarios.final_epoch r.final_n r.base.Spire.Scenarios.confirmed
      r.base.Spire.Scenarios.submitted;
    List.iter
      (fun (e, boundary, time) ->
        Printf.printf "cutover epoch=%d boundary=%d t=%.1fs\n" e boundary
          (float_of_int time /. 1e6))
      r.cutovers;
    Printf.printf "stale frames=%d max confirm gap=%.2fs violation=%s\n"
      r.stale_frames
      (float_of_int r.max_confirm_gap_us /. 1e6)
      (match r.violation with None -> "none" | Some v -> v);
    (* Verify the epoch-safety oracle over the recorded samples. *)
    let check = Oracle.Epoch_check.create () in
    List.iter
      (fun (s : Spire.Scenarios.activity_sample) ->
        Oracle.Epoch_check.observe_activity check ~time_us:s.at_us
          ~live:(List.map (fun (e, live, _) -> (e, live)) s.per_epoch)
          ~quorum_of:(fun e ->
            match
              List.find_opt (fun (e', _, _) -> e' = e) s.per_epoch
            with
            | Some (_, _, q) -> q
            | None -> max_int))
      r.activity;
    (match r.violation with
    | Some v -> Oracle.Epoch_check.note_violation check v
    | None -> ());
    Format.printf "oracle: %a (%d samples)@." Oracle.Verdict.pp
      (Oracle.Epoch_check.verdict check)
      (Oracle.Epoch_check.observations check)
end

module Case_scenarios = struct
  let pr_result name (r : Spire.Scenarios.latency_result) =
    Printf.printf "%s: submitted=%d confirmed=%d max_view=%d\n" name r.submitted
      r.confirmed r.max_view;
    if Stats.Histogram.count r.hist > 0 then
      Format.printf "  latency: %a@." Stats.Histogram.pp r.hist
  
  let run (args : string array) =
      ignore (args : string array);
    let t0 = Unix.gettimeofday () in
    (* E4 prime *)
    let _, rp =
      Spire.Scenarios.leader_attack ~protocol:Spire.System.Prime_protocol
        ~delay_us:1_000_000 ~attack_from_us:5_000_000 ~duration_us:30_000_000 ()
    in
    pr_result "E4 prime (1s leader delay)" rp;
    let _, rb =
      Spire.Scenarios.leader_attack ~protocol:Spire.System.Pbft_protocol
        ~delay_us:1_000_000 ~attack_from_us:5_000_000 ~duration_us:30_000_000 ()
    in
    pr_result "E4 pbft (1s leader delay)" rb;
    Printf.printf "-- %.1fs\n%!" (Unix.gettimeofday () -. t0);
    (* E5 recovery *)
    let _, r5, events =
      Spire.Scenarios.proactive_recovery ~rotation_period_us:60_000_000
        ~recovery_duration_us:3_000_000 ~duration_us:120_000_000 ()
    in
    pr_result "E5 recovery" r5;
    Printf.printf "  recovery events: %d\n" (List.length events);
    Printf.printf "-- %.1fs\n%!" (Unix.gettimeofday () -. t0);
    (* E6 degradation *)
    List.iter
      (fun (name, mode) ->
        let _, r =
          Spire.Scenarios.link_degradation ~mode ~factor:20.
            ~attack_from_us:5_000_000 ~duration_us:20_000_000 ()
        in
        pr_result ("E6 " ^ name) r)
      [
        ("shortest", Overlay.Net.Shortest);
        ("redundant2", Overlay.Net.Redundant 2);
        ("flood", Overlay.Net.Flood);
      ];
    Printf.printf "-- %.1fs\n%!" (Unix.gettimeofday () -. t0);
    (* E7 site failure *)
    let _, r7 =
      Spire.Scenarios.site_failure ~site:0 ~fail_at_us:10_000_000
        ~restore_at_us:(Some 25_000_000) ~duration_us:40_000_000 ()
    in
    pr_result "E7 site failure" r7;
    Printf.printf "-- %.1fs\n%!" (Unix.gettimeofday () -. t0);
    (* E9 campaign quick *)
    let _, c =
      Spire.Scenarios.intrusion_campaign ~diversity_on:true ~recovery_on:true
        ~duration_us:(6 * 3600 * 1_000_000) ()
    in
    Printf.printf
      "E9 div+rec: max_simul=%d total=%d exploits=%d above_f=%ds final=%d\n"
      c.Spire.Scenarios.max_simultaneous_compromised
      c.Spire.Scenarios.total_compromises c.Spire.Scenarios.exploits_developed
      (c.Spire.Scenarios.time_above_f_us / 1_000_000)
      c.Spire.Scenarios.final_compromised;
    let _, c2 =
      Spire.Scenarios.intrusion_campaign ~diversity_on:false ~recovery_on:false
        ~duration_us:(6 * 3600 * 1_000_000) ()
    in
    Printf.printf "E9 ablation: max_simul=%d total=%d final=%d\n"
      c2.Spire.Scenarios.max_simultaneous_compromised
      c2.Spire.Scenarios.total_compromises c2.Spire.Scenarios.final_compromised;
    Printf.printf "-- total %.1fs\n" (Unix.gettimeofday () -. t0)
end

module Case_site = struct
  let run (args : string array) =
      ignore (args : string array);
    let cfg =
      {
        (Spire.System.default_config ()) with
        Spire.System.substations = 4;
        poll_interval_us = 50_000;
      }
    in
    let sys = Spire.System.create cfg in
    Spire.System.start sys;
    ignore
      (Sim.Engine.schedule_at (Spire.System.engine sys) ~time_us:1_000_000
         (fun () -> Spire.System.kill_site sys 0));
    for i = 1 to 10 do
      Spire.System.run sys ~duration_us:500_000;
      Printf.printf "t=%.1fs confirmed=%d views=[%s] leader=%d\n" (float_of_int i *. 0.5)
        (Spire.System.confirmed_updates sys)
        (String.concat ","
           (List.init 6 (fun r -> string_of_int (Spire.System.view_of sys r))))
        (Spire.System.current_leader sys)
    done;
    for c = 0 to 3 do
      let ep = Scada.Proxy.endpoint (Spire.System.proxy sys c) in
      Printf.printf "client %d: completed=%d pending=%d resubmits=%d\n" c
        (Scada.Endpoint.completed_count ep)
        (Scada.Endpoint.pending_count ep)
        (Scada.Endpoint.resubmit_count ep)
    done;
    Spire.System.assert_agreement sys
end

module Case_stress = struct
  (* Reproduce a failing stress seed with diagnostics. *)
  
  let quorum_6 = Bft.Quorum.create ~n:6 ~f:1 ~k:1
  
  let fast_prime quorum =
    {
      (Prime.Replica.default_config quorum) with
      Prime.Replica.aru_interval_us = 2_000;
      proposal_interval_us = 5_000;
      tat_threshold_us = 100_000;
      viewchange_timeout_us = 400_000;
      watchdog_interval_us = 10_000;
      checkpoint_interval = 16;
    }
  
  let run (args : string array) =
      ignore (args : string array);
    let seed = int_of_string args.(1) in
    let engine = Sim.Engine.create ~seed:(Int64.of_int seed) () in
    let rng = Sim.Engine.rng engine in
    let n = 6 in
    let cluster =
      Bft.Cluster.create ~engine ~n
        ~latency_us:(fun _ _ -> 500 + Sim.Rng.int rng 2_000)
        ~make:(fun _ env ->
          let r = Prime.Replica.create (fast_prime quorum_6) env ~execute:(fun _ _ -> ()) in
          Prime.Replica.start r;
          r)
        ~deliver:(fun r ~from msg -> Prime.Replica.handle r ~from msg)
    in
    let victim = Sim.Rng.int rng n in
    for i = 1 to 40 do
      let origin = (victim + 1 + Sim.Rng.int rng (n - 1)) mod n in
      let time_us = 10_000 + Sim.Rng.int rng 2_000_000 in
      ignore
        (Sim.Engine.schedule_at engine ~time_us (fun () ->
             Prime.Replica.submit
               (Bft.Cluster.replica cluster origin)
               (Bft.Update.create ~client:(i mod 3)
                  ~client_seq:(((i - 1) / 3) + 1)
                  ~operation:(Printf.sprintf "op%d" i)
                  ~submitted_us:time_us)))
    done;
    let misbehaviour = Sim.Rng.int rng 4 in
    let faults = Prime.Replica.faults (Bft.Cluster.replica cluster victim) in
    let attack_at = 200_000 + Sim.Rng.int rng 500_000 in
    ignore
      (Sim.Engine.schedule_at engine ~time_us:attack_at (fun () ->
           match misbehaviour with
           | 0 -> faults.Bft.Faults.crashed <- true
           | 1 -> faults.Bft.Faults.silent <- true
           | 2 -> faults.Bft.Faults.proposal_delay_us <- 300_000
           | _ ->
             let drop_target = Sim.Rng.int rng n in
             faults.Bft.Faults.drop_to <- (fun r -> r = drop_target)));
    let reset = Sim.Rng.bool rng in
    if reset then
      ignore
        (Sim.Engine.schedule_at engine
           ~time_us:(1_200_000 + Sim.Rng.int rng 500_000)
           (fun () -> Bft.Faults.reset faults));
    Printf.printf "victim=%d misbehaviour=%d attack_at=%d reset=%b\n" victim
      misbehaviour attack_at reset;
    Sim.Engine.run engine ~until_us:12_000_000;
    for r = 0 to n - 1 do
      let rep = Bft.Cluster.replica cluster r in
      Printf.printf
        "replica %d: view=%d exec=%d last_applied=%d recv=%s suspected=%b\n" r
        (Prime.Replica.view rep)
        (Bft.Exec_log.length (Prime.Replica.exec_log rep))
        (Prime.Replica.last_applied rep)
        (Format.asprintf "%a" Prime.Matrix.pp_vector (Prime.Replica.recv_vector rep))
        (Prime.Replica.suspected rep)
    done
end

module Case_system = struct
  let run (args : string array) =
      ignore (args : string array);
    let cfg = Spire.System.default_config () in
    let sys = Spire.System.create cfg in
    Spire.System.start sys;
    let t0 = Unix.gettimeofday () in
    Spire.System.run sys ~duration_us:10_000_000;
    let wall = Unix.gettimeofday () -. t0 in
    Spire.System.assert_agreement sys;
    let hist = Spire.System.latency_histogram sys in
    Printf.printf "wall time: %.2fs, events: %d\n" wall
      (Sim.Engine.processed (Spire.System.engine sys));
    Printf.printf "submitted=%d confirmed=%d\n"
      (Spire.System.submitted_updates sys)
      (Spire.System.confirmed_updates sys);
    if Stats.Histogram.count hist > 0 then
      Format.printf "latency ms: %a@." Stats.Histogram.pp hist
    else print_endline "NO CONFIRMATIONS";
    for r = 0 to Spire.System.replica_count sys - 1 do
      Printf.printf "replica %d: view=%d exec=%d\n" r
        (Spire.System.view_of sys r)
        (Bft.Exec_log.length (Spire.System.exec_log sys r))
    done
end

module Case_par = struct
  (* Conservative-lookahead parallel execution probe: one E2 instance
     with its site shards on N domains, dumping per-shard processed
     counts, heap high-water marks and the window scheduler's stall
     statistics. Usage:
       dune exec dev/debug.exe -- par [domains] [seconds]   *)

  let run (args : string array) =
    let domains =
      if Array.length args > 1 then int_of_string args.(1) else 4
    in
    let seconds = if Array.length args > 2 then int_of_string args.(2) else 10 in
    let cfg =
      { (Spire.System.default_config ()) with Spire.System.intra_domains = domains }
    in
    let t0 = Unix.gettimeofday () in
    let sys, r =
      Spire.Scenarios.fault_free ~config:cfg
        ~duration_us:(seconds * 1_000_000) ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    let engine = Spire.System.engine sys in
    let k = Sim.Engine.shards engine in
    Printf.printf
      "E2 %ds virtual on %d domain(s): confirmed=%d views=%d events=%d \
       wall=%.2fs\n"
      seconds domains r.Spire.Scenarios.confirmed r.Spire.Scenarios.max_view
      (Sim.Engine.processed engine) wall;
    Printf.printf "per-shard (0 = control heap):\n";
    for s = 0 to k - 1 do
      Printf.printf "  shard %d: processed=%8d heap-hi-water=%5d\n" s
        (Sim.Engine.processed_of engine s)
        (Sim.Engine.heap_hi_water engine s)
    done;
    (match Spire.System.intra_stats sys with
    | None ->
      Printf.printf
        "scheduler: sequential engine (intra_domains <= 1 or telemetry on)\n"
    | Some st ->
      Printf.printf "scheduler: %s\n"
        (Format.asprintf "%a" Sim.Conservative.pp_stats st);
      Printf.printf "  lookahead=%dus\n" st.Sim.Conservative.lookahead_us;
      Array.iteri
        (fun s stalls ->
          if s > 0 then
            Printf.printf
              "  stripe %d: stalled %d/%d windows, incoming lookahead %dus\n" s
              stalls st.Sim.Conservative.windows
              st.Sim.Conservative.incoming_lookahead_us.(s))
        st.Sim.Conservative.stalls);
    Printf.printf "%!"
end

module Case_adapt = struct
  (* Adaptive-resilience probe: one E13 arm under a chosen attack, with
     the knob-change journal dumped at the end. Usage:
       dune exec dev/debug.exe -- adapt [leader|delay] [seconds]   *)

  let run (args : string array) =
    let attack_name =
      if Array.length args > 1 then args.(1) else "delay"
    in
    let seconds = if Array.length args > 2 then int_of_string args.(2) else 40 in
    let attack =
      match attack_name with
      | "leader" -> Spire.Scenarios.Leader_slowdown 1_000_000
      | "delay" -> Spire.Scenarios.Wan_delay 20.
      | other ->
        Printf.eprintf "unknown attack %S (leader|delay)\n" other;
        exit 2
    in
    let duration_us = seconds * 1_000_000 in
    let attack_from_us = duration_us / 4 in
    let t0 = Unix.gettimeofday () in
    let sys, r =
      Spire.Scenarios.adaptive ~attack ~attack_from_us ~duration_us ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    let b = r.Spire.Scenarios.base in
    Printf.printf
      "adaptive vs %s attack, %ds virtual (attack at %ds): wall=%.2fs\n"
      attack_name seconds (attack_from_us / 1_000_000) wall;
    Printf.printf
      "confirmed=%d/%d views=%d post-attack p99=%.1fms converged p99=%.1fms\n"
      b.Spire.Scenarios.confirmed b.Spire.Scenarios.submitted
      b.Spire.Scenarios.max_view r.Spire.Scenarios.post_attack_p99_ms
      (Spire.Scenarios.post_attack_p99 b.Spire.Scenarios.series
         ~from_us:(attack_from_us + (duration_us / 4)));
    Printf.printf "knobs: applied=%d rejected=%d journal_consistent=%b\n"
      r.Spire.Scenarios.knob_applied r.Spire.Scenarios.knob_rejected
      r.Spire.Scenarios.journal_consistent;
    Control.Knobs.print_journal (Spire.System.knobs sys);
    Printf.printf "%!"
end

let cases =
  [
    ("adapt", Case_adapt.run);
    ("chaos", Case_chaos.run);
    ("par", Case_par.run);
    ("chaos2", Case_chaos2.run);
    ("e7", Case_e7.run);
    ("iso", Case_iso.run);
    ("loss", Case_loss.run);
    ("loss2", Case_loss2.run);
    ("one", Case_one.run);
    ("pbft", Case_pbft.run);
    ("rec", Case_rec.run);
    ("reconfig", Case_reconfig.run);
    ("scenarios", Case_scenarios.run);
    ("site", Case_site.run);
    ("stress", Case_stress.run);
    ("system", Case_system.run);
  ]

let () =
  match Array.to_list Sys.argv with
  | _ :: name :: rest when List.mem_assoc name cases ->
    (List.assoc name cases) (Array.of_list (name :: rest))
  | _ ->
    Printf.eprintf "usage: debug.exe <case> [args]\navailable cases: %s\n"
      (String.concat " " (List.map fst cases));
    exit 2
