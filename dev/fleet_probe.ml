(* Quick eyeball probe for the device-fleet path (E12): run a small
   fleet, print the roll-up stats and the wire ledger. Knobs:
   DEVICES (default 1000), CONC (default 4), DUR_S (default 10). *)

let env_int name default =
  match Sys.getenv_opt name with Some s -> int_of_string s | None -> default

let () =
  let devices = env_int "DEVICES" 1000 in
  let concentrators = env_int "CONC" 4 in
  let duration_us = env_int "DUR_S" 10 * 1_000_000 in
  let sys, res = Spire.Scenarios.fleet ~concentrators ~devices ~duration_us () in
  Printf.printf "confirmed=%d submitted=%d max_view=%d\n"
    res.Spire.Scenarios.confirmed res.Spire.Scenarios.submitted
    res.Spire.Scenarios.max_view;
  let s = Spire.System.fleet_stats sys in
  Printf.printf
    "devices=%d rounds=%d events_seen=%d reports=%d dups=%d churn=%d \
     adverts=%d frames=%d polls=%d poll_bytes=%d writes=%d conf_events=%d \
     conf_writes=%d\n"
    s.Field.Concentrator.device_count s.rounds s.events_seen
    s.reports_accepted s.dups_dropped s.churn s.adverts_sent s.report_frames
    s.polls_sent s.poll_bytes s.writes_issued s.confirmed_events
    s.confirmed_writes;
  List.iter
    (fun (k, f, b) -> Printf.printf "  %-28s %8d %12d\n" k f b)
    (Spire.System.wire_traffic sys)
