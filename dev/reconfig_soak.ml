(* Reconfiguration chaos soak runner: N seeded runs of faults injected
   during membership cutover windows. Exits nonzero on any violation.
   Usage: reconfig_soak [runs] [first_seed] *)
let () =
  let runs =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 3
  in
  let first_seed =
    if Array.length Sys.argv > 2 then Int64.of_string Sys.argv.(2) else 7100L
  in
  let failures = ref 0 in
  for i = 0 to runs - 1 do
    let seed = Int64.add first_seed (Int64.of_int i) in
    let report = Chaos.Harness.reconfig_soak ~seed () in
    Format.printf "%a@." Chaos.Harness.pp_reconfig_report report;
    if not (Chaos.Harness.reconfig_clean report) then incr failures
  done;
  if !failures > 0 then begin
    Printf.eprintf "reconfig_soak: %d/%d runs had violations\n" !failures runs;
    exit 1
  end;
  Printf.printf "reconfig_soak: %d/%d runs clean\n" runs runs
