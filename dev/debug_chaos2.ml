(* Bisect a dirty chaos schedule: rerun every subset of its events and
   report the minimal subsets that still violate an oracle.
   Usage: dune exec dev/debug_chaos2.exe -- <seed-int> *)

let () =
  let seed_int =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 9000027
  in
  let seed = Int64.of_int seed_int in
  let full = Chaos.Harness.soak ~seed () in
  Format.printf "full run:@.%a@." Chaos.Harness.pp_report full;
  let events = Array.of_list full.Chaos.Harness.schedule.Chaos.Schedule.events in
  let horizon = full.Chaos.Harness.schedule.Chaos.Schedule.horizon_us in
  let m = Array.length events in
  let dirty_masks = ref [] in
  for mask = 1 to (1 lsl m) - 1 do
    let subset =
      List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list events)
    in
    let schedule = { Chaos.Schedule.horizon_us = horizon; events = subset } in
    let r = Chaos.Harness.run ~seed ~schedule () in
    if not (Chaos.Harness.clean r) then dirty_masks := (mask, r) :: !dirty_masks
  done;
  (* Print minimal dirty subsets (no dirty strict subset). *)
  let masks = List.map fst !dirty_masks in
  List.iter
    (fun (mask, r) ->
      let strictly_within other = other land mask = other && other <> mask in
      if not (List.exists strictly_within masks) then begin
        Format.printf "@.MINIMAL dirty subset (mask %d):@." mask;
        Format.printf "%a@." Chaos.Harness.pp_report r
      end)
    !dirty_masks;
  Format.printf "%d/%d subsets dirty@." (List.length !dirty_masks)
    ((1 lsl m) - 1)
