(* Throwaway probe: golden values + wall-clock for the perf PR. *)
let () =
  let t0 = Unix.gettimeofday () in
  let sys, r = Spire.Scenarios.fault_free ~duration_us:(5 * 60 * 1_000_000) () in
  let wall_e2 = Unix.gettimeofday () -. t0 in
  Printf.printf "E2 confirmed=%d max_view=%d wall=%.2fs events=%d\n"
    r.Spire.Scenarios.confirmed r.Spire.Scenarios.max_view wall_e2
    (Sim.Engine.processed (Spire.System.engine sys));
  List.iter
    (fun (kind, frames, bytes) ->
      Printf.printf "  ledger %s frames=%d bytes=%d\n" kind frames bytes)
    (Spire.System.wire_traffic sys);
  let t1 = Unix.gettimeofday () in
  let sys3, r3 = Spire.Scenarios.fault_free ~duration_us:(30 * 60 * 1_000_000) () in
  let wall_e3 = Unix.gettimeofday () -. t1 in
  Printf.printf "E3 confirmed=%d wall=%.2fs events=%d ev/s=%.0f\n"
    r3.Spire.Scenarios.confirmed wall_e3
    (Sim.Engine.processed (Spire.System.engine sys3))
    (float_of_int (Sim.Engine.processed (Spire.System.engine sys3)) /. wall_e3);
  let t2 = Unix.gettimeofday () in
  let _sys6, _r6 =
    Spire.Scenarios.link_degradation ~mode:Overlay.Net.Flood ~factor:20.
      ~attack_from_us:(5 * 1_000_000) ~duration_us:(20 * 1_000_000) ()
  in
  Printf.printf "E6(flood) wall=%.2fs\n" (Unix.gettimeofday () -. t2)
