type record = { time_us : int; category : string; message : string }

type t = {
  mutable enabled : bool;
  ring : record Telemetry.Ring.t;
  mutable sink : Telemetry.Sink.t;
}

let create ?(capacity = 65536) () =
  {
    enabled = false;
    ring = Telemetry.Ring.create capacity;
    sink = Telemetry.Sink.null;
  }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let set_sink t sink = t.sink <- sink

let emit t ~time_us ~category message =
  if t.enabled then begin
    Telemetry.Ring.push t.ring { time_us; category; message };
    if Telemetry.Sink.enabled t.sink then
      Telemetry.Sink.annotate t.sink
        ~label:(category ^ ": " ^ message)
        ~now:time_us ()
  end

let records t = Telemetry.Ring.to_list t.ring

let by_category t cat =
  List.filter (fun r -> String.equal r.category cat) (records t)

let count t = Telemetry.Ring.length t.ring
let dropped t = Telemetry.Ring.dropped t.ring
let clear t = Telemetry.Ring.clear t.ring

let pp_record ppf r =
  Format.fprintf ppf "[%a] %s: %s" Engine.pp_time_us r.time_us r.category
    r.message
