(** Lightweight structured trace of simulation events.

    Components emit trace records (category + message + virtual time);
    tests and the scenario runner inspect them to assert ordering
    properties without coupling to log formatting. Tracing is off by
    default and cheap when disabled.

    Retention is bounded: records live in a drop-oldest ring
    ({!Telemetry.Ring}), so memory stays constant on multi-hour
    simulated runs; {!dropped} reports how many old records were shed.
    Optionally, emits are mirrored into a {!Telemetry.Sink} as
    zero-duration annotation spans so traces and spans share one
    timeline in the Chrome export. *)

type record = { time_us : int; category : string; message : string }

type t

(** [create ()] is a disabled trace (records are dropped). [capacity]
    bounds retained records (default 65536, oldest dropped first). *)
val create : ?capacity:int -> unit -> t

(** [enable t] starts retaining records; [disable t] stops. *)
val enable : t -> unit

val disable : t -> unit

(** [set_sink t sink] mirrors subsequent emits (while enabled) into
    [sink] as [Annotation] spans labelled ["category: message"]. *)
val set_sink : t -> Telemetry.Sink.t -> unit

(** [emit t ~time_us ~category message] records an event if enabled. *)
val emit : t -> time_us:int -> category:string -> string -> unit

(** [records t] is all retained records, oldest first. *)
val records : t -> record list

(** [by_category t cat] filters records with the given category. *)
val by_category : t -> string -> record list

(** [count t] is the number of retained records. *)
val count : t -> int

(** [dropped t] is the number of records evicted by the retention
    bound since creation / last {!clear}. *)
val dropped : t -> int

(** [clear t] drops all retained records. *)
val clear : t -> unit

(** [pp_record ppf r] prints ["[12.345s] category: message"]. *)
val pp_record : Format.formatter -> record -> unit
