type t = {
  world_seed : int64;
  engine : Engine.t;
  trace : Trace.t;
  mutable partition : Shard.partition option;
}

let create ?(seed = 0xC0FFEEL) ?(shards = 1) ?(trace_capacity = 1024) () =
  {
    world_seed = seed;
    engine = Engine.create ~seed ~shards ();
    trace = Trace.create ~capacity:trace_capacity ();
    partition = None;
  }

let seed t = t.world_seed
let engine t = t.engine
let trace t = t.trace
let rng t = Engine.rng t.engine
let now t = Engine.now t.engine
let partition t = t.partition

let set_partition t p =
  match t.partition with
  | Some _ -> invalid_arg "World.set_partition: partition already set"
  | None -> t.partition <- Some p
