(* Conservative-lookahead parallel window scheduler.

   The engine's heaps partition events by site ownership (heap 0 =
   control, heaps 1..K = site/field stripes). Cross-stripe interactions
   only happen through the overlay's WAN links, whose propagation
   latency has a static positive floor, so each stripe can safely
   execute every event strictly before

     E = min (tmin + L, next control event, horizon + 1)

   where tmin is the globally earliest pending event time and L the
   minimum cross-shard link latency: any event a stripe produces for
   another stripe during the window lands at or after tmin + L >= E,
   i.e. in a later window. Control-heap events (scenario injections,
   chaos, reconfiguration) act as serial barriers — they run alone
   between windows via the ordinary sequential step, which is what makes
   every piece of state they touch race-free by construction.

   Determinism does not rest on the lookahead bound alone: the barrier
   merge in Engine.Window.finalize replays each window's per-stripe
   logs in exact sequential pop order and re-allocates the engine-global
   tie-break seqs accordingly, and it fails loudly if any cross-shard
   product violates the bound. The merged trajectory is bit-identical to
   the sequential engine's for any domain count, including 1. *)

type stats = {
  mutable windows : int;
  mutable window_events : int;
  mutable control_steps : int;
  mutable degraded_steps : int;
  mutable cross_events : int;
  stalls : int array;
  mutable max_window_events : int;
  mutable lookahead_us : int;
  incoming_lookahead_us : int array;
}

let make_stats engine =
  {
    windows = 0;
    window_events = 0;
    control_steps = 0;
    degraded_steps = 0;
    cross_events = 0;
    stalls = Array.make (Engine.shards engine) 0;
    max_window_events = 0;
    lookahead_us = max_int;
    incoming_lookahead_us = Array.make (Engine.shards engine) max_int;
  }

(* Persistent worker pool: [workers] domains including the caller as
   worker 0 (so domains = 1 never spawns). A window is one "job epoch":
   the main domain publishes the job under the mutex, every worker runs
   its round-robin share of stripes, and the mutex/condvar hand-off
   doubles as the memory barrier that publishes stripe-local writes to
   the finalizing domain. *)
type pool = {
  workers : int;
  mu : Mutex.t;
  cv_start : Condition.t;
  cv_done : Condition.t;
  mutable epoch : int;
  mutable done_count : int;
  mutable job : (int -> unit) option;
  mutable shutdown : bool;
  mutable errors : (int * exn) list;
  mutable handles : unit Domain.t list;
}

let pool_worker pool w =
  let my_epoch = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock pool.mu;
    while pool.epoch = !my_epoch && not pool.shutdown do
      Condition.wait pool.cv_start pool.mu
    done;
    let shutdown = pool.shutdown in
    let epoch = pool.epoch in
    let job = pool.job in
    Mutex.unlock pool.mu;
    if shutdown then continue := false
    else begin
      my_epoch := epoch;
      (try Option.iter (fun f -> f w) job
       with e ->
         Mutex.lock pool.mu;
         pool.errors <- (w, e) :: pool.errors;
         Mutex.unlock pool.mu);
      Mutex.lock pool.mu;
      pool.done_count <- pool.done_count + 1;
      if pool.done_count = pool.workers - 1 then Condition.signal pool.cv_done;
      Mutex.unlock pool.mu
    end
  done

let make_pool ~workers =
  let pool =
    {
      workers;
      mu = Mutex.create ();
      cv_start = Condition.create ();
      cv_done = Condition.create ();
      epoch = 0;
      done_count = 0;
      job = None;
      shutdown = false;
      errors = [];
      handles = [];
    }
  in
  pool.handles <-
    List.init (workers - 1) (fun i ->
        Domain.spawn (fun () -> pool_worker pool (i + 1)));
  pool

let pool_shutdown pool =
  Mutex.lock pool.mu;
  pool.shutdown <- true;
  Condition.broadcast pool.cv_start;
  Mutex.unlock pool.mu;
  List.iter Domain.join pool.handles;
  pool.handles <- []

(* Run [job w] on every worker (main domain = worker 0) and wait for all
   of them. Worker exceptions are re-raised here, lowest worker index
   first, matching the Parallel sweep runner's convention. *)
let pool_run pool job =
  if pool.workers = 1 then job 0
  else begin
    Mutex.lock pool.mu;
    pool.job <- Some job;
    pool.done_count <- 0;
    pool.epoch <- pool.epoch + 1;
    Condition.broadcast pool.cv_start;
    Mutex.unlock pool.mu;
    (try job 0
     with e ->
       Mutex.lock pool.mu;
       pool.errors <- (0, e) :: pool.errors;
       Mutex.unlock pool.mu);
    Mutex.lock pool.mu;
    while pool.done_count < pool.workers - 1 do
      Condition.wait pool.cv_done pool.mu
    done;
    let errors = pool.errors in
    pool.errors <- [];
    Mutex.unlock pool.mu;
    match List.sort (fun (a, _) (b, _) -> compare a b) errors with
    | (_, e) :: _ -> raise e
    | [] -> ()
  end

let run ?(domains = 1) engine ~min_latency_us ~until_us =
  let k = Engine.shards engine in
  if Array.length min_latency_us <> k then
    invalid_arg "Conservative.run: min_latency_us must be shards x shards";
  Array.iter
    (fun row ->
      if Array.length row <> k then
        invalid_arg "Conservative.run: min_latency_us must be shards x shards")
    min_latency_us;
  let stats = make_stats engine in
  if k <= 1 || domains < 1 then begin
    Engine.run engine ~until_us;
    stats
  end
  else begin
    (* Global lookahead: the tightest bound over every cross-stripe
       channel. Per-stripe horizons (min over incoming channels) are
       also computed, but only for the stall statistics — at a window
       barrier all channel clocks equal tmin, so executing any stripe
       past the *global* minimum would let it finalize tie-break seqs
       ahead of another stripe's earlier events. *)
    let lookahead = ref max_int in
    for src = 1 to k - 1 do
      for dst = 1 to k - 1 do
        if src <> dst then begin
          let l = min_latency_us.(src).(dst) in
          if l < !lookahead then lookahead := l;
          if l < stats.incoming_lookahead_us.(dst) then
            stats.incoming_lookahead_us.(dst) <- l
        end
      done
    done;
    stats.lookahead_us <- !lookahead;
    let workers = max 1 (min domains (k - 1)) in
    let ctxs = Engine.Window.make_ctxs engine in
    let pool = make_pool ~workers in
    let job w =
      let s = ref (1 + w) in
      while !s < k do
        Engine.Window.run_stripe ctxs.(!s);
        s := !s + workers
      done
    in
    Fun.protect ~finally:(fun () -> pool_shutdown pool) @@ fun () ->
    let continue = ref true in
    while !continue do
      match Engine.Window.peek_next engine with
      | None ->
        Engine.Window.finish_run engine ~until_us;
        continue := false
      | Some (heap, tmin) ->
        if tmin > until_us then begin
          Engine.Window.finish_run engine ~until_us;
          continue := false
        end
        else if heap = 0 then begin
          (* Control events are serial barriers: no stripe is running,
             so the callback may touch any state, nest runs, use the
             RNG — exactly the sequential execution model. *)
          ignore (Engine.step engine);
          stats.control_steps <- stats.control_steps + 1
        end
        else begin
          let control_cap =
            match Engine.Window.control_next_time engine with
            | Some t -> t
            | None -> max_int
          in
          let window_end =
            if !lookahead = max_int then min control_cap (until_us + 1)
            else min (min (tmin + !lookahead) control_cap) (until_us + 1)
          in
          if window_end <= tmin then begin
            (* Degenerate lookahead (adjacent control event or zero
               bound): fall back to one sequential step to guarantee
               progress. *)
            ignore (Engine.step engine);
            stats.degraded_steps <- stats.degraded_steps + 1
          end
          else begin
            Engine.Window.open_window engine ctxs ~window_end;
            pool_run pool job;
            let cross =
              Engine.Window.finalize engine ctxs ~w_start:tmin ~window_end
            in
            stats.windows <- stats.windows + 1;
            stats.cross_events <- stats.cross_events + cross;
            let executed = ref 0 in
            for s = 1 to k - 1 do
              let e = Engine.Window.executed ctxs.(s) in
              executed := !executed + e;
              if e = 0 then stats.stalls.(s) <- stats.stalls.(s) + 1
            done;
            stats.window_events <- stats.window_events + !executed;
            if !executed > stats.max_window_events then
              stats.max_window_events <- !executed
          end
        end
    done;
    stats
  end

let pp_stats ppf s =
  let total_stalls = Array.fold_left ( + ) 0 s.stalls in
  Format.fprintf ppf
    "windows=%d events=%d (max/window %d, avg %.1f) control=%d degraded=%d \
     cross=%d stalls=%d"
    s.windows s.window_events s.max_window_events
    (if s.windows = 0 then 0.
     else float_of_int s.window_events /. float_of_int s.windows)
    s.control_steps s.degraded_steps s.cross_events total_stalls
