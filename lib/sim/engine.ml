(* Allocation-lean scheduler core: one timer record per scheduled
   callback is the only per-event allocation. A periodic timer is a
   single record re-pushed into the heap at each firing (no fresh
   closure or event box per period), and the heaps themselves store
   events in parallel arrays. Cancelled-but-queued entries are purged
   lazily once they are numerous enough to matter, so
   cancel/re-arm-heavy workloads (client resubmit timers, chaos
   schedules) cannot bloat the heaps.

   Sharding: the engine hosts one heap per shard (heap 0 = control /
   untagged timers; see Shard.engine_shard for the site mapping), but
   sequence numbers for the (time, seq) tie-break are allocated from a
   single engine-global counter. The executed stream is therefore the
   merge of all heaps under one total order, bit-identical to what a
   single heap would produce — a timer's shard tag affects *where* its
   entry is stored (ownership), never *when* it fires. [step] scans the
   K heap tops for the global minimum; K is the site count plus two, so
   the scan is a handful of compares per event. *)

type t = {
  mutable clock_us : int;
  heaps : timer Event_heap.t array;
  root_rng : Rng.t;
  mutable next_seq : int; (* global tie-break shared by all heaps *)
  mutable processed : int;
  processed_by : int array; (* per-shard executed-event counters *)
  mutable cancelled_queued : int; (* cancelled entries still queued, all heaps *)
  mutable par_mode : bool; (* a conservative window is currently open *)
}

and timer = {
  engine : t;
  callback : unit -> unit;
  interval_us : int; (* 0 = one-shot *)
  shard : int; (* owning heap index *)
  mutable next_at : int; (* scheduled firing time (cadence anchor) *)
  mutable cancelled : bool;
  mutable queued : bool; (* currently has an entry in a heap *)
  mutable key_seq : int; (* tie-break seq of the latest push; -1 = staged *)
}

(* Conservative-window execution state, one per heap ("stripe"). During
   a window each stripe is driven by exactly one domain; everything a
   stripe does is staged into its ctx and folded back into the engine at
   the barrier, single-threaded, in the exact sequential order. *)
type par_ctx = {
  ctx_engine : t;
  stripe : int;
  mutable local_clock : int; (* virtual time of the executing event *)
  mutable window_end : int; (* exclusive bound on event times this window *)
  mutable prov_next : int; (* provisional seqs handed out this window *)
  mutable cur_ops : timer list; (* reversed ops of the executing entry *)
  mutable log_rev : log_entry list; (* reversed executed-entry log *)
  mutable cross_cancels : timer list; (* cancels of other stripes' timers *)
  mutable cancelled_delta : int; (* net cancelled-queued delta, own heap *)
  mutable executed : int; (* events executed this window *)
}

(* One executed event: its pop key plus every schedule it performed, in
   program order (a periodic re-arm is recorded as the last op). The
   per-stripe log is the single-producer/single-consumer channel between
   the stripe's domain and the barrier merge on the main domain. *)
and log_entry = { le_time : int; le_seq : int; le_ops : timer list }

(* Provisional tie-break seqs for in-window pushes: above every real seq
   the engine can allocate, so a provisional entry always sorts after
   pre-window entries at the same timestamp — exactly where a fresh
   sequential push would sort. *)
let prov_base = max_int / 2

let par_key : par_ctx option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let create ?(seed = 0xC0FFEEL) ?(shards = 1) () =
  if shards < 1 then invalid_arg "Engine.create: shards < 1";
  {
    clock_us = 0;
    heaps = Array.init shards (fun _ -> Event_heap.create ());
    root_rng = Rng.create seed;
    next_seq = 0;
    processed = 0;
    processed_by = Array.make shards 0;
    cancelled_queued = 0;
    par_mode = false;
  }

(* The ctx of the calling domain, when it is executing a window stripe
   of [t]. Checked against the engine identity so independent engines on
   other domains (the Parallel sweep runner) are unaffected. *)
let cur_ctx t =
  if t.par_mode then
    match Domain.DLS.get par_key with
    | Some c when c.ctx_engine == t -> Some c
    | _ -> None
  else None

let in_window t = match cur_ctx t with Some _ -> true | None -> false

let now t =
  if t.par_mode then
    match Domain.DLS.get par_key with
    | Some c when c.ctx_engine == t -> c.local_clock
    | _ -> t.clock_us
  else t.clock_us

let rng t =
  if in_window t then
    failwith "Engine.rng: cannot derive streams inside a parallel window";
  Rng.split t.root_rng

let shards t = Array.length t.heaps

(* Out-of-range shard tags fall back to the control heap: callers built
   against a single-heap engine keep working unchanged, and since the
   (time, seq) key is global the fallback cannot perturb event order. *)
let clamp_shard t shard =
  if shard < 0 || shard >= Array.length t.heaps then 0 else shard

let push_timer t tm =
  let seq = t.next_seq in
  tm.key_seq <- seq;
  Event_heap.push_keyed t.heaps.(tm.shard) ~time:tm.next_at ~seq tm;
  t.next_seq <- seq + 1

(* In-window push. Same-stripe targets go straight into the stripe's own
   heap under a provisional seq (resolved to the real engine-global seq
   at the barrier); cross-stripe targets stay staged — not in any heap —
   until the barrier replays the op log and pushes them with their final
   key. Both are recorded as ops of the executing entry, in program
   order, which is all the barrier needs to reproduce the sequential seq
   allocation exactly. *)
let window_push c t tm =
  if tm.shard = c.stripe then begin
    let seq = prov_base + c.prov_next in
    c.prov_next <- c.prov_next + 1;
    tm.key_seq <- seq;
    Event_heap.push_keyed t.heaps.(tm.shard) ~time:tm.next_at ~seq tm
  end;
  c.cur_ops <- tm :: c.cur_ops

let dispatch_push t tm =
  match cur_ctx t with None -> push_timer t tm | Some c -> window_push c t tm

let schedule_at ?(shard = 0) t ~time_us f =
  let time_us = max time_us (now t) in
  let timer =
    {
      engine = t;
      callback = f;
      interval_us = 0;
      shard = clamp_shard t shard;
      next_at = time_us;
      cancelled = false;
      queued = true;
      key_seq = -1;
    }
  in
  dispatch_push t timer;
  timer

let schedule ?shard t ~delay_us f =
  schedule_at ?shard t ~time_us:(now t + max 0 delay_us) f

let periodic ?(shard = 0) t ~interval_us f =
  if interval_us <= 0 then invalid_arg "Engine.periodic: interval_us <= 0";
  let timer =
    {
      engine = t;
      callback = f;
      interval_us;
      shard = clamp_shard t shard;
      next_at = now t + interval_us;
      cancelled = false;
      queued = true;
      key_seq = -1;
    }
  in
  dispatch_push t timer;
  timer

let pending t =
  let n = ref 0 in
  Array.iter (fun h -> n := !n + Event_heap.size h) t.heaps;
  !n

(* Purge threshold: compaction is O(total queued) and resets the debt,
   so amortised cost stays O(1) per cancel; requiring the cancelled
   share to be at least half the queued load bounds heap size at 2x the
   live load. Compaction preserves (time, seq) keys, so pop order of
   survivors is untouched. *)
let compact_min_cancelled = 64

let maybe_compact t =
  if
    (not t.par_mode)
    && t.cancelled_queued >= compact_min_cancelled
    && 2 * t.cancelled_queued >= pending t
  then begin
    Array.iter (fun h -> Event_heap.compact h ~keep:(fun tm -> not tm.cancelled)) t.heaps;
    t.cancelled_queued <- 0
  end

let cancel timer =
  let e = timer.engine in
  match cur_ctx e with
  | None ->
    if not timer.cancelled then begin
      timer.cancelled <- true;
      if timer.queued then begin
        e.cancelled_queued <- e.cancelled_queued + 1;
        maybe_compact e
      end
    end
  | Some c ->
    if timer.shard = c.stripe then begin
      (* Same-stripe cancel: applied live. The local pop order is the
         sequential restriction to this stripe, so cancel-vs-pop races
         resolve exactly as they would sequentially. The queued-count
         delta is folded into the engine at the barrier. *)
      if not timer.cancelled then begin
        timer.cancelled <- true;
        if timer.queued then c.cancelled_delta <- c.cancelled_delta + 1
      end
    end
    else if not timer.cancelled then
      (* Cross-stripe cancel: deferred to the barrier (marking is
         idempotent and commutative; a same-window firing race is a
         conservative violation detected there). *)
      c.cross_cancels <- timer :: c.cross_cancels

(* Index of the heap holding the globally earliest (time, seq) entry,
   or -1 when every heap is empty. *)
let select t =
  let best = ref (-1) in
  let best_time = ref max_int and best_seq = ref max_int in
  for i = 0 to Array.length t.heaps - 1 do
    let h = t.heaps.(i) in
    if not (Event_heap.is_empty h) then begin
      let time = Event_heap.min_time h in
      if
        time < !best_time
        || (time = !best_time && Event_heap.min_seq h < !best_seq)
      then begin
        best := i;
        best_time := time;
        best_seq := Event_heap.min_seq h
      end
    end
  done;
  !best

let step_at t i =
  let heap = t.heaps.(i) in
  let time = Event_heap.min_time heap in
  let tm = Event_heap.pop_min heap in
  if time > t.clock_us then t.clock_us <- time;
  tm.queued <- false;
  if tm.cancelled then t.cancelled_queued <- t.cancelled_queued - 1
  else begin
    t.processed <- t.processed + 1;
    t.processed_by.(i) <- t.processed_by.(i) + 1;
    tm.callback ();
    (* Re-arm relative to the firing's *scheduled* time, not the
       clock at callback return: a callback that advances the clock
       (nested [run]) or pops late must not skew subsequent firings.
       Re-arming after the callback keeps insertion order — and hence
       same-timestamp tie-breaking — identical to scheduling done
       inside the callback itself. *)
    if tm.interval_us > 0 && not tm.cancelled then begin
      tm.next_at <- tm.next_at + tm.interval_us;
      tm.queued <- true;
      push_timer t tm
    end
  end

let guard_run t name =
  if in_window t then
    failwith ("Engine." ^ name ^ ": cannot nest inside a parallel window")

let step t =
  guard_run t "step";
  let i = select t in
  if i < 0 then false
  else begin
    step_at t i;
    true
  end

let run t ~until_us =
  guard_run t "run";
  let continue = ref true in
  while !continue do
    let i = select t in
    if i >= 0 && Event_heap.min_time t.heaps.(i) <= until_us then step_at t i
    else continue := false
  done;
  t.clock_us <- max t.clock_us until_us

let run_until_quiescent ?(max_events = 100_000_000) t =
  guard_run t "run_until_quiescent";
  let budget = ref max_events in
  while step t do
    decr budget;
    if !budget <= 0 then failwith "Engine.run_until_quiescent: event budget exceeded"
  done

let processed t = t.processed

let processed_of t shard =
  if shard < 0 || shard >= Array.length t.processed_by then
    invalid_arg "Engine.processed_of: shard out of range";
  t.processed_by.(shard)

let heap_hi_water t shard =
  if shard < 0 || shard >= Array.length t.heaps then
    invalid_arg "Engine.heap_hi_water: shard out of range";
  Event_heap.hi_water t.heaps.(shard)

let exec_stripe t = match cur_ctx t with Some c -> c.stripe | None -> 0
let timer_key tm = (tm.next_at, tm.key_seq)

module Window = struct
  type ctx = par_ctx

  let violation msg =
    failwith ("Sim.Engine conservative window: " ^ msg)

  let make_ctxs t =
    Array.init (Array.length t.heaps) (fun stripe ->
        {
          ctx_engine = t;
          stripe;
          local_clock = 0;
          window_end = 0;
          prov_next = 0;
          cur_ops = [];
          log_rev = [];
          cross_cancels = [];
          cancelled_delta = 0;
          executed = 0;
        })

  let peek_next t =
    let i = select t in
    if i < 0 then None else Some (i, Event_heap.min_time t.heaps.(i))

  let control_next_time t = Event_heap.peek_time t.heaps.(0)
  let finish_run t ~until_us = t.clock_us <- max t.clock_us until_us
  let executed c = c.executed

  let open_window t ctxs ~window_end =
    Array.iter
      (fun c ->
        c.local_clock <- t.clock_us;
        c.window_end <- window_end;
        c.prov_next <- 0;
        c.cur_ops <- [];
        c.log_rev <- [];
        c.cross_cancels <- [];
        c.cancelled_delta <- 0;
        c.executed <- 0)
      ctxs;
    t.par_mode <- true

  (* Drain one stripe's heap up to the window end, on the calling
     domain. Only this stripe's heap, counters cell, and ctx are
     touched; all cross-stripe effects are staged in the ctx. *)
  let run_stripe c =
    let t = c.ctx_engine in
    Domain.DLS.set par_key (Some c);
    Fun.protect ~finally:(fun () -> Domain.DLS.set par_key None)
    @@ fun () ->
    let heap = t.heaps.(c.stripe) in
    let continue = ref true in
    while !continue do
      if Event_heap.is_empty heap || Event_heap.min_time heap >= c.window_end
      then continue := false
      else begin
        let time = Event_heap.min_time heap in
        let seq = Event_heap.min_seq heap in
        let tm = Event_heap.pop_min heap in
        tm.queued <- false;
        if tm.cancelled then c.cancelled_delta <- c.cancelled_delta - 1
        else begin
          if time > c.local_clock then c.local_clock <- time;
          t.processed_by.(c.stripe) <- t.processed_by.(c.stripe) + 1;
          c.executed <- c.executed + 1;
          c.cur_ops <- [];
          tm.callback ();
          (* Re-arm after the callback, like the sequential path, so the
             re-arm op sorts after every schedule the callback made. *)
          if tm.interval_us > 0 && not tm.cancelled then begin
            tm.next_at <- tm.next_at + tm.interval_us;
            tm.queued <- true;
            window_push c t tm
          end;
          c.log_rev <-
            { le_time = time; le_seq = seq; le_ops = List.rev c.cur_ops }
            :: c.log_rev
        end
      end
    done

  (* Deferred cross-stripe cancel, applied at the barrier. A cancel that
     races a same-window firing of its target cannot be ordered against
     that firing without the sequential schedule, so it is rejected
     loudly rather than allowed to diverge silently. Timers staged this
     very window (key_seq = -1, not yet in any heap) are exempt: their
     creation precedes the cancel in every sequential linearisation. *)
  let apply_cross_cancel t ~w_start ~w_end tm =
    if not tm.cancelled then begin
      let staged = tm.key_seq < 0 in
      if not staged then begin
        let fired_this_window =
          if tm.interval_us > 0 then
            tm.next_at - tm.interval_us >= w_start
            && tm.next_at - tm.interval_us < w_end
          else (not tm.queued) && tm.next_at >= w_start && tm.next_at < w_end
        in
        if fired_this_window || (tm.queued && tm.next_at < w_end) then
          violation "cross-shard cancel races a same-window firing"
      end;
      tm.cancelled <- true;
      if tm.queued then t.cancelled_queued <- t.cancelled_queued + 1
    end

  (* Barrier: merge the per-stripe logs back into one stream and replay
     their schedule ops in that order, allocating real engine-global
     seqs. The merge key of a log entry is its pop key with provisional
     seqs lazily resolved through the per-stripe table — sound because a
     provisional entry's generator sits earlier in the same stripe's log
     (local pop order is the sequential restriction), so it has always
     been replayed by the time the entry can reach its log's head.
     Inductively the merge order, and therefore the seq allocation, is
     bit-identical to the sequential pop order. Cross-stripe pushes are
     deferred past the heap rekey so they sift against final keys.
     Returns the number of cross-stripe events staged. *)
  let finalize t ctxs ~w_start ~window_end =
    t.par_mode <- false;
    Array.iter
      (fun c ->
        List.iter
          (fun tm -> apply_cross_cancel t ~w_start ~w_end:window_end tm)
          (List.rev c.cross_cancels))
      ctxs;
    let k = Array.length ctxs in
    let logs = Array.map (fun c -> Array.of_list (List.rev c.log_rev)) ctxs in
    let resolve = Array.map (fun c -> Array.make c.prov_next (-1)) ctxs in
    let cursor = Array.make k 0 in
    let prov_cursor = Array.make k 0 in
    let staged_rev = ref [] in
    let staged_count = ref 0 in
    let resolved_seq s (e : log_entry) =
      if e.le_seq < prov_base then e.le_seq
      else begin
        let r = resolve.(s).(e.le_seq - prov_base) in
        if r < 0 then violation "unresolved provisional seq at merge";
        r
      end
    in
    let continue = ref true in
    while !continue do
      let best = ref (-1) and bt = ref max_int and bs = ref max_int in
      for s = 0 to k - 1 do
        if cursor.(s) < Array.length logs.(s) then begin
          let e = logs.(s).(cursor.(s)) in
          let sq = resolved_seq s e in
          if e.le_time < !bt || (e.le_time = !bt && sq < !bs) then begin
            best := s;
            bt := e.le_time;
            bs := sq
          end
        end
      done;
      if !best < 0 then continue := false
      else begin
        let s = !best in
        let e = logs.(s).(cursor.(s)) in
        cursor.(s) <- cursor.(s) + 1;
        t.processed <- t.processed + 1;
        List.iter
          (fun tm ->
            let seq = t.next_seq in
            t.next_seq <- seq + 1;
            if tm.shard = s then begin
              resolve.(s).(prov_cursor.(s)) <- seq;
              prov_cursor.(s) <- prov_cursor.(s) + 1;
              tm.key_seq <- seq
            end
            else begin
              if tm.next_at < window_end && not tm.cancelled then
                violation
                  "cross-shard event lands inside its own window \
                   (lookahead bound violated)";
              tm.key_seq <- seq;
              staged_rev := tm :: !staged_rev;
              incr staged_count
            end)
          e.le_ops
      end
    done;
    Array.iter
      (fun h ->
        Event_heap.rekey h ~threshold:prov_base ~seq_of:(fun tm ->
            if tm.key_seq < 0 || tm.key_seq >= prov_base then
              violation "unresolved provisional key left in heap";
            tm.key_seq))
      t.heaps;
    List.iter
      (fun tm ->
        Event_heap.push_keyed t.heaps.(tm.shard) ~time:tm.next_at
          ~seq:tm.key_seq tm)
      (List.rev !staged_rev);
    Array.iter
      (fun c ->
        t.cancelled_queued <- t.cancelled_queued + c.cancelled_delta;
        if c.local_clock > t.clock_us then t.clock_us <- c.local_clock)
      ctxs;
    maybe_compact t;
    !staged_count
end

let pp_time_us ppf us =
  if us >= 1_000_000 then Format.fprintf ppf "%.3fs" (float_of_int us /. 1e6)
  else if us >= 1_000 then Format.fprintf ppf "%dms" (us / 1000)
  else Format.fprintf ppf "%dus" us
