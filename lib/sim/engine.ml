(* Allocation-lean scheduler core: one timer record per scheduled
   callback is the only per-event allocation. A periodic timer is a
   single record re-pushed into the heap at each firing (no fresh
   closure or event box per period), and the heap itself stores events
   in parallel arrays. Cancelled-but-queued entries are purged lazily
   once they are numerous enough to matter, so cancel/re-arm-heavy
   workloads (client resubmit timers, chaos schedules) cannot bloat the
   heap. *)

type t = {
  mutable clock_us : int;
  heap : timer Event_heap.t;
  root_rng : Rng.t;
  mutable processed : int;
  mutable cancelled_queued : int; (* cancelled entries still in the heap *)
}

and timer = {
  engine : t;
  callback : unit -> unit;
  interval_us : int; (* 0 = one-shot *)
  mutable next_at : int; (* scheduled firing time (cadence anchor) *)
  mutable cancelled : bool;
  mutable queued : bool; (* currently has an entry in the heap *)
}

let create ?(seed = 0xC0FFEEL) () =
  {
    clock_us = 0;
    heap = Event_heap.create ();
    root_rng = Rng.create seed;
    processed = 0;
    cancelled_queued = 0;
  }

let now t = t.clock_us
let rng t = Rng.split t.root_rng

let schedule_at t ~time_us f =
  let time_us = max time_us t.clock_us in
  let timer =
    {
      engine = t;
      callback = f;
      interval_us = 0;
      next_at = time_us;
      cancelled = false;
      queued = true;
    }
  in
  Event_heap.push t.heap ~time:time_us timer;
  timer

let schedule t ~delay_us f = schedule_at t ~time_us:(t.clock_us + max 0 delay_us) f

let periodic t ~interval_us f =
  if interval_us <= 0 then invalid_arg "Engine.periodic: interval_us <= 0";
  let timer =
    {
      engine = t;
      callback = f;
      interval_us;
      next_at = t.clock_us + interval_us;
      cancelled = false;
      queued = true;
    }
  in
  Event_heap.push t.heap ~time:timer.next_at timer;
  timer

(* Purge threshold: compaction is O(heap) and resets the debt, so
   amortised cost stays O(1) per cancel; requiring the cancelled share
   to be at least half the heap bounds heap size at 2x the live load. *)
let compact_min_cancelled = 64

let maybe_compact t =
  if
    t.cancelled_queued >= compact_min_cancelled
    && 2 * t.cancelled_queued >= Event_heap.size t.heap
  then begin
    Event_heap.compact t.heap ~keep:(fun tm -> not tm.cancelled);
    t.cancelled_queued <- 0
  end

let cancel timer =
  if not timer.cancelled then begin
    timer.cancelled <- true;
    if timer.queued then begin
      let e = timer.engine in
      e.cancelled_queued <- e.cancelled_queued + 1;
      maybe_compact e
    end
  end

let step t =
  if Event_heap.is_empty t.heap then false
  else begin
    let time = Event_heap.min_time t.heap in
    let tm = Event_heap.pop_min t.heap in
    if time > t.clock_us then t.clock_us <- time;
    tm.queued <- false;
    if tm.cancelled then t.cancelled_queued <- t.cancelled_queued - 1
    else begin
      t.processed <- t.processed + 1;
      tm.callback ();
      (* Re-arm relative to the firing's *scheduled* time, not the
         clock at callback return: a callback that advances the clock
         (nested [run]) or pops late must not skew subsequent firings.
         Re-arming after the callback keeps insertion order — and hence
         same-timestamp tie-breaking — identical to scheduling done
         inside the callback itself. *)
      if tm.interval_us > 0 && not tm.cancelled then begin
        tm.next_at <- tm.next_at + tm.interval_us;
        tm.queued <- true;
        Event_heap.push t.heap ~time:tm.next_at tm
      end
    end;
    true
  end

let run t ~until_us =
  let continue = ref true in
  while !continue do
    if Event_heap.is_empty t.heap then continue := false
    else if Event_heap.min_time t.heap <= until_us then ignore (step t : bool)
    else continue := false
  done;
  t.clock_us <- max t.clock_us until_us

let run_until_quiescent ?(max_events = 100_000_000) t =
  let budget = ref max_events in
  while step t do
    decr budget;
    if !budget <= 0 then failwith "Engine.run_until_quiescent: event budget exceeded"
  done

let pending t = Event_heap.size t.heap
let processed t = t.processed

let pp_time_us ppf us =
  if us >= 1_000_000 then Format.fprintf ppf "%.3fs" (float_of_int us /. 1e6)
  else if us >= 1_000 then Format.fprintf ppf "%dms" (us / 1000)
  else Format.fprintf ppf "%dus" us
