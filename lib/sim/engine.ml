type timer = { mutable cancelled : bool; mutable repeat : repeat option }

and repeat = { interval_us : int; callback : unit -> unit }

type event = { timer : timer; run : unit -> unit }

type t = {
  mutable clock_us : int;
  heap : event Event_heap.t;
  root_rng : Rng.t;
  mutable processed : int;
}

let create ?(seed = 0xC0FFEEL) () =
  {
    clock_us = 0;
    heap = Event_heap.create ();
    root_rng = Rng.create seed;
    processed = 0;
  }

let now t = t.clock_us
let rng t = Rng.split t.root_rng

let schedule_at t ~time_us f =
  let time_us = max time_us t.clock_us in
  let timer = { cancelled = false; repeat = None } in
  Event_heap.push t.heap ~time:time_us { timer; run = f };
  timer

let schedule t ~delay_us f = schedule_at t ~time_us:(t.clock_us + max 0 delay_us) f

let periodic t ~interval_us f =
  if interval_us <= 0 then invalid_arg "Engine.periodic: interval_us <= 0";
  let timer = { cancelled = false; repeat = Some { interval_us; callback = f } } in
  (* Re-arm relative to the firing's *scheduled* time, not the clock at
     callback return: a callback that advances the clock (nested [run])
     or pops late must not skew subsequent firings. *)
  let rec arm time_us =
    Event_heap.push t.heap ~time:time_us
      {
        timer;
        run =
          (fun () ->
            f ();
            if not timer.cancelled then arm (time_us + interval_us));
      }
  in
  arm (t.clock_us + interval_us);
  timer

let cancel timer = timer.cancelled <- true

let step t =
  match Event_heap.pop t.heap with
  | None -> false
  | Some (time, ev) ->
    t.clock_us <- max t.clock_us time;
    if not ev.timer.cancelled then begin
      t.processed <- t.processed + 1;
      ev.run ()
    end;
    true

let run t ~until_us =
  let continue = ref true in
  while !continue do
    match Event_heap.peek_time t.heap with
    | Some time when time <= until_us -> ignore (step t : bool)
    | Some _ | None -> continue := false
  done;
  t.clock_us <- max t.clock_us until_us

let run_until_quiescent ?(max_events = 100_000_000) t =
  let budget = ref max_events in
  while step t do
    decr budget;
    if !budget <= 0 then failwith "Engine.run_until_quiescent: event budget exceeded"
  done

let pending t = Event_heap.size t.heap
let processed t = t.processed

let pp_time_us ppf us =
  if us >= 1_000_000 then Format.fprintf ppf "%.3fs" (float_of_int us /. 1e6)
  else if us >= 1_000 then Format.fprintf ppf "%dms" (us / 1000)
  else Format.fprintf ppf "%dus" us
