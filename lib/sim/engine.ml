(* Allocation-lean scheduler core: one timer record per scheduled
   callback is the only per-event allocation. A periodic timer is a
   single record re-pushed into the heap at each firing (no fresh
   closure or event box per period), and the heaps themselves store
   events in parallel arrays. Cancelled-but-queued entries are purged
   lazily once they are numerous enough to matter, so
   cancel/re-arm-heavy workloads (client resubmit timers, chaos
   schedules) cannot bloat the heaps.

   Sharding: the engine hosts one heap per shard (heap 0 = control /
   untagged timers; see Shard.engine_shard for the site mapping), but
   sequence numbers for the (time, seq) tie-break are allocated from a
   single engine-global counter. The executed stream is therefore the
   merge of all heaps under one total order, bit-identical to what a
   single heap would produce — a timer's shard tag affects *where* its
   entry is stored (ownership), never *when* it fires. [step] scans the
   K heap tops for the global minimum; K is the site count plus two, so
   the scan is a handful of compares per event. *)

type t = {
  mutable clock_us : int;
  heaps : timer Event_heap.t array;
  root_rng : Rng.t;
  mutable next_seq : int; (* global tie-break shared by all heaps *)
  mutable processed : int;
  processed_by : int array; (* per-shard executed-event counters *)
  mutable cancelled_queued : int; (* cancelled entries still queued, all heaps *)
}

and timer = {
  engine : t;
  callback : unit -> unit;
  interval_us : int; (* 0 = one-shot *)
  shard : int; (* owning heap index *)
  mutable next_at : int; (* scheduled firing time (cadence anchor) *)
  mutable cancelled : bool;
  mutable queued : bool; (* currently has an entry in a heap *)
}

let create ?(seed = 0xC0FFEEL) ?(shards = 1) () =
  if shards < 1 then invalid_arg "Engine.create: shards < 1";
  {
    clock_us = 0;
    heaps = Array.init shards (fun _ -> Event_heap.create ());
    root_rng = Rng.create seed;
    next_seq = 0;
    processed = 0;
    processed_by = Array.make shards 0;
    cancelled_queued = 0;
  }

let now t = t.clock_us
let rng t = Rng.split t.root_rng
let shards t = Array.length t.heaps

(* Out-of-range shard tags fall back to the control heap: callers built
   against a single-heap engine keep working unchanged, and since the
   (time, seq) key is global the fallback cannot perturb event order. *)
let clamp_shard t shard =
  if shard < 0 || shard >= Array.length t.heaps then 0 else shard

let push_timer t tm =
  Event_heap.push_keyed t.heaps.(tm.shard) ~time:tm.next_at ~seq:t.next_seq tm;
  t.next_seq <- t.next_seq + 1

let schedule_at ?(shard = 0) t ~time_us f =
  let time_us = max time_us t.clock_us in
  let timer =
    {
      engine = t;
      callback = f;
      interval_us = 0;
      shard = clamp_shard t shard;
      next_at = time_us;
      cancelled = false;
      queued = true;
    }
  in
  push_timer t timer;
  timer

let schedule ?shard t ~delay_us f =
  schedule_at ?shard t ~time_us:(t.clock_us + max 0 delay_us) f

let periodic ?(shard = 0) t ~interval_us f =
  if interval_us <= 0 then invalid_arg "Engine.periodic: interval_us <= 0";
  let timer =
    {
      engine = t;
      callback = f;
      interval_us;
      shard = clamp_shard t shard;
      next_at = t.clock_us + interval_us;
      cancelled = false;
      queued = true;
    }
  in
  push_timer t timer;
  timer

let pending t =
  let n = ref 0 in
  Array.iter (fun h -> n := !n + Event_heap.size h) t.heaps;
  !n

(* Purge threshold: compaction is O(total queued) and resets the debt,
   so amortised cost stays O(1) per cancel; requiring the cancelled
   share to be at least half the queued load bounds heap size at 2x the
   live load. Compaction preserves (time, seq) keys, so pop order of
   survivors is untouched. *)
let compact_min_cancelled = 64

let maybe_compact t =
  if
    t.cancelled_queued >= compact_min_cancelled
    && 2 * t.cancelled_queued >= pending t
  then begin
    Array.iter (fun h -> Event_heap.compact h ~keep:(fun tm -> not tm.cancelled)) t.heaps;
    t.cancelled_queued <- 0
  end

let cancel timer =
  if not timer.cancelled then begin
    timer.cancelled <- true;
    if timer.queued then begin
      let e = timer.engine in
      e.cancelled_queued <- e.cancelled_queued + 1;
      maybe_compact e
    end
  end

(* Index of the heap holding the globally earliest (time, seq) entry,
   or -1 when every heap is empty. *)
let select t =
  let best = ref (-1) in
  let best_time = ref max_int and best_seq = ref max_int in
  for i = 0 to Array.length t.heaps - 1 do
    let h = t.heaps.(i) in
    if not (Event_heap.is_empty h) then begin
      let time = Event_heap.min_time h in
      if
        time < !best_time
        || (time = !best_time && Event_heap.min_seq h < !best_seq)
      then begin
        best := i;
        best_time := time;
        best_seq := Event_heap.min_seq h
      end
    end
  done;
  !best

let step_at t i =
  let heap = t.heaps.(i) in
  let time = Event_heap.min_time heap in
  let tm = Event_heap.pop_min heap in
  if time > t.clock_us then t.clock_us <- time;
  tm.queued <- false;
  if tm.cancelled then t.cancelled_queued <- t.cancelled_queued - 1
  else begin
    t.processed <- t.processed + 1;
    t.processed_by.(i) <- t.processed_by.(i) + 1;
    tm.callback ();
    (* Re-arm relative to the firing's *scheduled* time, not the
       clock at callback return: a callback that advances the clock
       (nested [run]) or pops late must not skew subsequent firings.
       Re-arming after the callback keeps insertion order — and hence
       same-timestamp tie-breaking — identical to scheduling done
       inside the callback itself. *)
    if tm.interval_us > 0 && not tm.cancelled then begin
      tm.next_at <- tm.next_at + tm.interval_us;
      tm.queued <- true;
      push_timer t tm
    end
  end

let step t =
  let i = select t in
  if i < 0 then false
  else begin
    step_at t i;
    true
  end

let run t ~until_us =
  let continue = ref true in
  while !continue do
    let i = select t in
    if i >= 0 && Event_heap.min_time t.heaps.(i) <= until_us then step_at t i
    else continue := false
  done;
  t.clock_us <- max t.clock_us until_us

let run_until_quiescent ?(max_events = 100_000_000) t =
  let budget = ref max_events in
  while step t do
    decr budget;
    if !budget <= 0 then failwith "Engine.run_until_quiescent: event budget exceeded"
  done

let processed t = t.processed

let processed_of t shard =
  if shard < 0 || shard >= Array.length t.processed_by then
    invalid_arg "Engine.processed_of: shard out of range";
  t.processed_by.(shard)

let pp_time_us ppf us =
  if us >= 1_000_000 then Format.fprintf ppf "%.3fs" (float_of_int us /. 1e6)
  else if us >= 1_000 then Format.fprintf ppf "%dms" (us / 1000)
  else Format.fprintf ppf "%dus" us
