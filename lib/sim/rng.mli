(** Deterministic pseudo-random number generator (SplitMix64).

    The simulator never uses the global [Random] state: every component
    derives its own stream from a root seed via {!split}, so experiment
    runs are reproducible bit-for-bit regardless of module initialisation
    order. *)

type t

(** [create seed] is a generator seeded with [seed]. *)
val create : int64 -> t

(** [split t] derives an independent generator from [t], advancing [t]. *)
val split : t -> t

(** [derive ~seed ~index] is the seed for the [index]-th instance of a
    sweep rooted at [seed] — a pure function of its arguments (no
    generator state is read or advanced), so any parallel worker can
    derive any instance's seed independently and the assignment of
    instances to domains cannot perturb the streams.
    @raise Invalid_argument if [index < 0]. *)
val derive : seed:int64 -> index:int -> int64

(** [next_int64 t] is the next raw 64-bit output. *)
val next_int64 : t -> int64

(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [0., bound). *)
val float : t -> float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [bernoulli t p] is true with probability [p] (clamped to [0,1]). *)
val bernoulli : t -> float -> bool

(** [exponential t ~mean] samples an exponential with the given mean. *)
val exponential : t -> mean:float -> float

(** [gaussian t ~mean ~stddev] samples a normal via Box-Muller. *)
val gaussian : t -> mean:float -> stddev:float -> float

(** [pick t arr] is a uniformly random element of [arr].
    @raise Invalid_argument if [arr] is empty. *)
val pick : t -> 'a array -> 'a

(** [shuffle t arr] shuffles [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
