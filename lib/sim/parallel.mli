(** Work-stealing pool for independent scenario instances.

    Farms a static set of jobs — E8 sweep points, E10 chaos soak seeds,
    config sweeps — across OCaml 5 domains. Each job must be
    self-contained: build its own {!World} / system from a seed derived
    with {!seed_of} and share {e no} mutable state with other jobs.
    Under that contract the results are deterministic:

    - results land in an array indexed by job, so the merged output is
      a pure function of the job set — {b byte-identical regardless of
      domain count or which domain ran which job};
    - per-instance seeds come from {!Rng.derive}, a pure function of
      [(root, index)], so scheduling cannot perturb any RNG stream;
    - [domains = 1] runs every job inline on the calling domain with no
      spawns — the mode used to pin golden trajectories.

    Scheduling: jobs are dealt round-robin to per-worker deques; a
    worker drains its own deque front-to-back and, when empty, steals
    from the back of the longest-suffering sibling it finds. Stealing
    rebalances skewed workloads (e.g. one slow chaos seed) without any
    central queue contention. *)

type stats = {
  domains : int;  (** workers actually used (capped at job count) *)
  jobs : int;
  steals : int;  (** jobs executed by a non-home worker *)
}

(** [default_domains ()] is the runtime's recommended domain count for
    this machine. *)
val default_domains : unit -> int

(** [seed_of ~root ~index] is the deterministic seed for job [index] of
    a sweep rooted at [root] (alias of {!Rng.derive}). *)
val seed_of : root:int64 -> index:int -> int64

(** [run ~domains ~jobs f] computes [[| f 0; ...; f (jobs - 1) |]]
    using up to [domains] domains (default {!default_domains}; clamped
    to [jobs]; [<= 1] runs inline). If any job raises, the exception of
    the {e lowest-indexed} failing job is re-raised after all workers
    have drained — deterministic even when several jobs fail.
    @raise Invalid_argument if [jobs < 0]. *)
val run : ?domains:int -> jobs:int -> (int -> 'a) -> 'a array

(** [run_with_stats] is {!run} plus scheduling statistics (the stats —
    unlike the results — legitimately vary run to run). *)
val run_with_stats : ?domains:int -> jobs:int -> (int -> 'a) -> 'a array * stats

(** [map ~domains f items] is [run] over an array of inputs. *)
val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
