type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (next_int64 t)

(* Pure seed derivation for sweep instance [index] of a sweep rooted at
   [seed]: equivalent in spirit to splitting [index + 1] times, but a
   closed form over (seed, index) so parallel workers never share
   generator state. The extra xor/mix round decorrelates the stream from
   a plain SplitMix sequence seeded at [seed] (instance 0's stream must
   not alias the root stream's own outputs). *)
let derive ~seed ~index =
  if index < 0 then invalid_arg "Rng.derive: index < 0";
  let z = Int64.add seed (Int64.mul golden_gamma (Int64.of_int (index + 1))) in
  mix (Int64.logxor (mix z) 0x5851F42D4C957F2DL)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Drop to 62 bits so the value fits a non-negative OCaml int. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992. *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p =
  if p <= 0. then false else if p >= 1. then true else float t 1. < p

let exponential t ~mean =
  let u = float t 1. in
  (* Guard against log 0. *)
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u

let gaussian t ~mean ~stddev =
  let u1 = Float.max 1e-12 (float t 1.) in
  let u2 = float t 1. in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  mean +. (stddev *. z)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
