(** Binary min-heap of timed events, held in parallel unboxed arrays so
    pushes allocate nothing in steady state.

    Events are ordered by [(time, sequence)] where [sequence] is the
    insertion order; this makes the simulation deterministic when many
    events share a timestamp. *)

type 'a t

(** [create ()] is an empty heap. *)
val create : unit -> 'a t

(** [push t ~time event] inserts [event] at [time]. *)
val push : 'a t -> time:int -> 'a -> unit

(** [push_keyed t ~time ~seq event] inserts [event] with an explicit
    tie-breaking sequence number. The sharded engine uses this to keep
    one {e global} insertion order across several per-shard heaps: keys
    are [(time, seq)] with [seq] allocated by the engine, so the merged
    pop order across heaps is bit-identical to a single heap's. The
    internal counter used by {!push} is bumped past [seq] so mixing the
    two cannot create duplicate keys. *)
val push_keyed : 'a t -> time:int -> seq:int -> 'a -> unit

(** [pop t] removes and returns the earliest event as [(time, event)],
    or [None] if empty. Allocates the option/tuple; the hot loop should
    use {!min_time} + {!pop_min} instead. *)
val pop : 'a t -> (int * 'a) option

(** [min_time t] is the timestamp of the earliest event without
    removing it. @raise Invalid_argument on an empty heap — check
    {!is_empty} first on the hot path. *)
val min_time : 'a t -> int

(** [min_seq t] is the tie-breaking sequence number of the earliest
    event — the second component of the heap's min key. Used to merge
    several heaps under one total order. @raise Invalid_argument on an
    empty heap. *)
val min_seq : 'a t -> int

(** [pop_min t] removes and returns the earliest event with no
    option/tuple boxing. @raise Invalid_argument on an empty heap. *)
val pop_min : 'a t -> 'a

(** [peek_time t] is the timestamp of the earliest event, if any. *)
val peek_time : 'a t -> int option

(** [compact t ~keep] removes every queued event for which [keep]
    returns [false]. Surviving entries retain their original
    [(time, sequence)] keys, so subsequent pop order is unchanged —
    used to purge cancelled timers without disturbing determinism. *)
val compact : 'a t -> keep:('a -> bool) -> unit

(** [rekey t ~threshold ~seq_of] rewrites, in place, the tie-break seq
    of every entry whose current seq is [>= threshold] to
    [seq_of event]. No re-sift is performed, so this is only sound when
    the rewrite is strictly monotone over the seq values present in the
    heap (it then preserves every pairwise [(time, seq)] comparison and
    the existing layout stays a valid min-heap). The conservative
    window scheduler uses this to resolve provisional in-window seqs to
    their final engine-global values — see {!Engine.Window}. *)
val rekey : 'a t -> threshold:int -> seq_of:('a -> int) -> unit

(** [size t] is the number of queued events. *)
val size : 'a t -> int

(** [hi_water t] is the maximum number of events ever simultaneously
    queued over the heap's lifetime (high-water occupancy). *)
val hi_water : 'a t -> int

(** [is_empty t] is [size t = 0]. *)
val is_empty : 'a t -> bool
