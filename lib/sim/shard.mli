(** Per-site ownership partition for simulation state.

    The paper's deployments are geographic: control centers and data
    centers are {e sites}, and all protocol traffic between sites
    crosses a WAN boundary. This module makes that structure explicit in
    the types. A {!partition} assigns every overlay node to exactly one
    shard (= site, plus one shard pooling the field devices); {!owned}
    stores per-node mutable state grouped under the owning shard, so
    "which shard may touch this row" is visible in the representation
    rather than implicit in a flat [src*n+dst] array; {!boundary}
    ledgers every frame that crosses shards.

    Execution is still sequential — the engine pops one global
    [(time, seq)]-ordered stream — but per-site ownership is the
    foundation the ROADMAP's conservative-lookahead parallel engine
    builds on: a future sharded engine may only run two sites' events
    concurrently when no boundary crossing between them is pending.

    Determinism: nothing in this module consults an RNG or ambient
    state; all iteration orders are fixed functions of the partition. *)

type partition

(** [make ~shards ~owner ~nodes] builds a partition of nodes
    [0 .. nodes-1] where node [i] belongs to shard [owner i].
    @raise Invalid_argument if [shards < 1], [nodes < 0], or [owner]
    returns an out-of-range shard. *)
val make : shards:int -> owner:(int -> int) -> nodes:int -> partition

(** [singleton ~nodes] puts every node in one shard — the trivial
    partition used by tests and callers that don't care about sites. *)
val singleton : nodes:int -> partition

val shards : partition -> int
val nodes : partition -> int

(** [owner_of p node] is the shard owning [node]. *)
val owner_of : partition -> int -> int

(** [members p shard] is the nodes owned by [shard], ascending. The
    returned array is the partition's own — do not mutate. *)
val members : partition -> int -> int array

(** Whether a [src -> dst] hop stays inside one shard or crosses the
    inter-site (WAN) boundary. *)
type locality =
  | Local of int  (** both endpoints owned by this shard *)
  | Cross of { src_shard : int; dst_shard : int }

val locality : partition -> src:int -> dst:int -> locality

(** {1 Shard-owned per-node state}

    A ['a owned] holds one ['a] per node, stored as one row-array per
    shard: [data.(shard).(local_index)]. Reads and writes go through the
    owning shard's row, so a future parallel engine can hand each row to
    its owning domain without any cross-shard aliasing. *)

type 'a owned

(** [init p f] builds per-node state with [f node] for every node. [f]
    is called in shard-major order (shard 0's members ascending, then
    shard 1's, ...); use only effect-free [f] where call order could be
    observed. *)
val init : partition -> (int -> 'a) -> 'a owned

val get : 'a owned -> int -> 'a
val set : 'a owned -> int -> 'a -> unit

(** [row o shard] is the raw row owned by [shard] (members ascending —
    same order as {!members}). Exposed for hot loops that iterate one
    shard's state; treat as owned by that shard. *)
val row : 'a owned -> int -> 'a array

(** [iter f o] applies [f node v] for every node in ascending {e node}
    order (not shard-major), matching iteration over the old flat
    arrays so report orders are unchanged by the refactor. *)
val iter : (int -> 'a -> unit) -> 'a owned -> unit

(** {1 Inter-shard (WAN) boundary ledger} *)

type boundary

type crossing = {
  src_shard : int;
  dst_shard : int;
  frames : int;
  bytes : int;
  min_delay_us : int;
      (** minimum observed per-hop delivery delay on this pair, [max_int]
          if recorded frames are still in flight — the conservative
          scheduler's lookahead precondition is that this never drops
          below the advertised link-latency bound *)
}

(** [boundary p] is an empty ledger over [p]'s shard pairs. *)
val boundary : partition -> boundary

(** [record b ~src_shard ~dst_shard ~bytes] counts one frame crossing
    the boundary. No-op when [src_shard = dst_shard]. Each [(src, dst)]
    cell is only ever written from the source shard's stripe, so the
    ledger needs no synchronisation under parallel window execution. *)
val record : boundary -> src_shard:int -> dst_shard:int -> bytes:int -> unit

(** [record_delay b ~src_shard ~dst_shard ~delay_us] folds one observed
    cross-shard delivery delay into the pair's minimum. *)
val record_delay :
  boundary -> src_shard:int -> dst_shard:int -> delay_us:int -> unit

(** [crossings b] is every pair with traffic, ordered by
    [(src_shard, dst_shard)]. *)
val crossings : boundary -> crossing list

val total_frames : boundary -> int
val total_bytes : boundary -> int

(** {1 Engine heap mapping}

    By convention the sharded engine reserves heap 0 for control /
    untagged timers; shard [s]'s events live in heap [s + 1]. *)

(** [engine_shard p node] is the engine heap index for [node]'s
    timers: [1 + owner_of p node]. *)
val engine_shard : partition -> int -> int

(** [engine_shards p] is the heap count an engine needs to host this
    partition: [shards p + 1]. *)
val engine_shards : partition -> int
