(** The ownership root of one simulation instance.

    A [World.t] bundles everything mutable a scenario instance owns —
    engine (clock, heaps, root RNG), trace ring, and the site partition —
    into one explicit, passed-down value. Nothing in the simulator
    hangs off module toplevels, so a world is self-contained: any number
    of worlds can be created from distinct seeds and run concurrently on
    different domains (see {!Parallel}), with no shared mutable state
    between them. One world must only be driven from one domain at a
    time. *)

type t

(** [create ~seed ~shards ()] is a fresh world whose engine hosts
    [shards] heaps (default 1). [trace_capacity] bounds the retained
    debug-trace records (default 1024; tracing starts disabled). *)
val create : ?seed:int64 -> ?shards:int -> ?trace_capacity:int -> unit -> t

val seed : t -> int64
val engine : t -> Engine.t
val trace : t -> Trace.t

(** [rng w] derives a fresh independent stream from the engine's root
    stream (same derivation order as {!Engine.rng}). *)
val rng : t -> Rng.t

(** [now w] is the engine's current virtual time, in microseconds. *)
val now : t -> int

(** The site partition, once the topology is known. [set_partition]
    is called exactly once, by the system constructor. *)
val partition : t -> Shard.partition option

val set_partition : t -> Shard.partition -> unit
