(** Deterministic discrete-event simulation engine.

    All protocol code in this repository is written against this engine:
    components schedule callbacks at future virtual times and the engine
    executes them in timestamp order (ties broken by scheduling order).
    Virtual time is in integer {b microseconds}.

    {b Sharding.} The engine can host several event heaps — one per
    ownership shard (see {!Shard}) — while still executing {e one}
    globally ordered stream: tie-breaking sequence numbers are allocated
    engine-wide, so the merged pop order across heaps is bit-identical
    to a single heap's regardless of how timers are tagged. Tagging a
    timer with its owning shard records {e which site's state} the
    callback touches; it never changes when the callback runs. Heap 0 is
    the control heap for untagged timers.

    {b Ownership.} An engine value owns all of its mutable state — there
    are no module-level globals — so independent engines (one per
    scenario instance) can run concurrently on different domains. A
    single engine must only ever be driven from one domain at a time. *)

type t

(** Handle to a scheduled event, usable with {!cancel}. *)
type timer

(** [create ~seed ~shards ()] is a fresh engine whose root RNG is
    seeded with [seed], hosting [shards] event heaps (default 1).
    @raise Invalid_argument if [shards < 1]. *)
val create : ?seed:int64 -> ?shards:int -> unit -> t

(** [now t] is the current virtual time in microseconds. *)
val now : t -> int

(** [rng t] derives a fresh independent RNG stream from the engine's
    root stream. Call once per component at setup time. *)
val rng : t -> Rng.t

(** [shards t] is the number of event heaps (>= 1). *)
val shards : t -> int

(** [schedule t ~delay_us f] runs [f ()] at [now t + delay_us].
    Negative delays are clamped to 0 (run "now", after the current
    callback returns). Returns a cancellable timer handle. [shard]
    (default 0) tags the timer with its owning heap; out-of-range tags
    fall back to heap 0. *)
val schedule : ?shard:int -> t -> delay_us:int -> (unit -> unit) -> timer

(** [schedule_at t ~time_us f] runs [f ()] at absolute virtual time
    [time_us] (clamped to [now]). *)
val schedule_at : ?shard:int -> t -> time_us:int -> (unit -> unit) -> timer

(** [periodic t ~interval_us f] runs [f ()] every [interval_us] starting
    [interval_us] from now, until cancelled. Firings stay anchored to the
    original cadence: each one is re-armed at [scheduled_time +
    interval_us], so a callback that advances the clock (e.g. a nested
    {!run}) does not drift later firings; a timer that falls behind
    catches up by firing in quick succession.
    @raise Invalid_argument if [interval_us <= 0]. *)
val periodic : ?shard:int -> t -> interval_us:int -> (unit -> unit) -> timer

(** [cancel timer] prevents a pending event from firing; idempotent. *)
val cancel : timer -> unit

(** [run t ~until_us] executes events in order until the queue is empty
    or the next event is after [until_us]; afterwards [now t = until_us]
    (time always advances to the horizon). *)
val run : t -> until_us:int -> unit

(** [step t] executes the single globally earliest pending event (or
    pops one cancelled entry). Returns [false] when every heap is
    empty. *)
val step : t -> bool

(** [run_until_quiescent t ?max_events ()] executes events until none
    remain. @raise Failure if [max_events] is exceeded (runaway guard,
    default 100 million). *)
val run_until_quiescent : ?max_events:int -> t -> unit

(** [pending t] is the number of queued events across all heaps. *)
val pending : t -> int

(** [processed t] is the number of events executed so far. *)
val processed : t -> int

(** [processed_of t shard] is the number of events executed from
    [shard]'s heap — the per-site activity breakdown.
    [processed t = sum of processed_of t s over all shards].
    @raise Invalid_argument if [shard] is out of range. *)
val processed_of : t -> int -> int

(** [heap_hi_water t shard] is the high-water occupancy of [shard]'s
    event heap — the maximum number of simultaneously queued events it
    has ever held. @raise Invalid_argument if out of range. *)
val heap_hi_water : t -> int -> int

(** [exec_stripe t] is the heap index whose events the calling domain is
    currently executing: the stripe of the open conservative window on
    this domain, or [0] on the sequential path. Components use it to
    index striped statistics counters so that concurrent stripes never
    write the same cell. *)
val exec_stripe : t -> int

(** [timer_key tm] is [tm]'s latest [(time, seq)] heap key — for a fired
    one-shot, the firing time and the engine-global tie-break it fired
    under. Keys assigned inside a conservative window are provisional
    until the window's barrier resolves them; after {!Window.finalize}
    (or any sequential execution) they are final and totally ordered
    across shards exactly as the events fired. *)
val timer_key : timer -> int * int

(** Internal conservative-window API, consumed by {!Conservative}. The
    protocol is: {!Window.open_window} with the window's exclusive time
    bound, one {!Window.run_stripe} per heap (each from exactly one
    domain; stripe 0 is normally left to sequential steps between
    windows), then {!Window.finalize} on the driving domain. Not for
    general use — invariants are documented in [engine.ml] and
    DESIGN.md §16. *)
module Window : sig
  type ctx

  (** One ctx per heap, reused across windows. *)
  val make_ctxs : t -> ctx array

  (** Earliest pending [(heap, time)] across all heaps, if any. *)
  val peek_next : t -> (int * int) option

  (** Earliest pending control-heap (heap 0) event time, if any. *)
  val control_next_time : t -> int option

  (** Advance the clock to the run horizon, as {!run} does on exit. *)
  val finish_run : t -> until_us:int -> unit

  (** Events the ctx executed during the last window. *)
  val executed : ctx -> int

  (** Open a window executing events strictly before [window_end]. *)
  val open_window : t -> ctx array -> window_end:int -> unit

  (** Drain the ctx's stripe up to the window end on the calling
      domain. *)
  val run_stripe : ctx -> unit

  (** Close the window: merge per-stripe logs into the sequential order,
      allocate final seqs, apply deferred cross-stripe effects. Returns
      the number of cross-shard events exchanged. @raise Failure on any
      conservative-safety violation. *)
  val finalize : t -> ctx array -> w_start:int -> window_end:int -> int
end

(** Pretty time: microseconds rendered as e.g. ["1.250s"] or ["750ms"]. *)
val pp_time_us : Format.formatter -> int -> unit
