(** Deterministic discrete-event simulation engine.

    All protocol code in this repository is written against this engine:
    components schedule callbacks at future virtual times and the engine
    executes them in timestamp order (ties broken by scheduling order).
    Virtual time is in integer {b microseconds}.

    {b Sharding.} The engine can host several event heaps — one per
    ownership shard (see {!Shard}) — while still executing {e one}
    globally ordered stream: tie-breaking sequence numbers are allocated
    engine-wide, so the merged pop order across heaps is bit-identical
    to a single heap's regardless of how timers are tagged. Tagging a
    timer with its owning shard records {e which site's state} the
    callback touches; it never changes when the callback runs. Heap 0 is
    the control heap for untagged timers.

    {b Ownership.} An engine value owns all of its mutable state — there
    are no module-level globals — so independent engines (one per
    scenario instance) can run concurrently on different domains. A
    single engine must only ever be driven from one domain at a time. *)

type t

(** Handle to a scheduled event, usable with {!cancel}. *)
type timer

(** [create ~seed ~shards ()] is a fresh engine whose root RNG is
    seeded with [seed], hosting [shards] event heaps (default 1).
    @raise Invalid_argument if [shards < 1]. *)
val create : ?seed:int64 -> ?shards:int -> unit -> t

(** [now t] is the current virtual time in microseconds. *)
val now : t -> int

(** [rng t] derives a fresh independent RNG stream from the engine's
    root stream. Call once per component at setup time. *)
val rng : t -> Rng.t

(** [shards t] is the number of event heaps (>= 1). *)
val shards : t -> int

(** [schedule t ~delay_us f] runs [f ()] at [now t + delay_us].
    Negative delays are clamped to 0 (run "now", after the current
    callback returns). Returns a cancellable timer handle. [shard]
    (default 0) tags the timer with its owning heap; out-of-range tags
    fall back to heap 0. *)
val schedule : ?shard:int -> t -> delay_us:int -> (unit -> unit) -> timer

(** [schedule_at t ~time_us f] runs [f ()] at absolute virtual time
    [time_us] (clamped to [now]). *)
val schedule_at : ?shard:int -> t -> time_us:int -> (unit -> unit) -> timer

(** [periodic t ~interval_us f] runs [f ()] every [interval_us] starting
    [interval_us] from now, until cancelled. Firings stay anchored to the
    original cadence: each one is re-armed at [scheduled_time +
    interval_us], so a callback that advances the clock (e.g. a nested
    {!run}) does not drift later firings; a timer that falls behind
    catches up by firing in quick succession.
    @raise Invalid_argument if [interval_us <= 0]. *)
val periodic : ?shard:int -> t -> interval_us:int -> (unit -> unit) -> timer

(** [cancel timer] prevents a pending event from firing; idempotent. *)
val cancel : timer -> unit

(** [run t ~until_us] executes events in order until the queue is empty
    or the next event is after [until_us]; afterwards [now t = until_us]
    (time always advances to the horizon). *)
val run : t -> until_us:int -> unit

(** [run_until_quiescent t ?max_events ()] executes events until none
    remain. @raise Failure if [max_events] is exceeded (runaway guard,
    default 100 million). *)
val run_until_quiescent : ?max_events:int -> t -> unit

(** [pending t] is the number of queued events across all heaps. *)
val pending : t -> int

(** [processed t] is the number of events executed so far. *)
val processed : t -> int

(** [processed_of t shard] is the number of events executed from
    [shard]'s heap — the per-site activity breakdown.
    [processed t = sum of processed_of t s over all shards].
    @raise Invalid_argument if [shard] is out of range. *)
val processed_of : t -> int -> int

(** Pretty time: microseconds rendered as e.g. ["1.250s"] or ["750ms"]. *)
val pp_time_us : Format.formatter -> int -> unit
