(* Work-stealing pool over a static job set.

   Memory-model notes (OCaml 5): each results/errors slot is written by
   exactly one worker (whichever executed that job — ownership of a job
   index moves between workers only through a mutex-protected deque
   operation, which orders the handoff), and the final reads happen
   after Domain.join, which synchronises with domain termination. So
   the arrays need no atomics. The steal counter is the only
   cross-worker accumulator and uses Atomic. *)

type stats = { domains : int; jobs : int; steals : int }

let default_domains () = Domain.recommended_domain_count ()
let seed_of ~root ~index = Rng.derive ~seed:root ~index

(* Per-worker deque of job indices. The job set is static, so capacity
   is fixed at creation: the owner pops at [lo], thieves take at
   [hi - 1]. A plain mutex per deque is plenty — contention is one lock
   per job plus one per steal probe, dwarfed by any real job. *)
type deque = {
  lock : Mutex.t;
  slots : int array;
  mutable lo : int;
  mutable hi : int;
}

let pop_own dq =
  Mutex.lock dq.lock;
  let j = if dq.lo < dq.hi then begin
    let j = dq.slots.(dq.lo) in
    dq.lo <- dq.lo + 1;
    j
  end
  else -1
  in
  Mutex.unlock dq.lock;
  j

let steal_from dq =
  Mutex.lock dq.lock;
  let j = if dq.lo < dq.hi then begin
    dq.hi <- dq.hi - 1;
    dq.slots.(dq.hi)
  end
  else -1
  in
  Mutex.unlock dq.lock;
  j

let run_with_stats ?domains ~jobs f =
  if jobs < 0 then invalid_arg "Parallel.run: jobs < 0";
  let domains =
    match domains with Some d -> d | None -> default_domains ()
  in
  let domains = max 1 (min domains jobs) in
  let results = Array.make jobs None in
  let errors = Array.make jobs None in
  let steals = Atomic.make 0 in
  let exec i =
    match f i with
    | v -> results.(i) <- Some v
    | exception e -> errors.(i) <- Some e
  in
  if domains <= 1 then
    for i = 0 to jobs - 1 do
      exec i
    done
  else begin
    (* Deal jobs round-robin: worker w owns w, w + domains, ... — a
       fixed assignment, so with zero steals the pool degenerates to a
       static partition. *)
    let share w = ((jobs - w) + domains - 1) / domains in
    let deques =
      Array.init domains (fun w ->
          let n = share w in
          let slots = Array.init n (fun k -> w + (k * domains)) in
          { lock = Mutex.create (); slots; lo = 0; hi = n })
    in
    let worker w () =
      let continue = ref true in
      while !continue do
        let j = pop_own deques.(w) in
        if j >= 0 then exec j
        else begin
          (* Own deque empty: probe siblings, nearest first. The job
             set is static, so one full empty sweep means no pending
             work remains anywhere. *)
          let stolen = ref (-1) in
          let d = ref 1 in
          while !stolen < 0 && !d < domains do
            let j = steal_from deques.((w + !d) mod domains) in
            if j >= 0 then stolen := j;
            incr d
          done;
          if !stolen >= 0 then begin
            Atomic.incr steals;
            exec !stolen
          end
          else continue := false
        end
      done
    in
    let spawned =
      Array.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1)))
    in
    worker 0 ();
    Array.iter Domain.join spawned
  end;
  (* Deterministic failure: re-raise the lowest-indexed job's exception
     no matter which worker hit it first. *)
  let first_error = ref None in
  for i = jobs - 1 downto 0 do
    match errors.(i) with Some e -> first_error := Some e | None -> ()
  done;
  (match !first_error with Some e -> raise e | None -> ());
  let out =
    Array.map
      (function Some v -> v | None -> assert false (* every job ran *))
      results
  in
  (out, { domains; jobs; steals = Atomic.get steals })

let run ?domains ~jobs f = fst (run_with_stats ?domains ~jobs f)

let map ?domains f items =
  run ?domains ~jobs:(Array.length items) (fun i -> f items.(i))
