(* Parallel-array binary min-heap: times and tie-breaking sequence
   numbers live in unboxed int arrays, events in a companion array, so
   a push allocates nothing in steady state (the previous representation
   boxed a fresh 3-field entry record per event). *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable events : 'a array;
  mutable len : int;
  mutable next_seq : int;
  mutable hi_water : int;
}

let create () =
  {
    times = [||];
    seqs = [||];
    events = [||];
    len = 0;
    next_seq = 0;
    hi_water = 0;
  }

let earlier t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let tm = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tm;
  let sq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- sq;
  let ev = t.events.(i) in
  t.events.(i) <- t.events.(j);
  t.events.(j) <- ev

let sift_up t start =
  let i = ref start in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if earlier t !i parent then begin
      swap t !i parent;
      i := parent
    end
    else continue := false
  done

let sift_down t start =
  let i = ref start in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.len && earlier t l !smallest then smallest := l;
    if r < t.len && earlier t r !smallest then smallest := r;
    if !smallest <> !i then begin
      swap t !i !smallest;
      i := !smallest
    end
    else continue := false
  done

let grow t witness =
  let cap = max 64 (2 * Array.length t.times) in
  let times = Array.make cap 0 in
  let seqs = Array.make cap 0 in
  let events = Array.make cap witness in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.seqs 0 seqs 0 t.len;
  Array.blit t.events 0 events 0 t.len;
  t.times <- times;
  t.seqs <- seqs;
  t.events <- events

let push_keyed t ~time ~seq event =
  if t.len >= Array.length t.times then grow t event;
  let i = t.len in
  t.times.(i) <- time;
  t.seqs.(i) <- seq;
  t.events.(i) <- event;
  (* Keep the internal counter ahead of caller-supplied keys so mixing
     [push] and [push_keyed] on one heap cannot produce duplicate keys. *)
  if seq >= t.next_seq then t.next_seq <- seq + 1;
  t.len <- t.len + 1;
  if t.len > t.hi_water then t.hi_water <- t.len;
  sift_up t i

let push t ~time event =
  let seq = t.next_seq in
  push_keyed t ~time ~seq event

let is_empty t = t.len = 0
let size t = t.len

let min_time t =
  if t.len = 0 then invalid_arg "Event_heap.min_time: empty heap";
  t.times.(0)

let min_seq t =
  if t.len = 0 then invalid_arg "Event_heap.min_seq: empty heap";
  t.seqs.(0)

let pop_min t =
  if t.len = 0 then invalid_arg "Event_heap.pop_min: empty heap";
  let ev = t.events.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.times.(0) <- t.times.(t.len);
    t.seqs.(0) <- t.seqs.(t.len);
    t.events.(0) <- t.events.(t.len);
    (* Drop the vacated slot's reference so the GC can reclaim it. *)
    t.events.(t.len) <- t.events.(0);
    sift_down t 0
  end;
  ev

let hi_water t = t.hi_water

let rekey t ~threshold ~seq_of =
  (* Rewrite the tie-break seqs of entries at or above [threshold] in
     place, with no re-sift. This is only sound when [seq_of] is
     strictly monotone over the seq values present in the heap — i.e.
     the mapping preserves every pairwise (time, seq) comparison — in
     which case the heap shape remains a valid min-heap as-is. The
     conservative scheduler guarantees this: provisional seqs resolve to
     fresh engine seqs in the same relative order, and every fresh seq
     is larger than every pre-existing real seq in the heap. *)
  for i = 0 to t.len - 1 do
    if t.seqs.(i) >= threshold then begin
      let seq = seq_of t.events.(i) in
      t.seqs.(i) <- seq;
      if seq >= t.next_seq then t.next_seq <- seq + 1
    end
  done

let pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) in
    let ev = pop_min t in
    Some (time, ev)
  end

let peek_time t = if t.len = 0 then None else Some t.times.(0)

let compact t ~keep =
  let old_len = t.len in
  let j = ref 0 in
  for i = 0 to old_len - 1 do
    if keep t.events.(i) then begin
      if !j < i then begin
        t.times.(!j) <- t.times.(i);
        t.seqs.(!j) <- t.seqs.(i);
        t.events.(!j) <- t.events.(i)
      end;
      incr j
    end
  done;
  t.len <- !j;
  (* Release references of removed entries. *)
  if t.len > 0 then
    for i = t.len to old_len - 1 do
      t.events.(i) <- t.events.(0)
    done;
  (* Heapify: original (time, seq) keys are preserved, so the pop order
     of surviving entries is exactly what it would have been — keys are
     unique, making heap-internal layout unobservable. *)
  for i = (t.len / 2) - 1 downto 0 do
    sift_down t i
  done
