(* Ownership partition: node -> shard maps plus shard-grouped storage.
   The [owner]/[local] arrays are shared by reference between the
   partition and every [owned] built from it, so a get costs two array
   loads of indirection over the old flat representation — measured in
   the PERF harness against the sticky events/sec floor. *)

type partition = {
  shard_count : int;
  node_count : int;
  owner : int array; (* node -> shard *)
  local : int array; (* node -> index within members.(owner) *)
  member_rows : int array array; (* shard -> member nodes, ascending *)
}

let make ~shards ~owner ~nodes =
  if shards < 1 then invalid_arg "Shard.make: shards < 1";
  if nodes < 0 then invalid_arg "Shard.make: nodes < 0";
  let owner_arr = Array.init nodes owner in
  Array.iteri
    (fun node s ->
      if s < 0 || s >= shards then
        invalid_arg
          (Printf.sprintf "Shard.make: owner %d -> shard %d out of range" node s))
    owner_arr;
  let sizes = Array.make shards 0 in
  Array.iter (fun s -> sizes.(s) <- sizes.(s) + 1) owner_arr;
  let member_rows = Array.map (fun sz -> Array.make sz 0) sizes in
  let local = Array.make nodes 0 in
  let fill = Array.make shards 0 in
  for node = 0 to nodes - 1 do
    let s = owner_arr.(node) in
    member_rows.(s).(fill.(s)) <- node;
    local.(node) <- fill.(s);
    fill.(s) <- fill.(s) + 1
  done;
  { shard_count = shards; node_count = nodes; owner = owner_arr; local; member_rows }

let singleton ~nodes = make ~shards:1 ~owner:(fun _ -> 0) ~nodes
let shards p = p.shard_count
let nodes p = p.node_count
let owner_of p node = p.owner.(node)
let members p shard = p.member_rows.(shard)

type locality = Local of int | Cross of { src_shard : int; dst_shard : int }

let locality p ~src ~dst =
  let s = p.owner.(src) and d = p.owner.(dst) in
  if s = d then Local s else Cross { src_shard = s; dst_shard = d }

type 'a owned = {
  o_owner : int array; (* shared with the partition *)
  o_local : int array;
  data : 'a array array; (* data.(shard).(local) *)
}

let init p f =
  let data =
    Array.map (fun row -> Array.map (fun node -> f node) row) p.member_rows
  in
  { o_owner = p.owner; o_local = p.local; data }

let get o node = o.data.(o.o_owner.(node)).(o.o_local.(node))
let set o node v = o.data.(o.o_owner.(node)).(o.o_local.(node)) <- v
let row o shard = o.data.(shard)

let iter f o =
  for node = 0 to Array.length o.o_owner - 1 do
    f node (get o node)
  done

(* Every cell is written only by the source shard's stripe (the overlay
   records a crossing while executing on the transmitting node's owner),
   so under the conservative window scheduler no two domains ever touch
   the same cell; the totals are derived on read instead of being shared
   mutable hot spots. *)
type boundary = {
  b_shards : int;
  frames : int array; (* src_shard * b_shards + dst_shard *)
  bytes : int array;
  delays : int array; (* min observed per-hop delivery delay, us; max_int = none *)
}

type crossing = {
  src_shard : int;
  dst_shard : int;
  frames : int;
  bytes : int;
  min_delay_us : int;
}

let boundary p =
  let k = p.shard_count in
  {
    b_shards = k;
    frames = Array.make (k * k) 0;
    bytes = Array.make (k * k) 0;
    delays = Array.make (k * k) max_int;
  }

let record b ~src_shard ~dst_shard ~bytes =
  if src_shard <> dst_shard then begin
    let i = (src_shard * b.b_shards) + dst_shard in
    b.frames.(i) <- b.frames.(i) + 1;
    b.bytes.(i) <- b.bytes.(i) + bytes
  end

let record_delay b ~src_shard ~dst_shard ~delay_us =
  if src_shard <> dst_shard then begin
    let i = (src_shard * b.b_shards) + dst_shard in
    if delay_us < b.delays.(i) then b.delays.(i) <- delay_us
  end

let crossings b =
  let out = ref [] in
  for i = (b.b_shards * b.b_shards) - 1 downto 0 do
    if b.frames.(i) > 0 then
      out :=
        {
          src_shard = i / b.b_shards;
          dst_shard = i mod b.b_shards;
          frames = b.frames.(i);
          bytes = b.bytes.(i);
          min_delay_us = b.delays.(i);
        }
        :: !out
  done;
  !out

let total_frames (b : boundary) = Array.fold_left ( + ) 0 b.frames
let total_bytes (b : boundary) = Array.fold_left ( + ) 0 b.bytes

let engine_shard p node = 1 + p.owner.(node)
let engine_shards p = p.shard_count + 1
