(** Conservative-lookahead parallel execution of one sharded engine.

    Classic conservative synchronization, specialised to this engine's
    ownership model: heaps 1..K hold site/field events, heap 0 holds
    control events, and the only cross-shard interaction is through WAN
    links whose propagation delay has a static positive floor. At each
    barrier the scheduler takes the globally earliest pending event time
    [tmin] and opens a window executing, concurrently on up to [domains]
    OCaml domains, every stripe event strictly before

    [window_end = min (tmin + L, next control event, until_us + 1)]

    where [L] is the minimum cross-shard latency bound. Any event a
    stripe produces for another stripe lands at [>= tmin + L], i.e. in a
    later window, so no stripe can miss input. Control-heap events run
    serially between windows and may therefore touch any state.

    The merged trajectory — event order, engine-global tie-break seqs,
    RNG usage, every counter — is {b bit-identical} to
    {!Engine.run}'s sequential execution for any [domains], including 1;
    the barrier merge re-derives the sequential seq allocation from
    per-stripe logs and fails loudly (rather than diverging silently) if
    a cross-shard product ever violates the lookahead bound. See
    DESIGN.md §16 for the full protocol and determinism argument. *)

type stats = {
  mutable windows : int;  (** parallel windows executed *)
  mutable window_events : int;  (** events executed inside windows *)
  mutable control_steps : int;  (** serial control-heap steps *)
  mutable degraded_steps : int;
      (** sequential fallback steps (window would have been empty) *)
  mutable cross_events : int;  (** cross-shard events exchanged *)
  stalls : int array;
      (** per-stripe count of windows in which the stripe had nothing to
          execute — shard imbalance / horizon starvation *)
  mutable max_window_events : int;  (** largest single-window batch *)
  mutable lookahead_us : int;  (** global lookahead bound L used *)
  incoming_lookahead_us : int array;
      (** per-stripe min over incoming channels of the latency bound —
          the stripe's own horizon distance at a barrier *)
}

(** [run ~domains engine ~min_latency_us ~until_us] executes [engine] up
    to [until_us] (inclusive, like {!Engine.run}) using conservative
    windows on [domains] domains (the caller's included; [1] spawns
    nothing). [min_latency_us] is the engine-shard-indexed matrix of
    minimum cross-shard event latencies, [max_int] where no channel
    exists; row/column 0 (control) are ignored. Degenerate cases — a
    single heap, a [max_int] bound with pending control work, adjacent
    control events — degrade to sequential stepping, never to
    incorrectness.

    @raise Invalid_argument if the matrix is not shards x shards.
    @raise Failure on a conservative-safety violation (an event or
    cancel that crosses shards faster than its advertised bound). *)
val run : ?domains:int -> Engine.t -> min_latency_us:int array array -> until_us:int -> stats

(** One-line stats rendering for bench / debug output. *)
val pp_stats : Format.formatter -> stats -> unit
