(** Denial-of-service attack driver against the overlay network.

    Models the network-level attacks the paper's red team exercised:
    sustained junk floods from compromised vantage points, link
    degradation (latency inflation), and outright link kills. Floods
    are generated as periodic junk-frame bursts so the overlay's
    fair-queueing and priority discipline are what decides their
    impact. Every flood frame carries real attacker bytes built by
    {!Wire.Junk} — guaranteed to fail {!Wire.Envelope.decode} at the
    receiving daemon. *)

type t

val create : engine:Sim.Engine.t -> t

(** [flood t ~net ~src ~dst ~frame_bytes ~frames_per_burst ~burst_interval_us]
    starts a periodic junk flood from overlay node [src] towards [dst]
    at [Bulk] priority (a compromised daemon cannot self-assign
    protocol priority — the overlay authenticates class assignment).
    Returns a handle index that can be stopped. *)
val flood :
  t ->
  net:'a Overlay.Net.t ->
  src:Overlay.Topology.node ->
  dst:Overlay.Topology.node ->
  frame_bytes:int ->
  frames_per_burst:int ->
  burst_interval_us:int ->
  int

(** [flood_control_class t ...] same, but the junk claims [Control]
    priority — models a compromised daemon that {e can} mark its own
    traffic; per-source fairness is then the only defence. *)
val flood_control_class :
  t ->
  net:'a Overlay.Net.t ->
  src:Overlay.Topology.node ->
  dst:Overlay.Topology.node ->
  frame_bytes:int ->
  frames_per_burst:int ->
  burst_interval_us:int ->
  int

(** [stop t handle] stops one attack; [stop_all t] stops everything. *)
val stop : t -> int -> unit

val stop_all : t -> unit

(** [active t] counts running attack generators. *)
val active : t -> int
