type t = {
  engine : Sim.Engine.t;
  mutable next_handle : int;
  timers : (int, Sim.Engine.timer) Hashtbl.t;
}

let create ~engine = { engine; next_handle = 0; timers = Hashtbl.create 7 }

let start_flood t ~net ~src ~dst ~frame_bytes ~frames_per_burst
    ~burst_interval_us ~priority =
  if frames_per_burst <= 0 || burst_interval_us <= 0 then
    invalid_arg "Dos.flood: non-positive burst parameters";
  let handle = t.next_handle in
  t.next_handle <- handle + 1;
  let rand = Sim.Rng.int (Sim.Engine.rng t.engine) in
  let timer =
    Sim.Engine.periodic t.engine ~interval_us:burst_interval_us (fun () ->
        for _ = 1 to frames_per_burst do
          (* Each flood frame is a fresh string of genuinely undecodable
             bytes: what the victim daemon receives fails
             [Wire.Envelope.decode], so dropping it is the modelled
             behaviour, not an assumption. *)
          let bytes = Wire.Junk.undecodable ~rand ~size_bytes:frame_bytes in
          Overlay.Net.inject_junk_bytes net ~src ~dst ~bytes ~priority
        done)
  in
  Hashtbl.replace t.timers handle timer;
  handle

let flood t ~net ~src ~dst ~frame_bytes ~frames_per_burst ~burst_interval_us =
  start_flood t ~net ~src ~dst ~frame_bytes ~frames_per_burst ~burst_interval_us
    ~priority:Overlay.Fair_queue.Bulk

let flood_control_class t ~net ~src ~dst ~frame_bytes ~frames_per_burst
    ~burst_interval_us =
  start_flood t ~net ~src ~dst ~frame_bytes ~frames_per_burst ~burst_interval_us
    ~priority:Overlay.Fair_queue.Control

let stop t handle =
  match Hashtbl.find_opt t.timers handle with
  | Some timer ->
    Sim.Engine.cancel timer;
    Hashtbl.remove t.timers handle
  | None -> ()

let stop_all t =
  Hashtbl.iter (fun _ timer -> Sim.Engine.cancel timer) t.timers;
  Hashtbl.reset t.timers

let active t = Hashtbl.length t.timers
