type config = {
  majority : int;
  cooldown_us : int;
  healthy_to_deescalate : int;
  base_tat_threshold_us : int;
}

let default_config ~n ~base_tat_threshold_us =
  {
    majority = (n / 2) + 1;
    cooldown_us = 1_000_000;
    healthy_to_deescalate = 20;
    base_tat_threshold_us;
  }

type t = {
  cfg : config;
  knobs : Knobs.t;
  mutable routing_level : int; (* 0 shortest, 1 kdisjoint, 2 flooding *)
  mutable leader_strikes : int; (* consecutive leader-slow actions *)
  mutable tat_level : int; (* escalation halvings applied *)
  mutable last_action_us : int;
  mutable healthy_ticks : int;
  mutable actions : int;
}

let create cfg knobs =
  if cfg.majority < 1 then invalid_arg "Control.Global.create: majority < 1";
  {
    cfg;
    knobs;
    routing_level = 0;
    leader_strikes = 0;
    tat_level = 0;
    last_action_us = min_int / 2;
    healthy_ticks = 0;
    actions = 0;
  }

let routing_level t = t.routing_level
let actions t = t.actions

let routing_of_level = function
  | 0 -> Knobs.Shortest
  | 1 -> Knobs.Kdisjoint 2
  | _ -> Knobs.Flooding

let issue t ~now_us req =
  t.actions <- t.actions + 1;
  ignore
    (Knobs.request t.knobs ~now_us ~source:"global" req : (unit, string) result)

let step t ~now_us (verdicts : Local.verdict array) =
  let leader = ref 0 and net = ref 0 in
  Array.iter
    (function
      | Local.Leader_slow -> incr leader
      | Local.Net_slow -> incr net
      | Local.Healthy -> ())
    verdicts;
  let cool = now_us - t.last_action_us >= t.cfg.cooldown_us in
  if !net >= t.cfg.majority then begin
    (* Network implicated: escalate dissemination redundancy. When the
       ladder is exhausted there is nothing further to try — stay at
       Flooding rather than thrash. *)
    t.healthy_ticks <- 0;
    t.leader_strikes <- 0;
    if cool && t.routing_level < 2 then begin
      t.routing_level <- t.routing_level + 1;
      t.last_action_us <- now_us;
      issue t ~now_us (Knobs.Set_routing (routing_of_level t.routing_level))
    end
  end
  else if !leader >= t.cfg.majority then begin
    (* Leader implicated: demote now; if the condition survives a full
       cooldown (the adversary follows the role, or demotion lacked
       votes), sharpen the protocol's own suspicion trigger so its
       detector fires faster, and demote again. *)
    t.healthy_ticks <- 0;
    if cool then begin
      t.last_action_us <- now_us;
      t.leader_strikes <- t.leader_strikes + 1;
      if t.leader_strikes >= 2 && t.tat_level < 3 then begin
        t.tat_level <- t.tat_level + 1;
        issue t ~now_us (Knobs.Set_tat_violations 1);
        issue t ~now_us
          (Knobs.Set_tat_threshold_us
             (max Knobs.min_tat_threshold_us
                (t.cfg.base_tat_threshold_us lsr t.tat_level)))
      end;
      issue t ~now_us Knobs.Demote_leader
    end
  end
  else begin
    t.healthy_ticks <- t.healthy_ticks + 1;
    t.leader_strikes <- 0;
    if
      t.healthy_ticks >= t.cfg.healthy_to_deescalate
      && t.routing_level > 0 && cool
    then begin
      t.routing_level <- t.routing_level - 1;
      t.last_action_us <- now_us;
      t.healthy_ticks <- 0;
      issue t ~now_us (Knobs.Set_routing (routing_of_level t.routing_level))
    end
  end
