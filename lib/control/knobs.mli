(** Runtime tuning plane: the validated actuation path.

    Every live parameter change in a running deployment — whether issued
    by the adaptive controller ({!Local}/{!Global}), a test, or an
    operator probe — flows through one [Knobs.t]: the request is
    validated against static bounds, handed to the deployment-installed
    actuator, and recorded in an append-only change journal together
    with per-knob applied/rejected counters. The journal and the
    counters reconcile by construction ({!reconcile}), which is what
    lets the E13 oracle assert that {e no} knob changed outside the
    plane.

    This module is deliberately dependency-free (it names routing modes
    and batch bounds abstractly): the deployment layer ([Spire.System])
    owns the translation onto [Overlay.Net], [Bft.Batch],
    [Recovery.Scheduler] and [Prime.Replica]. *)

(** Dissemination mode, mirrored from [Overlay.Net.mode] without the
    dependency. *)
type routing = Shortest | Kdisjoint of int | Flooding

type request =
  | Set_max_batch of int  (** ordering/reply/client aggregation bound *)
  | Set_batch_delay_us of int  (** aggregation deadline *)
  | Set_routing of routing
  | Set_recovery_period_us of int  (** proactive-recovery rotation *)
  | Set_tat_threshold_us of int  (** Prime turnaround suspicion bound *)
  | Set_tat_violations of int  (** consecutive violations to suspect *)
  | Demote_leader
      (** suspect the current leader on every correct replica now *)

(** The knob a request targets (the counter key). *)
type kind =
  | Max_batch
  | Batch_delay
  | Routing
  | Recovery_period
  | Tat_threshold
  | Tat_violations
  | Demotion

val kind_of_request : request -> kind
val kind_name : kind -> string
val all_kinds : kind list
val pp_routing : Format.formatter -> routing -> unit
val pp_request : Format.formatter -> request -> unit

(** {1 Static validation bounds} *)

val max_batch_limit : int  (** 1024 *)

val batch_delay_limit_us : int  (** 1 s *)

val kdisjoint_limit : int  (** 8 disjoint paths *)

val min_recovery_period_us : int  (** 100 ms *)

val min_tat_threshold_us : int  (** 1 ms *)

val max_tat_threshold_us : int  (** 60 s *)

val tat_violations_limit : int  (** 100 *)

(** [validate r] checks [r] against the bounds above; every request —
    from controller, test or operator — passes through this before the
    actuator is consulted. *)
val validate : request -> (unit, string) result

(** {1 The plane} *)

type t

(** One journal line: every decision, applied or rejected, with its
    provenance. *)
type entry = {
  at_us : int;  (** virtual time of the decision *)
  source : string;  (** e.g. ["global"], ["local:3"], ["probe"] *)
  request : request;
  applied : bool;
  note : string;  (** rejection reason; [""] when applied *)
}

val create : unit -> t

(** [set_actuator t f] installs the deployment hook that performs a
    validated request. [f] returns [Error reason] when the deployment
    cannot honour it (e.g. recovery not enabled); the rejection is
    journalled like a validation failure. Until an actuator is
    installed every request is rejected. *)
val set_actuator : t -> (request -> (unit, string) result) -> unit

(** [request t ~now_us ~source r] is the only way to change a knob:
    validate, actuate, journal, count. Returns the actuation outcome. *)
val request : t -> now_us:int -> source:string -> request -> (unit, string) result

(** [journal t] — every entry, oldest first. *)
val journal : t -> entry list

val journal_length : t -> int
val applied_count : t -> kind -> int
val rejected_count : t -> kind -> int
val total_applied : t -> int
val total_rejected : t -> int

(** [reconcile t] checks the journal against the counters: per-kind
    applied/rejected journal lines must equal the counter values and
    the journal length must equal their grand total. A discrepancy
    would mean a change bypassed the validated path. *)
val reconcile : t -> bool

val pp_entry : Format.formatter -> entry -> unit

(** [print_journal t] dumps the journal, oldest first, one line per
    entry (the [dev/debug.exe -- adapt] probe output). *)
val print_journal : t -> unit
