(** Per-replica (local-level) resilience estimator.

    The lower level of the DSN-2024 two-level split (Hammar & Stadler,
    "Intrusion Tolerance through Two-Level Feedback Control"): each
    replica periodically folds its own observations — the
    {!Telemetry.Attribution} lifecycle tables plus its Prime TAT alarm
    — into a compact local {e verdict}. Verdicts carry no actuation
    authority; the site-level {!Global} controller aggregates them
    across replicas and is the only component that issues knob
    requests.

    Detection is differential: on every tick the estimator diffs the
    cumulative phase histograms against the previous tick, giving
    {e windowed} means, and compares them to a baseline EMA learned
    while healthy. The attribution pipeline makes the two attack
    families separable by construction:

    - a {e leader attack} (delayed/withheld proposals) balloons the
      [Ordering] phase only — pre-order dissemination is leaderless,
      so [Preorder] stays at baseline;
    - a {e network attack} (inflated WAN latency, congestion) balloons
      [Preorder] (and every other WAN-crossing leg) together. *)

type verdict = Healthy | Leader_slow | Net_slow

val verdict_name : verdict -> string

type t

(** [create ~replica ()] — [degrade_factor] (default 2.0) is the
    windowed end-to-end mean vs baseline ratio that flags degradation;
    [net_growth_limit] (default 1.5) is the [Preorder] growth ratio
    above which a degradation is attributed to the network rather than
    the leader; [stall_ticks] (default 2) consecutive empty windows
    after confirmed traffic count as a withheld-proposal stall. *)
val create :
  ?degrade_factor:float ->
  ?net_growth_limit:float ->
  ?stall_ticks:int ->
  replica:int ->
  unit ->
  t

val replica : t -> int

(** [observe t ~tat_alarm attribution] ingests one tick. [tat_alarm]
    is the replica's own Prime suspicion state ([Replica.suspected]) —
    direct protocol-level leader evidence that overrides the
    phase-share inference unless the network is independently
    implicated. Returns (and records) the verdict for this tick. *)
val observe : t -> tat_alarm:bool -> Telemetry.Attribution.t -> verdict

(** [last t] is the most recent verdict ([Healthy] before any tick). *)
val last : t -> verdict

(** [baseline_e2e_us t] is the learned healthy end-to-end mean (0 until
    the first confirmed window). *)
val baseline_e2e_us : t -> float
