(** Site-level (global) resilience controller.

    The upper level of the DSN-2024 two-level split: on every tick it
    aggregates the per-replica {!Local} verdicts — requiring a
    {e majority} before believing any of them, so a minority of
    compromised or confused replicas cannot steer the knobs — folds in
    deployment-level signals, and issues knob changes through the
    validated {!Knobs} path with hysteresis (an escalation ladder) and
    a per-action cooldown.

    Policy, intentionally simple and auditable:

    - majority [Leader_slow] → request {!Knobs.Demote_leader}; if the
      condition persists through further cooldowns, tighten the TAT
      suspicion knobs ([Set_tat_violations 1], halved
      [Set_tat_threshold_us]) so the protocol's own detector fires
      faster, and demote again;
    - majority [Net_slow] → escalate the routing ladder one step per
      cooldown: Shortest → k-disjoint (2) → constrained Flooding;
    - sustained all-healthy → de-escalate the routing ladder one step
      at a time (hysteresis: it takes [healthy_to_deescalate]
      consecutive healthy ticks per step).

    The controller never touches a knob directly: every decision is a
    {!Knobs.request}, so the journal is the complete audit trail. *)

type config = {
  majority : int;  (** local verdicts required to act *)
  cooldown_us : int;  (** minimum spacing between actions *)
  healthy_to_deescalate : int;
      (** consecutive healthy ticks per de-escalation step *)
  base_tat_threshold_us : int;
      (** deployment's configured TAT bound (escalation halves it) *)
}

(** [default_config ~n ~base_tat_threshold_us] — majority [n/2 + 1],
    1 s cooldown, 20 healthy ticks to de-escalate. *)
val default_config : n:int -> base_tat_threshold_us:int -> config

type t

val create : config -> Knobs.t -> t

(** [step t ~now_us verdicts] ingests one tick of local verdicts and
    possibly issues knob requests (source ["global"]). *)
val step : t -> now_us:int -> Local.verdict array -> unit

(** [routing_level t] is the current ladder position: 0 = Shortest,
    1 = k-disjoint, 2 = Flooding. *)
val routing_level : t -> int

(** [actions t] counts the requests this controller has issued
    (applied or rejected — see the knob journal for the split). *)
val actions : t -> int
