type verdict = Healthy | Leader_slow | Net_slow

let verdict_name = function
  | Healthy -> "healthy"
  | Leader_slow -> "leader-slow"
  | Net_slow -> "net-slow"

(* Cumulative (count, sum-of-means) pair per watched phase; windowed
   means are first differences between consecutive ticks. *)
type cursor = { mutable count : int; mutable sum_us : float }

type t = {
  replica : int;
  degrade_factor : float;
  net_growth_limit : float;
  stall_ticks : int;
  e2e_cur : cursor;
  pre_cur : cursor;
  mutable base_e2e_us : float; (* healthy EMA; 0 = not yet learned *)
  mutable base_pre_us : float;
  mutable empty : int; (* consecutive ticks with zero confirmations *)
  mutable last : verdict;
}

let create ?(degrade_factor = 2.0) ?(net_growth_limit = 1.5) ?(stall_ticks = 2)
    ~replica () =
  if degrade_factor <= 1.0 then
    invalid_arg "Control.Local.create: degrade_factor must be > 1";
  if net_growth_limit <= 1.0 then
    invalid_arg "Control.Local.create: net_growth_limit must be > 1";
  if stall_ticks < 1 then
    invalid_arg "Control.Local.create: stall_ticks must be >= 1";
  {
    replica;
    degrade_factor;
    net_growth_limit;
    stall_ticks;
    e2e_cur = { count = 0; sum_us = 0. };
    pre_cur = { count = 0; sum_us = 0. };
    base_e2e_us = 0.;
    base_pre_us = 0.;
    empty = 0;
    last = Healthy;
  }

let replica t = t.replica
let last t = t.last
let baseline_e2e_us t = t.base_e2e_us

(* Advance a cursor to the phase's cumulative (count, sum) and return
   the windowed (delta_count, delta_sum). Histograms only grow, so the
   deltas are non-negative. *)
let advance cur = function
  | None -> (0, 0.)
  | Some (r : Telemetry.Attribution.row) ->
    let count = r.count and sum = r.mean_us *. float_of_int r.count in
    let dc = count - cur.count and ds = sum -. cur.sum_us in
    cur.count <- count;
    cur.sum_us <- sum;
    (max 0 dc, max 0. ds)

let ema old v = if old <= 0. then v else (0.9 *. old) +. (0.1 *. v)

let observe t ~tat_alarm (a : Telemetry.Attribution.t) =
  let de2e, dse2e = advance t.e2e_cur a.Telemetry.Attribution.e2e in
  let dpre, dspre =
    advance t.pre_cur
      (Telemetry.Attribution.phase_row a Telemetry.Span.Preorder)
  in
  let v =
    if de2e = 0 then begin
      (* Nothing confirmed this tick. Before any baseline that just
         means no traffic; after one, a sustained gap while pre-ordering
         continues is the signature of withheld proposals. *)
      if t.base_e2e_us > 0. then t.empty <- t.empty + 1;
      if tat_alarm then Leader_slow
      else if t.base_e2e_us > 0. && t.empty >= t.stall_ticks then Leader_slow
      else Healthy
    end
    else begin
      t.empty <- 0;
      let win_e2e = dse2e /. float_of_int de2e in
      let win_pre = if dpre > 0 then dspre /. float_of_int dpre else 0. in
      if t.base_e2e_us <= 0. then begin
        (* First confirmed window: seed the healthy baseline. *)
        t.base_e2e_us <- win_e2e;
        t.base_pre_us <- win_pre;
        Healthy
      end
      else begin
        let degraded = win_e2e > t.degrade_factor *. t.base_e2e_us in
        let net_growth =
          if t.base_pre_us > 0. then win_pre /. t.base_pre_us else 1.0
        in
        if degraded && net_growth > t.net_growth_limit then Net_slow
        else if degraded || tat_alarm then Leader_slow
        else begin
          (* Healthy tick: keep the baseline tracking slow drift. *)
          t.base_e2e_us <- ema t.base_e2e_us win_e2e;
          if win_pre > 0. then t.base_pre_us <- ema t.base_pre_us win_pre;
          Healthy
        end
      end
    end
  in
  t.last <- v;
  v
