type routing = Shortest | Kdisjoint of int | Flooding

type request =
  | Set_max_batch of int
  | Set_batch_delay_us of int
  | Set_routing of routing
  | Set_recovery_period_us of int
  | Set_tat_threshold_us of int
  | Set_tat_violations of int
  | Demote_leader

type kind =
  | Max_batch
  | Batch_delay
  | Routing
  | Recovery_period
  | Tat_threshold
  | Tat_violations
  | Demotion

let all_kinds =
  [
    Max_batch; Batch_delay; Routing; Recovery_period; Tat_threshold;
    Tat_violations; Demotion;
  ]

let kind_index = function
  | Max_batch -> 0
  | Batch_delay -> 1
  | Routing -> 2
  | Recovery_period -> 3
  | Tat_threshold -> 4
  | Tat_violations -> 5
  | Demotion -> 6

let kind_count = 7

let kind_of_request = function
  | Set_max_batch _ -> Max_batch
  | Set_batch_delay_us _ -> Batch_delay
  | Set_routing _ -> Routing
  | Set_recovery_period_us _ -> Recovery_period
  | Set_tat_threshold_us _ -> Tat_threshold
  | Set_tat_violations _ -> Tat_violations
  | Demote_leader -> Demotion

let kind_name = function
  | Max_batch -> "max_batch"
  | Batch_delay -> "batch_delay"
  | Routing -> "routing"
  | Recovery_period -> "recovery_period"
  | Tat_threshold -> "tat_threshold"
  | Tat_violations -> "tat_violations"
  | Demotion -> "demotion"

let pp_routing ppf = function
  | Shortest -> Format.pp_print_string ppf "shortest"
  | Kdisjoint k -> Format.fprintf ppf "kdisjoint(%d)" k
  | Flooding -> Format.pp_print_string ppf "flooding"

let pp_request ppf = function
  | Set_max_batch m -> Format.fprintf ppf "set max_batch=%d" m
  | Set_batch_delay_us d -> Format.fprintf ppf "set batch_delay=%dus" d
  | Set_routing r -> Format.fprintf ppf "set routing=%a" pp_routing r
  | Set_recovery_period_us p ->
    Format.fprintf ppf "set recovery_period=%dus" p
  | Set_tat_threshold_us us -> Format.fprintf ppf "set tat_threshold=%dus" us
  | Set_tat_violations k -> Format.fprintf ppf "set tat_violations=%d" k
  | Demote_leader -> Format.pp_print_string ppf "demote leader"

(* ------------------------------------------------------------------ *)
(* Validation bounds. Deliberately wide — the plane rejects nonsense
   (a zero TAT bound would suspect every leader instantly; an unbounded
   batch would never flush), not policy it dislikes.                   *)

let max_batch_limit = 1024
let batch_delay_limit_us = 1_000_000
let kdisjoint_limit = 8
let min_recovery_period_us = 100_000
let min_tat_threshold_us = 1_000
let max_tat_threshold_us = 60_000_000
let tat_violations_limit = 100

let validate = function
  | Set_max_batch m ->
    if m >= 1 && m <= max_batch_limit then Ok ()
    else Error (Printf.sprintf "max_batch %d outside [1, %d]" m max_batch_limit)
  | Set_batch_delay_us d ->
    if d >= 0 && d <= batch_delay_limit_us then Ok ()
    else
      Error
        (Printf.sprintf "batch_delay %dus outside [0, %dus]" d
           batch_delay_limit_us)
  | Set_routing (Kdisjoint k) ->
    if k >= 2 && k <= kdisjoint_limit then Ok ()
    else Error (Printf.sprintf "kdisjoint %d outside [2, %d]" k kdisjoint_limit)
  | Set_routing (Shortest | Flooding) -> Ok ()
  | Set_recovery_period_us p ->
    if p >= min_recovery_period_us then Ok ()
    else
      Error
        (Printf.sprintf "recovery_period %dus below %dus" p
           min_recovery_period_us)
  | Set_tat_threshold_us us ->
    if us >= min_tat_threshold_us && us <= max_tat_threshold_us then Ok ()
    else
      Error
        (Printf.sprintf "tat_threshold %dus outside [%dus, %dus]" us
           min_tat_threshold_us max_tat_threshold_us)
  | Set_tat_violations k ->
    if k >= 1 && k <= tat_violations_limit then Ok ()
    else
      Error
        (Printf.sprintf "tat_violations %d outside [1, %d]" k
           tat_violations_limit)
  | Demote_leader -> Ok ()

(* ------------------------------------------------------------------ *)

type entry = {
  at_us : int;
  source : string;
  request : request;
  applied : bool;
  note : string;
}

type t = {
  mutable actuator : (request -> (unit, string) result) option;
  mutable entries : entry list; (* newest first *)
  mutable entry_count : int;
  applied : int array; (* per kind_index *)
  rejected : int array;
}

let create () =
  {
    actuator = None;
    entries = [];
    entry_count = 0;
    applied = Array.make kind_count 0;
    rejected = Array.make kind_count 0;
  }

let set_actuator t f = t.actuator <- Some f

let request t ~now_us ~source req =
  let outcome =
    match validate req with
    | Error _ as e -> e
    | Ok () -> (
      match t.actuator with
      | None -> Error "no actuator installed"
      | Some f -> f req)
  in
  let i = kind_index (kind_of_request req) in
  let applied, note =
    match outcome with
    | Ok () ->
      t.applied.(i) <- t.applied.(i) + 1;
      (true, "")
    | Error msg ->
      t.rejected.(i) <- t.rejected.(i) + 1;
      (false, msg)
  in
  t.entries <- { at_us = now_us; source; request = req; applied; note } :: t.entries;
  t.entry_count <- t.entry_count + 1;
  outcome

let journal t = List.rev t.entries
let journal_length t = t.entry_count
let applied_count t k = t.applied.(kind_index k)
let rejected_count t k = t.rejected.(kind_index k)
let total_applied t = Array.fold_left ( + ) 0 t.applied
let total_rejected t = Array.fold_left ( + ) 0 t.rejected

let reconcile t =
  let ja = Array.make kind_count 0 and jr = Array.make kind_count 0 in
  List.iter
    (fun e ->
      let i = kind_index (kind_of_request e.request) in
      if e.applied then ja.(i) <- ja.(i) + 1 else jr.(i) <- jr.(i) + 1)
    t.entries;
  ja = t.applied && jr = t.rejected
  && t.entry_count = total_applied t + total_rejected t

let pp_entry ppf e =
  Format.fprintf ppf "%8dus %-8s %-9s %a%s" e.at_us e.source
    (if e.applied then "applied" else "REJECTED")
    pp_request e.request
    (if e.note = "" then "" else Printf.sprintf " (%s)" e.note)

let print_journal t =
  Format.printf "knob-change journal (%d entries):@." t.entry_count;
  List.iter (fun e -> Format.printf "  %a@." pp_entry e) (journal t);
  Format.printf "  applied=%d rejected=%d reconciled=%b@." (total_applied t)
    (total_rejected t) (reconcile t)
