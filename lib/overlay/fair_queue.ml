type priority = Control | Bulk

(* Round-robin rotation as a growable ring buffer of source ids. The
   previous implementation rotated with [rest @ [source]], an O(n) list
   append (and n fresh cons cells) per pop; the ring does the same
   rotation with two index updates and no allocation in steady state. *)
type ring = { mutable buf : int array; mutable head : int; mutable len : int }

let ring_create () = { buf = Array.make 16 0; head = 0; len = 0 }

let ring_push r v =
  let cap = Array.length r.buf in
  if r.len = cap then begin
    let buf = Array.make (2 * cap) 0 in
    for i = 0 to r.len - 1 do
      buf.(i) <- r.buf.((r.head + i) mod cap)
    done;
    r.buf <- buf;
    r.head <- 0
  end;
  r.buf.((r.head + r.len) mod Array.length r.buf) <- v;
  r.len <- r.len + 1

(* Precondition: [r.len > 0]. *)
let ring_pop r =
  let v = r.buf.(r.head) in
  r.head <- (r.head + 1) mod Array.length r.buf;
  r.len <- r.len - 1;
  v

type 'a class_state = {
  queues : (int, 'a Queue.t) Hashtbl.t;
  rotation : ring; (* sources with pending items, service order *)
  mutable count : int;
}

type 'a t = {
  per_source_cap : int;
  control : 'a class_state;
  bulk : 'a class_state;
  mutable dropped : int;
}

let empty_class () =
  { queues = Hashtbl.create 17; rotation = ring_create (); count = 0 }

let create ~per_source_cap =
  if per_source_cap <= 0 then invalid_arg "Fair_queue.create: cap <= 0";
  { per_source_cap; control = empty_class (); bulk = empty_class (); dropped = 0 }

let class_of t = function Control -> t.control | Bulk -> t.bulk

let queue_of cls source =
  match Hashtbl.find_opt cls.queues source with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add cls.queues source q;
    q

let push t ~source ~priority item =
  let cls = class_of t priority in
  let q = queue_of cls source in
  if Queue.length q >= t.per_source_cap then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    if Queue.is_empty q then ring_push cls.rotation source;
    Queue.push item q;
    cls.count <- cls.count + 1;
    true
  end

let pop_class cls =
  if cls.rotation.len = 0 then None
  else begin
    let source = ring_pop cls.rotation in
    let q = queue_of cls source in
    let item = Queue.pop q in
    cls.count <- cls.count - 1;
    if not (Queue.is_empty q) then ring_push cls.rotation source;
    Some (source, item)
  end

let pop t =
  match pop_class t.control with
  | Some (source, item) -> Some (source, Control, item)
  | None -> (
    match pop_class t.bulk with
    | Some (source, item) -> Some (source, Bulk, item)
    | None -> None)

let length t = t.control.count + t.bulk.count
let is_empty t = length t = 0
let dropped t = t.dropped

let backlog_of t ~source ~priority =
  let cls = class_of t priority in
  match Hashtbl.find_opt cls.queues source with
  | Some q -> Queue.length q
  | None -> 0
