type t = {
  generation_size : int;
  mutable current : (int, unit) Hashtbl.t;
  mutable previous : (int, unit) Hashtbl.t;
}

let create ?(generation_size = 65536) () =
  if generation_size < 1 then invalid_arg "Dedup_cache.create: size < 1";
  {
    generation_size;
    current = Hashtbl.create 256;
    previous = Hashtbl.create 16;
  }

let mem t id = Hashtbl.mem t.current id || Hashtbl.mem t.previous id

(* An id already remembered — in either generation — must not be
   re-inserted: adding a [previous]-generation id to [current] would
   double-count it in [size] and retain it past its window, inflating
   memory exactly when flood-heavy traffic re-touches old ids. *)
let add t id =
  if not (Hashtbl.mem t.current id || Hashtbl.mem t.previous id) then begin
    if Hashtbl.length t.current >= t.generation_size then begin
      t.previous <- t.current;
      t.current <- Hashtbl.create 256
    end;
    Hashtbl.replace t.current id ()
  end

let size t = Hashtbl.length t.current + Hashtbl.length t.previous
