type mode = Shortest | Redundant of int | Flood

type 'a delivery = {
  frame_src : Topology.node;
  frame_dst : Topology.node;
  payload : 'a;
  sent_us : int;
  delivered_us : int;
  hops : int;
}

type stats = {
  submitted : int;
  delivered : int;
  duplicates_suppressed : int;
  dropped_queue_full : int;
  dropped_link_down : int;
  dropped_no_route : int;
  dropped_arq_exhausted : int;
  dropped_retired_src : int;
  junk_frames : int;
  submitted_bytes : int;
  delivered_bytes : int;
  dropped_bytes : int;
}

(* Junk carries the attacker's actual bytes ("" when a raw test only
   cares about the size); it consumes bandwidth but is never delivered
   to a handler — the daemon's decode-and-authenticate step drops it. *)
type 'a content = Payload of 'a | Junk of string

(* Routing instructions carried by a frame. *)
type route = Path of Topology.node list (* remaining hops, next first *) | Flooding

type 'a frame = {
  id : int;
  src : Topology.node;
  dst : Topology.node;
  priority : Fair_queue.priority;
  size_bytes : int;
  content : 'a content;
  sent_us : int;
  mutable hops : int;
  route : route;
  dedup : bool;
      (* only flooded / redundantly-routed frames can arrive more than
         once; single-path frames skip dedup bookkeeping entirely *)
  trace : int;
      (* telemetry trace context riding alongside the payload; -1 when
         the frame is untraced, making the hot-path guard one int
         compare *)
}

(* Directed link runtime state. *)
type 'a link_state = {
  latency_us : int;
  bandwidth_bps : int;
  queue : 'a frame Fair_queue.t;
  mutable busy : bool;
  mutable latency_factor : float;
  mutable loss_probability : float;
      (* per-transmission drop probability; the hop-by-hop ARQ below
         retransmits lost frames, trading latency for reliability as
         the real overlay daemons do *)
  mutable retransmissions : int;
  mutable tx_bytes : int; (* bytes serialised, retransmissions included *)
  mutable tx_busy_us : int; (* virtual time spent serialising frames *)
}

type 'a t = {
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  topo : Topology.t;
  nodes : int;
  part : Sim.Shard.partition;
  (* Inter-shard (WAN) ledger: every frame copy enqueued onto a link
     whose endpoints are owned by different shards is recorded here —
     the traffic a real deployment pays WAN bandwidth for, and the
     coupling a future parallel engine must synchronise on. *)
  boundary : Sim.Shard.boundary;
  (* Per-node state is grouped by owning shard ({!Sim.Shard.owned}):
     each node's outgoing-link row, route-cache row, handler and dedup
     caches live in its site's rows, so "which shard may touch this"
     is explicit. A row is still a flat per-destination array — the
     per-hop path touches link state several times per frame, and
     tuple-keyed hashtables there cost a key allocation plus hashing
     per access. *)
  links : 'a link_state option array Sim.Shard.owned; (* row.(v) = u -> v *)
  link_up : bool array; (* undirected, normalised [a * nodes + b] *)
  node_up : bool array;
  (* link_up/node_up/retired stay flat and unsharded deliberately: they
     are liveness/membership maps — read by every shard on every hop,
     written only by the (serial) fault-injection control plane — so
     they are shared-read state, not per-site owned state. *)
  (* Membership guard: a retired node's id is no longer a valid frame
     source (its site was removed from the configuration).  Frames
     claiming a retired — or out-of-range — src are counted and
     dropped before they can index the per-node state rows. *)
  retired : bool array;
  handlers : ('a delivery -> unit) option Sim.Shard.owned;
  seen : Dedup_cache.t Sim.Shard.owned; (* per node: flooded frame ids seen *)
  delivered_ids : Dedup_cache.t Sim.Shard.owned;
      (* per node: dedup'd frame ids delivered *)
  (* Global statistics and the frame-id allocator, striped by the
     executing engine stripe ({!Sim.Engine.exec_stripe}) so concurrent
     conservative-window stripes never write the same cell; totals are
     summed on read. Sequential execution uses cell 0 only. Frame ids
     are allocated as [local * stripe_count + stripe] — unique across
     stripes, and behaviourally interchangeable with the sequential
     0,1,2,... allocation because ids are only ever compared for
     equality (dedup caches), never ordered or printed. *)
  stripe_stats : counters array;
  per_source_cap : int;
  (* Route caches: shortest paths and disjoint path sets are stable
     between topology state changes (kill/restore); recomputing them
     per frame dominates CPU otherwise. [row.(dst)] of [src]'s row is
     [None] when not yet computed. *)
  route_cache : Topology.node list option option array Sim.Shard.owned;
  kpath_cache : (int, Topology.node list list) Hashtbl.t array;
      (* key = (src * nodes + dst) * 1024 + min k 1023; one table per
         executing stripe (a [Redundant] submit always runs on the
         source's stripe, or serially on the control plane), since a
         shared Hashtbl would be corrupted by concurrent inserts *)
  mutable telemetry : Telemetry.Sink.t;
  queue_spans : (int, int) Hashtbl.t;
      (* open Net_queue span per queued traced frame, keyed by
         [frame.id * nodes² + link index] — a frame record is shared
         across links when flooding, so the span id cannot live on the
         frame itself *)
}

and counters = {
  mutable c_frame_seq : int;
  mutable c_submitted : int;
  mutable c_delivered : int;
  mutable c_duplicates_suppressed : int;
  mutable c_dropped_queue_full : int;
  mutable c_dropped_link_down : int;
  mutable c_dropped_no_route : int;
  mutable c_dropped_arq_exhausted : int;
  mutable c_dropped_retired_src : int;
  mutable c_junk_frames : int;
  mutable c_submitted_bytes : int;
  mutable c_delivered_bytes : int;
  mutable c_dropped_bytes : int;
}

(* The executing stripe's counter cell — the only cell the calling
   domain may write. *)
let ctrs t = t.stripe_stats.(Sim.Engine.exec_stripe t.engine)

let norm_idx t a b = if a < b then (a * t.nodes) + b else (b * t.nodes) + a

let create ?(per_source_cap = 64) ?partition engine topo () =
  let n = Topology.node_count topo in
  let part =
    match partition with
    | Some p ->
      if Sim.Shard.nodes p <> n then
        invalid_arg "Net.create: partition node count <> topology node count";
      p
    | None -> Sim.Shard.singleton ~nodes:n
  in
  let stripes = max 1 (Sim.Engine.shards engine) in
  let t =
    {
      engine;
      rng = Sim.Engine.rng engine;
      topo;
      nodes = n;
      part;
      boundary = Sim.Shard.boundary part;
      links = Sim.Shard.init part (fun _ -> Array.make n None);
      link_up = Array.make (n * n) false;
      node_up = Array.make n true;
      retired = Array.make n false;
      handlers = Sim.Shard.init part (fun _ -> None);
      seen = Sim.Shard.init part (fun _ -> Dedup_cache.create ());
      delivered_ids = Sim.Shard.init part (fun _ -> Dedup_cache.create ());
      stripe_stats =
        Array.init stripes (fun _ ->
            {
              c_frame_seq = 0;
              c_submitted = 0;
              c_delivered = 0;
              c_duplicates_suppressed = 0;
              c_dropped_queue_full = 0;
              c_dropped_link_down = 0;
              c_dropped_no_route = 0;
              c_dropped_arq_exhausted = 0;
              c_dropped_retired_src = 0;
              c_junk_frames = 0;
              c_submitted_bytes = 0;
              c_delivered_bytes = 0;
              c_dropped_bytes = 0;
            });
      per_source_cap;
      route_cache = Sim.Shard.init part (fun _ -> Array.make n None);
      kpath_cache = Array.init stripes (fun _ -> Hashtbl.create 997);
      telemetry = Telemetry.Sink.null;
      queue_spans = Hashtbl.create 64;
    }
  in
  List.iter
    (fun link ->
      let a = link.Topology.endpoint_a and b = link.Topology.endpoint_b in
      let mk () =
        {
          latency_us = link.Topology.latency_us;
          bandwidth_bps = link.Topology.bandwidth_bps;
          queue = Fair_queue.create ~per_source_cap;
          busy = false;
          latency_factor = 1.0;
          loss_probability = 0.0;
          retransmissions = 0;
          tx_bytes = 0;
          tx_busy_us = 0;
        }
      in
      (Sim.Shard.get t.links a).(b) <- Some (mk ());
      (Sim.Shard.get t.links b).(a) <- Some (mk ());
      t.link_up.(norm_idx t a b) <- true)
    (Topology.links topo);
  t

let topology t = t.topo
let partition t = t.part
let wan_crossings t = Sim.Shard.crossings t.boundary
let wan_frames t = Sim.Shard.total_frames t.boundary
let wan_bytes t = Sim.Shard.total_bytes t.boundary
let set_telemetry t sink = t.telemetry <- sink

(* Per-hop telemetry. Traced frames ([frame.trace >= 0], sink enabled)
   get root-level spans for each thing that can cost them time on a
   link: waiting in the fair queue, occupying the link, waiting out an
   ARQ retransmission, and propagating. Span ids are captured in the
   transmission closures, so no per-link mutable state is needed. *)
let traced t frame = frame.trace >= 0 && Telemetry.Sink.enabled t.telemetry

let qspan_key t u v frame_id = (frame_id * t.nodes * t.nodes) + (u * t.nodes) + v

let link_label u v = string_of_int u ^ "->" ^ string_of_int v

let open_hop_span t ~phase ~node ~label frame =
  Telemetry.Sink.open_span t.telemetry ~trace:frame.trace ~phase ~node ~label
    ~now:(Sim.Engine.now t.engine) ()

let close_hop_span t sid =
  Telemetry.Sink.close_span t.telemetry ~id:sid ~now:(Sim.Engine.now t.engine)

let set_handler t node f = Sim.Shard.set t.handlers node (Some f)
let link_alive t a b = t.link_up.(norm_idx t a b)
let node_alive t n = t.node_up.(n)
let usable t a b = link_alive t a b && t.node_up.(a) && t.node_up.(b)

let link_state t a b =
  match (Sim.Shard.get t.links a).(b) with
  | Some ls -> ls
  | None -> invalid_arg "Net: no such link"

(* Deliver a frame that has arrived at its destination.  A frame whose
   source was retired while the frame was in flight is dropped here:
   stale-site traffic must neither reach handlers nor fault on the
   flattened per-node arrays. *)
let deliver t node frame =
  if frame.src < 0 || frame.src >= t.nodes || t.retired.(frame.src) then begin
    let c = ctrs t in
    c.c_dropped_retired_src <- c.c_dropped_retired_src + 1;
    c.c_dropped_bytes <- c.c_dropped_bytes + frame.size_bytes
  end
  else if
    frame.dedup && Dedup_cache.mem (Sim.Shard.get t.delivered_ids node) frame.id
  then begin
    let c = ctrs t in
    c.c_duplicates_suppressed <- c.c_duplicates_suppressed + 1
  end
  else begin
    if frame.dedup then
      Dedup_cache.add (Sim.Shard.get t.delivered_ids node) frame.id;
    match frame.content with
    | Junk _ -> ()
    | Payload payload ->
      let c = ctrs t in
      c.c_delivered <- c.c_delivered + 1;
      c.c_delivered_bytes <- c.c_delivered_bytes + frame.size_bytes;
      (match Sim.Shard.get t.handlers node with
      | None -> ()
      | Some handler ->
        handler
          {
            frame_src = frame.src;
            frame_dst = frame.dst;
            payload;
            sent_us = frame.sent_us;
            delivered_us = Sim.Engine.now t.engine;
            hops = frame.hops;
          })
  end

(* Start transmitting the head frame of the (u,v) link if idle.

   Hop-by-hop reliability (ARQ): each transmission is lost with the
   link's loss probability; lost frames are retransmitted after a
   timeout of one RTT, up to [max_retransmissions] attempts. This is
   the overlay daemons' per-hop recovery; end-to-end modes (redundant
   paths, flooding) sit on top of it. *)
let max_retransmissions = 8

let rec maybe_transmit t u v =
  let ls = link_state t u v in
  if not ls.busy then begin
    match Fair_queue.pop ls.queue with
    | None -> ()
    | Some (_, _, frame) ->
      if traced t frame then begin
        let key = qspan_key t u v frame.id in
        match Hashtbl.find_opt t.queue_spans key with
        | Some sid ->
          Hashtbl.remove t.queue_spans key;
          close_hop_span t sid
        | None -> ()
      end;
      transmit_frame t u v ls frame 0
  end

and transmit_frame t u v ls frame attempt =
  ls.busy <- true;
  (* The transmit/ARQ legs of a (u, v) hop mutate [u]-owned link state,
     so those timers are tagged with [u]'s shard; the propagation leg
     ends in [arrive], which mutates [v]-owned state (dedup caches,
     handlers, onward queues), so it is tagged with [v]'s shard. The
     tags never affect sequential event order — keys are engine-global —
     but under conservative windows they are what routes each callback
     to the domain that owns the state it touches. *)
  let shard = Sim.Shard.engine_shard t.part u in
  let dst_shard = Sim.Shard.engine_shard t.part v in
  let tx_us = max 1 (frame.size_bytes * 1_000_000 / ls.bandwidth_bps) in
  ls.tx_bytes <- ls.tx_bytes + frame.size_bytes;
  ls.tx_busy_us <- ls.tx_busy_us + tx_us;
  let tx_sid =
    if traced t frame then
      open_hop_span t ~phase:Telemetry.Span.Net_transmit ~node:u
        ~label:(link_label u v) frame
    else -1
  in
  ignore
    (Sim.Engine.schedule ~shard t.engine ~delay_us:tx_us (fun () ->
         if tx_sid >= 0 then close_hop_span t tx_sid;
         let prop =
           int_of_float (float_of_int ls.latency_us *. ls.latency_factor)
         in
         let lost =
           ls.loss_probability > 0.
           && begin
                (* The loss draw consumes the shared net RNG stream —
                   fine serially, a determinism-breaking race across
                   window stripes. System refuses to enable parallel
                   windows for lossy scenarios; this guard catches any
                   path around that gate. *)
                if Sim.Engine.exec_stripe t.engine > 0 then
                  failwith
                    "Net: lossy links are not supported inside a parallel \
                     window (loss draws share one RNG stream)";
                Sim.Rng.bernoulli t.rng ls.loss_probability
              end
         in
         if lost && attempt < max_retransmissions then begin
           (* The sender detects the loss after ~one round trip and
              retransmits; the link stays occupied meanwhile. *)
           ls.retransmissions <- ls.retransmissions + 1;
           let arq_sid =
             if traced t frame then
               open_hop_span t ~phase:Telemetry.Span.Net_arq ~node:u
                 ~label:(link_label u v) frame
             else -1
           in
           ignore
             (Sim.Engine.schedule ~shard t.engine ~delay_us:(2 * prop) (fun () ->
                  if arq_sid >= 0 then close_hop_span t arq_sid;
                  transmit_frame t u v ls frame (attempt + 1))
               : Sim.Engine.timer)
         end
         else begin
           ls.busy <- false;
           if lost then begin
             (* All ARQ attempts failed: the frame is gone for good.
                Surface the drop in stats and keep the queue draining —
                a hot-loss link must not wedge its fair queue. *)
             let c = ctrs t in
             c.c_dropped_arq_exhausted <- c.c_dropped_arq_exhausted + 1;
             c.c_dropped_bytes <- c.c_dropped_bytes + frame.size_bytes
           end
           else begin
             (* Ledger the observed cross-shard hop delay: the
                conservative lookahead is only sound while this never
                undercuts the advertised per-link latency floor. *)
             (match Sim.Shard.locality t.part ~src:u ~dst:v with
             | Sim.Shard.Local _ -> ()
             | Sim.Shard.Cross { src_shard; dst_shard } ->
               Sim.Shard.record_delay t.boundary ~src_shard ~dst_shard
                 ~delay_us:prop);
             let prop_sid =
               if traced t frame then
                 open_hop_span t ~phase:Telemetry.Span.Net_propagate ~node:u
                   ~label:(link_label u v) frame
               else -1
             in
             ignore
               (Sim.Engine.schedule ~shard:dst_shard t.engine ~delay_us:prop
                  (fun () ->
                    if prop_sid >= 0 then close_hop_span t prop_sid;
                    arrive t u v frame)
                 : Sim.Engine.timer)
           end;
           maybe_transmit t u v
         end)
      : Sim.Engine.timer)

(* Frame arrives at node v over link (u,v). *)
and arrive t u v frame =
  if not (usable t u v) then begin
    let c = ctrs t in
    c.c_dropped_link_down <- c.c_dropped_link_down + 1;
    c.c_dropped_bytes <- c.c_dropped_bytes + frame.size_bytes
  end
  else begin
    frame.hops <- frame.hops + 1;
    match frame.route with
    | Flooding ->
      if not (Dedup_cache.mem (Sim.Shard.get t.seen v) frame.id) then begin
        Dedup_cache.add (Sim.Shard.get t.seen v) frame.id;
        if v = frame.dst then deliver t v frame;
        (* Constrained flooding: forward on all usable links except the
           one the frame came in on. *)
        List.iter
          (fun w -> if w <> u && usable t v w then enqueue t v w frame)
          (Topology.neighbors t.topo v)
      end
    | Path remaining -> (
      if v = frame.dst then deliver t v frame
      else
        match remaining with
        | next :: rest when next = v -> (
          match rest with
          | [] -> if v = frame.dst then deliver t v frame
          | hop :: _ ->
            if usable t v hop then
              enqueue t v hop { frame with route = Path rest }
            else begin
              let c = ctrs t in
              c.c_dropped_link_down <- c.c_dropped_link_down + 1;
              c.c_dropped_bytes <- c.c_dropped_bytes + frame.size_bytes
            end)
        | _ ->
          let c = ctrs t in
          c.c_dropped_link_down <- c.c_dropped_link_down + 1;
          c.c_dropped_bytes <- c.c_dropped_bytes + frame.size_bytes)
  end

and enqueue t u v frame =
  let ls = link_state t u v in
  if Fair_queue.push ls.queue ~source:frame.src ~priority:frame.priority frame
  then begin
    (* A hop between nodes owned by different shards crosses the
       inter-site (WAN) boundary — ledger each admitted copy. *)
    (match Sim.Shard.locality t.part ~src:u ~dst:v with
    | Sim.Shard.Local _ -> ()
    | Sim.Shard.Cross { src_shard; dst_shard } ->
      Sim.Shard.record t.boundary ~src_shard ~dst_shard ~bytes:frame.size_bytes);
    (* Open the queue-wait span before [maybe_transmit]: an idle link
       pops the frame straight back out and closes it at zero width. *)
    if traced t frame then begin
      let sid =
        open_hop_span t ~phase:Telemetry.Span.Net_queue ~node:u
          ~label:(link_label u v) frame
      in
      if sid >= 0 then Hashtbl.replace t.queue_spans (qspan_key t u v frame.id) sid
    end;
    maybe_transmit t u v
  end
  else begin
    let c = ctrs t in
    c.c_dropped_queue_full <- c.c_dropped_queue_full + 1;
    c.c_dropped_bytes <- c.c_dropped_bytes + frame.size_bytes
  end

let invalidate_routes t =
  Sim.Shard.iter (fun _ row -> Array.fill row 0 (Array.length row) None) t.route_cache;
  Array.iter Hashtbl.reset t.kpath_cache

let cached_shortest t ~src ~dst =
  let row = Sim.Shard.get t.route_cache src in
  match row.(dst) with
  | Some path -> path
  | None ->
    let path = Routing.shortest_path t.topo ~usable:(usable t) ~src ~dst in
    row.(dst) <- Some path;
    path

let cached_disjoint t ~src ~dst ~k =
  let key = (((src * t.nodes) + dst) * 1024) + min k 1023 in
  let cache = t.kpath_cache.(Sim.Engine.exec_stripe t.engine) in
  match Hashtbl.find_opt cache key with
  | Some paths -> paths
  | None ->
    let paths = Routing.disjoint_paths t.topo ~usable:(usable t) ~src ~dst ~k in
    Hashtbl.replace cache key paths;
    paths

let fresh_id t =
  let s = Sim.Engine.exec_stripe t.engine in
  let c = t.stripe_stats.(s) in
  let id = (c.c_frame_seq * Array.length t.stripe_stats) + s in
  c.c_frame_seq <- c.c_frame_seq + 1;
  id

let submit t ~priority ~size_bytes ~src ~dst ~mode ~trace content =
  let c = ctrs t in
  c.c_submitted <- c.c_submitted + 1;
  c.c_submitted_bytes <- c.c_submitted_bytes + size_bytes;
  (match content with
  | Junk _ -> c.c_junk_frames <- c.c_junk_frames + 1
  | Payload _ -> ());
  if
    src < 0 || src >= t.nodes || dst < 0 || dst >= t.nodes || t.retired.(src)
  then begin
    (* Unknown or retired source id: stale-site frames after a removal
       (or forged ids) are dropped before touching any [src * nodes]
       indexed state. *)
    c.c_dropped_retired_src <- c.c_dropped_retired_src + 1;
    c.c_dropped_bytes <- c.c_dropped_bytes + size_bytes
  end
  else if not t.node_up.(src) then begin
    c.c_dropped_link_down <- c.c_dropped_link_down + 1;
    c.c_dropped_bytes <- c.c_dropped_bytes + size_bytes
  end
  else begin
    let base_frame ?(dedup = false) route =
      {
        id = fresh_id t;
        src;
        dst;
        priority;
        size_bytes;
        content;
        sent_us = Sim.Engine.now t.engine;
        hops = 0;
        route;
        dedup;
        trace;
      }
    in
    if src = dst then begin
      let frame = base_frame (Path []) in
      ignore
        (Sim.Engine.schedule
           ~shard:(Sim.Shard.engine_shard t.part src)
           t.engine ~delay_us:0
           (fun () -> if t.node_up.(src) then deliver t src frame)
          : Sim.Engine.timer)
    end
    else
      match mode with
      | Flood ->
        let frame = base_frame ~dedup:true Flooding in
        Dedup_cache.add (Sim.Shard.get t.seen src) frame.id;
        List.iter
          (fun w -> if usable t src w then enqueue t src w frame)
          (Topology.neighbors t.topo src)
      | Shortest -> (
        match cached_shortest t ~src ~dst with
        | None ->
          c.c_dropped_no_route <- c.c_dropped_no_route + 1;
          c.c_dropped_bytes <- c.c_dropped_bytes + size_bytes
        | Some (_ :: rest) ->
          let frame = base_frame (Path rest) in
          (match rest with
          | hop :: _ -> enqueue t src hop frame
          | [] -> deliver t src frame)
        | Some [] ->
          c.c_dropped_no_route <- c.c_dropped_no_route + 1;
          c.c_dropped_bytes <- c.c_dropped_bytes + size_bytes)
      | Redundant k -> (
        let paths = cached_disjoint t ~src ~dst ~k:(max 1 k) in
        match paths with
        | [] ->
          c.c_dropped_no_route <- c.c_dropped_no_route + 1;
          c.c_dropped_bytes <- c.c_dropped_bytes + size_bytes
        | paths ->
          (* One frame id shared by all copies so the destination
             delivers exactly one. *)
          let id = fresh_id t in
          List.iter
            (fun path ->
              match path with
              | _ :: (hop :: _ as rest) ->
                let frame =
                  {
                    id;
                    src;
                    dst;
                    priority;
                    size_bytes;
                    content;
                    sent_us = Sim.Engine.now t.engine;
                    hops = 0;
                    route = Path rest;
                    dedup = true;
                    trace;
                  }
                in
                enqueue t src hop frame
              | _ -> ())
            paths)
  end

let send t ?(priority = Fair_queue.Control) ?(trace = -1) ~size_bytes ~src ~dst
    ~mode payload =
  submit t ~priority ~size_bytes ~src ~dst ~mode ~trace (Payload payload)

let inject_junk t ~src ~dst ~size_bytes ~priority =
  submit t ~priority ~size_bytes ~src ~dst ~mode:Shortest ~trace:(-1) (Junk "")

let inject_junk_bytes t ~src ~dst ~bytes ~priority =
  submit t ~priority ~size_bytes:(String.length bytes) ~src ~dst ~mode:Shortest
    ~trace:(-1) (Junk bytes)

let has_link t a b = (Sim.Shard.get t.links a).(b) <> None

let kill_link t a b =
  if not (has_link t a b) then invalid_arg "Net.kill_link: no such link";
  t.link_up.(norm_idx t a b) <- false;
  invalidate_routes t

let restore_link t a b =
  if not (has_link t a b) then invalid_arg "Net.restore_link: no such link";
  t.link_up.(norm_idx t a b) <- true;
  invalidate_routes t

let kill_node t n =
  t.node_up.(n) <- false;
  invalidate_routes t

let restore_node t n =
  t.node_up.(n) <- true;
  invalidate_routes t

(* Membership retirement is orthogonal to liveness: a retired node may
   still be up (its daemons keep running on stale state) but its
   frames are no longer admissible. *)
let retire_node t n =
  if n >= 0 && n < t.nodes then t.retired.(n) <- true

let unretire_node t n =
  if n >= 0 && n < t.nodes then t.retired.(n) <- false

let node_retired t n = n >= 0 && n < t.nodes && t.retired.(n)

let set_latency_factor t a b factor =
  if factor < 1.0 then invalid_arg "Net.set_latency_factor: factor < 1";
  (link_state t a b).latency_factor <- factor;
  (link_state t b a).latency_factor <- factor

let set_loss_probability t a b p =
  if p < 0. || p >= 1. then
    invalid_arg "Net.set_loss_probability: need 0 <= p < 1";
  (link_state t a b).loss_probability <- p;
  (link_state t b a).loss_probability <- p

(* Ascending (u, v) — the same order the old flat [u * nodes + v] array
   produced, so report orders are unchanged by the shard refactor. *)
let fold_links t f acc =
  let acc = ref acc in
  for u = 0 to t.nodes - 1 do
    let row = Sim.Shard.get t.links u in
    for v = 0 to t.nodes - 1 do
      match row.(v) with
      | None -> ()
      | Some ls -> acc := f u v ls !acc
    done
  done;
  !acc

let retransmissions t = fold_links t (fun _ _ ls acc -> acc + ls.retransmissions) 0

type link_report = {
  link_src : Topology.node;
  link_dst : Topology.node;
  tx_bytes : int;
  tx_busy_us : int;
}

let link_reports t =
  fold_links t
    (fun u v (ls : _ link_state) acc ->
      if ls.tx_bytes = 0 then acc
      else
        {
          link_src = u;
          link_dst = v;
          tx_bytes = ls.tx_bytes;
          tx_busy_us = ls.tx_busy_us;
        }
        :: acc)
    []
  |> List.sort (fun a b ->
         match compare b.tx_bytes a.tx_bytes with
         | 0 -> compare (a.link_src, a.link_dst) (b.link_src, b.link_dst)
         | c -> c)

let link_utilisation _t ~elapsed_us report =
  if elapsed_us <= 0 then 0.
  else min 1. (float_of_int report.tx_busy_us /. float_of_int elapsed_us)

let current_route t ~src ~dst =
  Routing.shortest_path t.topo ~usable:(usable t) ~src ~dst

let estimated_latency_us t ~src ~dst =
  Option.map (Routing.path_latency_us t.topo) (current_route t ~src ~dst)

(* Minimum cross-shard direct-link latency floors, indexed by partition
   shard pair ([max_int] where no direct link joins the pair). Sound as
   a per-event bound for relayed routes too: frames move hop by hop, and
   each hop's arrival is (re)scheduled on the receiving node's shard
   with at least that hop's link latency — so every cross-shard event
   transfer is bounded below by the direct-link floor of the pair it
   actually crosses. [set_latency_factor] only inflates delays (factor
   >= 1.0 enforced) and links are never added at runtime, so the floors
   are static for a topology. *)
let shard_min_latency t =
  let k = Sim.Shard.shards t.part in
  let m = Array.make_matrix k k max_int in
  List.iter
    (fun (link : Topology.link) ->
      let sa = Sim.Shard.owner_of t.part link.Topology.endpoint_a in
      let sb = Sim.Shard.owner_of t.part link.Topology.endpoint_b in
      if sa <> sb then begin
        let l = link.Topology.latency_us in
        if l < m.(sa).(sb) then m.(sa).(sb) <- l;
        if l < m.(sb).(sa) then m.(sb).(sa) <- l
      end)
    (Topology.links t.topo);
  m

let stats t =
  let sum f = Array.fold_left (fun acc c -> acc + f c) 0 t.stripe_stats in
  {
    submitted = sum (fun c -> c.c_submitted);
    delivered = sum (fun c -> c.c_delivered);
    duplicates_suppressed = sum (fun c -> c.c_duplicates_suppressed);
    dropped_queue_full = sum (fun c -> c.c_dropped_queue_full);
    dropped_link_down = sum (fun c -> c.c_dropped_link_down);
    dropped_no_route = sum (fun c -> c.c_dropped_no_route);
    dropped_arq_exhausted = sum (fun c -> c.c_dropped_arq_exhausted);
    dropped_retired_src = sum (fun c -> c.c_dropped_retired_src);
    junk_frames = sum (fun c -> c.c_junk_frames);
    submitted_bytes = sum (fun c -> c.c_submitted_bytes);
    delivered_bytes = sum (fun c -> c.c_delivered_bytes);
    dropped_bytes = sum (fun c -> c.c_dropped_bytes);
  }
