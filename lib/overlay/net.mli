(** Runtime of the intrusion-tolerant overlay network.

    A ['a Net.t] instantiates a {!Topology} on a simulation engine:
    every node runs an overlay daemon that queues, forwards and delivers
    frames carrying ['a] payloads. Three dissemination modes mirror the
    Spines modes Spire relies on:

    - [Shortest]: latency-weighted single-path unicast (normal routing);
    - [Redundant k]: the frame is sent over up to [k] node-disjoint
      paths, and the destination delivers the first copy — an adversary
      must cut every path to suppress the message;
    - [Flood]: constrained flooding over all usable links with per-node
      duplicate suppression — delivery is guaranteed whenever any
      correct path exists, at the cost of bandwidth.

    Links serialise frames at finite bandwidth through a two-class
    priority queue with round-robin source fairness ({!Fair_queue}), the
    overlay's defence against flooding DoS. Links and nodes can be
    killed, restored, and degraded at runtime; single-path routes are
    recomputed on change. *)

type mode = Shortest | Redundant of int | Flood

type 'a delivery = {
  frame_src : Topology.node;
  frame_dst : Topology.node;
  payload : 'a;
  sent_us : int;  (** virtual time the frame entered the overlay *)
  delivered_us : int;
  hops : int;  (** overlay hops traversed by the delivered copy *)
}

type 'a t

type stats = {
  submitted : int;
  delivered : int;
  duplicates_suppressed : int;
  dropped_queue_full : int;
  dropped_link_down : int;
  dropped_no_route : int;
  dropped_arq_exhausted : int;
      (** frames lost after all hop-by-hop ARQ retransmission attempts
          failed (sustained loss beyond what per-hop recovery absorbs) *)
  dropped_retired_src : int;
      (** frames whose source id is out of range or belongs to a
          retired (removed-from-membership) node — counted and dropped
          before touching any flattened per-node state *)
  junk_frames : int;
  submitted_bytes : int;  (** payload bytes of submitted frames (junk included) *)
  delivered_bytes : int;  (** bytes of frames delivered to a handler *)
  dropped_bytes : int;
      (** bytes of dropped frame copies, across every drop cause (a
          flooded frame losing one copy counts that copy's bytes) *)
}

(** [create engine topo ()] builds the runtime. [per_source_cap] bounds
    each (source, class) link backlog (default 64 frames). [partition]
    (default {!Sim.Shard.singleton}) assigns each node to an ownership
    shard — typically its geographic site: per-node state is then
    stored in per-shard rows, every frame copy enqueued between
    differently-owned nodes is ledgered as an inter-site (WAN) boundary
    crossing, and hop timers are tagged with the shard heap
    ({!Sim.Shard.engine_shard}) owning the state they mutate — transmit
    and ARQ legs with the transmitting node's, the propagation/arrival
    leg with the receiving node's. The partition never affects
    {e sequential} behaviour — event order, delivery, stats are
    bit-identical for any partition — it makes ownership and WAN
    coupling explicit, which is what lets {!Sim.Conservative} run the
    shards concurrently with the same bit-identical trajectory.
    @raise Invalid_argument if the partition's node count differs from
    the topology's. *)
val create :
  ?per_source_cap:int ->
  ?partition:Sim.Shard.partition ->
  Sim.Engine.t ->
  Topology.t ->
  unit ->
  'a t

val topology : 'a t -> Topology.t

(** [partition t] is the ownership partition (singleton when none was
    supplied). *)
val partition : 'a t -> Sim.Shard.partition

(** {1 Inter-site (WAN) boundary ledger} *)

(** [wan_crossings t] is the per-(src shard, dst shard) ledger of frame
    copies enqueued across the ownership boundary, ordered by shard
    pair. *)
val wan_crossings : 'a t -> Sim.Shard.crossing list

(** [wan_frames t] / [wan_bytes t] are the ledger totals. *)
val wan_frames : 'a t -> int

val wan_bytes : 'a t -> int

(** [shard_min_latency t] is the static matrix of minimum cross-shard
    link latencies, indexed by partition shard pair: [m.(a).(b)] is the
    smallest [latency_us] over direct links joining a node owned by [a]
    to one owned by [b], or [max_int] when no such link exists. This is
    a sound lower bound on every cross-shard {e event} delay — frames
    travel hop by hop and each hop's arrival is scheduled on the
    receiving node's shard no earlier than its link's latency
    ([set_latency_factor] only inflates; links are never added at
    runtime) — and is what {!Sim.Conservative} derives its lookahead
    window from. *)
val shard_min_latency : 'a t -> int array array

(** [set_handler t node f] installs the delivery callback for [node];
    replaces any previous handler. *)
val set_handler : 'a t -> Topology.node -> ('a delivery -> unit) -> unit

(** [set_telemetry t sink] makes traced frames (those sent with
    [~trace >= 0]) record per-hop spans into [sink]: fair-queue wait
    ([Net_queue]), link occupancy ([Net_transmit]), ARQ retransmission
    waits ([Net_arq]) and propagation ([Net_propagate]), each labelled
    with the directed link. Defaults to {!Telemetry.Sink.null}; with
    the null sink or untraced frames the per-hop cost is one integer
    compare. *)
val set_telemetry : 'a t -> Telemetry.Sink.t -> unit

(** [send t ~size_bytes ~src ~dst ~mode payload] submits a frame.
    [priority] defaults to [Control]. [size_bytes] is the frame's wire
    length and is {e always} supplied by the caller: protocol traffic
    derives it from the encoded frame ([Wire.Envelope] in the system
    layer), so there is no magic default that would let a summary-matrix
    pre-prepare cost the same as a one-word vote. Self-sends deliver
    immediately (next event). [trace] attaches a telemetry trace context
    to the frame (default [-1] = untraced); see {!set_telemetry}. *)
val send :
  'a t ->
  ?priority:Fair_queue.priority ->
  ?trace:int ->
  size_bytes:int ->
  src:Topology.node ->
  dst:Topology.node ->
  mode:mode ->
  'a ->
  unit

(** [inject_junk t ~src ~dst ~size_bytes ~priority] submits an
    attacker frame that consumes link capacity but is never delivered to
    a handler (the receiving daemon's decode-and-authenticate step drops
    it). Raw size-only form for overlay-level tests. *)
val inject_junk :
  'a t ->
  src:Topology.node ->
  dst:Topology.node ->
  size_bytes:int ->
  priority:Fair_queue.priority ->
  unit

(** [inject_junk_bytes t ~src ~dst ~bytes ~priority] — same, but the
    junk is the attacker's actual byte string (e.g. from [Wire.Junk]);
    the charged size is [String.length bytes]. *)
val inject_junk_bytes :
  'a t ->
  src:Topology.node ->
  dst:Topology.node ->
  bytes:string ->
  priority:Fair_queue.priority ->
  unit

(** {1 Failure and attack injection} *)

(** [kill_link t a b] marks the undirected link down (frames queued or
    in flight on it are lost); no-op if already down.
    @raise Invalid_argument if no such link. *)
val kill_link : 'a t -> Topology.node -> Topology.node -> unit

val restore_link : 'a t -> Topology.node -> Topology.node -> unit

(** [link_alive t a b] is the current state. *)
val link_alive : 'a t -> Topology.node -> Topology.node -> bool

(** [kill_node t n] takes the daemon down: nothing is delivered to or
    forwarded by [n]. *)
val kill_node : 'a t -> Topology.node -> unit

val restore_node : 'a t -> Topology.node -> unit
val node_alive : 'a t -> Topology.node -> bool

(** [retire_node t n] marks [n]'s id inadmissible as a frame source:
    the node's site left the membership, so frames it submits (or that
    are still in flight from it) are counted in [dropped_retired_src]
    and dropped. Orthogonal to liveness — a retired node may still be
    up and babbling on stale state. Out-of-range ids are ignored. *)
val retire_node : 'a t -> Topology.node -> unit

(** [unretire_node t n] re-admits [n] (site re-joined). *)
val unretire_node : 'a t -> Topology.node -> unit

val node_retired : 'a t -> Topology.node -> bool

(** [set_latency_factor t a b factor] scales the link's propagation
    delay (e.g. 10x under congestion attack). Factor must be >= 1. *)
val set_latency_factor : 'a t -> Topology.node -> Topology.node -> float -> unit

(** [invalidate_routes t] clears every cached shortest path and
    k-disjoint path set, forcing recomputation on next use. Called
    internally after every topology mutation ([kill_link],
    [restore_node], ...); exposed so callers that change the
    {e dissemination mode} of future sends (the runtime tuning plane)
    can drop routes computed for the previous mode. Recomputation is a
    pure function of the unchanged topology, so invalidation alone
    never changes the trajectory; frames already in flight keep the
    route captured at submit time. *)
val invalidate_routes : 'a t -> unit

(** [set_loss_probability t a b p] makes each transmission over the
    link drop with probability [p] (0 <= p < 1). Hop-by-hop ARQ
    retransmits lost frames (up to 8 attempts), converting loss into
    latency — the overlay daemons' per-hop recovery. *)
val set_loss_probability : 'a t -> Topology.node -> Topology.node -> float -> unit

(** [retransmissions t] counts ARQ retransmissions performed so far. *)
val retransmissions : 'a t -> int

(** {1 Per-link byte accounting} *)

type link_report = {
  link_src : Topology.node;
  link_dst : Topology.node;  (** directed: frames serialised src -> dst *)
  tx_bytes : int;  (** bytes transmitted, retransmissions included *)
  tx_busy_us : int;  (** virtual time the link spent serialising *)
}

(** [link_reports t] lists every directed link that transmitted at least
    one frame, descending by [tx_bytes]. *)
val link_reports : 'a t -> link_report list

(** [link_utilisation t ~elapsed_us report] is the fraction of
    [elapsed_us] the reported link spent serialising frames, in [0, 1]. *)
val link_utilisation : 'a t -> elapsed_us:int -> link_report -> float

(** {1 Introspection} *)

(** [current_route t ~src ~dst] is the shortest usable path right now. *)
val current_route :
  'a t -> src:Topology.node -> dst:Topology.node -> Routing.path option

(** [estimated_latency_us t ~src ~dst] is the propagation latency of the
    current shortest route (excluding queueing), if routable. *)
val estimated_latency_us :
  'a t -> src:Topology.node -> dst:Topology.node -> int option

val stats : 'a t -> stats
