type t = Pass | Fail of string

let pass = Pass
let fail msg = Fail msg
let failf fmt = Format.kasprintf (fun msg -> Fail msg) fmt
let is_pass = function Pass -> true | Fail _ -> false

let combine verdicts =
  match List.find_opt (fun v -> not (is_pass v)) verdicts with
  | Some failure -> failure
  | None -> Pass

let pp ppf = function
  | Pass -> Format.fprintf ppf "PASS"
  | Fail msg -> Format.fprintf ppf "FAIL: %s" msg
