(** Cross-replica agreement oracle.

    The safety invariant of the replicated SCADA master: all {e correct}
    replicas execute the same totally-ordered sequence of updates.
    Checked two ways, both O(number of replicas) thanks to the digest
    chain of {!Bft.Exec_log}:

    - execution logs of any two correct replicas are prefix-compatible
      (the shorter is a digest-chain prefix of the longer);
    - two correct replicas that applied the same number of updates to
      their application state hold identical state digests.

    The caller samples the system periodically and feeds only replicas
    it considers correct at that instant (not crashed, not Byzantine,
    not mid-recovery); lagging replicas are fine — a lagging log is
    still a prefix. *)

type t

val create : unit -> t

(** [observe t ~logs ~states] runs one consistency check over the given
    correct replicas. [logs] pairs each replica with its execution log;
    [states] is [(replica, applied_count, state_digest)]. A violation
    latches the verdict to [Fail]. *)
val observe :
  t ->
  logs:(Bft.Types.replica * Bft.Exec_log.t) list ->
  states:(Bft.Types.replica * int * Cryptosim.Digest.t) list ->
  unit

(** [check_logs logs] is the pure prefix-compatibility check (exposed
    for direct use and for testing the oracle itself). *)
val check_logs : (Bft.Types.replica * Bft.Exec_log.t) list -> Verdict.t

(** [check_states states] is the pure equal-length/equal-digest check. *)
val check_states :
  (Bft.Types.replica * int * Cryptosim.Digest.t) list -> Verdict.t

val verdict : t -> Verdict.t

(** [checks t] counts observations made (to assert the oracle actually
    ran). *)
val checks : t -> int
