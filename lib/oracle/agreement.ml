type t = { mutable verdict : Verdict.t; mutable checks : int }

let create () = { verdict = Verdict.pass; checks = 0 }
let verdict t = t.verdict
let checks t = t.checks

let check_logs logs =
  let rec pairwise = function
    | [] | [ _ ] -> Verdict.pass
    | (r0, l0) :: rest ->
      let bad =
        List.find_opt (fun (_, li) -> not (Bft.Exec_log.prefix_equal l0 li)) rest
      in
      (match bad with
      | Some (ri, li) ->
        Verdict.failf
          "exec-log divergence: replicas %d (len %d) and %d (len %d) are not \
           prefix-compatible"
          r0 (Bft.Exec_log.length l0) ri (Bft.Exec_log.length li)
      | None -> pairwise rest)
  in
  pairwise logs

let check_states states =
  let rec scan = function
    | [] | [ _ ] -> Verdict.pass
    | (r0, n0, d0) :: rest ->
      let bad =
        List.find_opt
          (fun (_, ni, di) -> ni = n0 && not (Cryptosim.Digest.equal d0 di))
          rest
      in
      (match bad with
      | Some (ri, _, _) ->
        Verdict.failf
          "application-state divergence: replicas %d and %d applied %d \
           updates each but hold different state digests"
          r0 ri n0
      | None -> scan rest)
  in
  scan states

let observe t ~logs ~states =
  t.checks <- t.checks + 1;
  if Verdict.is_pass t.verdict then
    t.verdict <- Verdict.combine [ check_logs logs; check_states states ]
