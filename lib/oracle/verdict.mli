(** Oracle verdicts.

    Every runtime oracle reduces to a verdict: [Pass], or [Fail reason]
    with a human-readable description of the violated invariant.
    Oracles {e latch}: once an invariant is observed violated the
    verdict stays [Fail] even if later observations look healthy — a
    transient safety violation is still a violation. *)

type t = Pass | Fail of string

val pass : t
val fail : string -> t

(** [failf fmt ...] is [Fail] of a formatted message. *)
val failf : ('a, Format.formatter, unit, t) format4 -> 'a

val is_pass : t -> bool

(** [combine vs] is the first failure in [vs], or [Pass]. *)
val combine : t list -> t

val pp : Format.formatter -> t -> unit
