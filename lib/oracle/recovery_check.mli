(** Post-heal recovery oracle.

    After a fault schedule has fully healed and a settle window has
    elapsed, the system must return to fault-free service: updates keep
    confirming, and median latency returns to within a small factor of
    the fault-free baseline measured before the turbulence started. A
    system that "survives" a fault schedule but limps forever after is
    not intrusion-tolerant in the paper's sense. *)

type result = {
  verdict : Verdict.t;
  baseline_p50_ms : float;
  post_p50_ms : float;
  post_confirmed : int;
}

(** [check ~factor ~slack_ms ~min_confirmed ~baseline ~post] compares
    the post-heal latency distribution against the fault-free baseline:
    at least [min_confirmed] updates confirmed after heal, and post-heal
    p50 within [factor * baseline_p50 + slack_ms] ([slack_ms] absorbs
    quantisation on very fast baselines).
    @raise Invalid_argument if [factor < 1]. *)
val check :
  factor:float ->
  slack_ms:float ->
  min_confirmed:int ->
  baseline:Stats.Histogram.t ->
  post:Stats.Histogram.t ->
  result
