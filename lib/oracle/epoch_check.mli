(** Epoch-safety oracle for online reconfiguration.

    Two invariants, latched like every oracle:

    - {b At most one active epoch}: at no sampled instant may two
      different epochs each hold an ordering quorum of live replicas —
      that would be two memberships able to order conflicting updates.
      The harness feeds per-epoch live-replica counts
      ({!Spire.System.epoch_activity}-shaped samples) together with each
      epoch's own quorum size.

    - {b Unique certificate chain}: cutover observations must agree — a
      given epoch has exactly one (boundary, certificate-digest) pair
      across every replica and every sample. *)

type t

val create : unit -> t

(** [observe_activity t ~time_us ~live ~quorum_of] reports one sample:
    [live] is the [(epoch, live_count)] list, [quorum_of epoch] that
    epoch's ordering quorum size (the sampler reads it off the
    certificate chain). *)
val observe_activity :
  t -> time_us:int -> live:(int * int) list -> quorum_of:(int -> int) -> unit

(** [observe_cutover t ~epoch ~boundary_exec ~digest] records one
    replica's (or the deployment's) view of a cutover; a second
    observation of the same epoch with a different boundary or digest
    latches a failure. *)
val observe_cutover :
  t -> epoch:int -> boundary_exec:int -> digest:Cryptosim.Digest.t -> unit

(** [note_violation t msg] latches an externally detected violation
    (e.g. {!Spire.System.epoch_violation}). *)
val note_violation : t -> string -> unit

val observations : t -> int
val verdict : t -> Verdict.t
