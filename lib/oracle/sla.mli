(** Bounded-delay SLA monitor over delivered client updates.

    The paper's headline timeliness property is that SCADA updates are
    confirmed within a bounded delay even under attack. This oracle
    watches every confirmed update's end-to-end latency against a
    two-level bound:

    - during {e calm} phases (no fault active, system settled) every
      update must confirm within [calm_bound_ms] — the paper's
      steady-state bound;
    - during {e turbulent} phases (faults being injected, or the settle
      window right after healing) the bound relaxes to
      [turbulent_bound_ms], which still caps the damage: client
      resubmission and failover must recover every update within a few
      retransmission timeouts, or something is genuinely wedged.

    The driving harness flips the phase as its fault schedule starts
    and drains. Violations latch. *)

type phase = Turbulent | Calm

type t

(** [create ~turbulent_bound_ms ~calm_bound_ms] starts in [Calm].
    @raise Invalid_argument if the calm bound exceeds the turbulent
    bound. *)
val create : turbulent_bound_ms:float -> calm_bound_ms:float -> t

val set_phase : t -> phase -> unit
val phase : t -> phase

(** [observe t ~time_us ~latency_ms] feeds one confirmed update. *)
val observe : t -> time_us:int -> latency_ms:float -> unit

val verdict : t -> Verdict.t

(** [samples t] counts updates observed. *)
val samples : t -> int

(** [worst_ms t] is the worst latency seen in any phase;
    [worst_calm_ms t] the worst seen during calm phases. *)
val worst_ms : t -> float

val worst_calm_ms : t -> float
