type phase = Turbulent | Calm

type t = {
  turbulent_bound_ms : float;
  calm_bound_ms : float;
  mutable phase : phase;
  mutable verdict : Verdict.t;
  mutable samples : int;
  mutable worst_ms : float;
  mutable worst_calm_ms : float;
}

let create ~turbulent_bound_ms ~calm_bound_ms =
  if calm_bound_ms > turbulent_bound_ms then
    invalid_arg "Sla.create: calm bound must not exceed turbulent bound";
  {
    turbulent_bound_ms;
    calm_bound_ms;
    phase = Calm;
    verdict = Verdict.pass;
    samples = 0;
    worst_ms = 0.;
    worst_calm_ms = 0.;
  }

let set_phase t phase = t.phase <- phase
let phase t = t.phase

let observe t ~time_us ~latency_ms =
  t.samples <- t.samples + 1;
  if latency_ms > t.worst_ms then t.worst_ms <- latency_ms;
  let bound, label =
    match t.phase with
    | Turbulent -> (t.turbulent_bound_ms, "turbulent")
    | Calm ->
      if latency_ms > t.worst_calm_ms then t.worst_calm_ms <- latency_ms;
      (t.calm_bound_ms, "calm")
  in
  if Verdict.is_pass t.verdict && latency_ms > bound then
    t.verdict <-
      Verdict.failf
        "SLA violation at t=%dus: update confirmed in %.1fms, %s-phase bound \
         is %.1fms"
        time_us latency_ms label bound

let verdict t = t.verdict
let samples t = t.samples
let worst_ms t = t.worst_ms
let worst_calm_ms t = t.worst_calm_ms
