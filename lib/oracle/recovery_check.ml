type result = {
  verdict : Verdict.t;
  baseline_p50_ms : float;
  post_p50_ms : float;
  post_confirmed : int;
}

let check ~factor ~slack_ms ~min_confirmed ~baseline ~post =
  if factor < 1.0 then invalid_arg "Recovery_check.check: factor < 1";
  let count_post = Stats.Histogram.count post in
  let baseline_p50 =
    if Stats.Histogram.count baseline = 0 then 0.
    else Stats.Histogram.percentile baseline 50.
  in
  let post_p50 =
    if count_post = 0 then 0. else Stats.Histogram.percentile post 50.
  in
  let verdict =
    if Stats.Histogram.count baseline = 0 then
      Verdict.fail "recovery check: empty fault-free baseline"
    else if count_post < min_confirmed then
      Verdict.failf
        "no recovery: only %d updates confirmed after heal (need >= %d) — \
         service did not resume"
        count_post min_confirmed
    else begin
      let bound = (baseline_p50 *. factor) +. slack_ms in
      if post_p50 > bound then
        Verdict.failf
          "no recovery: post-heal p50 latency %.1fms exceeds %.1fms (%.1fx \
           fault-free baseline p50 %.1fms + %.1fms slack)"
          post_p50 bound factor baseline_p50 slack_ms
      else Verdict.pass
    end
  in
  { verdict; baseline_p50_ms = baseline_p50; post_p50_ms = post_p50;
    post_confirmed = count_post }
