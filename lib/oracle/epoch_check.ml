type t = {
  mutable verdict : Verdict.t;
  mutable observations : int;
  cutovers : (int, int * Cryptosim.Digest.t) Hashtbl.t;
      (* epoch -> (boundary, digest), first observation wins *)
}

let create () =
  { verdict = Verdict.pass; observations = 0; cutovers = Hashtbl.create 7 }

let latch t v =
  if Verdict.is_pass t.verdict then t.verdict <- v

let observe_activity t ~time_us ~live ~quorum_of =
  t.observations <- t.observations + 1;
  let quorate =
    List.filter (fun (e, count) -> count >= quorum_of e) live
  in
  match quorate with
  | _ :: _ :: _ ->
    latch t
      (Verdict.failf "epochs %s each hold a quorum at t=%dus"
         (String.concat ","
            (List.map (fun (e, _) -> string_of_int e) quorate))
         time_us)
  | [] | [ _ ] -> ()

let observe_cutover t ~epoch ~boundary_exec ~digest =
  t.observations <- t.observations + 1;
  match Hashtbl.find_opt t.cutovers epoch with
  | None -> Hashtbl.replace t.cutovers epoch (boundary_exec, digest)
  | Some (b, d) ->
    if b <> boundary_exec || not (Cryptosim.Digest.equal d digest) then
      latch t
        (Verdict.failf
           "epoch %d certificate fork: boundary %d vs %d" epoch b
           boundary_exec)

let note_violation t msg = latch t (Verdict.fail msg)
let observations t = t.observations
let verdict t = t.verdict
