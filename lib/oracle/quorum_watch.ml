type t = {
  quorum : Bft.Quorum.t;
  mutable verdict : Verdict.t;
  mutable observations : int;
  mutable min_available : int;
}

let create ~quorum =
  {
    quorum;
    verdict = Verdict.pass;
    observations = 0;
    min_available = max_int;
  }

let observe t ~time_us ~available =
  t.observations <- t.observations + 1;
  if available < t.min_available then t.min_available <- available;
  let need = Bft.Quorum.quorum_size t.quorum in
  if Verdict.is_pass t.verdict && available < need then
    t.verdict <-
      Verdict.failf
        "quorum lost at t=%dus: %d correct connected replicas available, \
         ordering quorum needs %d (n=%d f=%d k=%d)"
        time_us available need t.quorum.Bft.Quorum.n t.quorum.Bft.Quorum.f
        t.quorum.Bft.Quorum.k

let verdict t = t.verdict
let observations t = t.observations
let min_available t = if t.observations = 0 then 0 else t.min_available
