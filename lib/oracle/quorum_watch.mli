(** Quorum-availability watchdog.

    Liveness of the replicated master requires an ordering quorum of
    [2f + k + 1] replicas that are simultaneously correct, connected to
    the overlay and not down for recovery. A fault schedule that stays
    within the budget ([<= f] Byzantine, [<= k] down/recovering, no
    partition larger than one tolerated site) never drops availability
    below the quorum; a schedule that exceeds the budget does — which is
    exactly what this watchdog reports.

    The driving harness samples the system periodically and reports how
    many replicas are currently available (correct, connected, not
    recovering). Dropping below quorum size latches a failure. *)

type t

val create : quorum:Bft.Quorum.t -> t

(** [observe t ~time_us ~available] reports one availability sample. *)
val observe : t -> time_us:int -> available:int -> unit

val verdict : t -> Verdict.t
val observations : t -> int

(** [min_available t] is the lowest availability ever observed (0 before
    any observation). *)
val min_available : t -> int
