(** Message vocabulary of the baseline leader-based protocol (PBFT).

    This is the "standard BFT protocol" the paper compares Prime
    against: three-phase ordering with view changes driven by request
    timeouts. Its known weakness — a malicious leader can delay every
    request just under the view-change timeout without being replaced —
    is exactly what experiment E4 measures. *)

type proposal = {
  seq : Bft.Types.seqno;
  updates : Bft.Update.t list;
      (** the batch ordered by this slot; [[]] is a no-op hole filler *)
}

(** [proposal_digest p] identifies the proposal's content for the
    prepare/commit phases (folds every update digest in batch order). *)
val proposal_digest : proposal -> Cryptosim.Digest.t

type prepared_entry = {
  entry_seq : Bft.Types.seqno;
  entry_view : Bft.Types.view;  (** view in which it prepared *)
  entry_updates : Bft.Update.t list;
}

type t =
  | Request of { update : Bft.Update.t; broadcast : bool }
      (** client request, possibly a retransmission broadcast to all *)
  | Preprepare of { view : Bft.Types.view; proposal : proposal }
  | Prepare of {
      view : Bft.Types.view;
      seq : Bft.Types.seqno;
      digest : Cryptosim.Digest.t;
    }
  | Commit of {
      view : Bft.Types.view;
      seq : Bft.Types.seqno;
      digest : Cryptosim.Digest.t;
    }
  | Checkpoint of { seq : Bft.Types.seqno; chain : Cryptosim.Digest.t }
  | Viewchange of {
      new_view : Bft.Types.view;
      last_stable : Bft.Types.seqno;
      prepared : prepared_entry list;
    }
  | Newview of {
      view : Bft.Types.view;
      proposals : proposal list;
      stable_seq : Bft.Types.seqno;
    }

val pp : Format.formatter -> t -> unit
