open Bft

type config = {
  quorum : Quorum.t;
  epoch : int;
      (* membership epoch this instance belongs to; tagged/filtered by
         the deployment layer (see Prime.Replica) *)
  request_timeout_us : int;
  viewchange_timeout_us : int;
  checkpoint_interval : int;
  watchdog_interval_us : int;
  batch : Batch.policy;
}

let default_config quorum =
  {
    quorum;
    epoch = 0;
    request_timeout_us = 2_000_000;
    viewchange_timeout_us = 4_000_000;
    checkpoint_interval = 128;
    watchdog_interval_us = 250_000;
    batch = Batch.singleton;
  }

type slot = {
  mutable slot_view : Types.view;
  mutable proposal : Msg.proposal option;
  mutable digest : Cryptosim.Digest.t option;
  prepares : (Types.replica, unit) Hashtbl.t;
  commits : (Types.replica, unit) Hashtbl.t;
  (* Votes that arrived before the pre-prepare, waiting to be counted. *)
  buffered_prepares : (Types.replica, Types.view * Cryptosim.Digest.t) Hashtbl.t;
  buffered_commits : (Types.replica, Types.view * Cryptosim.Digest.t) Hashtbl.t;
  mutable prepared : bool;
  mutable committed : bool;
}

type mode = Normal | View_changing of { target : Types.view; since_us : int }

type t = {
  config : config;
  env : Msg.t Env.t;
  execute : Types.seqno -> Update.t -> unit;
  faults : Faults.t;
  log : Exec_log.t;
  delivery : Delivery.t;
  slots : (Types.seqno, slot) Hashtbl.t;
  pending : (Types.client * int, Update.t * int) Hashtbl.t;
  mutable assigned : (Types.client * int, Types.seqno) Hashtbl.t;
  mutable view : Types.view;
  mutable mode : mode;
  mutable next_seq : Types.seqno;
  mutable last_executed : Types.seqno;
  mutable stable_seq : Types.seqno;
  req_acc : Update.t Batch.acc;
  vc_votes :
    ( Types.view,
      (Types.replica, Types.seqno * Msg.prepared_entry list) Hashtbl.t )
    Hashtbl.t;
  ckpt_votes :
    (Types.seqno * Cryptosim.Digest.t, (Types.replica, unit) Hashtbl.t) Hashtbl.t;
  mutable view_changes : int;
  mutable running : bool;
  (* One-way stop at an epoch boundary; see Prime.Replica.halt. *)
  mutable halted : bool;
}

let faults t = t.faults
let view t = t.view
let last_executed t = t.last_executed
let exec_log t = t.log
let view_changes t = t.view_changes
let pending_count t = Hashtbl.length t.pending
let epoch t = t.config.epoch
let halted t = t.halted
let halt t = t.halted <- true

let n t = t.config.quorum.Quorum.n
let quorum_size t = Quorum.quorum_size t.config.quorum
let leader_of t view = Types.leader_of ~n:(n t) view
let is_leader t = leader_of t t.view = t.env.Env.self && not t.faults.Faults.crashed

let create config env ~execute =
  {
    config;
    env;
    execute;
    faults = Faults.honest ();
    log = Exec_log.create ();
    delivery = Delivery.create ();
    slots = Hashtbl.create 997;
    pending = Hashtbl.create 97;
    assigned = Hashtbl.create 97;
    view = 0;
    mode = Normal;
    next_seq = 1;
    last_executed = 0;
    stable_seq = 0;
    req_acc = Batch.acc config.batch;
    vc_votes = Hashtbl.create 17;
    ckpt_votes = Hashtbl.create 17;
    view_changes = 0;
    running = false;
    halted = false;
  }

(* ------------------------------------------------------------------ *)
(* Sending through the fault filter.                                   *)

let send_to t dst msg =
  if
    (not t.halted)
    && (not t.faults.Faults.crashed)
    && (not t.faults.Faults.silent)
    && not (t.faults.Faults.drop_to dst)
  then t.env.Env.send dst msg

let broadcast t msg = List.iter (fun r -> send_to t r msg) (Env.others t.env)

let slot t seq =
  match Hashtbl.find_opt t.slots seq with
  | Some s -> s
  | None ->
    let s =
      {
        slot_view = -1;
        proposal = None;
        digest = None;
        prepares = Hashtbl.create 7;
        commits = Hashtbl.create 7;
        buffered_prepares = Hashtbl.create 7;
        buffered_commits = Hashtbl.create 7;
        prepared = false;
        committed = false;
      }
    in
    Hashtbl.replace t.slots seq s;
    s

(* ------------------------------------------------------------------ *)
(* Ordering pipeline: execute committed slots in sequence order, emit
   checkpoints, track stability.                                       *)

let rec try_execute t =
  let seq = t.last_executed + 1 in
  match Hashtbl.find_opt t.slots seq with
  | Some s when s.committed ->
    t.last_executed <- seq;
    (match s.proposal with
    | Some { Msg.updates; _ } ->
      List.iter
        (fun u ->
          Hashtbl.remove t.pending (Update.key u);
          (* Exactly-once, per-client-FIFO release. *)
          List.iter
            (fun released ->
              Hashtbl.remove t.pending (Update.key released);
              ignore (Exec_log.append t.log released : int);
              t.execute seq released)
            (Delivery.offer t.delivery u))
        updates
    | None -> ());
    if seq mod t.config.checkpoint_interval = 0 then begin
      let chain = Exec_log.chain_digest t.log in
      broadcast t (Msg.Checkpoint { seq; chain });
      record_checkpoint_vote t ~from:t.env.Env.self ~seq ~chain
    end;
    try_execute t
  | Some _ | None -> ()

and record_checkpoint_vote t ~from ~seq ~chain =
  let key = (seq, chain) in
  let voters =
    match Hashtbl.find_opt t.ckpt_votes key with
    | Some v -> v
    | None ->
      let v = Hashtbl.create 7 in
      Hashtbl.replace t.ckpt_votes key v;
      v
  in
  Hashtbl.replace voters from ();
  if Hashtbl.length voters >= quorum_size t && seq > t.stable_seq then begin
    t.stable_seq <- seq;
    let stale =
      Hashtbl.fold
        (fun s _ acc ->
          if s <= t.stable_seq && s <= t.last_executed then s :: acc else acc)
        t.slots []
    in
    List.iter (Hashtbl.remove t.slots) stale
  end

let rec maybe_prepared t seq =
  let s = slot t seq in
  if (not s.prepared) && Option.is_some s.proposal
     && Hashtbl.length s.prepares >= quorum_size t
  then begin
    s.prepared <- true;
    match s.digest with
    | None -> ()
    | Some digest ->
      broadcast t (Msg.Commit { view = s.slot_view; seq; digest });
      Hashtbl.replace s.commits t.env.Env.self ();
      maybe_committed t seq
  end

and maybe_committed t seq =
  let s = slot t seq in
  if (not s.committed) && s.prepared && Hashtbl.length s.commits >= quorum_size t
  then begin
    s.committed <- true;
    try_execute t
  end

(* ------------------------------------------------------------------ *)
(* Pre-prepare acceptance (both normal case and new-view replay).      *)

let accept_preprepare t ~view ~(proposal : Msg.proposal) =
  let seq = proposal.Msg.seq in
  if seq > t.last_executed then begin
    let s = slot t seq in
    let fresh = s.proposal = None || s.slot_view < view in
    if fresh then begin
      s.slot_view <- view;
      s.proposal <- Some proposal;
      let digest = Msg.proposal_digest proposal in
      s.digest <- Some digest;
      Hashtbl.reset s.prepares;
      Hashtbl.reset s.commits;
      s.prepared <- false;
      List.iter
        (fun (u : Update.t) ->
          if
            (not (Hashtbl.mem t.pending (Update.key u)))
            && not (Delivery.seen t.delivery (Update.key u))
          then Hashtbl.replace t.pending (Update.key u) (u, t.env.Env.now_us ());
          if Telemetry.Sink.enabled t.env.Env.telemetry then
            Telemetry.Sink.update_body t.env.Env.telemetry
              ~trace:
                (Telemetry.Span.trace_id ~client:u.Update.client
                   ~seq:u.Update.client_seq)
              ~replica:t.env.Env.self
              ~now:(t.env.Env.now_us ()))
        proposal.Msg.updates;
      (* The pre-prepare stands for the proposer's prepare vote; our own
         prepare vote is implicit in the broadcast below. *)
      Hashtbl.replace s.prepares (leader_of t view) ();
      Hashtbl.replace s.prepares t.env.Env.self ();
      broadcast t (Msg.Prepare { view; seq; digest });
      (* Count any votes that raced ahead of the pre-prepare. *)
      Hashtbl.iter
        (fun from (v, d) ->
          if v = view && Cryptosim.Digest.equal d digest then
            Hashtbl.replace s.prepares from ())
        s.buffered_prepares;
      Hashtbl.reset s.buffered_prepares;
      Hashtbl.iter
        (fun from (v, d) ->
          if v = view && Cryptosim.Digest.equal d digest then
            Hashtbl.replace s.commits from ())
        s.buffered_commits;
      Hashtbl.reset s.buffered_commits;
      maybe_prepared t seq
    end
  end

(* ------------------------------------------------------------------ *)
(* Leader proposal path (with Byzantine hooks).                        *)

let send_proposal t (proposal : Msg.proposal) =
  let proposal_view = t.view in
  let send_preprepare () =
    if t.faults.Faults.equivocate then begin
      let twin (u : Update.t) =
        Update.create ~client:u.Update.client ~client_seq:u.Update.client_seq
          ~operation:"equivocation-twin" ~submitted_us:u.Update.submitted_us
      in
      let twins =
        { proposal with Msg.updates = List.map twin proposal.Msg.updates }
      in
      List.iter
        (fun r ->
          let p = if r mod 2 = 0 then proposal else twins in
          send_to t r (Msg.Preprepare { view = proposal_view; proposal = p }))
        (Env.others t.env)
    end
    else broadcast t (Msg.Preprepare { view = proposal_view; proposal });
    accept_preprepare t ~view:proposal_view ~proposal
  in
  let delay = t.faults.Faults.proposal_delay_us in
  if delay > 0 then
    ignore
      (t.env.Env.set_timer delay (fun () ->
           if t.view = proposal_view && is_leader t then send_preprepare ())
        : Sim.Engine.timer)
  else send_preprepare ()

let flush_proposals t =
  if not (Batch.is_empty t.req_acc) then begin
    let updates = Batch.take_all t.req_acc in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    send_proposal t { Msg.seq; updates }
  end

let flush_proposals_due t =
  if (not t.halted) && (not t.faults.Faults.crashed) && is_leader t then
    match Batch.deadline_us t.req_acc with
    | Some d when d <= t.env.Env.now_us () -> flush_proposals t
    | Some _ | None -> ()

let propose t update =
  let key = Update.key update in
  if
    (not (Hashtbl.mem t.assigned key))
    && not (Delivery.seen t.delivery key)
  then begin
    Hashtbl.replace t.assigned key t.next_seq;
    (* Orderable milestone: the leader takes the update up for proposal
       here, *before* any (possibly malicious) proposal delay — so an
       E4-style delayed leader inflates the Ordering phase, which is
       exactly where the attack bites. *)
    if Telemetry.Sink.enabled t.env.Env.telemetry then
      Telemetry.Sink.update_orderable t.env.Env.telemetry
        ~trace:
          (Telemetry.Span.trace_id ~client:update.Update.client
             ~seq:update.Update.client_seq)
        ~now:(t.env.Env.now_us ());
    if Batch.is_singleton t.config.batch then begin
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      send_proposal t { Msg.seq; updates = [ update ] }
    end
    else begin
      Batch.push t.req_acc ~now:(t.env.Env.now_us ()) update;
      if Batch.full t.req_acc then flush_proposals t
      else if Batch.length t.req_acc = 1 then
        ignore
          (t.env.Env.set_timer t.config.batch.Batch.max_delay_us (fun () ->
               flush_proposals_due t)
            : Sim.Engine.timer)
    end
  end

(* ------------------------------------------------------------------ *)
(* View changes.                                                       *)

let prepared_entries t =
  Hashtbl.fold
    (fun seq s acc ->
      if s.prepared && seq > t.stable_seq then
        match s.proposal with
        | Some p ->
          {
            Msg.entry_seq = seq;
            entry_view = s.slot_view;
            entry_updates = p.Msg.updates;
          }
          :: acc
        | None -> acc
      else acc)
    t.slots []

let rec start_view_change t target =
  let should =
    target > t.view
    &&
    match t.mode with
    | View_changing { target = cur; _ } -> target > cur
    | Normal -> true
  in
  if should then begin
    t.mode <- View_changing { target; since_us = t.env.Env.now_us () };
    t.env.Env.trace (Printf.sprintf "view-change -> v%d" target);
    let prepared = prepared_entries t in
    broadcast t
      (Msg.Viewchange { new_view = target; last_stable = t.stable_seq; prepared });
    record_vc_vote t ~from:t.env.Env.self ~target ~last_stable:t.stable_seq
      ~prepared
  end

and record_vc_vote t ~from ~target ~last_stable ~prepared =
  if target > t.view then begin
    let votes =
      match Hashtbl.find_opt t.vc_votes target with
      | Some v -> v
      | None ->
        let v = Hashtbl.create 7 in
        Hashtbl.replace t.vc_votes target v;
        v
    in
    Hashtbl.replace votes from (last_stable, prepared);
    (* Liveness amplification: join any view change backed by f+1. *)
    if Hashtbl.length votes >= Quorum.reply_threshold t.config.quorum then
      start_view_change t target;
    if
      Hashtbl.length votes >= quorum_size t
      && leader_of t target = t.env.Env.self
    then install_new_view t target votes
  end

and install_new_view t target votes =
  let merged : (Types.seqno, Msg.prepared_entry) Hashtbl.t =
    Hashtbl.create 97
  in
  let max_stable = ref t.stable_seq in
  let max_seq = ref t.last_executed in
  Hashtbl.iter
    (fun _from (last_stable, prepared) ->
      if last_stable > !max_stable then max_stable := last_stable;
      List.iter
        (fun (e : Msg.prepared_entry) ->
          if e.Msg.entry_seq > !max_seq then max_seq := e.Msg.entry_seq;
          match Hashtbl.find_opt merged e.Msg.entry_seq with
          | Some prev when prev.Msg.entry_view >= e.Msg.entry_view -> ()
          | Some _ | None -> Hashtbl.replace merged e.Msg.entry_seq e)
        prepared)
    votes;
  (* Re-propose everything above the stable checkpoint — including
     slots this leader already executed; replicas that executed them
     skip the replay, replicas that missed the commits re-run them
     with identical content. *)
  let start = !max_stable in
  let proposals =
    List.init
      (max 0 (!max_seq - start))
      (fun i ->
        let seq = start + 1 + i in
        match Hashtbl.find_opt merged seq with
        | Some e -> { Msg.seq; updates = e.Msg.entry_updates }
        | None -> { Msg.seq; updates = [] })
  in
  t.view <- target;
  t.mode <- Normal;
  t.view_changes <- t.view_changes + 1;
  t.next_seq <- !max_seq + 1;
  t.assigned <- Hashtbl.create 97;
  ignore (Batch.take_all t.req_acc : Update.t list);
  broadcast t (Msg.Newview { view = target; proposals; stable_seq = !max_stable });
  List.iter (fun p -> accept_preprepare t ~view:target ~proposal:p) proposals;
  let pending_now = Hashtbl.fold (fun _ (u, _) acc -> u :: acc) t.pending [] in
  List.iter (fun u -> propose t u) pending_now

let adopt_new_view t ~view ~proposals =
  if view > t.view then begin
    t.view <- view;
    t.mode <- Normal;
    t.view_changes <- t.view_changes + 1;
    t.assigned <- Hashtbl.create 97;
    ignore (Batch.take_all t.req_acc : Update.t list);
    List.iter (fun p -> accept_preprepare t ~view ~proposal:p) proposals;
    (* Give the new leader a full timeout for everything pending. *)
    let now = t.env.Env.now_us () in
    let entries = Hashtbl.fold (fun k (u, _) acc -> (k, u) :: acc) t.pending [] in
    List.iter (fun (k, u) -> Hashtbl.replace t.pending k (u, now)) entries;
    let leader = leader_of t t.view in
    if leader <> t.env.Env.self then
      List.iter
        (fun (_, u) ->
          send_to t leader (Msg.Request { update = u; broadcast = false }))
        entries
  end

(* ------------------------------------------------------------------ *)
(* Watchdog: request timeouts and view-change escalation.              *)

let oldest_pending_age t =
  let now = t.env.Env.now_us () in
  Hashtbl.fold (fun _ (_, since) acc -> max acc (now - since)) t.pending 0

let watchdog t =
  if (not t.halted) && not t.faults.Faults.crashed then
    match t.mode with
    | View_changing { target; since_us } ->
      if t.env.Env.now_us () - since_us > t.config.viewchange_timeout_us then
        start_view_change t (target + 1)
    | Normal ->
      if
        Hashtbl.length t.pending > 0
        && oldest_pending_age t > t.config.request_timeout_us
      then begin
        (* Retransmit starved requests to everyone so every correct
           replica observes the starvation and joins the view change
           (the role the client's broadcast retransmission plays in
           PBFT). *)
        Hashtbl.iter
          (fun _ (u, _) ->
            broadcast t (Msg.Request { update = u; broadcast = true }))
          t.pending;
        start_view_change t (t.view + 1)
      end

let start t =
  if not t.running then begin
    t.running <- true;
    let rec arm () =
      ignore
        (t.env.Env.set_timer t.config.watchdog_interval_us (fun () ->
             if not t.halted then begin
               watchdog t;
               arm ()
             end)
          : Sim.Engine.timer)
    in
    arm ()
  end

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)

let submit t update =
  if (not t.halted) && not t.faults.Faults.crashed then begin
    let key = Update.key update in
    if not (Delivery.seen t.delivery key) then begin
      if not (Hashtbl.mem t.pending key) then
        Hashtbl.replace t.pending key (update, t.env.Env.now_us ());
      if is_leader t then propose t update
      else
        send_to t (leader_of t t.view) (Msg.Request { update; broadcast = false })
    end
  end

let handle t ~from msg =
  if (not t.halted) && not t.faults.Faults.crashed then
    match msg with
    | Msg.Request { update; broadcast = _ } -> submit t update
    | Msg.Preprepare { view; proposal } ->
      (* No ordering participation while view-changing: the prepared
         set reported in our view-change vote must stay frozen. *)
      if t.mode = Normal && view = t.view && from = leader_of t view then
        accept_preprepare t ~view ~proposal
    | Msg.Prepare { view; seq; digest } ->
      if t.mode = Normal && seq > t.last_executed then begin
        let s = slot t seq in
        match s.digest with
        | Some d when view = s.slot_view ->
          if Cryptosim.Digest.equal d digest then begin
            Hashtbl.replace s.prepares from ();
            maybe_prepared t seq
          end
        | Some _ | None ->
          Hashtbl.replace s.buffered_prepares from (view, digest)
      end
    | Msg.Commit { view; seq; digest } ->
      if t.mode = Normal && seq > t.last_executed then begin
        let s = slot t seq in
        match s.digest with
        | Some d when view = s.slot_view && Cryptosim.Digest.equal d digest ->
          Hashtbl.replace s.commits from ();
          maybe_committed t seq
        | Some _ | None -> Hashtbl.replace s.buffered_commits from (view, digest)
      end
    | Msg.Checkpoint { seq; chain } -> record_checkpoint_vote t ~from ~seq ~chain
    | Msg.Viewchange { new_view; last_stable; prepared } ->
      record_vc_vote t ~from ~target:new_view ~last_stable ~prepared
    | Msg.Newview { view; proposals; stable_seq = _ } ->
      if from = leader_of t view then adopt_new_view t ~view ~proposals
