type proposal = { seq : Bft.Types.seqno; updates : Bft.Update.t list }

let proposal_digest p =
  match p.updates with
  | [] -> Cryptosim.Digest.of_string ("noop:" ^ string_of_int p.seq)
  | updates ->
    List.fold_left
      (fun acc u -> Cryptosim.Digest.combine acc (Bft.Update.digest u))
      (Cryptosim.Digest.of_string ("prop:" ^ string_of_int p.seq))
      updates

type prepared_entry = {
  entry_seq : Bft.Types.seqno;
  entry_view : Bft.Types.view;
  entry_updates : Bft.Update.t list;
}

type t =
  | Request of { update : Bft.Update.t; broadcast : bool }
  | Preprepare of { view : Bft.Types.view; proposal : proposal }
  | Prepare of {
      view : Bft.Types.view;
      seq : Bft.Types.seqno;
      digest : Cryptosim.Digest.t;
    }
  | Commit of {
      view : Bft.Types.view;
      seq : Bft.Types.seqno;
      digest : Cryptosim.Digest.t;
    }
  | Checkpoint of { seq : Bft.Types.seqno; chain : Cryptosim.Digest.t }
  | Viewchange of {
      new_view : Bft.Types.view;
      last_stable : Bft.Types.seqno;
      prepared : prepared_entry list;
    }
  | Newview of {
      view : Bft.Types.view;
      proposals : proposal list;
      stable_seq : Bft.Types.seqno;
    }

let pp ppf = function
  | Request { update; broadcast } ->
    Format.fprintf ppf "Request(%a%s)" Bft.Update.pp update
      (if broadcast then ",bcast" else "")
  | Preprepare { view; proposal } ->
    Format.fprintf ppf "Preprepare(v%d,s%d,%d upd)" view proposal.seq
      (List.length proposal.updates)
  | Prepare { view; seq; _ } -> Format.fprintf ppf "Prepare(v%d,s%d)" view seq
  | Commit { view; seq; _ } -> Format.fprintf ppf "Commit(v%d,s%d)" view seq
  | Checkpoint { seq; _ } -> Format.fprintf ppf "Checkpoint(s%d)" seq
  | Viewchange { new_view; _ } -> Format.fprintf ppf "Viewchange(v%d)" new_view
  | Newview { view; proposals; _ } ->
    Format.fprintf ppf "Newview(v%d,%d props)" view (List.length proposals)
