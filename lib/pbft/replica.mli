(** PBFT replica state machine (the baseline protocol).

    One instance implements one replica. The deployment layer delivers
    network messages via {!handle} and client updates via {!submit}; the
    instance emits messages through its {!Bft.Env.t} and applies ordered
    updates through the [execute] callback.

    Simplifications relative to Castro-Liskov PBFT, none of which affect
    the measured behaviour:
    - messages are assumed authenticated by the transport (the overlay
      authenticates links; the simulation's Byzantine repertoire does
      not include forging, as real signatures prevent it);
    - view-change messages carry prepared entries without their
      certificates (certificate verification always succeeds for
      entries sent by correct replicas, and modelled attackers do not
      fabricate entries).

    The essential performance property is retained faithfully: a leader
    is only replaced when a request remains unexecuted for the full
    [request_timeout_us], so a malicious leader that serves each request
    just under the timeout retains the role indefinitely. *)

type config = {
  quorum : Bft.Quorum.t;
  epoch : int;
      (** membership epoch this instance belongs to (0 = genesis);
          tagged and filtered by the deployment layer *)
  request_timeout_us : int;
      (** how long a request may stay unexecuted before the replica
          votes to change views *)
  viewchange_timeout_us : int;
      (** how long to wait for a new view to install before escalating
          to the next one *)
  checkpoint_interval : int;  (** executions between checkpoints *)
  watchdog_interval_us : int;  (** how often timeouts are polled *)
  batch : Bft.Batch.policy;
      (** leader-side aggregation: assigned requests accumulate until
          [max_batch] or [max_delay_us] and are pre-prepared as one
          multi-update proposal; [Batch.singleton] (default) bypasses
          the accumulator and proposes one update per slot *)
}

(** [default_config quorum] uses the paper-era constants: 2 s request
    timeout, 4 s view-change timeout, checkpoint every 128 executions,
    watchdog every 250 ms. *)
val default_config : Bft.Quorum.t -> config

type t

(** [create config env ~execute] wires a replica; [execute seq update]
    is invoked exactly once per executed non-noop slot in seq order. *)
val create :
  config ->
  Msg.t Bft.Env.t ->
  execute:(Bft.Types.seqno -> Bft.Update.t -> unit) ->
  t

(** [start t] arms the watchdog timer. Call once after creation. *)
val start : t -> unit

(** [submit t update] injects a client request at this replica. *)
val submit : t -> Bft.Update.t -> unit

(** [handle t ~from msg] processes a protocol message from peer [from]. *)
val handle : t -> from:Bft.Types.replica -> Msg.t -> unit

(** [faults t] is the fault-injection handle for this replica. *)
val faults : t -> Bft.Faults.t

val view : t -> Bft.Types.view
val is_leader : t -> bool
val last_executed : t -> Bft.Types.seqno
val exec_log : t -> Bft.Exec_log.t

(** [view_changes t] counts view changes this replica has joined. *)
val view_changes : t -> int

(** [pending_count t] is the number of known-but-unexecuted requests. *)
val pending_count : t -> int

(** {1 Epoch cutover} *)

val epoch : t -> int

(** [halt t] stops the instance one-way at an epoch boundary (no
    further sends, receives, executions or timer re-arms); see
    {!Prime.Replica.halt}. *)
val halt : t -> unit

val halted : t -> bool
