type site_kind = Control_center | Data_center

type configuration = {
  f : int;
  k : int;
  n : int;
  sites : (site_kind * int) list;
}

let required_replicas ~f ~k =
  if f < 0 || k < 0 then invalid_arg "Config_calc: negative f or k";
  (3 * f) + (2 * k) + 1

let quorum ~f ~k =
  if f < 0 || k < 0 then invalid_arg "Config_calc: negative f or k";
  (2 * f) + k + 1

let total_replicas c = List.fold_left (fun acc (_, size) -> acc + size) 0 c.sites

let valid c =
  c.f >= 0 && c.k >= 0
  && c.n = total_replicas c
  && c.n >= required_replicas ~f:c.f ~k:c.k
  && List.for_all (fun (_, size) -> size >= 1) c.sites

let tolerates_site_loss c =
  let q = quorum ~f:c.f ~k:c.k in
  List.for_all (fun (_, size) -> c.n - size >= q) c.sites

let control_centers c =
  List.length (List.filter (fun (kind, _) -> kind = Control_center) c.sites)

let distribute ~n ~sites =
  if sites < 1 then invalid_arg "Config_calc.distribute: sites < 1";
  let base = n / sites and extra = n mod sites in
  List.init sites (fun i -> if i < extra then base + 1 else base)

let minimal_n ~f ~k ~sites =
  if sites < 2 then invalid_arg "Config_calc.minimal_n: need >= 2 sites";
  let q = quorum ~f ~k in
  let fits n =
    let max_site = (n + sites - 1) / sites in
    n >= sites (* every site hosts at least one replica *)
    && n - max_site >= q
  in
  let n = ref (required_replicas ~f ~k) in
  while not (fits !n) do
    incr n
  done;
  !n

let minimal_config ~f ~k ~sites ~control_centers =
  if control_centers < 1 || control_centers > sites then
    invalid_arg "Config_calc.minimal_config: bad control_centers";
  let n = minimal_n ~f ~k ~sites in
  let counts = distribute ~n ~sites in
  let site_list =
    List.mapi
      (fun i size ->
        ((if i < control_centers then Control_center else Data_center), size))
      counts
  in
  { f; k; n; sites = site_list }

let standard_table () =
  List.concat_map
    (fun f ->
      List.concat_map
        (fun k ->
          List.map
            (fun sites -> minimal_config ~f ~k ~sites ~control_centers:2)
            [ 2; 3; 4 ])
        [ 0; 1; 2 ])
    [ 1; 2; 3 ]

(* --- Epoch transitions -------------------------------------------------

   When the membership reconfigures online, the old epoch stops at a
   boundary and the new epoch starts from the same execution index.
   The safety requirement in the window is intersection: any quorum of
   either epoch must intersect the set of correct replicas that carry
   the agreed prefix across the boundary.  With n = 3f + 2k + 1 and
   quorum 2f + k + 1, any two quorums of one epoch intersect in at
   least f + 1 replicas — at least one of which is correct and not
   recovering. *)

type epoch_params = { e_f : int; e_k : int }

(* Minimum overlap of two quorums at minimal n:
   2*(2f+k+1) - (3f+2k+1) = f + 1. *)
let intersection ~f ~k =
  if f < 0 || k < 0 then invalid_arg "Config_calc: negative f or k";
  ignore k;
  f + 1

(* A vouching set that must be honoured by BOTH epochs during the
   cutover window: the larger of the two quorums.  Any certificate
   signed by [transition_quorum] old-epoch members is therefore also
   large enough to intersect every new-epoch quorum. *)
let transition_quorum ~old_epoch ~new_epoch =
  max
    (quorum ~f:old_epoch.e_f ~k:old_epoch.e_k)
    (quorum ~f:new_epoch.e_f ~k:new_epoch.e_k)

(* The transition is safe when the new epoch's quorum still meets the
   old epoch's intersection floor: growing f or k must never let a
   new-epoch quorum dodge the f_old + 1 overlap that pins the agreed
   prefix. *)
let transition_safe ~old_epoch ~new_epoch =
  old_epoch.e_f >= 0 && old_epoch.e_k >= 0 && new_epoch.e_f >= 0
  && new_epoch.e_k >= 0
  && quorum ~f:new_epoch.e_f ~k:new_epoch.e_k
     >= intersection ~f:old_epoch.e_f ~k:old_epoch.e_k

let pp ppf c =
  let site_str =
    String.concat "+"
      (List.map
         (fun (kind, size) ->
           Printf.sprintf "%d%s" size
             (match kind with Control_center -> "cc" | Data_center -> "dc"))
         c.sites)
  in
  Format.fprintf ppf "f=%d k=%d n=%d [%s]" c.f c.k c.n site_str
