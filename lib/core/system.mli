(** The full Spire system wired over the intrusion-tolerant overlay.

    A [System.t] instantiates, on one simulation engine:
    - an overlay network whose sites contain the SCADA-master replicas
      (control centers + data centers), one overlay node per replica,
      plus one node per substation proxy and per HMI, each multi-homed
      to both control centers;
    - [n = 3f + 2k + 1] replicas running Prime (or the PBFT baseline
      for comparisons), each with its own deterministic SCADA master
      application;
    - substation proxies polling emulated RTUs over byte-level DNP3 and
      submitting status updates as ordered client updates;
    - HMIs issuing supervisory commands;
    - threshold-signed replica replies validated by the clients, which
      is where end-to-end latency is measured;
    - optional proactive recovery (diversity redraw + state transfer)
      and attack injection hooks.

    This is the object every experiment in the benchmark harness
    drives. *)

type protocol = Prime_protocol | Pbft_protocol

(** The overlay payload is the wire-layer message union: every frame
    the system sends has an exact byte-level encoding
    ({!Wire.Envelope.encode}), and the overlay charges that length. *)
type payload = Wire.Message.t

type config = {
  quorum : Bft.Quorum.t;
  protocol : protocol;
  site_sizes : int list;  (** replicas per site; control centers first *)
  standby_site_sizes : int list;
      (** pre-provisioned dark sites (laid out after the active ones):
          their replicas exist as inert placeholders with dead overlay
          nodes and join the deployment only when an ordered
          reconfiguration admits them into an epoch's membership.
          Default [[]] — an empty list reproduces the fixed-membership
          system bit-for-bit. *)
  control_centers : int;
  substations : int;
  hmis : int;
  poll_interval_us : int;
  dissemination : Overlay.Net.mode;  (** how protocol traffic is routed *)
  lan_latency_us : int;
  wan_latency_us : int -> int -> int;  (** per site pair, one way *)
  client_link_latency_us : int;  (** substation/HMI to control center *)
  lan_bandwidth_bps : int;
  wan_bandwidth_bps : int;
  resubmit_timeout_us : int;
  max_batch : int;
      (** end-to-end batching degree: client endpoints, the ordering
          protocol's pre-order/proposal path, and replica replies all
          aggregate up to this many updates per frame. [1] (default)
          reproduces the unbatched system bit-for-bit — no accumulator
          is consulted and no batch timer is ever armed. *)
  batch_delay_us : int;
      (** deadline bound: a partial batch flushes at most this long
          after its oldest member arrived (ignored when [max_batch]
          is 1) *)
  field_concentrators : int;
      (** number of data concentrators fronting the modeled device
          fleet ({!Field.Concentrator}); each is an ordinary BFT
          client. [0] (default) disables the fleet entirely: no
          clients, no timers, no RNG draws, no frames — bit-identical
          to a build without [lib/field]. *)
  field_devices : int;
      (** total register-mapped devices, split (evenly, remainder to
          the low-numbered concentrators) across [field_concentrators] *)
  field_scan_interval_us : int;  (** fleet scan-round cadence *)
  field_write_interval_us : int;
      (** per-concentrator supervisory-write workload cadence; [0]
          disables writes *)
  field_loss : float;  (** per-round keep-alive loss probability *)
  diversity_variants : int;
  seed : int64;
  wire_debug : bool;
      (** re-decode every delivered frame through the wire codecs and
          count mismatches (see {!wire_decode_errors}); off by default *)
  telemetry : bool;
      (** trace every update's lifecycle (and per-hop overlay activity
          of the frames carrying it) into a {!Telemetry.Sink}; off by
          default — the disabled hot path costs one bool/int compare
          per potential span *)
  telemetry_capacity : int;  (** finished-span ring bound (see {!Telemetry.Sink.create}) *)
  intra_domains : int;
      (** [> 1] makes {!run} execute this instance's site shards
          concurrently on that many OCaml domains via
          {!Sim.Conservative} — the trajectory stays bit-identical to
          sequential execution. Falls back to the sequential engine
          when [telemetry] or [wire_debug] is on (their sinks are
          engine-global). Default [1]. *)
  adaptive : bool;
      (** enable the two-level adaptive-resilience controller
          ({!Control.Local} per replica + one {!Control.Global}), ticking
          every [adapt_tick_us] and actuating through the knob plane.
          Off by default: a disabled controller allocates nothing
          observable, arms no timer and draws no randomness, so the
          trajectory is bit-identical to a build without [lib/control].
          The controller senses through the telemetry sink — enable
          [telemetry] for it to see anything. Forces sequential {!run}
          (the sink is engine-global). *)
  adapt_tick_us : int;
      (** controller sampling cadence; default 250 ms *)
  tweak_prime : Prime.Replica.config -> Prime.Replica.config;
  tweak_pbft : Pbft.Replica.config -> Pbft.Replica.config;
}

(** [default_config ()] is the paper's wide-area deployment shape:
    f=1, k=1, n=6 over 4 sites (2 control centers with 2 replicas, 2
    data centers with 1), east-coast WAN latencies, 10 substations
    polling every 100 ms, 1 HMI, Prime protocol, shortest-path
    dissemination. *)
val default_config : unit -> config

type t

val create : config -> t

(** [start t] arms every component (replicas, proxies, HMIs). *)
val start : t -> unit

(** [run t ~duration_us] advances virtual time. With
    [config.intra_domains > 1] (and telemetry / wire-debug off) the
    advance runs the site shards concurrently under the conservative
    window scheduler; results are bit-identical either way. *)
val run : t -> duration_us:int -> unit

(** [intra_stats t] — scheduler statistics of the latest
    conservative-parallel {!run} phase, [None] if every run so far was
    sequential. *)
val intra_stats : t -> Sim.Conservative.stats option

val engine : t -> Sim.Engine.t
val config : t -> config
val net : t -> payload Overlay.Net.t

(** [world t] is the instance's ownership root ({!Sim.World}): engine,
    trace ring and site partition bundled in one explicit value. Every
    system owns a fresh world — no state is shared between instances,
    so independent systems may run concurrently on different domains
    ({!Sim.Parallel}). *)
val world : t -> Sim.World.t

(** [shard_partition t] is the site-ownership partition the instance
    runs under: one shard per replica site (active and standby, in
    config order) plus one trailing shard pooling all field devices
    (proxies, HMIs). Purely structural — event order is identical for
    any partition. *)
val shard_partition : t -> Sim.Shard.partition

(** [telemetry t] is the system's span sink: live when the config set
    [telemetry = true], a per-instance disabled sink otherwise. Feed it
    to {!Telemetry.Attribution} / {!Telemetry.Export} after a run. *)
val telemetry : t -> Telemetry.Sink.t

(** {1 Runtime tuning plane}

    Every live parameter change — controller-issued or manual — flows
    through {!Control.Knobs.request} on [knobs t]; the installed
    actuator translates validated requests onto the running components:
    routing mode ({!Overlay.Net}, with route-cache invalidation;
    in-flight frames keep their submit-time route), aggregation policy
    (Prime pre-order accumulators, reply accumulators, client
    endpoints — due generations drain immediately, stale timers
    re-check their deadline), proactive-recovery rotation period
    (re-staggered live), Prime TAT suspicion knobs, and leader
    demotion (one suspicion per correct replica; rotation still needs
    the [f+k+1] protocol quorum). The journal plus per-knob counters
    are the complete audit trail. *)

(** [knobs t] is the instance's tuning plane (always present; with no
    requests issued it never acts). *)
val knobs : t -> Control.Knobs.t

(** [dissemination t] is the live mode future sends will use. *)
val dissemination : t -> Overlay.Net.mode

(** {1 Component access} *)

(** [replica_count t] — the genesis (epoch-0) active replica count [n].
    Unchanged by reconfiguration; use {!current_members} for the live
    membership and {!universe_count} for active + standby. *)
val replica_count : t -> int

(** [universe_count t] — all provisioned replicas, active and standby.
    Global replica ids range over [0 .. universe_count - 1]. *)
val universe_count : t -> int

val proxy : t -> int -> Scada.Proxy.t
val hmi : t -> int -> Scada.Hmi.t
val concentrator : t -> int -> Field.Concentrator.t
val concentrator_count : t -> int

(** [fleet_stats t] rolls the per-concentrator {!Field.Concentrator.stats}
    up across the whole fleet (sums, except [rounds] which is the max —
    concentrators scan at one cadence). All-zero when the fleet is
    disabled. *)
val fleet_stats : t -> Field.Concentrator.stats
val master : t -> Bft.Types.replica -> Scada.Master.t
val faults : t -> Bft.Types.replica -> Bft.Faults.t

(** [view_of t r] / [current_leader t]: protocol view introspection.
    [current_leader] is the leader of the highest view held by a
    majority of live replicas. *)
val view_of : t -> Bft.Types.replica -> Bft.Types.view

val current_leader : t -> Bft.Types.replica

val exec_log : t -> Bft.Types.replica -> Bft.Exec_log.t

(** [last_applied_of t r] — highest ordered slot replica [r] has applied
    (equals executed count for PBFT; for Prime, ordered slots can run
    ahead of executed updates while bodies are still being fetched). *)
val last_applied_of : t -> Bft.Types.replica -> int

(** [applied_matrix_digest_of t r seq] — digest of the summary matrix
    replica [r] applied at ordered slot [seq], if still retained
    (Prime only; [None] for PBFT or garbage-collected slots). *)
val applied_matrix_digest_of :
  t -> Bft.Types.replica -> Bft.Types.seqno -> Cryptosim.Digest.t option
val node_of_replica : t -> Bft.Types.replica -> Overlay.Topology.node
val node_of_client : t -> Bft.Types.client -> Overlay.Topology.node
val site_of_replica : t -> Bft.Types.replica -> Overlay.Topology.site

(** {1 Metrics} *)

(** [latency_histogram t] — all confirmed client updates, milliseconds. *)
val latency_histogram : t -> Stats.Histogram.t

(** [latency_series t] — (confirmation time, latency ms) samples. *)
val latency_series : t -> Stats.Timeseries.t

val confirmed_updates : t -> int
val submitted_updates : t -> int

(** [wire_traffic t] — per message-kind traffic totals as
    [(kind, frames, bytes)], descending by bytes. Kinds are
    {!Wire.Message.kind} labels (e.g. ["prime/preprepare"]); bytes are
    full frame lengths including envelope overhead. *)
val wire_traffic : t -> (string * int * int) list

(** [wire_decode_errors t] — frames whose decode-on-delivery round-trip
    failed. Always 0 unless [wire_debug] is set; any non-zero value is
    a codec bug. *)
val wire_decode_errors : t -> int

(** [assert_agreement t] checks that all correct replicas' execution
    logs are prefix-compatible and masters at equal lengths have equal
    digests. @raise Failure on divergence (a safety violation). *)
val assert_agreement : t -> unit

(** {1 Proactive recovery} *)

(** [enable_recovery t ~rotation_period_us ~recovery_duration_us]
    starts staggered rejuvenation with [max_concurrent = k]. Prime
    only. Returns the scheduler for introspection.
    @raise Invalid_argument on the PBFT baseline or k = 0. *)
val enable_recovery :
  t -> rotation_period_us:int -> recovery_duration_us:int -> Recovery.Scheduler.t

val diversity : t -> Recovery.Diversity.t

(** [enable_reactive_recovery t ~silence_threshold_us ~poll_interval_us]
    adds accusation-based reactive recovery on top of the proactive
    rotation: a replica that [f+k+1] live peers have not heard from for
    [silence_threshold_us] is rejuvenated immediately (within the same
    [k]-concurrency budget). Requires {!enable_recovery} first.
    @raise Invalid_argument otherwise. *)
val enable_reactive_recovery :
  t -> silence_threshold_us:int -> poll_interval_us:int -> unit

(** [on_recovery_event t f] registers [f `Begin r | `Complete r]. *)
val on_recovery_event :
  t -> ([ `Begin | `Complete ] -> Bft.Types.replica -> unit) -> unit

(** {1 Attack and failure injection} *)

(** [set_leader_delay t ~delay_us] makes the current leader delay every
    proposal — the performance attack of experiment E4. *)
val set_leader_delay : t -> delay_us:int -> unit

(** [kill_site t site] takes a whole site down hard: overlay nodes down
    AND replicas crashed. [restore_site] reverses it, resynchronising
    the replicas by state transfer. *)
val kill_site : t -> Overlay.Topology.site -> unit

val restore_site : t -> Overlay.Topology.site -> unit

(** [isolate_site t site] models the paper's network attack precisely:
    the site's overlay daemons are unreachable but its replicas keep
    running. [reconnect_site] restores connectivity; the replicas adopt
    the quorum's installed view from peer traffic and catch up through
    batched slot retrieval. *)
val isolate_site : t -> Overlay.Topology.site -> unit

val reconnect_site : t -> Overlay.Topology.site -> unit

(** [crash_replica t r] / [restore_replica t r]: single-replica
    granularity. *)
val crash_replica : t -> Bft.Types.replica -> unit

val restore_replica : t -> Bft.Types.replica -> unit

(** {1 Online reconfiguration}

    Membership changes travel through the ordered stream as
    {!Scada.Op.Reconfig} commands. Executing one makes every replica of
    the issuing epoch halt at a deterministic boundary (the execution
    count after its eligibility batch drains), derive the successor
    certificate with that boundary stamped in, and restart as a fresh
    protocol instance over the new membership — carrying application
    state and exactly-once delivery cursors across. Replicas the new
    epoch drops are retired (halted, overlay id retired); newly admitted
    or lagging members are caught up by a background reconciler through
    an [f+1]-vouched, chunk-gated state transfer guarded by the
    bounded-backoff ARQ. Prime only. *)

(** [directory t] — the deployment's shared certificate chain. *)
val directory : t -> Member.Directory.t

(** [current_epoch t] — highest epoch any replica has activated. *)
val current_epoch : t -> int

(** [epoch_of_replica t r] — the epoch replica [r]'s running instance
    belongs to, or [-1] for standby / retired replicas. *)
val epoch_of_replica : t -> Bft.Types.replica -> int

(** [replica_halted t r] — true when [r]'s instance has halted (epoch
    boundary reached, or retired). *)
val replica_halted : t -> Bft.Types.replica -> bool

(** [current_members t] — global replica ids of the current epoch's
    membership, in protocol-rank order. *)
val current_members : t -> int list

(** [stale_epoch_frames t] — protocol frames dropped because their
    epoch tag (or sender) did not match the receiving instance. *)
val stale_epoch_frames : t -> int

(** [cutovers t] — completed epoch activations as
    [(epoch, boundary_exec, time_us)], oldest first. *)
val cutovers : t -> (int * int * int) list

(** [epoch_violation t] — latched description of the first epoch-safety
    violation observed (boundary disagreement, unknown epoch), if any.
    [None] in every correct run. *)
val epoch_violation : t -> string option

(** [on_epoch_change t f] — [f epoch] fires at each cutover. *)
val on_epoch_change : t -> (int -> unit) -> unit

(** [submit_reconfig t actions] issues the reconfiguration through HMI
    0's endpoint as an ordered client update.
    @raise Invalid_argument on the PBFT baseline or without an HMI. *)
val submit_reconfig : t -> Member.Reconfig.action list -> unit

(** [heal_site_nodes t site] boots a site's overlay daemons and clears
    its crash flags WITHOUT state transfer — the reconciler then walks
    its (retired or stale) replicas through a certified rejoin if the
    current membership includes them. *)
val heal_site_nodes : t -> Overlay.Topology.site -> unit

(** [epoch_activity t] — instantaneous per-epoch live-replica counts
    [(epoch, live)], ascending by epoch. Fed to the epoch-safety
    oracle: at most one epoch may ever hold a quorum of live
    replicas. *)
val epoch_activity : t -> (int * int) list
