type latency_result = {
  hist : Stats.Histogram.t;
  series : Stats.Timeseries.t;
  submitted : int;
  confirmed : int;
  max_view : int;
  duration_us : int;
}

let max_view sys =
  let n = System.replica_count sys in
  let best = ref 0 in
  for r = 0 to n - 1 do
    if not (System.faults sys r).Bft.Faults.crashed then
      best := max !best (System.view_of sys r)
  done;
  !best

let result_of sys ~duration_us =
  {
    hist = System.latency_histogram sys;
    series = System.latency_series sys;
    submitted = System.submitted_updates sys;
    confirmed = System.confirmed_updates sys;
    max_view = max_view sys;
    duration_us;
  }

let finish sys ~duration_us =
  System.assert_agreement sys;
  (sys, result_of sys ~duration_us)

let fault_free ?config ~duration_us () =
  let cfg =
    match config with Some c -> c | None -> System.default_config ()
  in
  let sys = System.create cfg in
  System.start sys;
  System.run sys ~duration_us;
  finish sys ~duration_us

let leader_attack ?(tweak = fun c -> c) ~protocol ~delay_us ~attack_from_us
    ~duration_us () =
  let cfg = tweak { (System.default_config ()) with System.protocol } in
  let sys = System.create cfg in
  System.start sys;
  ignore
    (Sim.Engine.schedule_at (System.engine sys) ~time_us:attack_from_us
       (fun () -> System.set_leader_delay sys ~delay_us)
      : Sim.Engine.timer);
  System.run sys ~duration_us;
  (* Agreement must hold among correct replicas; the attacked leader is
     Byzantine and excluded by [assert_agreement]. *)
  finish sys ~duration_us

let proactive_recovery ~rotation_period_us ~recovery_duration_us ~duration_us
    () =
  let sys = System.create (System.default_config ()) in
  let events = ref [] in
  System.on_recovery_event sys (fun phase r ->
      events := (Sim.Engine.now (System.engine sys), phase, r) :: !events);
  System.start sys;
  ignore
    (System.enable_recovery sys ~rotation_period_us ~recovery_duration_us
      : Recovery.Scheduler.t);
  System.run sys ~duration_us;
  System.assert_agreement sys;
  (sys, result_of sys ~duration_us, List.rev !events)

(* The attacker congests the PRIMARY inter-site links (those joining
   the first daemon of each site) — an undetected delay attack: links
   stay up, so shortest-path routing keeps trusting their advertised
   latency. The redundant second-node links and the client access
   links stay clean, which is exactly what redundant/flooding
   dissemination can exploit and single-path routing cannot. *)
let congest_primary_wan sys factor =
  let net = System.net sys in
  let topo = Overlay.Net.topology net in
  let n = System.replica_count sys in
  let first_of_site = Hashtbl.create 7 in
  for r = 0 to n - 1 do
    let s = Overlay.Topology.site_of topo r in
    if not (Hashtbl.mem first_of_site s) then Hashtbl.replace first_of_site s r
  done;
  let is_gateway node =
    node < n
    && Hashtbl.find_opt first_of_site (Overlay.Topology.site_of topo node)
       = Some node
  in
  List.iter
    (fun link ->
      let a = link.Overlay.Topology.endpoint_a
      and b = link.Overlay.Topology.endpoint_b in
      if
        is_gateway a && is_gateway b
        && Overlay.Topology.site_of topo a <> Overlay.Topology.site_of topo b
      then Overlay.Net.set_latency_factor net a b factor)
    (Overlay.Topology.links topo)

let link_degradation ?(tweak = fun c -> c) ~mode ~factor ~attack_from_us
    ~duration_us () =
  let cfg = tweak { (System.default_config ()) with System.dissemination = mode } in
  let sys = System.create cfg in
  System.start sys;
  ignore
    (Sim.Engine.schedule_at (System.engine sys) ~time_us:attack_from_us
       (fun () -> congest_primary_wan sys factor)
      : Sim.Engine.timer);
  System.run sys ~duration_us;
  finish sys ~duration_us

let packet_loss ~mode ~loss ~duration_us () =
  let cfg = { (System.default_config ()) with System.dissemination = mode } in
  let sys = System.create cfg in
  let net = System.net sys in
  let topo = Overlay.Net.topology net in
  let n = System.replica_count sys in
  List.iter
    (fun link ->
      let a = link.Overlay.Topology.endpoint_a
      and b = link.Overlay.Topology.endpoint_b in
      if
        a < n && b < n
        && Overlay.Topology.site_of topo a <> Overlay.Topology.site_of topo b
      then Overlay.Net.set_loss_probability net a b loss)
    (Overlay.Topology.links topo);
  System.start sys;
  System.run sys ~duration_us;
  finish sys ~duration_us

let site_failure ~site ~fail_at_us ~restore_at_us ~duration_us () =
  let sys = System.create (System.default_config ()) in
  System.start sys;
  ignore
    (Sim.Engine.schedule_at (System.engine sys) ~time_us:fail_at_us (fun () ->
         System.kill_site sys site)
      : Sim.Engine.timer);
  (match restore_at_us with
  | Some time_us ->
    ignore
      (Sim.Engine.schedule_at (System.engine sys) ~time_us (fun () ->
           System.restore_site sys site)
        : Sim.Engine.timer)
  | None -> ());
  System.run sys ~duration_us;
  finish sys ~duration_us

let throughput ?(tweak = fun c -> c) ?(max_batch = 1) ?(batch_delay_us = 10_000)
    ~substations ~poll_interval_us ~duration_us () =
  let cfg =
    tweak
      {
        (System.default_config ()) with
        System.substations;
        poll_interval_us;
        max_batch;
        batch_delay_us;
      }
  in
  let sys = System.create cfg in
  System.start sys;
  System.run sys ~duration_us;
  finish sys ~duration_us

type activity_sample = {
  at_us : int;
  per_epoch : (int * int * int) list; (* (epoch, live, quorum_size) *)
}

type reconfig_result = {
  base : latency_result;
  cutovers : (int * int * int) list;
  final_epoch : int;
  final_n : int;
  stale_frames : int;
  violation : string option;
  max_confirm_gap_us : int;
  activity : activity_sample list;
}

(* Longest silence between consecutive confirmations inside
   [from_us, until_us) — the downtime metric of the reconfiguration
   timeline. Window edges count as virtual confirmations so a silent
   tail is charged too. *)
let max_confirm_gap series ~from_us ~until_us =
  let times =
    List.filter_map
      (fun (time_us, _) ->
        if time_us >= from_us && time_us < until_us then Some time_us else None)
      (Stats.Timeseries.to_list series)
  in
  let rec gaps acc prev = function
    | [] -> max acc (until_us - prev)
    | time :: rest -> gaps (max acc (time - prev)) time rest
  in
  gaps 0 from_us times

(* Experiment E11: online reconfiguration through the ordered stream.
   Under continuous polling load, the active control-center site is
   destroyed; a reconfiguration promotes the backup and drops the dead
   site (epoch 1, shrinking resilience to keep n >= 3f+2k+1); the dead
   site's hardware is healed and re-admitted as a backup (epoch 2,
   restoring f=1,k=1); finally a brand-new pre-provisioned data center
   is admitted, growing the deployment to n = 3f+2k+1 = 8 for k = 2
   (epoch 3). Every membership change takes effect at a deterministic
   epoch-boundary execution count. *)
let reconfiguration ?(tweak = fun c -> c) ~duration_us () =
  let cfg =
    tweak
      { (System.default_config ()) with System.standby_site_sizes = [ 2 ] }
  in
  let sys = System.create cfg in
  let engine = System.engine sys in
  let at time_us f =
    ignore (Sim.Engine.schedule_at engine ~time_us f : Sim.Engine.timer)
  in
  let samples = ref [] in
  ignore
    (Sim.Engine.periodic engine ~interval_us:200_000 (fun () ->
         let dir = System.directory sys in
         let per_epoch =
           List.map
             (fun (e, live) ->
               let q =
                 match Member.Directory.cert_of_epoch dir e with
                 | Some c -> Member.Cert.quorum_size c
                 | None -> max_int
               in
               (e, live, q))
             (System.epoch_activity sys)
         in
         samples :=
           { at_us = Sim.Engine.now engine; per_epoch } :: !samples)
      : Sim.Engine.timer);
  System.start sys;
  (* T1: the active control center dies under load. *)
  at 10_000_000 (fun () -> System.kill_site sys 0);
  (* T2: failover — promote the backup, drop the dead site. *)
  at 14_000_000 (fun () ->
      System.submit_reconfig sys
        [
          Member.Reconfig.Set_resilience { f = 1; k = 0 };
          Member.Reconfig.Promote 1;
          Member.Reconfig.Remove_site 0;
        ]);
  (* T3: the destroyed site's hardware is rebuilt (nodes boot, no state). *)
  at 22_000_000 (fun () -> System.heal_site_nodes sys 0);
  (* T3b: re-admit the healed site as a backup control center. *)
  at 26_000_000 (fun () ->
      System.submit_reconfig sys
        [
          Member.Reconfig.Set_resilience { f = 1; k = 1 };
          Member.Reconfig.Add_site
            { site_id = 0; role = Member.Cert.Backup_cc; members = [ 0; 1 ] };
        ]);
  (* T4: grow — admit the pre-provisioned standby data center,
     raising the recovery budget to k = 2 (n = 3f+2k+1 = 8). *)
  at 38_000_000 (fun () ->
      System.submit_reconfig sys
        [
          Member.Reconfig.Set_resilience { f = 1; k = 2 };
          Member.Reconfig.Add_site
            { site_id = 4; role = Member.Cert.Data_center; members = [ 6; 7 ] };
        ]);
  System.run sys ~duration_us;
  System.assert_agreement sys;
  let base = result_of sys ~duration_us in
  let final_cert = Member.Directory.current (System.directory sys) in
  ( sys,
    {
      base;
      cutovers = System.cutovers sys;
      final_epoch = System.current_epoch sys;
      final_n = Member.Cert.n final_cert;
      stale_frames = System.stale_epoch_frames sys;
      violation = System.epoch_violation sys;
      max_confirm_gap_us =
        max_confirm_gap base.series ~from_us:10_000_000 ~until_us:duration_us;
      activity = List.rev !samples;
    } )

type campaign_result = {
  max_simultaneous_compromised : int;
  total_compromises : int;
  exploits_developed : int;
  time_above_f_us : int;
  final_compromised : int;
  mean_held_us : int;
}

let intrusion_campaign ?(reactive_on = false) ~diversity_on ~recovery_on
    ~duration_us () =
  let base = System.default_config () in
  let cfg =
    {
      base with
      System.diversity_variants = (if diversity_on then 8 else 1);
      (* Lighter polling and slower protocol cadences: the campaign runs
         for hours of virtual time and the metric is compromise counts,
         not latency. *)
      substations = 2;
      poll_interval_us = 1_000_000;
      tweak_prime =
        (fun c ->
          {
            c with
            Prime.Replica.aru_interval_us = 100_000;
            proposal_interval_us = 200_000;
            watchdog_interval_us = 500_000;
            tat_threshold_us = 2_000_000;
          });
    }
  in
  let sys = System.create cfg in
  System.start sys;
  let engine = System.engine sys in
  let f = cfg.System.quorum.Bft.Quorum.f in
  let compromised_since = Array.make (System.replica_count sys) 0 in
  let held_total = ref 0 and held_count = ref 0 in
  let campaign =
    Attack.Campaign.create ~engine ~rng:(Sim.Engine.rng engine)
      ~diversity:(System.diversity sys)
      ~config:
        {
          (* The paper's defence premise: rejuvenation outpaces exploit
             development. The attacker needs 2 h per exploit; the full
             rotation takes 1 h, so no foothold survives long enough to
             combine with the next one. *)
          Attack.Campaign.exploit_development_us = 2 * 3600 * 1_000_000;
          attempt_interval_us = 60 * 1_000_000;
          retarget = `Largest_group;
        }
      ~on_compromise:(fun r ->
        compromised_since.(r) <- Sim.Engine.now engine;
        (System.faults sys r).Bft.Faults.silent <- true)
      ~on_cleanse:(fun r ->
        held_total := !held_total + (Sim.Engine.now engine - compromised_since.(r));
        incr held_count;
        (System.faults sys r).Bft.Faults.silent <- false)
  in
  if recovery_on then begin
    System.on_recovery_event sys (fun phase r ->
        match phase with
        | `Begin -> Attack.Campaign.set_recovering campaign r true
        | `Complete ->
          Attack.Campaign.set_recovering campaign r false;
          Attack.Campaign.notify_rejuvenated campaign r);
    ignore
      (System.enable_recovery sys
         ~rotation_period_us:(60 * 60 * 1_000_000)
         ~recovery_duration_us:(2 * 60 * 1_000_000)
        : Recovery.Scheduler.t);
    if reactive_on then
      System.enable_reactive_recovery sys
        ~silence_threshold_us:(120 * 1_000_000)
        ~poll_interval_us:(30 * 1_000_000)
  end;
  Attack.Campaign.start campaign;
  (* Sample the compromised count every virtual minute to integrate the
     time spent above f. *)
  let time_above_f = ref 0 in
  let sample_interval = 60 * 1_000_000 in
  ignore
    (Sim.Engine.periodic engine ~interval_us:sample_interval (fun () ->
         if Attack.Campaign.compromised_count campaign > f then
           time_above_f := !time_above_f + sample_interval)
      : Sim.Engine.timer);
  System.run sys ~duration_us;
  Attack.Campaign.stop campaign;
  let result =
    {
      max_simultaneous_compromised = Attack.Campaign.max_simultaneous campaign;
      total_compromises = Attack.Campaign.total_compromises campaign;
      exploits_developed = Attack.Campaign.exploits_developed campaign;
      time_above_f_us = !time_above_f;
      final_compromised = Attack.Campaign.compromised_count campaign;
      mean_held_us = (if !held_count = 0 then 0 else !held_total / !held_count);
    }
  in
  (sys, result)

let fleet ?(tweak = fun c -> c) ~concentrators ~devices ~duration_us () =
  let cfg =
    tweak
      {
        (System.default_config ()) with
        System.substations = 2;
        hmis = 1;
        (* A fleet this wide needs the end-to-end batch path: aggregates
           from many concentrators pack into Client_batch frames. *)
        max_batch = 8;
        batch_delay_us = 5_000;
        field_concentrators = concentrators;
        field_devices = devices;
      }
  in
  let sys = System.create cfg in
  System.start sys;
  System.run sys ~duration_us;
  finish sys ~duration_us

type adaptive_attack =
  | Leader_slowdown of int  (* proposal delay, us (the E4 attack) *)
  | Wan_delay of float (* primary-WAN latency factor (the E6 attack) *)

type adaptive_result = {
  base : latency_result;
  post_attack_p99_ms : float;
  knob_applied : int;
  knob_rejected : int;
  journal_consistent : bool;
}

let post_attack_p99 series ~from_us =
  let h = Stats.Histogram.create () in
  List.iter
    (fun (time_us, lat_ms) ->
      if time_us >= from_us then Stats.Histogram.add h lat_ms)
    (Stats.Timeseries.to_list series);
  if Stats.Histogram.count h = 0 then Float.infinity
  else Stats.Histogram.percentile h 99.

(* Experiment E13: adaptive resilience. The same deployment faces one
   of two attacks it is never told about — the E4 leader slowdown or
   the E6 undetected WAN delay. Static configurations each do well
   against one and poorly against the other; the two-level controller
   ([adaptive = true]) must diagnose the phase signature at runtime
   and steer the knobs toward whichever static configuration is best
   for the attack actually running. Telemetry is on in every arm
   (including the static baselines) so the arms differ only in the
   controller. *)
let adaptive ?(tweak = fun c -> c) ?(controller = true)
    ?(mode = Overlay.Net.Shortest) ~attack ~attack_from_us ~duration_us () =
  let cfg =
    tweak
      {
        (System.default_config ()) with
        System.dissemination = mode;
        telemetry = true;
        adaptive = controller;
      }
  in
  let sys = System.create cfg in
  System.start sys;
  ignore
    (Sim.Engine.schedule_at (System.engine sys) ~time_us:attack_from_us
       (fun () ->
         match attack with
         | Leader_slowdown delay_us -> System.set_leader_delay sys ~delay_us
         | Wan_delay factor -> congest_primary_wan sys factor)
      : Sim.Engine.timer);
  System.run sys ~duration_us;
  System.assert_agreement sys;
  let base = result_of sys ~duration_us in
  let knobs = System.knobs sys in
  ( sys,
    {
      base;
      post_attack_p99_ms = post_attack_p99 base.series ~from_us:attack_from_us;
      knob_applied = Control.Knobs.total_applied knobs;
      knob_rejected = Control.Knobs.total_rejected knobs;
      journal_consistent = Control.Knobs.reconcile knobs;
    } )
