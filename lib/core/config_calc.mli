(** Configuration calculus: how many replicas, spread over how many
    sites, to survive intrusions + proactive recovery + the loss of an
    entire site (experiment E1).

    Requirements encoded, following the paper:
    - tolerate [f] simultaneous intrusions and [k] concurrently
      recovering replicas: [n >= 3f + 2k + 1], quorums of [2f + k + 1];
    - {e network-attack resilience}: after disconnecting any single
      site (targeted DoS on a control center, fiber cut, ...), the
      remaining replicas must still contain a quorum even with [f]
      intrusions and [k] recoveries among them — i.e. for every site
      [s]: [n - size(s) >= 2f + k + 1].

    Sites are control centers (which can talk to field devices) or
    commodity data centers (replicas only). At least 2 control centers
    are required so field communication survives the loss of one. *)

type site_kind = Control_center | Data_center

type configuration = {
  f : int;
  k : int;
  n : int;
  sites : (site_kind * int) list;  (** per-site replica counts *)
}

(** [required_replicas ~f ~k] is [3f + 2k + 1]. *)
val required_replicas : f:int -> k:int -> int

(** [quorum ~f ~k] is [2f + k + 1]. *)
val quorum : f:int -> k:int -> int

(** [total_replicas c] sums the site counts. *)
val total_replicas : configuration -> int

(** [valid c] checks the resilience bound ([n >= 3f+2k+1], counts match). *)
val valid : configuration -> bool

(** [tolerates_site_loss c] checks [n - size(s) >= 2f+k+1] for every
    site [s]. *)
val tolerates_site_loss : configuration -> bool

(** [control_centers c] counts control-center sites. *)
val control_centers : configuration -> int

(** [minimal_n ~f ~k ~sites] is the smallest [n] that satisfies the
    resilience bound, single-site-loss tolerance, and one-replica-per-
    site occupancy, when spread over [sites] sites as evenly as
    possible.
    @raise Invalid_argument if [sites < 2] (one site can never tolerate
    its own loss). *)
val minimal_n : f:int -> k:int -> sites:int -> int

(** [distribute ~n ~sites] spreads [n] replicas over [sites] sites as
    evenly as possible, larger sites first. *)
val distribute : n:int -> sites:int -> int list

(** [minimal_config ~f ~k ~sites ~control_centers] builds the minimal
    valid configuration: control centers are listed first and receive
    the larger shares. *)
val minimal_config :
  f:int -> k:int -> sites:int -> control_centers:int -> configuration

(** [standard_table ()] is the reproduction of the paper's
    configuration table: minimal configurations for
    [f in 1..3], [k in 0..2], [sites in 2..4] (2 control centers). *)
val standard_table : unit -> configuration list

(** Resilience parameters of one epoch, for transition math. *)
type epoch_params = { e_f : int; e_k : int }

(** [intersection ~f ~k] is the minimum overlap of any two quorums at
    minimal [n]: [2(2f+k+1) - (3f+2k+1) = f+1].  This is the floor a
    successor epoch's quorum must not shrink below mid-transition. *)
val intersection : f:int -> k:int -> int

(** [transition_quorum ~old_epoch ~new_epoch] is the vouching-set size
    honoured by both epochs during cutover: the larger of the two
    quorums. *)
val transition_quorum : old_epoch:epoch_params -> new_epoch:epoch_params -> int

(** [transition_safe ~old_epoch ~new_epoch] holds when the new epoch's
    quorum still meets the old epoch's intersection floor — growing
    [f] or [k] never lets a new-epoch quorum dodge the [f_old + 1]
    overlap pinning the agreed prefix. *)
val transition_safe : old_epoch:epoch_params -> new_epoch:epoch_params -> bool

val pp : Format.formatter -> configuration -> unit
