type protocol = Prime_protocol | Pbft_protocol

(* The deployment's message union lives in [Wire.Message] so the wire
   codecs can serialise complete frames without a dependency cycle. *)
type payload = Wire.Message.t

open Wire.Message

type config = {
  quorum : Bft.Quorum.t;
  protocol : protocol;
  site_sizes : int list;
  control_centers : int;
  substations : int;
  hmis : int;
  poll_interval_us : int;
  dissemination : Overlay.Net.mode;
  lan_latency_us : int;
  wan_latency_us : int -> int -> int;
  client_link_latency_us : int;
  lan_bandwidth_bps : int;
  wan_bandwidth_bps : int;
  resubmit_timeout_us : int;
  max_batch : int;
  batch_delay_us : int;
  diversity_variants : int;
  seed : int64;
  wire_debug : bool;
  telemetry : bool;
  telemetry_capacity : int;
  tweak_prime : Prime.Replica.config -> Prime.Replica.config;
  tweak_pbft : Pbft.Replica.config -> Pbft.Replica.config;
}

let east_coast_wan a b =
  match (min a b, max a b) with
  | 0, 1 -> 2_000
  | 0, 2 -> 4_000
  | 0, 3 -> 8_000
  | 1, 2 -> 5_000
  | 1, 3 -> 9_000
  | 2, 3 -> 5_000
  | _ -> 10_000

let default_config () =
  {
    quorum = Bft.Quorum.create ~n:6 ~f:1 ~k:1;
    protocol = Prime_protocol;
    site_sizes = [ 2; 2; 1; 1 ];
    control_centers = 2;
    substations = 10;
    hmis = 1;
    poll_interval_us = 100_000;
    dissemination = Overlay.Net.Shortest;
    lan_latency_us = 100;
    wan_latency_us = east_coast_wan;
    client_link_latency_us = 2_000;
    lan_bandwidth_bps = 125_000_000;
    wan_bandwidth_bps = 12_500_000;
    resubmit_timeout_us = 2_000_000;
    max_batch = 1;
    batch_delay_us = 10_000;
    diversity_variants = 8;
    seed = 0x5917EL;
    wire_debug = false;
    telemetry = false;
    telemetry_capacity = 65536;
    tweak_prime = Fun.id;
    tweak_pbft = Fun.id;
  }

type replica_instance =
  | Prime_replica of Prime.Replica.t
  | Pbft_replica of Pbft.Replica.t

type t = {
  cfg : config;
  engine : Sim.Engine.t;
  topo : Overlay.Topology.t;
  net : payload Overlay.Net.t;
  group : Cryptosim.Threshold.group;
  n : int;
  mutable replicas : replica_instance array;
  masters : Scada.Master.t array; (* elements replaced on state transfer *)
  mutable proxies : Scada.Proxy.t array;
  mutable hmis : Scada.Hmi.t array;
  replica_sites : int array;
  hist : Stats.Histogram.t;
  series : Stats.Timeseries.t;
  mutable submitted : int;
  diversity : Recovery.Diversity.t;
  mutable scheduler : Recovery.Scheduler.t option;
  mutable recovery_listeners :
    ([ `Begin | `Complete ] -> Bft.Types.replica -> unit) list;
  share_cost_us : int;
  (* Replica-side reply aggregation (only armed when max_batch > 1):
     signed replies queue per replica and ship grouped by destination,
     amortising the envelope while keeping per-reply signing cost. *)
  reply_batch : Bft.Batch.policy;
  reply_accs : (int * Scada.Reply.t) Bft.Batch.acc array;
  wire_frames : int array; (* per Wire.Message.kind_index *)
  wire_bytes : int array;
  mutable size_memo_payload : payload; (* last measured payload (physical) *)
  mutable size_memo_bytes : int;
  mutable wire_decode_errors : int;
  telemetry : Telemetry.Sink.t;
}

let config t = t.cfg
let engine t = t.engine
let net t = t.net
let telemetry t = t.telemetry
let replica_count t = t.n
let proxy t i = t.proxies.(i)
let hmi t i = t.hmis.(i)
let master t r = t.masters.(r)
let latency_histogram t = t.hist
let latency_series t = t.series
let confirmed_updates t = Stats.Histogram.count t.hist
let submitted_updates t = t.submitted
let diversity t = t.diversity
let node_of_replica _t r = r
let node_of_client t c = t.n + c
let site_of_replica t r = t.replica_sites.(r)

let faults t r =
  match t.replicas.(r) with
  | Prime_replica p -> Prime.Replica.faults p
  | Pbft_replica p -> Pbft.Replica.faults p

let view_of t r =
  match t.replicas.(r) with
  | Prime_replica p -> Prime.Replica.view p
  | Pbft_replica p -> Pbft.Replica.view p

let exec_log t r =
  match t.replicas.(r) with
  | Prime_replica p -> Prime.Replica.exec_log p
  | Pbft_replica p -> Pbft.Replica.exec_log p

let last_applied_of t r =
  match t.replicas.(r) with
  | Prime_replica p -> Prime.Replica.last_applied p
  | Pbft_replica p -> Bft.Exec_log.length (Pbft.Replica.exec_log p)

let applied_matrix_digest_of t r seq =
  match t.replicas.(r) with
  | Prime_replica p -> Prime.Replica.applied_matrix_digest p seq
  | Pbft_replica _ -> None

let current_leader t =
  (* Leader of the median view among live replicas. *)
  let views =
    List.filter_map
      (fun r ->
        if (faults t r).Bft.Faults.crashed then None else Some (view_of t r))
      (List.init t.n Fun.id)
    |> List.sort compare
  in
  let view =
    match views with
    | [] -> 0
    | vs -> List.nth vs (List.length vs / 2)
  in
  Bft.Types.leader_of ~n:t.n view

(* ------------------------------------------------------------------ *)
(* Topology: replica sites + one node per client, multi-homed to both
   control centers.                                                    *)

let build_topology cfg =
  let n = List.fold_left ( + ) 0 cfg.site_sizes in
  let sites = List.length cfg.site_sizes in
  let total = n + cfg.substations + cfg.hmis in
  let topo = Overlay.Topology.create ~nodes:total in
  (* Replica sites and LAN meshes. *)
  let site_members =
    let offset = ref 0 in
    List.mapi
      (fun site size ->
        let members = List.init size (fun i -> !offset + i) in
        offset := !offset + size;
        List.iter (fun node -> Overlay.Topology.assign_site topo node site) members;
        members)
      cfg.site_sizes
  in
  List.iter
    (fun members ->
      let arr = Array.of_list members in
      for i = 0 to Array.length arr - 1 do
        for j = i + 1 to Array.length arr - 1 do
          Overlay.Topology.add_link topo ~a:arr.(i) ~b:arr.(j)
            ~latency_us:cfg.lan_latency_us ~bandwidth_bps:cfg.lan_bandwidth_bps
        done
      done)
    site_members;
  (* Inter-site WAN links: first-first always, second-second when both
     sites have two or more members (redundancy). *)
  let site_arr = Array.of_list site_members in
  for sa = 0 to sites - 1 do
    for sb = sa + 1 to sites - 1 do
      let lat = cfg.wan_latency_us sa sb in
      (match (site_arr.(sa), site_arr.(sb)) with
      | a0 :: _, b0 :: _ ->
        Overlay.Topology.add_link topo ~a:a0 ~b:b0 ~latency_us:lat
          ~bandwidth_bps:cfg.wan_bandwidth_bps
      | _, _ -> ());
      match (site_arr.(sa), site_arr.(sb)) with
      | _ :: a1 :: _, _ :: b1 :: _ ->
        Overlay.Topology.add_link topo ~a:a1 ~b:b1 ~latency_us:lat
          ~bandwidth_bps:cfg.wan_bandwidth_bps
      | _, _ -> ()
    done
  done;
  (* Clients: one node each, own site id, linked to the first node of
     every control-center site. *)
  let cc_gateways =
    List.filteri (fun i _ -> i < cfg.control_centers) site_members
    |> List.filter_map (function gw :: _ -> Some gw | [] -> None)
  in
  for c = 0 to cfg.substations + cfg.hmis - 1 do
    let node = n + c in
    Overlay.Topology.assign_site topo node (sites + c);
    List.iter
      (fun gw ->
        Overlay.Topology.add_link topo ~a:node ~b:gw
          ~latency_us:cfg.client_link_latency_us
          ~bandwidth_bps:cfg.wan_bandwidth_bps)
      cc_gateways
  done;
  (topo, site_members)

(* ------------------------------------------------------------------ *)
(* Creation.                                                           *)

let trace_of_update (u : Bft.Update.t) =
  Telemetry.Span.trace_id ~client:u.Bft.Update.client
    ~seq:u.Bft.Update.client_seq

(* The trace context a payload carries through the overlay: the update
   identity it transports, for the message kinds that transport one.
   Only consulted when the sink is enabled, so the disabled-path cost
   in [send_payload] is a single bool load. *)
let trace_of_reply (r : Scada.Reply.t) =
  let client, seq = r.Scada.Reply.update_key in
  Telemetry.Span.trace_id ~client ~seq

(* Batched frames are attributed to their first member: a batch is one
   physical frame, and per-hop net spans need a single representative. *)
let trace_of_payload payload =
  match payload with
  | Client_update u -> trace_of_update u
  | Client_batch (u :: _) -> trace_of_update u
  | Replica_reply r -> trace_of_reply r
  | Reply_batch (r :: _) -> trace_of_reply r
  | Prime_msg (_, Prime.Msg.Po_request { update; _ }) -> trace_of_update update
  | Prime_msg (_, Prime.Msg.Po_batch { updates = u :: _; _ }) ->
    trace_of_update u
  | Prime_msg (_, Prime.Msg.Recon_reply { update; _ }) -> trace_of_update update
  | Pbft_msg (_, Pbft.Msg.Request { update; _ }) -> trace_of_update update
  | Pbft_msg (_, Pbft.Msg.Preprepare { proposal = { updates = u :: _; _ }; _ })
    ->
    trace_of_update u
  | Client_batch [] | Reply_batch [] | Prime_msg _ | Pbft_msg _
  | Transfer_chunk _ ->
    Telemetry.Span.no_trace

(* Every protocol send is charged the exact frame length (envelope
   header + encoded body + authenticator) via the measured-size pass,
   never an approximation — and never a serialisation: Wire.Measure
   walks the value arithmetically. A broadcast hands the same physical
   payload to every recipient, and frame size is sender-independent, so
   a one-slot memo keyed by physical identity measures each payload
   once per n-1-way broadcast. Per-kind totals live in preallocated
   counter arrays indexed by Wire.Message.kind_index. *)
let send_payload t ~src_node ~dst_node payload =
  let size_bytes =
    if payload == t.size_memo_payload then t.size_memo_bytes
    else begin
      let s = Wire.Envelope.size ~sender:src_node payload in
      t.size_memo_payload <- payload;
      t.size_memo_bytes <- s;
      s
    end
  in
  let k = Wire.Message.kind_index payload in
  t.wire_frames.(k) <- t.wire_frames.(k) + 1;
  t.wire_bytes.(k) <- t.wire_bytes.(k) + size_bytes;
  let trace =
    if Telemetry.Sink.enabled t.telemetry then trace_of_payload payload
    else Telemetry.Span.no_trace
  in
  Overlay.Net.send t.net ~priority:Overlay.Fair_queue.Control ~trace ~size_bytes
    ~src:src_node ~dst:dst_node ~mode:t.cfg.dissemination payload

let wire_traffic t =
  let acc = ref [] in
  for k = Wire.Message.kind_count - 1 downto 0 do
    if t.wire_frames.(k) > 0 then
      acc :=
        (Wire.Message.kind_name k, t.wire_frames.(k), t.wire_bytes.(k)) :: !acc
  done;
  List.sort
    (fun (ka, _, ba) (kb, _, bb) ->
      match compare bb ba with 0 -> compare ka kb | c -> c)
    !acc

let wire_decode_errors t = t.wire_decode_errors

(* Decode-on-delivery (debug): the simulator transports payloads by
   value, so re-encoding at the receiver is byte-identical to carrying
   the sender's frame. Round-tripping every delivered payload through
   [Wire.Envelope] catches any codec that is not the identity. *)
let debug_check_delivery t ~sender payload =
  if t.cfg.wire_debug then
    match Wire.Envelope.decode (Wire.Envelope.encode ~sender payload) with
    | Ok env
      when env.Wire.Envelope.sender = sender
           && Wire.Message.equal env.Wire.Envelope.message payload ->
      ()
    | Ok _ | Error _ -> t.wire_decode_errors <- t.wire_decode_errors + 1

let submit_to_replica t r update =
  match t.replicas.(r) with
  | Prime_replica p -> Prime.Replica.submit p update
  | Pbft_replica p -> Pbft.Replica.submit p update

let ingest_client_update t r u =
  (* Origin milestone: the first replica to receive the update ends
     the ingress phase (first-writer-wins in the sink). *)
  if Telemetry.Sink.enabled t.telemetry then
    Telemetry.Sink.update_at_origin t.telemetry ~trace:(trace_of_update u)
      ~now:(Sim.Engine.now t.engine);
  submit_to_replica t r u

let handle_replica_msg t r ~from payload =
  match (t.replicas.(r), payload) with
  | Prime_replica p, Prime_msg (_, m) -> Prime.Replica.handle p ~from m
  | Pbft_replica p, Pbft_msg (_, m) -> Pbft.Replica.handle p ~from m
  | _, Client_update u -> ingest_client_update t r u
  | _, Client_batch us -> List.iter (ingest_client_update t r) us
  | _, Transfer_chunk _ ->
    (* Snapshot installation is synchronous in [resync_replica]; the
       chunk frames exist to charge the transfer's bandwidth. *)
    ()
  | _, (Prime_msg _ | Pbft_msg _ | Replica_reply _ | Reply_batch _) -> ()

(* Reply batch flush: group the queued (dst, reply) pairs by
   destination in arrival order; a destination with a single reply
   still gets the legacy frame shape. *)
let flush_replies t r =
  let acc = t.reply_accs.(r) in
  if not (Bft.Batch.is_empty acc) then begin
    let items = Bft.Batch.take_all acc in
    let per_dst = Hashtbl.create 7 in
    let dsts = ref [] in
    List.iter
      (fun (dst, reply) ->
        match Hashtbl.find_opt per_dst dst with
        | Some q -> Queue.add reply q
        | None ->
          let q = Queue.create () in
          Queue.add reply q;
          Hashtbl.replace per_dst dst q;
          dsts := dst :: !dsts)
      items;
    List.iter
      (fun dst ->
        let payload =
          match List.of_seq (Queue.to_seq (Hashtbl.find per_dst dst)) with
          | [ reply ] -> Replica_reply reply
          | rs -> Reply_batch rs
        in
        send_payload t ~src_node:(node_of_replica t r) ~dst_node:dst payload)
      (List.rev !dsts)
  end

let flush_replies_due t r =
  if not (faults t r).Bft.Faults.crashed then
    match Bft.Batch.deadline_us t.reply_accs.(r) with
    | Some d when d <= Sim.Engine.now t.engine -> flush_replies t r
    | Some _ | None -> ()

let enqueue_reply t r ~dst_node reply =
  let acc = t.reply_accs.(r) in
  Bft.Batch.push acc ~now:(Sim.Engine.now t.engine) (dst_node, reply);
  if Bft.Batch.full acc then flush_replies t r
  else if Bft.Batch.length acc = 1 then
    ignore
      (Sim.Engine.schedule t.engine ~delay_us:t.reply_batch.Bft.Batch.max_delay_us
         (fun () -> flush_replies_due t r)
        : Sim.Engine.timer)

(* Reply emission: called from the execute callback of replica [r]. *)
let emit_replies t r ~exec_index ~(update : Bft.Update.t) effect =
  let state = Scada.Master.state_digest t.masters.(r) in
  let update_digest = Bft.Update.digest update in
  let send_reply ~body ~dst_node =
    let digest = Scada.Reply.body_digest ~exec_index ~update_digest ~state ~body in
    let share = Cryptosim.Threshold.sign_share t.group ~member:r digest in
    let reply =
      {
        Scada.Reply.replica = r;
        update_key = Bft.Update.key update;
        exec_index;
        digest;
        share;
        body;
      }
    in
    (* Charge the threshold-share signing cost before the send (the
       share is per-update even when the envelope is batched). *)
    ignore
      (Sim.Engine.schedule t.engine ~delay_us:t.share_cost_us (fun () ->
           if not (faults t r).Bft.Faults.crashed then begin
             if Telemetry.Sink.enabled t.telemetry then
               Telemetry.Sink.update_reply_sent t.telemetry
                 ~trace:(trace_of_update update) ~replica:r
                 ~now:(Sim.Engine.now t.engine);
             if Bft.Batch.is_singleton t.reply_batch then
               send_payload t ~src_node:(node_of_replica t r)
                 ~dst_node (Replica_reply reply)
             else enqueue_reply t r ~dst_node reply
           end)
        : Sim.Engine.timer)
  in
  let client_node = node_of_client t update.Bft.Update.client in
  match effect with
  | Scada.Master.No_effect | Scada.Master.Read_result _ ->
    send_reply ~body:Scada.Reply.Ack ~dst_node:client_node
  | Scada.Master.Device_command { rtu; command } ->
    send_reply ~body:Scada.Reply.Ack ~dst_node:client_node;
    if rtu >= 0 && rtu < t.cfg.substations then begin
      let frame = Scada.Dnp3.encode { Scada.Dnp3.dest = rtu; src = 0xF0; app = command } in
      send_reply
        ~body:(Scada.Reply.Command { rtu; frame })
        ~dst_node:(node_of_client t rtu)
    end

(* State transfer: adopt a (protocol snapshot, master state) pair
   vouched for by f+1 peers. The two halves are captured atomically
   (same simulation instant), so a consistent pair digest identifies a
   consistent joint state. Used when a replica returns from proactive
   recovery AND when a disconnected site reconnects. *)
let resync_replica t r =
  match t.replicas.(r) with
  | Pbft_replica _ -> ()
  | Prime_replica prime ->
    let prime_of p =
      match t.replicas.(p) with
      | Prime_replica q -> q
      | Pbft_replica _ -> assert false
    in
    let source =
      {
        Recovery.State_transfer.peers =
          List.filter
            (fun p -> p <> r && not (faults t p).Bft.Faults.crashed)
            (List.init t.n Fun.id);
        fetch =
          (fun peer ->
            Some
              ( Prime.Replica.snapshot (prime_of peer),
                Scada.Master.clone t.masters.(peer) ));
        digest_of =
          (fun (snap, master) ->
            Cryptosim.Digest.combine
              (Prime.Replica.snapshot_digest snap)
              (Scada.Master.snapshot_digest master));
        newer =
          (fun (a, _) (b, _) ->
            a.Prime.Replica.snap_exec_count > b.Prime.Replica.snap_exec_count);
      }
    in
    (match Recovery.State_transfer.select ~f:t.cfg.quorum.Bft.Quorum.f source with
    | Recovery.State_transfer.Installed (snap, master) ->
      (* Install only a strictly newer snapshot. Re-installing our own
         (or an equal) state is not a harmless no-op: it discards
         committed-but-unapplied slots and pre-order bodies, and a
         leader doing it re-proposes sequence numbers that other
         replicas may already hold committed — a safety hazard. *)
      if
        snap.Prime.Replica.snap_exec_count
        > Bft.Exec_log.length (Prime.Replica.exec_log prime)
      then begin
        Prime.Replica.install_snapshot prime snap;
        t.masters.(r) <- master;
        (* Charge the transfer's bandwidth: the adopted state is
           serialised (exec count + every known RTU status, via the
           SCADA codec) and shipped as wire chunks from a live donor,
           so recovery storms compete with protocol traffic for links. *)
        match source.Recovery.State_transfer.peers with
        | [] -> ()
        | donor :: _ ->
          let blob =
            let b = Buffer.create 256 in
            Buffer.add_string b
              (Printf.sprintf "exec:%d;" (Scada.Master.applied_count master));
            List.iter
              (fun rtu ->
                match Scada.Master.last_status master ~rtu with
                | None -> ()
                | Some status ->
                  Buffer.add_string b
                    (Scada.Op.encode (Scada.Op.Status_report status)))
              (Scada.Master.known_rtus master);
            Buffer.contents b
          in
          List.iter
            (fun chunk ->
              send_payload t ~src_node:(node_of_replica t donor)
                ~dst_node:(node_of_replica t r) (Transfer_chunk chunk))
            (Recovery.State_transfer.chunk_blob ~xfer_id:r ~chunk_bytes:1024
               blob)
      end
    | Recovery.State_transfer.No_quorum _ ->
      (* Rare: peers disagree transiently; rejoin from live traffic and
         catch up through slot requests / checkpoints. *)
      ())

let create cfg =
  let n = List.fold_left ( + ) 0 cfg.site_sizes in
  if n <> cfg.quorum.Bft.Quorum.n then
    invalid_arg "System.create: site_sizes do not sum to quorum n";
  if cfg.control_centers < 1 || cfg.control_centers > List.length cfg.site_sizes
  then invalid_arg "System.create: bad control_centers";
  let batch_policy =
    if cfg.max_batch <= 1 then Bft.Batch.singleton
    else Bft.Batch.create ~max_delay_us:cfg.batch_delay_us ~max_batch:cfg.max_batch ()
  in
  let engine = Sim.Engine.create ~seed:cfg.seed () in
  let topo, site_members = build_topology cfg in
  let net = Overlay.Net.create ~per_source_cap:256 engine topo () in
  let sink =
    if cfg.telemetry then begin
      let s =
        Telemetry.Sink.create ~capacity:cfg.telemetry_capacity ~enabled:true ()
      in
      (* The orderable milestone needs an ordering quorum of pre-order
         body stores; the execution milestone needs the reply (f+1)
         quorum of distinct executions. *)
      Telemetry.Sink.set_quorums s
        ~order:(Bft.Quorum.quorum_size cfg.quorum)
        ~reply:(Bft.Quorum.reply_threshold cfg.quorum);
      Overlay.Net.set_telemetry net s;
      s
    end
    else Telemetry.Sink.null
  in
  let group =
    Cryptosim.Threshold.create_group ~seed:cfg.seed
      ~members:(List.init n Fun.id)
      ~threshold:(Bft.Quorum.reply_threshold cfg.quorum)
  in
  let replica_sites = Array.make n 0 in
  List.iteri
    (fun site members -> List.iter (fun r -> replica_sites.(r) <- site) members)
    site_members;
  let t =
    {
      cfg;
      engine;
      topo;
      net;
      group;
      n;
      replicas = [||];
      masters = Array.init n (fun _ -> Scada.Master.create ());
      proxies = [||];
      hmis = [||];
      replica_sites;
      hist = Stats.Histogram.create ();
      series = Stats.Timeseries.create ();
      submitted = 0;
      diversity =
        Recovery.Diversity.create ~variants:cfg.diversity_variants ~n
          ~rng:(Sim.Engine.rng engine);
      scheduler = None;
      recovery_listeners = [];
      share_cost_us = Cryptosim.Threshold.default_cost.Cryptosim.Threshold.share_us;
      reply_batch = batch_policy;
      reply_accs = Array.init n (fun _ -> Bft.Batch.acc batch_policy);
      wire_frames = Array.make Wire.Message.kind_count 0;
      wire_bytes = Array.make Wire.Message.kind_count 0;
      (* Fresh dummy payload: physically distinct from anything ever
         sent, so the first real send always misses the memo. *)
      size_memo_payload =
        Client_update
          (Bft.Update.create ~client:0 ~client_seq:0 ~operation:""
             ~submitted_us:0);
      size_memo_bytes = 0;
      wire_decode_errors = 0;
      telemetry = sink;
    }
  in
  (* Replica environments. A protocol broadcast hands the same physical
     message to every recipient; memoising the wrapped payload by the
     inner message's physical identity lets [send_payload]'s size memo
     hit on every recipient after the first. *)
  let env_of r wrap =
    let wrap_memo = ref None in
    let wrap_shared msg =
      match !wrap_memo with
      | Some (m, p) when m == msg -> p
      | _ ->
        let p = wrap msg in
        wrap_memo := Some (msg, p);
        p
    in
    {
      Bft.Env.self = r;
      replica_count = n;
      send =
        (fun dst msg ->
          send_payload t ~src_node:(node_of_replica t r)
            ~dst_node:(node_of_replica t dst) (wrap_shared msg));
      now_us = (fun () -> Sim.Engine.now engine);
      set_timer = (fun delay_us f -> Sim.Engine.schedule engine ~delay_us f);
      trace = (fun _ -> ());
      telemetry = sink;
    }
  in
  let execute_of r exec_index update =
    (* Execution milestone: the reply-quorum-th distinct replica to get
       here fixes the end of the ordering phase (sink-side count). *)
    if Telemetry.Sink.enabled sink then
      Telemetry.Sink.update_executed sink ~trace:(trace_of_update update)
        ~replica:r ~now:(Sim.Engine.now engine);
    match Scada.Op.of_update update with
    | Error _ -> ()
    | Ok op ->
      let effect = Scada.Master.apply t.masters.(r) op in
      emit_replies t r ~exec_index ~update effect
  in
  (* Derive a TAT bound from the network diameter: twice the worst
     round-trip plus proposal cadence headroom. *)
  let max_one_way =
    List.fold_left
      (fun acc link -> max acc link.Overlay.Topology.latency_us)
      0 (Overlay.Topology.links topo)
  in
  t.replicas <-
    Array.init n (fun r ->
        match cfg.protocol with
        | Prime_protocol ->
          let pcfg =
            cfg.tweak_prime
              {
                (Prime.Replica.default_config cfg.quorum) with
                Prime.Replica.tat_threshold_us =
                  max 100_000 ((8 * max_one_way) + 60_000);
                batch = batch_policy;
              }
          in
          Prime_replica
            (Prime.Replica.create pcfg (env_of r (fun m -> Prime_msg (r, m)))
               ~execute:(execute_of r))
        | Pbft_protocol ->
          let pcfg =
            cfg.tweak_pbft
              {
                (Pbft.Replica.default_config cfg.quorum) with
                Pbft.Replica.batch = batch_policy;
              }
          in
          Pbft_replica
            (Pbft.Replica.create pcfg (env_of r (fun m -> Pbft_msg (r, m)))
               ~execute:(fun seq u -> execute_of r seq u)));
  (* A replica that provably fell behind the quorum's checkpoints asks
     the deployment for state transfer (deferred one event so the
     transfer does not run inside a message handler). *)
  Array.iteri
    (fun r instance ->
      match instance with
      | Prime_replica p ->
        Prime.Replica.set_on_fall_behind p (fun () ->
            ignore
              (Sim.Engine.schedule engine ~delay_us:0 (fun () ->
                   if not (faults t r).Bft.Faults.crashed then
                     resync_replica t r)
                : Sim.Engine.timer))
      | Pbft_replica _ -> ())
    t.replicas;
  (* Net handlers: replica nodes. *)
  for r = 0 to n - 1 do
    Overlay.Net.set_handler net r (fun delivery ->
        let from = delivery.Overlay.Net.frame_src in
        debug_check_delivery t ~sender:from delivery.Overlay.Net.payload;
        (* Only replica nodes originate protocol messages; client nodes
           originate Client_update. *)
        handle_replica_msg t r ~from delivery.Overlay.Net.payload)
  done;
  (* Clients. *)
  let record_latency _update ~latency_us =
    let ms = float_of_int latency_us /. 1000. in
    Stats.Histogram.add t.hist ms;
    Stats.Timeseries.add t.series ~time_us:(Sim.Engine.now engine) ms
  in
  (* Client-side origin failover. Each client has a home origin
     (client mod n); when the origin it is currently using makes no
     progress for a full retransmission timeout, the client suspects it
     for a while and moves to the next replica. Retransmissions
     themselves go to every replica (as Prime clients do) and
     exactly-once delivery collapses the duplicates. *)
  let clients = cfg.substations + cfg.hmis in
  let suspected_until = Array.make_matrix clients n min_int in
  let current_default = Array.make clients (-1) in
  let default_since = Array.make clients 0 in
  let pick_origin client now =
    let start = client mod n in
    let rec find i =
      if i >= n then start
      else begin
        let o = (start + i) mod n in
        if suspected_until.(client).(o) > now then find (i + 1) else o
      end
    in
    let o = find 0 in
    if o <> current_default.(client) then begin
      current_default.(client) <- o;
      default_since.(client) <- now
    end;
    o
  in
  let submit_of client ~attempt (u : Bft.Update.t) =
    t.submitted <- t.submitted + 1;
    let now = Sim.Engine.now engine in
    let payload = Client_update u in
    if attempt = 0 then begin
      let origin = pick_origin client now in
      send_payload t ~src_node:(node_of_client t client)
        ~dst_node:(node_of_replica t origin) payload
    end
    else begin
      (* Blame the current origin only once it has had a full timeout
         to prove itself (the timed-out update may predate it). *)
      let cur = pick_origin client now in
      if now - default_since.(client) > cfg.resubmit_timeout_us then begin
        suspected_until.(client).(cur) <- now + (8 * cfg.resubmit_timeout_us);
        ignore (pick_origin client now : int)
      end;
      (* One physical payload for the whole retransmission broadcast. *)
      for r = 0 to n - 1 do
        send_payload t ~src_node:(node_of_client t client)
          ~dst_node:(node_of_replica t r) payload
      done
    end
  in
  (* First-attempt batch flush from an endpoint: one Client_batch frame
     to the chosen origin. A flush holding a single update degrades to
     the legacy frame shape. *)
  let submit_batch_of client (updates : Bft.Update.t list) =
    match updates with
    | [] -> ()
    | [ u ] -> submit_of client ~attempt:0 u
    | updates ->
      t.submitted <- t.submitted + List.length updates;
      let now = Sim.Engine.now engine in
      let origin = pick_origin client now in
      send_payload t ~src_node:(node_of_client t client)
        ~dst_node:(node_of_replica t origin) (Client_batch updates)
  in
  let proxies =
    Array.init cfg.substations (fun i ->
        let rtu =
          Scada.Rtu.create ~id:i ~breakers:4 ~feeders:2 ~rng:(Sim.Engine.rng engine)
        in
        (* Mixed field-protocol fleet, as in real substations: even
           RTUs speak DNP3, odd ones Modbus (the proxy gateways the
           master's DNP3 commands accordingly). *)
        let field_protocol = if i mod 2 = 0 then `Dnp3 else `Modbus in
        let p =
          Scada.Proxy.create ~field_protocol ~telemetry:sink
            ~batch:batch_policy ~submit_batch:(submit_batch_of i) ~engine ~rtu
            ~client_id:i ~poll_interval_us:cfg.poll_interval_us ~group
            ~resubmit_timeout_us:cfg.resubmit_timeout_us
            ~submit:(submit_of i) ()
        in
        Scada.Endpoint.set_on_complete (Scada.Proxy.endpoint p) record_latency;
        Overlay.Net.set_handler net (node_of_client t i) (fun delivery ->
            debug_check_delivery t ~sender:delivery.Overlay.Net.frame_src
              delivery.Overlay.Net.payload;
            match delivery.Overlay.Net.payload with
            | Replica_reply reply -> Scada.Proxy.handle_reply p reply
            | Reply_batch rs -> List.iter (Scada.Proxy.handle_reply p) rs
            | Prime_msg _ | Pbft_msg _ | Client_update _ | Client_batch _
            | Transfer_chunk _ ->
              ());
        p)
  in
  let hmis =
    Array.init cfg.hmis (fun j ->
        let client = cfg.substations + j in
        let h =
          Scada.Hmi.create ~telemetry:sink ~engine ~client_id:client ~group
            ~resubmit_timeout_us:cfg.resubmit_timeout_us
            ~submit:(submit_of client) ()
        in
        Scada.Endpoint.set_on_complete (Scada.Hmi.endpoint h) record_latency;
        Overlay.Net.set_handler net (node_of_client t client) (fun delivery ->
            debug_check_delivery t ~sender:delivery.Overlay.Net.frame_src
              delivery.Overlay.Net.payload;
            match delivery.Overlay.Net.payload with
            | Replica_reply reply -> Scada.Hmi.handle_reply h reply
            | Reply_batch rs -> List.iter (Scada.Hmi.handle_reply h) rs
            | Prime_msg _ | Pbft_msg _ | Client_update _ | Client_batch _
            | Transfer_chunk _ ->
              ());
        h)
  in
  t.proxies <- proxies;
  t.hmis <- hmis;
  t

let start t =
  Array.iter
    (function
      | Prime_replica p -> Prime.Replica.start p
      | Pbft_replica p -> Pbft.Replica.start p)
    t.replicas;
  Array.iter Scada.Proxy.start t.proxies;
  Array.iter Scada.Hmi.start t.hmis

let run t ~duration_us =
  Sim.Engine.run t.engine ~until_us:(Sim.Engine.now t.engine + duration_us)

(* ------------------------------------------------------------------ *)
(* Safety check.                                                       *)

let assert_agreement t =
  let correct =
    List.filter
      (fun r ->
        (not (faults t r).Bft.Faults.crashed)
        && not (Bft.Faults.is_byzantine (faults t r)))
      (List.init t.n Fun.id)
  in
  match correct with
  | [] -> ()
  | first :: rest ->
    let l0 = exec_log t first in
    List.iter
      (fun r ->
        let li = exec_log t r in
        if not (Bft.Exec_log.prefix_equal l0 li) then
          failwith
            (Printf.sprintf "SAFETY VIOLATION: replicas %d and %d diverge" first r);
        if
          Bft.Exec_log.length l0 = Bft.Exec_log.length li
          && Scada.Master.applied_count t.masters.(first)
             = Scada.Master.applied_count t.masters.(r)
          && not
               (Cryptosim.Digest.equal
                  (Scada.Master.state_digest t.masters.(first))
                  (Scada.Master.state_digest t.masters.(r)))
        then
          failwith
            (Printf.sprintf "SAFETY VIOLATION: master state of %d and %d diverge"
               first r))
      rest

(* ------------------------------------------------------------------ *)
(* Proactive recovery.                                                 *)

let on_recovery_event t f =
  t.recovery_listeners <- f :: t.recovery_listeners

let notify_recovery t phase r =
  List.iter (fun f -> f phase r) t.recovery_listeners

let enable_recovery t ~rotation_period_us ~recovery_duration_us =
  (match t.cfg.protocol with
  | Prime_protocol -> ()
  | Pbft_protocol ->
    invalid_arg "System.enable_recovery: recovery requires the Prime protocol");
  let k = t.cfg.quorum.Bft.Quorum.k in
  if k < 1 then invalid_arg "System.enable_recovery: k must be >= 1";
  let on_begin r =
    (faults t r).Bft.Faults.crashed <- true;
    notify_recovery t `Begin r
  in
  let on_complete r =
    (* Clean image: honest behaviour, fresh diversity variant. *)
    Bft.Faults.reset (faults t r);
    ignore (Recovery.Diversity.rejuvenate t.diversity r : int);
    resync_replica t r;
    notify_recovery t `Complete r
  in
  let scheduler =
    Recovery.Scheduler.create ~engine:t.engine
      ~config:
        {
          Recovery.Scheduler.rotation_period_us;
          recovery_duration_us;
          max_concurrent = k;
        }
      ~n:t.n ~on_begin ~on_complete
  in
  t.scheduler <- Some scheduler;
  Recovery.Scheduler.start scheduler;
  scheduler

(* Reactive recovery: every poll interval, each live Prime replica is
   asked which peers it has not heard from; a peer accused by at least
   f+k+1 distinct replicas (more than the faulty + recovering replicas
   could fabricate) is rejuvenated immediately through the proactive
   scheduler's budget. This cleanses silent compromised replicas long
   before their next scheduled rotation. *)
let enable_reactive_recovery t ~silence_threshold_us ~poll_interval_us =
  let scheduler =
    match t.scheduler with
    | Some s -> s
    | None ->
      invalid_arg
        "System.enable_reactive_recovery: call enable_recovery first"
  in
  let threshold = Bft.Quorum.suspect_threshold t.cfg.quorum in
  (* Grace period: peers have not heard from a replica during its own
     recovery downtime, so accusations are suppressed until it has had
     time to be heard from again. *)
  let completed_at = Array.make t.n (-1_000_000_000) in
  on_recovery_event t (fun phase r ->
      match phase with
      | `Complete -> completed_at.(r) <- Sim.Engine.now t.engine
      | `Begin -> ());
  ignore
    (Sim.Engine.periodic t.engine ~interval_us:poll_interval_us (fun () ->
         let accusations = Array.make t.n 0 in
         Array.iteri
           (fun r instance ->
             match instance with
             | Prime_replica p ->
               if not (faults t r).Bft.Faults.crashed then
                 List.iter
                   (fun j -> accusations.(j) <- accusations.(j) + 1)
                   (Prime.Replica.unresponsive p
                      ~threshold_us:silence_threshold_us)
             | Pbft_replica _ -> ())
           t.replicas;
         Array.iteri
           (fun j count ->
             if
               count >= threshold
               && (not (Recovery.Scheduler.is_recovering scheduler j))
               && Sim.Engine.now t.engine - completed_at.(j)
                  > 2 * silence_threshold_us
             then ignore (Recovery.Scheduler.trigger_now scheduler j : bool))
           accusations)
      : Sim.Engine.timer)

(* ------------------------------------------------------------------ *)
(* Attack / failure injection.                                         *)

let set_leader_delay t ~delay_us =
  let leader = current_leader t in
  (faults t leader).Bft.Faults.proposal_delay_us <- delay_us

let replicas_in_site t site =
  List.filter (fun r -> t.replica_sites.(r) = site) (List.init t.n Fun.id)

let kill_site t site =
  List.iter
    (fun r ->
      Overlay.Net.kill_node t.net (node_of_replica t r);
      (faults t r).Bft.Faults.crashed <- true)
    (replicas_in_site t site)

let restore_site t site =
  List.iter
    (fun r ->
      Overlay.Net.restore_node t.net (node_of_replica t r);
      (faults t r).Bft.Faults.crashed <- false;
      resync_replica t r)
    (replicas_in_site t site)

(* Network-level site isolation: the site's overlay daemons go dark
   but the replica processes keep running (the paper's control-center
   disconnection is a network event, not a host crash). On reconnection
   the replicas learn the installed view from peer traffic and catch up
   through batched slot requests — no state transfer needed. *)
let isolate_site t site =
  List.iter
    (fun r -> Overlay.Net.kill_node t.net (node_of_replica t r))
    (replicas_in_site t site)

let reconnect_site t site =
  List.iter
    (fun r -> Overlay.Net.restore_node t.net (node_of_replica t r))
    (replicas_in_site t site)

let crash_replica t r =
  Overlay.Net.kill_node t.net (node_of_replica t r);
  (faults t r).Bft.Faults.crashed <- true

let restore_replica t r =
  Overlay.Net.restore_node t.net (node_of_replica t r);
  (faults t r).Bft.Faults.crashed <- false;
  resync_replica t r
