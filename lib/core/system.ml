type protocol = Prime_protocol | Pbft_protocol

(* The deployment's message union lives in [Wire.Message] so the wire
   codecs can serialise complete frames without a dependency cycle. *)
type payload = Wire.Message.t

open Wire.Message

type config = {
  quorum : Bft.Quorum.t;
  protocol : protocol;
  site_sizes : int list;
  standby_site_sizes : int list;
  control_centers : int;
  substations : int;
  hmis : int;
  poll_interval_us : int;
  dissemination : Overlay.Net.mode;
  lan_latency_us : int;
  wan_latency_us : int -> int -> int;
  client_link_latency_us : int;
  lan_bandwidth_bps : int;
  wan_bandwidth_bps : int;
  resubmit_timeout_us : int;
  max_batch : int;
  batch_delay_us : int;
  field_concentrators : int;
      (* 0 (the default) disables the modeled device fleet entirely:
         no concentrator clients, no timers, no RNG draws, no frames —
         the trajectory is bit-identical to a build without lib/field. *)
  field_devices : int; (* total across all concentrators *)
  field_scan_interval_us : int;
  field_write_interval_us : int; (* 0 disables the write workload *)
  field_loss : float; (* per-round keep-alive loss probability *)
  diversity_variants : int;
  seed : int64;
  wire_debug : bool;
  telemetry : bool;
  telemetry_capacity : int;
  intra_domains : int;
      (* > 1 enables conservative-lookahead parallel execution of one
         instance's site shards on that many OCaml domains; the
         trajectory stays bit-identical to sequential. Falls back to
         sequential when telemetry or wire_debug is on (their sinks are
         engine-global). *)
  adaptive : bool;
      (* false (the default) disables the two-level resilience
         controller entirely: no Local/Global instances, no tick timer
         — the trajectory is bit-identical to a build without
         lib/control. The tuning plane (knobs + actuator) always
         exists; with no controller issuing requests it never acts. *)
  adapt_tick_us : int; (* controller sampling cadence *)
  tweak_prime : Prime.Replica.config -> Prime.Replica.config;
  tweak_pbft : Pbft.Replica.config -> Pbft.Replica.config;
}

let east_coast_wan a b =
  match (min a b, max a b) with
  | 0, 1 -> 2_000
  | 0, 2 -> 4_000
  | 0, 3 -> 8_000
  | 1, 2 -> 5_000
  | 1, 3 -> 9_000
  | 2, 3 -> 5_000
  | _ -> 10_000

let default_config () =
  {
    quorum = Bft.Quorum.create ~n:6 ~f:1 ~k:1;
    protocol = Prime_protocol;
    site_sizes = [ 2; 2; 1; 1 ];
    standby_site_sizes = [];
    control_centers = 2;
    substations = 10;
    hmis = 1;
    poll_interval_us = 100_000;
    dissemination = Overlay.Net.Shortest;
    lan_latency_us = 100;
    wan_latency_us = east_coast_wan;
    client_link_latency_us = 2_000;
    lan_bandwidth_bps = 125_000_000;
    wan_bandwidth_bps = 12_500_000;
    resubmit_timeout_us = 2_000_000;
    max_batch = 1;
    batch_delay_us = 10_000;
    field_concentrators = 0;
    field_devices = 0;
    field_scan_interval_us = 200_000;
    field_write_interval_us = 1_000_000;
    field_loss = 0.005;
    diversity_variants = 8;
    seed = 0x5917EL;
    wire_debug = false;
    telemetry = false;
    telemetry_capacity = 65536;
    intra_domains = 1;
    adaptive = false;
    adapt_tick_us = 250_000;
    tweak_prime = Fun.id;
    tweak_pbft = Fun.id;
  }

type replica_instance =
  | Prime_replica of Prime.Replica.t
  | Pbft_replica of Pbft.Replica.t

(* A joining replica's chunk-gated state transfer: the vouched
   (snapshot, master) pair is held aside while its serialised bytes
   traverse the overlay as [Transfer_chunk] frames; missing chunks are
   re-requested under the bounded-backoff ARQ and the new instance is
   only installed once every chunk has arrived. *)
type join_session = {
  js_xfer : int;
  js_replica : int;
  js_epoch : int;
  js_donor : int;
  js_snap : Prime.Replica.snapshot;
  js_master : Scada.Master.t;
  js_chunks : Recovery.State_transfer.chunk array;
  js_received : bool array;
  mutable js_done : bool;
}

type t = {
  cfg : config;
  world : Sim.World.t; (* ownership root: engine + partition + trace *)
  engine : Sim.Engine.t;
  topo : Overlay.Topology.t;
  net : payload Overlay.Net.t;
  group : Cryptosim.Threshold.group; (* epoch-0 threshold group *)
  n : int; (* genesis active replica count *)
  universe : int; (* active + pre-provisioned standby replicas *)
  mutable replicas : replica_instance array; (* universe-sized *)
  masters : Scada.Master.t array; (* elements replaced on state transfer *)
  mutable proxies : Scada.Proxy.t array;
  mutable hmis : Scada.Hmi.t array;
  mutable concentrators : Field.Concentrator.t array;
  replica_sites : int array;
  hist : Stats.Histogram.t;
  series : Stats.Timeseries.t;
  mutable submitted : int;
  diversity : Recovery.Diversity.t;
  mutable scheduler : Recovery.Scheduler.t option;
  mutable recovery_listeners :
    ([ `Begin | `Complete ] -> Bft.Types.replica -> unit) list;
  share_cost_us : int;
  mutable reply_batch : Bft.Batch.policy;
      (* live aggregation policy; hot-swapped through the knob plane *)
  reply_accs : (int * Scada.Reply.t) Bft.Batch.acc array;
  (* --- runtime tuning plane / adaptive controller --- *)
  mutable dissemination : Overlay.Net.mode;
      (* live dissemination mode read per send; initialised from
         [cfg.dissemination], hot-swapped through the knob plane.
         Frames already in flight keep the route captured at submit. *)
  knobs : Control.Knobs.t;
  mutable locals : Control.Local.t array; (* empty unless cfg.adaptive *)
  mutable global_ctl : Control.Global.t option;
  (* Wire accounting, striped by executing engine stripe
     ({!Sim.Engine.exec_stripe}) so concurrent conservative-window
     stripes never share a cell (the size memo in particular would be a
     torn-pair race); totals are summed on read. Sequential execution
     only ever touches stripe 0. *)
  wire_frames : int array array; (* stripe -> Wire.Message.kind_index *)
  wire_bytes : int array array;
  size_memo_payload : payload array; (* per stripe: last measured payload *)
  size_memo_bytes : int array;
  mutable wire_decode_errors : int;
  telemetry : Telemetry.Sink.t;
  (* --- Epoch-ed membership (online reconfiguration) --- *)
  directory : Member.Directory.t;
  epoch_of : int array; (* per global replica; -1 = standby or retired *)
  rank_maps : (int, int array * int array) Hashtbl.t;
      (* epoch -> (rank -> global id, global id -> rank or -1) *)
  mutable groups : (int * Cryptosim.Threshold.group) list; (* epoch -> group *)
  mutable cur_epoch : int;
  mutable cur_members : int array; (* rank -> global, current epoch *)
  pending_reconfig : (int * Member.Reconfig.t) option array;
  mutable cutovers : (int * int * int) list;
      (* (epoch, boundary_exec, time_us), newest first *)
  stale_epoch_frames : int array; (* per executing stripe; summed on read *)
  mutable epoch_violation : string option; (* latched, never cleared *)
  sessions : (int, join_session) Hashtbl.t; (* xfer_id -> session *)
  mutable next_xfer : int;
  mutable reconciler_armed : bool;
  lag_since : int array; (* first time a member was seen lagging; -1 = none *)
  arq : Recovery.State_transfer.arq;
  mutable make_member_instance :
    cert:Member.Cert.t -> rank:int -> global:int -> replica_instance;
  mutable epoch_listeners : (int -> unit) list;
  mutable intra_stats : Sim.Conservative.stats option;
      (* stats of the latest conservative-parallel [run] phase *)
}

let config t = t.cfg
let world t = t.world
let engine t = t.engine
let net t = t.net
let knobs t = t.knobs
let dissemination t = t.dissemination
let shard_partition t = Overlay.Net.partition t.net
let telemetry t = t.telemetry
let replica_count t = t.n
let universe_count t = t.universe
let proxy t i = t.proxies.(i)
let hmi t i = t.hmis.(i)
let concentrator t i = t.concentrators.(i)
let concentrator_count t = Array.length t.concentrators

(* Fleet-wide roll-up of the concentrator stats (rounds is the max, not
   the sum: concentrators scan in lock-step cadence). *)
let fleet_stats t : Field.Concentrator.stats =
  Array.fold_left
    (fun (acc : Field.Concentrator.stats) c ->
      let s = Field.Concentrator.stats c in
      {
        Field.Concentrator.device_count = acc.device_count + s.device_count;
        rounds = max acc.rounds s.rounds;
        events_seen = acc.events_seen + s.events_seen;
        reports_accepted = acc.reports_accepted + s.reports_accepted;
        dups_dropped = acc.dups_dropped + s.dups_dropped;
        churn = acc.churn + s.churn;
        adverts_sent = acc.adverts_sent + s.adverts_sent;
        report_frames = acc.report_frames + s.report_frames;
        polls_sent = acc.polls_sent + s.polls_sent;
        poll_bytes = acc.poll_bytes + s.poll_bytes;
        writes_issued = acc.writes_issued + s.writes_issued;
        confirmed_events = acc.confirmed_events + s.confirmed_events;
        confirmed_writes = acc.confirmed_writes + s.confirmed_writes;
      })
    {
      Field.Concentrator.device_count = 0;
      rounds = 0;
      events_seen = 0;
      reports_accepted = 0;
      dups_dropped = 0;
      churn = 0;
      adverts_sent = 0;
      report_frames = 0;
      polls_sent = 0;
      poll_bytes = 0;
      writes_issued = 0;
      confirmed_events = 0;
      confirmed_writes = 0;
    }
    t.concentrators
let master t r = t.masters.(r)
let latency_histogram t = t.hist
let latency_series t = t.series
let confirmed_updates t = Stats.Histogram.count t.hist
let submitted_updates t = t.submitted
let diversity t = t.diversity
let node_of_replica _t r = r
let node_of_client t c = t.universe + c
let site_of_replica t r = t.replica_sites.(r)

let faults t r =
  match t.replicas.(r) with
  | Prime_replica p -> Prime.Replica.faults p
  | Pbft_replica p -> Pbft.Replica.faults p

let view_of t r =
  match t.replicas.(r) with
  | Prime_replica p -> Prime.Replica.view p
  | Pbft_replica p -> Pbft.Replica.view p

let exec_log t r =
  match t.replicas.(r) with
  | Prime_replica p -> Prime.Replica.exec_log p
  | Pbft_replica p -> Pbft.Replica.exec_log p

let last_applied_of t r =
  match t.replicas.(r) with
  | Prime_replica p -> Prime.Replica.last_applied p
  | Pbft_replica p -> Bft.Exec_log.length (Pbft.Replica.exec_log p)

let applied_matrix_digest_of t r seq =
  match t.replicas.(r) with
  | Prime_replica p -> Prime.Replica.applied_matrix_digest p seq
  | Pbft_replica _ -> None

let instance_halted t r =
  match t.replicas.(r) with
  | Prime_replica p -> Prime.Replica.halted p
  | Pbft_replica p -> Pbft.Replica.halted p

let halt_instance t r =
  match t.replicas.(r) with
  | Prime_replica p -> Prime.Replica.halt p
  | Pbft_replica p -> Pbft.Replica.halt p

(* --- Epoch introspection --- *)

let directory t = t.directory
let current_epoch t = t.cur_epoch
let epoch_of_replica t r = t.epoch_of.(r)
let replica_halted t r = instance_halted t r
let current_members t = Array.to_list t.cur_members
let stale_epoch_frames t = Array.fold_left ( + ) 0 t.stale_epoch_frames

let bump_stale_epoch t =
  let s = Sim.Engine.exec_stripe t.engine in
  t.stale_epoch_frames.(s) <- t.stale_epoch_frames.(s) + 1
let cutovers t = List.rev t.cutovers
let epoch_violation t = t.epoch_violation
let on_epoch_change t f = t.epoch_listeners <- f :: t.epoch_listeners

let latch_violation t msg =
  if t.epoch_violation = None then t.epoch_violation <- Some msg

let group_for t r =
  let e = max 0 t.epoch_of.(r) in
  match List.assoc_opt e t.groups with Some g -> g | None -> t.group

(* Instantaneous per-epoch activity: how many replicas of each epoch are
   currently live (instance running, node reachable). The safety oracle
   asserts that at most one epoch ever holds a quorum of these. *)
let epoch_activity t =
  let tbl = Hashtbl.create 7 in
  for g = 0 to t.universe - 1 do
    let e = t.epoch_of.(g) in
    if
      e >= 0
      && (not (faults t g).Bft.Faults.crashed)
      && (not (instance_halted t g))
      && Overlay.Net.node_alive t.net (node_of_replica t g)
    then
      Hashtbl.replace tbl e
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e))
  done;
  Hashtbl.fold (fun e c acc -> (e, c) :: acc) tbl [] |> List.sort compare

let current_leader t =
  (* Leader of the median view among the current epoch's live members,
     mapped from protocol rank back to a global replica id. *)
  let members = t.cur_members in
  let m = Array.length members in
  let views =
    Array.to_list members
    |> List.filter_map (fun r ->
           if
             t.epoch_of.(r) = t.cur_epoch
             && not (faults t r).Bft.Faults.crashed
           then Some (view_of t r)
           else None)
    |> List.sort compare
  in
  let view =
    match views with
    | [] -> 0
    | vs -> List.nth vs (List.length vs / 2)
  in
  members.(Bft.Types.leader_of ~n:m view)

(* ------------------------------------------------------------------ *)
(* Topology: replica sites + one node per client, multi-homed to both
   control centers. Standby sites are laid out (and linked) up front so
   membership growth never has to rewire the physical mesh — their
   nodes simply stay dark until an epoch admits them.                  *)

let build_topology cfg =
  let all_sizes = cfg.site_sizes @ cfg.standby_site_sizes in
  let universe = List.fold_left ( + ) 0 all_sizes in
  let sites = List.length all_sizes in
  let total =
    universe + cfg.substations + cfg.hmis + cfg.field_concentrators
  in
  let topo = Overlay.Topology.create ~nodes:total in
  (* Replica sites and LAN meshes. *)
  let site_members =
    let offset = ref 0 in
    List.mapi
      (fun site size ->
        let members = List.init size (fun i -> !offset + i) in
        offset := !offset + size;
        List.iter (fun node -> Overlay.Topology.assign_site topo node site) members;
        members)
      all_sizes
  in
  List.iter
    (fun members ->
      let arr = Array.of_list members in
      for i = 0 to Array.length arr - 1 do
        for j = i + 1 to Array.length arr - 1 do
          Overlay.Topology.add_link topo ~a:arr.(i) ~b:arr.(j)
            ~latency_us:cfg.lan_latency_us ~bandwidth_bps:cfg.lan_bandwidth_bps
        done
      done)
    site_members;
  (* Inter-site WAN links: first-first always, second-second when both
     sites have two or more members (redundancy). *)
  let site_arr = Array.of_list site_members in
  for sa = 0 to sites - 1 do
    for sb = sa + 1 to sites - 1 do
      let lat = cfg.wan_latency_us sa sb in
      (match (site_arr.(sa), site_arr.(sb)) with
      | a0 :: _, b0 :: _ ->
        Overlay.Topology.add_link topo ~a:a0 ~b:b0 ~latency_us:lat
          ~bandwidth_bps:cfg.wan_bandwidth_bps
      | _, _ -> ());
      match (site_arr.(sa), site_arr.(sb)) with
      | _ :: a1 :: _, _ :: b1 :: _ ->
        Overlay.Topology.add_link topo ~a:a1 ~b:b1 ~latency_us:lat
          ~bandwidth_bps:cfg.wan_bandwidth_bps
      | _, _ -> ()
    done
  done;
  (* Clients: one node each, own site id, linked to the first node of
     every control-center site. *)
  let cc_gateways =
    List.filteri (fun i _ -> i < cfg.control_centers) site_members
    |> List.filter_map (function gw :: _ -> Some gw | [] -> None)
  in
  for c = 0 to cfg.substations + cfg.hmis + cfg.field_concentrators - 1 do
    let node = universe + c in
    Overlay.Topology.assign_site topo node (sites + c);
    List.iter
      (fun gw ->
        Overlay.Topology.add_link topo ~a:node ~b:gw
          ~latency_us:cfg.client_link_latency_us
          ~bandwidth_bps:cfg.wan_bandwidth_bps)
      cc_gateways
  done;
  (topo, site_members)

(* Genesis membership certificate: the configured sites, control
   centers first, the first one active. *)
let genesis_cert cfg =
  let sites =
    let offset = ref 0 in
    List.mapi
      (fun i size ->
        let members = List.init size (fun j -> !offset + j) in
        offset := !offset + size;
        let role =
          if i = 0 then Member.Cert.Active_cc
          else if i < cfg.control_centers then Member.Cert.Backup_cc
          else Member.Cert.Data_center
        in
        { Member.Cert.site_id = i; role; members })
      cfg.site_sizes
  in
  Member.Cert.genesis ~f:cfg.quorum.Bft.Quorum.f ~k:cfg.quorum.Bft.Quorum.k
    ~sites

(* ------------------------------------------------------------------ *)
(* Creation.                                                           *)

let trace_of_update (u : Bft.Update.t) =
  Telemetry.Span.trace_id ~client:u.Bft.Update.client
    ~seq:u.Bft.Update.client_seq

(* The trace context a payload carries through the overlay: the update
   identity it transports, for the message kinds that transport one.
   Only consulted when the sink is enabled, so the disabled-path cost
   in [send_payload] is a single bool load. *)
let trace_of_reply (r : Scada.Reply.t) =
  let client, seq = r.Scada.Reply.update_key in
  Telemetry.Span.trace_id ~client ~seq

(* Batched frames are attributed to their first member: a batch is one
   physical frame, and per-hop net spans need a single representative. *)
let rec trace_of_payload payload =
  match payload with
  | Client_update u -> trace_of_update u
  | Client_batch (u :: _) -> trace_of_update u
  | Replica_reply r -> trace_of_reply r
  | Reply_batch (r :: _) -> trace_of_reply r
  | Prime_msg (_, Prime.Msg.Po_request { update; _ }) -> trace_of_update update
  | Prime_msg (_, Prime.Msg.Po_batch { updates = u :: _; _ }) ->
    trace_of_update u
  | Prime_msg (_, Prime.Msg.Recon_reply { update; _ }) -> trace_of_update update
  | Pbft_msg (_, Pbft.Msg.Request { update; _ }) -> trace_of_update update
  | Pbft_msg (_, Pbft.Msg.Preprepare { proposal = { updates = u :: _; _ }; _ })
    ->
    trace_of_update u
  | Epoch_frame (_, inner) -> trace_of_payload inner
  | Client_batch [] | Reply_batch [] | Prime_msg _ | Pbft_msg _
  | Transfer_chunk _ | Cert_frame _ | Field_advert _ | Field_report _ ->
    Telemetry.Span.no_trace

(* Every protocol send is charged the exact frame length (envelope
   header + encoded body + authenticator) via the measured-size pass,
   never an approximation — and never a serialisation: Wire.Measure
   walks the value arithmetically. A broadcast hands the same physical
   payload to every recipient, and frame size is sender-independent, so
   a one-slot memo keyed by physical identity measures each payload
   once per n-1-way broadcast. Per-kind totals live in preallocated
   counter arrays indexed by Wire.Message.kind_index. *)
let send_payload t ~src_node ~dst_node payload =
  let stripe = Sim.Engine.exec_stripe t.engine in
  let size_bytes =
    if payload == t.size_memo_payload.(stripe) then t.size_memo_bytes.(stripe)
    else begin
      let s = Wire.Envelope.size ~sender:src_node payload in
      t.size_memo_payload.(stripe) <- payload;
      t.size_memo_bytes.(stripe) <- s;
      s
    end
  in
  let k = Wire.Message.kind_index payload in
  let wf = t.wire_frames.(stripe) and wb = t.wire_bytes.(stripe) in
  wf.(k) <- wf.(k) + 1;
  wb.(k) <- wb.(k) + size_bytes;
  let trace =
    if Telemetry.Sink.enabled t.telemetry then trace_of_payload payload
    else Telemetry.Span.no_trace
  in
  Overlay.Net.send t.net ~priority:Overlay.Fair_queue.Control ~trace ~size_bytes
    ~src:src_node ~dst:dst_node ~mode:t.dissemination payload

(* Field-link frames (the device <-> concentrator last mile) never ride
   the overlay — devices are not overlay nodes — but they are real wire
   traffic, so they are charged into the same striped per-kind ledger at
   exact envelope size as every protocol frame. *)
let charge_field_frame t ~node (frame : Field.Concentrator.frame) =
  let payload =
    match frame with
    | `Advert a -> Field_advert a
    | `Report r -> Field_report r
  in
  let stripe = Sim.Engine.exec_stripe t.engine in
  let size_bytes = Wire.Envelope.size ~sender:node payload in
  let k = Wire.Message.kind_index payload in
  let wf = t.wire_frames.(stripe) and wb = t.wire_bytes.(stripe) in
  wf.(k) <- wf.(k) + 1;
  wb.(k) <- wb.(k) + size_bytes

let wire_traffic t =
  let stripes = Array.length t.wire_frames in
  let acc = ref [] in
  for k = Wire.Message.kind_count - 1 downto 0 do
    let frames = ref 0 and bytes = ref 0 in
    for s = 0 to stripes - 1 do
      frames := !frames + t.wire_frames.(s).(k);
      bytes := !bytes + t.wire_bytes.(s).(k)
    done;
    if !frames > 0 then
      acc := (Wire.Message.kind_name k, !frames, !bytes) :: !acc
  done;
  List.sort
    (fun (ka, _, ba) (kb, _, bb) ->
      match compare bb ba with 0 -> compare ka kb | c -> c)
    !acc

let wire_decode_errors t = t.wire_decode_errors

(* Decode-on-delivery (debug): the simulator transports payloads by
   value, so re-encoding at the receiver is byte-identical to carrying
   the sender's frame. Round-tripping every delivered payload through
   [Wire.Envelope] catches any codec that is not the identity. *)
let debug_check_delivery t ~sender payload =
  if t.cfg.wire_debug then
    match Wire.Envelope.decode (Wire.Envelope.encode ~sender payload) with
    | Ok env
      when env.Wire.Envelope.sender = sender
           && Wire.Message.equal env.Wire.Envelope.message payload ->
      ()
    | Ok _ | Error _ -> t.wire_decode_errors <- t.wire_decode_errors + 1

let submit_to_replica t r update =
  match t.replicas.(r) with
  | Prime_replica p -> Prime.Replica.submit p update
  | Pbft_replica p -> Pbft.Replica.submit p update

let ingest_client_update t r u =
  (* Origin milestone: the first replica to receive the update ends
     the ingress phase (first-writer-wins in the sink). *)
  if Telemetry.Sink.enabled t.telemetry then
    Telemetry.Sink.update_at_origin t.telemetry ~trace:(trace_of_update u)
      ~now:(Sim.Engine.now t.engine);
  submit_to_replica t r u

(* Protocol-frame dispatch within one epoch: the sender's global node
   id is translated into its rank in that epoch's membership; frames
   from non-members (retired or not-yet-admitted ids) are dropped. *)
let handle_protocol t r ~from ~epoch payload =
  match Hashtbl.find_opt t.rank_maps epoch with
  | None -> bump_stale_epoch t
  | Some (_, rank_of) ->
    let fr =
      if from >= 0 && from < Array.length rank_of then rank_of.(from) else -1
    in
    if fr < 0 then bump_stale_epoch t
    else (
      match (t.replicas.(r), payload) with
      | Prime_replica p, Prime_msg (_, m) -> Prime.Replica.handle p ~from:fr m
      | Pbft_replica p, Pbft_msg (_, m) -> Pbft.Replica.handle p ~from:fr m
      | _, _ -> ())

(* Replica-side reply aggregation (only armed when max_batch > 1):
   signed replies queue per replica and ship grouped by destination,
   amortising the envelope while keeping per-reply signing cost. *)
let flush_replies t r =
  let acc = t.reply_accs.(r) in
  if not (Bft.Batch.is_empty acc) then begin
    let items = Bft.Batch.take_all acc in
    let per_dst = Hashtbl.create 7 in
    let dsts = ref [] in
    List.iter
      (fun (dst, reply) ->
        match Hashtbl.find_opt per_dst dst with
        | Some q -> Queue.add reply q
        | None ->
          let q = Queue.create () in
          Queue.add reply q;
          Hashtbl.replace per_dst dst q;
          dsts := dst :: !dsts)
      items;
    List.iter
      (fun dst ->
        let payload =
          match List.of_seq (Queue.to_seq (Hashtbl.find per_dst dst)) with
          | [ reply ] -> Replica_reply reply
          | rs -> Reply_batch rs
        in
        send_payload t ~src_node:(node_of_replica t r) ~dst_node:dst payload)
      (List.rev !dsts)
  end

let flush_replies_due t r =
  if not (faults t r).Bft.Faults.crashed then
    match Bft.Batch.deadline_us t.reply_accs.(r) with
    | Some d when d <= Sim.Engine.now t.engine -> flush_replies t r
    | Some _ | None -> ()

let enqueue_reply t r ~dst_node reply =
  let acc = t.reply_accs.(r) in
  Bft.Batch.push acc ~now:(Sim.Engine.now t.engine) (dst_node, reply);
  if Bft.Batch.full acc then flush_replies t r
  else if Bft.Batch.length acc = 1 then
    ignore
      (Sim.Engine.schedule
         ~shard:(1 + t.replica_sites.(r))
         t.engine ~delay_us:t.reply_batch.Bft.Batch.max_delay_us
         (fun () -> flush_replies_due t r)
        : Sim.Engine.timer)

(* Reply emission: called from the execute callback of replica [r].
   Shares are signed with the replica's OWN epoch's threshold group —
   across a cutover the boundary batch is acknowledged by the outgoing
   group while post-boundary executions use the new one; client
   endpoints hold both and try each. *)
let emit_replies t r ~exec_index ~(update : Bft.Update.t) effect =
  let state = Scada.Master.state_digest t.masters.(r) in
  let update_digest = Bft.Update.digest update in
  let group = group_for t r in
  let send_reply ~body ~dst_node =
    let digest = Scada.Reply.body_digest ~exec_index ~update_digest ~state ~body in
    let share = Cryptosim.Threshold.sign_share group ~member:r digest in
    let reply =
      {
        Scada.Reply.replica = r;
        update_key = Bft.Update.key update;
        exec_index;
        digest;
        share;
        body;
      }
    in
    (* Charge the threshold-share signing cost before the send (the
       share is per-update even when the envelope is batched). *)
    ignore
      (Sim.Engine.schedule
         ~shard:(1 + t.replica_sites.(r))
         t.engine ~delay_us:t.share_cost_us
         (fun () ->
           if not (faults t r).Bft.Faults.crashed then begin
             if Telemetry.Sink.enabled t.telemetry then
               Telemetry.Sink.update_reply_sent t.telemetry
                 ~trace:(trace_of_update update) ~replica:r
                 ~now:(Sim.Engine.now t.engine);
             if Bft.Batch.is_singleton t.reply_batch then
               send_payload t ~src_node:(node_of_replica t r)
                 ~dst_node (Replica_reply reply)
             else enqueue_reply t r ~dst_node reply
           end)
        : Sim.Engine.timer)
  in
  let client_node = node_of_client t update.Bft.Update.client in
  match effect with
  | Scada.Master.No_effect | Scada.Master.Read_result _ ->
    send_reply ~body:Scada.Reply.Ack ~dst_node:client_node
  | Scada.Master.Device_command { rtu; command } ->
    send_reply ~body:Scada.Reply.Ack ~dst_node:client_node;
    if rtu >= 0 && rtu < t.cfg.substations then begin
      let frame = Scada.Dnp3.encode { Scada.Dnp3.dest = rtu; src = 0xF0; app = command } in
      send_reply
        ~body:(Scada.Reply.Command { rtu; frame })
        ~dst_node:(node_of_client t rtu)
    end

(* ------------------------------------------------------------------ *)
(* Runtime tuning plane: the deployment side of [Control.Knobs].
   Every entry point below is reached ONLY through the validated
   [Knobs.request] path (see [install_actuator]); none of them is
   called when no knob change is issued, so a controller-less run
   never executes any of this code.                                    *)

(* Swap the live dissemination mode for all future sends. Routes cached
   for the previous mode are dropped; recomputation is a pure function
   of the unchanged topology. In-flight frames keep the route captured
   at submit time (the frame carries it), honouring the old mode. *)
let set_dissemination t mode =
  if mode <> t.dissemination then begin
    t.dissemination <- mode;
    Overlay.Net.invalidate_routes t.net
  end

(* Swap the aggregation policy everywhere it is live: the per-replica
   reply accumulators, the Prime pre-order accumulators, and the client
   endpoints (proxies + HMIs). Accumulators whose buffered generation
   became due under the new policy drain immediately; stale generation
   timers re-check their deadline, so nothing flushes twice. (Field
   concentrators keep their construction-time policy: their aggregation
   cadence is scan-synchronous, not delay-driven.) *)
let apply_batch_policy t policy =
  t.reply_batch <- policy;
  Array.iteri
    (fun r acc ->
      Bft.Batch.set_policy acc policy;
      if t.epoch_of.(r) >= 0 && not (faults t r).Bft.Faults.crashed then
        if Bft.Batch.full acc then flush_replies t r else flush_replies_due t r)
    t.reply_accs;
  Array.iter
    (fun instance ->
      match instance with
      | Prime_replica p -> Prime.Replica.set_batch_policy p policy
      | Pbft_replica _ -> ())
    t.replicas;
  Array.iter
    (fun p -> Scada.Endpoint.set_batch_policy (Scada.Proxy.endpoint p) policy)
    t.proxies;
  Array.iter
    (fun h -> Scada.Endpoint.set_batch_policy (Scada.Hmi.endpoint h) policy)
    t.hmis

(* Iterate the current epoch's live Prime instances. *)
let iter_live_prime t f =
  Array.iter
    (fun r ->
      if t.epoch_of.(r) = t.cur_epoch && not (faults t r).Bft.Faults.crashed
      then
        match t.replicas.(r) with
        | Prime_replica p when not (Prime.Replica.halted p) -> f p
        | Prime_replica _ | Pbft_replica _ -> ())
    t.cur_members

let install_actuator t =
  Control.Knobs.set_actuator t.knobs (fun req ->
      match req with
      | Control.Knobs.Set_routing r ->
        set_dissemination t
          (match r with
          | Control.Knobs.Shortest -> Overlay.Net.Shortest
          | Control.Knobs.Kdisjoint k -> Overlay.Net.Redundant k
          | Control.Knobs.Flooding -> Overlay.Net.Flood);
        Ok ()
      | Control.Knobs.Set_max_batch m ->
        let policy =
          if m <= 1 then Bft.Batch.singleton
          else
            Bft.Batch.create
              ~max_delay_us:
                (if t.reply_batch.Bft.Batch.max_delay_us > 0 then
                   t.reply_batch.Bft.Batch.max_delay_us
                 else t.cfg.batch_delay_us)
              ~max_batch:m ()
        in
        apply_batch_policy t policy;
        Ok ()
      | Control.Knobs.Set_batch_delay_us d ->
        if Bft.Batch.is_singleton t.reply_batch then
          Error "batching disabled (max_batch = 1); set max_batch first"
        else begin
          apply_batch_policy t
            (Bft.Batch.create ~max_delay_us:d
               ~max_batch:t.reply_batch.Bft.Batch.max_batch ());
          Ok ()
        end
      | Control.Knobs.Set_recovery_period_us p -> (
        match t.scheduler with
        | None -> Error "proactive recovery not enabled"
        | Some s ->
          Recovery.Scheduler.set_rotation_period s p;
          Ok ())
      | Control.Knobs.Set_tat_threshold_us us -> (
        match t.cfg.protocol with
        | Pbft_protocol -> Error "TAT knobs require the Prime protocol"
        | Prime_protocol ->
          iter_live_prime t (fun p -> Prime.Replica.set_tat_threshold p us);
          Ok ())
      | Control.Knobs.Set_tat_violations k -> (
        match t.cfg.protocol with
        | Pbft_protocol -> Error "TAT knobs require the Prime protocol"
        | Prime_protocol ->
          iter_live_prime t (fun p ->
              Prime.Replica.set_tat_violations_to_suspect p k);
          Ok ())
      | Control.Knobs.Demote_leader -> (
        match t.cfg.protocol with
        | Pbft_protocol -> Error "demotion requires the Prime protocol"
        | Prime_protocol ->
          let demoted = ref 0 in
          iter_live_prime t (fun p ->
              if Prime.Replica.demote_leader p then incr demoted);
          if !demoted > 0 then Ok ()
          else Error "no replica demoted (already suspected or leader)"))

(* One controller tick: rebuild the attribution tables from the shared
   sink, let every local estimator fold in its replica's view, and hand
   the verdict vector to the global controller. *)
let controller_tick t =
  match t.global_ctl with
  | None -> ()
  | Some g ->
    let a = Telemetry.Attribution.build t.telemetry in
    let verdicts =
      Array.map
        (fun l ->
          let r = Control.Local.replica l in
          let tat_alarm =
            match t.replicas.(r) with
            | Prime_replica p -> Prime.Replica.suspected p
            | Pbft_replica _ -> false
          in
          Control.Local.observe l ~tat_alarm a)
        t.locals
    in
    Control.Global.step g ~now_us:(Sim.Engine.now t.engine) verdicts

(* State transfer: adopt a (protocol snapshot, master state) pair
   vouched for by f+1 peers of the replica's OWN epoch. The two halves
   are captured atomically (same simulation instant), so a consistent
   pair digest identifies a consistent joint state. Used when a replica
   returns from proactive recovery AND when a disconnected site
   reconnects. *)
let resync_replica t r =
  if t.epoch_of.(r) < 0 then ()
  else
    match t.replicas.(r) with
    | Pbft_replica _ -> ()
    | Prime_replica prime when not (Prime.Replica.halted prime) ->
      let e = t.epoch_of.(r) in
      let cert_f =
        match Member.Directory.cert_of_epoch t.directory e with
        | Some c -> Member.Cert.f c
        | None -> t.cfg.quorum.Bft.Quorum.f
      in
      let peers_of_epoch =
        match Hashtbl.find_opt t.rank_maps e with
        | Some (members, _) -> Array.to_list members
        | None -> []
      in
      let prime_of p =
        match t.replicas.(p) with
        | Prime_replica q -> q
        | Pbft_replica _ -> assert false
      in
      let source =
        {
          Recovery.State_transfer.peers =
            List.filter
              (fun p ->
                p <> r
                && t.epoch_of.(p) = e
                && not (faults t p).Bft.Faults.crashed)
              peers_of_epoch;
          fetch =
            (fun peer ->
              Some
                ( Prime.Replica.snapshot (prime_of peer),
                  Scada.Master.clone t.masters.(peer) ));
          digest_of =
            (fun (snap, master) ->
              Cryptosim.Digest.combine
                (Prime.Replica.snapshot_digest snap)
                (Scada.Master.snapshot_digest master));
          newer =
            (fun (a, _) (b, _) ->
              a.Prime.Replica.snap_exec_count > b.Prime.Replica.snap_exec_count);
        }
      in
      (match Recovery.State_transfer.select ~f:cert_f source with
      | Recovery.State_transfer.Installed (snap, master) ->
        (* Install only a strictly newer snapshot. Re-installing our own
           (or an equal) state is not a harmless no-op: it discards
           committed-but-unapplied slots and pre-order bodies, and a
           leader doing it re-proposes sequence numbers that other
           replicas may already hold committed — a safety hazard. *)
        if
          snap.Prime.Replica.snap_exec_count
          > Bft.Exec_log.length (Prime.Replica.exec_log prime)
        then begin
          Prime.Replica.install_snapshot prime snap;
          t.masters.(r) <- master;
          (* Charge the transfer's bandwidth: the adopted state is
             serialised (exec count + every known RTU status, via the
             SCADA codec) and shipped as wire chunks from a live donor,
             so recovery storms compete with protocol traffic for links. *)
          match source.Recovery.State_transfer.peers with
          | [] -> ()
          | donor :: _ ->
            let blob =
              let b = Buffer.create 256 in
              Buffer.add_string b
                (Printf.sprintf "exec:%d;" (Scada.Master.applied_count master));
              List.iter
                (fun rtu ->
                  match Scada.Master.last_status master ~rtu with
                  | None -> ()
                  | Some status ->
                    Buffer.add_string b
                      (Scada.Op.encode (Scada.Op.Status_report status)))
                (Scada.Master.known_rtus master);
              Buffer.contents b
            in
            List.iter
              (fun chunk ->
                send_payload t ~src_node:(node_of_replica t donor)
                  ~dst_node:(node_of_replica t r) (Transfer_chunk chunk))
              (Recovery.State_transfer.chunk_blob ~xfer_id:r ~chunk_bytes:1024
                 blob)
        end
      | Recovery.State_transfer.No_quorum _ ->
        (* Rare: peers disagree transiently; rejoin from live traffic and
           catch up through slot requests / checkpoints. *)
        ())
    | Prime_replica _ -> () (* halted: the successor epoch owns catch-up *)

(* Serialised master state shipped during a join (exec count + every
   known RTU status) — the byte carrier whose chunks the ARQ guards. *)
let master_blob master =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "exec:%d;" (Scada.Master.applied_count master));
  List.iter
    (fun rtu ->
      match Scada.Master.last_status master ~rtu with
      | None -> ()
      | Some status ->
        Buffer.add_string b (Scada.Op.encode (Scada.Op.Status_report status)))
    (Scada.Master.known_rtus master);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Epoch cutover machinery.

   A reconfiguration command travels through the ordered stream like
   any SCADA update. Executing it makes every replica of that epoch:
   halt its instance (the in-progress eligibility batch completes, so
   the halt point — the epoch boundary — lands on the same execution
   index everywhere), derive/adopt the successor certificate with the
   boundary stamped in, and restart as a fresh protocol instance over
   the new membership, carrying application state and the exactly-once
   delivery cursors across. The first replica to switch advances the
   shared directory; later switchers verify their boundary against the
   recorded certificate — any disagreement is latched as a violation. *)

let rec ensure_epoch_state t cert ~announcer =
  let e = Member.Cert.epoch cert in
  if not (Hashtbl.mem t.rank_maps e) then begin
    let members = Array.of_list (Member.Cert.members cert) in
    let rank_of = Array.make t.universe (-1) in
    Array.iteri
      (fun i g -> if g >= 0 && g < t.universe then rank_of.(g) <- i)
      members;
    Hashtbl.replace t.rank_maps e (members, rank_of)
  end;
  if not (List.mem_assoc e t.groups) then
    t.groups <-
      ( e,
        Cryptosim.Threshold.create_group
          ~seed:(Int64.logxor t.cfg.seed (Int64.of_int (e * 0x9E3779B9)))
          ~members:(Member.Cert.members cert)
          ~threshold:(Member.Cert.reply_threshold cert) )
      :: t.groups;
  if e > t.cur_epoch then promote_current t cert ~announcer

and promote_current t cert ~announcer =
  let e = Member.Cert.epoch cert in
  let members, _ = Hashtbl.find t.rank_maps e in
  t.cur_epoch <- e;
  t.cur_members <- members;
  let group = List.assoc e t.groups in
  Array.iter
    (fun p -> Scada.Endpoint.push_group (Scada.Proxy.endpoint p) group)
    t.proxies;
  Array.iter
    (fun h -> Scada.Endpoint.push_group (Scada.Hmi.endpoint h) group)
    t.hmis;
  if Telemetry.Sink.enabled t.telemetry then
    Telemetry.Sink.set_quorums t.telemetry
      ~order:(Member.Cert.quorum_size cert)
      ~reply:(Member.Cert.reply_threshold cert);
  t.cutovers <-
    (e, Member.Cert.boundary_exec cert, Sim.Engine.now t.engine) :: t.cutovers;
  List.iter (fun f -> f e) t.epoch_listeners;
  (* Gossip the certificate so every daemon (including dark standby
     nodes, once booted) can audit the chain; install is idempotent. *)
  for peer = 0 to t.universe - 1 do
    if peer <> announcer then
      send_payload t ~src_node:(node_of_replica t announcer)
        ~dst_node:(node_of_replica t peer) (Cert_frame cert)
  done;
  arm_reconciler t

and arm_reconciler t =
  if not t.reconciler_armed then begin
    t.reconciler_armed <- true;
    ignore
      (Sim.Engine.periodic t.engine ~interval_us:271_000 (fun () ->
           reconcile t)
        : Sim.Engine.timer)
  end

(* Periodic membership reconciliation (armed at the first cutover, so a
   never-reconfigured system schedules nothing): members of the current
   epoch stuck at an older one (or dark standby ids just admitted) are
   caught up through a chunk-gated join; replicas the current epoch
   dropped are halted and their overlay ids retired. *)
and reconcile t =
  let cert = Member.Directory.current t.directory in
  let e = Member.Cert.epoch cert in
  let now = Sim.Engine.now t.engine in
  match Hashtbl.find_opt t.rank_maps e with
  | None -> ()
  | Some (_, rank_of) ->
    for g = 0 to t.universe - 1 do
      let is_member = rank_of.(g) >= 0 in
      if is_member then begin
        if t.epoch_of.(g) = e || t.pending_reconfig.(g) <> None then
          t.lag_since.(g) <- -1
        else if t.lag_since.(g) < 0 then t.lag_since.(g) <- now
        else if now - t.lag_since.(g) >= 500_000 then begin_join t g
      end
      else begin
        t.lag_since.(g) <- -1;
        if t.epoch_of.(g) >= 0 && t.epoch_of.(g) < e then retire_replica t g
      end
    done

and retire_replica t g =
  halt_instance t g;
  Overlay.Net.retire_node t.net (node_of_replica t g);
  t.epoch_of.(g) <- -1;
  t.pending_reconfig.(g) <- None;
  t.lag_since.(g) <- -1

(* Start a joining replica's catch-up: pick a donor state vouched by
   f+1 members of the NEW epoch, ship it as chunks across the overlay,
   and only install once every chunk has arrived (see [join_session]).
   Lost chunks are re-requested under the bounded-backoff ARQ. *)
and begin_join t g =
  let already =
    Hashtbl.fold
      (fun _ s acc -> acc || ((not s.js_done) && s.js_replica = g))
      t.sessions false
  in
  if not already then begin
    let cert = Member.Directory.current t.directory in
    let e = Member.Cert.epoch cert in
    match Hashtbl.find_opt t.rank_maps e with
    | None -> ()
    | Some (members, _) ->
      halt_instance t g;
      Overlay.Net.unretire_node t.net (node_of_replica t g);
      Overlay.Net.restore_node t.net (node_of_replica t g);
      (faults t g).Bft.Faults.crashed <- false;
      let prime_of p =
        match t.replicas.(p) with
        | Prime_replica q -> Some q
        | Pbft_replica _ -> None
      in
      let peers =
        Array.to_list members
        |> List.filter (fun p ->
               p <> g
               && t.epoch_of.(p) = e
               && (not (faults t p).Bft.Faults.crashed)
               && (not (instance_halted t p))
               && Overlay.Net.node_alive t.net (node_of_replica t p))
      in
      let source =
        {
          Recovery.State_transfer.peers;
          fetch =
            (fun peer ->
              match prime_of peer with
              | None -> None
              | Some q ->
                Some
                  ( Prime.Replica.snapshot q,
                    Scada.Master.clone t.masters.(peer) ));
          digest_of =
            (fun (snap, master) ->
              Cryptosim.Digest.combine
                (Prime.Replica.snapshot_digest snap)
                (Scada.Master.snapshot_digest master));
          newer =
            (fun (a, _) (b, _) ->
              a.Prime.Replica.snap_exec_count > b.Prime.Replica.snap_exec_count);
        }
      in
      (match Recovery.State_transfer.select ~f:(Member.Cert.f cert) source with
      | Recovery.State_transfer.No_quorum _ ->
        () (* not enough live vouchers yet; the reconciler retries *)
      | Recovery.State_transfer.Installed (snap, master) -> (
        match peers with
        | [] -> ()
        | donor :: _ ->
          let xfer = t.next_xfer in
          t.next_xfer <- xfer + 1;
          let chunks =
            Array.of_list
              (Recovery.State_transfer.chunk_blob ~xfer_id:xfer
                 ~chunk_bytes:1024 (master_blob master))
          in
          let s =
            {
              js_xfer = xfer;
              js_replica = g;
              js_epoch = e;
              js_donor = donor;
              js_snap = snap;
              js_master = master;
              js_chunks = chunks;
              js_received = Array.make (Array.length chunks) false;
              js_done = false;
            }
          in
          Hashtbl.replace t.sessions xfer s;
          Array.iteri
            (fun i c ->
              send_payload t ~src_node:(node_of_replica t donor)
                ~dst_node:(node_of_replica t g) (Transfer_chunk c);
              arm_chunk_timer t xfer i 0)
            chunks))
  end

and arm_chunk_timer t xfer i attempt =
  match
    Recovery.State_transfer.rerequest_delay_us t.arq ~xfer_id:xfer
      ~chunk_index:i ~attempt
  with
  | None ->
    (* Retry budget exhausted: abandon the session; the reconciler
       starts a fresh one (new xfer id, fresh backoff schedule). *)
    Hashtbl.remove t.sessions xfer
  | Some delay ->
    let shard =
      match Hashtbl.find_opt t.sessions xfer with
      | Some s -> 1 + t.replica_sites.(s.js_replica)
      | None -> 0
    in
    ignore
      (Sim.Engine.schedule ~shard t.engine ~delay_us:delay (fun () ->
           match Hashtbl.find_opt t.sessions xfer with
           | None -> ()
           | Some s ->
             if (not s.js_done) && not s.js_received.(i) then begin
               if Overlay.Net.node_alive t.net (node_of_replica t s.js_donor)
               then
                 send_payload t ~src_node:(node_of_replica t s.js_donor)
                   ~dst_node:(node_of_replica t s.js_replica)
                   (Transfer_chunk s.js_chunks.(i));
               arm_chunk_timer t xfer i (attempt + 1)
             end)
        : Sim.Engine.timer)

and complete_join t s =
  s.js_done <- true;
  Hashtbl.remove t.sessions s.js_xfer;
  (* Install only if the epoch is still current — otherwise the
     reconciler restarts the join against the newer membership. *)
  if Member.Directory.epoch t.directory = s.js_epoch then
    match Member.Directory.cert_of_epoch t.directory s.js_epoch with
    | None -> ()
    | Some cert ->
      t.masters.(s.js_replica) <- s.js_master;
      install_member_instance t s.js_replica ~cert ~snap:s.js_snap

(* Replace replica [r]'s instance with a fresh one for [cert]'s epoch,
   seeded from [snap] (a boundary-carried snapshot on cutover, a donor
   snapshot on join), and start it. *)
and install_member_instance t r ~cert ~snap =
  let e = Member.Cert.epoch cert in
  ensure_epoch_state t cert ~announcer:r;
  let _, rank_of = Hashtbl.find t.rank_maps e in
  if rank_of.(r) < 0 then retire_replica t r
  else begin
    let inst = t.make_member_instance ~cert ~rank:rank_of.(r) ~global:r in
    (match inst with
    | Prime_replica p ->
      Prime.Replica.install_snapshot p snap;
      Prime.Replica.set_on_fall_behind p (fun () ->
          ignore
            (Sim.Engine.schedule ~shard:(1 + t.replica_sites.(r)) t.engine
               ~delay_us:0 (fun () ->
                 if
                   (not (faults t r).Bft.Faults.crashed)
                   && t.epoch_of.(r) >= 0
                 then resync_replica t r)
              : Sim.Engine.timer))
    | Pbft_replica _ -> ());
    t.replicas.(r) <- inst;
    t.epoch_of.(r) <- e;
    t.lag_since.(r) <- -1;
    match inst with
    | Prime_replica p -> Prime.Replica.start p
    | Pbft_replica p -> Pbft.Replica.start p
  end

(* The deferred half of a cutover (scheduled at delay 0 from the
   execute callback, so the boundary batch has fully drained): stamp
   the boundary, advance or verify the directory, and switch. *)
and switch_replica t r =
  match t.pending_reconfig.(r) with
  | None -> ()
  | Some (e, actions) -> (
    t.pending_reconfig.(r) <- None;
    let boundary = Bft.Exec_log.length (exec_log t r) in
    match Member.Directory.cert_of_epoch t.directory e with
    | None ->
      latch_violation t (Printf.sprintf "switch: unknown epoch %d" e)
    | Some prev -> (
      let next_result =
        match Member.Directory.cert_of_epoch t.directory (e + 1) with
        | Some existing ->
          (* A peer already advanced the chain: our independently
             reached boundary must agree with the recorded one. *)
          if Member.Cert.boundary_exec existing = boundary then Ok existing
          else
            Error
              (Printf.sprintf
                 "epoch %d boundary disagreement: replica %d halted at %d, \
                  certificate records %d"
                 (e + 1) r boundary
                 (Member.Cert.boundary_exec existing))
        | None ->
          Member.Directory.advance t.directory actions
            ~signers:(Member.Cert.members prev) ~boundary_exec:boundary
      in
      match next_result with
      | Error msg -> latch_violation t msg
      | Ok cert -> (
        match t.replicas.(r) with
        | Pbft_replica _ -> ()
        | Prime_replica p ->
          (* Carry execution state and delivery cursors across the
             boundary; the pre-order space (cursor, matrix, view) is
             fresh — the new epoch renumbers from scratch. *)
          let old = Prime.Replica.snapshot p in
          let n_new = Member.Cert.n cert in
          let snap =
            {
              old with
              Prime.Replica.snap_cursor = Prime.Matrix.empty_vector ~n:n_new;
              snap_last_applied = 0;
              snap_cum_matrix = Prime.Matrix.empty ~n:n_new;
              snap_view = 0;
            }
          in
          install_member_instance t r ~cert ~snap)))

(* Executing an ordered [Op.Reconfig]: validate it against the
   replica's own epoch certificate (a malformed or inapplicable command
   is a deterministic no-op — every replica rejects it identically),
   then halt and schedule the switch. *)
let note_reconfig t r ~payload =
  match t.cfg.protocol with
  | Pbft_protocol -> () (* reconfiguration requires Prime *)
  | Prime_protocol ->
    if t.pending_reconfig.(r) = None && t.epoch_of.(r) >= 0 then (
      match Member.Reconfig.decode payload with
      | Error _ -> ()
      | Ok actions -> (
        let e = t.epoch_of.(r) in
        match Member.Directory.cert_of_epoch t.directory e with
        | None -> ()
        | Some cert ->
          let in_universe =
            List.for_all
              (function
                | Member.Reconfig.Add_site { members; _ } ->
                  List.for_all (fun m -> m >= 0 && m < t.universe) members
                | Member.Reconfig.Set_resilience _
                | Member.Reconfig.Remove_site _ | Member.Reconfig.Promote _ ->
                  true)
              actions
          in
          if in_universe then (
            (* Dry-run against the epoch's own certificate: boundary
               and signers are stand-ins, only action semantics are
               checked here. *)
            match
              Member.Reconfig.apply cert actions
                ~signers:(Member.Cert.members cert)
                ~boundary_exec:(Member.Cert.boundary_exec cert)
            with
            | Error _ -> ()
            | Ok _ ->
              t.pending_reconfig.(r) <- Some (e, actions);
              halt_instance t r;
              ignore
                (Sim.Engine.schedule ~shard:(1 + t.replica_sites.(r)) t.engine
                   ~delay_us:0 (fun () -> switch_replica t r)
                  : Sim.Engine.timer))))

let execute_of t r exec_index update =
  (* Execution milestone: the reply-quorum-th distinct replica to get
     here fixes the end of the ordering phase (sink-side count). *)
  if Telemetry.Sink.enabled t.telemetry then
    Telemetry.Sink.update_executed t.telemetry ~trace:(trace_of_update update)
      ~replica:r ~now:(Sim.Engine.now t.engine);
  match Scada.Op.of_update update with
  | Error _ -> ()
  | Ok op ->
    let effect = Scada.Master.apply t.masters.(r) op in
    emit_replies t r ~exec_index ~update effect;
    (match op with
    | Scada.Op.Reconfig { payload } -> note_reconfig t r ~payload
    | Scada.Op.Status_report _ | Scada.Op.Breaker_command _
    | Scada.Op.Tap_command _ | Scada.Op.Hmi_read _ | Scada.Op.Field_report _
    | Scada.Op.Field_write _ ->
      ())

let handle_transfer_chunk t r (c : Recovery.State_transfer.chunk) =
  match Hashtbl.find_opt t.sessions c.Recovery.State_transfer.xfer_id with
  | None ->
    (* Legacy resync carrier (or a stale session): the frames exist to
       charge the transfer's bandwidth; installation was synchronous. *)
    ()
  | Some s ->
    if (not s.js_done) && s.js_replica = r then begin
      let i = c.Recovery.State_transfer.chunk_index in
      if i >= 0 && i < Array.length s.js_received then begin
        s.js_received.(i) <- true;
        if Array.for_all Fun.id s.js_received then complete_join t s
      end
    end

let handle_replica_msg t r ~from payload =
  match payload with
  | Epoch_frame (e, inner) ->
    (* Frames are bound to their sender's epoch: anything not matching
       the receiving instance's epoch is inadmissible. *)
    if t.epoch_of.(r) = e then handle_protocol t r ~from ~epoch:e inner
    else bump_stale_epoch t
  | Prime_msg _ | Pbft_msg _ ->
    (* Bare protocol frames are the genesis-epoch encoding. *)
    if t.epoch_of.(r) = 0 then handle_protocol t r ~from ~epoch:0 payload
    else bump_stale_epoch t
  | Client_update u -> ingest_client_update t r u
  | Client_batch us -> List.iter (ingest_client_update t r) us
  | Transfer_chunk c -> handle_transfer_chunk t r c
  | Cert_frame c -> (
    match Member.Directory.install t.directory c with
    | Ok () | Error _ -> ())
  (* Field-link frames never reach replicas: they terminate at the
     concentrator, which folds them into ordered Field_report ops. *)
  | Replica_reply _ | Reply_batch _ | Field_advert _ | Field_report _ -> ()

(* Replica environment for one (epoch, rank) instance. A protocol
   broadcast hands the same physical message to every recipient;
   memoising the wrapped payload by the inner message's physical
   identity lets [send_payload]'s size memo hit on every recipient
   after the first. Epoch > 0 frames travel inside [Epoch_frame] —
   the genesis epoch keeps the bare (seed-identical) encoding. *)
let env_for t ~epoch ~rank ~(members : int array) wrap =
  let wrap_memo = ref None in
  let wrap_shared msg =
    match !wrap_memo with
    | Some (m, p) when m == msg -> p
    | _ ->
      let inner = wrap msg in
      let p = if epoch > 0 then Epoch_frame (epoch, inner) else inner in
      wrap_memo := Some (msg, p);
      p
  in
  {
    Bft.Env.self = rank;
    replica_count = Array.length members;
    send =
      (fun dst msg ->
        send_payload t ~src_node:members.(rank) ~dst_node:members.(dst)
          (wrap_shared msg));
    now_us = (fun () -> Sim.Engine.now t.engine);
    set_timer =
      (* A replica's protocol timers belong to its site's heap. *)
      (let shard = 1 + t.replica_sites.(members.(rank)) in
       fun delay_us f -> Sim.Engine.schedule ~shard t.engine ~delay_us f);
    trace = (fun _ -> ());
    telemetry = t.telemetry;
  }

let create cfg =
  let n = List.fold_left ( + ) 0 cfg.site_sizes in
  let universe = n + List.fold_left ( + ) 0 cfg.standby_site_sizes in
  if n <> cfg.quorum.Bft.Quorum.n then
    invalid_arg "System.create: site_sizes do not sum to quorum n";
  if cfg.control_centers < 1 || cfg.control_centers > List.length cfg.site_sizes
  then invalid_arg "System.create: bad control_centers";
  let batch_policy =
    if cfg.max_batch <= 1 then Bft.Batch.singleton
    else Bft.Batch.create ~max_delay_us:cfg.batch_delay_us ~max_batch:cfg.max_batch ()
  in
  let topo, site_members = build_topology cfg in
  (* Ownership partition: each replica site (active and standby) is a
     shard; all field devices (substation proxies, HMIs) pool into one
     trailing "field" shard. The engine gets one heap per shard plus
     the control heap ({!Sim.Shard.engine_shards}); the partition never
     affects event order — see the Shard/Engine docs. *)
  let base_sites = List.length cfg.site_sizes + List.length cfg.standby_site_sizes in
  let part =
    Sim.Shard.make ~shards:(base_sites + 1)
      ~owner:(fun node ->
        min (Overlay.Topology.site_of topo node) base_sites)
      ~nodes:(Overlay.Topology.node_count topo)
  in
  let world =
    Sim.World.create ~seed:cfg.seed ~shards:(Sim.Shard.engine_shards part) ()
  in
  Sim.World.set_partition world part;
  let engine = Sim.World.engine world in
  let net = Overlay.Net.create ~per_source_cap:256 ~partition:part engine topo () in
  let sink =
    if cfg.telemetry then begin
      let s =
        Telemetry.Sink.create ~capacity:cfg.telemetry_capacity ~enabled:true ()
      in
      (* The orderable milestone needs an ordering quorum of pre-order
         body stores; the execution milestone needs the reply (f+1)
         quorum of distinct executions. *)
      Telemetry.Sink.set_quorums s
        ~order:(Bft.Quorum.quorum_size cfg.quorum)
        ~reply:(Bft.Quorum.reply_threshold cfg.quorum);
      Overlay.Net.set_telemetry net s;
      s
    end
    else
      (* A fresh disabled sink per instance, NOT the shared
         [Telemetry.Sink.null]: [set_quorums] below writes to the sink
         even when telemetry is off, and writing through a toplevel
         value would couple (and, across domains, race) otherwise
         independent system instances. *)
      Telemetry.Sink.create ~capacity:1 ~pending_cap:1 ~enabled:false ()
  in
  let group =
    Cryptosim.Threshold.create_group ~seed:cfg.seed
      ~members:(List.init n Fun.id)
      ~threshold:(Bft.Quorum.reply_threshold cfg.quorum)
  in
  let replica_sites = Array.make universe 0 in
  List.iteri
    (fun site members -> List.iter (fun r -> replica_sites.(r) <- site) members)
    site_members;
  let genesis = genesis_cert cfg in
  let directory = Member.Directory.create ~genesis in
  let identity = Array.init n Fun.id in
  let rank_maps = Hashtbl.create 7 in
  let rank_of0 = Array.make universe (-1) in
  Array.iteri (fun i g -> rank_of0.(g) <- i) identity;
  Hashtbl.replace rank_maps 0 (identity, rank_of0);
  let t =
    {
      cfg;
      world;
      engine;
      topo;
      net;
      group;
      n;
      universe;
      replicas = [||];
      masters = Array.init universe (fun _ -> Scada.Master.create ());
      proxies = [||];
      hmis = [||];
      concentrators = [||];
      replica_sites;
      hist = Stats.Histogram.create ();
      series = Stats.Timeseries.create ();
      submitted = 0;
      diversity =
        Recovery.Diversity.create ~variants:cfg.diversity_variants ~n
          ~rng:(Sim.Engine.rng engine);
      scheduler = None;
      recovery_listeners = [];
      share_cost_us = Cryptosim.Threshold.default_cost.Cryptosim.Threshold.share_us;
      reply_batch = batch_policy;
      reply_accs = Array.init universe (fun _ -> Bft.Batch.acc batch_policy);
      dissemination = cfg.dissemination;
      knobs = Control.Knobs.create ();
      locals = [||];
      global_ctl = None;
      wire_frames =
        Array.init (Sim.Engine.shards engine) (fun _ ->
            Array.make Wire.Message.kind_count 0);
      wire_bytes =
        Array.init (Sim.Engine.shards engine) (fun _ ->
            Array.make Wire.Message.kind_count 0);
      (* Fresh dummy payloads: physically distinct from anything ever
         sent, so each stripe's first real send always misses its
         memo. *)
      size_memo_payload =
        Array.init (Sim.Engine.shards engine) (fun _ ->
            Client_update
              (Bft.Update.create ~client:0 ~client_seq:0 ~operation:""
                 ~submitted_us:0));
      size_memo_bytes = Array.make (Sim.Engine.shards engine) 0;
      wire_decode_errors = 0;
      telemetry = sink;
      directory;
      epoch_of = Array.init universe (fun r -> if r < n then 0 else -1);
      rank_maps;
      groups = [ (0, group) ];
      cur_epoch = 0;
      cur_members = identity;
      pending_reconfig = Array.make universe None;
      cutovers = [];
      stale_epoch_frames = Array.make (Sim.Engine.shards engine) 0;
      epoch_violation = None;
      sessions = Hashtbl.create 7;
      next_xfer = 1000;
      reconciler_armed = false;
      lag_since = Array.make universe (-1);
      arq = Recovery.State_transfer.default_arq;
      make_member_instance =
        (fun ~cert:_ ~rank:_ ~global:_ ->
          failwith "System: make_member_instance used before create finished");
      epoch_listeners = [];
      intra_stats = None;
    }
  in
  (* Derive a TAT bound from the network diameter: twice the worst
     round-trip plus proposal cadence headroom. *)
  let max_one_way =
    List.fold_left
      (fun acc link -> max acc link.Overlay.Topology.latency_us)
      0 (Overlay.Topology.links topo)
  in
  let prime_instance ~quorum ~epoch ~rank ~members ~global =
    let pcfg =
      cfg.tweak_prime
        {
          (Prime.Replica.default_config quorum) with
          Prime.Replica.epoch;
          tat_threshold_us = max 100_000 ((8 * max_one_way) + 60_000);
          batch = batch_policy;
        }
    in
    Prime_replica
      (Prime.Replica.create pcfg
         (env_for t ~epoch ~rank ~members (fun m -> Prime_msg (rank, m)))
         ~execute:(execute_of t global))
  in
  let pbft_instance ~quorum ~epoch ~rank ~members ~global =
    let pcfg =
      cfg.tweak_pbft
        {
          (Pbft.Replica.default_config quorum) with
          Pbft.Replica.epoch;
          batch = batch_policy;
        }
    in
    Pbft_replica
      (Pbft.Replica.create pcfg
         (env_for t ~epoch ~rank ~members (fun m -> Pbft_msg (rank, m)))
         ~execute:(fun seq u -> execute_of t global seq u))
  in
  t.make_member_instance <-
    (fun ~cert ~rank ~global ->
      let epoch = Member.Cert.epoch cert in
      let quorum =
        Bft.Quorum.create ~n:(Member.Cert.n cert) ~f:(Member.Cert.f cert)
          ~k:(Member.Cert.k cert)
      in
      let members, _ = Hashtbl.find t.rank_maps epoch in
      match cfg.protocol with
      | Prime_protocol -> prime_instance ~quorum ~epoch ~rank ~members ~global
      | Pbft_protocol -> pbft_instance ~quorum ~epoch ~rank ~members ~global);
  (* Pre-provisioned standby replicas exist as inert placeholders: a
     crashed, halted, never-started single-replica instance whose env
     goes nowhere. Admission replaces it wholesale. *)
  let standby_instance () =
    let q1 = Bft.Quorum.create ~n:1 ~f:0 ~k:0 in
    let env =
      {
        Bft.Env.self = 0;
        replica_count = 1;
        send = (fun _ _ -> ());
        now_us = (fun () -> Sim.Engine.now engine);
        set_timer = (fun delay_us f -> Sim.Engine.schedule engine ~delay_us f);
        trace = (fun _ -> ());
        telemetry = Telemetry.Sink.null;
      }
    in
    match cfg.protocol with
    | Prime_protocol ->
      let p =
        Prime.Replica.create (Prime.Replica.default_config q1) env
          ~execute:(fun _ _ -> ())
      in
      Prime.Replica.halt p;
      (Prime.Replica.faults p).Bft.Faults.crashed <- true;
      Prime_replica p
    | Pbft_protocol ->
      let p =
        Pbft.Replica.create (Pbft.Replica.default_config q1) env
          ~execute:(fun _ _ -> ())
      in
      Pbft.Replica.halt p;
      (Pbft.Replica.faults p).Bft.Faults.crashed <- true;
      Pbft_replica p
  in
  let quorum0 = cfg.quorum in
  t.replicas <-
    Array.init universe (fun r ->
        if r < n then
          match cfg.protocol with
          | Prime_protocol ->
            prime_instance ~quorum:quorum0 ~epoch:0 ~rank:r ~members:identity
              ~global:r
          | Pbft_protocol ->
            pbft_instance ~quorum:quorum0 ~epoch:0 ~rank:r ~members:identity
              ~global:r
        else standby_instance ());
  (* Standby nodes stay dark until an epoch admits them. *)
  for r = n to universe - 1 do
    Overlay.Net.kill_node net r
  done;
  (* A replica that provably fell behind the quorum's checkpoints asks
     the deployment for state transfer (deferred one event so the
     transfer does not run inside a message handler). *)
  Array.iteri
    (fun r instance ->
      match instance with
      | Prime_replica p when r < n ->
        Prime.Replica.set_on_fall_behind p (fun () ->
            ignore
              (Sim.Engine.schedule ~shard:(1 + t.replica_sites.(r)) engine
                 ~delay_us:0 (fun () ->
                   if not (faults t r).Bft.Faults.crashed then
                     resync_replica t r)
                : Sim.Engine.timer))
      | Prime_replica _ | Pbft_replica _ -> ())
    t.replicas;
  (* Net handlers: every replica node in the universe (standby handlers
     exist up front so admission needs no rewiring). *)
  for r = 0 to universe - 1 do
    Overlay.Net.set_handler net r (fun delivery ->
        let from = delivery.Overlay.Net.frame_src in
        debug_check_delivery t ~sender:from delivery.Overlay.Net.payload;
        (* Only replica nodes originate protocol messages; client nodes
           originate Client_update. *)
        handle_replica_msg t r ~from delivery.Overlay.Net.payload)
  done;
  (* Clients. *)
  let record_latency _update ~latency_us =
    let ms = float_of_int latency_us /. 1000. in
    Stats.Histogram.add t.hist ms;
    Stats.Timeseries.add t.series ~time_us:(Sim.Engine.now engine) ms
  in
  (* Client-side origin failover. Each client has a home origin
     (client mod n_cur within the current membership); when the origin
     it is currently using makes no progress for a full retransmission
     timeout, the client suspects it for a while and moves to the next
     member. Retransmissions themselves go to every current member (as
     Prime clients do) and exactly-once delivery collapses the
     duplicates. Origins are tracked by global replica id so suspicion
     survives membership changes. *)
  let clients = cfg.substations + cfg.hmis + cfg.field_concentrators in
  let suspected_until = Array.make_matrix clients universe min_int in
  let current_default = Array.make clients (-1) in
  let default_since = Array.make clients 0 in
  let pick_origin client now =
    let members = t.cur_members in
    let m = Array.length members in
    let start = client mod m in
    let rec find i =
      if i >= m then members.(start)
      else begin
        let o = members.((start + i) mod m) in
        if suspected_until.(client).(o) > now then find (i + 1) else o
      end
    in
    let o = find 0 in
    if o <> current_default.(client) then begin
      current_default.(client) <- o;
      default_since.(client) <- now
    end;
    o
  in
  let submit_of client ~attempt (u : Bft.Update.t) =
    t.submitted <- t.submitted + 1;
    let now = Sim.Engine.now engine in
    let payload = Client_update u in
    if attempt = 0 then begin
      let origin = pick_origin client now in
      send_payload t ~src_node:(node_of_client t client)
        ~dst_node:(node_of_replica t origin) payload
    end
    else begin
      (* Blame the current origin only once it has had a full timeout
         to prove itself (the timed-out update may predate it). *)
      let cur = pick_origin client now in
      if now - default_since.(client) > cfg.resubmit_timeout_us then begin
        suspected_until.(client).(cur) <- now + (8 * cfg.resubmit_timeout_us);
        ignore (pick_origin client now : int)
      end;
      (* One physical payload for the whole retransmission broadcast. *)
      Array.iter
        (fun r ->
          send_payload t ~src_node:(node_of_client t client)
            ~dst_node:(node_of_replica t r) payload)
        t.cur_members
    end
  in
  (* First-attempt batch flush from an endpoint: one Client_batch frame
     to the chosen origin. A flush holding a single update degrades to
     the legacy frame shape. *)
  let submit_batch_of client (updates : Bft.Update.t list) =
    match updates with
    | [] -> ()
    | [ u ] -> submit_of client ~attempt:0 u
    | updates ->
      t.submitted <- t.submitted + List.length updates;
      let now = Sim.Engine.now engine in
      let origin = pick_origin client now in
      send_payload t ~src_node:(node_of_client t client)
        ~dst_node:(node_of_replica t origin) (Client_batch updates)
  in
  (* Field devices' timers live in the trailing field shard's heap. *)
  let field_shard = base_sites + 1 in
  let proxies =
    Array.init cfg.substations (fun i ->
        let rtu =
          Scada.Rtu.create ~id:i ~breakers:4 ~feeders:2 ~rng:(Sim.Engine.rng engine)
        in
        (* Mixed field-protocol fleet, as in real substations: even
           RTUs speak DNP3, odd ones Modbus (the proxy gateways the
           master's DNP3 commands accordingly). *)
        let field_protocol = if i mod 2 = 0 then `Dnp3 else `Modbus in
        let p =
          Scada.Proxy.create ~field_protocol ~telemetry:sink
            ~batch:batch_policy ~submit_batch:(submit_batch_of i)
            ~shard:field_shard ~engine ~rtu ~client_id:i
            ~poll_interval_us:cfg.poll_interval_us ~group
            ~resubmit_timeout_us:cfg.resubmit_timeout_us
            ~submit:(submit_of i) ()
        in
        Scada.Endpoint.set_on_complete (Scada.Proxy.endpoint p) record_latency;
        Overlay.Net.set_handler net (node_of_client t i) (fun delivery ->
            debug_check_delivery t ~sender:delivery.Overlay.Net.frame_src
              delivery.Overlay.Net.payload;
            match delivery.Overlay.Net.payload with
            | Replica_reply reply -> Scada.Proxy.handle_reply p reply
            | Reply_batch rs -> List.iter (Scada.Proxy.handle_reply p) rs
            | Prime_msg _ | Pbft_msg _ | Client_update _ | Client_batch _
            | Transfer_chunk _ | Epoch_frame _ | Cert_frame _ | Field_advert _
            | Field_report _ ->
              ());
        p)
  in
  let hmis =
    Array.init cfg.hmis (fun j ->
        let client = cfg.substations + j in
        let h =
          Scada.Hmi.create ~telemetry:sink ~shard:field_shard ~engine
            ~client_id:client ~group
            ~resubmit_timeout_us:cfg.resubmit_timeout_us
            ~submit:(submit_of client) ()
        in
        Scada.Endpoint.set_on_complete (Scada.Hmi.endpoint h) record_latency;
        Overlay.Net.set_handler net (node_of_client t client) (fun delivery ->
            debug_check_delivery t ~sender:delivery.Overlay.Net.frame_src
              delivery.Overlay.Net.payload;
            match delivery.Overlay.Net.payload with
            | Replica_reply reply -> Scada.Hmi.handle_reply h reply
            | Reply_batch rs -> List.iter (Scada.Hmi.handle_reply h) rs
            | Prime_msg _ | Pbft_msg _ | Client_update _ | Client_batch _
            | Transfer_chunk _ | Epoch_frame _ | Cert_frame _ | Field_advert _
            | Field_report _ ->
              ());
        h)
  in
  (* Device fleet: per-substation concentrators, each an ordinary BFT
     client whose devices' report-by-exception events fold into one
     compact ordered aggregate per scan round — BFT load stays
     independent of fleet size. *)
  let concentrators =
    if cfg.field_concentrators = 0 then [||]
    else begin
      if cfg.field_devices < cfg.field_concentrators then
        invalid_arg "System.create: field_devices < field_concentrators";
      let nc = cfg.field_concentrators in
      let per = cfg.field_devices / nc and rem = cfg.field_devices mod nc in
      let first = ref 0 in
      Array.init nc (fun i ->
          let devices = per + if i < rem then 1 else 0 in
          let first_device = !first in
          first := !first + devices;
          let client = cfg.substations + cfg.hmis + i in
          let config =
            {
              Field.Concentrator.devices;
              scan_interval_us = cfg.field_scan_interval_us;
              (* Stagger the rounds across the interval so the core
                 sees a stream of aggregates, not a thundering herd. *)
              phase_us = i * cfg.field_scan_interval_us / nc;
              write_interval_us = cfg.field_write_interval_us;
              keepalive_loss = cfg.field_loss;
            }
          in
          let c =
            Field.Concentrator.create ~telemetry:sink ~batch:batch_policy
              ~submit_batch:(submit_batch_of client) ~shard:field_shard
              ~engine ~id:i ~client_id:client ~first_device
              ~seed:(Sim.Rng.derive ~seed:cfg.seed ~index:(0xF1E1D + i))
              ~group ~resubmit_timeout_us:cfg.resubmit_timeout_us
              ~submit:(submit_of client)
              ~charge:(fun frame ->
                charge_field_frame t ~node:(node_of_client t client) frame)
              ~config ()
          in
          Field.Concentrator.set_on_complete c record_latency;
          Overlay.Net.set_handler net (node_of_client t client)
            (fun delivery ->
              debug_check_delivery t ~sender:delivery.Overlay.Net.frame_src
                delivery.Overlay.Net.payload;
              match delivery.Overlay.Net.payload with
              | Replica_reply reply -> Field.Concentrator.handle_reply c reply
              | Reply_batch rs ->
                List.iter (Field.Concentrator.handle_reply c) rs
              | Prime_msg _ | Pbft_msg _ | Client_update _ | Client_batch _
              | Transfer_chunk _ | Epoch_frame _ | Cert_frame _
              | Field_advert _ | Field_report _ ->
                ());
          c)
    end
  in
  t.proxies <- proxies;
  t.hmis <- hmis;
  t.concentrators <- concentrators;
  (* The tuning plane always exists (knob requests from tests/operator
     probes work on any instance); the controller only when asked. *)
  install_actuator t;
  if cfg.adaptive then begin
    let base_tat =
      match t.replicas.(0) with
      | Prime_replica p -> Prime.Replica.tat_threshold_us p
      | Pbft_replica _ -> 150_000
    in
    t.locals <- Array.init n (fun r -> Control.Local.create ~replica:r ());
    t.global_ctl <-
      Some
        (Control.Global.create
           (Control.Global.default_config ~n ~base_tat_threshold_us:base_tat)
           t.knobs)
  end;
  t

let start t =
  Array.iteri
    (fun r instance ->
      if t.epoch_of.(r) >= 0 then
        match instance with
        | Prime_replica p -> Prime.Replica.start p
        | Pbft_replica p -> Pbft.Replica.start p)
    t.replicas;
  Array.iter Scada.Proxy.start t.proxies;
  Array.iter Scada.Hmi.start t.hmis;
  Array.iter Field.Concentrator.start t.concentrators;
  (* Controller tick: only armed when [cfg.adaptive] — a disabled
     controller adds zero timers, so the trajectory is untouched. *)
  if t.cfg.adaptive then
    ignore
      (Sim.Engine.periodic t.engine ~interval_us:t.cfg.adapt_tick_us (fun () ->
           controller_tick t)
        : Sim.Engine.timer)

let run t ~duration_us =
  let until_us = Sim.Engine.now t.engine + duration_us in
  (* Telemetry sinks and the wire-debug tap are engine-global mutable
     state written from every stripe; the conservative scheduler has no
     striped story for them, so those configs stay on the (identical)
     sequential path. *)
  if
    t.cfg.intra_domains > 1
    && (not t.cfg.telemetry) && (not t.cfg.wire_debug)
    && not t.cfg.adaptive
  then begin
    let part_min = Overlay.Net.shard_min_latency t.net in
    let k = Array.length part_min in
    let shards = Sim.Engine.shards t.engine in
    (* Engine stripe [s >= 1] hosts partition shard [s - 1]; row and
       column 0 (control heap) are ignored by the scheduler. *)
    let m =
      Array.init shards (fun a ->
          Array.init shards (fun b ->
              if a = 0 || b = 0 || a > k || b > k then max_int
              else part_min.(a - 1).(b - 1)))
    in
    let stats =
      Sim.Conservative.run ~domains:t.cfg.intra_domains t.engine
        ~min_latency_us:m ~until_us
    in
    t.intra_stats <- Some stats
  end
  else Sim.Engine.run t.engine ~until_us

let intra_stats t = t.intra_stats

(* ------------------------------------------------------------------ *)
(* Online reconfiguration entry points.                                *)

let submit_reconfig t actions =
  (match t.cfg.protocol with
  | Prime_protocol -> ()
  | Pbft_protocol ->
    invalid_arg "System.submit_reconfig: reconfiguration requires Prime");
  if Array.length t.hmis = 0 then
    invalid_arg "System.submit_reconfig: deployment has no HMI";
  let payload = Member.Reconfig.encode actions in
  ignore
    (Scada.Endpoint.send_op
       (Scada.Hmi.endpoint t.hmis.(0))
       (Scada.Op.Reconfig { payload })
      : Bft.Update.t)

let replicas_in_site t site =
  List.filter
    (fun r -> t.replica_sites.(r) = site)
    (List.init t.universe Fun.id)

(* Boot a site's overlay daemons and processes WITHOUT state transfer:
   used to heal a previously removed site so the reconciler can walk it
   through a certified rejoin (any frames its stale instances emit are
   dropped as stale-epoch traffic — retirement is orthogonal to being
   up). *)
let heal_site_nodes t site =
  List.iter
    (fun r ->
      Overlay.Net.restore_node t.net (node_of_replica t r);
      (faults t r).Bft.Faults.crashed <- false)
    (replicas_in_site t site)

(* ------------------------------------------------------------------ *)
(* Safety check.                                                       *)

let assert_agreement t =
  let correct =
    List.filter
      (fun r ->
        (not (faults t r).Bft.Faults.crashed)
        && not (Bft.Faults.is_byzantine (faults t r)))
      (List.init t.universe Fun.id)
  in
  match correct with
  | [] -> ()
  | first :: rest ->
    let l0 = exec_log t first in
    List.iter
      (fun r ->
        let li = exec_log t r in
        if not (Bft.Exec_log.prefix_equal l0 li) then
          failwith
            (Printf.sprintf "SAFETY VIOLATION: replicas %d and %d diverge" first r);
        if
          Bft.Exec_log.length l0 = Bft.Exec_log.length li
          && Scada.Master.applied_count t.masters.(first)
             = Scada.Master.applied_count t.masters.(r)
          && not
               (Cryptosim.Digest.equal
                  (Scada.Master.state_digest t.masters.(first))
                  (Scada.Master.state_digest t.masters.(r)))
        then
          failwith
            (Printf.sprintf "SAFETY VIOLATION: master state of %d and %d diverge"
               first r))
      rest

(* ------------------------------------------------------------------ *)
(* Proactive recovery.                                                 *)

let on_recovery_event t f =
  t.recovery_listeners <- f :: t.recovery_listeners

let notify_recovery t phase r =
  List.iter (fun f -> f phase r) t.recovery_listeners

let enable_recovery t ~rotation_period_us ~recovery_duration_us =
  (match t.cfg.protocol with
  | Prime_protocol -> ()
  | Pbft_protocol ->
    invalid_arg "System.enable_recovery: recovery requires the Prime protocol");
  let k = t.cfg.quorum.Bft.Quorum.k in
  if k < 1 then invalid_arg "System.enable_recovery: k must be >= 1";
  let on_begin r =
    (faults t r).Bft.Faults.crashed <- true;
    notify_recovery t `Begin r
  in
  let on_complete r =
    (* Clean image: honest behaviour, fresh diversity variant. *)
    Bft.Faults.reset (faults t r);
    ignore (Recovery.Diversity.rejuvenate t.diversity r : int);
    resync_replica t r;
    notify_recovery t `Complete r
  in
  let scheduler =
    Recovery.Scheduler.create ~engine:t.engine
      ~config:
        {
          Recovery.Scheduler.rotation_period_us;
          recovery_duration_us;
          max_concurrent = k;
        }
      ~n:t.n ~on_begin ~on_complete
  in
  t.scheduler <- Some scheduler;
  Recovery.Scheduler.start scheduler;
  scheduler

(* Reactive recovery: every poll interval, each live Prime replica is
   asked which peers it has not heard from; a peer accused by at least
   f+k+1 distinct replicas (more than the faulty + recovering replicas
   could fabricate) is rejuvenated immediately through the proactive
   scheduler's budget. This cleanses silent compromised replicas long
   before their next scheduled rotation. Accusations name protocol
   ranks; they are mapped through the accuser's epoch membership back
   to global replica ids before counting. *)
let enable_reactive_recovery t ~silence_threshold_us ~poll_interval_us =
  let scheduler =
    match t.scheduler with
    | Some s -> s
    | None ->
      invalid_arg
        "System.enable_reactive_recovery: call enable_recovery first"
  in
  let threshold = Bft.Quorum.suspect_threshold t.cfg.quorum in
  (* Grace period: peers have not heard from a replica during its own
     recovery downtime, so accusations are suppressed until it has had
     time to be heard from again. *)
  let completed_at = Array.make t.n (-1_000_000_000) in
  on_recovery_event t (fun phase r ->
      match phase with
      | `Complete -> completed_at.(r) <- Sim.Engine.now t.engine
      | `Begin -> ());
  ignore
    (Sim.Engine.periodic t.engine ~interval_us:poll_interval_us (fun () ->
         let accusations = Array.make t.universe 0 in
         Array.iteri
           (fun r instance ->
             match instance with
             | Prime_replica p ->
               if
                 t.epoch_of.(r) >= 0
                 && (not (faults t r).Bft.Faults.crashed)
                 && not (Prime.Replica.halted p)
               then (
                 match Hashtbl.find_opt t.rank_maps t.epoch_of.(r) with
                 | None -> ()
                 | Some (members, _) ->
                   List.iter
                     (fun j ->
                       let gj = members.(j) in
                       accusations.(gj) <- accusations.(gj) + 1)
                     (Prime.Replica.unresponsive p
                        ~threshold_us:silence_threshold_us))
             | Pbft_replica _ -> ())
           t.replicas;
         for j = 0 to t.n - 1 do
           if
             accusations.(j) >= threshold
             && (not (Recovery.Scheduler.is_recovering scheduler j))
             && Sim.Engine.now t.engine - completed_at.(j)
                > 2 * silence_threshold_us
           then ignore (Recovery.Scheduler.trigger_now scheduler j : bool)
         done)
      : Sim.Engine.timer)

(* ------------------------------------------------------------------ *)
(* Attack / failure injection.                                         *)

let set_leader_delay t ~delay_us =
  let leader = current_leader t in
  (faults t leader).Bft.Faults.proposal_delay_us <- delay_us

let kill_site t site =
  List.iter
    (fun r ->
      Overlay.Net.kill_node t.net (node_of_replica t r);
      (faults t r).Bft.Faults.crashed <- true)
    (replicas_in_site t site)

let restore_site t site =
  List.iter
    (fun r ->
      Overlay.Net.restore_node t.net (node_of_replica t r);
      (faults t r).Bft.Faults.crashed <- false;
      (* Only same-epoch replicas resynchronise directly; stale-epoch
         ones are walked through a certified rejoin by the reconciler. *)
      if t.epoch_of.(r) = t.cur_epoch then resync_replica t r)
    (replicas_in_site t site)

(* Network-level site isolation: the site's overlay daemons go dark
   but the replica processes keep running (the paper's control-center
   disconnection is a network event, not a host crash). On reconnection
   the replicas learn the installed view from peer traffic and catch up
   through batched slot requests — no state transfer needed. *)
let isolate_site t site =
  List.iter
    (fun r -> Overlay.Net.kill_node t.net (node_of_replica t r))
    (replicas_in_site t site)

let reconnect_site t site =
  List.iter
    (fun r -> Overlay.Net.restore_node t.net (node_of_replica t r))
    (replicas_in_site t site)

let crash_replica t r =
  Overlay.Net.kill_node t.net (node_of_replica t r);
  (faults t r).Bft.Faults.crashed <- true

let restore_replica t r =
  Overlay.Net.restore_node t.net (node_of_replica t r);
  (faults t r).Bft.Faults.crashed <- false;
  if t.epoch_of.(r) = t.cur_epoch then resync_replica t r
